// The client/cloud path end to end: simulated phones zip their sensor-rich
// recordings, split them into 5 MB-style chunks and push them through the
// ingestion service (out of order, with one corrupted upload); completed
// uploads land in the document store and feed the reconstruction pipeline.
//
//   $ ./build/examples/cloud_service
#include <cstring>
#include <iostream>

#include "cloud/chunking.hpp"
#include "cloud/docstore.hpp"
#include "cloud/ingest.hpp"
#include "core/pipeline.hpp"
#include "eval/harness.hpp"
#include "sim/buildings.hpp"
#include "sim/campaign.hpp"

namespace {

using namespace crowdmap;

/// Minimal wire format for the demo: the IMU stream as raw doubles. (The
/// real system would serialize frames too; for this demo the backend keeps
/// the decoded video in a side table, as a production system would keep it
/// in blob storage.)
cloud::Blob serialize_imu(const sensors::ImuStream& imu) {
  cloud::Blob blob(imu.samples.size() * sizeof(sensors::ImuSample));
  std::memcpy(blob.data(), imu.samples.data(), blob.size());
  return blob;
}

}  // namespace

int main() {
  const auto spec = sim::lab1();

  // --- Mobile front-end side: record a small campaign.
  sim::CampaignOptions options;
  options.users = 4;
  options.room_videos_per_room = 1;
  options.hallway_walks = 10;
  options.sim.fps = 3.0;
  std::cout << "Recording campaign...\n";
  const auto campaign = sim::generate_campaign(spec, options, 0xC10D);

  // --- Cloud side: ingestion into the document store.
  cloud::DocumentStore store;
  std::size_t completed = 0;
  cloud::IngestService ingest(store, [&completed](const cloud::Document&) {
    ++completed;
  });

  // crowdmap-lint: allow(pipeline-construction)
  core::CrowdMapPipeline pipeline(core::PipelineConfig::fast_profile());
  common::Rng rng(0xC10D);
  std::size_t corrupted = 0;
  for (std::size_t v = 0; v < campaign.videos.size(); ++v) {
    const auto& video = campaign.videos[v];
    const std::string upload_id = "upload-" + std::to_string(v);
    ingest.open_session(upload_id, video.building, video.floor);

    auto chunks = cloud::split_into_chunks(serialize_imu(video.imu), upload_id,
                                           64 * 1024);
    // Simulate network reordering.
    for (std::size_t i = 0; i + 1 < chunks.size(); i += 2) {
      std::swap(chunks[i], chunks[i + 1]);
    }
    // One upload arrives corrupted and must be rejected.
    const bool corrupt_this = (v == 3);
    if (corrupt_this && !chunks.empty() && !chunks[0].payload.empty()) {
      chunks[0].payload[0] ^= 0xFF;
      ++corrupted;
    }
    bool ok = true;
    for (const auto& chunk : chunks) {
      if (ingest.deliver(chunk) == cloud::IngestStatus::kRejected) {
        ok = false;
        break;
      }
    }
    // Accepted uploads flow into the reconstruction pipeline.
    if (ok) pipeline.ingest(video);
  }

  const auto stats = ingest.stats();
  std::cout << "Ingest: " << stats.uploads_completed << " uploads completed, "
            << stats.uploads_rejected << " rejected (" << corrupted
            << " corrupted in transit), "
            << stats.bytes_received / 1024 << " KiB received\n";
  std::cout << "Document store: " << store.size() << " datasets, "
            << store.total_bytes() / 1024 << " KiB, "
            << store.ids_for_floor(spec.name, 1).size() << " for " << spec.name
            << " floor 1\n";

  // --- Reconstruction over everything that survived ingestion.
  const auto result = pipeline.run();
  std::cout << "Pipeline: placed " << result.diagnostics.trajectories_placed
            << "/" << result.diagnostics.trajectories_kept << " trajectories, "
            << result.rooms.size() << " rooms reconstructed, hallway skeleton "
            << crowdmap::eval::fmt(result.skeleton.area(), 0) << " m^2\n";
  return 0;
}

// The hard case: the Gym building — wide circulation, sporadic large rooms,
// nearly featureless walls. Shows why feature-poor environments hurt
// (fewer SURF features, weaker matching) and how CrowdMap still assembles a
// map where a simulated SfM front-end falls apart (the Fig. 9 argument).
//
//   $ ./build/examples/gym_campaign
#include <iostream>

#include "baselines/sfm_sim.hpp"
#include "eval/datasets.hpp"
#include "eval/harness.hpp"

int main() {
  using namespace crowdmap;

  const auto dataset = eval::gym_dataset(1.0);
  std::cout << "Gym building: feature density "
            << eval::fmt(dataset.building.feature_density, 2)
            << " (labs are ~0.8), " << dataset.building.rooms.size()
            << " sporadic rooms\n\n";

  const auto run = eval::run_experiment(dataset, core::PipelineConfig{});
  const auto& d = run.result.diagnostics;

  // Feature statistics over the extracted key-frames.
  std::size_t features = 0;
  std::size_t keyframes = 0;
  for (const auto& traj : run.trajectories) {
    for (const auto& kf : traj.keyframes) {
      features += kf.surf.size();
      ++keyframes;
    }
  }
  std::cout << "SURF features per key-frame: "
            << eval::fmt(static_cast<double>(features) /
                             std::max<std::size_t>(keyframes, 1), 1)
            << " (Lab1 is ~13)\n";
  std::cout << "Placed " << d.trajectories_placed << "/" << d.trajectories_kept
            << " trajectories; hallway F=" << eval::pct(run.hallway.f_measure)
            << "; rooms " << run.room_errors.size() << "/"
            << dataset.building.rooms.size() << "\n";

  // The SfM comparison on the same data.
  common::Rng rng(0x96A1);
  double sfm_error = 0.0;
  int sfm_trajectories = 0;
  for (const auto& traj : run.trajectories) {
    if (traj.keyframes.size() < 4) continue;
    const auto poses = baselines::simulate_sfm_poses(traj, {}, rng);
    sfm_error += baselines::mean_aligned_error(poses);
    ++sfm_trajectories;
  }
  if (sfm_trajectories > 0) {
    std::cout << "Simulated SfM mean camera error here: "
              << eval::fmt(sfm_error / sfm_trajectories, 1)
              << " m — the featureless-environment failure mode CrowdMap's\n"
                 "video+inertial hybrid avoids.\n";
  }

  if (!run.room_errors.empty()) {
    std::vector<double> locs;
    for (const auto& e : run.room_errors) locs.push_back(e.location_error_m);
    eval::print_cdf(std::cout, "room location error (m)", locs, 5);
  }
  return 0;
}

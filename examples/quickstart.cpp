// Quickstart: reconstruct a small building's floor plan from simulated
// crowdsourced sensor-rich videos and print the result next to ground truth.
//
//   $ ./build/examples/quickstart
//
// Walks through the whole public API: build a world, run a crowd campaign,
// feed the uploads to CrowdMapPipeline, evaluate against ground truth.
#include <iostream>

#include "core/pipeline.hpp"
#include "eval/datasets.hpp"
#include "eval/harness.hpp"

int main() {
  using namespace crowdmap;

  // A small campaign on the Lab1 building (scale < 1 shrinks the dataset so
  // the example finishes in seconds).
  const eval::DatasetSpec dataset = eval::lab1_dataset(/*scale=*/0.5);
  std::cout << "Building: " << dataset.building.name << " with "
            << dataset.building.rooms.size() << " rooms\n";

  core::PipelineConfig config = core::PipelineConfig::fast_profile();
  const eval::ExperimentRun run = eval::run_experiment(dataset, config);

  const auto& d = run.result.diagnostics;
  std::cout << "Uploads ingested:      " << d.videos_ingested << "\n"
            << "Trajectories kept:     " << d.trajectories_kept
            << " (dropped " << d.trajectories_dropped << " unqualified)\n"
            << "Trajectories placed:   " << d.trajectories_placed << " via "
            << d.match_edges << " match edges\n"
            << "Panoramas stitched:    " << d.panoramas_stitched << " / "
            << d.panoramas_attempted << "\n"
            << "Rooms reconstructed:   " << d.rooms_reconstructed << "\n";

  std::cout << "\nHallway shape vs ground truth (Table I metrics):\n"
            << "  precision = " << eval::pct(run.hallway.precision) << "\n"
            << "  recall    = " << eval::pct(run.hallway.recall) << "\n"
            << "  F-measure = " << eval::pct(run.hallway.f_measure) << "\n";

  if (!run.room_errors.empty()) {
    double area = 0.0;
    double aspect = 0.0;
    double loc = 0.0;
    for (const auto& e : run.room_errors) {
      area += e.area_error;
      aspect += e.aspect_error;
      loc += e.location_error_m;
    }
    const double n = static_cast<double>(run.room_errors.size());
    std::cout << "\nRoom metrics over " << run.room_errors.size() << " rooms:\n"
              << "  mean area error     = " << eval::pct(area / n) << "\n"
              << "  mean aspect error   = " << eval::pct(aspect / n) << "\n"
              << "  mean location error = " << eval::fmt(loc / n, 2) << " m\n";
  }

  std::cout << "\nReconstructed floor plan (# hallway, R room):\n"
            << run.result.plan.to_ascii(90);

  std::cout << "\nStage timings: extract=" << eval::fmt(d.extract_seconds, 1)
            << "s aggregate=" << eval::fmt(d.aggregate_seconds, 1)
            << "s skeleton=" << eval::fmt(d.skeleton_seconds, 1)
            << "s rooms=" << eval::fmt(d.rooms_seconds, 1)
            << "s arrange=" << eval::fmt(d.arrange_seconds, 1) << "s\n";
  return 0;
}

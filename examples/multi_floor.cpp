// Multi-floor reconstruction (paper §VI): uploads annotated with their floor
// number (Task 1) decompose into independent 1-floor reconstructions, linked
// by the stairwell connector.
//
//   $ ./build/examples/multi_floor
#include <iostream>

#include "core/multifloor.hpp"
#include "eval/harness.hpp"
#include "sim/buildings.hpp"
#include "sim/campaign.hpp"

int main() {
  using namespace crowdmap;

  // Floor 1 = Lab1's layout, floor 2 = Lab2's (standing in for two floors of
  // one building; each floor has its own wall appearance).
  core::MultiFloorPipeline pipeline(core::PipelineConfig::fast_profile());
  const std::vector<std::pair<int, sim::FloorPlanSpec>> floors = {
      {1, sim::lab1()}, {2, sim::lab2()}};

  for (const auto& [floor_no, spec] : floors) {
    sim::CampaignOptions options;
    options.users = 4;
    options.room_videos_per_room = 1;
    options.hallway_walks = 12;
    options.sim.fps = 3.0;
    std::cout << "Recording floor " << floor_no << " (" << spec.rooms.size()
              << " rooms)...\n";
    sim::generate_campaign_streaming(
        spec, options, 0xF100u + static_cast<std::uint64_t>(floor_no),
        [&pipeline, floor_no = floor_no](sim::SensorRichVideo&& video) {
          video.floor = floor_no;  // the Task-1 annotation
          pipeline.ingest(video);
        });
  }

  // The stairwell connecting the floors (a known reference point).
  const core::FloorConnector stairs{1, 2, {20.0, 8.0}};

  const auto results = pipeline.run();
  for (const auto& fr : results) {
    const auto& d = fr.result.diagnostics;
    std::cout << "\n=== Floor " << fr.floor << " ===\n"
              << "  trajectories placed: " << d.trajectories_placed << "/"
              << d.trajectories_kept << "\n"
              << "  rooms reconstructed: " << d.rooms_reconstructed << "\n"
              << "  hallway skeleton:    "
              << eval::fmt(fr.result.skeleton.area(), 0) << " m^2\n";
  }
  std::cout << "\nFloors link at the stairwell near ("
            << stairs.position.x << ", " << stairs.position.y
            << "); navigation across floors chains the per-floor plans "
               "through it.\n";
  return 0;
}

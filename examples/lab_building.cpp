// Full evaluation-scale reconstruction of the Lab1 building: runs the whole
// CrowdMap pipeline on a complete crowd campaign, prints per-room results
// and writes an SVG of the reconstructed floor plan.
//
//   $ ./build/examples/lab_building
#include <fstream>
#include <iostream>

#include "eval/datasets.hpp"
#include "eval/harness.hpp"

int main() {
  using namespace crowdmap;

  const auto dataset = eval::lab1_dataset(1.0);
  std::cout << "Reconstructing " << dataset.building.name << ": "
            << dataset.building.rooms.size() << " rooms, "
            << eval::fmt(dataset.building.hallway_area(), 0)
            << " m^2 of hallway\n";

  const auto run = eval::run_experiment(dataset, core::PipelineConfig{});
  const auto& d = run.result.diagnostics;
  std::cout << "Campaign: " << d.videos_ingested << " uploads, "
            << d.trajectories_placed << " placed via " << d.match_edges
            << " match edges, " << d.trajectories_dropped << " dropped\n\n";

  std::cout << "Hallway shape: P=" << eval::pct(run.hallway.precision)
            << " R=" << eval::pct(run.hallway.recall)
            << " F=" << eval::pct(run.hallway.f_measure) << "\n\n";

  eval::print_table_row(std::cout, {"Room", "true WxD (m)", "est WxD (m)",
                                    "area err", "location err"});
  for (const auto& e : run.room_errors) {
    const auto& truth = dataset.building.room_by_id(e.room_id);
    // Find the matching placed room for its estimated size.
    std::string est = "-";
    for (const auto& placed : run.result.plan.rooms) {
      if (placed.true_room_id == e.room_id) {
        est = eval::fmt(placed.width, 1) + "x" + eval::fmt(placed.depth, 1);
        break;
      }
    }
    eval::print_table_row(
        std::cout,
        {truth.name, eval::fmt(truth.width, 1) + "x" + eval::fmt(truth.depth, 1),
         est, eval::pct(e.area_error), eval::fmt(e.location_error_m, 2) + " m"});
  }

  std::ofstream("lab_building_plan.svg") << run.result.plan.to_svg();
  std::cout << "\nSVG written to lab_building_plan.svg\n";
  return 0;
}

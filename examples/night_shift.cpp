// Lighting-robustness scenario: the same building surveyed once by a
// daytime crowd and once by a night crowd (incandescent light, high sensor
// noise), demonstrating that key-frame matching — and therefore the map —
// survives the lighting shift (the property behind Fig. 7(b)).
//
//   $ ./build/examples/night_shift
#include <iostream>

#include "eval/datasets.hpp"
#include "eval/harness.hpp"

int main() {
  using namespace crowdmap;

  for (const double night_fraction : {0.0, 1.0}) {
    auto dataset = eval::lab2_dataset(0.75);
    dataset.options.night_fraction = night_fraction;
    dataset.seed ^= static_cast<std::uint64_t>(night_fraction * 7 + 1);

    const auto run =
        eval::run_experiment(dataset, core::PipelineConfig::fast_profile());
    const auto& d = run.result.diagnostics;
    std::cout << (night_fraction == 0.0 ? "=== Day shift ===" : "=== Night shift ===")
              << "\n  placed " << d.trajectories_placed << "/"
              << d.trajectories_kept << " trajectories, "
              << d.rooms_reconstructed << " rooms\n"
              << "  hallway F-measure: " << eval::pct(run.hallway.f_measure)
              << "\n";
    if (!run.room_errors.empty()) {
      double area = 0.0;
      for (const auto& e : run.room_errors) area += e.area_error;
      std::cout << "  mean room area error: "
                << eval::pct(area / run.room_errors.size()) << "\n";
    }
  }
  std::cout << "\nBoth shifts should land in the same quality band: frame\n"
               "descriptors are exposure-normalized, so night only costs\n"
               "extra sensor noise, not matchability.\n";
  return 0;
}

// The application CrowdMap exists for: a newcomer's phone localizing itself
// on a *reconstructed* floor plan from step events alone. Reconstruct Lab1
// from a crowd campaign, then track a fresh walker with a particle filter
// constrained by the reconstructed walkable space.
//
//   $ ./build/examples/indoor_navigation
#include <iostream>

#include "eval/datasets.hpp"
#include "eval/harness.hpp"
#include "localize/particle_filter.hpp"
#include "sensors/dead_reckoning.hpp"
#include "sim/user_sim.hpp"

int main() {
  using namespace crowdmap;

  // 1. Reconstruct the building from a crowd campaign.
  const auto dataset = eval::lab1_dataset(0.5);
  std::cout << "Reconstructing " << dataset.building.name << "...\n";
  const auto run =
      eval::run_experiment(dataset, core::PipelineConfig::fast_profile());
  std::cout << "  hallway F=" << eval::pct(run.hallway.f_measure) << ", "
            << run.result.plan.rooms.size() << " rooms\n";

  // 2. A new user walks the hallway; only their step events are observed.
  const auto scene = sim::Scene::from_spec(dataset.building, 0x0A11CE);
  sim::SimOptions options;
  options.fps = 2.0;
  sim::UserSimulator walker(scene, dataset.building, options,
                            common::Rng(0x0A11CE));
  const auto walk =
      walker.hallway_walk_between({2, 0}, {20, 14}, sim::Lighting::day());
  const auto steps = sensors::detect_steps(walk.imu);
  const auto headings = sensors::estimate_headings(walk.imu);

  // 3. Particle filter on the reconstructed plan, unknown start.
  localize::LocalizerConfig config;
  config.particle_count = 3000;
  localize::MapLocalizer localizer(localize::walkable_space(run.result.plan),
                                   config, common::Rng(7));
  localizer.initialize_uniform();

  std::cout << "\nTracking a new walker (" << steps.count()
            << " steps, unknown start):\n";
  eval::print_table_row(std::cout, {"step", "error (m)", "belief spread (m)"});
  std::size_t step_index = 0;
  for (const double t : steps.times) {
    // Heading at the step time (from the walker's own IMU).
    std::size_t sample = 0;
    while (sample + 1 < walk.imu.samples.size() &&
           walk.imu.samples[sample].t < t) {
      ++sample;
    }
    localizer.on_step(0.66, headings[sample]);
    ++step_index;
    if (step_index % 5 == 0 || step_index == steps.count()) {
      // True position at this time, for reporting only.
      geometry::Vec2 truth;
      for (const auto& frame : walk.frames) {
        if (frame.t <= t) truth = frame.true_pose.position;
      }
      const auto belief = localizer.estimate();
      eval::print_table_row(
          std::cout, {std::to_string(step_index),
                      eval::fmt(belief.position.distance_to(truth), 2),
                      eval::fmt(belief.spread, 2)});
    }
  }
  std::cout << "\nThe belief collapses once the walker's path hits corners "
               "the corridor topology\ndisambiguates — this is the paper's "
               "motivating use of crowdsourced floor plans.\n";
  return 0;
}

// render_assets — writes a gallery of intermediate artifacts for inspection
// and documentation: rendered frames (day/night), a room panorama with its
// detected wall-floor boundary burned in, the occupancy skeleton, and the
// final plan, all as PGM/PPM/SVG next to the working directory.
//
//   $ ./build/tools/render_assets [output_prefix]
#include <cmath>
#include <fstream>
#include <iostream>

#include "eval/datasets.hpp"
#include "eval/harness.hpp"
#include "io/image_io.hpp"
#include "room/layout.hpp"
#include "room/panorama_select.hpp"
#include "sim/user_sim.hpp"
#include "trajectory/trajectory.hpp"

int main(int argc, char** argv) {
  using namespace crowdmap;
  const std::string prefix = argc > 1 ? argv[1] : "asset_";

  const auto dataset = eval::lab1_dataset(0.5);
  const auto scene = sim::Scene::from_spec(dataset.building, dataset.seed);
  sim::CameraIntrinsics intr;
  common::Rng rng(0xA55E7);

  // 1. Example frames: a hallway view by day and by night.
  const geometry::Pose2 hall_pose{{10.0, 0.0}, 0.0};
  io::write_ppm(prefix + "frame_day.ppm",
                scene.render(hall_pose, intr, sim::Lighting::day(), rng));
  io::write_ppm(prefix + "frame_night.ppm",
                scene.render(hall_pose, intr, sim::Lighting::night(), rng));
  const geometry::Pose2 room_pose{dataset.building.rooms[0].center, 1.0};
  io::write_ppm(prefix + "frame_room.ppm",
                scene.render(room_pose, intr, sim::Lighting::day(), rng));

  // 2. A room panorama with the detected boundary burned in.
  sim::SimOptions options = dataset.options.sim;
  sim::UserSimulator user(scene, dataset.building, options, common::Rng(0xA55E7));
  const auto video =
      user.room_visit(dataset.building.rooms[0], 3.0, sim::Lighting::day());
  const auto traj = trajectory::extract_trajectory(video);
  const auto candidates = room::find_panorama_candidates(traj);
  if (!candidates.empty()) {
    vision::StitchParams stitch;
    stitch.output_width = 512;
    stitch.output_height = 128;
    auto pano = room::stitch_candidate(traj, candidates.front(), stitch);
    const auto& kf = traj.keyframes[candidates.front().keyframe_indices.front()];
    const double focal = kf.gray.width() / (2.0 * std::tan(stitch.fov / 2.0)) *
                         stitch.output_height / std::max(kf.gray.height(), 1);
    const double horizon =
        stitch.output_height / 2.0 - focal * std::tan(0.15);
    const auto boundary = room::detect_floor_boundary(pano.image, horizon);
    for (int c = 0; c < pano.image.width(); ++c) {
      const double row = boundary[static_cast<std::size_t>(c)];
      if (!std::isnan(row) && row >= 0 && row < pano.image.height()) {
        pano.image.at(c, static_cast<int>(row)) = 1.0f;  // burn in white
      }
    }
    io::write_pgm(prefix + "panorama_boundary.pgm", pano.image);
  }

  // 3. Skeleton raster and final plan of a full run.
  const auto run =
      eval::run_experiment(dataset, core::PipelineConfig::fast_profile());
  io::write_pgm(prefix + "skeleton.pgm", run.result.skeleton.raster);
  std::ofstream(prefix + "plan.svg") << run.result.plan.to_svg();

  std::cout << "wrote " << prefix << "frame_day.ppm, " << prefix
            << "frame_night.ppm, " << prefix << "frame_room.ppm, " << prefix
            << "panorama_boundary.pgm, " << prefix << "skeleton.pgm, "
            << prefix << "plan.svg\n";
  return 0;
}

// crowdmap_lint binary: walks the given files/directories (default: the
// src/, tools/ and bench/ trees of the working directory), applies every
// project lint rule and prints compiler-style diagnostics. Exits 1 when any
// finding survives, so CI can gate on it. See tools/lint/lint.hpp for the
// rule engine and docs/STATIC_ANALYSIS.md for the catalog.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

std::vector<fs::path> collect(const std::vector<std::string>& roots,
                              bool& ok) {
  std::vector<fs::path> files;
  for (const auto& root : roots) {
    const fs::path p(root);
    if (fs::is_regular_file(p)) {
      files.push_back(p);
    } else if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else {
      std::fprintf(stderr, "crowdmap_lint: no such file or directory: %s\n",
                   root.c_str());
      ok = false;
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Documentation gate (--check-docs): every doc in the required list must
/// exist under docs/ and be referenced from README.md, so a new subsystem
/// can't land without its page being discoverable. Returns the number of
/// problems found (0 = pass).
int check_docs() {
  static const char* kRequiredDocs[] = {
      "API.md",         "CLUSTER.md",     "CONFIG.md",
      "DURABILITY.md",  "EXAMPLES.md",    "INCREMENTAL.md",
      "OBSERVABILITY.md", "PERFORMANCE.md", "ROBUSTNESS.md",
      "STATIC_ANALYSIS.md",
  };
  std::ifstream readme("README.md", std::ios::binary);
  if (!readme) {
    std::fprintf(stderr, "crowdmap_lint: cannot read README.md "
                         "(run from the repo root)\n");
    return 1;
  }
  std::ostringstream buffer;
  buffer << readme.rdbuf();
  const std::string readme_text = buffer.str();

  int problems = 0;
  for (const char* doc : kRequiredDocs) {
    const fs::path path = fs::path("docs") / doc;
    if (!fs::is_regular_file(path)) {
      std::printf("docs/%s: [missing-doc] required document does not exist\n",
                  doc);
      ++problems;
      continue;
    }
    if (readme_text.find(std::string("docs/") + doc) == std::string::npos) {
      std::printf("README.md: [unreferenced-doc] docs/%s is never linked\n",
                  doc);
      ++problems;
    }
  }
  std::printf("crowdmap_lint --check-docs: %d problem%s in %zu required docs\n",
              problems, problems == 1 ? "" : "s", std::size(kRequiredDocs));
  return problems;
}

void print_rules() {
  std::printf("crowdmap_lint rules (suppress with "
              "'// crowdmap-lint: allow(<rule>)'):\n");
  for (const auto& rule : crowdmap::lint::rule_catalog()) {
    std::printf("  %-20s %s\n", std::string(rule.name).c_str(),
                std::string(rule.summary).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      print_rules();
      return 0;
    }
    if (arg == "--check-docs") {
      return check_docs() == 0 ? 0 : 1;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: crowdmap_lint [--list-rules] [--check-docs] "
                  "[path...]\n"
                  "Lints .cpp/.hpp files under each path (default: src tools "
                  "bench).\n"
                  "--check-docs verifies the required docs/ pages exist and "
                  "are linked from README.md.\n");
      return 0;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) roots = {"src", "tools", "bench"};

  bool roots_ok = true;
  std::size_t scanned = 0;
  std::size_t total = 0;
  for (const auto& path : collect(roots, roots_ok)) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "crowdmap_lint: cannot read %s\n",
                   path.string().c_str());
      roots_ok = false;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ++scanned;
    const auto findings =
        crowdmap::lint::lint_content(path.generic_string(), buffer.str());
    for (const auto& finding : findings) {
      std::printf("%s\n", crowdmap::lint::format(finding).c_str());
    }
    total += findings.size();
  }
  std::printf("crowdmap_lint: %zu finding%s in %zu files\n", total,
              total == 1 ? "" : "s", scanned);
  if (!roots_ok) return 2;  // a misspelled path must not pass the CI gate
  return total == 0 ? 0 : 1;
}

// crowdmap_lint binary: walks the given files/directories (default: the
// src/, tools/ and bench/ trees of the working directory), applies every
// project lint rule and prints compiler-style diagnostics. Exits 1 when any
// finding survives, so CI can gate on it. See tools/lint/lint.hpp for the
// rule engine and docs/STATIC_ANALYSIS.md for the catalog.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

std::vector<fs::path> collect(const std::vector<std::string>& roots,
                              bool& ok) {
  std::vector<fs::path> files;
  for (const auto& root : roots) {
    const fs::path p(root);
    if (fs::is_regular_file(p)) {
      files.push_back(p);
    } else if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else {
      std::fprintf(stderr, "crowdmap_lint: no such file or directory: %s\n",
                   root.c_str());
      ok = false;
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

void print_rules() {
  std::printf("crowdmap_lint rules (suppress with "
              "'// crowdmap-lint: allow(<rule>)'):\n");
  for (const auto& rule : crowdmap::lint::rule_catalog()) {
    std::printf("  %-20s %s\n", std::string(rule.name).c_str(),
                std::string(rule.summary).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      print_rules();
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: crowdmap_lint [--list-rules] [path...]\n"
                  "Lints .cpp/.hpp files under each path (default: src tools "
                  "bench).\n");
      return 0;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) roots = {"src", "tools", "bench"};

  bool roots_ok = true;
  std::size_t scanned = 0;
  std::size_t total = 0;
  for (const auto& path : collect(roots, roots_ok)) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "crowdmap_lint: cannot read %s\n",
                   path.string().c_str());
      roots_ok = false;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ++scanned;
    const auto findings =
        crowdmap::lint::lint_content(path.generic_string(), buffer.str());
    for (const auto& finding : findings) {
      std::printf("%s\n", crowdmap::lint::format(finding).c_str());
    }
    total += findings.size();
  }
  std::printf("crowdmap_lint: %zu finding%s in %zu files\n", total,
              total == 1 ? "" : "s", scanned);
  if (!roots_ok) return 2;  // a misspelled path must not pass the CI gate
  return total == 0 ? 0 : 1;
}

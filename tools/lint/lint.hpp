// crowdmap_lint — project-invariant linter for the CrowdMap tree.
//
// A plain text scan (no libclang) that enforces the determinism and
// resource-discipline rules the parallel pipeline depends on: every rule is
// named, documented, and suppressible with an inline escape comment
//
//   // crowdmap-lint: allow(<rule>[, <rule>...])
//
// placed on the offending line or the line directly above it. Comments and
// string literals are stripped before matching, so prose mentioning a
// forbidden construct does not trip the scan. The library half (this header)
// lints in-memory content so tests can drive every rule without touching the
// filesystem; the binary half (tools/crowdmap_lint.cpp) walks the tree and
// exits non-zero for CI. Rule catalog and rationale: docs/STATIC_ANALYSIS.md.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace crowdmap::lint {

/// One rule violation at a file location.
struct Finding {
  std::string path;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;
};

/// Catalog entry: rule name plus a one-line rationale.
struct RuleInfo {
  std::string_view name;
  std::string_view summary;
};

/// Every rule the linter knows, in reporting order.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();

/// Lints one file's content. `path` is the repo-relative path (it scopes the
/// path-based exemptions, e.g. src/common/rng.* may use raw generators, and
/// decides whether the pragma-once rule applies).
[[nodiscard]] std::vector<Finding> lint_content(std::string_view path,
                                                std::string_view content);

/// "path:line: [rule] message" — the compiler-style diagnostic line.
[[nodiscard]] std::string format(const Finding& finding);

}  // namespace crowdmap::lint

#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace crowdmap::lint {

namespace {

// ----------------------------------------------------------- preprocessing ---

/// Lines of `content` with comments, string literals and char literals
/// blanked out (replaced by spaces, columns preserved) so rule patterns only
/// ever match real code. Handles // and /* */ comments, escape sequences,
/// and R"delim(...)delim" raw strings.
std::vector<std::string> stripped_lines(std::string_view content) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  std::vector<std::string> lines;
  std::string current;
  State state = State::kCode;
  std::string raw_delim;  // for kRawString: the ")delim\"" terminator
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
      if (state == State::kLineComment) state = State::kCode;
      continue;
    }
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          current += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          current += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   content[i - 1])) &&
                               content[i - 1] != '_'))) {
          // R"delim( ... )delim"
          std::size_t open = i + 2;
          std::size_t paren = content.find('(', open);
          if (paren == std::string_view::npos) {
            current += c;
            break;
          }
          raw_delim = ")" + std::string(content.substr(open, paren - open)) + "\"";
          state = State::kRawString;
          current += "  ";
          for (std::size_t j = open; j <= paren && j < content.size(); ++j) {
            current += ' ';
          }
          i = paren;
        } else if (c == '"') {
          state = State::kString;
          current += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          current += ' ';
        } else {
          current += c;
        }
        break;
      case State::kLineComment:
        current += ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          current += "  ";
          ++i;
        } else {
          current += ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          current += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          current += ' ';
        } else {
          current += ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          current += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          current += ' ';
        } else {
          current += ' ';
        }
        break;
      case State::kRawString:
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          state = State::kCode;
          current.append(raw_delim.size(), ' ');
          i += raw_delim.size() - 1;
        } else {
          current += ' ';
        }
        break;
    }
  }
  lines.push_back(current);
  return lines;
}

/// Escape comments per 1-based line: "crowdmap-lint: allow(a, b)" adds
/// {"a","b"} for that line. An escape suppresses findings on its own line
/// and on the line directly below (so it can sit above a long statement).
/// A long allow(...) list may continue across consecutive '//' comment
/// lines until its closing parenthesis; the whole block then escapes every
/// line it spans plus the line directly below it.
std::map<int, std::set<std::string>> collect_escapes(std::string_view content) {
  std::map<int, std::set<std::string>> escapes;
  int line = 1;
  std::size_t pos = 0;
  while (pos <= content.size()) {
    std::size_t eol = content.find('\n', pos);
    if (eol == std::string_view::npos) eol = content.size();
    const std::string_view text = content.substr(pos, eol - pos);
    const std::size_t tag = text.find("crowdmap-lint:");
    if (tag != std::string_view::npos) {
      const std::size_t open = text.find("allow(", tag);
      if (open != std::string_view::npos) {
        std::string names;
        int last_line = line;
        bool closed = false;
        const std::size_t close = text.find(')', open);
        if (close != std::string_view::npos) {
          names.assign(text.substr(open + 6, close - open - 6));
          closed = true;
        } else {
          // Multiline escape: keep consuming while the following lines are
          // pure '//' comments, until the closing parenthesis.
          names.assign(text.substr(open + 6));
          std::size_t next = eol + 1;
          while (next <= content.size() && !closed) {
            std::size_t next_eol = content.find('\n', next);
            if (next_eol == std::string_view::npos) next_eol = content.size();
            std::string_view cont = content.substr(next, next_eol - next);
            const std::size_t ws = cont.find_first_not_of(" \t");
            if (ws == std::string_view::npos ||
                cont.compare(ws, 2, "//") != 0) {
              break;
            }
            cont.remove_prefix(ws + 2);
            ++last_line;
            const std::size_t cclose = cont.find(')');
            if (cclose != std::string_view::npos) {
              cont = cont.substr(0, cclose);
              closed = true;
            }
            names.append(" ");
            names.append(cont);
            next = next_eol + 1;
          }
        }
        if (closed) {
          std::replace(names.begin(), names.end(), ',', ' ');
          std::istringstream in(names);
          std::string name;
          std::set<std::string> rules;
          while (in >> name) rules.insert(name);
          for (int l = line; l <= last_line; ++l) {
            escapes[l].insert(rules.begin(), rules.end());
          }
        }
      }
    }
    pos = eol + 1;
    ++line;
  }
  return escapes;
}

bool is_escaped(const std::map<int, std::set<std::string>>& escapes, int line,
                const std::string& rule) {
  for (const int l : {line, line - 1}) {
    const auto it = escapes.find(l);
    if (it != escapes.end() && it->second.count(rule)) return true;
  }
  return false;
}

std::string normalized(std::string_view path) {
  std::string out(path);
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ------------------------------------------------------------------ rules ---

const char kRawRng[] = "raw-rng";
const char kWallClock[] = "wall-clock";
const char kUnordered[] = "unordered-container";
const char kNakedNew[] = "naked-new";
const char kFloatAccumulator[] = "float-accumulator";
const char kPragmaOnce[] = "pragma-once";
const char kFaultPointName[] = "fault-point-name";
const char kPipelineConstruction[] = "pipeline-construction";
const char kMetricHelp[] = "metric-help-required";
const char kRawIntrinsics[] = "raw-intrinsics";
const char kRawFileIo[] = "raw-file-io";
const char kApiEscapeHatch[] = "api-escape-hatch";

const std::regex& raw_rng_pattern() {
  static const std::regex re(
      "\\brand\\s*\\(|\\bsrand\\s*\\(|std::random_device|std::mt19937|"
      "std::minstd_rand|std::default_random_engine|std::ranlux");
  return re;
}

const std::regex& wall_clock_pattern() {
  static const std::regex re(
      "std::chrono::system_clock|\\btime\\s*\\(|\\bgettimeofday\\b|"
      "\\blocaltime\\b|\\bmktime\\b|\\bclock\\s*\\(");
  return re;
}

const std::regex& unordered_pattern() {
  static const std::regex re("std::unordered_(map|set|multimap|multiset)\\b");
  return re;
}

const std::regex& new_pattern() {
  static const std::regex re("\\bnew\\b");
  return re;
}

const std::regex& delete_pattern() {
  static const std::regex re("\\bdelete\\b");
  return re;
}

const std::regex& float_decl_pattern() {
  // "float <name> = 0;" / "= 0.0f," / "{}" / "{0.f}" — a zero-initialized
  // float local, the accumulator idiom. The name filter below decides.
  static const std::regex re(
      "\\bfloat\\s+(\\w+)\\s*(=\\s*0(\\.0*)?f?\\s*[;,]|\\{\\s*(0(\\.0*)?f?)?\\s*\\})");
  return re;
}

bool accumulator_name(std::string name) {
  std::transform(name.begin(), name.end(), name.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  for (const char* hint :
       {"acc", "sum", "total", "score", "err", "norm", "mean", "avg", "energy"}) {
    if (name.find(hint) != std::string::npos) return true;
  }
  return false;
}

const std::regex& pipeline_construction_pattern() {
  // Direct CrowdMapPipeline construction: a by-value declaration, a naked
  // new, or a make_unique/make_shared instantiation. References and mentions
  // in comments/strings (already stripped) do not match.
  static const std::regex re(
      "\\bCrowdMapPipeline\\s+\\w+\\s*[({;]|\\bnew\\s+[\\w:]*CrowdMapPipeline\\b|"
      "make_(unique|shared)\\s*<[^>]*CrowdMapPipeline");
  return re;
}

const std::regex& fault_point_pattern() {
  // Synthesizing a FaultPoint outside the catalog source: parsing one from a
  // string, casting one from an integer, or brace-initializing the enum.
  static const std::regex re(
      "\\bfault_point_from_name\\s*\\(|static_cast<[^>]*FaultPoint\\s*>|"
      "\\bFaultPoint\\s*\\{");
  return re;
}

const std::regex& raw_intrinsics_pattern() {
  // A vendor intrinsics header include or a raw intrinsic/vector-type token.
  // All SIMD lives behind src/common/simd.hpp (exempted by path below) so
  // scalar-vs-vector bit-exactness is provable in one place; code elsewhere
  // uses the wrapper's kernels and lane types.
  static const std::regex re(
      "#\\s*include\\s*<(immintrin|emmintrin|xmmintrin|pmmintrin|smmintrin|"
      "tmmintrin|nmmintrin|wmmintrin|avxintrin|arm_neon|arm_sve)\\.h>|"
      "\\b_mm_\\w+|\\b_mm256_\\w+|\\b_mm512_\\w+|\\bvld[1-4]q?_\\w+|"
      "\\bvst[1-4]q?_\\w+|\\b__m128\\b|\\b__m128[id]\\b|\\b__m256\\b|"
      "\\b__m256[id]\\b|\\b__m512\\b|\\bfloat32x4_t\\b|\\bfloat64x2_t\\b");
  return re;
}

const std::regex& raw_file_io_pattern() {
  // Direct filesystem access inside src/ but outside the storage/io layers:
  // stream or stdio file handles, filesystem renames/deletes/mkdirs, raw
  // unlink. Durable state must flow through storage::Env so every write is
  // fault-injectable and crash-tested (docs/DURABILITY.md); image/asset
  // files go through src/io. The std::remove *algorithm* never matches —
  // only the filesystem spellings below do.
  static const std::regex re(
      "\\bfopen\\s*\\(|\\bfreopen\\s*\\(|std::[oi]?fstream\\b|"
      "std::filesystem::(remove_all|remove|rename|create_director)\\w*\\s*\\(|"
      "std::rename\\s*\\(|\\bunlink\\s*\\(");
  return re;
}

const std::regex& api_escape_hatch_pattern() {
  // A .service()/->service() call: api::v1's unversioned escape hatch onto
  // the backing CrowdMapService. Inside src/ the facade may compose with the
  // service directly; everyone else uses the versioned v2 surface
  // (document_store(), shard_of(), cluster(), ...) so the facade stays the
  // compatibility boundary (docs/API.md).
  static const std::regex re("(\\.|->)\\s*service\\s*\\(\\s*\\)");
  return re;
}

const std::regex& metric_registration_pattern() {
  // A counter()/gauge()/histogram() registration call. Matched against the
  // *stripped* line (so prose mentioning the methods does not trip it), but
  // the arguments are then parsed from the raw content: the help text is a
  // string literal, which stripping blanks out.
  static const std::regex re("(?:->|\\.)\\s*(counter|gauge|histogram)\\s*\\(");
  return re;
}

/// Splits the raw argument list starting at `open` (the offset of '(' in
/// `content`) into top-level argument substrings. Understands nested
/// (), {}, [], <> never (templates in args are rare and commas inside them
/// would mis-split — acceptable for this rule), string/char literals with
/// escapes. Returns false when the call is unterminated.
bool parse_call_args(std::string_view content, std::size_t open,
                     std::vector<std::string>* args) {
  int depth = 0;
  bool in_string = false;
  bool in_char = false;
  std::string current;
  for (std::size_t i = open; i < content.size(); ++i) {
    const char c = content[i];
    if (in_string || in_char) {
      current += c;
      if (c == '\\' && i + 1 < content.size()) {
        current += content[++i];
      } else if ((in_string && c == '"') || (in_char && c == '\'')) {
        in_string = in_char = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        current += c;
        continue;
      case '\'':
        in_char = true;
        current += c;
        continue;
      case '(':
      case '{':
      case '[':
        ++depth;
        if (depth == 1) continue;  // the registration call's own paren
        break;
      case ')':
      case '}':
      case ']':
        --depth;
        if (depth == 0) {
          args->push_back(current);
          return true;
        }
        break;
      case ',':
        if (depth == 1) {
          args->push_back(current);
          current.clear();
          continue;
        }
        break;
      default:
        break;
    }
    if (depth >= 1) current += c;
  }
  return false;
}

/// Trims ASCII whitespace (the argument substrings keep raw spacing).
std::string trimmed(const std::string& text) {
  const std::size_t first = text.find_first_not_of(" \t\n\r");
  if (first == std::string::npos) return {};
  const std::size_t last = text.find_last_not_of(" \t\n\r");
  return text.substr(first, last - first + 1);
}

/// True for a string-literal argument; `*empty` reports whether every
/// literal fragment is empty ("" or "" "" — adjacent concatenation).
bool string_literal_arg(const std::string& arg, bool* empty) {
  const std::string t = trimmed(arg);
  if (t.empty() || t[0] != '"') return false;
  *empty = t.find_first_not_of("\" \t\n\r") == std::string::npos;
  return true;
}

/// True when the previous non-space character before `pos` is '=': that is a
/// deleted special member ("= delete"), not a deallocation.
bool preceded_by_equals(const std::string& line, std::size_t pos) {
  while (pos > 0) {
    --pos;
    const char c = line[pos];
    if (c == ' ' || c == '\t') continue;
    return c == '=';
  }
  return false;
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> catalog = {
      {kRawRng,
       "raw generators (rand(), std::random_device, std::mt19937, ...) outside "
       "src/common/rng.*; draw from the seeded common::Rng instead"},
      {kWallClock,
       "wall-clock time (std::chrono::system_clock, time(), localtime, ...) "
       "in pipeline/scoring code; results must not depend on when they run"},
      {kUnordered,
       "std::unordered_map/set: hash iteration order is nondeterministic and "
       "must not feed reductions or serialized output; use std::map/std::set "
       "or sorted vectors"},
      {kNakedNew,
       "naked new/delete; use std::make_unique, std::make_shared or containers "
       "so ownership is RAII-managed"},
      {kFloatAccumulator,
       "zero-initialized float accumulator; accumulate in double and cast at "
       "the boundary so score paths keep full precision"},
      {kPragmaOnce, "every header must start its include guard with #pragma once"},
      {kFaultPointName,
       "FaultPoint synthesized outside src/common/fault.* (from-name parse, "
       "integer cast, or brace init); interrogate the named common::faults::k* "
       "constants or iterate all_fault_points() so the catalog stays the "
       "single source of truth"},
      {kPipelineConstruction,
       "core::CrowdMapPipeline constructed outside src/; the pipeline is an "
       "internal stage executor — go through api::Client (or "
       "core::IncrementalPlanner) so callers get the versioned surface, "
       "artifact caching and background refresh"},
      {kMetricHelp,
       "counter()/gauge()/histogram() registration without non-empty help "
       "text; the Prometheus export ships # HELP lines and an unexplained "
       "metric is unusable at 3am — pass the help argument"},
      {kRawIntrinsics,
       "raw SIMD intrinsics (<immintrin.h>/<arm_neon.h> includes, _mm_*/"
       "vld1q_* calls, __m128/__m256 types) outside src/common/simd.hpp; use "
       "the portable wrapper's kernels and lane types so every hot path keeps "
       "the scalar-vs-vector bit-exactness contract"},
      {kRawFileIo,
       "raw file I/O (fopen, std::ofstream/ifstream, std::filesystem "
       "remove/rename/mkdir, unlink, std::rename) in src/ outside "
       "src/storage/ and src/io/; route durable state through storage::Env "
       "so writes stay fault-injectable and crash recovery stays provable"},
      {kApiEscapeHatch,
       ".service() escape hatch used outside src/; api::v1's unversioned "
       "backdoor is deprecated — use the versioned api::v2 surface "
       "(document_store(), stats(), shard_of(), cluster(), ...) so the "
       "facade stays the compatibility boundary"},
  };
  return catalog;
}

std::vector<Finding> lint_content(std::string_view path,
                                  std::string_view content) {
  const std::string file = normalized(path);
  const bool is_header = ends_with(file, ".hpp") || ends_with(file, ".h");
  const bool rng_source = file.find("src/common/rng.") != std::string::npos ||
                          file.rfind("common/rng.", 0) == 0;
  const bool fault_source =
      file.find("src/common/fault.") != std::string::npos ||
      file.rfind("common/fault.", 0) == 0;
  const bool simd_source =
      file.find("src/common/simd.") != std::string::npos ||
      file.rfind("common/simd.", 0) == 0;
  // The two layers allowed to touch the filesystem directly: the durable
  // store's Env implementations and the image/asset codecs.
  const bool file_io_source =
      file.find("src/storage/") != std::string::npos ||
      file.rfind("storage/", 0) == 0 ||
      file.find("src/io/") != std::string::npos || file.rfind("io/", 0) == 0;
  // The pipeline-construction rule only applies outside the src/ tree: the
  // library composes the pipeline internally; everyone else goes through the
  // api::v1 facade.
  const bool in_src =
      file.rfind("src/", 0) == 0 || file.find("/src/") != std::string::npos;
  const auto escapes = collect_escapes(content);
  const auto lines = stripped_lines(content);
  // Byte offset of each line's first character, for rules that re-read the
  // raw content (metric-help-required needs the blanked string literals).
  std::vector<std::size_t> line_starts(1, 0);
  for (std::size_t i = 0; i < content.size(); ++i) {
    if (content[i] == '\n') line_starts.push_back(i + 1);
  }

  std::vector<Finding> findings;
  const auto report = [&](int line, const char* rule, std::string message) {
    if (is_escaped(escapes, line, rule)) return;
    findings.push_back(Finding{file, line, rule, std::move(message)});
  };

  bool saw_pragma_once = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i];
    const int line = static_cast<int>(i) + 1;

    if (!saw_pragma_once) {
      const std::size_t first = code.find_first_not_of(" \t");
      if (first != std::string::npos &&
          code.compare(first, 12, "#pragma once") == 0) {
        saw_pragma_once = true;
      }
    }

    if (!rng_source && std::regex_search(code, raw_rng_pattern())) {
      report(line, kRawRng,
             "raw random generator; use the seeded common::Rng "
             "(src/common/rng.hpp) so runs stay reproducible");
    }
    if (std::regex_search(code, wall_clock_pattern())) {
      report(line, kWallClock,
             "wall-clock time is nondeterministic input; seed explicitly, or "
             "use steady_clock strictly for latency measurement");
    }
    if (!in_src && std::regex_search(code, pipeline_construction_pattern())) {
      report(line, kPipelineConstruction,
             "direct CrowdMapPipeline construction outside src/; use "
             "api::Client (api/crowdmap.hpp) instead");
    }
    if (!in_src && std::regex_search(code, api_escape_hatch_pattern())) {
      report(line, kApiEscapeHatch,
             ".service() escape hatch outside src/; use the versioned "
             "api::v2 surface (document_store(), shard_of(), cluster(), ...)");
    }
    if (!fault_source && std::regex_search(code, fault_point_pattern())) {
      report(line, kFaultPointName,
             "FaultPoint synthesized outside the catalog; use the named "
             "common::faults::k* constants or all_fault_points()");
    }
    if (!simd_source && std::regex_search(code, raw_intrinsics_pattern())) {
      report(line, kRawIntrinsics,
             "raw SIMD intrinsics outside src/common/simd.hpp; use the "
             "portable wrapper (common/simd.hpp) so the bit-exactness "
             "contract holds on every backend");
    }
    if (in_src && !file_io_source &&
        std::regex_search(code, raw_file_io_pattern())) {
      report(line, kRawFileIo,
             "raw file I/O outside src/storage/ and src/io/; go through "
             "storage::Env (fault-injectable, crash-tested) or the io layer");
    }
    if (std::regex_search(code, unordered_pattern())) {
      report(line, kUnordered,
             "unordered container: hash iteration order is nondeterministic; "
             "use std::map/std::set or sort before iterating");
    }
    for (auto it = std::sregex_iterator(code.begin(), code.end(), new_pattern());
         it != std::sregex_iterator(); ++it) {
      report(line, kNakedNew,
             "naked 'new'; use std::make_unique/std::make_shared or a container");
    }
    for (auto it =
             std::sregex_iterator(code.begin(), code.end(), delete_pattern());
         it != std::sregex_iterator(); ++it) {
      if (preceded_by_equals(code, static_cast<std::size_t>(it->position()))) {
        continue;  // "= delete" declares a deleted member, not a deallocation
      }
      report(line, kNakedNew,
             "naked 'delete'; let RAII owners release the allocation");
    }
    std::smatch decl;
    if (std::regex_search(code, decl, float_decl_pattern()) &&
        accumulator_name(decl[1].str())) {
      report(line, kFloatAccumulator,
             "'" + decl[1].str() +
                 "' accumulates in float; sum in double and cast once at the "
                 "boundary");
    }
    for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                        metric_registration_pattern());
         it != std::sregex_iterator(); ++it) {
      // The match ends at '('; columns are preserved by stripping, so the
      // same offset indexes the raw content.
      const std::size_t paren =
          line_starts[i] +
          static_cast<std::size_t>(it->position() + it->length()) - 1;
      std::vector<std::string> args;
      if (!parse_call_args(content, paren, &args) || args.empty()) continue;
      bool empty = false;
      // Only metric registrations pass a literal metric name first; other
      // .counter()-shaped APIs (if any) are left alone.
      if (!string_literal_arg(args[0], &empty) || empty) continue;
      const std::string method = (*it)[1].str();
      const std::size_t min_args = method == "histogram" ? 4 : 3;
      if (args.size() < min_args) {
        report(line, kMetricHelp,
               "metric " + trimmed(args[0]) + " registered via " + method +
                   "() without help text; add the trailing help argument");
        continue;
      }
      if (string_literal_arg(args.back(), &empty) && empty) {
        report(line, kMetricHelp,
               "metric " + trimmed(args[0]) + " registered via " + method +
                   "() with empty help text");
      }
    }
  }

  if (is_header && !saw_pragma_once) {
    report(1, kPragmaOnce, "header is missing '#pragma once'");
  }

  return findings;
}

std::string format(const Finding& finding) {
  return finding.path + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

}  // namespace crowdmap::lint

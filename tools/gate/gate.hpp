// bench_gate — the perf-regression gate over BENCH_*.json result lines.
//
// Every bench binary emits machine-readable lines of the form
//
//   BENCH_<bench>.json {"name":"<series>","samples":N,"mean":...,...}
//
// (bench/bench_util.hpp). The committed files under bench/baselines/ capture
// those lines; bench/baselines/TOLERANCES.conf declares per-metric bounds
// for the host-independent series (ratios, counts). This library parses
// both, validates the committed baselines against the manifest (--check, the
// CI mode), and diffs a fresh bench run against the baselines: a bounded
// series that crosses its bound fails the gate, a series that disappears
// from a covered bench fails the gate, and everything else — absolute
// wall-clock numbers vary per host — is presence-checked only.
//
// Like tools/lint, this half is dependency-free so tests can drive the gate
// on in-memory lines; the binary half (tools/bench_gate.cpp) does the file
// I/O and exits non-zero for CI.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace crowdmap::gate {

/// One parsed BENCH result line.
struct BenchSeries {
  std::string bench;   // the <bench> of BENCH_<bench>.json
  std::string name;    // the "name" field (series within the bench)
  std::uint64_t samples = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Direction of a tolerance bound on a series' mean.
enum class Bound { kMin, kMax };

/// One TOLERANCES.conf row: `<bench>:<series> min|max <value>`.
struct Tolerance {
  std::string bench;
  std::string series;
  Bound bound = Bound::kMin;
  double value = 0.0;
};

/// Outcome of a parse or gate step. `errors` are malformed inputs (always
/// fatal); `failures` are gate verdicts; `notes` are informational.
struct GateReport {
  std::vector<std::string> errors;
  std::vector<std::string> failures;
  std::vector<std::string> notes;

  [[nodiscard]] bool ok() const noexcept {
    return errors.empty() && failures.empty();
  }
};

/// Extracts every BENCH_*.json line out of `text` (raw baseline files and
/// full CI logs both work; non-BENCH lines are ignored). Malformed BENCH
/// lines are reported into `report.errors` with `origin` as the location.
[[nodiscard]] std::vector<BenchSeries> parse_bench_lines(
    std::string_view origin, std::string_view text, GateReport& report);

/// Parses the tolerance manifest (# comments and blank lines allowed).
[[nodiscard]] std::vector<Tolerance> parse_tolerances(std::string_view origin,
                                                      std::string_view text,
                                                      GateReport& report);

/// CI self-check: every manifest row must match a committed baseline series,
/// and that series' mean must satisfy its own bound (a baseline that fails
/// its own tolerance is a regression someone committed).
void check_baselines(const std::vector<BenchSeries>& baselines,
                     const std::vector<Tolerance>& tolerances,
                     GateReport& report);

/// Gates a fresh run against the baselines: bounded series are re-checked
/// against their bounds on the fresh means; series present in a baseline
/// bench that the fresh run also covers must not disappear; new series are
/// noted so they get a baseline row in review.
void gate_run(const std::vector<BenchSeries>& baselines,
              const std::vector<BenchSeries>& current,
              const std::vector<Tolerance>& tolerances, GateReport& report);

}  // namespace crowdmap::gate

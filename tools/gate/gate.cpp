#include "gate/gate.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>

namespace crowdmap::gate {

namespace {

constexpr std::string_view kPrefix = "BENCH_";
constexpr std::string_view kSuffix = ".json ";

/// Splits `text` into lines without copying (keeps no terminator).
std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

std::string location(std::string_view origin, std::size_t line_no) {
  std::ostringstream out;
  out << origin << ":" << line_no;
  return out.str();
}

/// Pulls one `"key":<number>` field out of the JSON payload. The emitter
/// (bench/bench_util.hpp) writes a fixed flat object, so a targeted scan is
/// exact here — no general JSON parser needed.
bool extract_number(std::string_view json, std::string_view key, double* out) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string_view::npos) return false;
  const std::string rest(json.substr(at + needle.size()));
  char* end = nullptr;
  const double value = std::strtod(rest.c_str(), &end);
  if (end == rest.c_str()) return false;
  *out = value;
  return true;
}

bool extract_string(std::string_view json, std::string_view key,
                    std::string* out) {
  const std::string needle = "\"" + std::string(key) + "\":\"";
  const std::size_t at = json.find(needle);
  if (at == std::string_view::npos) return false;
  std::string value;
  for (std::size_t i = at + needle.size(); i < json.size(); ++i) {
    const char c = json[i];
    if (c == '\\' && i + 1 < json.size()) {
      const char esc = json[++i];
      value += esc == 'n' ? '\n' : esc;
      continue;
    }
    if (c == '"') {
      *out = std::move(value);
      return true;
    }
    value += c;
  }
  return false;
}

std::string bound_name(Bound bound) {
  return bound == Bound::kMin ? "min" : "max";
}

bool violates(const Tolerance& tol, double mean) {
  return tol.bound == Bound::kMin ? mean < tol.value : mean > tol.value;
}

std::string series_id(std::string_view bench, std::string_view name) {
  return std::string(bench) + ":" + std::string(name);
}

}  // namespace

std::vector<BenchSeries> parse_bench_lines(std::string_view origin,
                                           std::string_view text,
                                           GateReport& report) {
  std::vector<BenchSeries> out;
  std::size_t line_no = 0;
  for (const std::string_view line : split_lines(text)) {
    ++line_no;
    const std::size_t at = line.find(kPrefix);
    if (at == std::string_view::npos) continue;
    const std::string_view tail = line.substr(at + kPrefix.size());
    const std::size_t json_at = tail.find(kSuffix);
    if (json_at == std::string_view::npos) {
      report.errors.push_back(location(origin, line_no) +
                              ": BENCH line without '.json ' delimiter");
      continue;
    }
    BenchSeries series;
    series.bench = std::string(tail.substr(0, json_at));
    const std::string_view json = tail.substr(json_at + kSuffix.size());
    double samples = 0.0;
    if (!extract_string(json, "name", &series.name) ||
        !extract_number(json, "samples", &samples) ||
        !extract_number(json, "mean", &series.mean) ||
        !extract_number(json, "stddev", &series.stddev) ||
        !extract_number(json, "min", &series.min) ||
        !extract_number(json, "max", &series.max) ||
        !extract_number(json, "median", &series.median) ||
        !extract_number(json, "p90", &series.p90) ||
        !extract_number(json, "p99", &series.p99)) {
      report.errors.push_back(location(origin, line_no) +
                              ": BENCH line missing a required field");
      continue;
    }
    series.samples = static_cast<std::uint64_t>(samples);
    out.push_back(std::move(series));
  }
  return out;
}

std::vector<Tolerance> parse_tolerances(std::string_view origin,
                                        std::string_view text,
                                        GateReport& report) {
  std::vector<Tolerance> out;
  std::size_t line_no = 0;
  for (const std::string_view raw : split_lines(text)) {
    ++line_no;
    std::istringstream in{std::string(raw)};
    std::string target;
    std::string bound;
    std::string value;
    if (!(in >> target) || target[0] == '#') continue;
    if (!(in >> bound >> value)) {
      report.errors.push_back(location(origin, line_no) +
                              ": expected '<bench>:<series> min|max <value>'");
      continue;
    }
    Tolerance tol;
    const std::size_t colon = target.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == target.size()) {
      report.errors.push_back(location(origin, line_no) +
                              ": target must be <bench>:<series>");
      continue;
    }
    tol.bench = target.substr(0, colon);
    tol.series = target.substr(colon + 1);
    if (bound == "min") {
      tol.bound = Bound::kMin;
    } else if (bound == "max") {
      tol.bound = Bound::kMax;
    } else {
      report.errors.push_back(location(origin, line_no) +
                              ": bound must be min or max, got '" + bound +
                              "'");
      continue;
    }
    char* end = nullptr;
    tol.value = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      report.errors.push_back(location(origin, line_no) +
                              ": not a number: '" + value + "'");
      continue;
    }
    out.push_back(std::move(tol));
  }
  return out;
}

void check_baselines(const std::vector<BenchSeries>& baselines,
                     const std::vector<Tolerance>& tolerances,
                     GateReport& report) {
  std::map<std::string, const BenchSeries*> by_id;
  for (const BenchSeries& series : baselines) {
    by_id[series_id(series.bench, series.name)] = &series;
  }
  for (const Tolerance& tol : tolerances) {
    const std::string id = series_id(tol.bench, tol.series);
    const auto it = by_id.find(id);
    if (it == by_id.end()) {
      report.failures.push_back("tolerance " + id +
                                " has no committed baseline series");
      continue;
    }
    if (violates(tol, it->second->mean)) {
      std::ostringstream msg;
      msg << "baseline " << id << " mean " << it->second->mean << " violates "
          << bound_name(tol.bound) << " " << tol.value;
      report.failures.push_back(msg.str());
    } else {
      std::ostringstream msg;
      msg << id << " mean " << it->second->mean << " within "
          << bound_name(tol.bound) << " " << tol.value;
      report.notes.push_back(msg.str());
    }
  }
}

void gate_run(const std::vector<BenchSeries>& baselines,
              const std::vector<BenchSeries>& current,
              const std::vector<Tolerance>& tolerances, GateReport& report) {
  std::map<std::string, const BenchSeries*> current_by_id;
  std::vector<std::string> current_benches;
  for (const BenchSeries& series : current) {
    current_by_id[series_id(series.bench, series.name)] = &series;
    current_benches.push_back(series.bench);
  }
  std::sort(current_benches.begin(), current_benches.end());
  current_benches.erase(
      std::unique(current_benches.begin(), current_benches.end()),
      current_benches.end());
  const auto covered = [&](const std::string& bench) {
    return std::binary_search(current_benches.begin(), current_benches.end(),
                              bench);
  };

  // Bounded series: re-check the bound on the fresh mean. Absolute series
  // are deliberately not diffed mean-vs-mean — wall-clock numbers shift
  // with the host, so only declared (host-independent) bounds gate.
  for (const Tolerance& tol : tolerances) {
    if (!covered(tol.bench)) continue;  // this run didn't exercise the bench
    const std::string id = series_id(tol.bench, tol.series);
    const auto it = current_by_id.find(id);
    if (it == current_by_id.end()) {
      report.failures.push_back("bounded series " + id +
                                " missing from this run");
      continue;
    }
    if (violates(tol, it->second->mean)) {
      std::ostringstream msg;
      msg << "REGRESSION " << id << " mean " << it->second->mean
          << " violates " << bound_name(tol.bound) << " " << tol.value;
      report.failures.push_back(msg.str());
    } else {
      std::ostringstream msg;
      msg << id << " mean " << it->second->mean << " within "
          << bound_name(tol.bound) << " " << tol.value;
      report.notes.push_back(msg.str());
    }
  }

  // Presence: a series the baseline records must still be emitted by any
  // fresh run covering its bench (silently dropping a measurement is how
  // perf coverage rots).
  std::map<std::string, bool> seen_baseline;
  for (const BenchSeries& series : baselines) {
    const std::string id = series_id(series.bench, series.name);
    seen_baseline[id] = true;
    if (!covered(series.bench)) continue;
    if (current_by_id.find(id) == current_by_id.end()) {
      report.failures.push_back("series " + id +
                                " present in baselines but not in this run");
    }
  }
  for (const BenchSeries& series : current) {
    const std::string id = series_id(series.bench, series.name);
    if (seen_baseline.find(id) == seen_baseline.end()) {
      report.notes.push_back("new series " + id +
                             " (no baseline row yet — commit one)");
    }
  }
}

}  // namespace crowdmap::gate

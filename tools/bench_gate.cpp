// bench_gate — CI perf-regression gate over BENCH_*.json result lines.
//
//   bench_gate --check [--baselines DIR]
//       Validates the committed baselines against bench/baselines/
//       TOLERANCES.conf: every bound must have a baseline series and that
//       series must satisfy its own bound. This is the cheap CI mode — no
//       bench binaries run.
//
//   bench_gate [--baselines DIR] FILE...
//       Parses fresh BENCH lines out of FILE(s) ('-' reads stdin; raw bench
//       output and full CI logs both work) and gates them against the
//       committed baselines: bounded series re-checked on the fresh means,
//       baseline series of covered benches must not disappear.
//
// Exits 0 when the gate passes, 1 on regression/malformed input, 2 on usage
// errors. Rationale and the tolerance format: docs/PERFORMANCE.md.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "gate/gate.hpp"

namespace {

namespace fs = std::filesystem;
using crowdmap::gate::BenchSeries;
using crowdmap::gate::GateReport;
using crowdmap::gate::Tolerance;

void usage() {
  std::cout << "usage: bench_gate --check [--baselines DIR]\n"
               "       bench_gate [--baselines DIR] FILE...\n"
               "  --check          validate committed baselines against "
               "TOLERANCES.conf\n"
               "  --baselines DIR  baseline directory (default "
               "bench/baselines)\n"
               "  FILE             fresh bench output to gate ('-' = stdin)\n";
}

std::string read_file(const std::string& path, bool* ok) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    *ok = true;
    return buffer.str();
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *ok = false;
    return {};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *ok = true;
  return buffer.str();
}

/// Loads every committed BENCH_*.json under `dir` plus TOLERANCES.conf.
bool load_baselines(const std::string& dir, std::vector<BenchSeries>* series,
                    std::vector<Tolerance>* tolerances, GateReport* report) {
  if (!fs::is_directory(dir)) {
    std::cerr << "bench_gate: baseline directory not found: " << dir << "\n";
    return false;
  }
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  for (const std::string& file : files) {
    bool ok = false;
    const std::string text = read_file(file, &ok);
    if (!ok) {
      std::cerr << "bench_gate: cannot read " << file << "\n";
      return false;
    }
    const auto parsed = crowdmap::gate::parse_bench_lines(file, text, *report);
    series->insert(series->end(), parsed.begin(), parsed.end());
  }
  const std::string manifest = dir + "/TOLERANCES.conf";
  bool ok = false;
  const std::string text = read_file(manifest, &ok);
  if (!ok) {
    std::cerr << "bench_gate: cannot read " << manifest << "\n";
    return false;
  }
  *tolerances = crowdmap::gate::parse_tolerances(manifest, text, *report);
  return true;
}

int report_and_exit(const GateReport& report) {
  for (const std::string& note : report.notes) {
    std::cout << "bench_gate: ok: " << note << "\n";
  }
  for (const std::string& error : report.errors) {
    std::cerr << "bench_gate: error: " << error << "\n";
  }
  for (const std::string& failure : report.failures) {
    std::cerr << "bench_gate: FAIL: " << failure << "\n";
  }
  if (!report.ok()) {
    std::cerr << "bench_gate: " << report.failures.size() << " failure(s), "
              << report.errors.size() << " error(s)\n";
    return 1;
  }
  std::cout << "bench_gate: PASS (" << report.notes.size()
            << " check(s))\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string baselines_dir = "bench/baselines";
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg == "--baselines") {
      if (i + 1 >= argc) {
        std::cerr << "missing value for --baselines\n";
        return 2;
      }
      baselines_dir = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "-" || arg[0] != '-') {
      inputs.push_back(arg);
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    }
  }
  if (!check && inputs.empty()) {
    std::cerr << "bench_gate: nothing to do (pass --check or FILEs)\n";
    usage();
    return 2;
  }

  GateReport report;
  std::vector<BenchSeries> baselines;
  std::vector<Tolerance> tolerances;
  if (!load_baselines(baselines_dir, &baselines, &tolerances, &report)) {
    return 1;
  }

  if (check) {
    crowdmap::gate::check_baselines(baselines, tolerances, report);
    return report_and_exit(report);
  }

  std::vector<BenchSeries> current;
  for (const std::string& input : inputs) {
    bool ok = false;
    const std::string text = read_file(input, &ok);
    if (!ok) {
      std::cerr << "bench_gate: cannot read " << input << "\n";
      return 1;
    }
    const auto parsed = crowdmap::gate::parse_bench_lines(input, text, report);
    current.insert(current.end(), parsed.begin(), parsed.end());
  }
  if (current.empty()) {
    std::cerr << "bench_gate: no BENCH lines found in input\n";
    return 1;
  }
  crowdmap::gate::gate_run(baselines, current, tolerances, report);
  return report_and_exit(report);
}

// crowdmap_cli — run CrowdMap on a synthetic building and write artifacts.
//
//   crowdmap_cli [--building lab1|lab2|gym|random] [--rooms N] [--scale S]
//                [--seed N] [--config FILE] [--fast]
//                [--svg OUT.svg] [--pgm OUT.pgm] [--plan OUT.cmplan]
//                [--ascii] [--metrics-out OUT.prom] [--trace]
//                [--trace-out OUT.json] [--flight-out OUT.cmflight]
//
// Prints the Table-I metrics and room-error summary; optionally writes an
// SVG floor plan, a PGM of the hallway skeleton, the binary plan, the
// pipeline's metrics registry in Prometheus text format, the run timeline
// as a Perfetto/chrome://tracing JSON, and the flight-recorder black box.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/config_file.hpp"
#include "common/fault.hpp"
#include "core/config_overrides.hpp"
#include "eval/datasets.hpp"
#include "eval/harness.hpp"
#include "mapping/coverage.hpp"
#include "io/image_io.hpp"
#include "floorplan/serialize.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/trace_export.hpp"
#include "sim/buildings.hpp"

namespace {

void usage() {
  std::cout <<
      "usage: crowdmap_cli [options]\n"
      "  --building NAME   lab1 (default) | lab2 | gym | random\n"
      "  --rooms N         rooms for --building random (default 6)\n"
      "  --scale S         campaign scale factor (default 1.0)\n"
      "  --seed N          simulation seed override\n"
      "  --config FILE     key=value pipeline overrides (--help-config lists keys)\n"
      "  --help-config     list every supported --config key and exit\n"
      "  --fast            fast pipeline profile (capped layout hypotheses)\n"
      "  --threads N       pipeline threads (0 = all cores, 1 = serial)\n"
      "  --nodes N         simulated cluster nodes (default 1; docs/CLUSTER.md)\n"
      "  --faults SEED:SPEC  chaos plan, e.g. 42:decode.fail=0.2,stage.panorama_fail=0.1@3\n"
      "  --storage-dir DIR durable store: recover on start, checkpoint at end\n"
      "  --svg FILE        write the reconstructed plan as SVG\n"
      "  --pgm FILE        write the hallway skeleton as PGM\n"
      "  --plan FILE       write the binary floor plan\n"
      "  --ascii           print the ASCII floor plan\n"
      "  --coverage        print coverage analysis + suggested walk tasks\n"
      "  --metrics-out F   write the pipeline metrics (Prometheus text) to F\n"
      "  --trace           print the pipeline trace tree (per-stage timings)\n"
      "  --trace-out F     write spans + flight events as Perfetto trace JSON\n"
      "  --flight-out F    write the flight-recorder dump (versioned binary)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crowdmap;

  std::string building = "lab1";
  int random_rooms = 6;
  double scale = 1.0;
  std::uint64_t seed = 0;
  bool have_seed = false;
  bool fast = false;
  long threads = -1;
  long cluster_nodes = -1;
  bool ascii = false;
  bool coverage = false;
  bool trace = false;
  std::string config_path;
  std::string faults_spec;
  std::string storage_dir;
  std::string svg_path;
  std::string pgm_path;
  std::string plan_path;
  std::string metrics_path;
  std::string trace_out_path;
  std::string flight_out_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--building") {
      building = next();
    } else if (arg == "--rooms") {
      random_rooms = std::stoi(next());
    } else if (arg == "--scale") {
      scale = std::stod(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
      have_seed = true;
    } else if (arg == "--config") {
      config_path = next();
    } else if (arg == "--fast") {
      fast = true;
    } else if (arg == "--threads") {
      threads = std::stol(next());
      if (threads < 0) {
        std::cerr << "--threads must be >= 0\n";
        return 2;
      }
    } else if (arg == "--nodes") {
      cluster_nodes = std::stol(next());
      if (cluster_nodes < 1) {
        std::cerr << "--nodes must be >= 1\n";
        return 2;
      }
    } else if (arg == "--faults") {
      faults_spec = next();
    } else if (arg == "--storage-dir") {
      storage_dir = next();
    } else if (arg == "--ascii") {
      ascii = true;
    } else if (arg == "--coverage") {
      coverage = true;
    } else if (arg == "--svg") {
      svg_path = next();
    } else if (arg == "--pgm") {
      pgm_path = next();
    } else if (arg == "--plan") {
      plan_path = next();
    } else if (arg == "--metrics-out") {
      metrics_path = next();
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--trace-out") {
      trace_out_path = next();
    } else if (arg == "--flight-out") {
      flight_out_path = next();
    } else if (arg == "--help-config") {
      std::cout << "supported --config keys (key = value per line):\n"
                << core::config_key_help();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    }
  }

  eval::DatasetSpec dataset;
  if (building == "lab1") {
    dataset = eval::lab1_dataset(scale);
  } else if (building == "lab2") {
    dataset = eval::lab2_dataset(scale);
  } else if (building == "gym") {
    dataset = eval::gym_dataset(scale);
  } else if (building == "random") {
    dataset = eval::lab1_dataset(scale);
    common::Rng rng(have_seed ? seed : 0xC11u);
    dataset.building = sim::random_building(random_rooms, rng);
    dataset.name = dataset.building.name;
  } else {
    std::cerr << "unknown building: " << building << "\n";
    return 2;
  }
  if (have_seed) dataset.seed = seed;

  core::PipelineConfig config =
      fast ? core::PipelineConfig::fast_profile() : core::PipelineConfig{};
  if (threads >= 0) config.parallel.threads = static_cast<std::size_t>(threads);
  if (!config_path.empty()) {
    auto file = common::ConfigFile::try_load(config_path);
    if (!file.ok()) {
      std::cerr << "config error: " << file.error().message << "\n";
      return 2;
    }
    try {
      core::apply_config_overrides(config, file.value());
    } catch (const std::exception& e) {
      std::cerr << "config error: " << e.what() << "\n";
      return 2;
    }
  }
  if (!faults_spec.empty()) {
    auto plan = common::parse_fault_plan(faults_spec);
    if (!plan.ok()) {
      std::cerr << "--faults error: " << plan.error().message << "\n";
      return 2;
    }
    config.faults = std::move(plan).take();
  }
  if (!storage_dir.empty()) config.storage.dir = storage_dir;
  if (cluster_nodes >= 1) {
    config.cluster.nodes = static_cast<std::size_t>(cluster_nodes);
  }

  std::cout << "Reconstructing " << dataset.name << " (seed " << dataset.seed
            << ", scale " << scale << ")...\n";
  const auto run = eval::run_experiment(dataset, config);

  const auto& d = run.result.diagnostics;
  std::cout << "uploads " << d.videos_ingested << "  placed "
            << d.trajectories_placed << "/" << d.trajectories_kept
            << "  rooms " << d.rooms_reconstructed << "/"
            << dataset.building.rooms.size() << "\n";
  std::cout << "hallway  P=" << eval::pct(run.hallway.precision)
            << "  R=" << eval::pct(run.hallway.recall)
            << "  F=" << eval::pct(run.hallway.f_measure) << "\n";
  if (!run.room_errors.empty()) {
    double area = 0.0;
    double aspect = 0.0;
    double loc = 0.0;
    for (const auto& e : run.room_errors) {
      area += e.area_error;
      aspect += e.aspect_error;
      loc += e.location_error_m;
    }
    const double n = static_cast<double>(run.room_errors.size());
    std::cout << "rooms    area=" << eval::pct(area / n)
              << "  aspect=" << eval::pct(aspect / n)
              << "  location=" << eval::fmt(loc / n, 2) << " m\n";
  }

  if (run.result.degradation.degraded()) {
    std::cout << run.result.degradation.to_string() << "\n";
  }
  if (run.durability.enabled) {
    std::cout << "storage  wal_appends=" << run.durability.wal_appends
              << "  checkpoints=" << run.durability.checkpoints
              << "  replayed=" << run.durability.recovery_records_replayed
              << "  truncated=" << run.durability.recovery_truncated_records
              << (run.durability.healthy ? "" : "  UNHEALTHY") << "\n";
  }
  // The harness builds twice (alignment pass, then the truth frame); the
  // reuse line shows how much of the second build replayed cached artifacts.
  std::cout << run.cache.to_string() << "\n";

  if (trace) {
    std::cout << "\ntrace (inclusive ms, self ms):\n"
              << run.result.trace.to_string();
  }
  if (ascii) std::cout << "\n" << run.result.plan.to_ascii(100);
  if (coverage) {
    const auto report =
        mapping::coverage_report(run.result.occupancy, run.result.skeleton.raster);
    std::cout << "coverage " << eval::pct(report.confident_fraction)
              << " of " << report.skeleton_cells << " skeleton cells confident\n";
    for (const auto& task : mapping::suggest_walk_tasks(report)) {
      std::cout << "  suggest SWS walk (" << eval::fmt(task.from.x, 1) << ", "
                << eval::fmt(task.from.y, 1) << ") -> ("
                << eval::fmt(task.to.x, 1) << ", " << eval::fmt(task.to.y, 1)
                << ")  [covers ~" << static_cast<int>(task.expected_gain)
                << " thin cells]\n";
    }
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    out << obs::to_prometheus(run.metrics);
    if (!out) {
      std::cerr << "failed to write " << metrics_path << "\n";
      return 1;
    }
    std::cout << "wrote " << metrics_path << "\n";
  }
  if (!trace_out_path.empty()) {
    std::ofstream out(trace_out_path);
    out << obs::to_trace_event_json(
        run.result.trace, run.flight ? &run.flight.value() : nullptr);
    if (!out) {
      std::cerr << "failed to write " << trace_out_path << "\n";
      return 1;
    }
    std::cout << "wrote " << trace_out_path
              << " (open in ui.perfetto.dev or chrome://tracing)\n";
  }
  if (!flight_out_path.empty()) {
    if (!run.flight) {
      std::cerr << "--flight-out: flight recorder disabled "
                   "(set flight.enabled=true in --config)\n";
      return 1;
    }
    const auto bytes = obs::encode_flight_dump(*run.flight);
    std::ofstream out(flight_out_path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::cerr << "failed to write " << flight_out_path << "\n";
      return 1;
    }
    std::cout << "wrote " << flight_out_path << " (" << bytes.size()
              << " bytes, " << run.flight->events.size() << " events)\n";
  }
  if (!svg_path.empty()) {
    std::ofstream(svg_path) << run.result.plan.to_svg();
    std::cout << "wrote " << svg_path << "\n";
  }
  if (!pgm_path.empty()) {
    io::write_pgm(pgm_path, run.result.skeleton.raster);
    std::cout << "wrote " << pgm_path << "\n";
  }
  if (!plan_path.empty()) {
    const auto bytes = floorplan::encode_floorplan(run.result.plan);
    std::ofstream out(plan_path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    std::cout << "wrote " << plan_path << " (" << bytes.size() << " bytes)\n";
  }
  return 0;
}

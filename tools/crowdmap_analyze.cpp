// crowdmap_analyze binary: builds a whole-program model of the given
// files/directories (default: the src/, tools/ and bench/ trees of the
// working directory) and runs the layering, lock-order, and determinism
// passes from tools/analyze/. Prints compiler-style diagnostics, optionally
// writes SARIF 2.1.0, and supports a committed suppression baseline:
//
//   crowdmap_analyze                      # report every finding, exit 1 if any
//   crowdmap_analyze --check-baseline     # fail only on NEW findings
//   crowdmap_analyze --write-baseline     # rewrite the baseline from findings
//   crowdmap_analyze --sarif out.sarif    # also emit SARIF
//
// See tools/analyze/analyze.hpp for the passes and docs/STATIC_ANALYSIS.md
// for the workflow.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"

namespace fs = std::filesystem;
namespace an = crowdmap::analyze;

namespace {

constexpr const char* kDefaultBaseline = "tools/analyze/baseline.txt";

bool analyzable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

std::vector<fs::path> collect(const std::vector<std::string>& roots,
                              bool& ok) {
  std::vector<fs::path> files;
  for (const auto& root : roots) {
    const fs::path p(root);
    if (fs::is_regular_file(p)) {
      files.push_back(p);
    } else if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && analyzable(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else {
      std::fprintf(stderr,
                   "crowdmap_analyze: no such file or directory: %s\n",
                   root.c_str());
      ok = false;
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

void print_rules() {
  std::printf("crowdmap_analyze rules (baseline key: rule|path|symbol):\n");
  for (const auto& rule : an::rule_catalog()) {
    std::printf("  %-20s %s\n", std::string(rule.name).c_str(),
                std::string(rule.summary).c_str());
  }
  std::printf("\nlayering (rank 0 = top; includes must not point to a "
              "smaller rank):\n");
  for (const auto& layer : an::layer_table()) {
    std::printf("  %d  %s\n", layer.rank, std::string(layer.module).c_str());
  }
  std::printf("\nallowlisted upward edges:\n");
  for (const auto& exc : an::layering_allowlist()) {
    std::printf("  %s -> %s: %s\n", std::string(exc.from).c_str(),
                std::string(exc.to).c_str(), std::string(exc.why).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string sarif_path;
  std::string baseline_path = kDefaultBaseline;
  bool check_baseline = false;
  bool write_baseline = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      print_rules();
      return 0;
    }
    if (arg == "--check-baseline") {
      check_baseline = true;
      continue;
    }
    if (arg == "--write-baseline") {
      write_baseline = true;
      continue;
    }
    if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
      continue;
    }
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: crowdmap_analyze [options] [path...]\n"
          "Whole-program analysis of .cpp/.hpp files under each path\n"
          "(default: src tools bench). Options:\n"
          "  --list-rules        print the rule catalog and layer table\n"
          "  --sarif <file>      also write findings as SARIF 2.1.0\n"
          "  --baseline <file>   baseline path (default %s)\n"
          "  --check-baseline    exit non-zero only for NEW findings\n"
          "  --write-baseline    rewrite the baseline from current findings\n",
          kDefaultBaseline);
      return 0;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) roots = {"src", "tools", "bench"};

  bool roots_ok = true;
  std::vector<an::FileModel> models;
  for (const auto& path : collect(roots, roots_ok)) {
    std::string content;
    if (!read_file(path, content)) {
      std::fprintf(stderr, "crowdmap_analyze: cannot read %s\n",
                   path.string().c_str());
      roots_ok = false;
      continue;
    }
    models.push_back(an::build_model(path.generic_string(), content));
  }

  const std::vector<an::Finding> findings = an::analyze(models);

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "crowdmap_analyze: cannot write %s\n",
                   sarif_path.c_str());
      return 2;
    }
    out << an::to_sarif(findings);
  }

  if (write_baseline) {
    std::ofstream out(baseline_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "crowdmap_analyze: cannot write %s\n",
                   baseline_path.c_str());
      return 2;
    }
    out << an::render_baseline(findings);
    std::printf("crowdmap_analyze: wrote %zu baseline entr%s to %s\n",
                findings.size(), findings.size() == 1 ? "y" : "ies",
                baseline_path.c_str());
    return 0;
  }

  std::vector<an::Finding> reported = findings;
  if (check_baseline) {
    std::string content;
    if (!read_file(baseline_path, content)) {
      // A missing baseline means nothing is suppressed — every finding is
      // new. That is the right default for a fresh checkout.
      content.clear();
    }
    reported = an::new_findings(findings, an::parse_baseline(content));
  }

  for (const auto& finding : reported) {
    std::printf("%s\n", an::format(finding).c_str());
  }
  std::printf("crowdmap_analyze: %zu %sfinding%s in %zu files\n",
              reported.size(), check_baseline ? "new " : "",
              reported.size() == 1 ? "" : "s", models.size());
  if (!roots_ok) return 2;  // a misspelled path must not pass the CI gate
  return reported.empty() ? 0 : 1;
}

// C++ tokenizer for crowdmap_analyze — the whole-program analyzer's front
// end. Unlike the per-line regex scan in tools/lint/, this produces a real
// token stream: comments are dropped, string/char literals (including
// R"delim(...)delim" raw strings) become single literal tokens, backslash
// line splices are resolved (including splices inside // comments), and
// preprocessor directives are captured whole. Every token carries the
// physical 1-based line of its first character so findings point at source.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace crowdmap::analyze {

enum class TokKind {
  kIdentifier,  // identifiers and keywords
  kNumber,      // pp-number (int/float literals, any base)
  kString,      // "..." / R"(...)" / prefixed variants; text excludes quotes
  kChar,        // '...'; text excludes quotes
  kPunct,       // operators & punctuation; "::" and "->" kept as one token
  kDirective,   // whole preprocessor directive, text starts after '#'
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based physical line of the token's first character
};

/// Tokenizes `src`. Malformed input (unterminated literals/comments) never
/// throws: the open construct is closed at end of input.
[[nodiscard]] std::vector<Token> tokenize(std::string_view src);

}  // namespace crowdmap::analyze

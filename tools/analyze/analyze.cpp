#include "analyze/analyze.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <sstream>
#include <tuple>

namespace crowdmap::analyze {

namespace {

// ======================================================================
// Rule catalog & layering tables
// ======================================================================

const std::vector<RuleInfo> kRules = {
    {"layering-upward",
     "quoted include points from a lower layer to a higher layer of the "
     "declared module DAG without an allowlist entry"},
    {"module-cycle",
     "the module-level include graph contains a cycle (modules must form a "
     "DAG even within a layer)"},
    {"include-cycle",
     "header include graph contains a file-level cycle (pragma once hides "
     "the recursion but the coupling is real)"},
    {"lock-order",
     "the global mutex-acquisition graph has a cycle: two threads taking "
     "these locks in opposite orders can deadlock"},
    {"lock-excludes-held",
     "a function annotated CM_EXCLUDES(m) is called while m is held — "
     "guaranteed self-deadlock on a non-recursive mutex"},
    {"determinism-taint",
     "function is transitively reachable from a wall-clock / raw-RNG / "
     "unordered-iteration source and does not terminate in an allowlisted "
     "sink (log lines, seeded RNG wrapper, obs timestamps)"},
};

// Declared layering, top first. Rank grows downward; an include edge is
// legal when the target's rank is >= the source's rank (same-layer edges
// are additionally guarded by module-cycle detection).
const std::vector<LayerInfo> kLayers = {
    {0, "api"},
    {1, "cluster"},    {1, "core"},
    {2, "cache"},      {2, "cloud"},     {2, "eval"},
    {3, "vision"},     {3, "room"},      {3, "floorplan"}, {3, "mapping"},
    {3, "trajectory"}, {3, "localize"},  {3, "wifi"},      {3, "baselines"},
    {4, "imaging"},    {4, "geometry"},  {4, "sensors"},   {4, "sim"},
    {4, "io"},         {4, "obs"},       {4, "storage"},
    {5, "common"},
};

// Upward edges that encode deliberate architecture rather than drift. Every
// entry carries its justification; anything not listed here is a finding.
const std::vector<LayeringException> kAllowlist = {
    {"cloud", "core",
     "the cloud service owns one core::IncrementalPlanner per site — the "
     "incremental-recompute design (PR 5) makes the service the planner's "
     "host, not a layer below it"},
    {"eval", "core",
     "the evaluation harness drives pipeline stages directly to compare "
     "per-stage output against ground truth"},
    {"eval", "api",
     "end-to-end accuracy runs exercise the public api::v1 facade exactly "
     "as an SDK consumer would"},
};

int layer_rank(const std::string& module) {
  for (const LayerInfo& l : kLayers) {
    if (l.module == module) return l.rank;
  }
  return -1;
}

bool allowlisted(const std::string& from, const std::string& to) {
  for (const LayeringException& e : kAllowlist) {
    if (e.from == from && e.to == to) return true;
  }
  return false;
}

/// Module of a scanned file: "src/<module>/..." → module, else "".
std::string module_of_path(const std::string& path) {
  if (path.rfind("src/", 0) != 0) return {};
  const std::size_t end = path.find('/', 4);
  if (end == std::string::npos) return {};
  const std::string mod = path.substr(4, end - 4);
  return layer_rank(mod) >= 0 ? mod : std::string();
}

/// Module of a quoted include target: "<module>/..." → module, else "".
std::string module_of_include(const std::string& target) {
  const std::size_t end = target.find('/');
  if (end == std::string::npos) return {};
  const std::string mod = target.substr(0, end);
  return layer_rank(mod) >= 0 ? mod : std::string();
}

// ======================================================================
// Pass 1: layering + cycles over the include graph
// ======================================================================

struct EdgeWitness {
  std::string path;
  int line = 0;
};

void layering_pass(const std::vector<FileModel>& models,
                   std::vector<Finding>& out) {
  // Module edge -> first witness include site.
  std::map<std::pair<std::string, std::string>, EdgeWitness> edges;
  for (const FileModel& m : models) {
    const std::string from = module_of_path(m.path);
    if (from.empty()) continue;
    for (const IncludeDecl& inc : m.includes) {
      if (inc.system) continue;
      const std::string to = module_of_include(inc.target);
      if (to.empty() || to == from) continue;
      edges.emplace(std::make_pair(from, to), EdgeWitness{m.path, inc.line});
    }
  }

  // Upward edges (strictly smaller rank = higher layer) need an allowlist
  // entry; everything else is legal here and guarded by cycle detection.
  for (const auto& [edge, witness] : edges) {
    const auto& [from, to] = edge;
    if (layer_rank(to) < layer_rank(from) && !allowlisted(from, to)) {
      out.push_back({"layering-upward", witness.path, witness.line,
                     from + "->" + to,
                     "module '" + from + "' (layer " +
                         std::to_string(layer_rank(from)) + ") includes '" +
                         to + "' (layer " + std::to_string(layer_rank(to)) +
                         "): edges must point down the DAG; add a justified "
                         "allowlist entry only for deliberate architecture"});
    }
  }

  // Module-level cycle detection over all edges (allowlisted or not).
  std::map<std::string, std::vector<std::string>> graph;
  for (const auto& [edge, witness] : edges) graph[edge.first].push_back(edge.second);
  std::map<std::string, int> state;  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::string> stack;
  std::set<std::string> reported;
  const std::function<void(const std::string&)> dfs = [&](const std::string& v) {
    state[v] = 1;
    stack.push_back(v);
    for (const std::string& w : graph[v]) {
      if (state[w] == 1) {
        // Found a cycle: stack suffix from w to v.
        const auto it = std::find(stack.begin(), stack.end(), w);
        std::vector<std::string> cycle(it, stack.end());
        std::sort(cycle.begin(), cycle.end());
        std::string symbol;
        for (const std::string& c : cycle) {
          if (!symbol.empty()) symbol += "<->";
          symbol += c;
        }
        if (reported.insert(symbol).second) {
          const EdgeWitness& wit = edges.at({v, w});
          out.push_back({"module-cycle", wit.path, wit.line, symbol,
                         "modules form an include cycle (" + symbol +
                             "); break the cycle by moving the shared "
                             "dependency down a layer"});
        }
      } else if (state[w] == 0) {
        dfs(w);
      }
    }
    stack.pop_back();
    state[v] = 2;
  };
  for (const auto& [v, _] : graph) {
    if (state[v] == 0) dfs(v);
  }
}

void include_cycle_pass(const std::vector<FileModel>& models,
                        std::vector<Finding>& out) {
  // File-level graph: resolve a quoted target to a scanned file by suffix
  // ("/target" or exact). Ambiguous targets are skipped.
  std::map<std::string, const FileModel*> by_path;
  for (const FileModel& m : models) by_path[m.path] = &m;
  const auto resolve = [&](const std::string& target) -> std::string {
    std::string hit;
    const std::string tail = "/" + target;
    for (const auto& [path, model] : by_path) {
      (void)model;
      const bool match =
          path == target ||
          (path.size() > tail.size() &&
           path.compare(path.size() - tail.size(), tail.size(), tail) == 0);
      if (match) {
        if (!hit.empty()) return {};  // ambiguous
        hit = path;
      }
    }
    return hit;
  };

  std::map<std::string, std::vector<std::pair<std::string, int>>> graph;
  for (const FileModel& m : models) {
    for (const IncludeDecl& inc : m.includes) {
      if (inc.system) continue;
      const std::string to = resolve(inc.target);
      if (!to.empty() && to != m.path) graph[m.path].push_back({to, inc.line});
    }
  }

  std::map<std::string, int> state;
  std::vector<std::string> stack;
  std::set<std::string> reported;
  const std::function<void(const std::string&)> dfs = [&](const std::string& v) {
    state[v] = 1;
    stack.push_back(v);
    for (const auto& [w, line] : graph[v]) {
      if (state[w] == 1) {
        const auto it = std::find(stack.begin(), stack.end(), w);
        std::vector<std::string> cycle(it, stack.end());
        std::sort(cycle.begin(), cycle.end());
        std::string symbol;
        for (const std::string& c : cycle) {
          if (!symbol.empty()) symbol += "<->";
          symbol += c;
        }
        if (reported.insert(symbol).second) {
          out.push_back({"include-cycle", v, line, symbol,
                         "headers include each other in a cycle (" + symbol +
                             "); pragma once stops the recursion but the "
                             "mutual coupling stays"});
        }
      } else if (state[w] == 0) {
        dfs(w);
      }
    }
    stack.pop_back();
    state[v] = 2;
  };
  for (const auto& [v, _] : graph) {
    if (state[v] == 0) dfs(v);
  }
}

// ======================================================================
// Cross-TU function merge + call resolution (shared by lock & taint)
// ======================================================================

struct SiteRef {
  std::string path;
  int line = 0;
};

struct MergedFn {
  std::string qualified;
  SiteRef def;                      // best-known definition site
  bool has_body = false;            // any entry with calls/acquisitions/sources
  std::set<std::string> requires_held;
  std::set<std::string> excludes;
  std::vector<std::pair<Acquisition, std::string>> acquisitions;  // +path
  std::vector<ScopeClose> closes;
  std::vector<std::pair<CallSite, std::string>> calls;            // +path
  std::vector<std::pair<SourceHit, std::string>> sources;         // +path
  std::map<std::string, std::string> locals;  // params + locals: name -> type
};

/// True when acquisition `a` is still held at `line` of the same function:
/// no intervening scope close popped below the acquisition's depth.
bool still_held(const MergedFn& fn, const Acquisition& a, int line) {
  if (line < a.line) return false;
  for (const ScopeClose& c : fn.closes) {
    if (c.line > a.line && c.line <= line && c.depth_after < a.depth) {
      return false;
    }
  }
  return true;
}

/// Field-type index across every scanned class, for receiver typing.
struct TypeIndex {
  // qualified owner -> member name -> unqualified type
  std::map<std::string, std::map<std::string, std::string>> fields_by_owner;
  // unqualified class name -> qualified owners with that trailing name
  std::multimap<std::string, std::string> owners_by_class;
};

std::string last_component(const std::string& qualified) {
  const std::size_t cut = qualified.rfind("::");
  return cut == std::string::npos ? qualified : qualified.substr(cut + 2);
}

TypeIndex build_type_index(const std::vector<FileModel>& models) {
  TypeIndex idx;
  for (const FileModel& m : models) {
    for (const FieldDecl& f : m.fields) {
      auto& fields = idx.fields_by_owner[f.owner];
      if (!fields.count(f.name)) {
        fields[f.name] = f.type;
        idx.owners_by_class.emplace(last_component(f.owner), f.owner);
      }
    }
  }
  return idx;
}

std::map<std::string, MergedFn> merge_functions(
    const std::vector<FileModel>& models) {
  std::map<std::string, MergedFn> merged;
  for (const FileModel& m : models) {
    for (const FunctionInfo& f : m.functions) {
      MergedFn& mf = merged[f.qualified];
      const bool body = !f.calls.empty() || !f.acquisitions.empty() ||
                        !f.sources.empty();
      if (mf.qualified.empty() || (body && !mf.has_body)) {
        mf.qualified = f.qualified;
        mf.def = {m.path, f.line};
        mf.has_body = mf.has_body || body;
      }
      mf.requires_held.insert(f.requires_held.begin(), f.requires_held.end());
      mf.excludes.insert(f.excludes.begin(), f.excludes.end());
      for (const Acquisition& a : f.acquisitions) mf.acquisitions.push_back({a, m.path});
      for (const CallSite& c : f.calls) mf.calls.push_back({c, m.path});
      for (const SourceHit& s : f.sources) mf.sources.push_back({s, m.path});
      mf.closes.insert(mf.closes.end(), f.closes.begin(), f.closes.end());
      mf.locals.insert(f.locals.begin(), f.locals.end());
    }
  }
  return merged;
}

bool ends_with(const std::string& s, const std::string& tail) {
  return s.size() >= tail.size() &&
         s.compare(s.size() - tail.size(), tail.size(), tail) == 0;
}

/// Resolves a call site to candidate merged functions.
///
/// Scope-qualified calls ("ns::fn") suffix-match the qualified name; bare
/// calls match by trailing name (over-approximation, documented). Dotted
/// calls ("obj.method") are resolved through the receiver's *type* — caller
/// locals/params, then data members of the caller's class, then member hops
/// through the field index — and stay UNRESOLVED when the type is unknown.
/// That asymmetry is deliberate: `ids.erase(...)` on a std::vector must not
/// alias a project class's erase() just because the names collide.
std::vector<const MergedFn*> resolve_call(
    const MergedFn& caller, const CallSite& call,
    const std::multimap<std::string, const MergedFn*>& by_name,
    const TypeIndex& types) {
  std::vector<const MergedFn*> out;
  const bool dotted = call.qualifier.find('.') != std::string::npos;
  if (!dotted) {
    const bool scoped = call.qualifier.find("::") != std::string::npos;
    const auto [lo, hi] = by_name.equal_range(call.callee);
    for (auto it = lo; it != hi; ++it) {
      const MergedFn* fn = it->second;
      if (scoped && fn->qualified != call.qualifier &&
          !ends_with(fn->qualified, "::" + call.qualifier)) {
        continue;
      }
      out.push_back(fn);
    }
    return out;
  }

  // Dotted: type the receiver chain.
  std::vector<std::string> comps;
  std::size_t pos = 0;
  while (pos <= call.qualifier.size()) {
    std::size_t dot = call.qualifier.find('.', pos);
    if (dot == std::string::npos) dot = call.qualifier.size();
    comps.push_back(call.qualifier.substr(pos, dot - pos));
    pos = dot + 1;
  }
  if (comps.size() < 2) return out;
  const std::size_t cut = caller.qualified.rfind("::");
  const std::string owner =
      cut == std::string::npos ? std::string() : caller.qualified.substr(0, cut);
  std::string type;
  if (comps[0] == "this") {
    type = last_component(owner);
  } else if (const auto lit = caller.locals.find(comps[0]);
             lit != caller.locals.end()) {
    type = lit->second;
  } else if (const auto fit = types.fields_by_owner.find(owner);
             fit != types.fields_by_owner.end()) {
    const auto mit = fit->second.find(comps[0]);
    if (mit != fit->second.end()) type = mit->second;
  }
  if (type.empty() || type == "auto") return out;
  // Middle hops are fields of the current type.
  for (std::size_t h = 1; h + 1 < comps.size(); ++h) {
    std::string next;
    const auto [lo, hi] = types.owners_by_class.equal_range(type);
    for (auto it = lo; it != hi && next.empty(); ++it) {
      const auto& fields = types.fields_by_owner.at(it->second);
      const auto mit = fields.find(comps[h]);
      if (mit != fields.end()) next = mit->second;
    }
    if (next.empty() || next == "auto") return out;
    type = next;
  }
  const std::string want = type + "::" + call.callee;
  const auto [lo, hi] = by_name.equal_range(call.callee);
  for (auto it = lo; it != hi; ++it) {
    const MergedFn* fn = it->second;
    if (fn->qualified == want || ends_with(fn->qualified, "::" + want)) {
      out.push_back(fn);
    }
  }
  return out;
}

// ======================================================================
// Pass 2: lock-order
// ======================================================================

struct LockEdge {
  std::string via;  // function carrying the witness
  SiteRef site;
  std::string note;
};

void lock_pass(const std::map<std::string, MergedFn>& merged,
               const std::multimap<std::string, const MergedFn*>& by_name,
               const TypeIndex& types, std::vector<Finding>& out) {
  // Transitive acquire sets via fixpoint over the call graph.
  std::map<std::string, std::set<std::string>> acq;
  for (const auto& [name, fn] : merged) {
    for (const auto& [a, path] : fn.acquisitions) {
      (void)path;
      acq[name].insert(a.mutex);
    }
  }
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 64) {
    changed = false;
    for (const auto& [name, fn] : merged) {
      std::set<std::string>& mine = acq[name];
      for (const auto& [c, path] : fn.calls) {
        (void)path;
        for (const MergedFn* g : resolve_call(fn, c, by_name, types)) {
          for (const std::string& m : acq[g->qualified]) {
            if (mine.insert(m).second) changed = true;
          }
        }
      }
    }
  }

  // Mutex graph: from -> to with a witness.
  std::map<std::pair<std::string, std::string>, LockEdge> edges;
  const auto add_edge = [&](const std::string& from, const std::string& to,
                            const std::string& via, const SiteRef& site,
                            const std::string& note) {
    edges.emplace(std::make_pair(from, to), LockEdge{via, site, note});
  };

  for (const auto& [name, fn] : merged) {
    // Nested direct acquisitions: a second MutexLock while the first is
    // still in scope orders the pair (and re-locking the same mutex is an
    // immediate self-deadlock).
    for (std::size_t i = 0; i < fn.acquisitions.size(); ++i) {
      for (std::size_t j = i + 1; j < fn.acquisitions.size(); ++j) {
        const auto& [ai, pi] = fn.acquisitions[i];
        const auto& [aj, pj] = fn.acquisitions[j];
        (void)pi;
        if (!still_held(fn, ai, aj.line)) continue;
        add_edge(ai.mutex, aj.mutex, name, {pj, aj.line},
                 ai.mutex == aj.mutex ? "re-acquired while already held"
                                      : "nested MutexLock");
      }
    }
    // CM_REQUIRES context orders before every acquisition in the body.
    for (const std::string& held : fn.requires_held) {
      for (const auto& [a, path] : fn.acquisitions) {
        if (held == a.mutex) continue;
        add_edge(held, a.mutex, name, {path, a.line},
                 "acquired under CM_REQUIRES(" + last_component(held) + ")");
      }
    }
    // Calls made while holding a lock inherit the callee's acquire set.
    for (const auto& [c, cpath] : fn.calls) {
      std::set<std::string> held = fn.requires_held;
      for (const auto& [a, apath] : fn.acquisitions) {
        (void)apath;
        if (still_held(fn, a, c.line)) held.insert(a.mutex);
      }
      if (held.empty()) continue;
      for (const MergedFn* g : resolve_call(fn, c, by_name, types)) {
        // CM_EXCLUDES check: callee must not run with these held.
        for (const std::string& h : held) {
          if (g->excludes.count(h)) {
            out.push_back(
                {"lock-excludes-held", cpath, c.line,
                 name + "!" + last_component(h),
                 name + " calls " + g->qualified + " while holding " + h +
                     ", but the callee is annotated CM_EXCLUDES on that "
                     "mutex — self-deadlock on a non-recursive mutex"});
          }
        }
        for (const std::string& m : acq[g->qualified]) {
          for (const std::string& h : held) {
            if (h == m) continue;  // reacquire-through-call is the
                                   // CM_EXCLUDES rule's job to catch
            add_edge(h, m, name, {cpath, c.line},
                     "call to " + g->qualified + " acquires " +
                         last_component(m));
          }
        }
      }
    }
  }

  // Cycle detection (DFS, same scheme as the module pass).
  std::map<std::string, std::vector<std::string>> graph;
  for (const auto& [e, w] : edges) {
    (void)w;
    graph[e.first].push_back(e.second);
  }
  std::map<std::string, int> state;
  std::vector<std::string> stack;
  std::set<std::string> reported;
  const std::function<void(const std::string&)> dfs = [&](const std::string& v) {
    state[v] = 1;
    stack.push_back(v);
    for (const std::string& w : graph[v]) {
      if (state[w] == 1) {
        const auto it = std::find(stack.begin(), stack.end(), w);
        std::vector<std::string> cycle(it, stack.end());
        std::sort(cycle.begin(), cycle.end());
        std::string symbol;
        for (const std::string& c : cycle) {
          if (!symbol.empty()) symbol += "<->";
          symbol += last_component(c);
        }
        if (reported.insert(symbol).second) {
          const LockEdge& wit = edges.at({v, w});
          std::string detail = "lock-order cycle: ";
          for (const std::string& c : cycle) {
            detail += c + " ";
          }
          detail += "— witness: " + wit.via + " (" + wit.note + ")";
          out.push_back({"lock-order", wit.site.path, wit.site.line, symbol,
                         detail});
        }
      } else if (state[w] == 0) {
        dfs(w);
      }
    }
    stack.pop_back();
    state[v] = 2;
  };
  for (const auto& [v, _] : graph) {
    if (state[v] == 0) dfs(v);
  }
  // Self-edges (reacquisition) are cycles of length one.
  for (const auto& [e, w] : edges) {
    if (e.first != e.second) continue;
    const std::string symbol = last_component(e.first);
    if (reported.insert(symbol).second) {
      out.push_back({"lock-order", w.site.path, w.site.line, symbol,
                     "mutex " + e.first + " acquired while already held (" +
                         w.note + ", in " + w.via + ")"});
    }
  }
}

// ======================================================================
// Pass 3: determinism taint
// ======================================================================

const char* source_kind_name(SourceHit::Kind kind) {
  switch (kind) {
    case SourceHit::Kind::kWallClock: return "wall-clock";
    case SourceHit::Kind::kRawRng: return "raw RNG";
    case SourceHit::Kind::kUnorderedIteration: return "unordered iteration";
  }
  return "?";
}

/// Allowlisted sinks: nondeterminism is the point of these — log timestamps,
/// the seeded RNG wrapper's internals, and observability wall stamps.
bool taint_sink(const MergedFn& fn) {
  const std::string& p = fn.def.path;
  if (p.rfind("src/common/log.", 0) == 0) return true;
  if (p.rfind("src/common/rng.", 0) == 0) return true;
  if (p.rfind("src/obs/", 0) == 0) return true;
  if (fn.qualified.rfind("crowdmap::obs::", 0) == 0) return true;
  return false;
}

void taint_pass(const std::map<std::string, MergedFn>& merged,
                const std::multimap<std::string, const MergedFn*>& by_name,
                const TypeIndex& types, std::vector<Finding>& out) {
  struct Taint {
    SiteRef site;
    std::string reason;
  };
  std::map<std::string, Taint> tainted;
  for (const auto& [name, fn] : merged) {
    if (fn.sources.empty() || taint_sink(fn)) continue;
    const auto& [hit, path] = fn.sources.front();
    tainted[name] = {{path, hit.line},
                     std::string(source_kind_name(hit.kind)) + " source '" +
                         hit.token + "'"};
  }

  // Propagate to callers; a sink absorbs taint instead of spreading it.
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 64) {
    changed = false;
    for (const auto& [name, fn] : merged) {
      if (tainted.count(name) || taint_sink(fn)) continue;
      for (const auto& [c, path] : fn.calls) {
        bool hit = false;
        for (const MergedFn* g : resolve_call(fn, c, by_name, types)) {
          if (tainted.count(g->qualified)) {
            tainted[name] = {{path, c.line},
                             "calls tainted " + g->qualified};
            changed = true;
            hit = true;
            break;
          }
        }
        if (hit) break;
      }
    }
  }

  for (const auto& [name, taint] : tainted) {
    out.push_back({"determinism-taint", taint.site.path, taint.site.line, name,
                   name + " is nondeterministic: " + taint.reason +
                       " (route through common::Rng / obs stamps, or sink "
                       "the value into logging only)"});
  }
}

// ======================================================================
// SARIF / formatting helpers
// ======================================================================

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() { return kRules; }
const std::vector<LayerInfo>& layer_table() { return kLayers; }
const std::vector<LayeringException>& layering_allowlist() { return kAllowlist; }

std::vector<Finding> analyze(const std::vector<FileModel>& models) {
  std::vector<Finding> out;
  layering_pass(models, out);
  include_cycle_pass(models, out);

  const std::map<std::string, MergedFn> merged = merge_functions(models);
  std::multimap<std::string, const MergedFn*> by_name;
  for (const auto& [name, fn] : merged) {
    by_name.emplace(last_component(name), &fn);
  }
  const TypeIndex types = build_type_index(models);
  lock_pass(merged, by_name, types, out);
  taint_pass(merged, by_name, types, out);

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.rule, a.path, a.line, a.symbol) <
           std::tie(b.rule, b.path, b.line, b.symbol);
  });
  return out;
}

std::string format(const Finding& f) {
  return f.path + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.symbol + ": " + f.message;
}

std::string to_sarif(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"crowdmap_analyze\",\n"
     << "          \"informationUri\": "
        "\"docs/STATIC_ANALYSIS.md\",\n"
     << "          \"rules\": [\n";
  for (std::size_t i = 0; i < kRules.size(); ++i) {
    os << "            {\"id\": \"" << kRules[i].name
       << "\", \"shortDescription\": {\"text\": \""
       << json_escape(kRules[i].summary) << "\"}}"
       << (i + 1 < kRules.size() ? "," : "") << "\n";
  }
  os << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "        {\"ruleId\": \"" << f.rule
       << "\", \"level\": \"error\", \"message\": {\"text\": \""
       << json_escape(f.symbol + ": " + f.message)
       << "\"}, \"locations\": [{\"physicalLocation\": "
          "{\"artifactLocation\": {\"uri\": \""
       << json_escape(f.path) << "\"}, \"region\": {\"startLine\": "
       << std::max(1, f.line) << "}}}]}"
       << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

std::string baseline_key(const Finding& f) {
  return f.rule + "|" + f.path + "|" + f.symbol;
}

std::set<std::string> parse_baseline(std::string_view content) {
  std::set<std::string> keys;
  std::size_t pos = 0;
  while (pos <= content.size()) {
    std::size_t end = content.find('\n', pos);
    if (end == std::string_view::npos) end = content.size();
    std::string_view line = content.substr(pos, end - pos);
    pos = end + 1;
    // Trim and skip comments/blank lines.
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    while (!line.empty() &&
           (line.back() == ' ' || line.back() == '\t' || line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty() || line.front() == '#') continue;
    keys.insert(std::string(line));
    if (end == content.size()) break;
  }
  return keys;
}

std::string render_baseline(const std::vector<Finding>& findings) {
  std::set<std::string> keys;
  for (const Finding& f : findings) keys.insert(baseline_key(f));
  std::string out =
      "# crowdmap_analyze suppression baseline.\n"
      "# One key per line: rule|path|symbol (line numbers are deliberately\n"
      "# absent so unrelated edits do not churn this file). CI runs\n"
      "# --check-baseline and fails only on findings NOT listed here.\n"
      "# Every entry must carry a '#' comment above it justifying why it is\n"
      "# baselined instead of fixed.\n";
  for (const std::string& k : keys) out += k + "\n";
  return out;
}

std::vector<Finding> new_findings(const std::vector<Finding>& findings,
                                  const std::set<std::string>& baseline) {
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    if (!baseline.count(baseline_key(f))) out.push_back(f);
  }
  return out;
}

}  // namespace crowdmap::analyze

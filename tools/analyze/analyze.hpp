// crowdmap_analyze — whole-program analyzer for the CrowdMap tree.
//
// Where crowdmap_lint checks each line in isolation, this tool builds a
// model of every translation unit (tools/analyze/model.hpp) and runs three
// cross-file passes:
//
//   layering     — the module DAG below is enforced over the include graph:
//                  cross-layer includes must point downward; same-layer
//                  cross-module edges are legal but guarded by module-cycle
//                  detection; upward edges need a per-edge allowlist entry
//                  with a written justification.
//   lock-order   — a global mutex-acquisition graph is assembled from
//                  CM_REQUIRES / CM_ACQUIRE annotations and MutexLock
//                  construction sites, with acquisitions propagated through
//                  the name-resolved call graph; cycles are reported as
//                  potential deadlocks, and calling a CM_EXCLUDES(m)
//                  function while m is held is flagged directly.
//   determinism  — functions transitively reachable from a wall-clock,
//                  raw-RNG, or unordered-iteration source are flagged
//                  unless the chain terminates in an allowlisted sink
//                  (logging, the seeded RNG wrapper, observability stamps).
//
// Output is human text and SARIF 2.1.0. A committed baseline file
// (tools/analyze/baseline.txt) suppresses known findings by stable key;
// --check-baseline fails only on NEW findings so CI gates on regressions
// while the baseline is paid down. Rationale: docs/STATIC_ANALYSIS.md.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/model.hpp"

namespace crowdmap::analyze {

/// One analyzer finding. `symbol` is the stable identity used for baseline
/// keys (module edge, mutex cycle, function name) — line numbers are *not*
/// part of the key so the baseline survives unrelated edits.
struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  std::string symbol;
  std::string message;
};

/// Catalog entry: rule name plus a one-line rationale (drives --list-rules,
/// the SARIF rule table, and docs).
struct RuleInfo {
  std::string_view name;
  std::string_view summary;
};

[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();

/// The declared module layering, top layer first. Exposed for docs/tests.
struct LayerInfo {
  int rank = 0;  // 0 = top (api); larger = lower
  std::string_view module;
};

[[nodiscard]] const std::vector<LayerInfo>& layer_table();

/// An allowlisted upward include edge with its written justification.
struct LayeringException {
  std::string_view from;
  std::string_view to;
  std::string_view why;
};

[[nodiscard]] const std::vector<LayeringException>& layering_allowlist();

/// Runs all passes over the given file models (one per scanned file) and
/// returns findings sorted by (rule, path, line, symbol).
[[nodiscard]] std::vector<Finding> analyze(const std::vector<FileModel>& models);

/// "path:line: [rule] symbol: message" — compiler-style diagnostic line.
[[nodiscard]] std::string format(const Finding& finding);

/// Full SARIF 2.1.0 document for the findings.
[[nodiscard]] std::string to_sarif(const std::vector<Finding>& findings);

/// Baseline key: "rule|path|symbol" (no line — drift-stable).
[[nodiscard]] std::string baseline_key(const Finding& finding);

/// Parses a baseline file: one key per line; '#' comments and blanks skipped.
[[nodiscard]] std::set<std::string> parse_baseline(std::string_view content);

/// Renders findings as a baseline file body (sorted, deduplicated, with a
/// header comment explaining the format).
[[nodiscard]] std::string render_baseline(const std::vector<Finding>& findings);

/// Findings whose key is not in `baseline` — what --check-baseline gates on.
[[nodiscard]] std::vector<Finding> new_findings(
    const std::vector<Finding>& findings, const std::set<std::string>& baseline);

}  // namespace crowdmap::analyze

// Source model for crowdmap_analyze: one pass over the token stream of a
// file recovers the facts the whole-program passes need — includes, the
// namespace/class scope structure, function definitions with their lock
// annotations (CM_REQUIRES / CM_EXCLUDES / CM_ACQUIRE), MutexLock
// construction sites, call sites, mutex member declarations, and
// determinism-taint source sites (wall clock, raw RNG, unordered-container
// iteration).
//
// This is a heuristic structural recovery, not a compiler: it tracks braces
// and declaration heads well enough for the project's house style. Where it
// must guess (lambda bodies fold into the enclosing function; object
// identity for `a.b`-style mutexes collapses to the enclosing class) it
// guesses conservatively and the passes document the approximation.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/token.hpp"

namespace crowdmap::analyze {

/// #include "target" (quoted) or <target> (system) at `line`.
struct IncludeDecl {
  std::string target;
  int line = 0;
  bool system = false;
};

/// One mutex acquisition inside a function body: a MutexLock construction
/// (or a CM_ACQUIRE declaration, with depth 0).
struct Acquisition {
  std::string mutex;  // canonical mutex identity (see FileModel notes)
  int line = 0;
  int depth = 0;      // brace depth inside the function body (for nesting)
};

/// A call site inside a function body. `callee` is the trailing identifier
/// (method or function name); `qualifier` is the full dotted/scoped chain
/// it was invoked through ("obj.method", "ns::fn"), for disambiguation.
struct CallSite {
  std::string callee;
  std::string qualifier;
  int line = 0;
  int depth = 0;
};

/// A scope close inside a function body: after `line`, every Acquisition
/// with depth > `depth_after` is released (its MutexLock went out of scope).
struct ScopeClose {
  int line = 0;
  int depth_after = 0;
};

/// A determinism-taint source site.
struct SourceHit {
  enum class Kind { kWallClock, kRawRng, kUnorderedIteration };
  Kind kind;
  std::string token;  // the offending token, for the message
  int line = 0;
};

/// One function definition (a body was seen) or annotated declaration.
struct FunctionInfo {
  std::string qualified;  // namespace::Class::name (house-style qualified)
  int line = 0;
  std::vector<std::string> requires_held;  // CM_REQUIRES arguments
  std::vector<std::string> excludes;       // CM_EXCLUDES arguments
  std::vector<Acquisition> acquisitions;   // MutexLock sites + CM_ACQUIRE
  std::vector<ScopeClose> closes;          // where scoped locks die
  std::vector<CallSite> calls;
  std::vector<SourceHit> sources;
  // Parameter and local-variable types (name -> unqualified type name;
  // "auto" means unknown). Lets call resolution type the receiver of
  // `obj.method(...)` instead of guessing by method name alone.
  std::map<std::string, std::string> locals;
};

/// A mutex-typed member/global declaration (common::Mutex).
struct MutexDecl {
  std::string qualified;  // namespace::Class::member
  int line = 0;
};

/// A data-member declaration inside a class: `owner::name` has type `type`
/// (unqualified). Drives receiver typing for `member_.method(...)` calls.
struct FieldDecl {
  std::string owner;  // qualified class name
  std::string name;
  std::string type;  // unqualified (last component, template args stripped)
  int line = 0;
};

struct FileModel {
  std::string path;
  std::vector<IncludeDecl> includes;
  std::vector<FunctionInfo> functions;
  std::vector<MutexDecl> mutexes;
  std::vector<FieldDecl> fields;
};

/// Builds the model for one file. `path` is repo-relative.
[[nodiscard]] FileModel build_model(std::string_view path,
                                    std::string_view content);

}  // namespace crowdmap::analyze

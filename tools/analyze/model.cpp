#include "analyze/model.hpp"

#include <algorithm>
#include <optional>
#include <set>

namespace crowdmap::analyze {

namespace {

// Keywords that can never name a call, a function, or a declared entity.
const std::set<std::string>& keywords() {
  static const std::set<std::string> kw = {
      "if",       "for",      "while",    "switch",   "catch",   "return",
      "sizeof",   "alignof",  "decltype", "noexcept", "throw",   "else",
      "do",       "case",     "goto",     "new",      "delete",  "co_return",
      "co_await", "co_yield", "static_assert",        "alignas", "typeid",
      "operator", "template", "typename", "using",    "const",   "constexpr",
      "static",   "inline",   "virtual",  "explicit", "friend",  "public",
      "private",  "protected"};
  return kw;
}

bool is_annotation_macro(const std::string& s) {
  return s.rfind("CM_", 0) == 0;
}

struct Scope {
  enum class Kind { kNamespace, kClass, kFunction, kBlock };
  Kind kind;
  std::string name;          // component this scope adds ("" for blocks)
  int function_index = -1;   // into FileModel::functions, for kFunction
};

/// Raw-RNG / wall-clock source identifiers (mirrors the lint rules; the
/// analyzer adds whole-program propagation on top). steady_clock is absent
/// by design — it feeds latency metrics, never scores.
bool wall_clock_ident(const std::string& s) {
  return s == "system_clock" || s == "gettimeofday" || s == "localtime" ||
         s == "mktime";
}

bool raw_rng_ident(const std::string& s) {
  return s == "random_device" || s == "mt19937" || s == "mt19937_64" ||
         s == "minstd_rand" || s == "minstd_rand0" ||
         s == "default_random_engine" || s == "ranlux24" || s == "ranlux48" ||
         s == "knuth_b";
}

bool unordered_ident(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

class ModelBuilder {
 public:
  ModelBuilder(std::string_view path, std::string_view content)
      : tokens_(tokenize(content)) {
    model_.path = std::string(path);
  }

  FileModel build() {
    collect_directives();
    collect_unordered_names();
    walk();
    return std::move(model_);
  }

 private:
  using Tokens = std::vector<Token>;

  // ---------------------------------------------------------- directives ---

  void collect_directives() {
    for (const Token& t : tokens_) {
      if (t.kind != TokKind::kDirective) continue;
      // body looks like: include "path"  |  include <path>
      std::size_t p = t.text.find_first_not_of(" \t");
      if (p == std::string::npos || t.text.compare(p, 7, "include") != 0) {
        continue;
      }
      p = t.text.find_first_not_of(" \t", p + 7);
      if (p == std::string::npos) continue;
      const char open = t.text[p];
      const char close = open == '<' ? '>' : '"';
      if (open != '<' && open != '"') continue;
      const std::size_t end = t.text.find(close, p + 1);
      if (end == std::string::npos) continue;
      model_.includes.push_back(
          {t.text.substr(p + 1, end - p - 1), t.line, open == '<'});
    }
  }

  // ------------------------------------------- unordered-typed variables ---

  /// Names of variables/members declared with an unordered container type
  /// anywhere in the file; range-for over one of them is a taint source.
  void collect_unordered_names() {
    for (std::size_t i = 0; i + 1 < tokens_.size(); ++i) {
      if (tokens_[i].kind != TokKind::kIdentifier ||
          !unordered_ident(tokens_[i].text)) {
        continue;
      }
      std::size_t j = i + 1;
      if (j < tokens_.size() && tokens_[j].kind == TokKind::kPunct &&
          tokens_[j].text == "<") {
        int angle = 1;
        ++j;
        while (j < tokens_.size() && angle > 0) {
          if (tokens_[j].kind == TokKind::kPunct) {
            if (tokens_[j].text == "<") ++angle;
            if (tokens_[j].text == ">") --angle;
          }
          ++j;
        }
      }
      if (j < tokens_.size() && tokens_[j].kind == TokKind::kIdentifier &&
          !keywords().count(tokens_[j].text)) {
        unordered_names_.insert(tokens_[j].text);
      }
    }
  }

  // ----------------------------------------------------------- main walk ---

  void walk() {
    std::vector<Token> head;  // declaration head since last ; { }
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      const Token& t = tokens_[i];
      if (t.kind == TokKind::kDirective) continue;

      if (t.kind == TokKind::kPunct && t.text == "{") {
        open_scope(head, t.line);
        head.clear();
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == "}") {
        close_scope(t.line);
        head.clear();
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == ";") {
        end_of_statement(head, t.line);
        head.clear();
        continue;
      }

      if (in_function()) {
        i = body_token(i);
      } else {
        head.push_back(t);
      }
    }
  }

  bool in_function() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::kFunction) return true;
      if (it->kind != Scope::Kind::kBlock) return false;
    }
    return false;
  }

  FunctionInfo* current_function() {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::kFunction) {
        return &model_.functions[static_cast<std::size_t>(it->function_index)];
      }
      if (it->kind != Scope::Kind::kBlock) return nullptr;
    }
    return nullptr;
  }

  int function_depth() const {
    int depth = 0;
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::kFunction) return depth;
      ++depth;
    }
    return depth;
  }

  std::string scope_prefix() const {
    std::string out;
    for (const Scope& s : scopes_) {
      if (s.name.empty()) continue;
      if (!out.empty()) out += "::";
      out += s.name;
    }
    return out;
  }

  // ------------------------------------------------------- scope opening ---

  void open_scope(const std::vector<Token>& head, int line) {
    if (in_function()) {
      scopes_.push_back({Scope::Kind::kBlock, "", -1});
      return;
    }
    if (!head.empty() && head[0].kind == TokKind::kIdentifier &&
        head[0].text == "namespace") {
      std::string name;
      for (std::size_t i = 1; i < head.size(); ++i) {
        if (head[i].kind == TokKind::kIdentifier &&
            head[i].text != "inline") {
          if (!name.empty()) name += "::";
          name += head[i].text;
        }
      }
      if (name.empty()) name = "(anon)";
      scopes_.push_back({Scope::Kind::kNamespace, name, -1});
      return;
    }
    if (const auto cls = class_name(head)) {
      scopes_.push_back({Scope::Kind::kClass, *cls, -1});
      return;
    }
    if (const auto fn = function_head(head)) {
      FunctionInfo info;
      const std::string prefix = scope_prefix();
      info.qualified = prefix.empty() ? fn->name : prefix + "::" + fn->name;
      info.line = line;
      info.requires_held = fn->requires_held;
      info.excludes = fn->excludes;
      for (const auto& [pname, ptype] : fn->params) info.locals[pname] = ptype;
      for (const std::string& m : fn->acquires) {
        info.acquisitions.push_back({canonical_mutex(m, info.qualified), line, 0});
      }
      // Canonicalize the annotation arguments against the function's owner.
      for (std::string& m : info.requires_held) m = canonical_mutex(m, info.qualified);
      for (std::string& m : info.excludes) m = canonical_mutex(m, info.qualified);
      model_.functions.push_back(std::move(info));
      scopes_.push_back({Scope::Kind::kFunction, "",
                         static_cast<int>(model_.functions.size()) - 1});
      return;
    }
    scopes_.push_back({Scope::Kind::kBlock, "", -1});
  }

  void close_scope(int line) {
    if (scopes_.empty()) return;
    const Scope scope = scopes_.back();
    scopes_.pop_back();
    // Closing a block inside a function releases every scoped lock taken at
    // a deeper depth — the lock-order pass needs these events to know what
    // is still held at each call site.
    if (scope.kind == Scope::Kind::kBlock) {
      if (FunctionInfo* fn = current_function()) {
        fn->closes.push_back({line, function_depth()});
      }
    }
  }

  // ------------------------------------------------- head classification ---

  std::optional<std::string> class_name(const std::vector<Token>& head) const {
    // Find the last top-level class/struct/union keyword, then the first
    // plain identifier after it (skipping annotation macros and their
    // argument lists, alignas, final). "enum class" is not a scope we track.
    int pos = -1;
    int paren = 0;
    int angle = 0;
    for (std::size_t i = 0; i < head.size(); ++i) {
      const Token& t = head[i];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(") ++paren;
        if (t.text == ")") --paren;
        if (t.text == "<") ++angle;
        if (t.text == ">") angle = std::max(0, angle - 1);
      }
      if (paren > 0 || angle > 0) continue;
      if (t.kind == TokKind::kIdentifier &&
          (t.text == "class" || t.text == "struct" || t.text == "union")) {
        if (i > 0 && head[i - 1].kind == TokKind::kIdentifier &&
            head[i - 1].text == "enum") {
          continue;
        }
        pos = static_cast<int>(i);
      }
    }
    if (pos < 0) return std::nullopt;
    for (std::size_t i = static_cast<std::size_t>(pos) + 1; i < head.size();
         ++i) {
      const Token& t = head[i];
      if (t.kind == TokKind::kIdentifier) {
        if (is_annotation_macro(t.text)) {
          // Skip the macro's argument list, if any.
          if (i + 1 < head.size() && head[i + 1].text == "(") {
            int depth = 0;
            ++i;
            while (i < head.size()) {
              if (head[i].text == "(") ++depth;
              if (head[i].text == ")" && --depth == 0) break;
              ++i;
            }
          }
          continue;
        }
        if (t.text == "alignas" || t.text == "final") continue;
        return t.text;
      }
      if (t.kind == TokKind::kPunct && t.text == ":") break;  // base clause
    }
    return std::nullopt;
  }

  struct FunctionHead {
    std::string name;
    std::vector<std::string> requires_held;
    std::vector<std::string> excludes;
    std::vector<std::string> acquires;
    std::vector<std::pair<std::string, std::string>> params;  // name -> type
  };

  /// Parses a variable-declaration fragment (`const std::string& id`,
  /// `std::vector<Seg> segs`, `mutable common::Mutex mutex_`): the declared
  /// name is the last identifier; the type is the identifier before it,
  /// skipping cv/ref/pointer tokens and a template argument list. Returns
  /// nullopt when the fragment is not a name+type declaration.
  static std::optional<std::pair<std::string, std::string>> parse_var_decl(
      const std::vector<Token>& toks, std::size_t begin, std::size_t end) {
    // Truncate at a top-level '=' (default value / initializer).
    int paren = 0;
    int angle = 0;
    std::size_t stop = end;
    for (std::size_t i = begin; i < end; ++i) {
      if (toks[i].kind != TokKind::kPunct) continue;
      const std::string& p = toks[i].text;
      if (p == "(" || p == "[") ++paren;
      if (p == ")" || p == "]") --paren;
      if (p == "<") ++angle;
      if (p == ">") angle = std::max(0, angle - 1);
      if (p == "=" && paren == 0 && angle == 0) {
        stop = i;
        break;
      }
    }
    if (stop <= begin) return std::nullopt;
    const std::size_t last = stop - 1;
    if (toks[last].kind != TokKind::kIdentifier ||
        keywords().count(toks[last].text)) {
      return std::nullopt;
    }
    // Walk backwards over ref/pointer/cv tokens to the type.
    std::size_t i = last;
    while (i > begin) {
      --i;
      const Token& t = toks[i];
      if (t.kind == TokKind::kPunct && (t.text == "&" || t.text == "*")) continue;
      if (t.kind == TokKind::kIdentifier && t.text == "const") continue;
      if (t.kind == TokKind::kPunct && t.text == ">") {
        int depth = 1;
        while (i > begin && depth > 0) {
          --i;
          if (toks[i].kind == TokKind::kPunct) {
            if (toks[i].text == ">") ++depth;
            if (toks[i].text == "<") --depth;
          }
        }
        if (depth > 0 || i == begin) return std::nullopt;
        --i;
      }
      if (toks[i].kind == TokKind::kIdentifier &&
          !keywords().count(toks[i].text) &&
          !is_annotation_macro(toks[i].text)) {
        return std::make_pair(toks[last].text, toks[i].text);
      }
      return std::nullopt;
    }
    return std::nullopt;
  }

  /// Parses a declaration head as a function (definition) head: finds the
  /// first `identifier-chain (` candidate, then the CM_* lock annotations
  /// after the parameter list. Returns nullopt when the head cannot be a
  /// function (control flow, initializer braces, class/enum, ...).
  std::optional<FunctionHead> function_head(const std::vector<Token>& head) const {
    if (head.empty()) return std::nullopt;
    if (head[0].kind == TokKind::kIdentifier &&
        (head[0].text == "if" || head[0].text == "for" ||
         head[0].text == "while" || head[0].text == "switch" ||
         head[0].text == "catch" || head[0].text == "do" ||
         head[0].text == "else" || head[0].text == "try" ||
         head[0].text == "enum" || head[0].text == "using" ||
         head[0].text == "typedef" || head[0].text == "extern")) {
      return std::nullopt;
    }
    const Token& last = head.back();
    if (last.kind == TokKind::kPunct &&
        (last.text == "=" || last.text == "," || last.text == "(" ||
         last.text == "[" || last.text == "]")) {
      return std::nullopt;  // brace initializer or lambda introducer
    }
    // Find the candidate name: first identifier chain followed by '('.
    std::optional<std::size_t> name_end;  // index of the '(' token
    std::string name;
    for (std::size_t i = 0; i < head.size();) {
      if (head[i].kind != TokKind::kIdentifier ||
          keywords().count(head[i].text) || is_annotation_macro(head[i].text)) {
        // Skip annotation macros together with their argument list so
        // CM_CAPABILITY("x") arguments never look like candidates.
        if (head[i].kind == TokKind::kIdentifier &&
            is_annotation_macro(head[i].text) && i + 1 < head.size() &&
            head[i + 1].text == "(") {
          int depth = 0;
          ++i;
          while (i < head.size()) {
            if (head[i].text == "(") ++depth;
            if (head[i].text == ")" && --depth == 0) break;
            ++i;
          }
        }
        ++i;
        continue;
      }
      // Build the chain: id (:: id | <...> :: id)*
      std::string chain = head[i].text;
      std::size_t j = i + 1;
      while (j < head.size()) {
        if (head[j].kind == TokKind::kPunct && head[j].text == "<") {
          // Skip template arguments; chain continues only via '::' after.
          int angle = 1;
          std::size_t k = j + 1;
          while (k < head.size() && angle > 0) {
            if (head[k].kind == TokKind::kPunct) {
              if (head[k].text == "<") ++angle;
              if (head[k].text == ">") --angle;
            }
            ++k;
          }
          if (k < head.size() && head[k].kind == TokKind::kPunct &&
              head[k].text == "::") {
            j = k;
            continue;
          }
          j = k;
          break;
        }
        if (head[j].kind == TokKind::kPunct && head[j].text == "::" &&
            j + 1 < head.size() &&
            head[j + 1].kind == TokKind::kIdentifier) {
          if (head[j + 1].text == "operator") {
            chain += "::operator";
            j += 2;
            break;
          }
          chain += "::" + head[j + 1].text;
          j += 2;
          continue;
        }
        break;
      }
      if (j < head.size() && head[j].kind == TokKind::kPunct &&
          head[j].text == "(") {
        name = chain;
        name_end = j;
        break;
      }
      i = std::max(j, i + 1);
    }
    if (!name_end) return std::nullopt;
    FunctionHead fn;
    fn.name = name;
    // Walk the parameter list, collecting `name -> type` per parameter so
    // call resolution can type dotted receivers; then read the trailing
    // lock annotations.
    std::size_t i = *name_end;
    int depth = 0;
    int angle = 0;
    std::size_t param_begin = i + 1;
    const auto flush_param = [&](std::size_t end_idx) {
      if (const auto p = parse_var_decl(head, param_begin, end_idx)) {
        fn.params.push_back(*p);
      }
    };
    while (i < head.size()) {
      if (head[i].kind == TokKind::kPunct) {
        const std::string& p = head[i].text;
        if (p == "(") ++depth;
        if (p == "<") ++angle;
        if (p == ">") angle = std::max(0, angle - 1);
        if (p == ")") {
          if (--depth == 0) {
            flush_param(i);
            break;
          }
        }
        if (p == "," && depth == 1 && angle == 0) {
          flush_param(i);
          param_begin = i + 1;
        }
      }
      ++i;
    }
    for (++i; i < head.size(); ++i) {
      if (head[i].kind != TokKind::kIdentifier) continue;
      std::vector<std::string>* sink = nullptr;
      if (head[i].text == "CM_REQUIRES") sink = &fn.requires_held;
      if (head[i].text == "CM_EXCLUDES") sink = &fn.excludes;
      if (head[i].text == "CM_ACQUIRE") sink = &fn.acquires;
      if (!sink) continue;
      if (i + 1 >= head.size() || head[i + 1].text != "(") continue;
      // Split the argument list on top-level commas.
      std::size_t j = i + 1;
      int d = 0;
      std::string arg;
      while (j < head.size()) {
        const Token& t = head[j];
        if (t.kind == TokKind::kPunct && t.text == "(") {
          if (++d > 1) arg += t.text;
          ++j;
          continue;
        }
        if (t.kind == TokKind::kPunct && t.text == ")") {
          if (--d == 0) break;
          arg += t.text;
          ++j;
          continue;
        }
        if (t.kind == TokKind::kPunct && t.text == "," && d == 1) {
          if (!arg.empty()) sink->push_back(arg);
          arg.clear();
          ++j;
          continue;
        }
        arg += t.text;
        ++j;
      }
      if (!arg.empty()) sink->push_back(arg);
      i = j;
    }
    return fn;
  }

  // ------------------------------------------------ statement-level decls ---

  void end_of_statement(const std::vector<Token>& head, int line) {
    if (in_function() || head.empty()) return;
    // Annotated function declaration without a body (header files): carry
    // the annotations so cross-TU callers of the definition see them.
    const bool has_lock_annotation =
        std::any_of(head.begin(), head.end(), [](const Token& t) {
          return t.kind == TokKind::kIdentifier &&
                 (t.text == "CM_REQUIRES" || t.text == "CM_EXCLUDES" ||
                  t.text == "CM_ACQUIRE");
        });
    if (has_lock_annotation) {
      if (const auto fn = function_head(head)) {
        FunctionInfo info;
        const std::string prefix = scope_prefix();
        info.qualified = prefix.empty() ? fn->name : prefix + "::" + fn->name;
        info.line = line;
        info.requires_held = fn->requires_held;
        info.excludes = fn->excludes;
        for (const std::string& m : fn->acquires) {
          info.acquisitions.push_back(
              {canonical_mutex(m, info.qualified), line, 0});
        }
        for (std::string& m : info.requires_held) {
          m = canonical_mutex(m, info.qualified);
        }
        for (std::string& m : info.excludes) {
          m = canonical_mutex(m, info.qualified);
        }
        model_.functions.push_back(std::move(info));
        return;
      }
    }
    // Variable declaration at class/namespace scope: record data members
    // (they type the receivers of `member_.method(...)` calls) and common::
    // Mutex declarations (canonical identity for file-level lock globals).
    if (head[0].kind == TokKind::kIdentifier &&
        (head[0].text == "class" || head[0].text == "struct" ||
         head[0].text == "enum" || head[0].text == "typedef" ||
         head[0].text == "extern")) {
      return;
    }
    if (std::any_of(head.begin(), head.end(), [](const Token& t) {
          return t.kind == TokKind::kIdentifier &&
                 (t.text == "using" || t.text == "friend" ||
                  t.text == "template");
        })) {
      return;
    }
    if (const auto decl = parse_var_decl(head, 0, head.size())) {
      const auto& [name, type] = *decl;
      const std::string prefix = scope_prefix();
      if (!scopes_.empty() && scopes_.back().kind == Scope::Kind::kClass) {
        model_.fields.push_back({prefix, name, type, line});
      }
      if (type == "Mutex") {
        model_.mutexes.push_back(
            {prefix.empty() ? name : prefix + "::" + name, line});
      }
    }
  }

  // -------------------------------------------------- function body scan ---

  /// Handles tokens_[i] inside a function body; returns the index of the
  /// last token consumed. One chain walk serves every consumer: MutexLock
  /// acquisitions, call sites (with full receiver chain for typed
  /// resolution), taint sources (including qualified forms like
  /// std::chrono::system_clock::now), and local-variable declarations.
  std::size_t body_token(std::size_t i) {
    FunctionInfo* fn = current_function();
    if (!fn) return i;
    const Token& t = tokens_[i];
    if (t.kind != TokKind::kIdentifier) return i;
    const int depth = function_depth();
    const auto next_is = [&](std::size_t k, const char* p) {
      return k < tokens_.size() && tokens_[k].kind == TokKind::kPunct &&
             tokens_[k].text == p;
    };

    // Range-for over an unordered container: for ( ... : <expr> ).
    if (t.text == "for" && next_is(i + 1, "(")) {
      std::size_t j = i + 1;
      int d = 0;
      std::optional<std::size_t> colon;
      while (j < tokens_.size()) {
        if (tokens_[j].kind == TokKind::kPunct) {
          if (tokens_[j].text == "(") ++d;
          if (tokens_[j].text == ")" && --d == 0) break;
          if (tokens_[j].text == ":" && d == 1) colon = j;
        }
        ++j;
      }
      if (colon) {
        std::string last_ident;
        for (std::size_t k = *colon + 1; k < j; ++k) {
          if (tokens_[k].kind == TokKind::kIdentifier) {
            last_ident = tokens_[k].text;
          }
        }
        if (!last_ident.empty() && unordered_names_.count(last_ident)) {
          fn->sources.push_back({SourceHit::Kind::kUnorderedIteration,
                                 last_ident, t.line});
        }
      }
      return i;  // body tokens of the loop get scanned normally
    }
    if (keywords().count(t.text) || is_annotation_macro(t.text)) return i;

    // Is this token the *name* of a declaration (`Type name ...`)? Then it
    // is neither a call nor a source use.
    bool declared_name = false;
    if (i > 0) {
      const Token& prev = tokens_[i - 1];
      declared_name = (prev.kind == TokKind::kIdentifier &&
                       !keywords().count(prev.text)) ||
                      (prev.kind == TokKind::kPunct && prev.text == ">");
    }

    // Walk the identifier chain: id ((:: | . | ->) id)*.
    std::vector<std::string> comps{t.text};
    std::string qualifier = t.text;
    bool dotted = false;
    std::size_t j = i + 1;
    while (j + 1 < tokens_.size() && tokens_[j].kind == TokKind::kPunct &&
           (tokens_[j].text == "::" || tokens_[j].text == "." ||
            tokens_[j].text == "->") &&
           tokens_[j + 1].kind == TokKind::kIdentifier) {
      dotted = dotted || tokens_[j].text != "::";
      qualifier += tokens_[j].text == "::" ? "::" : ".";
      comps.push_back(tokens_[j + 1].text);
      qualifier += comps.back();
      j += 2;
    }
    const std::string callee = comps.back();

    // Taint sources anywhere in the chain (std::chrono::system_clock::now,
    // std::mt19937 — including the declaration of the engine itself).
    for (const std::string& c : comps) {
      if (wall_clock_ident(c)) {
        fn->sources.push_back({SourceHit::Kind::kWallClock, c, t.line});
      } else if (raw_rng_ident(c)) {
        fn->sources.push_back({SourceHit::Kind::kRawRng, c, t.line});
      }
    }

    // [common::]MutexLock <var> ( <expr> ) — scoped acquisition.
    if (callee == "MutexLock" && j + 1 < tokens_.size() &&
        tokens_[j].kind == TokKind::kIdentifier &&
        (next_is(j + 1, "(") || next_is(j + 1, "{"))) {
      std::size_t k = j + 1;
      const std::string open = tokens_[k].text;
      const std::string close = open == "(" ? ")" : "}";
      int d = 0;
      std::string expr;
      while (k < tokens_.size()) {
        if (tokens_[k].kind == TokKind::kPunct && tokens_[k].text == open) {
          if (++d > 1) expr += tokens_[k].text;
          ++k;
          continue;
        }
        if (tokens_[k].kind == TokKind::kPunct && tokens_[k].text == close) {
          if (--d == 0) break;
          expr += tokens_[k].text;
          ++k;
          continue;
        }
        expr += tokens_[k].text;
        ++k;
      }
      fn->acquisitions.push_back(
          {canonical_mutex(expr, fn->qualified), t.line, depth});
      return k;
    }

    // Call site.
    if (next_is(j, "(") && !declared_name && !keywords().count(callee)) {
      // C-style wall-clock/RNG calls: bare or std:: only — `foo.time()` and
      // `other::rand()` are different functions.
      if ((callee == "time" || callee == "clock" || callee == "rand" ||
           callee == "srand") &&
          (comps.size() == 1 ||
           (comps.size() == 2 && comps[0] == "std" && !dotted))) {
        const auto kind = (callee == "time" || callee == "clock")
                              ? SourceHit::Kind::kWallClock
                              : SourceHit::Kind::kRawRng;
        fn->sources.push_back({kind, callee, t.line});
      }
      fn->calls.push_back({callee, qualifier, t.line, depth});
      return j - 1;  // rescan from inside the argument list
    }

    // Local-variable declaration `Type[<...>] [&*const] name` at statement
    // start: record name -> type so dotted receivers resolve by type.
    const bool stmt_start =
        i == 0 ||
        (tokens_[i - 1].kind == TokKind::kPunct &&
         (tokens_[i - 1].text == ";" || tokens_[i - 1].text == "{" ||
          tokens_[i - 1].text == "}" || tokens_[i - 1].text == "(" ||
          tokens_[i - 1].text == ",")) ||
        (tokens_[i - 1].kind == TokKind::kIdentifier &&
         (tokens_[i - 1].text == "const" || tokens_[i - 1].text == "constexpr" ||
          tokens_[i - 1].text == "static"));
    if (!declared_name && !dotted && stmt_start) {
      std::size_t k = j;
      bool type_ok = true;
      if (next_is(k, "<")) {
        int angle = 1;
        std::size_t m = k + 1;
        std::size_t steps = 0;
        type_ok = false;
        while (m < tokens_.size() && steps++ < 128) {
          if (tokens_[m].kind == TokKind::kPunct) {
            const std::string& p = tokens_[m].text;
            if (p == "<") ++angle;
            else if (p == ">") {
              if (--angle == 0) {
                type_ok = true;
                ++m;
                break;
              }
            } else if (p == ";" || p == "{" || p == "}") {
              break;
            }
          }
          ++m;
        }
        k = m;
      }
      while (type_ok && k < tokens_.size() &&
             ((tokens_[k].kind == TokKind::kPunct &&
               (tokens_[k].text == "&" || tokens_[k].text == "*")) ||
              (tokens_[k].kind == TokKind::kIdentifier &&
               tokens_[k].text == "const"))) {
        ++k;
      }
      if (type_ok && k < tokens_.size() &&
          tokens_[k].kind == TokKind::kIdentifier &&
          !keywords().count(tokens_[k].text) && k > j - 1 && k >= j) {
        // Only a declaration when the name is followed by an initializer or
        // the end of the statement — not by an operator.
        if (next_is(k + 1, "=") || next_is(k + 1, ";") ||
            next_is(k + 1, "(") || next_is(k + 1, ":")) {
          fn->locals[tokens_[k].text] = callee;
        }
      }
    }
    return j > i + 1 ? j - 1 : i;
  }

  // ------------------------------------------------- mutex canonical form ---

  /// Canonical identity for a mutex expression seen in `fn_qualified`'s
  /// body or annotations. A bare member name is qualified by the function's
  /// owner (class, or namespace for free functions); a file-level global
  /// declared in this file resolves to its declaration; dotted paths keep
  /// the path but collapse object identity to the owner (every `shard.mutex`
  /// of one class is one node — the standard lock-order approximation).
  std::string canonical_mutex(const std::string& expr,
                              const std::string& fn_qualified) {
    std::string e = expr;
    // Strip leading address-of / deref / this->.
    while (!e.empty() && (e[0] == '&' || e[0] == '*')) e.erase(0, 1);
    if (e.rfind("this->", 0) == 0) e.erase(0, 6);
    if (e.rfind("this.", 0) == 0) e.erase(0, 5);
    const bool bare = e.find('.') == std::string::npos &&
                      e.find("::") == std::string::npos &&
                      e.find("->") == std::string::npos;
    if (bare) {
      for (const MutexDecl& decl : model_.mutexes) {
        const std::string tail = "::" + e;
        if (decl.qualified == e ||
            (decl.qualified.size() > tail.size() &&
             decl.qualified.compare(decl.qualified.size() - tail.size(),
                                    tail.size(), tail) == 0 &&
             decl.qualified.find("(anon)") != std::string::npos)) {
          return decl.qualified;
        }
      }
    }
    const std::size_t cut = fn_qualified.rfind("::");
    const std::string owner =
        cut == std::string::npos ? std::string() : fn_qualified.substr(0, cut);
    std::string path = e;
    std::size_t arrow;
    while ((arrow = path.find("->")) != std::string::npos) {
      path.replace(arrow, 2, ".");
    }
    return owner.empty() ? path : owner + "::" + path;
  }

  Tokens tokens_;
  FileModel model_;
  std::vector<Scope> scopes_;
  std::set<std::string> unordered_names_;
};

}  // namespace

FileModel build_model(std::string_view path, std::string_view content) {
  return ModelBuilder(path, content).build();
}

}  // namespace crowdmap::analyze

#include "analyze/token.hpp"

#include <cctype>

namespace crowdmap::analyze {

namespace {

/// One logical character after line-splice resolution: `text[i]` with the
/// physical line it came from. Building this up front means every later
/// stage (comments, literals, directives) sees spliced lines already joined,
/// which is exactly how the preprocessor behaves — a `// comment \` splice
/// swallows the next physical line into the comment.
struct LogicalChar {
  char c;
  int line;
};

std::vector<LogicalChar> splice(std::string_view src) {
  std::vector<LogicalChar> out;
  out.reserve(src.size());
  int line = 1;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    if (c == '\\') {
      // A backslash followed by a newline (optionally \r\n) is a splice.
      std::size_t j = i + 1;
      if (j < src.size() && src[j] == '\r') ++j;
      if (j < src.size() && src[j] == '\n') {
        ++line;
        i = j;
        continue;
      }
    }
    out.push_back({c, line});
    if (c == '\n') ++line;
  }
  return out;
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True when the identifier ending at position `end` (exclusive) is a valid
/// string-literal prefix (u8, u, U, L, R, uR, u8R, UR, LR).
bool string_prefix(const std::string& ident) {
  return ident == "u8" || ident == "u" || ident == "U" || ident == "L" ||
         ident == "R" || ident == "uR" || ident == "u8R" || ident == "UR" ||
         ident == "LR";
}

}  // namespace

std::vector<Token> tokenize(std::string_view src) {
  const std::vector<LogicalChar> text = splice(src);
  const std::size_t n = text.size();
  std::vector<Token> tokens;

  const auto at = [&](std::size_t i) -> char { return i < n ? text[i].c : '\0'; };

  // True when only whitespace precedes position `i` on its logical line —
  // i.e. a '#' here starts a directive.
  bool line_start = true;

  std::size_t i = 0;
  while (i < n) {
    const char c = text[i].c;
    const int line = text[i].line;

    // --- whitespace ---
    if (c == '\n') {
      line_start = true;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // --- comments ---
    if (c == '/' && at(i + 1) == '/') {
      while (i < n && text[i].c != '\n') ++i;
      continue;
    }
    if (c == '/' && at(i + 1) == '*') {
      i += 2;
      while (i < n && !(text[i].c == '*' && at(i + 1) == '/')) ++i;
      i = i < n ? i + 2 : n;
      continue;
    }

    // --- preprocessor directive (captured whole; comments elided) ---
    if (c == '#' && line_start) {
      std::string body;
      ++i;
      while (i < n && text[i].c != '\n') {
        if (text[i].c == '/' && at(i + 1) == '/') {
          while (i < n && text[i].c != '\n') ++i;
          break;
        }
        if (text[i].c == '/' && at(i + 1) == '*') {
          i += 2;
          while (i < n && !(text[i].c == '*' && at(i + 1) == '/')) ++i;
          i = i < n ? i + 2 : n;
          body += ' ';
          continue;
        }
        body += text[i].c;
        ++i;
      }
      tokens.push_back({TokKind::kDirective, body, line});
      continue;
    }
    line_start = false;

    // --- identifiers (and possibly prefixed string literals) ---
    if (ident_start(c)) {
      std::string ident;
      while (i < n && ident_char(text[i].c)) ident += text[i++].c;
      // R"delim( ... )delim" — raw string (with or without extra prefix).
      if (at(i) == '"' && string_prefix(ident) && ident.back() == 'R') {
        std::string delim;
        std::size_t j = i + 1;
        while (j < n && text[j].c != '(' && text[j].c != '\n' &&
               delim.size() <= 16) {
          delim += text[j++].c;
        }
        if (at(j) == '(') {
          const std::string terminator = ")" + delim + "\"";
          std::string body;
          std::size_t k = j + 1;
          while (k < n) {
            bool match = true;
            for (std::size_t t = 0; t < terminator.size(); ++t) {
              if (at(k + t) != terminator[t]) {
                match = false;
                break;
              }
            }
            if (match) break;
            body += text[k++].c;
          }
          tokens.push_back({TokKind::kString, body, line});
          i = k < n ? k + terminator.size() : n;
          continue;
        }
        // 'R' not followed by a raw string: fall through as identifier.
      }
      if (at(i) == '"' && string_prefix(ident)) {
        // Prefixed ordinary string (u8"...", L"...") — scan as a string.
        std::string body;
        ++i;
        while (i < n && text[i].c != '"') {
          if (text[i].c == '\\' && i + 1 < n) body += text[i++].c;
          body += text[i++].c;
        }
        if (i < n) ++i;
        tokens.push_back({TokKind::kString, body, line});
        continue;
      }
      tokens.push_back({TokKind::kIdentifier, ident, line});
      continue;
    }

    // --- numbers (pp-number: digits, letters, ', and exponent signs) ---
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(at(i + 1))))) {
      std::string num;
      while (i < n) {
        const char d = text[i].c;
        if (ident_char(d) || d == '.' || d == '\'') {
          num += d;
          ++i;
          if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') &&
              (at(i) == '+' || at(i) == '-')) {
            num += text[i++].c;
          }
          continue;
        }
        break;
      }
      tokens.push_back({TokKind::kNumber, num, line});
      continue;
    }

    // --- string literal ---
    if (c == '"') {
      std::string body;
      ++i;
      while (i < n && text[i].c != '"') {
        if (text[i].c == '\\' && i + 1 < n) body += text[i++].c;
        body += text[i++].c;
      }
      if (i < n) ++i;
      tokens.push_back({TokKind::kString, body, line});
      continue;
    }

    // --- char literal ---
    if (c == '\'') {
      std::string body;
      ++i;
      while (i < n && text[i].c != '\'') {
        if (text[i].c == '\\' && i + 1 < n) body += text[i++].c;
        body += text[i++].c;
      }
      if (i < n) ++i;
      tokens.push_back({TokKind::kChar, body, line});
      continue;
    }

    // --- punctuation; keep :: and -> whole (scope/member chains) ---
    if (c == ':' && at(i + 1) == ':') {
      tokens.push_back({TokKind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && at(i + 1) == '>') {
      tokens.push_back({TokKind::kPunct, "->", line});
      i += 2;
      continue;
    }
    tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return tokens;
}

}  // namespace crowdmap::analyze

// Fig. 8(c) — CDF of room location error per building, after the full
// pipeline (aggregation, skeleton, layout, force-directed arrangement).
//
// Paper: mean 1.2 m (Lab1), 1.5 m (Lab2), 1.2 m (Gym); Gym's sporadic rooms
// make centers hard to localize, one room reaching ~5 m.
#include <iostream>

#include "bench_util.hpp"
#include "eval/datasets.hpp"
#include "eval/harness.hpp"

int main() {
  using namespace crowdmap;
  std::cout << "=== Fig. 8(c): Room location error CDF per building ===\n";
  const core::PipelineConfig config;
  for (const auto& dataset : eval::all_datasets(1.0)) {
    const auto run = eval::run_experiment(dataset, config);
    std::vector<double> errors;
    for (const auto& e : run.room_errors) errors.push_back(e.location_error_m);
    eval::print_cdf(std::cout, dataset.name + ": room location error (m)", errors);
    bench::emit_bench_json("fig8c_room_location_error",
                           dataset.name + ".location_error_m", errors);
  }
  std::cout << "# paper means: Lab1 1.2 m, Lab2 1.5 m, Gym 1.2 m (max ~5 m)\n";
  return 0;
}

// Micro-benchmarks of the vision/matching hot paths (google-benchmark):
// SURF detection, descriptor matching, HOG, the cheap S1 descriptors, NCC,
// LCSS and panorama stitching.
#include <benchmark/benchmark.h>

#include "bench_gbench_main.hpp"
#include "common/rng.hpp"
#include "imaging/descriptors.hpp"
#include "imaging/hog.hpp"
#include "imaging/ncc.hpp"
#include "sim/buildings.hpp"
#include "sim/scene.hpp"
#include "trajectory/lcss.hpp"
#include "vision/matcher.hpp"
#include "vision/panorama.hpp"
#include "vision/similarity.hpp"
#include "vision/surf.hpp"

namespace {

using namespace crowdmap;

/// A rendered frame from the Lab1 world (realistic texture statistics).
imaging::ColorImage rendered_frame() {
  static const auto spec = sim::lab1();
  static const auto scene = sim::Scene::from_spec(spec, 0xBE9C);
  sim::CameraIntrinsics intr;
  common::Rng rng(1);
  return scene.render({{10.0, 0.0}, 0.0}, intr, sim::Lighting::day(), rng);
}

void BM_RenderFrame(benchmark::State& state) {
  const auto spec = sim::lab1();
  const auto scene = sim::Scene::from_spec(spec, 0xBE9C);
  sim::CameraIntrinsics intr;
  common::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scene.render({{10.0, 0.0}, 0.0}, intr, sim::Lighting::day(), rng));
  }
}
BENCHMARK(BM_RenderFrame);

void BM_SurfDetect(benchmark::State& state) {
  const auto gray = rendered_frame().to_gray();
  for (auto _ : state) {
    benchmark::DoNotOptimize(vision::detect_and_describe(gray));
  }
}
BENCHMARK(BM_SurfDetect);

void BM_SurfMatch(benchmark::State& state) {
  const auto gray = rendered_frame().to_gray();
  const auto f1 = vision::detect_and_describe(gray);
  const auto f2 = vision::detect_and_describe(gray.box_blurred(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vision::mutual_nn_matches(f1, f2, 0.35, 0.8));
  }
}
BENCHMARK(BM_SurfMatch);

void BM_Hog(benchmark::State& state) {
  const auto gray = rendered_frame().to_gray();
  for (auto _ : state) {
    benchmark::DoNotOptimize(imaging::hog_descriptor(gray));
  }
}
BENCHMARK(BM_Hog);

void BM_CheapDescriptors(benchmark::State& state) {
  const auto frame = rendered_frame();
  for (auto _ : state) {
    benchmark::DoNotOptimize(vision::compute_cheap_descriptors(frame));
  }
}
BENCHMARK(BM_CheapDescriptors);

void BM_SimilarityS1(benchmark::State& state) {
  const auto frame = rendered_frame();
  const auto d1 = vision::compute_cheap_descriptors(frame);
  const auto d2 = vision::compute_cheap_descriptors(frame);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vision::similarity_s1(d1, d2));
  }
}
BENCHMARK(BM_SimilarityS1);

void BM_Ncc(benchmark::State& state) {
  const auto gray = rendered_frame().to_gray();
  const auto other = gray.box_blurred(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(imaging::normalized_cross_correlation(gray, other));
  }
}
BENCHMARK(BM_Ncc);

void BM_Lcss(benchmark::State& state) {
  common::Rng rng(7);
  std::vector<geometry::Vec2> a;
  std::vector<geometry::Vec2> b;
  for (int i = 0; i < 64; ++i) {
    a.push_back({i * 0.5, rng.normal(0.0, 0.2)});
    b.push_back({i * 0.5 + 0.3, rng.normal(0.0, 0.2)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(trajectory::lcss_length(a, b, {}));
  }
}
BENCHMARK(BM_Lcss);

void BM_StitchPanorama(benchmark::State& state) {
  const auto spec = sim::lab1();
  const auto scene = sim::Scene::from_spec(spec, 0xBE9C);
  sim::CameraIntrinsics intr;
  common::Rng rng(1);
  std::vector<vision::PanoFrame> frames;
  for (int i = 0; i < 12; ++i) {
    const double heading = i * 2.0 * 3.14159265358979 / 12;
    frames.push_back({scene.render({spec.rooms[0].center, heading}, intr,
                                   sim::Lighting::day(), rng)
                          .to_gray(),
                      heading});
  }
  vision::StitchParams params;
  params.output_width = 512;
  params.output_height = 128;
  for (auto _ : state) {
    auto copy = frames;
    benchmark::DoNotOptimize(vision::stitch_panorama(std::move(copy), params));
  }
}
BENCHMARK(BM_StitchPanorama);

}  // namespace

int main(int argc, char** argv) {
  return crowdmap::bench::run_benchmarks_with_json("micro_vision", argc, argv);
}

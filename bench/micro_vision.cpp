// Micro-benchmarks of the vision/matching hot paths (google-benchmark):
// SURF detection, descriptor matching, HOG, the cheap S1 descriptors, NCC,
// LCSS and panorama stitching — plus a per-kernel roofline suite over the
// common::simd wrapper that times every wrapped kernel on the dispatched
// backend AND on the forced-scalar reference path, emitting elements/s,
// bytes/s and the speedup ratio (docs/PERFORMANCE.md carries the table).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_gbench_main.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "imaging/descriptors.hpp"
#include "imaging/hog.hpp"
#include "imaging/ncc.hpp"
#include "sim/buildings.hpp"
#include "sim/scene.hpp"
#include "trajectory/lcss.hpp"
#include "vision/matcher.hpp"
#include "vision/panorama.hpp"
#include "vision/similarity.hpp"
#include "vision/surf.hpp"

namespace {

using namespace crowdmap;

/// A rendered frame from the Lab1 world (realistic texture statistics).
imaging::ColorImage rendered_frame() {
  static const auto spec = sim::lab1();
  static const auto scene = sim::Scene::from_spec(spec, 0xBE9C);
  sim::CameraIntrinsics intr;
  common::Rng rng(1);
  return scene.render({{10.0, 0.0}, 0.0}, intr, sim::Lighting::day(), rng);
}

void BM_RenderFrame(benchmark::State& state) {
  const auto spec = sim::lab1();
  const auto scene = sim::Scene::from_spec(spec, 0xBE9C);
  sim::CameraIntrinsics intr;
  common::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scene.render({{10.0, 0.0}, 0.0}, intr, sim::Lighting::day(), rng));
  }
}
BENCHMARK(BM_RenderFrame);

void BM_SurfDetect(benchmark::State& state) {
  const auto gray = rendered_frame().to_gray();
  for (auto _ : state) {
    benchmark::DoNotOptimize(vision::detect_and_describe(gray));
  }
}
BENCHMARK(BM_SurfDetect);

void BM_SurfMatch(benchmark::State& state) {
  const auto gray = rendered_frame().to_gray();
  const auto f1 = vision::detect_and_describe(gray);
  const auto f2 = vision::detect_and_describe(gray.box_blurred(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vision::mutual_nn_matches(f1, f2, 0.35, 0.8));
  }
}
BENCHMARK(BM_SurfMatch);

void BM_Hog(benchmark::State& state) {
  const auto gray = rendered_frame().to_gray();
  for (auto _ : state) {
    benchmark::DoNotOptimize(imaging::hog_descriptor(gray));
  }
}
BENCHMARK(BM_Hog);

void BM_CheapDescriptors(benchmark::State& state) {
  const auto frame = rendered_frame();
  for (auto _ : state) {
    benchmark::DoNotOptimize(vision::compute_cheap_descriptors(frame));
  }
}
BENCHMARK(BM_CheapDescriptors);

void BM_SimilarityS1(benchmark::State& state) {
  const auto frame = rendered_frame();
  const auto d1 = vision::compute_cheap_descriptors(frame);
  const auto d2 = vision::compute_cheap_descriptors(frame);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vision::similarity_s1(d1, d2));
  }
}
BENCHMARK(BM_SimilarityS1);

void BM_Ncc(benchmark::State& state) {
  const auto gray = rendered_frame().to_gray();
  const auto other = gray.box_blurred(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(imaging::normalized_cross_correlation(gray, other));
  }
}
BENCHMARK(BM_Ncc);

void BM_Lcss(benchmark::State& state) {
  common::Rng rng(7);
  std::vector<geometry::Vec2> a;
  std::vector<geometry::Vec2> b;
  for (int i = 0; i < 64; ++i) {
    a.push_back({i * 0.5, rng.normal(0.0, 0.2)});
    b.push_back({i * 0.5 + 0.3, rng.normal(0.0, 0.2)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(trajectory::lcss_length(a, b, {}));
  }
}
BENCHMARK(BM_Lcss);

void BM_StitchPanorama(benchmark::State& state) {
  const auto spec = sim::lab1();
  const auto scene = sim::Scene::from_spec(spec, 0xBE9C);
  sim::CameraIntrinsics intr;
  common::Rng rng(1);
  std::vector<vision::PanoFrame> frames;
  for (int i = 0; i < 12; ++i) {
    const double heading = i * 2.0 * 3.14159265358979 / 12;
    frames.push_back({scene.render({spec.rooms[0].center, heading}, intr,
                                   sim::Lighting::day(), rng)
                          .to_gray(),
                      heading});
  }
  vision::StitchParams params;
  params.output_width = 512;
  params.output_height = 128;
  for (auto _ : state) {
    auto copy = frames;
    benchmark::DoNotOptimize(vision::stitch_panorama(std::move(copy), params));
  }
}
BENCHMARK(BM_StitchPanorama);

// ------------------------------------------------------------- roofline ---
// Per-kernel scalar-vs-SIMD timings over the common::simd wrapper. One
// binary measures both paths via set_force_scalar(), so the emitted
// speedup_vs_scalar ratios are apples-to-apples on the same host and the
// bench gate can pin conservative minimums on them (TOLERANCES.conf;
// host-independent because both numerator and denominator move together).

namespace simd = crowdmap::common::simd;

/// Median of `reps` timings of `iters` calls to `fn`, in seconds per call.
double time_kernel(const std::function<void()>& fn, int iters, int reps,
                   std::vector<double>* samples) {
  samples->clear();
  fn();  // warm caches and page in the buffers
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const auto stop = std::chrono::steady_clock::now();
    samples->push_back(std::chrono::duration<double>(stop - start).count() /
                       iters);
  }
  std::vector<double> sorted(*samples);
  std::sort(sorted.begin(), sorted.end());
  return sorted[sorted.size() / 2];
}

/// Times `fn` on the dispatched backend and the forced-scalar path, then
/// emits <name>.simd_elems_per_s, <name>.scalar_elems_per_s,
/// <name>.simd_gbytes_per_s and <name>.speedup_vs_scalar. `elems` is the
/// element count one call processes; `bytes` the memory it touches.
void roofline_case(const std::string& name, std::size_t elems,
                   std::size_t bytes, int iters,
                   const std::function<void()>& fn) {
  constexpr int kReps = 5;
  std::vector<double> samples;
  simd::set_force_scalar(false);
  const double simd_s = time_kernel(fn, iters, kReps, &samples);
  std::vector<double> simd_rate;
  for (const double s : samples) {
    simd_rate.push_back(static_cast<double>(elems) / s);
  }
  simd::set_force_scalar(true);
  const double scalar_s = time_kernel(fn, iters, kReps, &samples);
  std::vector<double> scalar_rate;
  for (const double s : samples) {
    scalar_rate.push_back(static_cast<double>(elems) / s);
  }
  simd::set_force_scalar(false);
  crowdmap::bench::emit_bench_json("vision", "kernel." + name +
                                                ".simd_elems_per_s",
                                   simd_rate);
  crowdmap::bench::emit_bench_json("vision", "kernel." + name +
                                                ".scalar_elems_per_s",
                                   scalar_rate);
  crowdmap::bench::emit_bench_scalar(
      "vision", "kernel." + name + ".simd_gbytes_per_s",
      static_cast<double>(bytes) / simd_s * 1e-9);
  crowdmap::bench::emit_bench_scalar("vision",
                                     "kernel." + name + ".speedup_vs_scalar",
                                     scalar_s / simd_s);
}

void run_roofline() {
  constexpr std::size_t kN = 1 << 16;  // 64k floats ~ 256 KiB per buffer
  common::Rng rng(0xF00F);
  std::vector<float> a(kN), b(kN), c(kN), d(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    a[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    b[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    c[i] = static_cast<float>(rng.uniform(0.0, 1.0));
  }
  double sink = 0.0;

  roofline_case("sum_f32", kN, kN * 4, 200, [&] {
    sink = simd::sum_f32(a.data(), kN);
    benchmark::DoNotOptimize(sink);
  });
  roofline_case("dot_f32", kN, kN * 8, 200, [&] {
    sink = simd::dot_f32(a.data(), b.data(), kN);
    benchmark::DoNotOptimize(sink);
  });
  roofline_case("l2sq_f32", kN, kN * 8, 200, [&] {
    sink = simd::l2sq_f32(a.data(), b.data(), kN);
    benchmark::DoNotOptimize(sink);
  });
  roofline_case("sum_min_f32", kN, kN * 8, 200, [&] {
    sink = simd::sum_min_f32(a.data(), b.data(), kN);
    benchmark::DoNotOptimize(sink);
  });
  roofline_case("ncc_accum_f32", kN, kN * 8, 200, [&] {
    const auto s = simd::ncc_accum_f32(a.data(), b.data(), 0.1, 0.2, kN);
    benchmark::DoNotOptimize(s.num + s.da + s.db);
  });
  roofline_case("mag_angle_f32", kN, kN * 16, 100, [&] {
    simd::mag_angle_f32(a.data(), b.data(), c.data(), d.data(), kN);
    benchmark::DoNotOptimize(d.data());
  });
  roofline_case("magnitude_f32", kN, kN * 12, 200, [&] {
    simd::magnitude_f32(a.data(), b.data(), d.data(), kN);
    benchmark::DoNotOptimize(d.data());
  });
  roofline_case("sobel_row_f32", kN - 2, kN * 20, 100, [&] {
    simd::sobel_row_f32(a.data() + 1, b.data() + 1, c.data() + 1, d.data(),
                        d.data(), kN - 2);
    benchmark::DoNotOptimize(d.data());
  });
  roofline_case("weighted_accumulate_f32", kN, kN * 16, 200, [&] {
    simd::weighted_accumulate_f32(d.data(), c.data(), a.data(), kN);
    benchmark::DoNotOptimize(d.data());
  });

  // The matcher inner loop: one query against a 512-descriptor SoA block.
  common::Rng frng(0x50A5);
  std::vector<vision::SurfFeature> feats(512);
  for (auto& f : feats) {
    f.keypoint.laplacian_positive = true;
    for (auto& v : f.descriptor) {
      v = static_cast<float>(frng.uniform(-0.2, 0.2));
    }
  }
  const auto block = vision::build_descriptor_block(feats, true);
  const auto& query = feats[257].descriptor;
  const std::size_t pair_elems = block.count * vision::kSurfDescriptorDims;
  roofline_case("nearest2_soa_f32", pair_elems, pair_elems * 4, 50, [&] {
    const auto nn = simd::nearest2_soa_f32(block.data.data(), block.stride,
                                           vision::kSurfDescriptorDims,
                                           block.count, query.data());
    benchmark::DoNotOptimize(nn.best);
  });
}

}  // namespace

int main(int argc, char** argv) {
  const int rc = crowdmap::bench::run_benchmarks_with_json("vision", argc, argv);
  if (rc != 0) return rc;
  std::printf("active SIMD backend: %s\n",
              crowdmap::common::simd::capability_report().c_str());
  run_roofline();
  return 0;
}

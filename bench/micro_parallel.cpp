// Parallel hot-path speedups: pairwise aggregation fan-out, sharded layout
// scoring, and the S2 memo cache, at 1 / 2 / 4 threads.
//
// Emits BENCH_parallel.json lines: per-stage wall-clock at each thread count,
// the threads=4 vs threads=1 speedup ratios, S2 cache hit statistics, and the
// host's core count (a speedup can only materialize when the hardware has
// cores to spend — single-core CI runners will report ~1x by construction).
#include <cmath>
#include <cstddef>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/memo_cache.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "room/layout.hpp"
#include "trajectory/aggregate.hpp"
#include "vision/panorama.hpp"

namespace {

constexpr const char* kBench = "parallel";
constexpr int kRepeats = 3;

// threads counts the calling thread; the pool supplies the rest.
crowdmap::common::ThreadPool* pool_for(
    std::size_t threads, std::unique_ptr<crowdmap::common::ThreadPool>& owner) {
  if (threads <= 1) return nullptr;
  owner = std::make_unique<crowdmap::common::ThreadPool>(threads - 1);
  return owner.get();
}

}  // namespace

int main() {
  using namespace crowdmap;

  const std::size_t cores = std::thread::hardware_concurrency();
  bench::emit_bench_scalar(kBench, "hardware_concurrency",
                           static_cast<double>(cores));

  const auto spec = sim::lab1();
  std::cout << "# generating 14 trajectories...\n";
  const auto walk_pool = bench::make_walk_pool(spec, 14, 0.2, 0xA11);

  // ---- Pairwise aggregation fan-out.
  common::Stopwatch timer;
  std::vector<double> agg_means;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    std::unique_ptr<common::ThreadPool> owner;
    trajectory::AggregationRuntime runtime;
    runtime.pool = pool_for(threads, owner);
    std::vector<double> samples;
    for (int r = 0; r < kRepeats; ++r) {
      timer.restart();
      (void)trajectory::aggregate_trajectories(walk_pool, {}, runtime);
      samples.push_back(timer.elapsed_seconds());
    }
    bench::emit_bench_json(kBench,
                           "aggregate_threads" + std::to_string(threads),
                           samples);
    agg_means.push_back(common::summarize(samples).mean);
  }
  bench::emit_bench_scalar(kBench, "aggregate_speedup_t4",
                           agg_means.front() / agg_means.back());

  // ---- Sharded hypothesis scoring.
  const auto scene = sim::Scene::from_spec(spec, 0xA12);
  sim::CameraIntrinsics intr;
  common::Rng rng(0xA12);
  std::vector<vision::PanoFrame> frames;
  for (int i = 0; i < 16; ++i) {
    const double heading = i * common::kTwoPi / 16;
    vision::PanoFrame frame;
    frame.image =
        scene.render({spec.rooms[0].center, heading}, intr, sim::Lighting::day(), rng)
            .to_gray();
    frame.heading = heading;
    frames.push_back(std::move(frame));
  }
  vision::StitchParams sp;
  sp.output_width = 512;
  sp.output_height = 128;
  const auto pano = vision::stitch_panorama(std::move(frames), sp);

  room::LayoutConfig layout_config;
  layout_config.hypotheses = 20000;  // the paper's full sweep
  const double frame_focal = intr.width / (2.0 * std::tan(sp.fov / 2.0));
  layout_config.focal_px = frame_focal * sp.output_height / intr.height;

  std::vector<double> layout_means;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    std::unique_ptr<common::ThreadPool> owner;
    common::ThreadPool* pool = pool_for(threads, owner);
    std::vector<double> samples;
    for (int r = 0; r < kRepeats; ++r) {
      timer.restart();
      (void)room::estimate_layout(pano.image, layout_config, pool);
      samples.push_back(timer.elapsed_seconds());
    }
    bench::emit_bench_json(kBench, "layout_threads" + std::to_string(threads),
                           samples);
    layout_means.push_back(common::summarize(samples).mean);
  }
  bench::emit_bench_scalar(kBench, "layout_speedup_t4",
                           layout_means.front() / layout_means.back());

  // ---- S2 memo cache: a second aggregation round over the same uploads is
  // the incremental-rebuild pattern the cache exists for.
  common::BoundedMemoCache cache(1 << 15);
  trajectory::AggregationRuntime cached_runtime;
  cached_runtime.s2_cache = &cache;
  timer.restart();
  (void)trajectory::aggregate_trajectories(walk_pool, {}, cached_runtime);
  const double cold_seconds = timer.elapsed_seconds();
  timer.restart();
  (void)trajectory::aggregate_trajectories(walk_pool, {}, cached_runtime);
  const double warm_seconds = timer.elapsed_seconds();
  bench::emit_bench_scalar(kBench, "s2_cache_cold_seconds", cold_seconds);
  bench::emit_bench_scalar(kBench, "s2_cache_warm_seconds", warm_seconds);
  bench::emit_bench_scalar(kBench, "s2_cache_warm_speedup",
                           warm_seconds > 0 ? cold_seconds / warm_seconds : 0.0);
  const double total = static_cast<double>(cache.hits() + cache.misses());
  bench::emit_bench_scalar(kBench, "s2_cache_hit_rate",
                           total > 0 ? cache.hits() / total : 0.0);
  return 0;
}

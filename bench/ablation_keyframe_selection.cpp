// Ablation — HOG/NCC key-frame selection (§III.B.I): the paper introduces
// key-frame selection because per-frame SURF matching "is not feasible for a
// rapidly growing influx of crowdsourced data". This bench measures frames
// retained and downstream matching cost with selection on vs off.
#include <iostream>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "eval/harness.hpp"
#include "sim/buildings.hpp"
#include "sim/user_sim.hpp"
#include "trajectory/matching.hpp"
#include "trajectory/trajectory.hpp"

int main() {
  using namespace crowdmap;
  const auto spec = sim::lab1();
  const auto scene = sim::Scene::from_spec(spec, 0xAB1);
  sim::SimOptions options;
  options.fps = 3.0;
  sim::UserSimulator user(scene, spec, options, common::Rng(0xAB1));

  // A handful of overlapping walks.
  std::vector<sim::SensorRichVideo> videos;
  for (int i = 0; i < 6; ++i) {
    videos.push_back(user.hallway_walk(sim::Lighting::day()));
  }

  struct Variant {
    const char* name;
    trajectory::ExtractionConfig config;
  };
  std::vector<Variant> variants;
  variants.push_back({"selection ON (default)", {}});
  Variant off;
  off.name = "selection OFF (all frames)";
  off.config.keyframe_ncc_max = -1.0;  // nothing is "extremely similar"
  off.config.max_keyframes = 10000;    // no budget
  variants.push_back(off);

  std::cout << "=== Ablation: key-frame selection ===\n";
  eval::print_table_row(std::cout, {"Variant", "frames kept", "extract (s)",
                                    "pair match (s)", "accuracy"});
  for (const auto& variant : variants) {
    common::Stopwatch timer;
    std::vector<trajectory::Trajectory> pool;
    for (const auto& video : videos) {
      pool.push_back(trajectory::extract_trajectory(video, variant.config));
    }
    const double extract_s = timer.elapsed_seconds();
    std::size_t frames = 0;
    for (const auto& t : pool) frames += t.keyframes.size();

    timer.restart();
    int correct = 0;
    int merges = 0;
    trajectory::MatchConfig match_config;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      for (std::size_t j = i + 1; j < pool.size(); ++j) {
        const auto outcome = bench::judge_merge(
            pool[i], pool[j],
            trajectory::match_trajectories(pool[i], pool[j], match_config));
        if (outcome != bench::MergeOutcome::kNoDecision) {
          ++merges;
          correct += outcome == bench::MergeOutcome::kCorrect;
        }
      }
    }
    const double match_s = timer.elapsed_seconds();
    const double acc = merges ? static_cast<double>(correct) / merges : 0.0;
    eval::print_table_row(std::cout,
                          {variant.name, std::to_string(frames),
                           eval::fmt(extract_s, 1), eval::fmt(match_s, 1),
                           eval::pct(acc)});
    const std::string series(variant.name);
    bench::emit_bench_scalar("ablation_keyframe_selection",
                             series + ".frames_kept",
                             static_cast<double>(frames));
    bench::emit_bench_scalar("ablation_keyframe_selection",
                             series + ".extract_seconds", extract_s);
    bench::emit_bench_scalar("ablation_keyframe_selection",
                             series + ".match_seconds", match_s);
    bench::emit_bench_scalar("ablation_keyframe_selection", series + ".accuracy",
                             acc);
  }
  std::cout << "# selection should cut frames (and cost) with comparable "
               "matching accuracy\n";
  return 0;
}

// Fig. 8(a) — CDF of room area error: visual (panorama-based) room layout
// vs the inertial-only baseline.
//
// Paper: visual mean ~9.8% vs inertial mean ~22.5% — the visual method
// roughly halves the error because furniture keeps user traces away from
// the real walls while the panorama sees the walls directly.
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "eval/harness.hpp"
#include "fig8_util.hpp"

int main() {
  using namespace crowdmap;
  std::cout << "# estimating every room of Lab1/Lab2/Gym (visual + inertial)...\n";
  const auto samples = bench::collect_room_errors(0x8A);

  std::cout << "=== Fig. 8(a): Room area error CDF ===\n";
  std::vector<double> visual_pct;
  std::vector<double> inertial_pct;
  for (const double e : samples.visual_area) visual_pct.push_back(e * 100);
  for (const double e : samples.inertial_area) inertial_pct.push_back(e * 100);
  eval::print_cdf(std::cout, "Visual Data: room area error (%)", visual_pct);
  eval::print_cdf(std::cout, "Inertial Data: room area error (%)", inertial_pct);
  std::cout << "# paper: visual mean ~9.8%, inertial mean ~22.5%\n";
  bench::emit_bench_json("fig8a_room_area_error", "visual_area_error_pct",
                         visual_pct);
  bench::emit_bench_json("fig8a_room_area_error", "inertial_area_error_pct",
                         inertial_pct);
  return 0;
}

// Cluster routing capacity: what sharding uploads over N nodes buys.
//
// CI hosts for this repo are single-core, so wall-clock "N nodes finish N
// times faster" is unmeasurable — every simulated node shares one CPU. The
// headline metric is therefore *capacity-normalized*: route a corpus of
// uploads spread over many (building, floor) shards through a 4-node ring
// and compute
//
//   upload_throughput_scaling_4x = total_uploads / max_node_routed_share
//
// i.e. the throughput multiple a 4-node deployment sustains over a single
// node when every node processes its routed share in parallel (the bottleneck
// is the most-loaded node). The shard->node map is a pure function of the
// FNV-1a ring tokens, so the number is exact and host-independent; the
// acceptance bar (>= 2.5x at 4 nodes, perfect balance being 4.0x) is pinned
// in bench/baselines/TOLERANCES.conf. Wall-clock series here are
// presence-checked only.
//
// Emits BENCH_cluster.json lines:
//   - route_submit_seconds:    4-node routed run, per repeat (wall clock),
//   - route_submit_rf2_seconds: same corpus at replication_factor 2,
//   - max_node_share:          most-loaded node's fraction of the corpus,
//   - upload_throughput_scaling_4x: the gated capacity multiple
//     (`--check` exits non-zero below 2.5x).
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "common/stopwatch.hpp"

namespace {

constexpr const char* kBench = "cluster";
constexpr int kRepeats = 3;
constexpr std::size_t kShards = 256;
constexpr double kRequiredScaling = 2.5;

crowdmap::cluster::ClusterOptions cluster_options(std::size_t nodes,
                                                  std::size_t replication) {
  crowdmap::cluster::ClusterOptions options;
  options.config = crowdmap::core::PipelineConfig::fast_profile();
  options.config.cluster.nodes = nodes;
  options.config.cluster.replication_factor = replication;
  options.workers_per_node = 1;
  return options;
}

/// Routes one small upload per shard; returns elapsed seconds.
double route_corpus(crowdmap::cluster::Cluster& cluster) {
  const crowdmap::cloud::Blob payload(128, 0x5A);
  crowdmap::common::Stopwatch timer;
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    const std::string building = "bldg-" + std::to_string(shard);
    const auto ticket =
        cluster.submit_upload("upload-" + std::to_string(shard), building,
                              /*floor=*/1, payload);
    if (ticket.outcome != crowdmap::cluster::SubmitOutcome::kAccepted) {
      std::cerr << "upload refused for shard " << shard << "\n";
      std::exit(1);
    }
  }
  const double seconds = timer.elapsed_seconds();
  cluster.drain();
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crowdmap;

  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }

  std::vector<double> routed_seconds;
  std::vector<double> rf2_seconds;
  double max_share = 1.0;
  for (int r = 0; r < kRepeats; ++r) {
    cluster::Cluster lean(cluster_options(4, 1));
    routed_seconds.push_back(route_corpus(lean));

    const auto metrics = lean.metrics();
    double max_routed = 0.0;
    for (std::size_t node = 0; node < lean.node_count(); ++node) {
      max_routed = std::max(
          max_routed,
          metrics.value("crowdmap_cluster_uploads_routed_total",
                        {{"node", lean.node_name(node)}}));
    }
    max_share = max_routed / static_cast<double>(kShards);

    cluster::Cluster replicated(cluster_options(4, 2));
    rf2_seconds.push_back(route_corpus(replicated));
  }
  std::cout << "# " << kShards << " shards over 4 nodes, most-loaded share "
            << max_share << "\n";

  bench::emit_bench_json(kBench, "route_submit_seconds", routed_seconds);
  bench::emit_bench_json(kBench, "route_submit_rf2_seconds", rf2_seconds);
  bench::emit_bench_scalar(kBench, "max_node_share", max_share);

  const double scaling = max_share > 0.0 ? 1.0 / max_share : 0.0;
  bench::emit_bench_scalar(kBench, "upload_throughput_scaling_4x", scaling);

  if (check && scaling < kRequiredScaling) {
    std::cerr << "FAIL: capacity scaling " << scaling
              << "x at 4 nodes is below the " << kRequiredScaling
              << "x acceptance bar\n";
    return 1;
  }
  return 0;
}

// Ablation — the hierarchical key-frame comparison (§III.B.I): the cheap S1
// gate (color + shape + wavelet) exists to avoid running SURF on every
// key-frame pair and to prevent wrong aggregation. Measures matching time
// and anchor yield with the gate on vs off.
#include <iostream>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "eval/harness.hpp"
#include "trajectory/matching.hpp"

int main() {
  using namespace crowdmap;
  const auto spec = sim::lab1();
  const auto pool = bench::make_walk_pool(spec, 12, 0.25, 0xAB2);

  struct Variant {
    const char* name;
    trajectory::MatchConfig config;
  };
  std::vector<Variant> variants;
  variants.push_back({"S1 gate ON (h_s default)", {}});
  Variant off;
  off.name = "S1 gate OFF (h_s = 0)";
  off.config.h_s = 0.0;
  off.config.max_s2_evaluations = 1 << 30;  // no cost bound either
  variants.push_back(off);
  Variant capped_off;
  capped_off.name = "S1 gate OFF, S2 budget kept";
  capped_off.config.h_s = 0.0;
  variants.push_back(capped_off);

  std::cout << "=== Ablation: hierarchical (S1 -> S2) key-frame comparison ===\n";
  eval::print_table_row(std::cout,
                        {"Variant", "time (s)", "accuracy", "(merges)"});
  for (const auto& variant : variants) {
    common::Stopwatch timer;
    int merges = 0;
    int correct = 0;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      for (std::size_t j = i + 1; j < pool.size(); ++j) {
        const auto outcome = bench::judge_merge(
            pool[i], pool[j],
            trajectory::match_trajectories(pool[i], pool[j], variant.config));
        if (outcome != bench::MergeOutcome::kNoDecision) {
          ++merges;
          correct += outcome == bench::MergeOutcome::kCorrect;
        }
      }
    }
    const double elapsed = timer.elapsed_seconds();
    const double acc = merges ? static_cast<double>(correct) / merges : 0.0;
    eval::print_table_row(std::cout, {variant.name, eval::fmt(elapsed, 2),
                                      eval::pct(acc), std::to_string(merges)});
    bench::emit_bench_scalar("ablation_hierarchical_match",
                             std::string(variant.name) + ".match_seconds",
                             elapsed);
    bench::emit_bench_scalar("ablation_hierarchical_match",
                             std::string(variant.name) + ".accuracy", acc);
  }
  std::cout << "# the gate should cut time substantially at equal or better "
               "accuracy\n";
  return 0;
}

// Fig. 7(a) — matching accuracy vs number of user trajectories, comparing
// sequence-based aggregation against single-image aggregation.
//
// Paper's shape: sequence-based stays high (~90%+) across 35–85
// trajectories; single-image is lower everywhere and *degrades* beyond ~65
// trajectories because similar-looking frames from different locations start
// to collide.
//
// Accuracy = correct merges / all merges, judged against the ground-truth
// relative transform between the two trajectories' local frames.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "eval/harness.hpp"

int main() {
  using namespace crowdmap;
  using bench::MergeOutcome;

  constexpr int kMaxTrajectories = 85;
  // The paper's hallways are plain-painted college corridors; matching the
  // self-similarity that makes single-image anchoring fragile requires a
  // lower wall feature density than the poster-rich default.
  auto spec = sim::lab1();
  spec.feature_density = 0.45;
  std::cout << "# generating " << kMaxTrajectories << " trajectories...\n";
  const auto pool = bench::make_walk_pool(spec, kMaxTrajectories, 0.25, 0x71A);

  // Pairwise decisions are computed once per method over the full pool; the
  // sweep then scores the first-n subsets.
  trajectory::MatchConfig match_config;
  struct Decision {
    std::size_t a;
    std::size_t b;
    MergeOutcome sequence;
    MergeOutcome single;
  };
  std::vector<Decision> decisions;
  std::cout << "# matching " << pool.size() * (pool.size() - 1) / 2
            << " pairs (both methods)...\n";
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (std::size_t j = i + 1; j < pool.size(); ++j) {
      Decision d;
      d.a = i;
      d.b = j;
      d.sequence = bench::judge_merge(
          pool[i], pool[j],
          trajectory::match_trajectories(pool[i], pool[j], match_config));
      d.single = bench::judge_merge(
          pool[i], pool[j],
          trajectory::match_single_image(pool[i], pool[j], match_config));
      decisions.push_back(d);
    }
  }

  std::cout << "=== Fig. 7(a): Matching accuracy vs #user trajectories ===\n";
  eval::print_table_row(std::cout, {"#Trajectories", "SingleImage acc",
                                    "SequenceBased acc", "(merges s/q)"});
  std::vector<double> seq_accs;
  std::vector<double> single_accs;
  for (int n = 35; n <= kMaxTrajectories; n += 10) {
    int seq_correct = 0;
    int seq_total = 0;
    int single_correct = 0;
    int single_total = 0;
    for (const auto& d : decisions) {
      if (d.a >= static_cast<std::size_t>(n) || d.b >= static_cast<std::size_t>(n)) {
        continue;
      }
      if (d.sequence != MergeOutcome::kNoDecision) {
        ++seq_total;
        seq_correct += d.sequence == MergeOutcome::kCorrect;
      }
      if (d.single != MergeOutcome::kNoDecision) {
        ++single_total;
        single_correct += d.single == MergeOutcome::kCorrect;
      }
    }
    const double seq_acc =
        seq_total ? static_cast<double>(seq_correct) / seq_total : 0.0;
    const double single_acc =
        single_total ? static_cast<double>(single_correct) / single_total : 0.0;
    eval::print_table_row(
        std::cout, {std::to_string(n), eval::pct(single_acc), eval::pct(seq_acc),
                    std::to_string(single_total) + "/" + std::to_string(seq_total)});
    seq_accs.push_back(seq_acc);
    single_accs.push_back(single_acc);
  }
  std::cout << "# paper shape: sequence-based > single-image everywhere; "
               "single-image decays past ~65 trajectories\n";
  bench::emit_bench_json("fig7a_aggregation_accuracy", "sequence_accuracy",
                         seq_accs);
  bench::emit_bench_json("fig7a_aggregation_accuracy", "single_image_accuracy",
                         single_accs);
  return 0;
}

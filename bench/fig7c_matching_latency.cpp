// Fig. 7(c) — CDF of user trajectory matching latency.
//
// The paper reports ~0.8 s average for matching two key-frames (single
// threaded, 2014-era hardware + OpenCV SURF) and 40–50 s for a complete
// aggregation. Absolute numbers here reflect this machine and our
// from-scratch SURF; the deliverable is the latency *distribution*.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "eval/harness.hpp"
#include "trajectory/aggregate.hpp"
#include "vision/matcher.hpp"

int main() {
  using namespace crowdmap;

  const auto spec = sim::lab1();
  std::cout << "# generating 20 trajectories...\n";
  const auto pool = bench::make_walk_pool(spec, 20, 0.25, 0x7C);

  // Key-frame pair matching latency (the paper's 0.8 s unit of work):
  // hierarchical S1 gate + SURF mutual-NN match for one key-frame pair.
  trajectory::MatchConfig config;
  std::vector<double> frame_latencies;
  common::Stopwatch timer;
  for (std::size_t i = 0; i + 1 < pool.size() && frame_latencies.size() < 400; ++i) {
    const auto& a = pool[i];
    const auto& b = pool[i + 1];
    for (std::size_t x = 0; x < a.keyframes.size() && frame_latencies.size() < 400;
         x += 3) {
      for (std::size_t y = 0; y < b.keyframes.size(); y += 5) {
        timer.restart();
        const double s1 = vision::similarity_s1(a.keyframes[x].cheap,
                                                b.keyframes[y].cheap);
        if (s1 >= config.h_s) {
          (void)vision::match_score_s2(a.keyframes[x].surf, b.keyframes[y].surf,
                                       config.h_d, config.nn_ratio);
        }
        frame_latencies.push_back(timer.elapsed_seconds());
      }
    }
  }

  // Full pairwise trajectory matching latency.
  std::vector<double> pair_latencies;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (std::size_t j = i + 1; j < pool.size(); ++j) {
      timer.restart();
      (void)trajectory::match_trajectories(pool[i], pool[j], config);
      pair_latencies.push_back(timer.elapsed_seconds());
    }
  }

  // Complete aggregation of the pool.
  timer.restart();
  (void)trajectory::aggregate_trajectories(pool, {});
  const double aggregation_seconds = timer.elapsed_seconds();

  std::cout << "=== Fig. 7(c): User trajectory matching latency CDF ===\n";
  eval::print_cdf(std::cout, "key-frame pair match latency (s)", frame_latencies);
  eval::print_cdf(std::cout, "trajectory pair match latency (s)", pair_latencies);
  std::cout << "# complete aggregation of " << pool.size()
            << " trajectories: " << eval::fmt(aggregation_seconds, 1) << " s\n";
  std::cout << "# paper: ~0.8 s mean per key-frame match; 40-50 s full "
               "aggregation (their hardware; compare distribution shape)\n";
  bench::emit_bench_json("fig7c_matching_latency", "keyframe_pair_match_seconds",
                         frame_latencies);
  bench::emit_bench_json("fig7c_matching_latency",
                         "trajectory_pair_match_seconds", pair_latencies);
  bench::emit_bench_scalar("fig7c_matching_latency", "full_aggregation_seconds",
                           aggregation_seconds);
  return 0;
}

// Incremental recomputation payoff: what the artifact cache + dependency
// tracked planner buy when one new upload lands on a built campaign.
//
// Scenario (the crowdsourcing steady state): a ~50-video campaign is built;
// one more walk is uploaded; the plan is refreshed. The cold baseline
// rebuilds the whole corpus from scratch in a fresh backend; the warm path
// refreshes through api::Client, replaying every artifact the new upload
// did not invalidate. Both paths must serialize byte-identical plans —
// checked here on every run, not just in the test suite.
//
// Emits BENCH_incremental.json lines:
//   - cold_build_seconds: full rebuild, fresh backend, per repeat,
//   - warm_refresh_seconds: one-upload refresh on the warmed backend,
//   - incremental_speedup_ratio: cold median / warm median (the PR's
//     acceptance bar is >= 5x; `--check` exits non-zero below that).
//
// The committed baseline lives in bench/baselines/BENCH_incremental.json.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "api/crowdmap.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "floorplan/serialize.hpp"
#include "sim/buildings.hpp"
#include "sim/campaign.hpp"

namespace {

constexpr const char* kBench = "incremental";
constexpr int kRepeats = 3;
constexpr double kRequiredSpeedup = 5.0;

using crowdmap::api::Client;
using crowdmap::api::ClientOptions;

std::vector<crowdmap::sim::SensorRichVideo> campaign() {
  namespace cs = crowdmap::sim;
  crowdmap::common::Rng rng(0x50C1A1);
  const auto spec = cs::random_building(6, rng);
  cs::CampaignOptions options;
  options.users = 8;
  options.room_videos_per_room = 2;  // 12 room visits + 38 walks = 50 videos
  options.hallway_walks = 38;
  options.junk_fraction = 0.0;
  options.sim.fps = 3.0;
  std::vector<cs::SensorRichVideo> videos;
  cs::generate_campaign_streaming(spec, options, 0x50C1A1,
                                  [&videos](cs::SensorRichVideo&& video) {
                                    videos.push_back(std::move(video));
                                  });
  return videos;
}

Client fresh_client() {
  ClientOptions options;
  options.config = crowdmap::core::PipelineConfig::fast_profile();
  return Client(std::move(options));
}

std::string build_bytes(Client& client, const std::string& building,
                        int floor, double* seconds) {
  crowdmap::common::Stopwatch timer;
  const auto response = client.build_plan({building, floor, std::nullopt, {}});
  if (seconds != nullptr) *seconds = timer.elapsed_seconds();
  const auto bytes = crowdmap::floorplan::encode_floorplan(response.result.plan);
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crowdmap;

  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }

  const auto videos = campaign();
  const std::string building = videos.front().building;
  const int floor = videos.front().floor;
  std::cout << "# campaign: " << videos.size() << " videos, building "
            << building << "\n";

  std::vector<double> cold_samples;
  std::vector<double> warm_samples;
  std::string cold_plan;
  std::string warm_plan;

  for (int r = 0; r < kRepeats; ++r) {
    // Cold: every upload lands in a fresh backend, then one full build.
    auto cold = fresh_client();
    for (const auto& video : videos) {
      if (!cold.submit_video(video).status.ok()) {
        std::cerr << "upload rejected in cold run\n";
        return 1;
      }
    }
    double cold_seconds = 0.0;
    cold_plan = build_bytes(cold, building, floor, &cold_seconds);
    cold_samples.push_back(cold_seconds);

    // Warm: all but the last upload built first (unmeasured), then the last
    // upload lands and only the refresh is timed.
    auto warm = fresh_client();
    for (std::size_t v = 0; v + 1 < videos.size(); ++v) {
      if (!warm.submit_video(videos[v]).status.ok()) {
        std::cerr << "upload rejected in warm run\n";
        return 1;
      }
    }
    (void)build_bytes(warm, building, floor, nullptr);
    if (!warm.submit_video(videos.back()).status.ok()) {
      std::cerr << "final upload rejected in warm run\n";
      return 1;
    }
    double warm_seconds = 0.0;
    warm_plan = build_bytes(warm, building, floor, &warm_seconds);
    warm_samples.push_back(warm_seconds);

    if (warm_plan != cold_plan) {
      std::cerr << "FAIL: warm refresh and cold rebuild diverged (repeat "
                << r << ")\n";
      return 1;
    }
  }
  std::cout << "# warm refresh byte-identical to cold rebuild across "
            << kRepeats << " repeats\n";

  bench::emit_bench_json(kBench, "cold_build_seconds", cold_samples);
  bench::emit_bench_json(kBench, "warm_refresh_seconds", warm_samples);

  const double cold_median = common::summarize(cold_samples).median;
  const double warm_median = common::summarize(warm_samples).median;
  const double ratio = warm_median > 0.0 ? cold_median / warm_median : 0.0;
  bench::emit_bench_scalar(kBench, "incremental_speedup_ratio", ratio);

  if (check && ratio < kRequiredSpeedup) {
    std::cerr << "FAIL: incremental speedup " << ratio << "x is below the "
              << kRequiredSpeedup << "x acceptance bar\n";
    return 1;
  }
  return 0;
}

// Extension — Wi-Fi-Mark anchors (Walkie-Markie, §VII related work) vs
// CrowdMap's visual key-frame anchors on the same trajectory pool: placement
// coverage and mean key-frame error. Quantifies what the paper's visual
// anchoring buys over radio landmarks.
#include <iostream>

#include "bench_util.hpp"
#include "eval/harness.hpp"
#include "sim/scene.hpp"
#include "wifi/walkie_markie.hpp"

int main() {
  using namespace crowdmap;
  const auto spec = sim::lab1();
  const auto scene = sim::Scene::from_spec(spec, 0x31F1);
  std::vector<geometry::Segment> walls;
  for (const auto& wall : scene.walls()) walls.push_back(wall.seg);

  std::cout << "# generating 24 trajectories...\n";
  const auto pool = bench::make_walk_pool(spec, 24, 0.25, 0x31F5);

  auto mean_error = [&](const trajectory::AggregationResult& result) {
    const auto align = floorplan::align_to_truth(pool, result);
    if (!align) return -1.0;
    double err = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (!result.global_pose[i]) continue;
      for (const auto& kf : pool[i].keyframes) {
        err += align->apply(result.global_pose[i]->apply(kf.position))
                   .distance_to(kf.true_position);
        ++n;
      }
    }
    return n ? err / n : -1.0;
  };

  std::cout << "=== Extension: Wi-Fi-Mark vs visual key-frame anchors ===\n";
  eval::print_table_row(std::cout,
                        {"Anchoring", "APs", "placed", "mean kf err (m)"});
  // Visual (CrowdMap).
  const auto visual = trajectory::aggregate_trajectories(pool, {});
  eval::print_table_row(std::cout,
                        {"visual key-frames", "-",
                         std::to_string(visual.placed_count) + "/" +
                             std::to_string(pool.size()),
                         eval::fmt(mean_error(visual), 2)});
  bench::emit_bench_scalar("extension_wifi_vs_visual", "visual.mean_kf_err_m",
                           mean_error(visual));
  // Wi-Fi marks at several AP densities.
  for (const int n_aps : {4, 8, 16}) {
    const wifi::WifiModel model(wifi::place_access_points(spec, n_aps, 0x31F1),
                                walls, {}, 0x31F1);
    common::Rng rng(0x31F6);
    const auto result = wifi::aggregate_by_wifi_marks(pool, model, {}, rng);
    eval::print_table_row(std::cout,
                          {"wifi marks", std::to_string(n_aps),
                           std::to_string(result.placed_count) + "/" +
                               std::to_string(pool.size()),
                           eval::fmt(mean_error(result), 2)});
    bench::emit_bench_scalar("extension_wifi_vs_visual",
                             "wifi_marks.aps=" + std::to_string(n_aps) +
                                 ".mean_kf_err_m",
                             mean_error(result));
  }
  std::cout << "# expected: visual anchors place more trajectories at lower "
               "error; Wi-Fi marks improve with AP density but stay coarser\n";
  return 0;
}

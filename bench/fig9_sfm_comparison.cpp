// Fig. 9 / §V.D — Structure-from-Motion camera recovery vs CrowdMap's
// video+inertial approach in textured (Lab) vs featureless (Gym) scenes.
//
// Paper's claim: SfM camera locations are unreliable in cluttered,
// featureless indoor environments, while CrowdMap's key-frame + inertial
// hybrid stays accurate — the reason CrowdMap beats Jigsaw's SfM front-end.
#include <iostream>

#include "baselines/sfm_sim.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "eval/harness.hpp"

int main() {
  using namespace crowdmap;

  std::cout << "=== Fig. 9: SfM vs CrowdMap camera/trajectory accuracy ===\n";
  eval::print_table_row(std::cout,
                        {"Building", "SURF feats/frame", "SfM err (m)",
                         "SfM failures", "CrowdMap median err (m)"});
  for (const auto& spec : {sim::lab1(), sim::gym()}) {
    const auto pool = bench::make_walk_pool(spec, 12, 0.0, 0xF16);

    // Simulated SfM per trajectory.
    common::Rng rng(0xF16);
    double sfm_err = 0.0;
    int sfm_failures = 0;
    int sfm_frames = 0;
    double features = 0.0;
    for (const auto& traj : pool) {
      const auto poses = baselines::simulate_sfm_poses(traj, {}, rng);
      sfm_err += baselines::mean_aligned_error(poses);
      for (const auto& p : poses) {
        sfm_failures += !p.registered;
        features += static_cast<double>(p.feature_count);
        ++sfm_frames;
      }
    }
    sfm_err /= static_cast<double>(pool.size());

    // CrowdMap: key-frame aggregation of the same pool, then the median
    // key-frame position error after rigid alignment onto truth (median, not
    // mean: the never-orphan placement policy keeps occasional badly-merged
    // trajectories on the map in feature-poor pools, and one such outlier
    // should not masquerade as typical accuracy).
    const auto aggregation = trajectory::aggregate_trajectories(pool, {});
    const auto align = floorplan::align_to_truth(pool, aggregation);
    std::vector<double> cm_errors;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (!aggregation.global_pose[i] || !align) continue;
      for (const auto& kf : pool[i].keyframes) {
        cm_errors.push_back(
            align->apply(aggregation.global_pose[i]->apply(kf.position))
                .distance_to(kf.true_position));
      }
    }
    const double cm_err = common::percentile(cm_errors, 50.0);

    eval::print_table_row(
        std::cout,
        {spec.name, eval::fmt(features / std::max(sfm_frames, 1), 1),
         eval::fmt(sfm_err, 2),
         std::to_string(sfm_failures) + "/" + std::to_string(sfm_frames),
         eval::fmt(cm_err, 2)});
    bench::emit_bench_scalar("fig9_sfm_comparison", spec.name + ".sfm_mean_err_m",
                             sfm_err);
    bench::emit_bench_scalar("fig9_sfm_comparison",
                             spec.name + ".crowdmap_median_err_m", cm_err);
  }
  std::cout << "# paper shape: SfM degrades sharply in the featureless Gym; "
               "CrowdMap stays consistent across both\n";
  return 0;
}

// Shared workload for Fig. 8(a)/(b): per-room layout estimates from the
// visual pipeline (SRS panorama -> layout) and the inertial-only baseline
// (room wander -> bounding box), across all three buildings.
#pragma once

#include <cmath>
#include <iostream>
#include <vector>

#include "baselines/inertial_room.hpp"
#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "eval/datasets.hpp"
#include "floorplan/eval.hpp"
#include "room/layout.hpp"
#include "room/panorama_select.hpp"
#include "sim/user_sim.hpp"
#include "trajectory/trajectory.hpp"

namespace crowdmap::bench {

struct RoomErrorSamples {
  std::vector<double> visual_area;
  std::vector<double> visual_aspect;
  std::vector<double> inertial_area;
  std::vector<double> inertial_aspect;
};

/// Runs the per-room comparison over every room of all three buildings.
[[nodiscard]] inline RoomErrorSamples collect_room_errors(std::uint64_t seed) {
  RoomErrorSamples samples;
  for (const auto& dataset : eval::all_datasets(1.0)) {
    const auto scene = sim::Scene::from_spec(dataset.building, dataset.seed);
    sim::SimOptions options = dataset.options.sim;
    sim::UserSimulator user(scene, dataset.building, options,
                            common::Rng(seed ^ dataset.seed));
    common::Rng light_rng(seed * 31 + dataset.seed);
    for (const auto& room : dataset.building.rooms) {
      // Recordings arrive under mixed lighting, as in the real campaign.
      const auto light = light_rng.chance(dataset.options.night_fraction)
                             ? sim::Lighting::night()
                             : sim::Lighting::day();
      // --- Visual: SRS panorama -> rectangular layout.
      const auto video = user.room_visit(room, 4.0, light);
      const auto traj = trajectory::extract_trajectory(video);
      const auto candidates = room::find_panorama_candidates(traj);
      if (!candidates.empty()) {
        vision::StitchParams stitch;
        stitch.output_width = 512;
        stitch.output_height = 128;
        const auto pano = room::stitch_candidate(traj, candidates.front(), stitch);
        room::LayoutConfig layout_config;
        const auto& kf = traj.keyframes[candidates.front().keyframe_indices.front()];
        const double frame_focal =
            kf.gray.width() / (2.0 * std::tan(stitch.fov / 2.0));
        layout_config.focal_px =
            frame_focal * stitch.output_height / std::max(kf.gray.height(), 1);
        if (const auto layout = room::estimate_layout(pano.image, layout_config)) {
          samples.visual_area.push_back(
              common::relative_error(layout->area(), room.area()));
          samples.visual_aspect.push_back(floorplan::aspect_ratio_error(
              layout->width, layout->depth, room.width, room.depth));
        }
      }
      // --- Inertial baseline: wander loop -> dead-reckoned bounding box.
      const auto wander = user.room_wander(room, light);
      const auto wander_traj = trajectory::extract_trajectory(wander);
      std::vector<geometry::Vec2> trace;
      for (const auto& p : wander_traj.points) trace.push_back(p.position);
      if (const auto est = baselines::estimate_room_inertial(trace)) {
        samples.inertial_area.push_back(
            common::relative_error(est->area(), room.area()));
        samples.inertial_aspect.push_back(floorplan::aspect_ratio_error(
            est->width, est->depth, room.width, room.depth));
      }
    }
  }
  return samples;
}

}  // namespace crowdmap::bench

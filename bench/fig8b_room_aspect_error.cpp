// Fig. 8(b) — CDF of room aspect-ratio error: visual vs inertial-only.
//
// Paper: visual mean ~6.5% vs inertial ~15.1%.
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "eval/harness.hpp"
#include "fig8_util.hpp"

int main() {
  using namespace crowdmap;
  std::cout << "# estimating every room of Lab1/Lab2/Gym (visual + inertial)...\n";
  const auto samples = bench::collect_room_errors(0x8B);

  std::cout << "=== Fig. 8(b): Room aspect ratio error CDF ===\n";
  std::vector<double> visual_pct;
  std::vector<double> inertial_pct;
  for (const double e : samples.visual_aspect) visual_pct.push_back(e * 100);
  for (const double e : samples.inertial_aspect) inertial_pct.push_back(e * 100);
  eval::print_cdf(std::cout, "Visual Data: aspect ratio error (%)", visual_pct);
  eval::print_cdf(std::cout, "Inertial Data: aspect ratio error (%)", inertial_pct);
  std::cout << "# paper: visual mean ~6.5%, inertial mean ~15.1%\n";
  bench::emit_bench_json("fig8b_room_aspect_error", "visual_aspect_error_pct",
                         visual_pct);
  bench::emit_bench_json("fig8b_room_aspect_error", "inertial_aspect_error_pct",
                         inertial_pct);
  return 0;
}

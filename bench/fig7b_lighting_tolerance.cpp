// Fig. 7(b) — aggregation error rate vs fraction of night trajectories.
//
// Paper's shape: the error rate stays low (roughly flat, <= ~10%) as day
// recordings are progressively replaced by night recordings, demonstrating
// tolerance to lighting and exposure changes.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "eval/harness.hpp"

int main() {
  using namespace crowdmap;
  using bench::MergeOutcome;

  constexpr int kGroupSize = 16;  // day pool and night pool, equal sizes
  const auto spec = sim::lab1();
  std::cout << "# generating " << 2 * kGroupSize << " trajectories...\n";
  const auto day_pool = bench::make_walk_pool(spec, kGroupSize, 0.0, 0x0DA1);
  const auto night_pool = bench::make_walk_pool(spec, kGroupSize, 1.0, 0x0DA2);

  // All trajectories in one indexed pool: 0..15 day, 16..31 night.
  std::vector<trajectory::Trajectory> pool = day_pool;
  pool.insert(pool.end(), night_pool.begin(), night_pool.end());

  // Precompute pairwise decisions once.
  trajectory::MatchConfig match_config;
  std::vector<std::vector<MergeOutcome>> outcome(
      pool.size(), std::vector<MergeOutcome>(pool.size(), MergeOutcome::kNoDecision));
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (std::size_t j = i + 1; j < pool.size(); ++j) {
      outcome[i][j] = bench::judge_merge(
          pool[i], pool[j],
          trajectory::match_trajectories(pool[i], pool[j], match_config));
    }
  }

  std::cout << "=== Fig. 7(b): Aggregation error rate vs % night trajectories ===\n";
  eval::print_table_row(std::cout,
                        {"Night fraction", "Error rate", "(wrong/merges)"});
  std::vector<double> error_rates;
  for (int night_pct = 0; night_pct <= 100; night_pct += 10) {
    // Mixed set of kGroupSize trajectories: first take night, then day.
    const int n_night = kGroupSize * night_pct / 100;
    std::vector<std::size_t> members;
    for (int k = 0; k < n_night; ++k) {
      members.push_back(static_cast<std::size_t>(kGroupSize + k));
    }
    for (int k = 0; k < kGroupSize - n_night; ++k) {
      members.push_back(static_cast<std::size_t>(k));
    }
    int wrong = 0;
    int merges = 0;
    for (std::size_t x = 0; x < members.size(); ++x) {
      for (std::size_t y = x + 1; y < members.size(); ++y) {
        const auto i = std::min(members[x], members[y]);
        const auto j = std::max(members[x], members[y]);
        if (outcome[i][j] == MergeOutcome::kNoDecision) continue;
        ++merges;
        wrong += outcome[i][j] == MergeOutcome::kWrong;
      }
    }
    const double rate = merges ? static_cast<double>(wrong) / merges : 0.0;
    eval::print_table_row(std::cout,
                          {std::to_string(night_pct) + "%", eval::pct(rate),
                           std::to_string(wrong) + "/" + std::to_string(merges)});
    error_rates.push_back(rate);
  }
  std::cout << "# paper shape: error rate stays low (<~10%) across the sweep\n";
  bench::emit_bench_json("fig7b_lighting_tolerance", "aggregation_error_rate",
                         error_rates);
  return 0;
}

// Flight-recorder hot-path overhead: record() on a disarmed recorder (one
// relaxed load + branch), record() armed (steady-clock read + five relaxed
// atomic stores into the thread-local ring), armed recording under thread
// contention, and the cold-path dump/codec costs.
//
// Emits BENCH_obs.json. The acceptance bar is record_enabled_ns <= ~50 ns —
// cheap enough that the recorder ships always-on (docs/OBSERVABILITY.md);
// bench/baselines/TOLERANCES.conf pins it through tools/bench_gate.
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "obs/flight.hpp"

namespace {

constexpr const char* kBench = "obs";
constexpr int kRepeats = 5;
constexpr std::size_t kEvents = 1u << 20;

using crowdmap::obs::FlightEventKind;
using crowdmap::obs::FlightRecorder;

double ns_per_event(FlightRecorder& flight, std::size_t events) {
  crowdmap::common::Stopwatch timer;
  for (std::size_t i = 0; i < events; ++i) {
    flight.record(FlightEventKind::kCacheHit, 1, i, i ^ 0x5aa5);
  }
  return timer.elapsed_seconds() * 1e9 / static_cast<double>(events);
}

}  // namespace

int main() {
  using namespace crowdmap;

  obs::FlightOptions options;
  options.ring_capacity = 4096;
  FlightRecorder flight(options);

  // Warm up this thread's ring registration so neither loop pays it.
  flight.record(FlightEventKind::kCacheHit, 0, 0, 0);

  std::vector<double> disarmed;
  std::vector<double> enabled;
  for (int r = 0; r < kRepeats; ++r) {
    flight.disarm();
    disarmed.push_back(ns_per_event(flight, kEvents));
    flight.arm();
    enabled.push_back(ns_per_event(flight, kEvents));
  }
  bench::emit_bench_json(kBench, "record_disarmed_ns", disarmed);
  bench::emit_bench_json(kBench, "record_enabled_ns", enabled);

  // Contended: four writers, each into its own ring — per-thread rings mean
  // the only sharing is the armed flag and the clock, so this should stay
  // within a small factor of the single-thread number.
  std::vector<double> contended;
  for (int r = 0; r < kRepeats; ++r) {
    common::Stopwatch timer;
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
      writers.emplace_back([&flight] {
        for (std::size_t i = 0; i < kEvents / 4; ++i) {
          flight.record(FlightEventKind::kCacheMiss, 2, i, i);
        }
      });
    }
    for (auto& w : writers) w.join();
    contended.push_back(timer.elapsed_seconds() * 1e9 /
                        static_cast<double>(kEvents / 4));
  }
  bench::emit_bench_json(kBench, "record_contended_4t_ns", contended);

  // Cold path: merge + normalize the rings, then round-trip the codec.
  std::vector<double> dump_ms;
  std::vector<double> codec_ms;
  std::size_t encoded_bytes = 0;
  for (int r = 0; r < kRepeats; ++r) {
    common::Stopwatch timer;
    const obs::FlightDump dump = flight.deterministic_dump();
    dump_ms.push_back(timer.elapsed_seconds() * 1e3);
    timer.restart();
    const auto bytes = obs::encode_flight_dump(dump);
    const auto decoded = obs::decode_flight_dump(bytes);
    codec_ms.push_back(timer.elapsed_seconds() * 1e3);
    encoded_bytes = bytes.size();
    if (!decoded.ok() || decoded.value().events.size() != dump.events.size()) {
      std::cerr << "codec round-trip mismatch\n";
      return 1;
    }
  }
  bench::emit_bench_json(kBench, "deterministic_dump_ms", dump_ms);
  bench::emit_bench_json(kBench, "codec_roundtrip_ms", codec_ms);
  bench::emit_bench_scalar(kBench, "dump_encoded_bytes",
                           static_cast<double>(encoded_bytes));
  return 0;
}

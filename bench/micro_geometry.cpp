// Micro-benchmarks of the geometry/mapping hot paths: Delaunay, α-shape,
// occupancy rasterization, skeleton reconstruction, polygon clipping,
// raster overlap metrics.
#include <benchmark/benchmark.h>

#include "bench_gbench_main.hpp"
#include "common/rng.hpp"
#include "geometry/alpha_shape.hpp"
#include "geometry/delaunay.hpp"
#include "geometry/polygon.hpp"
#include "geometry/raster.hpp"
#include "mapping/occupancy.hpp"
#include "mapping/skeleton.hpp"

namespace {

using namespace crowdmap;
using geometry::Vec2;

std::vector<Vec2> random_points(int n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, 40), rng.uniform(0, 30)});
  }
  return pts;
}

void BM_Delaunay(benchmark::State& state) {
  const auto pts = random_points(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geometry::delaunay_triangulation(pts));
  }
}
BENCHMARK(BM_Delaunay)->Arg(100)->Arg(400);

void BM_AlphaShape(benchmark::State& state) {
  const auto pts = random_points(static_cast<int>(state.range(0)), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geometry::alpha_shape(pts, 2.0));
  }
}
BENCHMARK(BM_AlphaShape)->Arg(100)->Arg(400);

void BM_OccupancyPolyline(benchmark::State& state) {
  mapping::OccupancyGrid grid({{0, 0}, {50, 40}}, 0.5);
  std::vector<Vec2> path;
  for (int i = 0; i < 40; ++i) path.push_back({i * 1.0, 10.0 + (i % 3) * 0.3});
  for (auto _ : state) {
    grid.add_polyline(path, 1.2);
  }
}
BENCHMARK(BM_OccupancyPolyline);

void BM_SkeletonReconstruction(benchmark::State& state) {
  mapping::OccupancyGrid grid({{0, 0}, {50, 40}}, 0.5);
  common::Rng rng(11);
  for (int k = 0; k < 20; ++k) {
    const double y = 10 + rng.uniform(-0.8, 0.8);
    grid.add_polyline({{2, y}, {48, y}}, 1.2);
    const double x = 25 + rng.uniform(-0.8, 0.8);
    grid.add_polyline({{x, 2}, {x, 38}}, 1.2);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapping::reconstruct_skeleton(grid, {}));
  }
}
BENCHMARK(BM_SkeletonReconstruction);

void BM_PolygonClip(benchmark::State& state) {
  const auto a = geometry::Polygon::oriented_rectangle({0, 0}, 5, 4, 0.3);
  const auto b = geometry::Polygon::oriented_rectangle({1, 1}, 6, 3, 1.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geometry::clip_convex(a, b));
  }
}
BENCHMARK(BM_PolygonClip);

void BM_BestAlignedOverlap(benchmark::State& state) {
  geometry::BoolRaster a({{0, 0}, {50, 40}}, 0.5);
  a.fill_polygon(geometry::Polygon::rectangle({25, 10}, 46, 2.4));
  const auto b = a.shifted(3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geometry::best_aligned_overlap(b, a, 8));
  }
}
BENCHMARK(BM_BestAlignedOverlap);

}  // namespace

int main(int argc, char** argv) {
  return crowdmap::bench::run_benchmarks_with_json("micro_geometry", argc,
                                                   argv);
}

// Shared main() for the google-benchmark micro benches: runs the registered
// benchmarks with the normal console output, then emits one machine-readable
// `BENCH_<bench>.json {...}` line per benchmark (mean real seconds per
// iteration) so drivers can scrape micro timings the same way as the
// table/figure benches.
#pragma once

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bench_util.hpp"

namespace crowdmap::bench {

/// Console reporter that additionally remembers per-benchmark mean real time.
class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const auto& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      collected_.emplace_back(run.benchmark_name(),
                              run.real_accumulated_time / iters);
    }
  }

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& collected()
      const {
    return collected_;
  }

 private:
  std::vector<std::pair<std::string, double>> collected_;
};

/// Drop-in replacement for BENCHMARK_MAIN()'s body with JSON-line emission.
/// Each benchmark is repeated (default 5x, override with an explicit
/// --benchmark_repetitions flag) and the per-repetition timings of one name
/// aggregate into a single BENCH line with a real sample count, so the
/// committed baselines carry usable stddev/median/p90 columns instead of
/// the degenerate samples:1 rows the old single-pass emitter produced.
inline int run_benchmarks_with_json(const std::string& bench, int argc,
                                    char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string default_reps = "--benchmark_repetitions=5";
  bool has_reps = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_repetitions", 0) == 0) {
      has_reps = true;
    }
  }
  if (!has_reps) args.push_back(default_reps.data());
  int arg_count = static_cast<int>(args.size());
  benchmark::Initialize(&arg_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(arg_count, args.data())) return 1;
  JsonLineReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  std::vector<std::string> order;
  std::map<std::string, std::vector<double>> samples;
  for (const auto& [name, seconds] : reporter.collected()) {
    auto [it, inserted] = samples.try_emplace(name);
    if (inserted) order.push_back(name);
    it->second.push_back(seconds);
  }
  for (const auto& name : order) {
    emit_bench_json(bench, name + ".real_seconds", samples[name]);
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace crowdmap::bench

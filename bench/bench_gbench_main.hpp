// Shared main() for the google-benchmark micro benches: runs the registered
// benchmarks with the normal console output, then emits one machine-readable
// `BENCH_<bench>.json {...}` line per benchmark (mean real seconds per
// iteration) so drivers can scrape micro timings the same way as the
// table/figure benches.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"

namespace crowdmap::bench {

/// Console reporter that additionally remembers per-benchmark mean real time.
class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const auto& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      collected_.emplace_back(run.benchmark_name(),
                              run.real_accumulated_time / iters);
    }
  }

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& collected()
      const {
    return collected_;
  }

 private:
  std::vector<std::pair<std::string, double>> collected_;
};

/// Drop-in replacement for BENCHMARK_MAIN()'s body with JSON-line emission.
inline int run_benchmarks_with_json(const std::string& bench, int argc,
                                    char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonLineReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  for (const auto& [name, seconds] : reporter.collected()) {
    emit_bench_scalar(bench, name + ".real_seconds", seconds);
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace crowdmap::bench

// Ablation — LCSS parameters (§III.B.I): sweep of the distance threshold ε
// and the index window δ, measuring merge accuracy and merge yield. Shows
// the operating region behind the defaults.
#include <iostream>

#include "bench_util.hpp"
#include "eval/harness.hpp"
#include "trajectory/matching.hpp"

int main() {
  using namespace crowdmap;
  const auto spec = sim::lab1();
  const auto pool = bench::make_walk_pool(spec, 14, 0.25, 0xAB3);

  std::cout << "=== Ablation: LCSS (epsilon, delta) sweep ===\n";
  eval::print_table_row(std::cout,
                        {"epsilon (m)", "delta", "accuracy", "merges"});
  for (const double epsilon : {0.5, 1.0, 1.5, 2.5}) {
    for (const int delta : {4, 8, 16}) {
      trajectory::MatchConfig config;
      config.lcss.epsilon = epsilon;
      config.lcss.delta = delta;
      int merges = 0;
      int correct = 0;
      for (std::size_t i = 0; i < pool.size(); ++i) {
        for (std::size_t j = i + 1; j < pool.size(); ++j) {
          const auto outcome = bench::judge_merge(
              pool[i], pool[j],
              trajectory::match_trajectories(pool[i], pool[j], config));
          if (outcome != bench::MergeOutcome::kNoDecision) {
            ++merges;
            correct += outcome == bench::MergeOutcome::kCorrect;
          }
        }
      }
      const double acc = merges ? static_cast<double>(correct) / merges : 0.0;
      eval::print_table_row(std::cout,
                            {eval::fmt(epsilon, 1), std::to_string(delta),
                             eval::pct(acc), std::to_string(merges)});
      bench::emit_bench_scalar("ablation_lcss_params",
                               "accuracy.eps=" + eval::fmt(epsilon, 1) +
                                   ",delta=" + std::to_string(delta),
                               acc);
    }
  }
  std::cout << "# small epsilon starves merges; large epsilon admits junk; "
               "the defaults sit in the plateau\n";
  return 0;
}

// Table I — hallway shape evaluation: precision, recall, F-measure of the
// reconstructed floor path skeleton against ground truth for the three
// evaluation buildings.
//
// Paper's reported values (for shape comparison):
//   Lab 1: P 87.5%  R 93.3%  F 90.3%
//   Lab 2: P 92.2%  R 95.9%  F 94.0%
//   Gym  : P 84.3%  R 88.8%  F 86.5%
#include <iostream>

#include "bench_util.hpp"
#include "eval/datasets.hpp"
#include "eval/harness.hpp"

int main() {
  using namespace crowdmap;
  std::cout << "=== Table I: Hallway Shape Evaluation ===\n";
  eval::print_table_row(std::cout,
                        {"Building", "Precision (P)", "Recall (R)", "F-Measure"});
  const core::PipelineConfig config;
  for (const auto& dataset : eval::all_datasets(1.0)) {
    const auto run = eval::run_experiment(dataset, config);
    eval::print_table_row(std::cout,
                          {dataset.name, eval::pct(run.hallway.precision),
                           eval::pct(run.hallway.recall),
                           eval::pct(run.hallway.f_measure)});
    bench::emit_bench_scalar("table1_hallway_shape", dataset.name + ".precision",
                             run.hallway.precision);
    bench::emit_bench_scalar("table1_hallway_shape", dataset.name + ".recall",
                             run.hallway.recall);
    bench::emit_bench_scalar("table1_hallway_shape", dataset.name + ".f_measure",
                             run.hallway.f_measure);
  }
  std::cout << "# paper: Lab1 87.5/93.3/90.3  Lab2 92.2/95.9/94.0  "
               "Gym 84.3/88.8/86.5\n";
  return 0;
}

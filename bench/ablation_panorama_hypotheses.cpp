// Ablation — room-layout hypothesis count (§III.C.II): the paper samples
// 20,000 layout models per panorama. Sweeps the sample count (with the
// data-driven seeds disabled, so this measures pure random-sampling
// convergence) and reports room area error.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "eval/datasets.hpp"
#include "eval/harness.hpp"
#include "room/layout.hpp"
#include "room/panorama_select.hpp"
#include "sim/user_sim.hpp"
#include "trajectory/trajectory.hpp"

int main() {
  using namespace crowdmap;
  const auto dataset = eval::lab1_dataset(1.0);
  const auto scene = sim::Scene::from_spec(dataset.building, dataset.seed);
  sim::SimOptions options = dataset.options.sim;
  sim::UserSimulator user(scene, dataset.building, options, common::Rng(0xAB5));

  // Precompute panoramas once per room.
  struct RoomPano {
    imaging::Image image;
    double focal = 0.0;
    double true_area = 0.0;
  };
  std::vector<RoomPano> panos;
  vision::StitchParams stitch;
  stitch.output_width = 512;
  stitch.output_height = 128;
  for (const auto& room : dataset.building.rooms) {
    const auto video = user.room_visit(room, 3.0, sim::Lighting::day());
    const auto traj = trajectory::extract_trajectory(video);
    const auto candidates = room::find_panorama_candidates(traj);
    if (candidates.empty()) continue;
    const auto pano = room::stitch_candidate(traj, candidates.front(), stitch);
    const auto& kf = traj.keyframes[candidates.front().keyframe_indices.front()];
    RoomPano rp;
    rp.image = pano.image;
    rp.focal = kf.gray.width() / (2.0 * std::tan(stitch.fov / 2.0)) *
               stitch.output_height / std::max(kf.gray.height(), 1);
    rp.true_area = room.area();
    panos.push_back(std::move(rp));
  }
  std::cout << "# panoramas prepared: " << panos.size() << "\n";

  std::cout << "=== Ablation: layout hypotheses (random sampling only) ===\n";
  eval::print_table_row(std::cout,
                        {"hypotheses", "mean area err", "p90 area err"});
  for (const int hypotheses : {20, 200, 2000, 20000}) {
    std::vector<double> errors;
    for (const auto& rp : panos) {
      // Average over independent sampler seeds: at low counts the variance
      // between runs dominates, which is itself part of the story.
      for (std::uint64_t sampler_seed = 1; sampler_seed <= 5; ++sampler_seed) {
        room::LayoutConfig config;
        config.hypotheses = hypotheses;
        config.use_seed_hypotheses = false;
        config.focal_px = rp.focal;
        config.seed = 0xAB5000u + sampler_seed;
        if (const auto layout = room::estimate_layout(rp.image, config)) {
          errors.push_back(
              common::relative_error(layout->area(), rp.true_area));
        }
      }
    }
    const auto summary = common::summarize(errors);
    eval::print_table_row(std::cout, {std::to_string(hypotheses),
                                      eval::pct(summary.mean),
                                      eval::pct(summary.p90)});
    bench::emit_bench_json("ablation_panorama_hypotheses",
                           "area_error.hypotheses=" + std::to_string(hypotheses),
                           errors);
  }
  std::cout << "# error should fall steeply with more samples and flatten "
               "well before 20k (the paper's setting is conservative)\n";
  return 0;
}

// Ablation — occupancy grid cell size (§III.B.II): the grid discretization
// trades hallway precision against recall. Sweeps the cell size on Lab1.
#include <iostream>

#include "bench_util.hpp"
#include "eval/datasets.hpp"
#include "eval/harness.hpp"

int main() {
  using namespace crowdmap;
  const auto dataset = eval::lab1_dataset(0.5);

  std::cout << "=== Ablation: occupancy grid cell size (Lab1, half campaign) ===\n";
  eval::print_table_row(std::cout,
                        {"cell (m)", "Precision", "Recall", "F-Measure"});
  for (const double cell : {0.25, 0.5, 0.75, 1.0}) {
    core::PipelineConfig config = core::PipelineConfig::fast_profile();
    config.grid_cell_size = cell;
    // Keep the skeleton's morphology meaningful across resolutions: the
    // metric sizes stay fixed, so cells scale inversely.
    config.skeleton.bridge_max_gap_cells =
        static_cast<int>(5.0 / cell);
    config.skeleton.min_component_cells =
        static_cast<std::size_t>(1.5 / (cell * cell));
    const auto run = eval::run_experiment(dataset, config);
    eval::print_table_row(std::cout,
                          {eval::fmt(cell, 2), eval::pct(run.hallway.precision),
                           eval::pct(run.hallway.recall),
                           eval::pct(run.hallway.f_measure)});
    bench::emit_bench_scalar("ablation_grid_resolution",
                             "f_measure.cell=" + eval::fmt(cell, 2),
                             run.hallway.f_measure);
  }
  std::cout << "# coarse grids inflate the skeleton (recall up, precision "
               "down); fine grids fragment it\n";
  return 0;
}

// Fig. 6 — the reconstructed floor plan next to ground truth (qualitative).
// Prints both as ASCII maps and writes SVG renderings alongside the binary.
#include <fstream>
#include <iostream>

#include "bench_util.hpp"
#include "eval/datasets.hpp"
#include "eval/harness.hpp"

int main() {
  using namespace crowdmap;
  const auto dataset = eval::lab1_dataset(1.0);
  const auto run = eval::run_experiment(dataset, core::PipelineConfig{});

  // Ground-truth plan rendered through the same code path.
  floorplan::FloorPlan truth;
  truth.hallway = dataset.building.hallway_raster(0.5);
  for (const auto& room : dataset.building.rooms) {
    floorplan::PlacedRoom placed;
    placed.center = room.center;
    placed.width = room.width;
    placed.depth = room.depth;
    placed.orientation = room.theta;
    placed.true_room_id = room.id;
    truth.rooms.push_back(placed);
  }

  std::cout << "=== Fig. 6(a): ground truth (" << dataset.name << ") ===\n"
            << truth.to_ascii(100) << '\n';
  std::cout << "=== Fig. 6(b): CrowdMap reconstruction ===\n"
            << run.result.plan.to_ascii(100) << '\n';

  std::ofstream("fig6_ground_truth.svg") << truth.to_svg();
  std::ofstream("fig6_reconstruction.svg") << run.result.plan.to_svg();
  std::cout << "# SVGs written: fig6_ground_truth.svg, fig6_reconstruction.svg\n";
  std::cout << "# hallway F-measure " << eval::pct(run.hallway.f_measure)
            << ", rooms reconstructed " << run.result.plan.rooms.size() << "/"
            << dataset.building.rooms.size() << '\n';
  bench::emit_bench_scalar("fig6_floorplan_render", "hallway_f_measure",
                           run.hallway.f_measure);
  bench::emit_bench_scalar("fig6_floorplan_render", "rooms_reconstructed",
                           static_cast<double>(run.result.plan.rooms.size()));
  return 0;
}

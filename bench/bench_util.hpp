// Shared helpers for the bench harness: trajectory pools with ground-truth
// alignment, merge-correctness judgment, and output formatting.
#pragma once

#include <iostream>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "eval/harness.hpp"
#include "floorplan/eval.hpp"
#include "sim/buildings.hpp"
#include "sim/user_sim.hpp"
#include "trajectory/matching.hpp"
#include "trajectory/trajectory.hpp"

namespace crowdmap::bench {

using geometry::Pose2;
using geometry::Vec2;

/// Rigid alignment of a trajectory's local frame onto ground truth,
/// estimated from its key-frames' (dead-reckoned, true) position pairs.
[[nodiscard]] inline std::optional<Pose2> local_to_truth(
    const trajectory::Trajectory& traj) {
  std::vector<Vec2> from;
  std::vector<Vec2> to;
  for (const auto& kf : traj.keyframes) {
    from.push_back(kf.position);
    to.push_back(kf.true_position);
  }
  return floorplan::kabsch_align(from, to);
}

/// Ground-truth relative transform mapping b's local frame into a's.
[[nodiscard]] inline std::optional<Pose2> true_b_to_a(
    const trajectory::Trajectory& a, const trajectory::Trajectory& b) {
  const auto align_a = local_to_truth(a);
  const auto align_b = local_to_truth(b);
  if (!align_a || !align_b) return std::nullopt;
  return align_a->inverse().compose(*align_b);
}

/// Whether an estimated merge transform agrees with the ground truth.
[[nodiscard]] inline bool transform_correct(const Pose2& est, const Pose2& truth,
                                            double max_dist = 3.0,
                                            double max_angle = 0.45) {
  return est.position.distance_to(truth.position) <= max_dist &&
         std::abs(common::angle_diff(est.theta, truth.theta)) <= max_angle;
}

/// Options for generating a pool of labeled hallway-walk trajectories.
struct WalkPoolOptions {
  int count = 40;
  double night_fraction = 0.0;
  std::uint64_t seed = 0x900Lu;
  double fps = 3.0;
  int camera_width = 120;
  int camera_height = 160;
};

/// Pool of hallway-walk trajectories over a building (no junk, labeled).
[[nodiscard]] inline std::vector<trajectory::Trajectory> make_walk_pool(
    const sim::FloorPlanSpec& spec, int count, double night_fraction,
    std::uint64_t seed) {
  const auto scene = sim::Scene::from_spec(spec, seed);
  common::Rng rng(seed);
  std::vector<trajectory::Trajectory> pool;
  pool.reserve(static_cast<std::size_t>(count));
  sim::SimOptions options;
  options.fps = 3.0;
  sim::UserSimulator user(scene, spec, options, rng.fork());
  for (int i = 0; i < count; ++i) {
    const auto light = rng.chance(night_fraction) ? sim::Lighting::night()
                                                  : sim::Lighting::day();
    pool.push_back(trajectory::extract_trajectory(user.hallway_walk(light)));
    pool.back().video_id = i;
  }
  return pool;
}

// ---------------------------------------------------- result emission ---

/// Escapes a string for embedding in a JSON string literal.
[[nodiscard]] inline std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Emits one machine-readable result line:
///   BENCH_<bench>.json {"name":"<series>","samples":N,"mean":...,...}
/// Every bench target reports its headline numbers through this helper, so
/// the repo's perf/accuracy trajectory can be tracked by grepping `BENCH_`
/// out of CI logs from PR 1 onward.
inline void emit_bench_json(std::string_view bench, std::string_view series,
                            std::span<const double> samples,
                            std::ostream& out = std::cout) {
  const common::Summary s = common::summarize(samples);
  std::ostringstream line;
  line.precision(9);
  line << "BENCH_" << bench << ".json {\"name\":\"" << json_escape(series)
       << "\",\"samples\":" << s.count << ",\"mean\":" << s.mean
       << ",\"stddev\":" << s.stddev << ",\"min\":" << s.min
       << ",\"max\":" << s.max << ",\"median\":" << s.median
       << ",\"p90\":" << s.p90 << ",\"p99\":" << s.p99 << "}";
  out << line.str() << '\n';
}

/// Single-value convenience for scalar results (accuracy ratios, totals).
inline void emit_bench_scalar(std::string_view bench, std::string_view series,
                              double value, std::ostream& out = std::cout) {
  emit_bench_json(bench, series, std::span<const double>(&value, 1), out);
}

/// Decision of one pairwise merge attempt, judged against ground truth.
enum class MergeOutcome { kNoDecision, kCorrect, kWrong };

[[nodiscard]] inline MergeOutcome judge_merge(
    const trajectory::Trajectory& a, const trajectory::Trajectory& b,
    const std::optional<trajectory::PairMatch>& match) {
  if (!match) return MergeOutcome::kNoDecision;
  const auto truth = true_b_to_a(a, b);
  if (!truth) return MergeOutcome::kWrong;
  return transform_correct(match->b_to_a, *truth) ? MergeOutcome::kCorrect
                                                  : MergeOutcome::kWrong;
}

}  // namespace crowdmap::bench

// Cloud-backend robustness overhead: what the fault-injection harness and
// the hardened ingest front door cost when nothing is failing.
//
// Emits BENCH_service.json lines:
//   - should_fire latency, disarmed vs armed-but-muzzled (probability 1,
//     budget 0: the full hash + budget path runs on every call, nothing
//     fires) — the per-interrogation price of the instrumentation,
//   - ingest chunk throughput through the hardened IngestService (checksum
//     validation, duplicate idempotency, logical-clock session sweeping),
//   - end-to-end build_floor_plan latency with faults disarmed vs muzzled,
//     plus their ratio. The acceptance bar for the robustness PR is a ratio
//     of ~1.0: the disabled path must be free (docs/ROBUSTNESS.md).
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cloud/chunking.hpp"
#include "cloud/docstore.hpp"
#include "cloud/ingest.hpp"
#include "common/fault.hpp"
#include "common/stopwatch.hpp"
#include "core/pipeline.hpp"
#include "sim/buildings.hpp"
#include "sim/campaign.hpp"

namespace {

constexpr const char* kBench = "service";
constexpr int kRepeats = 5;

/// Armed plan that can never fire: every interrogation runs the full hash +
/// budget-denial path, so timing it against the disarmed injector isolates
/// the harness overhead.
crowdmap::common::FaultPlan muzzled_plan() {
  crowdmap::common::FaultPlan plan;
  plan.seed = 0xBEEF;
  for (const auto point : crowdmap::common::all_fault_points()) {
    plan.settings.push_back(
        crowdmap::common::FaultSetting{point, 1.0, /*budget=*/0});
  }
  return plan;
}

}  // namespace

int main() {
  using namespace crowdmap;

  // ---- should_fire: disarmed vs armed-but-muzzled, ns per interrogation.
  {
    constexpr std::uint64_t kCalls = 4'000'000;
    common::FaultInjector disarmed;
    common::FaultInjector muzzled(muzzled_plan());
    common::Stopwatch timer;
    for (auto* injector : {&disarmed, &muzzled}) {
      std::vector<double> samples;
      std::uint64_t sink = 0;
      for (int r = 0; r < kRepeats; ++r) {
        timer.restart();
        for (std::uint64_t key = 0; key < kCalls; ++key) {
          sink += injector->should_fire(common::faults::kDecodeFail, key);
        }
        samples.push_back(timer.elapsed_seconds() / kCalls * 1e9);
      }
      if (sink != 0) std::cout << "# unexpected fires: " << sink << "\n";
      bench::emit_bench_json(kBench,
                             injector == &disarmed
                                 ? "should_fire_disarmed_ns"
                                 : "should_fire_muzzled_ns",
                             samples);
    }
  }

  // ---- Ingest front door: chunks/sec through checksum validation,
  // duplicate accounting and the session sweep.
  {
    constexpr std::size_t kUploads = 64;
    constexpr std::size_t kBlobBytes = 64 * 1024;
    constexpr std::size_t kChunkBytes = 4 * 1024;
    std::vector<std::vector<cloud::Chunk>> uploads;
    common::Rng rng(0x1A6E57);
    for (std::size_t u = 0; u < kUploads; ++u) {
      cloud::Blob blob(kBlobBytes);
      for (auto& b : blob) b = static_cast<std::uint8_t>(rng.next_u64());
      uploads.push_back(cloud::split_into_chunks(
          blob, "bench" + std::to_string(u), kChunkBytes));
    }
    const double total_chunks =
        static_cast<double>(kUploads * (kBlobBytes / kChunkBytes));

    common::Stopwatch timer;
    std::vector<double> samples;
    for (int r = 0; r < kRepeats; ++r) {
      cloud::DocumentStore store;
      cloud::IngestService ingest(store);
      for (std::size_t u = 0; u < kUploads; ++u) {
        ingest.open_session("bench" + std::to_string(u), "Bench", 1);
      }
      timer.restart();
      for (const auto& chunks : uploads) {
        for (const auto& chunk : chunks) (void)ingest.deliver(chunk);
      }
      samples.push_back(total_chunks / timer.elapsed_seconds());
    }
    bench::emit_bench_json(kBench, "ingest_chunks_per_sec", samples);
  }

  // ---- build_floor_plan latency, faults disarmed vs muzzled.
  {
    common::Rng rng(0xFA0175);
    const auto spec = sim::random_building(3, rng);
    sim::CampaignOptions options;
    options.users = 3;
    options.room_videos_per_room = 1;
    options.hallway_walks = 6;
    options.junk_fraction = 0.0;
    options.sim.fps = 3.0;

    double disarmed_mean = 0.0;
    double muzzled_mean = 0.0;
    for (const bool armed : {false, true}) {
      core::PipelineConfig config = core::PipelineConfig::fast_profile();
      if (armed) config.faults = muzzled_plan();
      common::Stopwatch timer;
      std::vector<double> samples;
      for (int r = 0; r < kRepeats; ++r) {
        // This benchmark times the bare stage executor on purpose — the
        // api::Client path is measured separately by micro_incremental.
        // crowdmap-lint: allow(pipeline-construction)
        core::CrowdMapPipeline pipeline(config);
        sim::generate_campaign_streaming(
            spec, options, 0xFA0175,
            [&pipeline](sim::SensorRichVideo&& video) {
              pipeline.ingest(video);
            });
        timer.restart();
        const auto result = pipeline.run();
        samples.push_back(timer.elapsed_seconds());
        if (result.degradation.degraded()) {
          std::cout << "# unexpected degradation in muzzled run\n";
        }
      }
      bench::emit_bench_json(kBench,
                             armed ? "pipeline_run_seconds_muzzled"
                                   : "pipeline_run_seconds_disarmed",
                             samples);
      (armed ? muzzled_mean : disarmed_mean) =
          common::summarize(samples).mean;
    }
    bench::emit_bench_scalar(kBench, "fault_overhead_ratio",
                             muzzled_mean / disarmed_mean);
  }
  return 0;
}

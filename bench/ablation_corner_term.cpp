// Ablation — the corner-consistency term in layout scoring (Fig. 5's
// vertical wall-joint lines): room area/aspect error with the corner term
// off, default, and strong.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "eval/datasets.hpp"
#include "eval/harness.hpp"
#include "floorplan/eval.hpp"
#include "room/layout.hpp"
#include "room/panorama_select.hpp"
#include "sim/user_sim.hpp"
#include "trajectory/trajectory.hpp"

int main() {
  using namespace crowdmap;
  const auto dataset = eval::lab2_dataset(1.0);
  const auto scene = sim::Scene::from_spec(dataset.building, dataset.seed);
  sim::SimOptions options = dataset.options.sim;
  sim::UserSimulator user(scene, dataset.building, options, common::Rng(0xAB6));

  // Precompute panoramas once per room.
  struct RoomPano {
    imaging::Image image;
    double focal = 0.0;
    double true_w = 0.0;
    double true_d = 0.0;
  };
  std::vector<RoomPano> panos;
  vision::StitchParams stitch;
  stitch.output_width = 512;
  stitch.output_height = 128;
  for (const auto& room : dataset.building.rooms) {
    const auto video = user.room_visit(room, 3.0, sim::Lighting::day());
    const auto traj = trajectory::extract_trajectory(video);
    const auto candidates = room::find_panorama_candidates(traj);
    if (candidates.empty()) continue;
    const auto pano = room::stitch_candidate(traj, candidates.front(), stitch);
    const auto& kf = traj.keyframes[candidates.front().keyframe_indices.front()];
    RoomPano rp;
    rp.image = pano.image;
    rp.focal = kf.gray.width() / (2.0 * std::tan(stitch.fov / 2.0)) *
               stitch.output_height / std::max(kf.gray.height(), 1);
    rp.true_w = room.width;
    rp.true_d = room.depth;
    panos.push_back(std::move(rp));
  }
  std::cout << "# panoramas prepared: " << panos.size() << "\n";

  std::cout << "=== Ablation: corner-consistency weight in layout scoring ===\n";
  eval::print_table_row(std::cout,
                        {"corner weight", "mean area err", "mean aspect err"});
  for (const double weight : {0.0, 0.1, 0.4}) {
    std::vector<double> area_errors;
    std::vector<double> aspect_errors;
    for (const auto& rp : panos) {
      room::LayoutConfig config;
      config.hypotheses = 4000;
      config.corner_weight = weight;
      config.focal_px = rp.focal;
      if (const auto layout = room::estimate_layout(rp.image, config)) {
        area_errors.push_back(common::relative_error(layout->area(),
                                                     rp.true_w * rp.true_d));
        aspect_errors.push_back(floorplan::aspect_ratio_error(
            layout->width, layout->depth, rp.true_w, rp.true_d));
      }
    }
    eval::print_table_row(
        std::cout,
        {eval::fmt(weight, 2), eval::pct(common::mean(area_errors)),
         eval::pct(common::mean(aspect_errors))});
    bench::emit_bench_json("ablation_corner_term",
                           "area_error.w=" + eval::fmt(weight, 2), area_errors);
    bench::emit_bench_json("ablation_corner_term",
                           "aspect_error.w=" + eval::fmt(weight, 2),
                           aspect_errors);
  }
  std::cout << "# corner evidence mostly sharpens orientation/aspect; the "
               "boundary term carries area\n";
  return 0;
}

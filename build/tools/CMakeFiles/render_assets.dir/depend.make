# Empty dependencies file for render_assets.
# This may be replaced when dependencies are built.

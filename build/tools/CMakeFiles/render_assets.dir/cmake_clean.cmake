file(REMOVE_RECURSE
  "CMakeFiles/render_assets.dir/render_assets.cpp.o"
  "CMakeFiles/render_assets.dir/render_assets.cpp.o.d"
  "render_assets"
  "render_assets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/render_assets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/crowdmap_cli.dir/crowdmap_cli.cpp.o"
  "CMakeFiles/crowdmap_cli.dir/crowdmap_cli.cpp.o.d"
  "crowdmap_cli"
  "crowdmap_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdmap_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for crowdmap_cli.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_imaging.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_imaging.dir/test_imaging.cpp.o"
  "CMakeFiles/test_imaging.dir/test_imaging.cpp.o.d"
  "test_imaging"
  "test_imaging.pdb"
  "test_imaging[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_imaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_corners.dir/test_corners.cpp.o"
  "CMakeFiles/test_corners.dir/test_corners.cpp.o.d"
  "test_corners"
  "test_corners.pdb"
  "test_corners[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_corners.
# This may be replaced when dependencies are built.

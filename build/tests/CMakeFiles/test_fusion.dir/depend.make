# Empty dependencies file for test_fusion.
# This may be replaced when dependencies are built.

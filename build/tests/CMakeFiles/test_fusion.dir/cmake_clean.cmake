file(REMOVE_RECURSE
  "CMakeFiles/test_fusion.dir/test_fusion.cpp.o"
  "CMakeFiles/test_fusion.dir/test_fusion.cpp.o.d"
  "test_fusion"
  "test_fusion.pdb"
  "test_fusion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_wifi.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_wifi.dir/test_wifi.cpp.o"
  "CMakeFiles/test_wifi.dir/test_wifi.cpp.o.d"
  "test_wifi"
  "test_wifi.pdb"
  "test_wifi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

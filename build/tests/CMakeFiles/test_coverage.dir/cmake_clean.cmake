file(REMOVE_RECURSE
  "CMakeFiles/test_coverage.dir/test_coverage.cpp.o"
  "CMakeFiles/test_coverage.dir/test_coverage.cpp.o.d"
  "test_coverage"
  "test_coverage.pdb"
  "test_coverage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_cloud.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_cloud.dir/test_cloud.cpp.o"
  "CMakeFiles/test_cloud.dir/test_cloud.cpp.o.d"
  "test_cloud"
  "test_cloud.pdb"
  "test_cloud[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

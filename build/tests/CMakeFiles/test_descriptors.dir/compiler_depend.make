# Empty compiler generated dependencies file for test_descriptors.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_descriptors.dir/test_descriptors.cpp.o"
  "CMakeFiles/test_descriptors.dir/test_descriptors.cpp.o.d"
  "test_descriptors"
  "test_descriptors.pdb"
  "test_descriptors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_descriptors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

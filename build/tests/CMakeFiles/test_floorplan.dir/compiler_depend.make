# Empty compiler generated dependencies file for test_floorplan.
# This may be replaced when dependencies are built.

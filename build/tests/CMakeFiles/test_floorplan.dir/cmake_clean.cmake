file(REMOVE_RECURSE
  "CMakeFiles/test_floorplan.dir/test_floorplan.cpp.o"
  "CMakeFiles/test_floorplan.dir/test_floorplan.cpp.o.d"
  "test_floorplan"
  "test_floorplan.pdb"
  "test_floorplan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

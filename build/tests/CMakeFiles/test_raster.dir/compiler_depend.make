# Empty compiler generated dependencies file for test_raster.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_raster.dir/test_raster.cpp.o"
  "CMakeFiles/test_raster.dir/test_raster.cpp.o.d"
  "test_raster"
  "test_raster.pdb"
  "test_raster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_delaunay.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_delaunay.dir/test_delaunay.cpp.o"
  "CMakeFiles/test_delaunay.dir/test_delaunay.cpp.o.d"
  "test_delaunay"
  "test_delaunay.pdb"
  "test_delaunay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delaunay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_lines.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_lines.dir/test_lines.cpp.o"
  "CMakeFiles/test_lines.dir/test_lines.cpp.o.d"
  "test_lines"
  "test_lines.pdb"
  "test_lines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

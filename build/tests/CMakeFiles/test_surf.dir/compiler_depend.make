# Empty compiler generated dependencies file for test_surf.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_surf.dir/test_surf.cpp.o"
  "CMakeFiles/test_surf.dir/test_surf.cpp.o.d"
  "test_surf"
  "test_surf.pdb"
  "test_surf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_surf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

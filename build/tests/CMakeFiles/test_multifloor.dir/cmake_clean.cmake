file(REMOVE_RECURSE
  "CMakeFiles/test_multifloor.dir/test_multifloor.cpp.o"
  "CMakeFiles/test_multifloor.dir/test_multifloor.cpp.o.d"
  "test_multifloor"
  "test_multifloor.pdb"
  "test_multifloor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multifloor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

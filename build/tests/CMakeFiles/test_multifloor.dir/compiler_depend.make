# Empty compiler generated dependencies file for test_multifloor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_room.dir/test_room.cpp.o"
  "CMakeFiles/test_room.dir/test_room.cpp.o.d"
  "test_room"
  "test_room.pdb"
  "test_room[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_room.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

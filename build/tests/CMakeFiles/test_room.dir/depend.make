# Empty dependencies file for test_room.
# This may be replaced when dependencies are built.

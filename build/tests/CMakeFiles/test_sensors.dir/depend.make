# Empty dependencies file for test_sensors.
# This may be replaced when dependencies are built.

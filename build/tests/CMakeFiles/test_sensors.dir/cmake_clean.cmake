file(REMOVE_RECURSE
  "CMakeFiles/test_sensors.dir/test_sensors.cpp.o"
  "CMakeFiles/test_sensors.dir/test_sensors.cpp.o.d"
  "test_sensors"
  "test_sensors.pdb"
  "test_sensors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

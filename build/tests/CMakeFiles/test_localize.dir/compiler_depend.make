# Empty compiler generated dependencies file for test_localize.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_localize.dir/test_localize.cpp.o"
  "CMakeFiles/test_localize.dir/test_localize.cpp.o.d"
  "test_localize"
  "test_localize.pdb"
  "test_localize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_localize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_panorama.dir/test_panorama.cpp.o"
  "CMakeFiles/test_panorama.dir/test_panorama.cpp.o.d"
  "test_panorama"
  "test_panorama.pdb"
  "test_panorama[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_panorama.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

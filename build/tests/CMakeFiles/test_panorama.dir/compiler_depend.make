# Empty compiler generated dependencies file for test_panorama.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_trajectory.dir/test_trajectory.cpp.o"
  "CMakeFiles/test_trajectory.dir/test_trajectory.cpp.o.d"
  "test_trajectory"
  "test_trajectory.pdb"
  "test_trajectory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

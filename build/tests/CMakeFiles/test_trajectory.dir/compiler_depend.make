# Empty compiler generated dependencies file for test_trajectory.
# This may be replaced when dependencies are built.

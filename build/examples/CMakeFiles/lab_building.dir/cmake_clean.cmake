file(REMOVE_RECURSE
  "CMakeFiles/lab_building.dir/lab_building.cpp.o"
  "CMakeFiles/lab_building.dir/lab_building.cpp.o.d"
  "lab_building"
  "lab_building.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lab_building.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

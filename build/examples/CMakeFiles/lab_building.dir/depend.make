# Empty dependencies file for lab_building.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cloud_service.dir/cloud_service.cpp.o"
  "CMakeFiles/cloud_service.dir/cloud_service.cpp.o.d"
  "cloud_service"
  "cloud_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

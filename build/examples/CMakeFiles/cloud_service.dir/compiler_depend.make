# Empty compiler generated dependencies file for cloud_service.
# This may be replaced when dependencies are built.

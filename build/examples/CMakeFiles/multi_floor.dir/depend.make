# Empty dependencies file for multi_floor.
# This may be replaced when dependencies are built.

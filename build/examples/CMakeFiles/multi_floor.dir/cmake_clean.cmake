file(REMOVE_RECURSE
  "CMakeFiles/multi_floor.dir/multi_floor.cpp.o"
  "CMakeFiles/multi_floor.dir/multi_floor.cpp.o.d"
  "multi_floor"
  "multi_floor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_floor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

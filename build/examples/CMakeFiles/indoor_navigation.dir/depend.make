# Empty dependencies file for indoor_navigation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/indoor_navigation.dir/indoor_navigation.cpp.o"
  "CMakeFiles/indoor_navigation.dir/indoor_navigation.cpp.o.d"
  "indoor_navigation"
  "indoor_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indoor_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for gym_campaign.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gym_campaign.dir/gym_campaign.cpp.o"
  "CMakeFiles/gym_campaign.dir/gym_campaign.cpp.o.d"
  "gym_campaign"
  "gym_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gym_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

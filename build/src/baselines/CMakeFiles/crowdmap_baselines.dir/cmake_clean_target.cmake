file(REMOVE_RECURSE
  "libcrowdmap_baselines.a"
)

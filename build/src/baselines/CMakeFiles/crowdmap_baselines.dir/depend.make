# Empty dependencies file for crowdmap_baselines.
# This may be replaced when dependencies are built.

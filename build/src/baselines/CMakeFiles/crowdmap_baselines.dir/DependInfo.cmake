
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/crowdinside.cpp" "src/baselines/CMakeFiles/crowdmap_baselines.dir/crowdinside.cpp.o" "gcc" "src/baselines/CMakeFiles/crowdmap_baselines.dir/crowdinside.cpp.o.d"
  "/root/repo/src/baselines/inertial_room.cpp" "src/baselines/CMakeFiles/crowdmap_baselines.dir/inertial_room.cpp.o" "gcc" "src/baselines/CMakeFiles/crowdmap_baselines.dir/inertial_room.cpp.o.d"
  "/root/repo/src/baselines/sfm_sim.cpp" "src/baselines/CMakeFiles/crowdmap_baselines.dir/sfm_sim.cpp.o" "gcc" "src/baselines/CMakeFiles/crowdmap_baselines.dir/sfm_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/crowdmap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/crowdmap_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/trajectory/CMakeFiles/crowdmap_trajectory.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/crowdmap_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/crowdmap_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/crowdmap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/crowdmap_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/imaging/CMakeFiles/crowdmap_imaging.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

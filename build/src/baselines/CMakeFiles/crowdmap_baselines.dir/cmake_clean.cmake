file(REMOVE_RECURSE
  "CMakeFiles/crowdmap_baselines.dir/crowdinside.cpp.o"
  "CMakeFiles/crowdmap_baselines.dir/crowdinside.cpp.o.d"
  "CMakeFiles/crowdmap_baselines.dir/inertial_room.cpp.o"
  "CMakeFiles/crowdmap_baselines.dir/inertial_room.cpp.o.d"
  "CMakeFiles/crowdmap_baselines.dir/sfm_sim.cpp.o"
  "CMakeFiles/crowdmap_baselines.dir/sfm_sim.cpp.o.d"
  "libcrowdmap_baselines.a"
  "libcrowdmap_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdmap_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vision/lines.cpp" "src/vision/CMakeFiles/crowdmap_vision.dir/lines.cpp.o" "gcc" "src/vision/CMakeFiles/crowdmap_vision.dir/lines.cpp.o.d"
  "/root/repo/src/vision/matcher.cpp" "src/vision/CMakeFiles/crowdmap_vision.dir/matcher.cpp.o" "gcc" "src/vision/CMakeFiles/crowdmap_vision.dir/matcher.cpp.o.d"
  "/root/repo/src/vision/panorama.cpp" "src/vision/CMakeFiles/crowdmap_vision.dir/panorama.cpp.o" "gcc" "src/vision/CMakeFiles/crowdmap_vision.dir/panorama.cpp.o.d"
  "/root/repo/src/vision/similarity.cpp" "src/vision/CMakeFiles/crowdmap_vision.dir/similarity.cpp.o" "gcc" "src/vision/CMakeFiles/crowdmap_vision.dir/similarity.cpp.o.d"
  "/root/repo/src/vision/surf.cpp" "src/vision/CMakeFiles/crowdmap_vision.dir/surf.cpp.o" "gcc" "src/vision/CMakeFiles/crowdmap_vision.dir/surf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/imaging/CMakeFiles/crowdmap_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/crowdmap_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/crowdmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/crowdmap_vision.dir/lines.cpp.o"
  "CMakeFiles/crowdmap_vision.dir/lines.cpp.o.d"
  "CMakeFiles/crowdmap_vision.dir/matcher.cpp.o"
  "CMakeFiles/crowdmap_vision.dir/matcher.cpp.o.d"
  "CMakeFiles/crowdmap_vision.dir/panorama.cpp.o"
  "CMakeFiles/crowdmap_vision.dir/panorama.cpp.o.d"
  "CMakeFiles/crowdmap_vision.dir/similarity.cpp.o"
  "CMakeFiles/crowdmap_vision.dir/similarity.cpp.o.d"
  "CMakeFiles/crowdmap_vision.dir/surf.cpp.o"
  "CMakeFiles/crowdmap_vision.dir/surf.cpp.o.d"
  "libcrowdmap_vision.a"
  "libcrowdmap_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdmap_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for crowdmap_vision.
# This may be replaced when dependencies are built.

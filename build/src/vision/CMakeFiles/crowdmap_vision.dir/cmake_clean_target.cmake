file(REMOVE_RECURSE
  "libcrowdmap_vision.a"
)

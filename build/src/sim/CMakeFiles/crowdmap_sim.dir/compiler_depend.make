# Empty compiler generated dependencies file for crowdmap_sim.
# This may be replaced when dependencies are built.

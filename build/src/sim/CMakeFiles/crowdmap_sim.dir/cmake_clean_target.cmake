file(REMOVE_RECURSE
  "libcrowdmap_sim.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/buildings.cpp" "src/sim/CMakeFiles/crowdmap_sim.dir/buildings.cpp.o" "gcc" "src/sim/CMakeFiles/crowdmap_sim.dir/buildings.cpp.o.d"
  "/root/repo/src/sim/campaign.cpp" "src/sim/CMakeFiles/crowdmap_sim.dir/campaign.cpp.o" "gcc" "src/sim/CMakeFiles/crowdmap_sim.dir/campaign.cpp.o.d"
  "/root/repo/src/sim/scene.cpp" "src/sim/CMakeFiles/crowdmap_sim.dir/scene.cpp.o" "gcc" "src/sim/CMakeFiles/crowdmap_sim.dir/scene.cpp.o.d"
  "/root/repo/src/sim/spec.cpp" "src/sim/CMakeFiles/crowdmap_sim.dir/spec.cpp.o" "gcc" "src/sim/CMakeFiles/crowdmap_sim.dir/spec.cpp.o.d"
  "/root/repo/src/sim/user_sim.cpp" "src/sim/CMakeFiles/crowdmap_sim.dir/user_sim.cpp.o" "gcc" "src/sim/CMakeFiles/crowdmap_sim.dir/user_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/crowdmap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/crowdmap_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/imaging/CMakeFiles/crowdmap_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/crowdmap_sensors.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

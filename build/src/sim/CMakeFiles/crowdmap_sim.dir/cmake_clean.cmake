file(REMOVE_RECURSE
  "CMakeFiles/crowdmap_sim.dir/buildings.cpp.o"
  "CMakeFiles/crowdmap_sim.dir/buildings.cpp.o.d"
  "CMakeFiles/crowdmap_sim.dir/campaign.cpp.o"
  "CMakeFiles/crowdmap_sim.dir/campaign.cpp.o.d"
  "CMakeFiles/crowdmap_sim.dir/scene.cpp.o"
  "CMakeFiles/crowdmap_sim.dir/scene.cpp.o.d"
  "CMakeFiles/crowdmap_sim.dir/spec.cpp.o"
  "CMakeFiles/crowdmap_sim.dir/spec.cpp.o.d"
  "CMakeFiles/crowdmap_sim.dir/user_sim.cpp.o"
  "CMakeFiles/crowdmap_sim.dir/user_sim.cpp.o.d"
  "libcrowdmap_sim.a"
  "libcrowdmap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdmap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

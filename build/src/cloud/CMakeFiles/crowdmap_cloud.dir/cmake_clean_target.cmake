file(REMOVE_RECURSE
  "libcrowdmap_cloud.a"
)

# Empty compiler generated dependencies file for crowdmap_cloud.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/crowdmap_cloud.dir/chunking.cpp.o"
  "CMakeFiles/crowdmap_cloud.dir/chunking.cpp.o.d"
  "CMakeFiles/crowdmap_cloud.dir/docstore.cpp.o"
  "CMakeFiles/crowdmap_cloud.dir/docstore.cpp.o.d"
  "CMakeFiles/crowdmap_cloud.dir/ingest.cpp.o"
  "CMakeFiles/crowdmap_cloud.dir/ingest.cpp.o.d"
  "CMakeFiles/crowdmap_cloud.dir/service.cpp.o"
  "CMakeFiles/crowdmap_cloud.dir/service.cpp.o.d"
  "libcrowdmap_cloud.a"
  "libcrowdmap_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdmap_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

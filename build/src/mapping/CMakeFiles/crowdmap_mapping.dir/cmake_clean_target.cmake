file(REMOVE_RECURSE
  "libcrowdmap_mapping.a"
)

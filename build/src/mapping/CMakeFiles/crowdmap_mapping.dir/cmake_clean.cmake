file(REMOVE_RECURSE
  "CMakeFiles/crowdmap_mapping.dir/coverage.cpp.o"
  "CMakeFiles/crowdmap_mapping.dir/coverage.cpp.o.d"
  "CMakeFiles/crowdmap_mapping.dir/occupancy.cpp.o"
  "CMakeFiles/crowdmap_mapping.dir/occupancy.cpp.o.d"
  "CMakeFiles/crowdmap_mapping.dir/skeleton.cpp.o"
  "CMakeFiles/crowdmap_mapping.dir/skeleton.cpp.o.d"
  "libcrowdmap_mapping.a"
  "libcrowdmap_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdmap_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for crowdmap_mapping.
# This may be replaced when dependencies are built.

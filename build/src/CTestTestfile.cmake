# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("geometry")
subdirs("imaging")
subdirs("vision")
subdirs("sensors")
subdirs("sim")
subdirs("trajectory")
subdirs("mapping")
subdirs("room")
subdirs("floorplan")
subdirs("cloud")
subdirs("baselines")
subdirs("core")
subdirs("eval")
subdirs("io")
subdirs("localize")
subdirs("wifi")

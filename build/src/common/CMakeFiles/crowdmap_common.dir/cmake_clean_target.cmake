file(REMOVE_RECURSE
  "libcrowdmap_common.a"
)

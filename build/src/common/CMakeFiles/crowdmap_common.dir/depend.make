# Empty dependencies file for crowdmap_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/crowdmap_common.dir/config_file.cpp.o"
  "CMakeFiles/crowdmap_common.dir/config_file.cpp.o.d"
  "CMakeFiles/crowdmap_common.dir/log.cpp.o"
  "CMakeFiles/crowdmap_common.dir/log.cpp.o.d"
  "CMakeFiles/crowdmap_common.dir/rng.cpp.o"
  "CMakeFiles/crowdmap_common.dir/rng.cpp.o.d"
  "CMakeFiles/crowdmap_common.dir/stats.cpp.o"
  "CMakeFiles/crowdmap_common.dir/stats.cpp.o.d"
  "CMakeFiles/crowdmap_common.dir/thread_pool.cpp.o"
  "CMakeFiles/crowdmap_common.dir/thread_pool.cpp.o.d"
  "libcrowdmap_common.a"
  "libcrowdmap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdmap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

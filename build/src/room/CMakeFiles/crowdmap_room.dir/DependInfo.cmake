
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/room/corners.cpp" "src/room/CMakeFiles/crowdmap_room.dir/corners.cpp.o" "gcc" "src/room/CMakeFiles/crowdmap_room.dir/corners.cpp.o.d"
  "/root/repo/src/room/fusion.cpp" "src/room/CMakeFiles/crowdmap_room.dir/fusion.cpp.o" "gcc" "src/room/CMakeFiles/crowdmap_room.dir/fusion.cpp.o.d"
  "/root/repo/src/room/layout.cpp" "src/room/CMakeFiles/crowdmap_room.dir/layout.cpp.o" "gcc" "src/room/CMakeFiles/crowdmap_room.dir/layout.cpp.o.d"
  "/root/repo/src/room/panorama_select.cpp" "src/room/CMakeFiles/crowdmap_room.dir/panorama_select.cpp.o" "gcc" "src/room/CMakeFiles/crowdmap_room.dir/panorama_select.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/crowdmap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/crowdmap_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/imaging/CMakeFiles/crowdmap_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/crowdmap_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/trajectory/CMakeFiles/crowdmap_trajectory.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/crowdmap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/crowdmap_sensors.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libcrowdmap_room.a"
)

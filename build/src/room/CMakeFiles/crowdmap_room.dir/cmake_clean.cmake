file(REMOVE_RECURSE
  "CMakeFiles/crowdmap_room.dir/corners.cpp.o"
  "CMakeFiles/crowdmap_room.dir/corners.cpp.o.d"
  "CMakeFiles/crowdmap_room.dir/fusion.cpp.o"
  "CMakeFiles/crowdmap_room.dir/fusion.cpp.o.d"
  "CMakeFiles/crowdmap_room.dir/layout.cpp.o"
  "CMakeFiles/crowdmap_room.dir/layout.cpp.o.d"
  "CMakeFiles/crowdmap_room.dir/panorama_select.cpp.o"
  "CMakeFiles/crowdmap_room.dir/panorama_select.cpp.o.d"
  "libcrowdmap_room.a"
  "libcrowdmap_room.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdmap_room.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for crowdmap_room.
# This may be replaced when dependencies are built.

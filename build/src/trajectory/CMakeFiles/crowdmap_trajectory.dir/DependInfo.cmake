
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trajectory/aggregate.cpp" "src/trajectory/CMakeFiles/crowdmap_trajectory.dir/aggregate.cpp.o" "gcc" "src/trajectory/CMakeFiles/crowdmap_trajectory.dir/aggregate.cpp.o.d"
  "/root/repo/src/trajectory/incremental.cpp" "src/trajectory/CMakeFiles/crowdmap_trajectory.dir/incremental.cpp.o" "gcc" "src/trajectory/CMakeFiles/crowdmap_trajectory.dir/incremental.cpp.o.d"
  "/root/repo/src/trajectory/lcss.cpp" "src/trajectory/CMakeFiles/crowdmap_trajectory.dir/lcss.cpp.o" "gcc" "src/trajectory/CMakeFiles/crowdmap_trajectory.dir/lcss.cpp.o.d"
  "/root/repo/src/trajectory/matching.cpp" "src/trajectory/CMakeFiles/crowdmap_trajectory.dir/matching.cpp.o" "gcc" "src/trajectory/CMakeFiles/crowdmap_trajectory.dir/matching.cpp.o.d"
  "/root/repo/src/trajectory/trajectory.cpp" "src/trajectory/CMakeFiles/crowdmap_trajectory.dir/trajectory.cpp.o" "gcc" "src/trajectory/CMakeFiles/crowdmap_trajectory.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/crowdmap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/crowdmap_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/imaging/CMakeFiles/crowdmap_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/crowdmap_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/crowdmap_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/crowdmap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/crowdmap_trajectory.dir/aggregate.cpp.o"
  "CMakeFiles/crowdmap_trajectory.dir/aggregate.cpp.o.d"
  "CMakeFiles/crowdmap_trajectory.dir/incremental.cpp.o"
  "CMakeFiles/crowdmap_trajectory.dir/incremental.cpp.o.d"
  "CMakeFiles/crowdmap_trajectory.dir/lcss.cpp.o"
  "CMakeFiles/crowdmap_trajectory.dir/lcss.cpp.o.d"
  "CMakeFiles/crowdmap_trajectory.dir/matching.cpp.o"
  "CMakeFiles/crowdmap_trajectory.dir/matching.cpp.o.d"
  "CMakeFiles/crowdmap_trajectory.dir/trajectory.cpp.o"
  "CMakeFiles/crowdmap_trajectory.dir/trajectory.cpp.o.d"
  "libcrowdmap_trajectory.a"
  "libcrowdmap_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdmap_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for crowdmap_trajectory.
# This may be replaced when dependencies are built.

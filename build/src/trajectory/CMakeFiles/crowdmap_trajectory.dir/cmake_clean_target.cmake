file(REMOVE_RECURSE
  "libcrowdmap_trajectory.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/crowdmap_io.dir/image_io.cpp.o"
  "CMakeFiles/crowdmap_io.dir/image_io.cpp.o.d"
  "CMakeFiles/crowdmap_io.dir/serialize.cpp.o"
  "CMakeFiles/crowdmap_io.dir/serialize.cpp.o.d"
  "libcrowdmap_io.a"
  "libcrowdmap_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdmap_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

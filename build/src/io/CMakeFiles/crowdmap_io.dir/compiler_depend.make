# Empty compiler generated dependencies file for crowdmap_io.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcrowdmap_io.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/crowdmap_floorplan.dir/arrange.cpp.o"
  "CMakeFiles/crowdmap_floorplan.dir/arrange.cpp.o.d"
  "CMakeFiles/crowdmap_floorplan.dir/eval.cpp.o"
  "CMakeFiles/crowdmap_floorplan.dir/eval.cpp.o.d"
  "CMakeFiles/crowdmap_floorplan.dir/floorplan.cpp.o"
  "CMakeFiles/crowdmap_floorplan.dir/floorplan.cpp.o.d"
  "libcrowdmap_floorplan.a"
  "libcrowdmap_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdmap_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for crowdmap_floorplan.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcrowdmap_floorplan.a"
)

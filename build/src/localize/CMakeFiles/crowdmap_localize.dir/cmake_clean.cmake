file(REMOVE_RECURSE
  "CMakeFiles/crowdmap_localize.dir/particle_filter.cpp.o"
  "CMakeFiles/crowdmap_localize.dir/particle_filter.cpp.o.d"
  "libcrowdmap_localize.a"
  "libcrowdmap_localize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdmap_localize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

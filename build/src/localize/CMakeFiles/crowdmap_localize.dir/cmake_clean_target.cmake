file(REMOVE_RECURSE
  "libcrowdmap_localize.a"
)

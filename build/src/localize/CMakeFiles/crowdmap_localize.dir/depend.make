# Empty dependencies file for crowdmap_localize.
# This may be replaced when dependencies are built.

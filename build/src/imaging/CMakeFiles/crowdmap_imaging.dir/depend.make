# Empty dependencies file for crowdmap_imaging.
# This may be replaced when dependencies are built.

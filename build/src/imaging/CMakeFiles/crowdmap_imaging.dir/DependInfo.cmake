
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/imaging/descriptors.cpp" "src/imaging/CMakeFiles/crowdmap_imaging.dir/descriptors.cpp.o" "gcc" "src/imaging/CMakeFiles/crowdmap_imaging.dir/descriptors.cpp.o.d"
  "/root/repo/src/imaging/hog.cpp" "src/imaging/CMakeFiles/crowdmap_imaging.dir/hog.cpp.o" "gcc" "src/imaging/CMakeFiles/crowdmap_imaging.dir/hog.cpp.o.d"
  "/root/repo/src/imaging/image.cpp" "src/imaging/CMakeFiles/crowdmap_imaging.dir/image.cpp.o" "gcc" "src/imaging/CMakeFiles/crowdmap_imaging.dir/image.cpp.o.d"
  "/root/repo/src/imaging/integral.cpp" "src/imaging/CMakeFiles/crowdmap_imaging.dir/integral.cpp.o" "gcc" "src/imaging/CMakeFiles/crowdmap_imaging.dir/integral.cpp.o.d"
  "/root/repo/src/imaging/morphology.cpp" "src/imaging/CMakeFiles/crowdmap_imaging.dir/morphology.cpp.o" "gcc" "src/imaging/CMakeFiles/crowdmap_imaging.dir/morphology.cpp.o.d"
  "/root/repo/src/imaging/ncc.cpp" "src/imaging/CMakeFiles/crowdmap_imaging.dir/ncc.cpp.o" "gcc" "src/imaging/CMakeFiles/crowdmap_imaging.dir/ncc.cpp.o.d"
  "/root/repo/src/imaging/otsu.cpp" "src/imaging/CMakeFiles/crowdmap_imaging.dir/otsu.cpp.o" "gcc" "src/imaging/CMakeFiles/crowdmap_imaging.dir/otsu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/crowdmap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/crowdmap_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libcrowdmap_imaging.a"
)

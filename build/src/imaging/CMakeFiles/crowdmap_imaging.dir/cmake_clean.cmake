file(REMOVE_RECURSE
  "CMakeFiles/crowdmap_imaging.dir/descriptors.cpp.o"
  "CMakeFiles/crowdmap_imaging.dir/descriptors.cpp.o.d"
  "CMakeFiles/crowdmap_imaging.dir/hog.cpp.o"
  "CMakeFiles/crowdmap_imaging.dir/hog.cpp.o.d"
  "CMakeFiles/crowdmap_imaging.dir/image.cpp.o"
  "CMakeFiles/crowdmap_imaging.dir/image.cpp.o.d"
  "CMakeFiles/crowdmap_imaging.dir/integral.cpp.o"
  "CMakeFiles/crowdmap_imaging.dir/integral.cpp.o.d"
  "CMakeFiles/crowdmap_imaging.dir/morphology.cpp.o"
  "CMakeFiles/crowdmap_imaging.dir/morphology.cpp.o.d"
  "CMakeFiles/crowdmap_imaging.dir/ncc.cpp.o"
  "CMakeFiles/crowdmap_imaging.dir/ncc.cpp.o.d"
  "CMakeFiles/crowdmap_imaging.dir/otsu.cpp.o"
  "CMakeFiles/crowdmap_imaging.dir/otsu.cpp.o.d"
  "libcrowdmap_imaging.a"
  "libcrowdmap_imaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdmap_imaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/crowdmap_geometry.dir/alpha_shape.cpp.o"
  "CMakeFiles/crowdmap_geometry.dir/alpha_shape.cpp.o.d"
  "CMakeFiles/crowdmap_geometry.dir/convex_hull.cpp.o"
  "CMakeFiles/crowdmap_geometry.dir/convex_hull.cpp.o.d"
  "CMakeFiles/crowdmap_geometry.dir/delaunay.cpp.o"
  "CMakeFiles/crowdmap_geometry.dir/delaunay.cpp.o.d"
  "CMakeFiles/crowdmap_geometry.dir/obb.cpp.o"
  "CMakeFiles/crowdmap_geometry.dir/obb.cpp.o.d"
  "CMakeFiles/crowdmap_geometry.dir/polygon.cpp.o"
  "CMakeFiles/crowdmap_geometry.dir/polygon.cpp.o.d"
  "CMakeFiles/crowdmap_geometry.dir/raster.cpp.o"
  "CMakeFiles/crowdmap_geometry.dir/raster.cpp.o.d"
  "CMakeFiles/crowdmap_geometry.dir/segment.cpp.o"
  "CMakeFiles/crowdmap_geometry.dir/segment.cpp.o.d"
  "libcrowdmap_geometry.a"
  "libcrowdmap_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdmap_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcrowdmap_geometry.a"
)

# Empty compiler generated dependencies file for crowdmap_geometry.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/alpha_shape.cpp" "src/geometry/CMakeFiles/crowdmap_geometry.dir/alpha_shape.cpp.o" "gcc" "src/geometry/CMakeFiles/crowdmap_geometry.dir/alpha_shape.cpp.o.d"
  "/root/repo/src/geometry/convex_hull.cpp" "src/geometry/CMakeFiles/crowdmap_geometry.dir/convex_hull.cpp.o" "gcc" "src/geometry/CMakeFiles/crowdmap_geometry.dir/convex_hull.cpp.o.d"
  "/root/repo/src/geometry/delaunay.cpp" "src/geometry/CMakeFiles/crowdmap_geometry.dir/delaunay.cpp.o" "gcc" "src/geometry/CMakeFiles/crowdmap_geometry.dir/delaunay.cpp.o.d"
  "/root/repo/src/geometry/obb.cpp" "src/geometry/CMakeFiles/crowdmap_geometry.dir/obb.cpp.o" "gcc" "src/geometry/CMakeFiles/crowdmap_geometry.dir/obb.cpp.o.d"
  "/root/repo/src/geometry/polygon.cpp" "src/geometry/CMakeFiles/crowdmap_geometry.dir/polygon.cpp.o" "gcc" "src/geometry/CMakeFiles/crowdmap_geometry.dir/polygon.cpp.o.d"
  "/root/repo/src/geometry/raster.cpp" "src/geometry/CMakeFiles/crowdmap_geometry.dir/raster.cpp.o" "gcc" "src/geometry/CMakeFiles/crowdmap_geometry.dir/raster.cpp.o.d"
  "/root/repo/src/geometry/segment.cpp" "src/geometry/CMakeFiles/crowdmap_geometry.dir/segment.cpp.o" "gcc" "src/geometry/CMakeFiles/crowdmap_geometry.dir/segment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/crowdmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for crowdmap_sensors.
# This may be replaced when dependencies are built.

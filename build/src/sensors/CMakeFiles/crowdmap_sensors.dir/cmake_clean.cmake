file(REMOVE_RECURSE
  "CMakeFiles/crowdmap_sensors.dir/dead_reckoning.cpp.o"
  "CMakeFiles/crowdmap_sensors.dir/dead_reckoning.cpp.o.d"
  "CMakeFiles/crowdmap_sensors.dir/heading.cpp.o"
  "CMakeFiles/crowdmap_sensors.dir/heading.cpp.o.d"
  "CMakeFiles/crowdmap_sensors.dir/step_detector.cpp.o"
  "CMakeFiles/crowdmap_sensors.dir/step_detector.cpp.o.d"
  "libcrowdmap_sensors.a"
  "libcrowdmap_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdmap_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensors/dead_reckoning.cpp" "src/sensors/CMakeFiles/crowdmap_sensors.dir/dead_reckoning.cpp.o" "gcc" "src/sensors/CMakeFiles/crowdmap_sensors.dir/dead_reckoning.cpp.o.d"
  "/root/repo/src/sensors/heading.cpp" "src/sensors/CMakeFiles/crowdmap_sensors.dir/heading.cpp.o" "gcc" "src/sensors/CMakeFiles/crowdmap_sensors.dir/heading.cpp.o.d"
  "/root/repo/src/sensors/step_detector.cpp" "src/sensors/CMakeFiles/crowdmap_sensors.dir/step_detector.cpp.o" "gcc" "src/sensors/CMakeFiles/crowdmap_sensors.dir/step_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/crowdmap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/crowdmap_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libcrowdmap_sensors.a"
)

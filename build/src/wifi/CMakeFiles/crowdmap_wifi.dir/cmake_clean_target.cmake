file(REMOVE_RECURSE
  "libcrowdmap_wifi.a"
)

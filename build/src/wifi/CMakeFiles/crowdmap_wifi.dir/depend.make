# Empty dependencies file for crowdmap_wifi.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wifi/model.cpp" "src/wifi/CMakeFiles/crowdmap_wifi.dir/model.cpp.o" "gcc" "src/wifi/CMakeFiles/crowdmap_wifi.dir/model.cpp.o.d"
  "/root/repo/src/wifi/walkie_markie.cpp" "src/wifi/CMakeFiles/crowdmap_wifi.dir/walkie_markie.cpp.o" "gcc" "src/wifi/CMakeFiles/crowdmap_wifi.dir/walkie_markie.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/crowdmap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/crowdmap_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/crowdmap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trajectory/CMakeFiles/crowdmap_trajectory.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/crowdmap_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/crowdmap_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/imaging/CMakeFiles/crowdmap_imaging.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/crowdmap_wifi.dir/model.cpp.o"
  "CMakeFiles/crowdmap_wifi.dir/model.cpp.o.d"
  "CMakeFiles/crowdmap_wifi.dir/walkie_markie.cpp.o"
  "CMakeFiles/crowdmap_wifi.dir/walkie_markie.cpp.o.d"
  "libcrowdmap_wifi.a"
  "libcrowdmap_wifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdmap_wifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

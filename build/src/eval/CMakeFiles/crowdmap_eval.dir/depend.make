# Empty dependencies file for crowdmap_eval.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcrowdmap_eval.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/crowdmap_eval.dir/datasets.cpp.o"
  "CMakeFiles/crowdmap_eval.dir/datasets.cpp.o.d"
  "CMakeFiles/crowdmap_eval.dir/harness.cpp.o"
  "CMakeFiles/crowdmap_eval.dir/harness.cpp.o.d"
  "libcrowdmap_eval.a"
  "libcrowdmap_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdmap_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

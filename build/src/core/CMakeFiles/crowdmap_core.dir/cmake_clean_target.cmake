file(REMOVE_RECURSE
  "libcrowdmap_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/crowdmap_core.dir/config_overrides.cpp.o"
  "CMakeFiles/crowdmap_core.dir/config_overrides.cpp.o.d"
  "CMakeFiles/crowdmap_core.dir/multifloor.cpp.o"
  "CMakeFiles/crowdmap_core.dir/multifloor.cpp.o.d"
  "CMakeFiles/crowdmap_core.dir/pipeline.cpp.o"
  "CMakeFiles/crowdmap_core.dir/pipeline.cpp.o.d"
  "libcrowdmap_core.a"
  "libcrowdmap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdmap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for crowdmap_core.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig8b_room_aspect_error.
# This may be replaced when dependencies are built.

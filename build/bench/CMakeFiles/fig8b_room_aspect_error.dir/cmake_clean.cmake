file(REMOVE_RECURSE
  "CMakeFiles/fig8b_room_aspect_error.dir/fig8b_room_aspect_error.cpp.o"
  "CMakeFiles/fig8b_room_aspect_error.dir/fig8b_room_aspect_error.cpp.o.d"
  "fig8b_room_aspect_error"
  "fig8b_room_aspect_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_room_aspect_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

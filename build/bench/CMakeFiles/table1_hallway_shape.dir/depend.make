# Empty dependencies file for table1_hallway_shape.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table1_hallway_shape.dir/table1_hallway_shape.cpp.o"
  "CMakeFiles/table1_hallway_shape.dir/table1_hallway_shape.cpp.o.d"
  "table1_hallway_shape"
  "table1_hallway_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_hallway_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_corner_term.dir/ablation_corner_term.cpp.o"
  "CMakeFiles/ablation_corner_term.dir/ablation_corner_term.cpp.o.d"
  "ablation_corner_term"
  "ablation_corner_term.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_corner_term.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_corner_term.
# This may be replaced when dependencies are built.

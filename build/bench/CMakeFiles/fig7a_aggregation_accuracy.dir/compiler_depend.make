# Empty compiler generated dependencies file for fig7a_aggregation_accuracy.
# This may be replaced when dependencies are built.

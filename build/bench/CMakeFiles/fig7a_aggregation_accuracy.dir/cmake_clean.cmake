file(REMOVE_RECURSE
  "CMakeFiles/fig7a_aggregation_accuracy.dir/fig7a_aggregation_accuracy.cpp.o"
  "CMakeFiles/fig7a_aggregation_accuracy.dir/fig7a_aggregation_accuracy.cpp.o.d"
  "fig7a_aggregation_accuracy"
  "fig7a_aggregation_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_aggregation_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

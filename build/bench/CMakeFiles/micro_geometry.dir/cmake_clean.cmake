file(REMOVE_RECURSE
  "CMakeFiles/micro_geometry.dir/micro_geometry.cpp.o"
  "CMakeFiles/micro_geometry.dir/micro_geometry.cpp.o.d"
  "micro_geometry"
  "micro_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

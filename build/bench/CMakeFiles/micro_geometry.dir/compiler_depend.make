# Empty compiler generated dependencies file for micro_geometry.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_hierarchical_match.dir/ablation_hierarchical_match.cpp.o"
  "CMakeFiles/ablation_hierarchical_match.dir/ablation_hierarchical_match.cpp.o.d"
  "ablation_hierarchical_match"
  "ablation_hierarchical_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hierarchical_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

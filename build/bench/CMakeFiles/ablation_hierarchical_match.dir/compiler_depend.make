# Empty compiler generated dependencies file for ablation_hierarchical_match.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig9_sfm_comparison.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig9_sfm_comparison.dir/fig9_sfm_comparison.cpp.o"
  "CMakeFiles/fig9_sfm_comparison.dir/fig9_sfm_comparison.cpp.o.d"
  "fig9_sfm_comparison"
  "fig9_sfm_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_sfm_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig8a_room_area_error.
# This may be replaced when dependencies are built.

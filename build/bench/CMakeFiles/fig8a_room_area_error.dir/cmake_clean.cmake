file(REMOVE_RECURSE
  "CMakeFiles/fig8a_room_area_error.dir/fig8a_room_area_error.cpp.o"
  "CMakeFiles/fig8a_room_area_error.dir/fig8a_room_area_error.cpp.o.d"
  "fig8a_room_area_error"
  "fig8a_room_area_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_room_area_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

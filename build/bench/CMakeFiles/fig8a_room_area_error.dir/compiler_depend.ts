# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig8a_room_area_error.

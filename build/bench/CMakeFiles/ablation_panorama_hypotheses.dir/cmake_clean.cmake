file(REMOVE_RECURSE
  "CMakeFiles/ablation_panorama_hypotheses.dir/ablation_panorama_hypotheses.cpp.o"
  "CMakeFiles/ablation_panorama_hypotheses.dir/ablation_panorama_hypotheses.cpp.o.d"
  "ablation_panorama_hypotheses"
  "ablation_panorama_hypotheses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_panorama_hypotheses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

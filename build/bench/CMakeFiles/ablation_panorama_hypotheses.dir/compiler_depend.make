# Empty compiler generated dependencies file for ablation_panorama_hypotheses.
# This may be replaced when dependencies are built.

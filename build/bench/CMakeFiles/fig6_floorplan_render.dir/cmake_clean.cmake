file(REMOVE_RECURSE
  "CMakeFiles/fig6_floorplan_render.dir/fig6_floorplan_render.cpp.o"
  "CMakeFiles/fig6_floorplan_render.dir/fig6_floorplan_render.cpp.o.d"
  "fig6_floorplan_render"
  "fig6_floorplan_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_floorplan_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig6_floorplan_render.
# This may be replaced when dependencies are built.

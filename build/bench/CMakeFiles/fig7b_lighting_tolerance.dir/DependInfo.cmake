
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7b_lighting_tolerance.cpp" "bench/CMakeFiles/fig7b_lighting_tolerance.dir/fig7b_lighting_tolerance.cpp.o" "gcc" "bench/CMakeFiles/fig7b_lighting_tolerance.dir/fig7b_lighting_tolerance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/crowdmap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/crowdmap_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/crowdmap_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/crowdmap_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/wifi/CMakeFiles/crowdmap_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/crowdmap_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/crowdmap_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/room/CMakeFiles/crowdmap_room.dir/DependInfo.cmake"
  "/root/repo/build/src/trajectory/CMakeFiles/crowdmap_trajectory.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/crowdmap_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/crowdmap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/imaging/CMakeFiles/crowdmap_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/crowdmap_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/crowdmap_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/crowdmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

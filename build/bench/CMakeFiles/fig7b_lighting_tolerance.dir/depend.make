# Empty dependencies file for fig7b_lighting_tolerance.
# This may be replaced when dependencies are built.

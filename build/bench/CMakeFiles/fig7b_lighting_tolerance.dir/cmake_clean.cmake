file(REMOVE_RECURSE
  "CMakeFiles/fig7b_lighting_tolerance.dir/fig7b_lighting_tolerance.cpp.o"
  "CMakeFiles/fig7b_lighting_tolerance.dir/fig7b_lighting_tolerance.cpp.o.d"
  "fig7b_lighting_tolerance"
  "fig7b_lighting_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_lighting_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

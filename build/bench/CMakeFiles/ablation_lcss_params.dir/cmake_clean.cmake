file(REMOVE_RECURSE
  "CMakeFiles/ablation_lcss_params.dir/ablation_lcss_params.cpp.o"
  "CMakeFiles/ablation_lcss_params.dir/ablation_lcss_params.cpp.o.d"
  "ablation_lcss_params"
  "ablation_lcss_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lcss_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

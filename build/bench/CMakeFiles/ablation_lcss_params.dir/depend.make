# Empty dependencies file for ablation_lcss_params.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig8c_room_location_error.dir/fig8c_room_location_error.cpp.o"
  "CMakeFiles/fig8c_room_location_error.dir/fig8c_room_location_error.cpp.o.d"
  "fig8c_room_location_error"
  "fig8c_room_location_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8c_room_location_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

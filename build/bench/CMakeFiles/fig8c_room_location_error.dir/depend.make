# Empty dependencies file for fig8c_room_location_error.
# This may be replaced when dependencies are built.

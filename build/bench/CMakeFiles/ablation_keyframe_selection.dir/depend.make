# Empty dependencies file for ablation_keyframe_selection.
# This may be replaced when dependencies are built.

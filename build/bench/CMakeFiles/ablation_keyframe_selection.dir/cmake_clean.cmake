file(REMOVE_RECURSE
  "CMakeFiles/ablation_keyframe_selection.dir/ablation_keyframe_selection.cpp.o"
  "CMakeFiles/ablation_keyframe_selection.dir/ablation_keyframe_selection.cpp.o.d"
  "ablation_keyframe_selection"
  "ablation_keyframe_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_keyframe_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

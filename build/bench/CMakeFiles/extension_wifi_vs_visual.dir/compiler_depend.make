# Empty compiler generated dependencies file for extension_wifi_vs_visual.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/extension_wifi_vs_visual.dir/extension_wifi_vs_visual.cpp.o"
  "CMakeFiles/extension_wifi_vs_visual.dir/extension_wifi_vs_visual.cpp.o.d"
  "extension_wifi_vs_visual"
  "extension_wifi_vs_visual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_wifi_vs_visual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for micro_vision.
# This may be replaced when dependencies are built.

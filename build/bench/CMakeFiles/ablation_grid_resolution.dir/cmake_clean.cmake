file(REMOVE_RECURSE
  "CMakeFiles/ablation_grid_resolution.dir/ablation_grid_resolution.cpp.o"
  "CMakeFiles/ablation_grid_resolution.dir/ablation_grid_resolution.cpp.o.d"
  "ablation_grid_resolution"
  "ablation_grid_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_grid_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

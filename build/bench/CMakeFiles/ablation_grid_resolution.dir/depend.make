# Empty dependencies file for ablation_grid_resolution.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig7c_matching_latency.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig7c_matching_latency.dir/fig7c_matching_latency.cpp.o"
  "CMakeFiles/fig7c_matching_latency.dir/fig7c_matching_latency.cpp.o.d"
  "fig7c_matching_latency"
  "fig7c_matching_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7c_matching_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

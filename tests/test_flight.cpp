// Flight-recorder suite: ring semantics (wraparound, drop accounting,
// disarmed no-ops), the versioned binary codec and its error codes, the
// deterministic-dump normalization contract (byte-identical at any thread
// count, same as serialized FloorPlans), anomaly dump budgeting, the chaos
// harness firing dump-on-anomaly, and the recorder never changing plan
// bytes.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/crowdmap.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "floorplan/serialize.hpp"
#include "obs/flight.hpp"
#include "sim/buildings.hpp"
#include "sim/campaign.hpp"

namespace ap = crowdmap::api::v1;
namespace cc = crowdmap::common;
namespace co = crowdmap::core;
namespace cs = crowdmap::sim;
namespace obs = crowdmap::obs;

namespace {

using obs::FlightEventKind;

// ---------------------------------------------------------------- rings ---

TEST(Flight, RecordsEventsWithPayloads) {
  obs::FlightRecorder flight;
  ASSERT_TRUE(flight.armed());
  flight.advance_tick(3);
  flight.record(FlightEventKind::kCacheHit, 7, 0xAAAA, 0xBBBB);
  const obs::FlightDump dump = flight.dump();
  ASSERT_EQ(dump.events.size(), 1u);
  EXPECT_EQ(dump.events[0].kind, FlightEventKind::kCacheHit);
  EXPECT_EQ(dump.events[0].detail, 7u);
  EXPECT_EQ(dump.events[0].tick, 3u);
  EXPECT_EQ(dump.events[0].a, 0xAAAAu);
  EXPECT_EQ(dump.events[0].b, 0xBBBBu);
  EXPECT_FALSE(dump.deterministic);
  EXPECT_EQ(dump.dropped, 0u);
}

TEST(Flight, DisarmedRecordsNothing) {
  obs::FlightRecorder flight;
  flight.disarm();
  for (int i = 0; i < 100; ++i) {
    flight.record(FlightEventKind::kCacheMiss, 0, i);
  }
  EXPECT_TRUE(flight.dump().events.empty());
  flight.arm();
  flight.record(FlightEventKind::kCacheMiss, 0, 1);
  EXPECT_EQ(flight.dump().events.size(), 1u);
}

TEST(Flight, RingWraparoundKeepsNewestAndCountsDropped) {
  obs::FlightOptions options;
  options.ring_capacity = 8;
  obs::FlightRecorder flight(options);
  for (std::uint64_t i = 0; i < 20; ++i) {
    flight.record(FlightEventKind::kCacheHit, 0, i);
  }
  const obs::FlightDump dump = flight.dump();
  ASSERT_EQ(dump.events.size(), 8u);
  EXPECT_EQ(dump.dropped, 12u);
  EXPECT_EQ(flight.dropped(), 12u);
  // The survivors are the newest 12..19, in write order.
  for (std::size_t i = 0; i < dump.events.size(); ++i) {
    EXPECT_EQ(dump.events[i].a, 12 + i);
  }
}

TEST(Flight, InternedNamesLandInTheDumpStringTable) {
  obs::FlightRecorder flight;
  flight.record_named(FlightEventKind::kDegradation, 0, "panorama",
                      flight.intern("skipped"));
  const obs::FlightDump dump = flight.dump();
  ASSERT_EQ(dump.events.size(), 1u);
  EXPECT_EQ(dump.strings.count(dump.events[0].a), 1u);
  EXPECT_EQ(dump.strings.at(dump.events[0].a), "panorama");
  EXPECT_EQ(dump.strings.at(dump.events[0].b), "skipped");
  // Interning is stable: the same name hashes identically every time.
  EXPECT_EQ(flight.intern("panorama"), dump.events[0].a);
}

// ---------------------------------------------------------------- codec ---

TEST(Flight, CodecRoundTripsExactly) {
  obs::FlightRecorder flight;
  flight.advance_tick();
  flight.record_named(FlightEventKind::kSpanBegin, 0, "aggregate");
  flight.record(FlightEventKind::kCacheMiss, 2, 123, 456);
  flight.record_named(FlightEventKind::kSloBreach, 1, "lat_p99_ms", 750);
  const obs::FlightDump dump = flight.dump();

  const auto bytes = obs::encode_flight_dump(dump);
  const auto decoded = obs::decode_flight_dump(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().events, dump.events);
  EXPECT_EQ(decoded.value().strings, dump.strings);
  EXPECT_EQ(decoded.value().dropped, dump.dropped);
  EXPECT_EQ(decoded.value().deterministic, dump.deterministic);
  // Re-encoding the decoded dump is byte-identical.
  EXPECT_EQ(obs::encode_flight_dump(decoded.value()), bytes);
}

TEST(Flight, CodecRejectsJunkWithTypedErrors) {
  const auto magic = obs::decode_flight_dump(
      std::vector<std::uint8_t>{'n', 'o', 'p', 'e', 0, 0, 0, 0});
  ASSERT_FALSE(magic.ok());
  EXPECT_EQ(magic.error().code, "flight.magic");

  auto bytes = obs::encode_flight_dump(obs::FlightDump{});
  bytes[4] = 99;  // version field
  const auto version = obs::decode_flight_dump(bytes);
  ASSERT_FALSE(version.ok());
  EXPECT_EQ(version.error().code, "flight.version");

  obs::FlightRecorder flight;
  flight.record_named(FlightEventKind::kFaultFired, 3, "decode.fail");
  const auto full = obs::encode_flight_dump(flight.dump());
  for (const std::size_t cut :
       {std::size_t{5}, std::size_t{20}, full.size() - 1}) {
    const auto truncated =
        obs::decode_flight_dump(full.data(), std::min(cut, full.size()));
    ASSERT_FALSE(truncated.ok()) << "cut at " << cut;
    EXPECT_EQ(truncated.error().code, "flight.truncated");
  }
}

TEST(Flight, JsonRenderingIsStable) {
  obs::FlightRecorder flight;
  flight.record_named(FlightEventKind::kDegradation, 0, "rooms",
                      flight.intern("fallback"));
  const std::string json = obs::flight_dump_to_json(flight.dump());
  EXPECT_NE(json.find("\"deterministic\": false"), std::string::npos);
  EXPECT_NE(json.find("degradation"), std::string::npos);
  EXPECT_NE(json.find("rooms"), std::string::npos);
}

// ------------------------------------------------- deterministic dumps ---

TEST(Flight, DeterministicDumpFiltersRacyKindsAndNormalizes) {
  obs::FlightRecorder flight;
  flight.advance_tick();
  flight.record(FlightEventKind::kQueueDepth, 0, 9);
  flight.record(FlightEventKind::kCacheEvict, 1, 5, 6);
  flight.record(FlightEventKind::kCacheHit, 1, 5, 6);
  flight.record_named(FlightEventKind::kFaultFired, 2, "decode.fail");

  const obs::FlightDump dump = flight.deterministic_dump();
  EXPECT_TRUE(dump.deterministic);
  ASSERT_EQ(dump.events.size(), 2u);
  for (const auto& event : dump.events) {
    EXPECT_NE(event.kind, FlightEventKind::kQueueDepth);
    EXPECT_NE(event.kind, FlightEventKind::kCacheEvict);
    EXPECT_EQ(event.thread, 0u);
    EXPECT_EQ(event.steady_nanos, 0u);
  }
  // Sorted by content: cache_hit (kind 3) before fault_fired (kind 6).
  EXPECT_EQ(dump.events[0].kind, FlightEventKind::kCacheHit);
  EXPECT_EQ(dump.events[1].kind, FlightEventKind::kFaultFired);
}

// ---------------------------------------------------------- anomaly dumps ---

TEST(Flight, AnomalyDumpsAreBudgetedAndDumpNowIsNot) {
  obs::FlightOptions options;
  options.dump_on_anomaly = true;
  options.max_anomaly_dumps = 2;
  obs::FlightRecorder flight(options);
  flight.set_dump_on_anomaly(true);
  int dumps = 0;
  std::vector<std::string> reasons;
  flight.set_dump_sink([&](const obs::FlightDump&, std::string_view reason) {
    ++dumps;
    reasons.emplace_back(reason);
  });

  for (int i = 0; i < 5; ++i) {
    flight.record_named(FlightEventKind::kFaultFired, 0, "decode.fail");
  }
  EXPECT_EQ(dumps, 2);
  EXPECT_EQ(flight.anomaly_dumps(), 2u);
  ASSERT_EQ(reasons.size(), 2u);
  EXPECT_EQ(reasons[0], "anomaly:fault_fired");

  // Non-anomalous kinds never trigger a dump.
  flight.record(FlightEventKind::kCacheHit, 0, 1);
  EXPECT_EQ(dumps, 2);

  // dump_now() bypasses the budget.
  flight.dump_now("operator");
  EXPECT_EQ(dumps, 3);
  EXPECT_EQ(reasons.back(), "operator");
  EXPECT_EQ(flight.anomaly_dumps(), 2u);
}

// --------------------------------------------------- pipeline contracts ---

/// Seeded campaign ingested into a bare pipeline; returns the pipeline after
/// run() so tests can inspect both the plan bytes and the flight recorder.
struct PipelineRun {
  crowdmap::io::Bytes plan_bytes;
  obs::FlightDump deterministic_dump;
  std::uint64_t dropped = 0;
};

PipelineRun seeded_run(std::size_t threads, bool flight_enabled,
                       cc::FaultPlan faults = {}) {
  cc::Rng rng(777);
  const auto spec = cs::random_building(2, rng);
  cs::CampaignOptions options;
  options.users = 2;
  options.room_videos_per_room = 1;
  options.hallway_walks = 4;
  options.junk_fraction = 0.0;
  options.sim.fps = 3.0;

  co::PipelineConfig config = co::PipelineConfig::fast_profile();
  config.parallel.threads = threads;
  config.flight.enabled = flight_enabled;
  config.flight.ring_capacity = 1u << 16;  // no wraparound in this workload
  config.faults = std::move(faults);
  // The bare stage executor is the unit under test here.
  // crowdmap-lint: allow(pipeline-construction)
  co::CrowdMapPipeline pipeline(config);
  cs::generate_campaign_streaming(
      spec, options, 777,
      [&pipeline](cs::SensorRichVideo&& video) { pipeline.ingest(video); });

  PipelineRun out;
  out.plan_bytes = crowdmap::floorplan::encode_floorplan(pipeline.run().plan);
  if (obs::FlightRecorder* flight = pipeline.flight_recorder()) {
    out.deterministic_dump = flight->deterministic_dump();
    out.dropped = flight->dropped();
  }
  return out;
}

TEST(Flight, RecorderDoesNotChangeFloorPlanBytes) {
  const auto with_recorder = seeded_run(2, true);
  const auto without_recorder = seeded_run(2, false);
  ASSERT_FALSE(with_recorder.plan_bytes.empty());
  EXPECT_EQ(with_recorder.plan_bytes, without_recorder.plan_bytes);
  // The enabled run actually recorded something.
  EXPECT_FALSE(with_recorder.deterministic_dump.events.empty());
  EXPECT_TRUE(without_recorder.deterministic_dump.events.empty());
}

TEST(Flight, DeterministicDumpIsByteIdenticalAcrossThreadCounts) {
  const auto serial = seeded_run(1, true);
  const auto parallel = seeded_run(4, true);
  ASSERT_EQ(serial.dropped, 0u);
  ASSERT_EQ(parallel.dropped, 0u);
  EXPECT_EQ(serial.plan_bytes, parallel.plan_bytes);
  EXPECT_EQ(obs::encode_flight_dump(serial.deterministic_dump),
            obs::encode_flight_dump(parallel.deterministic_dump));
}

TEST(Flight, ChaosFaultFiresAnomalyDump) {
  cc::FaultPlan plan;
  plan.seed = 99;
  plan.settings.push_back(
      cc::FaultSetting{cc::faults::kStagePanoramaFail, 1.0,
                       cc::FaultSetting::kNoBudget});

  cc::Rng rng(777);
  const auto spec = cs::random_building(2, rng);
  cs::CampaignOptions options;
  options.users = 2;
  options.room_videos_per_room = 1;
  options.hallway_walks = 4;
  options.junk_fraction = 0.0;
  options.sim.fps = 3.0;

  co::PipelineConfig config = co::PipelineConfig::fast_profile();
  config.parallel.threads = 2;
  config.flight.enabled = true;
  config.flight.dump_on_anomaly = true;
  config.faults = plan;
  // crowdmap-lint: allow(pipeline-construction)
  co::CrowdMapPipeline pipeline(config);

  int dumps = 0;
  std::string first_reason;
  ASSERT_NE(pipeline.flight_recorder(), nullptr);
  pipeline.flight_recorder()->set_dump_sink(
      [&](const obs::FlightDump& dump, std::string_view reason) {
        if (dumps++ == 0) first_reason = std::string(reason);
        EXPECT_FALSE(dump.events.empty());
      });

  cs::generate_campaign_streaming(
      spec, options, 777,
      [&pipeline](cs::SensorRichVideo&& video) { pipeline.ingest(video); });
  const auto result = pipeline.run();
  ASSERT_FALSE(crowdmap::floorplan::encode_floorplan(result.plan).empty());

  EXPECT_GE(pipeline.flight_recorder()->anomaly_dumps(), 1u);
  EXPECT_GE(dumps, 1);
  EXPECT_EQ(first_reason.rfind("anomaly:", 0), 0u) << first_reason;

  // The fired fault is in the dump, with its point name interned.
  const obs::FlightDump dump = pipeline.flight_recorder()->dump();
  bool saw_fault = false;
  for (const auto& event : dump.events) {
    if (event.kind == FlightEventKind::kFaultFired) saw_fault = true;
  }
  EXPECT_TRUE(saw_fault);
}

// ----------------------------------------------------------- api surface ---

TEST(Flight, ApiClientExposesDumps) {
  ap::ClientOptions enabled;
  enabled.config = co::PipelineConfig::fast_profile();
  enabled.config.flight.enabled = true;
  ap::Client client(std::move(enabled));
  const auto dump = client.flight_dump();
  ASSERT_TRUE(dump.has_value());
  const auto deterministic = client.flight_dump(/*deterministic=*/true);
  ASSERT_TRUE(deterministic.has_value());
  EXPECT_TRUE(deterministic->deterministic);

  ap::ClientOptions disabled;
  disabled.config = co::PipelineConfig::fast_profile();
  disabled.config.flight.enabled = false;
  ap::Client dark(std::move(disabled));
  EXPECT_FALSE(dark.flight_dump().has_value());
}

}  // namespace

// Tests for the parallel execution layer: parallel_for semantics (coverage,
// nesting, exceptions), the ThreadPool observer reentrancy fix, the bounded
// S2 memo cache, and the headline guarantee — the pipeline produces
// bit-identical results at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/mathutil.hpp"
#include "common/memo_cache.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/pipeline.hpp"
#include "room/layout.hpp"
#include "sim/buildings.hpp"
#include "sim/campaign.hpp"
#include "sim/user_sim.hpp"
#include "trajectory/aggregate.hpp"
#include "trajectory/matching.hpp"
#include "vision/panorama.hpp"

namespace cc = crowdmap::common;
namespace co = crowdmap::core;
namespace cr = crowdmap::room;
namespace cs = crowdmap::sim;
namespace ct = crowdmap::trajectory;

// ------------------------------------------------------------ parallel_for ---

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  cc::ThreadPool pool(3);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  cc::parallel_for(&pool, n, [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelFor, NullPoolRunsSerially) {
  std::size_t sum = 0;
  cc::parallel_for(nullptr, 100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(ParallelFor, GrainCoversTail) {
  cc::ThreadPool pool(2);
  const std::size_t n = 1003;  // not a multiple of the grain
  std::vector<std::atomic<int>> visits(n);
  cc::parallel_for(
      &pool, n,
      [&](std::size_t i) { visits[i].fetch_add(1, std::memory_order_relaxed); },
      64);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsANoop) {
  cc::ThreadPool pool(2);
  cc::parallel_for(&pool, 0, [&](std::size_t) { FAIL(); });
}

TEST(ParallelFor, NestingOnASharedPoolCompletes) {
  // Every outer iteration runs its own inner parallel_for on the SAME pool.
  // With future-joining fan-out this deadlocks once all workers block in
  // outer iterations; caller participation guarantees progress.
  cc::ThreadPool pool(3);
  const std::size_t outer = 8;
  const std::size_t inner = 200;
  std::atomic<std::size_t> total{0};
  cc::parallel_for(&pool, outer, [&](std::size_t) {
    cc::parallel_for(&pool, inner, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), outer * inner);
}

TEST(ParallelFor, FirstExceptionPropagates) {
  cc::ThreadPool pool(2);
  EXPECT_THROW(
      cc::parallel_for(&pool, 1000,
                       [&](std::size_t i) {
                         if (i == 137) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool survives and stays usable.
  auto future = pool.submit([] { return 42; });
  EXPECT_EQ(future.get(), 42);
}

// --------------------------------------------------- ThreadPool observers ---

TEST(ThreadPoolObservers, QueueObserverMayCallBackIntoThePool) {
  // The observer fires outside the pool lock, so calling pending() (which
  // takes that lock) from inside it must not deadlock — this hung before the
  // observers were moved out of the critical section.
  cc::ThreadPool pool(2);
  std::atomic<std::size_t> observed{0};
  pool.set_queue_observer([&pool, &observed](std::size_t) {
    observed.fetch_add(pool.pending() + 1, std::memory_order_relaxed);
  });
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([] {}));
  }
  for (auto& f : futures) f.get();
  pool.wait_idle();
  EXPECT_GE(observed.load(), 64u);
}

TEST(ThreadPoolObservers, TaskObserverSeesEveryTask) {
  cc::ThreadPool pool(2);
  std::atomic<int> tasks_observed{0};
  pool.set_task_observer([&](double seconds) {
    EXPECT_GE(seconds, 0.0);
    tasks_observed.fetch_add(1, std::memory_order_relaxed);
  });
  for (int i = 0; i < 20; ++i) (void)pool.submit([] {});
  pool.wait_idle();
  EXPECT_EQ(tasks_observed.load(), 20);
}

// ------------------------------------------------------- BoundedMemoCache ---

TEST(BoundedMemoCache, HitAndMissCounting) {
  cc::BoundedMemoCache cache(64, 4);
  EXPECT_FALSE(cache.lookup(7).has_value());
  cache.insert(7, 1.5);
  const auto hit = cache.lookup(7);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 1.5);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(BoundedMemoCache, GetOrComputeComputesOnce) {
  cc::BoundedMemoCache cache(64);
  int computed = 0;
  const auto compute = [&] {
    ++computed;
    return 3.25;
  };
  EXPECT_EQ(cache.get_or_compute(42, compute), 3.25);
  EXPECT_EQ(cache.get_or_compute(42, compute), 3.25);
  EXPECT_EQ(computed, 1);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(BoundedMemoCache, EvictionBoundsTheFootprint) {
  cc::BoundedMemoCache cache(32, 4);
  for (std::uint64_t k = 0; k < 10000; ++k) cache.insert(k, double(k));
  // FIFO eviction keeps each shard at its slice of the capacity.
  EXPECT_LE(cache.size(), cache.capacity() + 4);  // ceil rounding per shard
  // Recently inserted keys are still present.
  EXPECT_TRUE(cache.lookup(9999).has_value());
}

TEST(BoundedMemoCache, ConcurrentMixedTraffic) {
  cc::BoundedMemoCache cache(256, 8);
  cc::ThreadPool pool(3);
  cc::parallel_for(&pool, 4000, [&](std::size_t i) {
    const std::uint64_t key = i % 97;
    const double value = cache.get_or_compute(key, [&] { return double(key) * 2; });
    EXPECT_EQ(value, double(key) * 2);
  });
  EXPECT_EQ(cache.hits() + cache.misses(), 4000u);
  EXPECT_LE(cache.size(), cache.capacity() + 8);
}

// -------------------------------------------------------- S2 cache scores ---

namespace {

std::vector<ct::Trajectory> campaign_trajectories(int rooms, std::uint64_t seed) {
  cc::Rng rng(seed);
  const auto spec = cs::random_building(rooms, rng);
  cs::CampaignOptions options;
  options.users = 3;
  options.room_videos_per_room = 1;
  options.hallway_walks = 8;
  options.junk_fraction = 0.0;
  options.night_fraction = 0.2;
  options.sim.fps = 3.0;
  std::vector<ct::Trajectory> out;
  cs::generate_campaign_streaming(spec, options, seed,
                                  [&out](cs::SensorRichVideo&& video) {
                                    out.push_back(ct::extract_trajectory(video));
                                  });
  return out;
}

}  // namespace

TEST(S2Cache, CachedScoresAreBitIdentical) {
  const auto trajectories = campaign_trajectories(3, 611);
  ASSERT_TRUE(ct::s2_cache_usable(trajectories));
  const ct::MatchConfig config;
  cc::BoundedMemoCache cache(1 << 12);

  bool compared_any = false;
  for (std::size_t a = 0; a < trajectories.size(); ++a) {
    for (std::size_t b = a + 1; b < trajectories.size(); ++b) {
      const auto plain =
          ct::find_anchors(trajectories[a], trajectories[b], config, nullptr);
      const auto cached =
          ct::find_anchors(trajectories[a], trajectories[b], config, &cache);
      ASSERT_EQ(plain.size(), cached.size());
      for (std::size_t k = 0; k < plain.size(); ++k) {
        EXPECT_EQ(plain[k].kf_a, cached[k].kf_a);
        EXPECT_EQ(plain[k].kf_b, cached[k].kf_b);
        EXPECT_EQ(plain[k].s1, cached[k].s1);
        EXPECT_EQ(plain[k].s2, cached[k].s2);  // bit-equal, not approximately
        compared_any = true;
      }
    }
  }
  EXPECT_TRUE(compared_any);
  EXPECT_GT(cache.misses(), 0u);

  // A second pass over the same pairs is served from the cache.
  const auto misses_before = cache.misses();
  for (std::size_t a = 0; a < trajectories.size(); ++a) {
    for (std::size_t b = a + 1; b < trajectories.size(); ++b) {
      (void)ct::find_anchors(trajectories[a], trajectories[b], config, &cache);
    }
  }
  EXPECT_EQ(cache.misses(), misses_before);
  EXPECT_GT(cache.hits(), 0u);
}

TEST(S2Cache, DuplicateVideoIdsDisableTheCache) {
  auto trajectories = campaign_trajectories(2, 613);
  ASSERT_GE(trajectories.size(), 2u);
  trajectories[1].video_id = trajectories[0].video_id;
  EXPECT_FALSE(ct::s2_cache_usable(trajectories));
}

TEST(S2Cache, KeyIsCollisionFreeForSmallIdentities) {
  // Real campaigns use tiny video ids and frame indices; the key derivation
  // must not alias distinct identities in that regime. (A raw hash_combine
  // of the small integers did: its (a<<6) term steps by 64 per video_id,
  // which a ~64-frame shift can cancel — e.g. (v12, f79) vs (v13, f14).)
  ct::Trajectory a;
  ct::Trajectory b;
  a.keyframes.resize(1);
  b.keyframes.resize(1);
  const ct::MatchConfig config;
  std::unordered_set<std::uint64_t> keys;
  constexpr int kVideos = 16;
  constexpr std::size_t kFrames = 80;
  keys.reserve(kVideos * kFrames * kVideos * kFrames);
  for (int va = 0; va < kVideos; ++va) {
    a.video_id = va;
    for (std::size_t fa = 0; fa < kFrames; ++fa) {
      a.keyframes[0].frame_index = fa;
      for (int vb = 0; vb < kVideos; ++vb) {
        b.video_id = vb;
        for (std::size_t fb = 0; fb < kFrames; ++fb) {
          b.keyframes[0].frame_index = fb;
          keys.insert(ct::s2_cache_key(a, 0, b, 0, config));
        }
      }
    }
  }
  EXPECT_EQ(keys.size(),
            static_cast<std::size_t>(kVideos) * kFrames * kVideos * kFrames);
}

// -------------------------------------------------- layout shard determinism ---

TEST(LayoutSharding, PoolDoesNotChangeTheLayout) {
  // Render a small room panorama and run the sharded sweep serially and on a
  // pool: the winning layout must match bit for bit.
  cs::FloorPlanSpec spec;
  spec.name = "single";
  spec.feature_density = 0.8;
  cs::RoomSpec room;
  room.id = 1;
  room.center = {0, 0};
  room.width = 5.0;
  room.depth = 4.0;
  room.door = {0, -2.0};
  spec.rooms.push_back(room);
  spec.hallways.push_back(cs::corridor({-8, -3.2}, {8, -3.2}, 2.4));
  const auto scene = cs::Scene::from_spec(spec, 617);

  cs::CameraIntrinsics intr;
  cc::Rng rng(617);
  std::vector<crowdmap::vision::PanoFrame> frames;
  for (int i = 0; i < 16; ++i) {
    const double heading = i * cc::kTwoPi / 16;
    crowdmap::vision::PanoFrame frame;
    frame.image =
        scene.render({{0, 0}, heading}, intr, cs::Lighting::day(), rng).to_gray();
    frame.heading = heading;
    frames.push_back(std::move(frame));
  }
  crowdmap::vision::StitchParams sp;
  sp.output_width = 512;
  sp.output_height = 128;
  const auto pano = crowdmap::vision::stitch_panorama(std::move(frames), sp);

  cr::LayoutConfig config;
  config.hypotheses = 3000;
  const double frame_focal = intr.width / (2.0 * std::tan(sp.fov / 2.0));
  config.focal_px = frame_focal * sp.output_height / intr.height;

  const auto serial = cr::estimate_layout(pano.image, config, nullptr);
  cc::ThreadPool pool(3);
  const auto pooled = cr::estimate_layout(pano.image, config, &pool);
  // The shard count only partitions the scoring work; one shard must pick
  // the same winner as the default sixteen.
  cr::LayoutConfig one_shard = config;
  one_shard.scoring_shards = 1;
  const auto unsharded = cr::estimate_layout(pano.image, one_shard, nullptr);
  ASSERT_EQ(serial.has_value(), pooled.has_value());
  ASSERT_TRUE(serial.has_value());
  ASSERT_TRUE(unsharded.has_value());
  for (const auto* other : {&*pooled, &*unsharded}) {
    EXPECT_EQ(serial->width, other->width);
    EXPECT_EQ(serial->depth, other->depth);
    EXPECT_EQ(serial->orientation, other->orientation);
    EXPECT_EQ(serial->camera_offset.x, other->camera_offset.x);
    EXPECT_EQ(serial->camera_offset.y, other->camera_offset.y);
    EXPECT_EQ(serial->score, other->score);
  }
}

// ----------------------------------------------------- pipeline determinism ---

namespace {

co::PipelineResult run_small_campaign(std::size_t threads) {
  cc::Rng rng(223);
  const auto spec = cs::random_building(4, rng);
  cs::CampaignOptions options;
  options.users = 3;
  options.room_videos_per_room = 1;
  options.hallway_walks = 8;
  options.junk_fraction = 0.0;
  options.night_fraction = 0.2;
  options.sim.fps = 3.0;

  co::PipelineConfig config = co::PipelineConfig::fast_profile();
  config.parallel.threads = threads;
  // crowdmap-lint: allow(pipeline-construction)
  co::CrowdMapPipeline pipeline(config);
  cs::generate_campaign_streaming(
      spec, options, 223,
      [&pipeline](cs::SensorRichVideo&& video) { pipeline.ingest(video); });
  return pipeline.run();
}

}  // namespace

TEST(PipelineDeterminism, FourThreadsMatchSerialBitForBit) {
  const auto serial = run_small_campaign(1);
  const auto parallel = run_small_campaign(4);

  // Aggregation: identical placement and identical pose graph.
  ASSERT_EQ(serial.aggregation.global_pose.size(),
            parallel.aggregation.global_pose.size());
  for (std::size_t i = 0; i < serial.aggregation.global_pose.size(); ++i) {
    const auto& a = serial.aggregation.global_pose[i];
    const auto& b = parallel.aggregation.global_pose[i];
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a) continue;
    EXPECT_EQ(a->position.x, b->position.x);
    EXPECT_EQ(a->position.y, b->position.y);
    EXPECT_EQ(a->theta, b->theta);
  }
  ASSERT_EQ(serial.aggregation.edges.size(), parallel.aggregation.edges.size());
  for (std::size_t e = 0; e < serial.aggregation.edges.size(); ++e) {
    const auto& a = serial.aggregation.edges[e];
    const auto& b = parallel.aggregation.edges[e];
    EXPECT_EQ(a.a, b.a);
    EXPECT_EQ(a.b, b.b);
    EXPECT_EQ(a.s3, b.s3);
    EXPECT_EQ(a.b_to_a.position.x, b.b_to_a.position.x);
    EXPECT_EQ(a.b_to_a.position.y, b.b_to_a.position.y);
    EXPECT_EQ(a.b_to_a.theta, b.b_to_a.theta);
  }

  // Rooms: same rooms, same layouts, bit for bit.
  ASSERT_EQ(serial.rooms.size(), parallel.rooms.size());
  for (std::size_t r = 0; r < serial.rooms.size(); ++r) {
    const auto& a = serial.rooms[r];
    const auto& b = parallel.rooms[r];
    EXPECT_EQ(a.trajectory_index, b.trajectory_index);
    EXPECT_EQ(a.layout.width, b.layout.width);
    EXPECT_EQ(a.layout.depth, b.layout.depth);
    EXPECT_EQ(a.layout.orientation, b.layout.orientation);
    EXPECT_EQ(a.layout.score, b.layout.score);
    EXPECT_EQ(a.center_global.x, b.center_global.x);
    EXPECT_EQ(a.center_global.y, b.center_global.y);
  }

  // Final plan: identical placement after force-directed arrangement.
  ASSERT_EQ(serial.plan.rooms.size(), parallel.plan.rooms.size());
  for (std::size_t r = 0; r < serial.plan.rooms.size(); ++r) {
    const auto& a = serial.plan.rooms[r];
    const auto& b = parallel.plan.rooms[r];
    EXPECT_EQ(a.center.x, b.center.x);
    EXPECT_EQ(a.center.y, b.center.y);
    EXPECT_EQ(a.width, b.width);
    EXPECT_EQ(a.depth, b.depth);
    EXPECT_EQ(a.orientation, b.orientation);
  }

  // Occupancy and skeleton rasters derive from the identical poses.
  EXPECT_EQ(serial.skeleton.raster.count_set(),
            parallel.skeleton.raster.count_set());

  // The serial run had no pool but the same S2 cache semantics: both runs see
  // only misses on their first (and only) aggregation round.
  EXPECT_EQ(serial.diagnostics.s2_cache_hits + serial.diagnostics.s2_cache_misses,
            parallel.diagnostics.s2_cache_hits +
                parallel.diagnostics.s2_cache_misses);
}

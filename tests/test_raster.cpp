// Tests for BoolRaster and the overlap (Table I) metrics.
#include <gtest/gtest.h>

#include "geometry/raster.hpp"

namespace cg = crowdmap::geometry;
using cg::Vec2;

namespace {

cg::BoolRaster make_raster() {
  return cg::BoolRaster(cg::Aabb{{0, 0}, {10, 10}}, 1.0);
}

}  // namespace

TEST(BoolRaster, DimensionsFromExtent) {
  const auto r = make_raster();
  EXPECT_EQ(r.width(), 10);
  EXPECT_EQ(r.height(), 10);
  EXPECT_EQ(r.count_set(), 0u);
  EXPECT_THROW(cg::BoolRaster(cg::Aabb{{0, 0}, {1, 1}}, 0.0),
               std::invalid_argument);
}

TEST(BoolRaster, SetGetBounds) {
  auto r = make_raster();
  r.set(3, 4, true);
  EXPECT_TRUE(r.at(3, 4));
  EXPECT_FALSE(r.at(4, 3));
  r.set(-1, 0, true);   // silently ignored
  r.set(100, 0, true);  // silently ignored
  EXPECT_EQ(r.count_set(), 1u);
  EXPECT_THROW((void)r.at(-1, 0), std::out_of_range);
}

TEST(BoolRaster, CellCenterAndCellOfRoundTrip) {
  const auto r = make_raster();
  const Vec2 c = r.cell_center(3, 7);
  EXPECT_NEAR(c.x, 3.5, 1e-12);
  EXPECT_NEAR(c.y, 7.5, 1e-12);
  const auto [col, row] = r.cell_of(c);
  EXPECT_EQ(col, 3);
  EXPECT_EQ(row, 7);
}

TEST(BoolRaster, FillPolygonCoversArea) {
  auto r = make_raster();
  r.fill_polygon(cg::Polygon::rectangle({5, 5}, 4, 4));
  // 4x4 meters at 1 m cells -> ~16 cells.
  EXPECT_NEAR(static_cast<double>(r.count_set()), 16.0, 4.0);
  EXPECT_NEAR(r.set_area(), 16.0, 4.0);
}

TEST(BoolRaster, DrawSegmentMarksLine) {
  auto r = make_raster();
  r.draw_segment({{0.5, 5.5}, {9.5, 5.5}}, 0.1);
  EXPECT_GE(r.count_set(), 9u);
  for (int c = 1; c < 9; ++c) EXPECT_TRUE(r.at(c, 5));
}

TEST(BoolRaster, DrawSegmentThickness) {
  auto thin = make_raster();
  auto thick = make_raster();
  thin.draw_segment({{1, 5}, {9, 5}}, 0.1);
  thick.draw_segment({{1, 5}, {9, 5}}, 3.0);
  EXPECT_GT(thick.count_set(), thin.count_set());
}

TEST(BoolRaster, ShiftedMovesCells) {
  auto r = make_raster();
  r.set(2, 2, true);
  const auto s = r.shifted(3, -1);
  EXPECT_TRUE(s.at(5, 1));
  EXPECT_EQ(s.count_set(), 1u);
  // Shift off the edge drops the cell.
  EXPECT_EQ(r.shifted(100, 0).count_set(), 0u);
}

TEST(OverlapMetrics, PerfectMatch) {
  auto a = make_raster();
  a.fill_polygon(cg::Polygon::rectangle({5, 5}, 6, 2));
  const auto m = cg::overlap_metrics(a, a);
  EXPECT_NEAR(m.precision, 1.0, 1e-12);
  EXPECT_NEAR(m.recall, 1.0, 1e-12);
  EXPECT_NEAR(m.f_measure, 1.0, 1e-12);
}

TEST(OverlapMetrics, Disjoint) {
  auto a = make_raster();
  auto b = make_raster();
  a.set(1, 1, true);
  b.set(8, 8, true);
  const auto m = cg::overlap_metrics(a, b);
  EXPECT_EQ(m.precision, 0.0);
  EXPECT_EQ(m.recall, 0.0);
  EXPECT_EQ(m.f_measure, 0.0);
}

TEST(OverlapMetrics, PrecisionRecallAsymmetry) {
  auto generated = make_raster();
  auto truth = make_raster();
  // Generated covers twice the truth: perfect recall, half precision.
  generated.fill_polygon(cg::Polygon::rectangle({5, 5}, 8, 4));
  truth.fill_polygon(cg::Polygon::rectangle({5, 5}, 8, 2));
  const auto m = cg::overlap_metrics(generated, truth);
  EXPECT_NEAR(m.recall, 1.0, 0.05);
  EXPECT_NEAR(m.precision, 0.5, 0.1);
}

TEST(OverlapMetrics, SizeMismatchThrows) {
  const auto a = make_raster();
  const cg::BoolRaster b(cg::Aabb{{0, 0}, {5, 5}}, 1.0);
  EXPECT_THROW((void)cg::overlap_metrics(a, b), std::invalid_argument);
}

TEST(BestAlignedOverlap, RecoversShift) {
  auto truth = make_raster();
  truth.fill_polygon(cg::Polygon::rectangle({5, 5}, 6, 2));
  // Generated is the truth shifted by (2, 1) cells.
  const auto generated = truth.shifted(2, 1);
  const auto naive = cg::overlap_metrics(generated, truth);
  const auto aligned = cg::best_aligned_overlap(generated, truth, 4);
  EXPECT_GT(aligned.f_measure, naive.f_measure);
  EXPECT_GT(aligned.f_measure, 0.9);
}

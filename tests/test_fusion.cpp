// Tests for the joint visual + trajectory room fusion (§VI future work) and
// the shared oriented-bounding-box primitive.
#include <gtest/gtest.h>

#include <cmath>

#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "geometry/obb.hpp"
#include "room/fusion.hpp"

namespace cr = crowdmap::room;
namespace cg = crowdmap::geometry;
namespace cc = crowdmap::common;
using cg::Vec2;

namespace {

std::vector<Vec2> rect_loop(double w, double d, double theta,
                            Vec2 center = {}) {
  std::vector<Vec2> pts;
  for (double x = -w / 2; x <= w / 2; x += 0.25) {
    pts.push_back(center + Vec2{x, -d / 2}.rotated(theta));
    pts.push_back(center + Vec2{x, d / 2}.rotated(theta));
  }
  for (double y = -d / 2; y <= d / 2; y += 0.25) {
    pts.push_back(center + Vec2{-w / 2, y}.rotated(theta));
    pts.push_back(center + Vec2{w / 2, y}.rotated(theta));
  }
  return pts;
}

cr::RoomLayout layout(double w, double d, double score, double orient = 0.0) {
  cr::RoomLayout out;
  out.width = w;
  out.depth = d;
  out.orientation = orient;
  out.score = score;
  return out;
}

}  // namespace

TEST(OrientedBox, RecoversRotatedRectangle) {
  const auto box = cg::oriented_bounding_box(rect_loop(6, 3, 0.5));
  ASSERT_TRUE(box.has_value());
  EXPECT_NEAR(box->width, 6.0, 0.2);
  EXPECT_NEAR(box->depth, 3.0, 0.2);
  EXPECT_NEAR(std::abs(std::remainder(box->orientation - 0.5, cc::kPi)), 0.0,
              0.05);
}

TEST(OrientedBox, TooFewPoints) {
  EXPECT_FALSE(cg::oriented_bounding_box(std::vector<Vec2>{{0, 0}, {1, 1}})
                   .has_value());
}

TEST(Fusion, BothMissingIsNothing) {
  EXPECT_FALSE(cr::fuse_layout_with_trace(std::nullopt, {}, {}).has_value());
}

TEST(Fusion, VisualOnlyPassesThrough) {
  const auto fused =
      cr::fuse_layout_with_trace(layout(5, 4, 0.3), {}, {});
  ASSERT_TRUE(fused.has_value());
  EXPECT_EQ(fused->width, 5.0);
  EXPECT_EQ(fused->visual_weight, 1.0);
}

TEST(Fusion, TraceOnlyInflatedByMargin) {
  cr::FusionConfig config;
  config.trace_margin = 0.5;
  const auto fused =
      cr::fuse_layout_with_trace(std::nullopt, rect_loop(4, 3, 0.0), config);
  ASSERT_TRUE(fused.has_value());
  EXPECT_NEAR(fused->width, 5.0, 0.3);  // 4 + 2 * 0.5
  EXPECT_NEAR(fused->depth, 4.0, 0.3);
  EXPECT_EQ(fused->visual_weight, 0.0);
}

TEST(Fusion, HighScoreTrustsVisual) {
  const auto fused = cr::fuse_layout_with_trace(
      layout(6, 5, 0.5), rect_loop(3, 2, 0.0), {});
  ASSERT_TRUE(fused.has_value());
  EXPECT_GT(fused->visual_weight, 0.95);
  EXPECT_NEAR(fused->width, 6.0, 0.3);
}

TEST(Fusion, LowScoreLeansOnTrace) {
  cr::FusionConfig config;
  config.trace_margin = 0.5;
  // A degenerate visual fit (non-rectangular room): score near zero.
  const auto fused = cr::fuse_layout_with_trace(
      layout(14, 2, 0.01), rect_loop(4, 3, 0.0), config);
  ASSERT_TRUE(fused.has_value());
  EXPECT_LT(fused->visual_weight, 0.25);
  // Mostly the trace's inflated extents.
  EXPECT_NEAR(fused->width, 5.0, 1.6);
  EXPECT_NEAR(fused->depth, 4.0, 1.2);
}

TEST(Fusion, SwappedTraceAxesAligned) {
  // The trace's principal axis is the visual layout's depth direction; the
  // blend must not average width against depth.
  cr::FusionConfig config;
  config.trace_margin = 0.0;
  const auto fused = cr::fuse_layout_with_trace(
      layout(3, 8, 0.01, 0.0), rect_loop(8, 3, cc::kPi / 2), config);
  ASSERT_TRUE(fused.has_value());
  EXPECT_NEAR(fused->width, 3.0, 0.8);
  EXPECT_NEAR(fused->depth, 8.0, 0.8);
}

// Tests for the evaluation harness itself (datasets, table/CDF printing) and
// the vision S1 similarity stack that the harness exercises indirectly.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "eval/datasets.hpp"
#include "eval/harness.hpp"
#include "sim/scene.hpp"
#include "vision/similarity.hpp"

namespace ce = crowdmap::eval;
namespace cv = crowdmap::vision;
namespace cs = crowdmap::sim;
namespace cc = crowdmap::common;

TEST(Datasets, ScaleReducesHallwayWalks) {
  const auto full = ce::lab1_dataset(1.0);
  const auto half = ce::lab1_dataset(0.5);
  EXPECT_LT(half.options.hallway_walks, full.options.hallway_walks);
  EXPECT_GE(half.options.hallway_walks, 4);  // floor
  // Every room still gets visited.
  EXPECT_EQ(half.options.room_videos_per_room, 1);
}

TEST(Datasets, AllThreePresent) {
  const auto datasets = ce::all_datasets(1.0);
  ASSERT_EQ(datasets.size(), 3u);
  EXPECT_EQ(datasets[0].name, "Lab1");
  EXPECT_EQ(datasets[1].name, "Lab2");
  EXPECT_EQ(datasets[2].name, "Gym");
}

TEST(Harness, TruthRasterGridMatchesConfig) {
  const auto dataset = ce::lab2_dataset(1.0);
  const auto raster = ce::truth_hallway_raster(dataset, 0.5);
  EXPECT_NEAR(raster.cell_size(), 0.5, 1e-12);
  EXPECT_GT(raster.count_set(), 100u);
}

TEST(Harness, TableRowFormatting) {
  std::ostringstream out;
  ce::print_table_row(out, {"a", "bb", "ccc"}, 5);
  EXPECT_EQ(out.str(), "a     | bb    | ccc  \n");
}

TEST(Harness, CdfPrintsHeaderAndSummary) {
  std::ostringstream out;
  ce::print_cdf(out, "demo", {1.0, 2.0, 3.0}, 3);
  const std::string text = out.str();
  EXPECT_NE(text.find("# CDF: demo (n=3)"), std::string::npos);
  EXPECT_NE(text.find("mean="), std::string::npos);
}

TEST(Harness, CdfEmptySamplesNoCrash) {
  std::ostringstream out;
  ce::print_cdf(out, "empty", {}, 3);
  EXPECT_NE(out.str().find("n=0"), std::string::npos);
}

TEST(Harness, FormatHelpers) {
  EXPECT_EQ(ce::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(ce::pct(0.876, 1), "87.6%");
}

// ----------------------------------------------------- S1 similarity stack ---

namespace {

crowdmap::imaging::ColorImage frame_at(const cs::Scene& scene,
                                       crowdmap::geometry::Vec2 pos,
                                       double heading, std::uint64_t noise) {
  cs::CameraIntrinsics intr;
  cc::Rng rng(noise);
  return scene.render({pos, heading}, intr, cs::Lighting::day(), rng);
}

}  // namespace

TEST(SimilarityS1, SamePoseScoresHigh) {
  const auto spec = cs::lab1();
  const auto scene = cs::Scene::from_spec(spec, 901);
  const auto a = cv::compute_cheap_descriptors(frame_at(scene, {10, 0}, 0.0, 1));
  const auto b = cv::compute_cheap_descriptors(frame_at(scene, {10, 0}, 0.0, 2));
  EXPECT_GT(cv::similarity_s1(a, b), 0.85);
}

TEST(SimilarityS1, DifferentSceneScoresLower) {
  const auto spec = cs::lab1();
  const auto scene = cs::Scene::from_spec(spec, 902);
  const auto a = cv::compute_cheap_descriptors(frame_at(scene, {10, 0}, 0.0, 1));
  const auto far = cv::compute_cheap_descriptors(
      frame_at(scene, spec.rooms[0].center, 2.0, 1));
  const auto same = cv::compute_cheap_descriptors(frame_at(scene, {10, 0}, 0.0, 3));
  EXPECT_LT(cv::similarity_s1(a, far), cv::similarity_s1(a, same));
}

TEST(SimilarityS1, WeightsRespected) {
  const auto spec = cs::lab1();
  const auto scene = cs::Scene::from_spec(spec, 903);
  const auto a = cv::compute_cheap_descriptors(frame_at(scene, {8, 0}, 0.1, 1));
  const auto b = cv::compute_cheap_descriptors(frame_at(scene, {24, 0}, 3.0, 2));
  cv::S1Weights color_only;
  color_only.color = 1.0;
  color_only.shape = 0.0;
  color_only.wavelet = 0.0;
  const double c = cv::similarity_s1(a, b, color_only);
  EXPECT_GE(c, 0.0);
  EXPECT_LE(c, 1.0);
  // All-zero weights -> zero similarity.
  cv::S1Weights zero;
  zero.color = zero.shape = zero.wavelet = 0.0;
  EXPECT_EQ(cv::similarity_s1(a, b, zero), 0.0);
}

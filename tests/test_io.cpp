// Tests for serialization (round trips, versioning, malformed input) and
// PGM/PPM image IO.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/rng.hpp"
#include "floorplan/serialize.hpp"
#include "io/image_io.hpp"
#include "io/serialize.hpp"
#include "sensors/serialize.hpp"
#include "sim/buildings.hpp"
#include "sim/user_sim.hpp"
#include "trajectory/serialize.hpp"
#include "trajectory/trajectory.hpp"

namespace cio = crowdmap::io;
namespace csens = crowdmap::sensors;
namespace ctraj = crowdmap::trajectory;
namespace cfp = crowdmap::floorplan;
namespace cs = crowdmap::sim;
namespace cc = crowdmap::common;

namespace {

cs::SensorRichVideo sample_video() {
  static const auto spec = cs::lab1();
  static const auto scene = cs::Scene::from_spec(spec, 601);
  cs::SimOptions options;
  options.fps = 3.0;
  cs::UserSimulator user(scene, spec, options, cc::Rng(601));
  return user.hallway_walk_between({2, 0}, {14, 0}, cs::Lighting::day());
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

}  // namespace

// ------------------------------------------------------------ primitives ---

TEST(Serialize, PrimitiveRoundTrip) {
  cio::Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.f32(3.25f);
  w.f64(-2.5e-8);
  w.str("hello");
  const auto bytes = std::move(w).take();
  cio::Reader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.f32(), 3.25f);
  EXPECT_EQ(r.f64(), -2.5e-8);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, TruncatedReadThrows) {
  cio::Writer w;
  w.u32(7);
  const auto bytes = std::move(w).take();
  cio::Reader r(bytes);
  (void)r.u32();
  EXPECT_THROW((void)r.u8(), cio::DecodeError);
}

// ------------------------------------------------------------------- IMU ---

TEST(Serialize, ImuRoundTrip) {
  const auto video = sample_video();
  const auto bytes = csens::encode_imu(video.imu);
  const auto decoded = csens::decode_imu(bytes);
  ASSERT_EQ(decoded.samples.size(), video.imu.samples.size());
  EXPECT_EQ(decoded.sample_rate_hz, video.imu.sample_rate_hz);
  for (std::size_t i = 0; i < decoded.samples.size(); i += 97) {
    EXPECT_EQ(decoded.samples[i].t, video.imu.samples[i].t);
    EXPECT_EQ(decoded.samples[i].gyro_z, video.imu.samples[i].gyro_z);
    EXPECT_EQ(decoded.samples[i].compass, video.imu.samples[i].compass);
  }
}

TEST(Serialize, ImuWrongMagicThrows) {
  cio::Bytes garbage = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  EXPECT_THROW((void)csens::decode_imu(garbage), cio::DecodeError);
}

// ------------------------------------------------------------ trajectory ---

TEST(Serialize, TrajectoryRoundTrip) {
  const auto traj = crowdmap::trajectory::extract_trajectory(sample_video());
  const auto bytes = ctraj::encode_trajectory(traj);
  const auto decoded = ctraj::decode_trajectory(bytes);

  EXPECT_EQ(decoded.video_id, traj.video_id);
  EXPECT_EQ(decoded.building, traj.building);
  EXPECT_EQ(decoded.true_room_id, traj.true_room_id);
  ASSERT_EQ(decoded.points.size(), traj.points.size());
  ASSERT_EQ(decoded.keyframes.size(), traj.keyframes.size());
  for (std::size_t i = 0; i < decoded.keyframes.size(); ++i) {
    const auto& a = decoded.keyframes[i];
    const auto& b = traj.keyframes[i];
    EXPECT_EQ(a.position.x, b.position.x);
    EXPECT_EQ(a.heading, b.heading);
    ASSERT_EQ(a.surf.size(), b.surf.size());
    for (std::size_t k = 0; k < a.surf.size(); ++k) {
      EXPECT_EQ(a.surf[k].descriptor, b.surf[k].descriptor);
      EXPECT_EQ(a.surf[k].keypoint.laplacian_positive,
                b.surf[k].keypoint.laplacian_positive);
    }
    // Gray image quantized to 8 bits: equal to within half a step.
    ASSERT_EQ(a.gray.width(), b.gray.width());
    for (std::size_t p = 0; p < a.gray.data().size(); p += 131) {
      EXPECT_NEAR(a.gray.data()[p], b.gray.data()[p], 1.0 / 255.0);
    }
    EXPECT_EQ(a.cheap.color_hist, b.cheap.color_hist);
    EXPECT_EQ(a.cheap.wavelet.positions, b.cheap.wavelet.positions);
  }
}

TEST(Serialize, TrajectoryTamperedLengthThrows) {
  const auto traj = crowdmap::trajectory::extract_trajectory(sample_video());
  auto bytes = ctraj::encode_trajectory(traj);
  // Corrupt a length field deep inside: set four consecutive bytes to 0xFF.
  for (std::size_t i = 40; i < 44 && i < bytes.size(); ++i) bytes[i] = 0xFF;
  EXPECT_THROW((void)ctraj::decode_trajectory(bytes), cio::DecodeError);
}

// ------------------------------------------------------------- floor plan ---

TEST(Serialize, FloorPlanRoundTrip) {
  crowdmap::floorplan::FloorPlan plan;
  plan.hallway =
      crowdmap::geometry::BoolRaster({{0, 0}, {20, 12}}, 0.5);
  plan.hallway.fill_polygon(
      crowdmap::geometry::Polygon::rectangle({10, 6}, 16, 2.4));
  crowdmap::floorplan::PlacedRoom room;
  room.center = {5, 9};
  room.width = 4.5;
  room.depth = 3.5;
  room.orientation = 0.2;
  room.true_room_id = 7;
  room.layout_score = 0.31;
  plan.rooms.push_back(room);

  const auto bytes = cfp::encode_floorplan(plan);
  const auto decoded = cfp::decode_floorplan(bytes);
  EXPECT_EQ(decoded.hallway.count_set(), plan.hallway.count_set());
  EXPECT_EQ(decoded.hallway.width(), plan.hallway.width());
  ASSERT_EQ(decoded.rooms.size(), 1u);
  EXPECT_EQ(decoded.rooms[0].center.x, 5.0);
  EXPECT_EQ(decoded.rooms[0].width, 4.5);
  EXPECT_EQ(decoded.rooms[0].true_room_id, 7);
  // Cell-exact raster round trip.
  EXPECT_EQ(decoded.hallway.data(), plan.hallway.data());
}

TEST(Serialize, FloorPlanWrongMagicThrows) {
  const auto traj = crowdmap::trajectory::extract_trajectory(sample_video());
  const auto bytes = ctraj::encode_trajectory(traj);
  EXPECT_THROW((void)cfp::decode_floorplan(bytes), cio::DecodeError);
}

// --------------------------------------------------------------- image IO ---

TEST(ImageIo, PgmRoundTrip) {
  crowdmap::imaging::Image img(17, 9);
  cc::Rng rng(611);
  for (auto& v : img.data()) v = static_cast<float>(rng.uniform());
  const auto path = temp_path("crowdmap_test.pgm");
  ASSERT_TRUE(cio::write_pgm(path, img));
  const auto back = cio::read_pgm(path);
  ASSERT_EQ(back.width(), 17);
  ASSERT_EQ(back.height(), 9);
  for (std::size_t i = 0; i < img.data().size(); ++i) {
    EXPECT_NEAR(back.data()[i], img.data()[i], 1.0 / 255.0);
  }
  std::remove(path.c_str());
}

TEST(ImageIo, PpmWrites) {
  crowdmap::imaging::ColorImage img(8, 8, {0.2f, 0.5f, 0.9f});
  const auto path = temp_path("crowdmap_test.ppm");
  ASSERT_TRUE(cio::write_ppm(path, img));
  EXPECT_GT(std::filesystem::file_size(path), 8u * 8u * 3u);
  std::remove(path.c_str());
}

TEST(ImageIo, RasterPgm) {
  crowdmap::geometry::BoolRaster raster({{0, 0}, {8, 8}}, 1.0);
  raster.set(3, 4, true);
  const auto path = temp_path("crowdmap_raster.pgm");
  ASSERT_TRUE(cio::write_pgm(path, raster));
  const auto back = cio::read_pgm(path);
  // +y up convention: row 4 of the raster is image row (8-1-4) = 3.
  EXPECT_GT(back.at(3, 3), 0.9f);
  std::remove(path.c_str());
}

TEST(ImageIo, ReadMissingFileThrows) {
  EXPECT_THROW((void)cio::read_pgm("/nonexistent/nope.pgm"), std::runtime_error);
}

// Tests for the api::v2 facade: the structured Status error model,
// request-scoped deadlines, cluster topology surface, the v1/v2 conformance
// contract (byte-identical FloorPlans and DegradationReports over the same
// campaign), and the 4-submitter-thread regression for the submit critical
// section (docs/API.md).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "api/crowdmap.hpp"
#include "common/rng.hpp"
#include "floorplan/serialize.hpp"
#include "sensors/serialize.hpp"
#include "sim/buildings.hpp"
#include "sim/campaign.hpp"

namespace api = crowdmap::api;
namespace cs = crowdmap::sim;
namespace co = crowdmap::core;
namespace cc = crowdmap::common;
namespace fp = crowdmap::floorplan;

namespace {

std::vector<cs::SensorRichVideo> tiny_campaign(std::uint64_t seed) {
  std::vector<cs::SensorRichVideo> out;
  cc::Rng rng(seed);
  const auto spec = cs::random_building(2, rng);
  cs::CampaignOptions options;
  options.users = 2;
  options.room_videos_per_room = 1;
  options.hallway_walks = 4;
  options.junk_fraction = 0.0;
  options.sim.fps = 3.0;
  cs::generate_campaign_streaming(spec, options, seed,
                                  [&out](cs::SensorRichVideo&& video) {
                                    out.push_back(std::move(video));
                                  });
  return out;
}

api::Client make_v2(std::size_t nodes = 1) {
  api::ClientOptions options;
  options.config = co::PipelineConfig::fast_profile();
  options.config.cluster.nodes = nodes;
  return api::Client(std::move(options));
}

std::string plan_bytes(const co::PipelineResult& result) {
  const auto bytes = fp::encode_floorplan(result.plan);
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace

// ----------------------------------------------------------- versioning ---

TEST(ApiV2, InlineNamespaceMakesV2TheDefault) {
  static_assert(std::is_same_v<api::Client, api::v2::Client>);
  static_assert(std::is_same_v<api::ClientOptions, api::v2::ClientOptions>);
  static_assert(!std::is_same_v<api::v1::Client, api::v2::Client>);
  // The pinned v1 surface stays source-compatible for old callers: its
  // responses still answer with the bare bool, not a Status.
  static_assert(std::is_same_v<
                decltype(std::declval<api::v1::SubmitUploadResponse>().accepted),
                bool>);
  SUCCEED();
}

TEST(ApiV2, StatusModelIsSelfDescribing) {
  EXPECT_TRUE(api::Status::Ok().ok());
  EXPECT_EQ(api::Status::Ok().code, api::StatusCode::kOk);
  const auto status =
      api::Status::Error(api::StatusCode::kShedding, "over queue bound");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(api::to_string(status.code), "shedding");
  EXPECT_EQ(api::to_string(api::StatusCode::kOk), "ok");
  EXPECT_EQ(api::to_string(api::StatusCode::kWrongShard), "wrong_shard");
  EXPECT_EQ(api::to_string(api::StatusCode::kDeadlineExceeded),
            "deadline_exceeded");
}

// ---------------------------------------------------- v1/v2 conformance ---

TEST(ApiV2, SingleNodeV2MatchesV1ByteForByte) {
  const auto videos = tiny_campaign(820);
  ASSERT_GE(videos.size(), 3u);
  const std::string building = videos.front().building;
  const int floor = videos.front().floor;

  api::v1::ClientOptions v1_options;
  v1_options.config = co::PipelineConfig::fast_profile();
  api::v1::Client v1(std::move(v1_options));
  for (const auto& video : videos) ASSERT_TRUE(v1.submit_video(video).accepted);
  const auto v1_plan = v1.build_plan({building, floor, std::nullopt});

  auto v2 = make_v2();
  for (const auto& video : videos) {
    const auto response = v2.submit_video(video);
    ASSERT_TRUE(response.status.ok()) << response.status.message;
    EXPECT_GT(response.chunks_sent, 0u);
    EXPECT_GT(response.seqno, 0u);
  }
  api::BuildPlanRequest request;
  request.building = building;
  request.floor = floor;
  const auto v2_plan = v2.build_plan(request);
  ASSERT_TRUE(v2_plan.status.ok());

  EXPECT_EQ(plan_bytes(v1_plan.result), plan_bytes(v2_plan.result));
  EXPECT_EQ(v1_plan.result.degradation.to_string(),
            v2_plan.degradation.to_string());
  EXPECT_EQ(v2_plan.degradation.to_string(),
            v2_plan.result.degradation.to_string());
}

TEST(ApiV2, MultiNodeClientMatchesSingleNodeByteForByte) {
  const auto videos = tiny_campaign(821);
  const std::string building = videos.front().building;
  const int floor = videos.front().floor;

  auto single = make_v2(1);
  auto sharded = make_v2(3);
  EXPECT_EQ(single.nodes(), 1u);
  EXPECT_EQ(sharded.nodes(), 3u);
  for (const auto& video : videos) {
    ASSERT_TRUE(single.submit_video(video).status.ok());
    ASSERT_TRUE(sharded.submit_video(video).status.ok());
  }
  api::BuildPlanRequest request;
  request.building = building;
  request.floor = floor;
  const auto lone = single.build_plan(request);
  const auto spread = sharded.build_plan(request);
  EXPECT_EQ(plan_bytes(lone.result), plan_bytes(spread.result));

  // The serving node is the shard's primary, and the merged snapshot keeps
  // router families unlabeled while node families carry {"node", ...}.
  EXPECT_EQ(spread.node, sharded.shard_of(building, floor).primary);
  EXPECT_EQ(spread.metrics.value("crowdmap_cluster_nodes"), 3.0);
  EXPECT_TRUE(spread.metrics.has(
      "crowdmap_worker_queue_depth",
      {{"node", sharded.node_name(spread.node)}}));
}

// ------------------------------------------------------- error surface ---

TEST(ApiV2, StaleRoutingIsRefusedAsWrongShard) {
  const auto videos = tiny_campaign(822);
  const auto& video = videos.front();
  auto client = make_v2(3);

  const auto view = client.shard_of(video.building, video.floor);
  std::size_t wrong = 0;
  while (wrong == view.primary) ++wrong;

  api::SubmitUploadRequest request;
  request.upload_id = "video-" + std::to_string(video.video_id);
  request.building = video.building;
  request.floor = video.floor;
  request.payload = crowdmap::sensors::encode_imu(video.imu);

  const auto refused = client.submit_upload_to(wrong, request);
  EXPECT_EQ(refused.status.code, api::StatusCode::kWrongShard);
  EXPECT_FALSE(refused.status.message.empty());
  EXPECT_EQ(refused.node, view.primary) << "response names the real primary";
  EXPECT_EQ(refused.seqno, 0u);

  const auto accepted = client.submit_upload_to(view.primary, request);
  EXPECT_TRUE(accepted.status.ok());
}

TEST(ApiV2, RequestDeadlinesBoundAdmission) {
  const auto videos = tiny_campaign(823);
  const auto& video = videos.front();
  auto client = make_v2();
  ASSERT_TRUE(client.submit_video(video).status.ok());
  ASSERT_GE(client.now_tick(), 1u);

  api::RequestOptions expired;
  expired.deadline_tick = 1;
  const auto late = client.submit_video(videos.back(), expired);
  EXPECT_EQ(late.status.code, api::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(late.seqno, 0u);

  api::BuildPlanRequest build;
  build.building = video.building;
  build.floor = video.floor;
  build.options = expired;
  const auto plan = client.build_plan(build);
  EXPECT_EQ(plan.status.code, api::StatusCode::kDeadlineExceeded);

  build.options.deadline_tick = client.now_tick() + 100;
  EXPECT_TRUE(client.build_plan(build).status.ok());
}

// ------------------------------------------- submit critical section ---

TEST(ApiV2, FourConcurrentSubmittersMatchSerialSubmissionByteForByte) {
  // Regression for the submit critical section: chunk delivery runs outside
  // the router lock, so concurrent submitters must neither corrupt routing
  // state nor change the committed upload set. Four threads stripe the
  // campaign; the resulting plan must match a serial submission's bytes.
  const auto videos = tiny_campaign(824);
  ASSERT_GE(videos.size(), 4u);
  const std::string building = videos.front().building;
  const int floor = videos.front().floor;

  auto serial = make_v2();
  for (const auto& video : videos) {
    ASSERT_TRUE(serial.submit_video(video).status.ok());
  }
  api::BuildPlanRequest request;
  request.building = building;
  request.floor = floor;
  const auto reference = serial.build_plan(request);

  auto concurrent = make_v2();
  constexpr std::size_t kThreads = 4;
  std::vector<std::size_t> accepted(kThreads, 0);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t v = t; v < videos.size(); v += kThreads) {
          if (concurrent.submit_video(videos[v]).status.ok()) ++accepted[t];
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  std::size_t total = 0;
  for (const auto count : accepted) total += count;
  ASSERT_EQ(total, videos.size());

  const auto built = concurrent.build_plan(request);
  EXPECT_EQ(plan_bytes(reference.result), plan_bytes(built.result));
  EXPECT_EQ(reference.result.degradation.to_string(),
            built.result.degradation.to_string());
}

// ------------------------------------------------------ topology surface ---

TEST(ApiV2, TopologyChangesKeepServingIdenticalPlans) {
  const auto videos = tiny_campaign(825);
  const std::string building = videos.front().building;
  const int floor = videos.front().floor;

  auto fixed = make_v2();
  auto elastic = make_v2();
  const std::size_t half = videos.size() / 2;
  for (std::size_t v = 0; v < videos.size(); ++v) {
    ASSERT_TRUE(fixed.submit_video(videos[v]).status.ok());
    if (v == half) (void)elastic.add_node();
    ASSERT_TRUE(elastic.submit_video(videos[v]).status.ok());
  }
  EXPECT_EQ(elastic.nodes(), 2u);
  EXPECT_EQ(elastic.node_name(0), "node-0");

  api::BuildPlanRequest request;
  request.building = building;
  request.floor = floor;
  const auto before = elastic.build_plan(request);
  ASSERT_TRUE(elastic.remove_node(0));
  const auto after = elastic.build_plan(request);
  const auto baseline = fixed.build_plan(request);
  EXPECT_EQ(plan_bytes(baseline.result), plan_bytes(before.result));
  EXPECT_EQ(plan_bytes(baseline.result), plan_bytes(after.result));
}

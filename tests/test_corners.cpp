// Tests for room-corner detection and the corner-consistency cost (Fig. 5).
#include <gtest/gtest.h>

#include <cmath>

#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "room/corners.hpp"
#include "sim/buildings.hpp"
#include "sim/scene.hpp"
#include "vision/panorama.hpp"

namespace cr = crowdmap::room;
namespace cs = crowdmap::sim;
namespace cc = crowdmap::common;

TEST(PredictCorners, SquareFromCenterQuarters) {
  cr::LayoutHypothesis hyp;
  hyp.width = 4.0;
  hyp.depth = 4.0;
  const auto columns = cr::predict_corner_columns(hyp, 360);
  ASSERT_EQ(columns.size(), 4u);
  // Corners of a centered square sit at 45, 135, 225, 315 degrees.
  EXPECT_NEAR(columns[0], 45.0, 1.0);
  EXPECT_NEAR(columns[1], 135.0, 1.0);
  EXPECT_NEAR(columns[2], 225.0, 1.0);
  EXPECT_NEAR(columns[3], 315.0, 1.0);
}

TEST(PredictCorners, OrientationShiftsColumns) {
  cr::LayoutHypothesis hyp;
  hyp.width = 4.0;
  hyp.depth = 4.0;
  hyp.orientation = cc::deg2rad(30.0);
  const auto columns = cr::predict_corner_columns(hyp, 360);
  EXPECT_NEAR(columns[0], 75.0, 1.0);  // 45 + 30
}

TEST(CornerCost, ZeroWhenAligned) {
  const std::vector<double> detected = {45, 135, 225, 315};
  cr::LayoutHypothesis hyp;
  hyp.width = 4.0;
  hyp.depth = 4.0;
  const auto predicted = cr::predict_corner_columns(hyp, 360);
  EXPECT_LT(cr::corner_cost(detected, predicted, 360), 1.5);
}

TEST(CornerCost, CircularDistance) {
  // Prediction at column 359 against detection at column 1: distance 2.
  EXPECT_NEAR(cr::corner_cost({1.0}, {359.0}, 360), 2.0, 1e-9);
}

TEST(CornerCost, NoEvidenceNoPenalty) {
  EXPECT_EQ(cr::corner_cost({}, {10.0, 20.0}, 360), 0.0);
}

TEST(DetectCorners, FindsWallJointsOnRealPanorama) {
  // Panorama from a room center: the four wall joints should register as
  // vertical-line columns near their predicted positions.
  cs::FloorPlanSpec spec;
  spec.name = "single";
  spec.feature_density = 0.75;
  cs::RoomSpec room;
  room.id = 1;
  room.center = {0, 0};
  room.width = 6.0;
  room.depth = 4.0;
  room.door = {0, -2.0};
  spec.rooms.push_back(room);
  spec.hallways.push_back(cs::corridor({-6, -3.2}, {6, -3.2}, 2.4));
  const auto scene = cs::Scene::from_spec(spec, 881);

  cs::CameraIntrinsics intr;
  cc::Rng rng(881);
  std::vector<crowdmap::vision::PanoFrame> frames;
  for (int i = 0; i < 16; ++i) {
    const double heading = i * cc::kTwoPi / 16;
    frames.push_back({scene.render({room.center, heading}, intr,
                                   cs::Lighting::day(), rng)
                          .to_gray(),
                      heading});
  }
  crowdmap::vision::StitchParams sp;
  sp.output_width = 512;
  sp.output_height = 128;
  const auto pano = crowdmap::vision::stitch_panorama(std::move(frames), sp);

  const auto detected = cr::detect_corner_columns(pano.image);
  ASSERT_GE(detected.size(), 2u);

  cr::LayoutHypothesis truth;
  truth.width = room.width;
  truth.depth = room.depth;
  const auto predicted = cr::predict_corner_columns(truth, sp.output_width);
  // Detected columns should be closer to the truth than a uniformly wrong
  // hypothesis's corners would be on average.
  const double cost_truth = cr::corner_cost(detected, predicted, sp.output_width);
  EXPECT_LT(cost_truth, 30.0);
}

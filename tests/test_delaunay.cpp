// Delaunay triangulation, α-shape and convex hull tests, including the
// empty-circumcircle property check on random point sets.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "geometry/alpha_shape.hpp"
#include "geometry/convex_hull.hpp"
#include "geometry/delaunay.hpp"

namespace cg = crowdmap::geometry;
namespace cc = crowdmap::common;
using cg::Vec2;

TEST(Circumcircle, EquilateralTriangle) {
  const auto cc1 = cg::circumcircle({0, 0}, {2, 0}, {1, std::sqrt(3.0)});
  EXPECT_NEAR(cc1.center.x, 1.0, 1e-9);
  EXPECT_NEAR(cc1.center.y, 1.0 / std::sqrt(3.0), 1e-9);
  const double r = std::sqrt(cc1.radius_sq);
  EXPECT_NEAR(r, 2.0 / std::sqrt(3.0), 1e-9);
}

TEST(Circumcircle, CollinearDegenerates) {
  const auto cc1 = cg::circumcircle({0, 0}, {1, 0}, {2, 0});
  EXPECT_GT(cc1.radius_sq, 1e100);
}

TEST(Delaunay, TooFewPoints) {
  EXPECT_TRUE(cg::delaunay_triangulation({}).empty());
  EXPECT_TRUE(cg::delaunay_triangulation({{0, 0}, {1, 1}}).empty());
}

TEST(Delaunay, SingleTriangle) {
  const auto tris = cg::delaunay_triangulation({{0, 0}, {1, 0}, {0, 1}});
  ASSERT_EQ(tris.size(), 1u);
}

TEST(Delaunay, SquareGivesTwoTriangles) {
  const auto tris =
      cg::delaunay_triangulation({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  EXPECT_EQ(tris.size(), 2u);
}

TEST(Delaunay, DuplicatePointsTolerated) {
  const auto tris = cg::delaunay_triangulation(
      {{0, 0}, {1, 0}, {0, 1}, {0, 0}, {1, 0}});
  EXPECT_EQ(tris.size(), 1u);
}

namespace {

/// Total area of a triangulation.
double triangulation_area(const std::vector<Vec2>& pts,
                          const std::vector<cg::Triangle>& tris) {
  double acc = 0.0;
  for (const auto& t : tris) {
    const Vec2 a = pts[t.v[0]];
    const Vec2 b = pts[t.v[1]];
    const Vec2 c = pts[t.v[2]];
    acc += std::abs((b - a).cross(c - a)) / 2.0;
  }
  return acc;
}

}  // namespace

TEST(Delaunay, EmptyCircumcirclePropertyOnRandomSets) {
  cc::Rng rng(21);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Vec2> pts;
    for (int i = 0; i < 40; ++i) {
      pts.push_back({rng.uniform(0, 10), rng.uniform(0, 10)});
    }
    const auto tris = cg::delaunay_triangulation(pts);
    ASSERT_FALSE(tris.empty());
    for (const auto& t : tris) {
      const auto circle = cg::circumcircle(pts[t.v[0]], pts[t.v[1]], pts[t.v[2]]);
      for (std::size_t p = 0; p < pts.size(); ++p) {
        if (t.has_vertex(p)) continue;
        // No other point strictly inside the circumcircle.
        EXPECT_GT((pts[p] - circle.center).norm_sq(), circle.radius_sq - 1e-6)
            << "point " << p << " violates the empty-circle property";
      }
    }
  }
}

TEST(Delaunay, CoversConvexHullArea) {
  cc::Rng rng(22);
  std::vector<Vec2> pts;
  for (int i = 0; i < 60; ++i) {
    pts.push_back({rng.uniform(0, 8), rng.uniform(0, 8)});
  }
  const auto tris = cg::delaunay_triangulation(pts);
  const auto hull = cg::convex_hull(pts);
  EXPECT_NEAR(triangulation_area(pts, tris), hull.area(), 1e-6);
}

TEST(AlphaShape, LargeAlphaEqualsHull) {
  cc::Rng rng(23);
  std::vector<Vec2> pts;
  for (int i = 0; i < 50; ++i) {
    pts.push_back({rng.uniform(0, 5), rng.uniform(0, 5)});
  }
  const auto shape = cg::alpha_shape(pts, 100.0);
  const auto hull = cg::convex_hull(pts);
  double area = 0.0;
  for (const auto& t : shape.triangles) {
    area += std::abs((pts[t.v[1]] - pts[t.v[0]]).cross(pts[t.v[2]] - pts[t.v[0]])) / 2;
  }
  EXPECT_NEAR(area, hull.area(), 1e-6);
}

TEST(AlphaShape, SmallAlphaRemovesLongTriangles) {
  // Two dense clusters far apart: small alpha must not bridge them.
  std::vector<Vec2> pts;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      pts.push_back({i * 0.4, j * 0.4});
      pts.push_back({20 + i * 0.4, j * 0.4});
    }
  }
  const auto shape = cg::alpha_shape(pts, 1.0);
  for (const auto& t : shape.triangles) {
    // Every retained triangle stays within one cluster.
    const double x0 = pts[t.v[0]].x;
    const double x1 = pts[t.v[1]].x;
    const double x2 = pts[t.v[2]].x;
    const bool left = x0 < 10 && x1 < 10 && x2 < 10;
    const bool right = x0 > 10 && x1 > 10 && x2 > 10;
    EXPECT_TRUE(left || right);
  }
}

TEST(AlphaShape, BoundaryEdgesBelongToOneTriangle) {
  std::vector<Vec2> pts;
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) pts.push_back({i * 1.0, j * 1.0});
  }
  const auto shape = cg::alpha_shape(pts, 1.5);
  // A 6x6 grid with alpha 1.5 keeps everything; the boundary should trace
  // the square outline: 5 edges per side x 4 sides = 20 edges.
  EXPECT_EQ(shape.boundary.size(), 20u);
}

TEST(AlphaShape, ContainsQueries) {
  std::vector<Vec2> pts;
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) pts.push_back({i * 1.0, j * 1.0});
  }
  const auto shape = cg::alpha_shape(pts, 1.5);
  EXPECT_TRUE(cg::alpha_shape_contains(shape, pts, {2.5, 2.5}));
  EXPECT_FALSE(cg::alpha_shape_contains(shape, pts, {12.0, 2.5}));
}

TEST(AlphaShape, ChainBoundaryFormsLoops) {
  std::vector<Vec2> pts;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) pts.push_back({i * 1.0, j * 1.0});
  }
  const auto shape = cg::alpha_shape(pts, 1.5);
  const auto chains = cg::chain_boundary(shape.boundary);
  ASSERT_FALSE(chains.empty());
  // The outer boundary chain should close on itself.
  const auto& chain = chains.front();
  EXPECT_GT(chain.size(), 4u);
  EXPECT_LT(chain.front().distance_to(chain.back()), 1e-6);
}

TEST(ConvexHull, Square) {
  const auto hull =
      cg::convex_hull({{0, 0}, {2, 0}, {2, 2}, {0, 2}, {1, 1}, {0.5, 0.5}});
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_NEAR(hull.area(), 4.0, 1e-9);
  EXPECT_GT(hull.signed_area(), 0.0);  // CCW
}

TEST(ConvexHull, CollinearDegenerate) {
  const auto hull = cg::convex_hull({{0, 0}, {1, 0}, {2, 0}});
  EXPECT_LT(hull.size(), 3u);
}

TEST(ConvexHull, ContainsAllPoints) {
  cc::Rng rng(24);
  std::vector<Vec2> pts;
  for (int i = 0; i < 80; ++i) {
    pts.push_back({rng.uniform(-3, 3), rng.uniform(-3, 3)});
  }
  const auto hull = cg::convex_hull(pts);
  for (const auto p : pts) {
    EXPECT_TRUE(hull.contains(p));
  }
}

// Tests for binary morphology, connected components and gap bridging — the
// skeleton repair toolbox.
#include <gtest/gtest.h>

#include "imaging/morphology.hpp"

namespace ci = crowdmap::imaging;
namespace cg = crowdmap::geometry;

namespace {

cg::BoolRaster blank(int size = 20) {
  return cg::BoolRaster(
      cg::Aabb{{0, 0}, {static_cast<double>(size), static_cast<double>(size)}},
      1.0);
}

}  // namespace

TEST(Morphology, DilateGrowsRegion) {
  auto r = blank();
  r.set(10, 10, true);
  const auto d = ci::dilate(r, 2);
  EXPECT_GT(d.count_set(), r.count_set());
  EXPECT_TRUE(d.at(10, 10));
  EXPECT_TRUE(d.at(12, 10));
  EXPECT_FALSE(d.at(13, 10));
}

TEST(Morphology, ErodeShrinksRegion) {
  auto r = blank();
  for (int y = 5; y <= 15; ++y) {
    for (int x = 5; x <= 15; ++x) r.set(x, y, true);
  }
  const auto e = ci::erode(r, 2);
  EXPECT_LT(e.count_set(), r.count_set());
  EXPECT_TRUE(e.at(10, 10));
  EXPECT_FALSE(e.at(5, 5));
}

TEST(Morphology, ErodeDilateZeroRadiusIdentity) {
  auto r = blank();
  r.set(3, 3, true);
  EXPECT_EQ(ci::dilate(r, 0).count_set(), 1u);
  EXPECT_EQ(ci::erode(r, 0).count_set(), 1u);
}

TEST(Morphology, CloseFillsHoles) {
  auto r = blank();
  // A ring with a hole in the middle.
  for (int y = 8; y <= 12; ++y) {
    for (int x = 8; x <= 12; ++x) {
      if (x == 10 && y == 10) continue;
      r.set(x, y, true);
    }
  }
  const auto closed = ci::close(r, 1);
  EXPECT_TRUE(closed.at(10, 10));
}

TEST(Morphology, OpenRemovesSpeckles) {
  auto r = blank();
  r.set(3, 3, true);  // lone speckle
  for (int y = 8; y <= 14; ++y) {
    for (int x = 8; x <= 14; ++x) r.set(x, y, true);
  }
  const auto opened = ci::open(r, 1);
  EXPECT_FALSE(opened.at(3, 3));
  EXPECT_TRUE(opened.at(11, 11));
}

TEST(Components, CountsDistinctBlobs) {
  auto r = blank();
  r.set(2, 2, true);
  r.set(2, 3, true);
  r.set(10, 10, true);
  r.set(17, 5, true);
  const auto comps = ci::connected_components(r);
  EXPECT_EQ(comps.count, 3);
  EXPECT_EQ(comps.sizes.size(), 4u);  // label 0 placeholder + 3
}

TEST(Components, EightConnectivity) {
  auto r = blank();
  r.set(5, 5, true);
  r.set(6, 6, true);  // diagonal neighbor
  const auto comps = ci::connected_components(r);
  EXPECT_EQ(comps.count, 1);
}

TEST(Components, EmptyRaster) {
  const auto comps = ci::connected_components(blank());
  EXPECT_EQ(comps.count, 0);
}

TEST(RemoveSmall, DropsBelowThreshold) {
  auto r = blank();
  r.set(2, 2, true);  // size 1
  for (int x = 10; x < 15; ++x) r.set(x, 10, true);  // size 5
  const auto cleaned = ci::remove_small_components(r, 3);
  EXPECT_FALSE(cleaned.at(2, 2));
  EXPECT_TRUE(cleaned.at(12, 10));
}

TEST(BridgeGaps, ConnectsNearbyComponents) {
  auto r = blank();
  for (int x = 2; x <= 6; ++x) r.set(x, 10, true);
  for (int x = 10; x <= 14; ++x) r.set(x, 10, true);  // gap of 3 cells
  const auto bridged = ci::bridge_gaps(r, 5);
  const auto comps = ci::connected_components(bridged);
  EXPECT_EQ(comps.count, 1);
}

TEST(BridgeGaps, LeavesDistantComponentsAlone) {
  auto r = blank();
  r.set(1, 1, true);
  r.set(18, 18, true);  // ~24 cell gap
  const auto bridged = ci::bridge_gaps(r, 5);
  EXPECT_EQ(ci::connected_components(bridged).count, 2);
}

TEST(BridgeGaps, ChainsMultipleBridges) {
  auto r = blank();
  r.set(2, 10, true);
  r.set(6, 10, true);
  r.set(10, 10, true);
  r.set(14, 10, true);
  const auto bridged = ci::bridge_gaps(r, 5);
  EXPECT_EQ(ci::connected_components(bridged).count, 1);
}

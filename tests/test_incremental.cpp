// Tests for the incremental aggregation cache.
#include <gtest/gtest.h>

#include "bench_util.hpp"
#include "trajectory/incremental.hpp"


namespace ct = crowdmap::trajectory;
namespace cs = crowdmap::sim;
namespace cc = crowdmap::common;

namespace {

std::vector<ct::Trajectory> pool() {
  static const auto cached =
      crowdmap::bench::make_walk_pool(cs::lab1(), 8, 0.0, 0xC0FFEE);
  return cached;
}

}  // namespace

TEST(Incremental, MatchCountIsIncremental) {
  ct::IncrementalAggregator agg;
  const auto trajectories = pool();
  std::size_t expected = 0;
  for (std::size_t i = 0; i < trajectories.size(); ++i) {
    EXPECT_EQ(agg.add(trajectories[i]), i);
    expected += i;  // newcomer matches everything before it
    EXPECT_EQ(agg.stats().pair_matches_computed, expected);
  }
  // Full batch would also be n*(n-1)/2 — same total, but spread over adds.
  EXPECT_EQ(expected, trajectories.size() * (trajectories.size() - 1) / 2);
}

TEST(Incremental, AggregateMatchesBatchResult) {
  const auto trajectories = pool();
  ct::IncrementalAggregator agg;
  for (const auto& t : trajectories) agg.add(t);
  const auto incremental = agg.aggregate();
  const auto batch = ct::aggregate_trajectories(trajectories, {});
  EXPECT_EQ(incremental.placed_count, batch.placed_count);
  EXPECT_EQ(incremental.edges.size(), batch.edges.size());
  // Identical placements (both are deterministic over the same edge set).
  ASSERT_EQ(incremental.global_pose.size(), batch.global_pose.size());
  for (std::size_t i = 0; i < batch.global_pose.size(); ++i) {
    ASSERT_EQ(incremental.global_pose[i].has_value(),
              batch.global_pose[i].has_value());
    if (batch.global_pose[i]) {
      EXPECT_NEAR(incremental.global_pose[i]->position.x,
                  batch.global_pose[i]->position.x, 1e-9);
      EXPECT_NEAR(incremental.global_pose[i]->theta,
                  batch.global_pose[i]->theta, 1e-9);
    }
  }
}

TEST(Incremental, AggregateIsRepeatableWithoutRematching) {
  const auto trajectories = pool();
  ct::IncrementalAggregator agg;
  for (const auto& t : trajectories) agg.add(t);
  const auto computed_before = agg.stats().pair_matches_computed;
  (void)agg.aggregate();
  (void)agg.aggregate();
  EXPECT_EQ(agg.stats().pair_matches_computed, computed_before);
  EXPECT_GT(agg.stats().pair_matches_cached, 0u);
}

TEST(Incremental, EmptyAggregate) {
  ct::IncrementalAggregator agg;
  const auto result = agg.aggregate();
  EXPECT_EQ(result.placed_count, 0u);
  EXPECT_TRUE(result.edges.empty());
}

TEST(PlaceEdges, SyntheticChainPlacesAll) {
  // Three nodes in a chain: 0 -(b_to_a = +x 5)- 1 -(+x 5)- 2.
  std::vector<ct::MatchEdge> edges;
  ct::MatchEdge e01;
  e01.a = 0;
  e01.b = 1;
  e01.b_to_a = {{5, 0}, 0.0};
  e01.s3 = 0.9;
  e01.anchor_count = 4;
  ct::MatchEdge e12 = e01;
  e12.a = 1;
  e12.b = 2;
  edges = {e01, e12};
  const auto result = ct::place_edges(3, edges, {});
  EXPECT_EQ(result.placed_count, 3u);
  ASSERT_TRUE(result.global_pose[2].has_value());
  // Node 2 sits at +10 x relative to node 0 (the gauge).
  EXPECT_NEAR(result.global_pose[2]->position.x -
                  result.global_pose[0]->position.x,
              10.0, 1e-6);
}

TEST(PlaceEdges, InconsistentEdgeRejected) {
  // A triangle where one edge contradicts the other two: after relaxation
  // the bad edge must be discarded, leaving a consistent placement.
  auto edge = [](std::size_t a, std::size_t b, double tx) {
    ct::MatchEdge e;
    e.a = a;
    e.b = b;
    e.b_to_a = {{tx, 0}, 0.0};
    e.s3 = 0.9;
    e.anchor_count = 4;
    return e;
  };
  std::vector<ct::MatchEdge> edges = {edge(0, 1, 5), edge(1, 2, 5),
                                      edge(0, 2, 30)};  // liar
  const auto result = ct::place_edges(3, edges, {});
  EXPECT_EQ(result.placed_count, 3u);
  EXPECT_EQ(result.edges.size(), 2u);  // the liar was pruned
  EXPECT_NEAR(result.global_pose[2]->position.x -
                  result.global_pose[0]->position.x,
              10.0, 1.0);
}

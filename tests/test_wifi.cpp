// Tests for the Wi-Fi propagation substrate and the Walkie-Markie-style
// baseline.
#include <gtest/gtest.h>

#include "bench_util.hpp"
#include "trajectory/incremental.hpp"
#include "sim/buildings.hpp"
#include "sim/scene.hpp"
#include "wifi/model.hpp"
#include "wifi/walkie_markie.hpp"

namespace cw = crowdmap::wifi;
namespace cs = crowdmap::sim;
namespace cc = crowdmap::common;
using crowdmap::geometry::Vec2;

namespace {

cw::WifiModel lab_model(int n_aps = 6, std::uint64_t seed = 0x31F1) {
  const auto spec = cs::lab1();
  const auto scene = cs::Scene::from_spec(spec, seed);
  std::vector<crowdmap::geometry::Segment> walls;
  for (const auto& wall : scene.walls()) walls.push_back(wall.seg);
  return cw::WifiModel(cw::place_access_points(spec, n_aps, seed),
                       std::move(walls), {}, seed);
}

}  // namespace

TEST(WifiModel, ApPlacementOnHallways) {
  const auto spec = cs::lab1();
  const auto aps = cw::place_access_points(spec, 6, 1);
  ASSERT_EQ(aps.size(), 6u);
  for (const auto& ap : aps) {
    EXPECT_TRUE(spec.in_hallway(ap.position)) << ap.id;
  }
}

TEST(WifiModel, RssiDecaysWithDistance) {
  const auto model = lab_model();
  const auto& ap = model.access_points().front();
  cc::Rng rng(2);
  double near = 0.0;
  double far = 0.0;
  for (int k = 0; k < 50; ++k) {
    near += model.rssi(ap, ap.position + Vec2{1, 0}, rng);
    far += model.rssi(ap, ap.position + Vec2{15, 0}, rng);
  }
  EXPECT_GT(near / 50, far / 50 + 10.0);
}

TEST(WifiModel, SensitivityFloor) {
  const auto model = lab_model();
  const auto& ap = model.access_points().front();
  cc::Rng rng(3);
  const double level = model.rssi(ap, ap.position + Vec2{500, 500}, rng);
  EXPECT_EQ(level, model.params().sensitivity_dbm);
}

TEST(WifiModel, ShadowingIsPositionStable) {
  const auto model = lab_model();
  const auto& ap = model.access_points().front();
  const Vec2 p = ap.position + Vec2{5, 0};
  // Average out measurement noise at one position twice: the stable
  // component (path loss + shadowing) must agree.
  auto mean_at = [&](std::uint64_t seed) {
    cc::Rng rng(seed);
    double acc = 0.0;
    for (int k = 0; k < 200; ++k) acc += model.rssi(ap, p, rng);
    return acc / 200;
  };
  EXPECT_NEAR(mean_at(4), mean_at(5), 1.0);
}

TEST(WifiModel, ScanCoversAllAps) {
  const auto model = lab_model(5);
  cc::Rng rng(6);
  EXPECT_EQ(model.scan({10, 0}, rng).size(), 5u);
}

TEST(WalkieMarkie, MarksAtClosestApproach) {
  const auto model = lab_model(6, 0x31F1);
  const auto pool = crowdmap::bench::make_walk_pool(cs::lab1(), 2, 0.0, 0x31F2);
  cc::Rng rng(7);
  for (const auto& traj : pool) {
    const auto marks = cw::detect_marks(traj, model, rng);
    for (const auto& mark : marks) {
      // The marked key-frame's true position is close to the AP — closer
      // than the trajectory's endpoints are.
      const auto& ap = model.access_points()[static_cast<std::size_t>(mark.ap_id)];
      const double at_mark =
          traj.keyframes[mark.keyframe_index].true_position.distance_to(ap.position);
      const double at_start =
          traj.keyframes.front().true_position.distance_to(ap.position);
      const double at_end =
          traj.keyframes.back().true_position.distance_to(ap.position);
      EXPECT_LT(at_mark, std::max(at_start, at_end) + 1.0);
    }
  }
}

TEST(WalkieMarkie, AggregatesOverlappingWalks) {
  const auto model = lab_model(8, 0x31F1);
  const auto pool = crowdmap::bench::make_walk_pool(cs::lab1(), 10, 0.0, 0x31F3);
  cc::Rng rng(8);
  const auto result = cw::aggregate_by_wifi_marks(pool, model, {}, rng);
  // Wi-Fi marks are coarse but should still connect a fair share.
  EXPECT_GE(result.placed_count, pool.size() / 2);
}

TEST(WalkieMarkie, CoarserThanVisualAnchors) {
  // The motivating comparison: placement error via Wi-Fi marks should be
  // clearly worse than via CrowdMap's visual key-frame anchors on the same
  // pool.
  const auto model = lab_model(8, 0x31F1);
  const auto pool = crowdmap::bench::make_walk_pool(cs::lab1(), 10, 0.0, 0x31F4);
  cc::Rng rng(9);
  const auto wifi = cw::aggregate_by_wifi_marks(pool, model, {}, rng);
  const auto visual = crowdmap::trajectory::aggregate_trajectories(pool, {});

  auto mean_error = [&](const crowdmap::trajectory::AggregationResult& result) {
    const auto align = crowdmap::floorplan::align_to_truth(pool, result);
    if (!align) return 1e9;
    double err = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (!result.global_pose[i]) continue;
      for (const auto& kf : pool[i].keyframes) {
        err += align->apply(result.global_pose[i]->apply(kf.position))
                   .distance_to(kf.true_position);
        ++n;
      }
    }
    return n ? err / n : 1e9;
  };
  EXPECT_LT(mean_error(visual), mean_error(wifi));
}

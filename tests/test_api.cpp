// Tests for the api::v1 facade and incremental recomputation semantics:
// submission-order independence, warm-vs-cold byte identity, cache reuse
// across rebuilds, persistence warm-start, and background refresh.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "api/crowdmap.hpp"
#include "cloud/docstore.hpp"
#include "common/rng.hpp"
#include "floorplan/serialize.hpp"
#include "sim/buildings.hpp"
#include "sim/campaign.hpp"

namespace ap = crowdmap::api::v1;
namespace cs = crowdmap::sim;
namespace co = crowdmap::core;
namespace cc = crowdmap::common;
namespace fp = crowdmap::floorplan;

namespace {

std::vector<cs::SensorRichVideo> tiny_campaign(std::uint64_t seed) {
  std::vector<cs::SensorRichVideo> out;
  cc::Rng rng(seed);
  const auto spec = cs::random_building(2, rng);
  cs::CampaignOptions options;
  options.users = 2;
  options.room_videos_per_room = 1;
  options.hallway_walks = 4;
  options.junk_fraction = 0.0;
  options.sim.fps = 3.0;
  cs::generate_campaign_streaming(spec, options, seed,
                                  [&out](cs::SensorRichVideo&& video) {
                                    out.push_back(std::move(video));
                                  });
  return out;
}

ap::Client make_client(co::PipelineConfig config = co::PipelineConfig::fast_profile()) {
  ap::ClientOptions options;
  options.config = std::move(config);
  return ap::Client(std::move(options));
}

std::string plan_bytes(const co::PipelineResult& result) {
  const auto bytes = fp::encode_floorplan(result.plan);
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace

TEST(Api, SubmissionOrderDoesNotChangeThePlan) {
  const auto videos = tiny_campaign(810);
  ASSERT_GE(videos.size(), 3u);
  const std::string building = videos.front().building;
  const int floor = videos.front().floor;

  auto forward = make_client();
  for (const auto& video : videos) ASSERT_TRUE(forward.submit_video(video).accepted);
  const auto plan_fwd = forward.build_plan({building, floor, std::nullopt});

  auto reversed = make_client();
  for (auto it = videos.rbegin(); it != videos.rend(); ++it) {
    ASSERT_TRUE(reversed.submit_video(*it).accepted);
  }
  const auto plan_rev = reversed.build_plan({building, floor, std::nullopt});

  EXPECT_EQ(plan_bytes(plan_fwd.result), plan_bytes(plan_rev.result));
  EXPECT_EQ(plan_fwd.result.degradation.to_string(),
            plan_rev.result.degradation.to_string());
}

TEST(Api, IncrementalRefreshMatchesColdRebuildByteForByte) {
  const auto videos = tiny_campaign(811);
  ASSERT_GE(videos.size(), 2u);
  const std::string building = videos.front().building;
  const int floor = videos.front().floor;

  // Warm path: N-1 uploads, build, then the last upload arrives and we
  // rebuild incrementally.
  auto warm = make_client();
  for (std::size_t v = 0; v + 1 < videos.size(); ++v) {
    ASSERT_TRUE(warm.submit_video(videos[v]).accepted);
  }
  (void)warm.build_plan({building, floor, std::nullopt});
  ASSERT_TRUE(warm.submit_video(videos.back()).accepted);
  const auto incremental = warm.build_plan({building, floor, std::nullopt});

  // Cold path: all uploads, one build, no cache history.
  auto cold = make_client();
  for (const auto& video : videos) ASSERT_TRUE(cold.submit_video(video).accepted);
  const auto scratch = cold.build_plan({building, floor, std::nullopt});

  EXPECT_EQ(plan_bytes(incremental.result), plan_bytes(scratch.result));
  EXPECT_EQ(incremental.result.diagnostics.trajectories_kept,
            scratch.result.diagnostics.trajectories_kept);

  // The refresh replayed prior-corpus pair decisions instead of recomputing.
  EXPECT_GT(incremental.cache.pairs_reused, 0u);
  EXPECT_GT(incremental.cache.artifact_hits, 0u);
  EXPECT_EQ(scratch.cache.artifact_hits, 0u);  // first build is all misses
}

TEST(Api, RepeatBuildReusesEverythingAndKeepsConfigHoisted) {
  // Regression for the per-build config/state rebuild: a second build over
  // an unchanged corpus must replay every cached stage (the planner keeps
  // the artifact cache, S2 memo and hashed corpus across refreshes) and
  // still return the same bytes.
  const auto videos = tiny_campaign(812);
  const std::string building = videos.front().building;
  const int floor = videos.front().floor;

  auto client = make_client();
  for (const auto& video : videos) ASSERT_TRUE(client.submit_video(video).accepted);
  const auto first = client.build_plan({building, floor, std::nullopt});
  const auto second = client.build_plan({building, floor, std::nullopt});

  EXPECT_EQ(plan_bytes(first.result), plan_bytes(second.result));
  EXPECT_EQ(second.cache.pairs_reused, second.cache.pairs_total);
  EXPECT_GT(second.cache.rooms_total, 0u);
  EXPECT_EQ(second.cache.rooms_reused, second.cache.rooms_total);
  EXPECT_TRUE(second.cache.skeleton_reused);
  EXPECT_TRUE(second.cache.arrange_reused);
  EXPECT_EQ(second.cache.artifact_misses, 0u);
  // The S2 memo also persists across refreshes now that the planner owns it.
  EXPECT_EQ(second.result.diagnostics.s2_cache_misses, 0u);
}

TEST(Api, PersistedCacheWarmsARestartedBackend) {
  const auto videos = tiny_campaign(813);
  const std::string building = videos.front().building;
  const int floor = videos.front().floor;

  auto original = make_client();
  for (const auto& video : videos) ASSERT_TRUE(original.submit_video(video).accepted);
  const auto before = original.build_plan({building, floor, std::nullopt});
  ASSERT_TRUE(original.persist_artifact_cache(building, floor));
  // The snapshot is a reserved system document: floor queries still return
  // only the uploads themselves.
  for (const auto& id :
       original.document_store().ids_for_floor(building, floor)) {
    EXPECT_EQ(id.rfind("video-", 0), 0u) << "snapshot leaked into " << id;
  }

  auto restarted = make_client();
  EXPECT_GT(restarted.warm_artifact_cache_from(original.document_store()), 0u);
  for (const auto& video : videos) ASSERT_TRUE(restarted.submit_video(video).accepted);
  const auto after = restarted.build_plan({building, floor, std::nullopt});

  EXPECT_EQ(plan_bytes(before.result), plan_bytes(after.result));
  // First build after the restart already replays warmed artifacts.
  EXPECT_GT(after.cache.artifact_hits, 0u);
  EXPECT_EQ(after.cache.pairs_reused, after.cache.pairs_total);
}

TEST(Api, MalformedCacheSnapshotRejectsCleanlyAndFallsBackCold) {
  // Warm-start resilience (docs/DURABILITY.md): truncated or corrupt CMC1
  // snapshot bytes must produce a clean rejection — counted in
  // crowdmap_cache_warmstart_rejected_total — and the restarted backend
  // must fall back to a cold build that still serializes the same plan.
  const auto videos = tiny_campaign(816);
  const std::string building = videos.front().building;
  const int floor = videos.front().floor;

  auto original = make_client();
  for (const auto& video : videos) ASSERT_TRUE(original.submit_video(video).accepted);
  const auto before = original.build_plan({building, floor, std::nullopt});
  ASSERT_TRUE(original.persist_artifact_cache(building, floor));

  // A predecessor store whose snapshot bytes were mangled at rest: one
  // truncated mid-entry, one with the CMC1 magic flipped.
  crowdmap::cloud::DocumentStore truncated_store;
  crowdmap::cloud::DocumentStore corrupted_store;
  std::size_t snapshots_seen = 0;
  for (const auto& doc : original.document_store().export_documents()) {
    const auto kind = doc.metadata.find("kind");
    if (kind != doc.metadata.end() && kind->second == "artifact-cache") {
      ++snapshots_seen;
      ASSERT_GT(doc.payload.size(), 8u);
      auto truncated = doc;
      truncated.payload.resize(truncated.payload.size() / 2);
      truncated_store.put(std::move(truncated));
      auto corrupted = doc;
      corrupted.payload[0] ^= 0xFF;
      corrupted_store.put(std::move(corrupted));
    } else {
      truncated_store.put(doc);
      corrupted_store.put(doc);
    }
  }
  ASSERT_EQ(snapshots_seen, 1u);

  auto restarted = make_client();
  EXPECT_EQ(restarted.warm_artifact_cache_from(truncated_store), 0u);
  EXPECT_EQ(restarted.stats().cache_warmstart_rejected, 1u);
  EXPECT_EQ(restarted.warm_artifact_cache_from(corrupted_store), 0u);
  EXPECT_EQ(restarted.stats().cache_warmstart_rejected, 2u);

  // Cold fallback: nothing was warmed, the first build is all misses, and
  // the plan bytes still match the original backend's.
  for (const auto& video : videos) ASSERT_TRUE(restarted.submit_video(video).accepted);
  const auto after = restarted.build_plan({building, floor, std::nullopt});
  EXPECT_EQ(plan_bytes(before.result), plan_bytes(after.result));
  EXPECT_EQ(after.cache.artifact_hits, 0u);
}

TEST(Api, BackgroundRefreshServesLatestPlanWithoutABuildCall) {
  auto config = co::PipelineConfig::fast_profile();
  config.incremental.background_refresh = true;
  auto client = make_client(std::move(config));

  const auto videos = tiny_campaign(814);
  const std::string building = videos.front().building;
  const int floor = videos.front().floor;
  EXPECT_EQ(client.latest_plan(building, floor), nullptr);
  for (const auto& video : videos) ASSERT_TRUE(client.submit_video(video).accepted);
  client.drain();

  const auto latest = client.latest_plan(building, floor);
  ASSERT_NE(latest, nullptr);
  EXPECT_GT(latest->diagnostics.trajectories_kept, 0u);

  // A foreground build over the same corpus returns the same bytes the
  // background refresh computed.
  const auto built = client.build_plan({building, floor, std::nullopt});
  EXPECT_EQ(plan_bytes(*latest), plan_bytes(built.result));
}

TEST(Api, VersionAliasResolvesToV2AndV1StaysPinned) {
  // api::Client resolves to the newest version (v2, the inline namespace);
  // the pinned v1 name this suite uses is a distinct, still-compiling type.
  static_assert(std::is_same_v<crowdmap::api::Client, crowdmap::api::v2::Client>);
  static_assert(std::is_same_v<ap::Client, crowdmap::api::v1::Client>);
  static_assert(!std::is_same_v<crowdmap::api::Client, crowdmap::api::v1::Client>);
  SUCCEED();
}

TEST(Api, DisabledCacheStillBuildsIdenticalPlans) {
  auto config = co::PipelineConfig::fast_profile();
  config.incremental.artifact_cache_bytes = 0;  // caching off
  auto uncached = make_client(config);
  auto cached = make_client(co::PipelineConfig::fast_profile());

  const auto videos = tiny_campaign(815);
  const std::string building = videos.front().building;
  const int floor = videos.front().floor;
  for (const auto& video : videos) {
    ASSERT_TRUE(uncached.submit_video(video).accepted);
    ASSERT_TRUE(cached.submit_video(video).accepted);
  }
  (void)cached.build_plan({building, floor, std::nullopt});
  const auto warm = cached.build_plan({building, floor, std::nullopt});
  const auto plain = uncached.build_plan({building, floor, std::nullopt});
  (void)uncached.build_plan({building, floor, std::nullopt});

  EXPECT_EQ(plan_bytes(warm.result), plan_bytes(plain.result));
  EXPECT_EQ(uncached.stats().artifact_cache.hits, 0u);
  EXPECT_FALSE(uncached.persist_artifact_cache(building, floor));
}

// Unit tests for crowdmap::common — RNG, stats, expected, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/expected.hpp"
#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"

namespace cc = crowdmap::common;

// ------------------------------------------------------------------ Rng ---

TEST(Rng, DeterministicForSameSeed) {
  cc::Rng a(42);
  cc::Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  cc::Rng a(1);
  cc::Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.next_u64() == b.next_u64());
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  cc::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  cc::Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values hit
}

TEST(Rng, NormalMomentsApproximate) {
  cc::Rng rng(13);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.normal(2.0, 3.0));
  EXPECT_NEAR(cc::mean(samples), 2.0, 0.1);
  EXPECT_NEAR(cc::stddev(samples), 3.0, 0.1);
}

TEST(Rng, ChanceExtremes) {
  cc::Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  cc::Rng a(99);
  cc::Rng child = a.fork();
  // The child stream should not replay the parent's output.
  cc::Rng b(99);
  (void)b.next_u64();  // advance like the fork did
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (child.next_u64() == b.next_u64());
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, StreamIsStableAndTagDependent) {
  const cc::Rng base(123);
  cc::Rng s1 = base.stream(7);
  cc::Rng s1_again = base.stream(7);
  cc::Rng s2 = base.stream(8);
  EXPECT_EQ(s1.next_u64(), s1_again.next_u64());
  EXPECT_NE(base.stream(7).next_u64(), s2.next_u64());
}

TEST(Hashing, HashToUnitRange) {
  std::uint64_t state = 5;
  for (int i = 0; i < 1000; ++i) {
    const double u = cc::hash_to_unit(cc::splitmix64(state));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Hashing, CombineOrderSensitive) {
  EXPECT_NE(cc::hash_combine(1, 2), cc::hash_combine(2, 1));
}

// ------------------------------------------------------------- mathutil ---

TEST(MathUtil, WrapAngleRange) {
  for (double a = -20.0; a < 20.0; a += 0.37) {
    const double w = cc::wrap_angle(a);
    EXPECT_GT(w, -cc::kPi - 1e-12);
    EXPECT_LE(w, cc::kPi + 1e-12);
    EXPECT_NEAR(std::sin(w), std::sin(a), 1e-9);
    EXPECT_NEAR(std::cos(w), std::cos(a), 1e-9);
  }
}

TEST(MathUtil, AngleDiffShortestPath) {
  EXPECT_NEAR(cc::angle_diff(0.1, -0.1), 0.2, 1e-12);
  EXPECT_NEAR(cc::angle_diff(-3.1, 3.1), 2 * cc::kPi - 6.2, 1e-9);
}

TEST(MathUtil, Deg2RadRoundTrip) {
  EXPECT_NEAR(cc::rad2deg(cc::deg2rad(54.4)), 54.4, 1e-12);
}

TEST(MathUtil, RelativeError) {
  EXPECT_NEAR(cc::relative_error(11.0, 10.0), 0.1, 1e-12);
  EXPECT_NEAR(cc::relative_error(9.0, 10.0), 0.1, 1e-12);
  EXPECT_NEAR(cc::relative_error(3.0, 0.0), 3.0, 1e-12);
}

// ---------------------------------------------------------------- stats ---

TEST(Stats, MeanStddevBasics) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_NEAR(cc::mean(v), 3.0, 1e-12);
  EXPECT_NEAR(cc::stddev(v), std::sqrt(2.5), 1e-12);
  EXPECT_EQ(cc::mean({}), 0.0);
  EXPECT_EQ(cc::stddev(std::vector<double>{1.0}), 0.0);
}

TEST(Stats, PercentileInterpolation) {
  const std::vector<double> v = {10, 20, 30, 40};
  EXPECT_NEAR(cc::percentile(v, 0), 10, 1e-12);
  EXPECT_NEAR(cc::percentile(v, 100), 40, 1e-12);
  EXPECT_NEAR(cc::percentile(v, 50), 25, 1e-12);
}

TEST(Stats, SummaryFields) {
  const std::vector<double> v = {5, 1, 3, 2, 4};
  const auto s = cc::summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_NEAR(s.min, 1, 1e-12);
  EXPECT_NEAR(s.max, 5, 1e-12);
  EXPECT_NEAR(s.median, 3, 1e-12);
}

TEST(EmpiricalCdf, MonotoneAndBounded) {
  cc::EmpiricalCdf cdf({3.0, 1.0, 2.0, 2.0});
  EXPECT_EQ(cdf.at(0.5), 0.0);
  EXPECT_NEAR(cdf.at(1.0), 0.25, 1e-12);
  EXPECT_NEAR(cdf.at(2.0), 0.75, 1e-12);
  EXPECT_NEAR(cdf.at(10.0), 1.0, 1e-12);
  double prev = -1;
  for (double x = 0; x < 4; x += 0.1) {
    EXPECT_GE(cdf.at(x), prev);
    prev = cdf.at(x);
  }
}

TEST(EmpiricalCdf, QuantileInverse) {
  cc::EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_NEAR(cdf.quantile(0.25), 1.0, 1e-12);
  EXPECT_NEAR(cdf.quantile(1.0), 4.0, 1e-12);
  EXPECT_THROW(cc::EmpiricalCdf({}).quantile(0.5), std::logic_error);
}

TEST(EmpiricalCdf, TableHasRows) {
  cc::EmpiricalCdf cdf({1.0, 2.0, 3.0});
  const std::string table = cdf.to_table(5);
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 5);
}

TEST(Histogram, BinningAndRange) {
  cc::Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-1.0);   // ignored
  h.add(10.0);   // ignored (half-open)
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_NEAR(h.bin_center(0), 0.5, 1e-12);
  EXPECT_THROW(cc::Histogram(1.0, 1.0, 4), std::invalid_argument);
}

// ------------------------------------------------------------- expected ---

TEST(Expected, ValueSide) {
  cc::Expected<int> e(5);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value(), 5);
  EXPECT_EQ(e.value_or(9), 5);
  EXPECT_THROW((void)e.error(), std::logic_error);
}

TEST(Expected, ErrorSide) {
  cc::Expected<int> e(cc::make_error("nope", "something failed"));
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.error().code, "nope");
  EXPECT_EQ(e.value_or(9), 9);
  EXPECT_THROW((void)e.value(), std::logic_error);
}

// ----------------------------------------------------------- ThreadPool ---

TEST(ThreadPool, ExecutesSubmittedTasks) {
  cc::ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&counter, i] {
      counter.fetch_add(1);
      return i * 2;
    }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * 2);
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, WaitIdleDrainsQueue) {
  cc::ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    (void)pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 16);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  cc::ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, AtLeastOneWorker) {
  cc::ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  cc::Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(sw.elapsed_ms(), 15.0);
  sw.restart();
  EXPECT_LT(sw.elapsed_ms(), 15.0);
}

// ------------------------------------------------------------------ log ---

#include "common/log.hpp"

TEST(Log, LevelRoundTrip) {
  const auto prev = cc::log_level();
  cc::set_log_level(cc::LogLevel::kError);
  EXPECT_EQ(cc::log_level(), cc::LogLevel::kError);
  cc::set_log_level(prev);
}

TEST(Log, StreamBelowThresholdIsSilentAndSafe) {
  const auto prev = cc::log_level();
  cc::set_log_level(cc::LogLevel::kOff);
  CROWDMAP_LOG(kDebug, "test") << "never shown " << 42;
  CROWDMAP_LOG(kError, "test") << "also filtered at kOff";
  cc::set_log_level(prev);
  SUCCEED();
}

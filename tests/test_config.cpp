// Tests for configuration files and pipeline config overrides, plus the
// drift pins that keep config_key_table(), --help-config and docs/CONFIG.md
// describing the same key set.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/config_file.hpp"
#include "core/config_overrides.hpp"

namespace cc = crowdmap::common;
namespace co = crowdmap::core;

TEST(ConfigFile, ParsesKeysCommentsAndBlanks) {
  const auto config = cc::ConfigFile::parse(
      "# a comment\n"
      "alpha = 1.5\n"
      "\n"
      "name = hello world  # trailing comment\n"
      "flag=true\n");
  EXPECT_TRUE(config.has("alpha"));
  EXPECT_EQ(*config.get("name"), "hello world");
  EXPECT_EQ(config.get_double("alpha", 0.0), 1.5);
  EXPECT_TRUE(config.get_bool("flag", false));
  EXPECT_FALSE(config.has("missing"));
  EXPECT_EQ(config.get_int("missing", 7), 7);
}

TEST(ConfigFile, MalformedLineThrows) {
  EXPECT_THROW((void)cc::ConfigFile::parse("no equals sign"), std::runtime_error);
  EXPECT_THROW((void)cc::ConfigFile::parse("= valueless"), std::runtime_error);
}

TEST(ConfigFile, TypeErrorsThrow) {
  const auto config = cc::ConfigFile::parse("x = abc\ny = 1.5zz\n");
  EXPECT_THROW((void)config.get_double("x", 0), std::runtime_error);
  EXPECT_THROW((void)config.get_int("y", 0), std::runtime_error);
  EXPECT_THROW((void)config.get_bool("x", false), std::runtime_error);
}

TEST(ConfigFile, MissingFileThrows) {
  EXPECT_THROW((void)cc::ConfigFile::load("/nonexistent/conf"), std::runtime_error);
}

TEST(ConfigOverrides, AppliesKnownKeys) {
  co::PipelineConfig config;
  const auto file = cc::ConfigFile::parse(
      "match.h_s = 0.7\n"
      "match.h_f = 0.12\n"
      "lcss.epsilon = 2.0\n"
      "lcss.delta = 12\n"
      "grid.cell_size = 0.25\n"
      "skeleton.alpha = 2.5\n"
      "layout.hypotheses = 500\n"
      "stitch.width = 256\n"
      "filter.min_keyframes = 5\n");
  co::apply_config_overrides(config, file);
  EXPECT_EQ(config.aggregation.match.h_s, 0.7);
  EXPECT_EQ(config.aggregation.match.h_f, 0.12);
  EXPECT_EQ(config.aggregation.match.lcss.epsilon, 2.0);
  EXPECT_EQ(config.aggregation.match.lcss.delta, 12);
  EXPECT_EQ(config.grid_cell_size, 0.25);
  EXPECT_EQ(config.skeleton.alpha, 2.5);
  EXPECT_EQ(config.layout.hypotheses, 500);
  EXPECT_EQ(config.stitch.output_width, 256);
  EXPECT_EQ(config.min_keyframes, 5u);
}

TEST(ConfigOverrides, UnknownKeyThrows) {
  co::PipelineConfig config;
  const auto file = cc::ConfigFile::parse("match.hs = 0.7\n");  // typo
  EXPECT_THROW(co::apply_config_overrides(config, file), std::runtime_error);
}

TEST(ConfigOverrides, AbsentKeysLeaveDefaults) {
  co::PipelineConfig config;
  const co::PipelineConfig defaults;
  co::apply_config_overrides(config, cc::ConfigFile::parse(""));
  EXPECT_EQ(config.aggregation.match.h_s, defaults.aggregation.match.h_s);
  EXPECT_EQ(config.grid_cell_size, defaults.grid_cell_size);
  EXPECT_EQ(config.layout.hypotheses, defaults.layout.hypotheses);
}

TEST(ConfigOverrides, DeprecatedAliasesStillApply) {
  co::PipelineConfig config;
  const auto file = cc::ConfigFile::parse(
      "layout.shards = 3\n"
      "skeleton.dilate = 4\n"
      "parallel.s2_cache = 123\n");
  co::apply_config_overrides(config, file);
  EXPECT_EQ(config.layout.scoring_shards, 3);
  EXPECT_EQ(config.skeleton.final_dilate_cells, 4);
  EXPECT_EQ(config.parallel.s2_cache_capacity, 123u);
}

TEST(ConfigOverrides, CanonicalAndAliasTogetherThrow) {
  co::PipelineConfig config;
  const auto file = cc::ConfigFile::parse(
      "layout.scoring_shards = 3\n"
      "layout.shards = 5\n");
  EXPECT_THROW(co::apply_config_overrides(config, file), std::runtime_error);
}

TEST(ConfigOverrides, CacheKeysApply) {
  co::PipelineConfig config;
  const auto file = cc::ConfigFile::parse(
      "cache.artifact_bytes = 1024\n"
      "cache.background_refresh = true\n");
  co::apply_config_overrides(config, file);
  EXPECT_EQ(config.incremental.artifact_cache_bytes, 1024u);
  EXPECT_TRUE(config.incremental.background_refresh);
}

TEST(ConfigOverrides, UnparsableValueThrows) {
  co::PipelineConfig config;
  EXPECT_THROW(co::apply_config_overrides(
                   config, cc::ConfigFile::parse("layout.hypotheses = abc\n")),
               std::runtime_error);
  EXPECT_THROW(co::apply_config_overrides(
                   config, cc::ConfigFile::parse("match.h_s = 1.5zz\n")),
               std::runtime_error);
  EXPECT_THROW(co::apply_config_overrides(
                   config,
                   cc::ConfigFile::parse("cache.background_refresh = maybe\n")),
               std::runtime_error);
  EXPECT_THROW(co::apply_config_overrides(
                   config, cc::ConfigFile::parse("cache.artifact_bytes = -1\n")),
               std::runtime_error);
}

TEST(ConfigKeyTable, SortedUniqueAndCoveredByHelp) {
  const auto table = co::config_key_table();
  ASSERT_FALSE(table.empty());
  const std::string help = co::config_key_help();
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(std::string(table[i - 1].key), std::string(table[i].key))
          << "table not sorted at " << table[i].key;
    }
    EXPECT_NE(help.find(table[i].key), std::string::npos)
        << "help is missing " << table[i].key;
    if (table[i].alias != nullptr) {
      EXPECT_NE(help.find(table[i].alias), std::string::npos)
          << "help is missing alias " << table[i].alias;
    }
  }
}

TEST(ConfigKeyTable, DocsConfigMdMatchesTable) {
  // docs/CONFIG.md mirrors config_key_table(): every canonical key (and
  // alias) appears as a backticked table row, and the doc has exactly one
  // row per key — so adding a key without documenting it fails here.
  std::ifstream in(std::string(CROWDMAP_SOURCE_DIR) + "/docs/CONFIG.md");
  ASSERT_TRUE(in.good()) << "docs/CONFIG.md is missing";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();

  const auto table = co::config_key_table();
  std::size_t rows = 0;
  std::istringstream lines(doc);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("| `", 0) == 0) ++rows;
  }
  EXPECT_EQ(rows, table.size()) << "docs/CONFIG.md row count drifted";
  for (const auto& info : table) {
    EXPECT_NE(doc.find("`" + std::string(info.key) + "`"), std::string::npos)
        << "docs/CONFIG.md is missing " << info.key;
    if (info.alias != nullptr) {
      EXPECT_NE(doc.find("`" + std::string(info.alias) + "`"),
                std::string::npos)
          << "docs/CONFIG.md is missing alias " << info.alias;
    }
  }
}

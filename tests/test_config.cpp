// Tests for configuration files and pipeline config overrides.
#include <gtest/gtest.h>

#include "common/config_file.hpp"
#include "core/config_overrides.hpp"

namespace cc = crowdmap::common;
namespace co = crowdmap::core;

TEST(ConfigFile, ParsesKeysCommentsAndBlanks) {
  const auto config = cc::ConfigFile::parse(
      "# a comment\n"
      "alpha = 1.5\n"
      "\n"
      "name = hello world  # trailing comment\n"
      "flag=true\n");
  EXPECT_TRUE(config.has("alpha"));
  EXPECT_EQ(*config.get("name"), "hello world");
  EXPECT_EQ(config.get_double("alpha", 0.0), 1.5);
  EXPECT_TRUE(config.get_bool("flag", false));
  EXPECT_FALSE(config.has("missing"));
  EXPECT_EQ(config.get_int("missing", 7), 7);
}

TEST(ConfigFile, MalformedLineThrows) {
  EXPECT_THROW((void)cc::ConfigFile::parse("no equals sign"), std::runtime_error);
  EXPECT_THROW((void)cc::ConfigFile::parse("= valueless"), std::runtime_error);
}

TEST(ConfigFile, TypeErrorsThrow) {
  const auto config = cc::ConfigFile::parse("x = abc\ny = 1.5zz\n");
  EXPECT_THROW((void)config.get_double("x", 0), std::runtime_error);
  EXPECT_THROW((void)config.get_int("y", 0), std::runtime_error);
  EXPECT_THROW((void)config.get_bool("x", false), std::runtime_error);
}

TEST(ConfigFile, MissingFileThrows) {
  EXPECT_THROW((void)cc::ConfigFile::load("/nonexistent/conf"), std::runtime_error);
}

TEST(ConfigOverrides, AppliesKnownKeys) {
  co::PipelineConfig config;
  const auto file = cc::ConfigFile::parse(
      "match.h_s = 0.7\n"
      "match.h_f = 0.12\n"
      "lcss.epsilon = 2.0\n"
      "lcss.delta = 12\n"
      "grid.cell_size = 0.25\n"
      "skeleton.alpha = 2.5\n"
      "layout.hypotheses = 500\n"
      "stitch.width = 256\n"
      "filter.min_keyframes = 5\n");
  co::apply_config_overrides(config, file);
  EXPECT_EQ(config.aggregation.match.h_s, 0.7);
  EXPECT_EQ(config.aggregation.match.h_f, 0.12);
  EXPECT_EQ(config.aggregation.match.lcss.epsilon, 2.0);
  EXPECT_EQ(config.aggregation.match.lcss.delta, 12);
  EXPECT_EQ(config.grid_cell_size, 0.25);
  EXPECT_EQ(config.skeleton.alpha, 2.5);
  EXPECT_EQ(config.layout.hypotheses, 500);
  EXPECT_EQ(config.stitch.output_width, 256);
  EXPECT_EQ(config.min_keyframes, 5u);
}

TEST(ConfigOverrides, UnknownKeyThrows) {
  co::PipelineConfig config;
  const auto file = cc::ConfigFile::parse("match.hs = 0.7\n");  // typo
  EXPECT_THROW(co::apply_config_overrides(config, file), std::runtime_error);
}

TEST(ConfigOverrides, AbsentKeysLeaveDefaults) {
  co::PipelineConfig config;
  const co::PipelineConfig defaults;
  co::apply_config_overrides(config, cc::ConfigFile::parse(""));
  EXPECT_EQ(config.aggregation.match.h_s, defaults.aggregation.match.h_s);
  EXPECT_EQ(config.grid_cell_size, defaults.grid_cell_size);
  EXPECT_EQ(config.layout.hypotheses, defaults.layout.hypotheses);
}

// Unit and property tests for crowdmap::geometry — vectors, poses, segments,
// polygons.
#include <gtest/gtest.h>

#include <cmath>

#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "geometry/polygon.hpp"
#include "geometry/pose2.hpp"
#include "geometry/segment.hpp"
#include "geometry/vec2.hpp"

namespace cg = crowdmap::geometry;
namespace cc = crowdmap::common;
using cg::Vec2;

TEST(Vec2, Arithmetic) {
  const Vec2 a{1, 2};
  const Vec2 b{3, -1};
  EXPECT_EQ(a + b, Vec2(4, 1));
  EXPECT_EQ(a - b, Vec2(-2, 3));
  EXPECT_EQ(a * 2.0, Vec2(2, 4));
  EXPECT_EQ(2.0 * a, Vec2(2, 4));
  EXPECT_EQ(-a, Vec2(-1, -2));
}

TEST(Vec2, DotCrossNorm) {
  const Vec2 a{3, 4};
  EXPECT_NEAR(a.norm(), 5.0, 1e-12);
  EXPECT_NEAR(a.norm_sq(), 25.0, 1e-12);
  EXPECT_NEAR(Vec2(1, 0).dot({0, 1}), 0.0, 1e-12);
  EXPECT_NEAR(Vec2(1, 0).cross({0, 1}), 1.0, 1e-12);  // CCW positive
  EXPECT_NEAR(Vec2(0, 1).cross({1, 0}), -1.0, 1e-12);
}

TEST(Vec2, RotationPreservesNorm) {
  cc::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Vec2 v{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const double angle = rng.uniform(-10, 10);
    EXPECT_NEAR(v.rotated(angle).norm(), v.norm(), 1e-9);
  }
}

TEST(Vec2, RotationQuarterTurn) {
  const Vec2 v{1, 0};
  const Vec2 r = v.rotated(cc::kPi / 2);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
  EXPECT_EQ(v.perp(), Vec2(0, 1));
}

TEST(Vec2, NormalizedHandlesZero) {
  EXPECT_EQ(Vec2(0, 0).normalized(), Vec2(0, 0));
  EXPECT_NEAR(Vec2(5, 0).normalized().x, 1.0, 1e-12);
}

TEST(Vec2, AngleFromAngleRoundTrip) {
  for (double a = -3.0; a < 3.0; a += 0.17) {
    EXPECT_NEAR(Vec2::from_angle(a).angle(), a, 1e-9);
  }
}

TEST(Pose2, IdentityLeavesPointsAlone) {
  const cg::Pose2 id;
  EXPECT_EQ(id.apply({3, 4}), Vec2(3, 4));
}

TEST(Pose2, ApplyRotatesThenTranslates) {
  const cg::Pose2 p{{1, 0}, cc::kPi / 2};
  const Vec2 out = p.apply({1, 0});
  EXPECT_NEAR(out.x, 1.0, 1e-12);
  EXPECT_NEAR(out.y, 1.0, 1e-12);
}

TEST(Pose2, ComposeMatchesSequentialApply) {
  cc::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const cg::Pose2 a{{rng.uniform(-5, 5), rng.uniform(-5, 5)}, rng.uniform(-3, 3)};
    const cg::Pose2 b{{rng.uniform(-5, 5), rng.uniform(-5, 5)}, rng.uniform(-3, 3)};
    const Vec2 p{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const Vec2 via_compose = a.compose(b).apply(p);
    const Vec2 via_sequence = a.apply(b.apply(p));
    EXPECT_NEAR(via_compose.x, via_sequence.x, 1e-9);
    EXPECT_NEAR(via_compose.y, via_sequence.y, 1e-9);
  }
}

TEST(Pose2, InverseRoundTrip) {
  cc::Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const cg::Pose2 p{{rng.uniform(-5, 5), rng.uniform(-5, 5)}, rng.uniform(-3, 3)};
    const Vec2 q{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const Vec2 back = p.inverse().apply(p.apply(q));
    EXPECT_NEAR(back.x, q.x, 1e-9);
    EXPECT_NEAR(back.y, q.y, 1e-9);
  }
}

TEST(Pose2, BetweenRecoversRelative) {
  const cg::Pose2 a{{1, 2}, 0.5};
  const cg::Pose2 b{{-1, 3}, -0.7};
  const cg::Pose2 rel = a.between(b);
  const cg::Pose2 b2 = a.compose(rel);
  EXPECT_NEAR(b2.position.x, b.position.x, 1e-9);
  EXPECT_NEAR(b2.position.y, b.position.y, 1e-9);
  EXPECT_NEAR(cc::angle_diff(b2.theta, b.theta), 0.0, 1e-9);
}

TEST(Segment, LengthAndMidpoint) {
  const cg::Segment s{{0, 0}, {3, 4}};
  EXPECT_NEAR(s.length(), 5.0, 1e-12);
  EXPECT_EQ(s.midpoint(), Vec2(1.5, 2));
  EXPECT_EQ(s.at(0.0), Vec2(0, 0));
  EXPECT_EQ(s.at(1.0), Vec2(3, 4));
}

TEST(Segment, IntersectCrossing) {
  const auto p = cg::intersect({{0, 0}, {2, 2}}, {{0, 2}, {2, 0}});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 1.0, 1e-12);
  EXPECT_NEAR(p->y, 1.0, 1e-12);
}

TEST(Segment, IntersectParallelAndDisjoint) {
  EXPECT_FALSE(cg::intersect({{0, 0}, {1, 0}}, {{0, 1}, {1, 1}}).has_value());
  EXPECT_FALSE(cg::intersect({{0, 0}, {1, 0}}, {{2, -1}, {2, 1}}).has_value());
}

TEST(Segment, IntersectTouchingEndpoint) {
  const auto p = cg::intersect({{0, 0}, {1, 0}}, {{1, 0}, {1, 1}});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 1.0, 1e-9);
}

TEST(Segment, DistancePointSegment) {
  const cg::Segment s{{0, 0}, {10, 0}};
  EXPECT_NEAR(cg::distance_point_segment({5, 3}, s), 3.0, 1e-12);
  EXPECT_NEAR(cg::distance_point_segment({-3, 4}, s), 5.0, 1e-12);  // clamps
  EXPECT_NEAR(cg::distance_point_segment({13, 4}, s), 5.0, 1e-12);
}

TEST(Segment, RayHitsAndMisses) {
  const cg::Segment wall{{5, -1}, {5, 1}};
  const auto hit = cg::ray_segment({0, 0}, {1, 0}, wall);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->distance, 5.0, 1e-9);
  EXPECT_NEAR(hit->t, 0.5, 1e-9);
  EXPECT_FALSE(cg::ray_segment({0, 0}, {-1, 0}, wall).has_value());  // behind
  EXPECT_FALSE(cg::ray_segment({0, 5}, {1, 0}, wall).has_value());   // above
}

TEST(Polygon, RectangleAreaCentroid) {
  const auto r = cg::Polygon::rectangle({2, 3}, 4, 6);
  EXPECT_NEAR(r.area(), 24.0, 1e-12);
  EXPECT_NEAR(r.centroid().x, 2.0, 1e-9);
  EXPECT_NEAR(r.centroid().y, 3.0, 1e-9);
  EXPECT_NEAR(r.perimeter(), 20.0, 1e-12);
}

TEST(Polygon, OrientedRectanglePreservesArea) {
  cc::Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    const double w = rng.uniform(1, 10);
    const double h = rng.uniform(1, 10);
    const auto r = cg::Polygon::oriented_rectangle(
        {rng.uniform(-5, 5), rng.uniform(-5, 5)}, w, h, rng.uniform(0, 3));
    EXPECT_NEAR(r.area(), w * h, 1e-9);
  }
}

TEST(Polygon, ContainsInteriorAndBoundary) {
  const auto r = cg::Polygon::rectangle({0, 0}, 2, 2);
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({1, 0}));   // on edge
  EXPECT_TRUE(r.contains({1, 1}));   // corner
  EXPECT_FALSE(r.contains({1.01, 0}));
  EXPECT_FALSE(r.contains({5, 5}));
}

TEST(Polygon, SignedAreaWinding) {
  const cg::Polygon ccw({{0, 0}, {1, 0}, {1, 1}});
  EXPECT_GT(ccw.signed_area(), 0.0);
  const cg::Polygon cw({{0, 0}, {1, 1}, {1, 0}});
  EXPECT_LT(cw.signed_area(), 0.0);
  EXPECT_GT(cw.ccw().signed_area(), 0.0);
}

TEST(Polygon, BoundingBox) {
  const cg::Polygon p({{1, 2}, {5, -1}, {3, 4}});
  const auto box = p.bounding_box();
  EXPECT_EQ(box.min, Vec2(1, -1));
  EXPECT_EQ(box.max, Vec2(5, 4));
  EXPECT_THROW((void)cg::Polygon().bounding_box(), std::logic_error);
}

TEST(Polygon, TransformedRigid) {
  const auto r = cg::Polygon::rectangle({0, 0}, 2, 2);
  const auto moved = r.transformed({{10, 0}, 0.0});
  EXPECT_NEAR(moved.centroid().x, 10.0, 1e-9);
  EXPECT_NEAR(moved.area(), r.area(), 1e-9);
}

TEST(Polygon, ClipConvexOverlap) {
  const auto a = cg::Polygon::rectangle({0, 0}, 4, 4);
  const auto b = cg::Polygon::rectangle({2, 0}, 4, 4);
  const auto inter = cg::clip_convex(a, b);
  EXPECT_NEAR(inter.area(), 8.0, 1e-9);  // 2 x 4 overlap
}

TEST(Polygon, ClipConvexDisjointEmpty) {
  const auto a = cg::Polygon::rectangle({0, 0}, 2, 2);
  const auto b = cg::Polygon::rectangle({10, 10}, 2, 2);
  EXPECT_NEAR(cg::clip_convex(a, b).area(), 0.0, 1e-9);
}

TEST(Polygon, ClipConvexContained) {
  const auto outer = cg::Polygon::rectangle({0, 0}, 10, 10);
  const auto inner = cg::Polygon::rectangle({1, 1}, 2, 2);
  EXPECT_NEAR(cg::clip_convex(inner, outer).area(), 4.0, 1e-9);
  EXPECT_NEAR(cg::clip_convex(outer, inner).area(), 4.0, 1e-9);
}

TEST(Polygon, IouIdenticalIsOne) {
  const auto r = cg::Polygon::rectangle({0, 0}, 3, 5);
  EXPECT_GT(cg::polygon_iou(r, r, 128), 0.97);
}

TEST(Polygon, IouHalfOverlap) {
  const auto a = cg::Polygon::rectangle({0, 0}, 2, 2);
  const auto b = cg::Polygon::rectangle({1, 0}, 2, 2);
  // overlap 2, union 6 -> 1/3.
  EXPECT_NEAR(cg::polygon_iou(a, b, 256), 1.0 / 3.0, 0.03);
}

TEST(Aabb, IntersectsAndExpand) {
  const cg::Aabb a{{0, 0}, {2, 2}};
  const cg::Aabb b{{1, 1}, {3, 3}};
  const cg::Aabb c{{5, 5}, {6, 6}};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(a.expanded(4.0).intersects(c));
  EXPECT_NEAR(a.area(), 4.0, 1e-12);
  EXPECT_EQ(a.center(), Vec2(1, 1));
}

// Tests for the SURF-style detector/descriptor and the Algorithm 1 matcher.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "imaging/image.hpp"
#include "vision/matcher.hpp"
#include "vision/surf.hpp"

namespace cv = crowdmap::vision;
namespace ci = crowdmap::imaging;
namespace cc = crowdmap::common;

namespace {

/// Textured test image: blobs at hash positions over a midtone background.
ci::Image textured_image(int w, int h, std::uint64_t seed, int dx = 0, int dy = 0) {
  ci::Image img(w, h, 0.5f);
  cc::Rng rng(seed);
  for (int blob = 0; blob < 24; ++blob) {
    const int bx = rng.uniform_int(8, w - 9) + dx;
    const int by = rng.uniform_int(8, h - 9) + dy;
    const double radius = rng.uniform(2.0, 5.0);
    const float value = rng.chance(0.5) ? 0.95f : 0.05f;
    for (int y = -8; y <= 8; ++y) {
      for (int x = -8; x <= 8; ++x) {
        const int px = bx + x;
        const int py = by + y;
        if (px < 0 || py < 0 || px >= w || py >= h) continue;
        const double d = std::hypot(x, y);
        if (d < radius) img.at(px, py) = value;
      }
    }
  }
  return img;
}

}  // namespace

TEST(Surf, DetectsBlobs) {
  const auto img = textured_image(128, 96, 7);
  const auto features = cv::detect_and_describe(img);
  EXPECT_GT(features.size(), 10u);
}

TEST(Surf, NoFeaturesOnFlatImage) {
  const ci::Image flat(128, 96, 0.5f);
  EXPECT_TRUE(cv::detect_and_describe(flat).empty());
}

TEST(Surf, TinyImageReturnsEmpty) {
  EXPECT_TRUE(cv::detect_and_describe(ci::Image(16, 16, 0.5f)).empty());
}

TEST(Surf, DeterministicAcrossCalls) {
  const auto img = textured_image(128, 96, 9);
  const auto f1 = cv::detect_and_describe(img);
  const auto f2 = cv::detect_and_describe(img);
  ASSERT_EQ(f1.size(), f2.size());
  for (std::size_t i = 0; i < f1.size(); ++i) {
    EXPECT_EQ(f1[i].keypoint.x, f2[i].keypoint.x);
    EXPECT_EQ(f1[i].descriptor, f2[i].descriptor);
  }
}

TEST(Surf, DescriptorsAreUnitNorm) {
  const auto features = cv::detect_and_describe(textured_image(128, 96, 11));
  for (const auto& f : features) {
    double norm = 0.0;
    for (const float v : f.descriptor) norm += static_cast<double>(v) * v;
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-3);
  }
}

TEST(Surf, RespectsMaxFeatures) {
  cv::SurfParams params;
  params.max_features = 5;
  const auto features =
      cv::detect_and_describe(textured_image(128, 96, 13), params);
  EXPECT_LE(features.size(), 5u);
}

TEST(Surf, StrongestFirst) {
  const auto features = cv::detect_and_describe(textured_image(128, 96, 15));
  for (std::size_t i = 1; i < features.size(); ++i) {
    EXPECT_GE(features[i - 1].keypoint.response, features[i].keypoint.response);
  }
}

TEST(Surf, DescriptorDistanceBasics) {
  cv::SurfDescriptor a{};
  cv::SurfDescriptor b{};
  a[0] = 1.0f;
  b[1] = 1.0f;
  EXPECT_NEAR(cv::descriptor_distance(a, a), 0.0, 1e-9);
  EXPECT_NEAR(cv::descriptor_distance(a, b), std::sqrt(2.0), 1e-6);
}

TEST(Surf, TranslatedImageMatchesWithOffset) {
  const auto img1 = textured_image(128, 96, 17, 0, 0);
  const auto img2 = textured_image(128, 96, 17, 6, 0);  // blobs shifted +6 px
  const auto f1 = cv::detect_and_describe(img1);
  const auto f2 = cv::detect_and_describe(img2);
  const auto matches = cv::mutual_nn_matches(f1, f2, 0.35, 0.8);
  ASSERT_GT(matches.size(), 5u);
  // Most matched pairs should be ~6 px apart in x.
  int good = 0;
  for (const auto& m : matches) {
    const double dx = f2[m.index2].keypoint.x - f1[m.index1].keypoint.x;
    const double dy = f2[m.index2].keypoint.y - f1[m.index1].keypoint.y;
    if (std::abs(dx - 6.0) < 3.0 && std::abs(dy) < 3.0) ++good;
  }
  EXPECT_GT(static_cast<double>(good) / matches.size(), 0.6);
}

TEST(Matcher, MutualityIsEnforced) {
  const auto f1 = cv::detect_and_describe(textured_image(128, 96, 19));
  const auto f2 = cv::detect_and_describe(textured_image(128, 96, 19));
  const auto matches = cv::mutual_nn_matches(f1, f2, 0.35);
  // Identical images: every match maps a feature to itself; one-to-one.
  std::vector<bool> used2(f2.size(), false);
  for (const auto& m : matches) {
    EXPECT_FALSE(used2[m.index2]) << "match target reused";
    used2[m.index2] = true;
    EXPECT_LT(m.distance, 1e-5);
  }
  EXPECT_EQ(matches.size(), f1.size());
}

TEST(Matcher, UnrelatedImagesFewMatches) {
  const auto f1 = cv::detect_and_describe(textured_image(128, 96, 21));
  const auto f2 = cv::detect_and_describe(textured_image(128, 96, 22));
  const auto matches = cv::mutual_nn_matches(f1, f2, 0.25, 0.8);
  const double s2 = cv::similarity_s2(matches.size(), f1.size(), f2.size());
  EXPECT_LT(s2, 0.2);
}

TEST(Matcher, RatioTestPrunes) {
  const auto f1 = cv::detect_and_describe(textured_image(128, 96, 23));
  const auto f2 = cv::detect_and_describe(textured_image(128, 96, 24));
  const auto loose = cv::mutual_nn_matches(f1, f2, 0.6, 1.0);
  const auto strict = cv::mutual_nn_matches(f1, f2, 0.6, 0.6);
  EXPECT_LE(strict.size(), loose.size());
}

TEST(Matcher, EmptyInputs) {
  const auto f1 = cv::detect_and_describe(textured_image(128, 96, 25));
  EXPECT_TRUE(cv::mutual_nn_matches({}, f1, 0.35).empty());
  EXPECT_TRUE(cv::mutual_nn_matches(f1, {}, 0.35).empty());
}

TEST(SimilarityS2, Formula) {
  // |A| / (|F1| + |F2| - |A|)  (eq. 1).
  EXPECT_NEAR(cv::similarity_s2(10, 20, 30), 10.0 / 40.0, 1e-12);
  EXPECT_NEAR(cv::similarity_s2(0, 20, 30), 0.0, 1e-12);
  EXPECT_NEAR(cv::similarity_s2(20, 20, 20), 1.0, 1e-12);
  EXPECT_EQ(cv::similarity_s2(0, 0, 0), 0.0);
}

TEST(SimilarityS2, MatchScoreIdenticalIsHigh) {
  const auto img = textured_image(128, 96, 27);
  const auto f = cv::detect_and_describe(img);
  EXPECT_GT(cv::match_score_s2(f, f, 0.35), 0.9);
}

// Tests for the observability layer: metric semantics (counter / gauge /
// histogram), registry identity and type safety, concurrent updates, trace
// span nesting and exclusive-time math, golden-format checks of the
// Prometheus / JSON / trace_event exporters, snapshot lookup (absent vs
// zero), percentile derivation and the SLO watchdog.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"

namespace obs = crowdmap::obs;

// ------------------------------------------------------------- metrics ---

TEST(Metrics, CounterIncrements) {
  obs::MetricsRegistry registry;
  auto& c = registry.counter("events_total");
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.increment(4);
  EXPECT_EQ(c.value(), 5u);
}

TEST(Metrics, GaugeSetAndAdd) {
  obs::MetricsRegistry registry;
  auto& g = registry.gauge("depth");
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(Metrics, HistogramBucketsAreInclusiveCeilings) {
  obs::MetricsRegistry registry;
  auto& h = registry.histogram("lat_seconds", {}, {0.1, 1.0});
  h.observe(0.05);  // <= 0.1
  h.observe(0.1);   // boundary lands in the 0.1 bucket, not the next
  h.observe(0.5);   // <= 1.0
  h.observe(7.0);   // +Inf
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);  // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_NEAR(h.sum(), 7.65, 1e-12);
}

TEST(Metrics, HistogramDefaultsToLatencyBuckets) {
  obs::MetricsRegistry registry;
  auto& h = registry.histogram("stage_seconds");
  EXPECT_EQ(h.upper_bounds(), obs::Histogram::default_latency_buckets());
  EXPECT_GE(h.upper_bounds().size(), 10u);
}

TEST(Metrics, SameNameAndLabelsReturnsSameHandle) {
  obs::MetricsRegistry registry;
  auto& a = registry.counter("hits_total", {{"kind", "x"}});
  auto& b = registry.counter("hits_total", {{"kind", "x"}});
  auto& other = registry.counter("hits_total", {{"kind", "y"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  a.increment();
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(other.value(), 0u);
}

TEST(Metrics, LabelOrderDoesNotSplitSeries) {
  obs::MetricsRegistry registry;
  auto& a = registry.counter("multi_total", {{"b", "2"}, {"a", "1"}});
  auto& b = registry.counter("multi_total", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
}

TEST(Metrics, TypeConflictThrows) {
  obs::MetricsRegistry registry;
  (void)registry.counter("dual");
  EXPECT_THROW((void)registry.gauge("dual"), std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("dual"), std::invalid_argument);
}

TEST(Metrics, SnapshotValueLookup) {
  obs::MetricsRegistry registry;
  registry.counter("a_total", {{"k", "v"}}).increment(3);
  registry.gauge("b").set(1.5);
  const auto snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.value("a_total", {{"k", "v"}}), 3.0);
  EXPECT_DOUBLE_EQ(snap.value("b"), 1.5);
  EXPECT_DOUBLE_EQ(snap.value("missing"), 0.0);
  ASSERT_NE(snap.find("a_total"), nullptr);
  EXPECT_EQ(snap.find("a_total")->type, obs::MetricType::kCounter);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(Metrics, ConcurrentIncrementsAreLossless) {
  obs::MetricsRegistry registry;
  auto& c = registry.counter("spam_total");
  auto& h = registry.histogram("spam_seconds", {}, {0.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.increment();
        h.observe(i % 2 ? 0.1 : 1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.bucket_count(0) + h.bucket_count(1), h.count());
}

TEST(Metrics, ConcurrentRegistrationIsSafe) {
  obs::MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 200; ++i) {
        registry.counter("shared_total").increment();
        (void)registry.snapshot();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter("shared_total").value(), 8u * 200u);
}

// --------------------------------------------------------------- trace ---

TEST(Trace, SpansNestIntoATree) {
  obs::Trace trace("run");
  {
    auto outer = trace.scoped("aggregate");
    {
      auto inner = trace.scoped("match");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  const auto snap = trace.snapshot();
  EXPECT_EQ(snap.name, "run");
  ASSERT_EQ(snap.children.size(), 1u);
  EXPECT_EQ(snap.children[0].name, "aggregate");
  ASSERT_EQ(snap.children[0].children.size(), 1u);
  EXPECT_EQ(snap.children[0].children[0].name, "match");
  // Inclusive times nest: parent covers the child.
  EXPECT_GE(snap.children[0].duration_seconds,
            snap.children[0].children[0].duration_seconds);
  EXPECT_GT(snap.children[0].children[0].duration_seconds, 0.0);
}

TEST(Trace, ScopedEndReturnsInclusiveSeconds) {
  obs::Trace trace;
  auto span = trace.scoped("stage");
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double seconds = span.end();
  EXPECT_GT(seconds, 0.0);
  const auto snap = trace.snapshot();
  ASSERT_NE(snap.find("stage"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find("stage")->duration_seconds, seconds);
}

TEST(Trace, ExclusiveTimeSubtractsChildren) {
  obs::SpanRecord parent;
  parent.name = "run";
  parent.duration_seconds = 1.0;
  obs::SpanRecord a;
  a.name = "a";
  a.duration_seconds = 0.3;
  obs::SpanRecord b;
  b.name = "b";
  b.duration_seconds = 0.2;
  parent.children = {a, b};
  EXPECT_NEAR(parent.exclusive_seconds(), 0.5, 1e-12);
  EXPECT_NEAR(a.exclusive_seconds(), 0.3, 1e-12);  // leaf: all self time
}

TEST(Trace, TotalSecondsSumsRepeatedSpans) {
  obs::SpanRecord root;
  root.name = "run";
  for (const double d : {0.1, 0.2, 0.3}) {
    obs::SpanRecord child;
    child.name = "extract";
    child.duration_seconds = d;
    root.children.push_back(child);
  }
  EXPECT_NEAR(root.total_seconds("extract"), 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(root.total_seconds("missing"), 0.0);
}

TEST(Trace, EndSpanOnRootIsANoOp) {
  obs::Trace trace;
  EXPECT_DOUBLE_EQ(trace.end_span(), 0.0);  // nothing open besides the root
  const auto snap = trace.snapshot();
  EXPECT_TRUE(snap.children.empty());
}

TEST(Trace, ToStringRendersTheTree) {
  obs::Trace trace("run");
  { auto span = trace.scoped("aggregate"); }
  const std::string report = trace.to_string();
  EXPECT_NE(report.find("run"), std::string::npos);
  EXPECT_NE(report.find("  aggregate"), std::string::npos);  // indented child
  EXPECT_NE(report.find("ms"), std::string::npos);
}

// ----------------------------------------------------------- exporters ---

TEST(Export, PrometheusGolden) {
  obs::MetricsRegistry registry;
  registry.gauge("test_gauge", {}, "current level").set(2.5);
  auto& h = registry.histogram("test_seconds", {}, {0.1, 1.0}, "latency");
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);
  registry.counter("test_total", {{"kind", "a"}}, "events").increment(3);

  const std::string expected =
      "# HELP test_gauge current level\n"
      "# TYPE test_gauge gauge\n"
      "test_gauge 2.5\n"
      "# HELP test_seconds latency\n"
      "# TYPE test_seconds histogram\n"
      "test_seconds_bucket{le=\"0.1\"} 1\n"
      "test_seconds_bucket{le=\"1\"} 2\n"
      "test_seconds_bucket{le=\"+Inf\"} 3\n"
      "test_seconds_sum 5.55\n"
      "test_seconds_count 3\n"
      "# HELP test_total events\n"
      "# TYPE test_total counter\n"
      "test_total{kind=\"a\"} 3\n";
  EXPECT_EQ(obs::to_prometheus(registry.snapshot()), expected);
}

TEST(Export, JsonGoldenCounter) {
  obs::MetricsRegistry registry;
  registry.counter("c_total", {{"k", "v"}}, "h").increment(2);
  const std::string expected =
      "{\"metrics\":[\n"
      "{\"name\":\"c_total\",\"type\":\"counter\",\"help\":\"h\","
      "\"series\":[{\"labels\":{\"k\":\"v\"},\"value\":2}]}\n"
      "]}\n";
  EXPECT_EQ(obs::to_json(registry.snapshot()), expected);
}

TEST(Export, JsonGoldenHistogram) {
  obs::MetricsRegistry registry;
  auto& h = registry.histogram("h_seconds", {}, {0.5});
  h.observe(0.25);
  h.observe(2.0);
  const std::string expected =
      "{\"metrics\":[\n"
      "{\"name\":\"h_seconds\",\"type\":\"histogram\",\"help\":\"\","
      "\"series\":[{\"labels\":{},\"count\":2,\"sum\":2.25,"
      "\"buckets\":[{\"le\":0.5,\"count\":1},{\"le\":\"+Inf\",\"count\":2}]}"
      "]}\n"
      "]}\n";
  EXPECT_EQ(obs::to_json(registry.snapshot()), expected);
}

TEST(Export, EscapesSpecialCharacters) {
  obs::MetricsRegistry registry;
  registry.counter("esc_total", {{"path", "a\"b\\c\nd"}}).increment();
  const std::string prom = obs::to_prometheus(registry.snapshot());
  EXPECT_NE(prom.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

// Label values escape backslash, double-quote and newline — golden for the
// full exposition line, not just a substring probe.
TEST(Export, PrometheusLabelEscapingGolden) {
  obs::MetricsRegistry registry;
  registry.counter("esc_total", {{"path", "C:\\tmp\n\"x\""}}, "paths seen")
      .increment(7);
  const std::string expected =
      "# HELP esc_total paths seen\n"
      "# TYPE esc_total counter\n"
      "esc_total{path=\"C:\\\\tmp\\n\\\"x\\\"\"} 7\n";
  EXPECT_EQ(obs::to_prometheus(registry.snapshot()), expected);
}

// HELP text escapes only backslash and newline; a double quote stays
// literal there (the exposition format quotes only label values).
TEST(Export, PrometheusHelpEscapesBackslashAndNewlineOnly) {
  obs::MetricsRegistry registry;
  registry.gauge("help_gauge", {}, "say \"hi\" \\ twice\nsecond line").set(1);
  const std::string expected =
      "# HELP help_gauge say \"hi\" \\\\ twice\\nsecond line\n"
      "# TYPE help_gauge gauge\n"
      "help_gauge 1\n";
  EXPECT_EQ(obs::to_prometheus(registry.snapshot()), expected);
}

// The JSON exporter must keep escaping quotes everywhere, including help.
TEST(Export, JsonStillEscapesQuotesInHelp) {
  obs::MetricsRegistry registry;
  registry.counter("q_total", {}, "a \"quoted\" word").increment();
  const std::string json = obs::to_json(registry.snapshot());
  EXPECT_NE(json.find("\"help\":\"a \\\"quoted\\\" word\""),
            std::string::npos);
}

// ------------------------------------------------- snapshot lookup ---

TEST(Metrics, FindSeriesDistinguishesAbsentFromZero) {
  obs::MetricsRegistry registry;
  registry.counter("zero_total", {{"k", "v"}}, "help");  // registered, 0
  const obs::MetricsSnapshot snapshot = registry.snapshot();

  const obs::SeriesSnapshot* series =
      snapshot.find_series("zero_total", {{"k", "v"}});
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->value, 0.0);
  EXPECT_TRUE(snapshot.has("zero_total", {{"k", "v"}}));

  // value() cannot tell these apart; find_series()/has() must.
  EXPECT_EQ(snapshot.value("missing_total"), 0.0);
  EXPECT_EQ(snapshot.find_series("missing_total"), nullptr);
  EXPECT_FALSE(snapshot.has("missing_total"));
  EXPECT_EQ(snapshot.find_series("zero_total", {{"k", "other"}}), nullptr);
  EXPECT_FALSE(snapshot.has("zero_total", {{"k", "other"}}));
}

TEST(Metrics, FindSeriesMatchesLabelsInAnyOrder) {
  obs::MetricsRegistry registry;
  registry.gauge("g", {{"a", "1"}, {"b", "2"}}, "help").set(5);
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  const obs::SeriesSnapshot* series =
      snapshot.find_series("g", {{"b", "2"}, {"a", "1"}});
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->value, 5.0);
}

// --------------------------------------------------------- percentiles ---

namespace {

obs::HistogramSnapshot make_histogram(std::vector<double> bounds,
                                      std::vector<std::uint64_t> counts) {
  obs::HistogramSnapshot h;
  h.upper_bounds = std::move(bounds);
  h.bucket_counts = std::move(counts);  // non-cumulative, +Inf last
  for (const auto c : h.bucket_counts) h.count += c;
  return h;
}

}  // namespace

TEST(Slo, HistogramQuantileInterpolatesWithinBucket) {
  // 2 observations in (0, 1], 2 in (1, 2], none beyond.
  const auto h = make_histogram({1.0, 2.0}, {2, 2, 0});
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.25), 0.5);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.50), 1.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.75), 1.5);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 1.00), 2.0);
}

TEST(Slo, HistogramQuantileClampsInfBucketToHighestFiniteBound) {
  const auto h = make_histogram({1.0, 2.0}, {1, 0, 1});
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.99), 2.0);
}

TEST(Slo, HistogramQuantileEmptyIsZero) {
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(obs::HistogramSnapshot{}, 0.99),
                   0.0);
}

TEST(Slo, PercentilesBundleIsMonotone) {
  const auto h = make_histogram({0.1, 1.0, 10.0}, {90, 9, 1, 0});
  const obs::Percentiles p = obs::percentiles(h);
  EXPECT_LE(p.p50, p.p95);
  EXPECT_LE(p.p95, p.p99);
  EXPECT_GT(p.p99, 0.1);  // the slow tail lives above the first bucket
}

// ------------------------------------------------------------ watchdog ---

TEST(Slo, WatchdogAbsentSeriesIsNotABreach) {
  auto registry = std::make_shared<obs::MetricsRegistry>();
  obs::SloWatchdog watchdog(registry);
  watchdog.add({"lat_p99_ms", "crowdmap_never_observed_seconds", {},
                obs::SloKind::kHistogramQuantile, 0.99, 100.0, 1000.0});
  EXPECT_TRUE(watchdog.evaluate().empty());
  EXPECT_EQ(watchdog.breaches_total(), 0u);
  // The breach counter exists (registered eagerly) but stays at zero.
  EXPECT_EQ(registry->snapshot().value("crowdmap_slo_breaches_total",
                                       {{"slo", "lat_p99_ms"}}),
            0.0);
}

TEST(Slo, WatchdogBreachIncrementsCounterAndRecordsFlightEvent) {
  auto registry = std::make_shared<obs::MetricsRegistry>();
  obs::FlightOptions options;
  options.dump_on_anomaly = true;
  obs::FlightRecorder flight(options);
  int dumps = 0;
  std::string last_reason;
  flight.set_dump_sink([&](const obs::FlightDump&, std::string_view reason) {
    ++dumps;
    last_reason = std::string(reason);
  });
  flight.set_dump_on_anomaly(true);

  auto& h = registry->histogram("lat_seconds", {},
                                obs::Histogram::default_latency_buckets(),
                                "latency");
  for (int i = 0; i < 10; ++i) h.observe(0.9);  // p99 ≈ 1000 ms

  obs::SloWatchdog watchdog(registry, &flight);
  watchdog.add({"lat_p99_ms", "lat_seconds", {},
                obs::SloKind::kHistogramQuantile, 0.99, 500.0, 1000.0});
  const auto breaches = watchdog.evaluate();
  ASSERT_EQ(breaches.size(), 1u);
  EXPECT_EQ(breaches[0].slo, "lat_p99_ms");
  EXPECT_GT(breaches[0].observed, 500.0);
  EXPECT_EQ(watchdog.breaches_total(), 1u);
  EXPECT_EQ(registry->snapshot().value("crowdmap_slo_breaches_total",
                                       {{"slo", "lat_p99_ms"}}),
            1.0);

  // The breach was recorded as a flight event and triggered an anomaly dump.
  EXPECT_EQ(dumps, 1);
  EXPECT_EQ(last_reason, "anomaly:slo_breach");
  const obs::FlightDump dump = flight.dump();
  bool saw_breach = false;
  for (const auto& event : dump.events) {
    if (event.kind == obs::FlightEventKind::kSloBreach) saw_breach = true;
  }
  EXPECT_TRUE(saw_breach);
  // The SLO name is interned so dumps stay readable.
  bool named = false;
  for (const auto& [hash, name] : dump.strings) {
    if (name == "lat_p99_ms") named = true;
  }
  EXPECT_TRUE(named);
}

TEST(Slo, WatchdogGaugeMaxKind) {
  auto registry = std::make_shared<obs::MetricsRegistry>();
  registry->gauge("depth", {}, "queue depth").set(12);
  obs::SloWatchdog watchdog(registry);
  watchdog.add({"depth_max", "depth", {}, obs::SloKind::kGaugeMax, 0.99,
                10.0, 1.0});
  EXPECT_EQ(watchdog.evaluate().size(), 1u);
  registry->gauge("depth", {}, "queue depth").set(3);
  EXPECT_TRUE(watchdog.evaluate().empty());
  EXPECT_EQ(watchdog.breaches_total(), 1u);
}

// --------------------------------------------------------- trace export ---

TEST(TraceExport, RendersSpansAndFlightInstants) {
  obs::Trace trace("run");
  {
    auto stage = trace.scoped("aggregate");
  }
  const obs::SpanRecord root = trace.snapshot();

  obs::FlightRecorder flight;
  flight.record_named(obs::FlightEventKind::kDegradation, 0, "panorama",
                      flight.intern("skipped"));
  const obs::FlightDump dump = flight.dump();

  const std::string json = obs::to_trace_event_json(root, &dump);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"run\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"aggregate\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  // The flight instant renders under its interned name with kind args.
  EXPECT_NE(json.find("\"name\": \"panorama\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"degradation\""), std::string::npos);

  // Spans alone (no flight dump) is also valid output.
  const std::string spans_only = obs::to_trace_event_json(root);
  EXPECT_NE(spans_only.find("\"name\": \"aggregate\""), std::string::npos);
  EXPECT_EQ(spans_only.find("\"ph\": \"i\""), std::string::npos);
}

// Tests for the observability layer: metric semantics (counter / gauge /
// histogram), registry identity and type safety, concurrent updates, trace
// span nesting and exclusive-time math, and golden-format checks of the
// Prometheus and JSON exporters.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace obs = crowdmap::obs;

// ------------------------------------------------------------- metrics ---

TEST(Metrics, CounterIncrements) {
  obs::MetricsRegistry registry;
  auto& c = registry.counter("events_total");
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.increment(4);
  EXPECT_EQ(c.value(), 5u);
}

TEST(Metrics, GaugeSetAndAdd) {
  obs::MetricsRegistry registry;
  auto& g = registry.gauge("depth");
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(Metrics, HistogramBucketsAreInclusiveCeilings) {
  obs::MetricsRegistry registry;
  auto& h = registry.histogram("lat_seconds", {}, {0.1, 1.0});
  h.observe(0.05);  // <= 0.1
  h.observe(0.1);   // boundary lands in the 0.1 bucket, not the next
  h.observe(0.5);   // <= 1.0
  h.observe(7.0);   // +Inf
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);  // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_NEAR(h.sum(), 7.65, 1e-12);
}

TEST(Metrics, HistogramDefaultsToLatencyBuckets) {
  obs::MetricsRegistry registry;
  auto& h = registry.histogram("stage_seconds");
  EXPECT_EQ(h.upper_bounds(), obs::Histogram::default_latency_buckets());
  EXPECT_GE(h.upper_bounds().size(), 10u);
}

TEST(Metrics, SameNameAndLabelsReturnsSameHandle) {
  obs::MetricsRegistry registry;
  auto& a = registry.counter("hits_total", {{"kind", "x"}});
  auto& b = registry.counter("hits_total", {{"kind", "x"}});
  auto& other = registry.counter("hits_total", {{"kind", "y"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  a.increment();
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(other.value(), 0u);
}

TEST(Metrics, LabelOrderDoesNotSplitSeries) {
  obs::MetricsRegistry registry;
  auto& a = registry.counter("multi_total", {{"b", "2"}, {"a", "1"}});
  auto& b = registry.counter("multi_total", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
}

TEST(Metrics, TypeConflictThrows) {
  obs::MetricsRegistry registry;
  (void)registry.counter("dual");
  EXPECT_THROW((void)registry.gauge("dual"), std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("dual"), std::invalid_argument);
}

TEST(Metrics, SnapshotValueLookup) {
  obs::MetricsRegistry registry;
  registry.counter("a_total", {{"k", "v"}}).increment(3);
  registry.gauge("b").set(1.5);
  const auto snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.value("a_total", {{"k", "v"}}), 3.0);
  EXPECT_DOUBLE_EQ(snap.value("b"), 1.5);
  EXPECT_DOUBLE_EQ(snap.value("missing"), 0.0);
  ASSERT_NE(snap.find("a_total"), nullptr);
  EXPECT_EQ(snap.find("a_total")->type, obs::MetricType::kCounter);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(Metrics, ConcurrentIncrementsAreLossless) {
  obs::MetricsRegistry registry;
  auto& c = registry.counter("spam_total");
  auto& h = registry.histogram("spam_seconds", {}, {0.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.increment();
        h.observe(i % 2 ? 0.1 : 1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.bucket_count(0) + h.bucket_count(1), h.count());
}

TEST(Metrics, ConcurrentRegistrationIsSafe) {
  obs::MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 200; ++i) {
        registry.counter("shared_total").increment();
        (void)registry.snapshot();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter("shared_total").value(), 8u * 200u);
}

// --------------------------------------------------------------- trace ---

TEST(Trace, SpansNestIntoATree) {
  obs::Trace trace("run");
  {
    auto outer = trace.scoped("aggregate");
    {
      auto inner = trace.scoped("match");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  const auto snap = trace.snapshot();
  EXPECT_EQ(snap.name, "run");
  ASSERT_EQ(snap.children.size(), 1u);
  EXPECT_EQ(snap.children[0].name, "aggregate");
  ASSERT_EQ(snap.children[0].children.size(), 1u);
  EXPECT_EQ(snap.children[0].children[0].name, "match");
  // Inclusive times nest: parent covers the child.
  EXPECT_GE(snap.children[0].duration_seconds,
            snap.children[0].children[0].duration_seconds);
  EXPECT_GT(snap.children[0].children[0].duration_seconds, 0.0);
}

TEST(Trace, ScopedEndReturnsInclusiveSeconds) {
  obs::Trace trace;
  auto span = trace.scoped("stage");
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double seconds = span.end();
  EXPECT_GT(seconds, 0.0);
  const auto snap = trace.snapshot();
  ASSERT_NE(snap.find("stage"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find("stage")->duration_seconds, seconds);
}

TEST(Trace, ExclusiveTimeSubtractsChildren) {
  obs::SpanRecord parent;
  parent.name = "run";
  parent.duration_seconds = 1.0;
  obs::SpanRecord a;
  a.name = "a";
  a.duration_seconds = 0.3;
  obs::SpanRecord b;
  b.name = "b";
  b.duration_seconds = 0.2;
  parent.children = {a, b};
  EXPECT_NEAR(parent.exclusive_seconds(), 0.5, 1e-12);
  EXPECT_NEAR(a.exclusive_seconds(), 0.3, 1e-12);  // leaf: all self time
}

TEST(Trace, TotalSecondsSumsRepeatedSpans) {
  obs::SpanRecord root;
  root.name = "run";
  for (const double d : {0.1, 0.2, 0.3}) {
    obs::SpanRecord child;
    child.name = "extract";
    child.duration_seconds = d;
    root.children.push_back(child);
  }
  EXPECT_NEAR(root.total_seconds("extract"), 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(root.total_seconds("missing"), 0.0);
}

TEST(Trace, EndSpanOnRootIsANoOp) {
  obs::Trace trace;
  EXPECT_DOUBLE_EQ(trace.end_span(), 0.0);  // nothing open besides the root
  const auto snap = trace.snapshot();
  EXPECT_TRUE(snap.children.empty());
}

TEST(Trace, ToStringRendersTheTree) {
  obs::Trace trace("run");
  { auto span = trace.scoped("aggregate"); }
  const std::string report = trace.to_string();
  EXPECT_NE(report.find("run"), std::string::npos);
  EXPECT_NE(report.find("  aggregate"), std::string::npos);  // indented child
  EXPECT_NE(report.find("ms"), std::string::npos);
}

// ----------------------------------------------------------- exporters ---

TEST(Export, PrometheusGolden) {
  obs::MetricsRegistry registry;
  registry.gauge("test_gauge", {}, "current level").set(2.5);
  auto& h = registry.histogram("test_seconds", {}, {0.1, 1.0}, "latency");
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);
  registry.counter("test_total", {{"kind", "a"}}, "events").increment(3);

  const std::string expected =
      "# HELP test_gauge current level\n"
      "# TYPE test_gauge gauge\n"
      "test_gauge 2.5\n"
      "# HELP test_seconds latency\n"
      "# TYPE test_seconds histogram\n"
      "test_seconds_bucket{le=\"0.1\"} 1\n"
      "test_seconds_bucket{le=\"1\"} 2\n"
      "test_seconds_bucket{le=\"+Inf\"} 3\n"
      "test_seconds_sum 5.55\n"
      "test_seconds_count 3\n"
      "# HELP test_total events\n"
      "# TYPE test_total counter\n"
      "test_total{kind=\"a\"} 3\n";
  EXPECT_EQ(obs::to_prometheus(registry.snapshot()), expected);
}

TEST(Export, JsonGoldenCounter) {
  obs::MetricsRegistry registry;
  registry.counter("c_total", {{"k", "v"}}, "h").increment(2);
  const std::string expected =
      "{\"metrics\":[\n"
      "{\"name\":\"c_total\",\"type\":\"counter\",\"help\":\"h\","
      "\"series\":[{\"labels\":{\"k\":\"v\"},\"value\":2}]}\n"
      "]}\n";
  EXPECT_EQ(obs::to_json(registry.snapshot()), expected);
}

TEST(Export, JsonGoldenHistogram) {
  obs::MetricsRegistry registry;
  auto& h = registry.histogram("h_seconds", {}, {0.5});
  h.observe(0.25);
  h.observe(2.0);
  const std::string expected =
      "{\"metrics\":[\n"
      "{\"name\":\"h_seconds\",\"type\":\"histogram\",\"help\":\"\","
      "\"series\":[{\"labels\":{},\"count\":2,\"sum\":2.25,"
      "\"buckets\":[{\"le\":0.5,\"count\":1},{\"le\":\"+Inf\",\"count\":2}]}"
      "]}\n"
      "]}\n";
  EXPECT_EQ(obs::to_json(registry.snapshot()), expected);
}

TEST(Export, EscapesSpecialCharacters) {
  obs::MetricsRegistry registry;
  registry.counter("esc_total", {{"path", "a\"b\\c\nd"}}).increment();
  const std::string prom = obs::to_prometheus(registry.snapshot());
  EXPECT_NE(prom.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

// End-to-end integration tests over the evaluation harness, including the
// determinism guarantee and parameterized property sweeps.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "eval/datasets.hpp"
#include "eval/harness.hpp"

namespace ce = crowdmap::eval;
namespace co = crowdmap::core;

namespace {

/// Small, fast dataset for integration tests.
ce::DatasetSpec tiny_lab1() {
  auto dataset = ce::lab1_dataset(0.25);
  dataset.options.room_videos_per_room = 1;
  return dataset;
}

}  // namespace

TEST(Integration, Lab1SmallCampaignMetricsAboveFloor) {
  const auto run = ce::run_experiment(tiny_lab1(), co::PipelineConfig::fast_profile());
  // Floors far below the paper's numbers: regression alarms, not targets.
  EXPECT_GT(run.hallway.precision, 0.5);
  EXPECT_GT(run.hallway.recall, 0.4);
  EXPECT_GE(run.room_errors.size(), 6u);
  double mean_area = 0.0;
  double mean_loc = 0.0;
  for (const auto& e : run.room_errors) {
    mean_area += e.area_error;
    mean_loc += e.location_error_m;
  }
  mean_area /= static_cast<double>(run.room_errors.size());
  mean_loc /= static_cast<double>(run.room_errors.size());
  EXPECT_LT(mean_area, 0.35);
  EXPECT_LT(mean_loc, 3.0);
}

TEST(Integration, DeterministicAcrossRuns) {
  const auto dataset = tiny_lab1();
  const auto config = co::PipelineConfig::fast_profile();
  const auto run1 = ce::run_experiment(dataset, config);
  const auto run2 = ce::run_experiment(dataset, config);
  EXPECT_EQ(run1.hallway.precision, run2.hallway.precision);
  EXPECT_EQ(run1.hallway.recall, run2.hallway.recall);
  ASSERT_EQ(run1.room_errors.size(), run2.room_errors.size());
  for (std::size_t i = 0; i < run1.room_errors.size(); ++i) {
    EXPECT_EQ(run1.room_errors[i].area_error, run2.room_errors[i].area_error);
    EXPECT_EQ(run1.room_errors[i].location_error_m,
              run2.room_errors[i].location_error_m);
  }
}

TEST(Integration, TruthRasterMatchesSpec) {
  const auto dataset = ce::lab1_dataset(0.25);
  const auto raster = ce::truth_hallway_raster(dataset, 0.5);
  EXPECT_NEAR(raster.set_area(), dataset.building.hallway_area(0.5), 5.0);
}

TEST(Integration, DatasetsHaveDistinctCharacter) {
  const auto lab1 = ce::lab1_dataset();
  const auto gym = ce::gym_dataset();
  EXPECT_GT(lab1.building.feature_density, gym.building.feature_density);
  EXPECT_NE(lab1.seed, gym.seed);
}

// ------------------------- parameterized property sweep: building scaling ---

class RandomBuildingSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomBuildingSweep, PipelinePlacesAndReconstructs) {
  const int n_rooms = GetParam();
  crowdmap::common::Rng rng(300 + static_cast<std::uint64_t>(n_rooms));
  const auto building = crowdmap::sim::random_building(n_rooms, rng);

  crowdmap::sim::CampaignOptions options;
  options.users = 3;
  options.room_videos_per_room = 1;
  options.hallway_walks = 2 * n_rooms;
  options.junk_fraction = 0.0;
  options.sim.fps = 3.0;

  // crowdmap-lint: allow(pipeline-construction)
  co::CrowdMapPipeline pipeline(co::PipelineConfig::fast_profile());
  crowdmap::sim::generate_campaign_streaming(
      building, options, 400 + static_cast<std::uint64_t>(n_rooms),
      [&pipeline](crowdmap::sim::SensorRichVideo&& video) {
        pipeline.ingest(video);
      });
  const auto result = pipeline.run();

  // Invariants that must hold at any scale:
  EXPECT_LE(result.diagnostics.trajectories_placed,
            result.diagnostics.trajectories_kept);
  EXPECT_EQ(result.plan.rooms.size(), result.rooms.size());
  for (const auto& room : result.plan.rooms) {
    EXPECT_GT(room.width, 0.0);
    EXPECT_GT(room.depth, 0.0);
  }
  // With junk disabled and generous matching data, most trajectories place.
  EXPECT_GE(result.diagnostics.trajectories_placed,
            result.diagnostics.trajectories_kept / 2);
}

INSTANTIATE_TEST_SUITE_P(BuildingSizes, RandomBuildingSweep,
                         ::testing::Values(2, 4, 6));

// Tests for the crowdmap_lint rule engine: every rule fires on a minimal
// offending snippet, the inline allow(<rule>) escape suppresses it, comment
// and string-literal mentions never trip the scan, and clean content comes
// back finding-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "lint/lint.hpp"

namespace cl = crowdmap::lint;

namespace {

bool has_rule(const std::vector<cl::Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const cl::Finding& f) { return f.rule == rule; });
}

}  // namespace

TEST(Lint, CleanFileHasNoFindings) {
  const auto findings = cl::lint_content("src/foo/bar.cpp",
                                         "#include \"foo.hpp\"\n"
                                         "int add(int a, int b) { return a + b; }\n");
  EXPECT_TRUE(findings.empty());
}

// ------------------------------------------------------------------ raw-rng ---

TEST(Lint, RawRngFiresOnRand) {
  const auto findings =
      cl::lint_content("src/sim/x.cpp", "int x = rand() % 6;\n");
  ASSERT_TRUE(has_rule(findings, "raw-rng"));
  EXPECT_EQ(findings[0].line, 1);
}

TEST(Lint, RawRngFiresOnMt19937AndRandomDevice) {
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/a.cpp", "std::mt19937 gen(std::random_device{}());\n"),
      "raw-rng"));
}

TEST(Lint, RawRngExemptInsideRngSources) {
  EXPECT_FALSE(has_rule(
      cl::lint_content("src/common/rng.cpp", "int x = rand();\n"), "raw-rng"));
}

TEST(Lint, RawRngIgnoresIdentifierSuffixes) {
  // "brand(" and "operand(" must not match the rand() pattern.
  EXPECT_FALSE(has_rule(
      cl::lint_content("src/a.cpp", "int y = brand() + operand(2);\n"),
      "raw-rng"));
}

// --------------------------------------------------------------- wall-clock ---

TEST(Lint, WallClockFiresOnSystemClock) {
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/a.cpp",
                       "auto t = std::chrono::system_clock::now();\n"),
      "wall-clock"));
}

TEST(Lint, WallClockFiresOnTimeCall) {
  EXPECT_TRUE(has_rule(cl::lint_content("src/a.cpp", "long t = time(nullptr);\n"),
                       "wall-clock"));
}

TEST(Lint, WallClockAllowsSteadyClock) {
  EXPECT_FALSE(has_rule(
      cl::lint_content("src/a.cpp",
                       "auto t = std::chrono::steady_clock::now();\n"),
      "wall-clock"));
}

TEST(Lint, WallClockAllowsTimeLikeIdentifiers) {
  EXPECT_FALSE(has_rule(
      cl::lint_content("src/a.cpp",
                       "gmtime_r(&s, &utc); auto x = to_time_t_like(1);\n"),
      "wall-clock"));
}

// ------------------------------------------------------ unordered-container ---

TEST(Lint, UnorderedContainerFires) {
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/a.cpp", "std::unordered_map<int, int> m;\n"),
      "unordered-container"));
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/a.cpp", "std::unordered_set<int> s;\n"),
      "unordered-container"));
}

// ---------------------------------------------------------------- naked-new ---

TEST(Lint, NakedNewFires) {
  EXPECT_TRUE(has_rule(cl::lint_content("src/a.cpp", "int* p = new int(3);\n"),
                       "naked-new"));
  EXPECT_TRUE(
      has_rule(cl::lint_content("src/a.cpp", "delete p;\n"), "naked-new"));
}

TEST(Lint, DeletedMemberFunctionsAreNotNakedDelete) {
  EXPECT_FALSE(has_rule(
      cl::lint_content("src/a.hpp",
                       "#pragma once\n"
                       "struct S { S(const S&) = delete; };\n"),
      "naked-new"));
}

TEST(Lint, NewInIdentifiersDoesNotFire) {
  EXPECT_FALSE(has_rule(
      cl::lint_content("src/a.cpp", "int new_width = renew(old_width);\n"),
      "naked-new"));
}

// -------------------------------------------------------- float-accumulator ---

TEST(Lint, FloatAccumulatorFires) {
  EXPECT_TRUE(has_rule(cl::lint_content("src/a.cpp", "float acc = 0.0f;\n"),
                       "float-accumulator"));
  EXPECT_TRUE(has_rule(cl::lint_content("src/a.cpp", "float score_sum = 0;\n"),
                       "float-accumulator"));
}

TEST(Lint, FloatNonAccumulatorsPass) {
  // A zero-initialized float without an accumulator-style name, and a
  // non-zero-initialized float either way.
  EXPECT_FALSE(has_rule(cl::lint_content("src/a.cpp", "float dc = 0.0f;\n"),
                        "float-accumulator"));
  EXPECT_FALSE(has_rule(
      cl::lint_content("src/a.cpp", "const float total = w * h;\n"),
      "float-accumulator"));
}

// -------------------------------------------------------------- pragma-once ---

TEST(Lint, HeaderWithoutPragmaOnceFires) {
  const auto findings = cl::lint_content("src/a.hpp", "struct S {};\n");
  ASSERT_TRUE(has_rule(findings, "pragma-once"));
  EXPECT_EQ(findings[0].line, 1);
}

TEST(Lint, HeaderWithPragmaOncePasses) {
  EXPECT_FALSE(has_rule(
      cl::lint_content("src/a.hpp", "// doc\n#pragma once\nstruct S {};\n"),
      "pragma-once"));
}

TEST(Lint, SourceFilesDoNotNeedPragmaOnce) {
  EXPECT_FALSE(
      has_rule(cl::lint_content("src/a.cpp", "int x;\n"), "pragma-once"));
}

// ------------------------------------------------------------------ escapes ---

TEST(Lint, SameLineEscapeSuppresses) {
  EXPECT_FALSE(has_rule(
      cl::lint_content(
          "src/a.cpp",
          "int x = rand();  // crowdmap-lint: allow(raw-rng)\n"),
      "raw-rng"));
}

TEST(Lint, PreviousLineEscapeSuppresses) {
  EXPECT_FALSE(has_rule(
      cl::lint_content("src/a.cpp",
                       "// crowdmap-lint: allow(unordered-container)\n"
                       "std::unordered_map<int, int> m;\n"),
      "unordered-container"));
}

TEST(Lint, EscapeListsMultipleRules) {
  const auto findings = cl::lint_content(
      "src/a.cpp",
      "// crowdmap-lint: allow(raw-rng, wall-clock)\n"
      "long t = time(nullptr) + rand();\n");
  EXPECT_TRUE(findings.empty());
}

TEST(Lint, EscapeForOtherRuleDoesNotSuppress) {
  EXPECT_TRUE(has_rule(
      cl::lint_content(
          "src/a.cpp",
          "int x = rand();  // crowdmap-lint: allow(wall-clock)\n"),
      "raw-rng"));
}

TEST(Lint, EscapeDoesNotLeakBeyondTheNextLine) {
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/a.cpp",
                       "// crowdmap-lint: allow(raw-rng)\n"
                       "int ok = 1;\n"
                       "int x = rand();\n"),
      "raw-rng"));
}

TEST(Lint, MultilineEscapeSpansCommentBlock) {
  // An allow(...) list may continue across consecutive // comment lines;
  // the escape covers every spanned line plus the statement below the block.
  const auto findings = cl::lint_content(
      "src/a.cpp",
      "// crowdmap-lint: allow(raw-rng,\n"
      "//   wall-clock)\n"
      "long t = time(nullptr) + rand();\n");
  EXPECT_FALSE(has_rule(findings, "raw-rng"));
  EXPECT_FALSE(has_rule(findings, "wall-clock"));
}

TEST(Lint, MultilineEscapeOnlyListsItsRules) {
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/a.cpp",
                       "// crowdmap-lint: allow(wall-clock,\n"
                       "//   unordered-container)\n"
                       "int x = rand();\n"),
      "raw-rng"));
}

TEST(Lint, UnterminatedMultilineEscapeDoesNotSuppress) {
  // The list never closes before a non-comment line, so no escape applies.
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/a.cpp",
                       "// crowdmap-lint: allow(raw-rng,\n"
                       "int x = rand();\n"),
      "raw-rng"));
}

// --------------------------------------------------------- fault-point-name ---

TEST(Lint, FaultPointNameFiresOnFromNameParse) {
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/core/pipeline.cpp",
                       "auto p = common::fault_point_from_name(spec);\n"),
      "fault-point-name"));
}

TEST(Lint, FaultPointNameFiresOnIntegerCast) {
  EXPECT_TRUE(has_rule(
      cl::lint_content(
          "src/cloud/service.cpp",
          "auto p = static_cast<common::FaultPoint>(i);\n"),
      "fault-point-name"));
}

TEST(Lint, FaultPointNameFiresOnBraceInit) {
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/core/pipeline.cpp",
                       "const auto p = common::FaultPoint{3};\n"),
      "fault-point-name"));
}

TEST(Lint, FaultPointNameExemptInsideFaultSources) {
  EXPECT_FALSE(has_rule(
      cl::lint_content("src/common/fault.cpp",
                       "auto p = static_cast<FaultPoint>(index);\n"),
      "fault-point-name"));
}

TEST(Lint, FaultPointNamedConstantsPass) {
  EXPECT_TRUE(
      cl::lint_content(
          "src/core/pipeline.cpp",
          "faults_.should_fire(common::faults::kDecodeFail, key);\n"
          "for (const auto point : common::all_fault_points()) use(point);\n")
          .empty());
}

// ------------------------------------------------- pipeline construction ---

TEST(Lint, PipelineConstructionFiresOutsideSrc) {
  EXPECT_TRUE(has_rule(
      cl::lint_content("tests/test_core.cpp",
                       "co::CrowdMapPipeline pipeline(config);\n"),
      "pipeline-construction"));
  EXPECT_TRUE(has_rule(
      cl::lint_content("bench/micro.cpp",
                       "auto p = std::make_unique<core::CrowdMapPipeline>(c);\n"),
      "pipeline-construction"));
  EXPECT_TRUE(has_rule(
      cl::lint_content("examples/demo.cpp",
                       "auto* p = new core::CrowdMapPipeline(c);\n"),
      "pipeline-construction"));
}

TEST(Lint, PipelineConstructionAllowedInsideSrc) {
  EXPECT_FALSE(has_rule(
      cl::lint_content("src/core/incremental.cpp",
                       "CrowdMapPipeline pipeline(config_, registry_);\n"),
      "pipeline-construction"));
}

TEST(Lint, PipelineReferencesAndMentionsPass) {
  EXPECT_FALSE(has_rule(
      cl::lint_content("tests/test_x.cpp",
                       "// CrowdMapPipeline is internal; go through the api\n"
                       "void drive(core::CrowdMapPipeline& pipeline);\n"),
      "pipeline-construction"));
}

TEST(Lint, PipelineConstructionEscapable) {
  EXPECT_FALSE(has_rule(
      cl::lint_content("bench/micro.cpp",
                       "// crowdmap-lint: allow(pipeline-construction)\n"
                       "core::CrowdMapPipeline pipeline(config);\n"),
      "pipeline-construction"));
}

// --------------------------------------------------------- api-escape-hatch ---

TEST(Lint, ApiEscapeHatchFiresOutsideSrc) {
  EXPECT_TRUE(has_rule(
      cl::lint_content("tests/test_api.cpp",
                       "auto& svc = client.service();\n"),
      "api-escape-hatch"));
  EXPECT_TRUE(has_rule(
      cl::lint_content("bench/micro.cpp",
                       "client->service().drain();\n"),
      "api-escape-hatch"));
}

TEST(Lint, ApiEscapeHatchAllowedInsideSrc) {
  // The v1 facade itself (and any src/ internals) may keep the accessor.
  EXPECT_FALSE(has_rule(
      cl::lint_content("src/api/crowdmap.cpp",
                       "return client.service();\n"),
      "api-escape-hatch"));
}

TEST(Lint, ApiEscapeHatchIgnoresOtherServiceSpellings) {
  // Declarations, namespaces, and calls with arguments are not the hatch.
  EXPECT_FALSE(has_rule(
      cl::lint_content("tests/test_x.cpp",
                       "cloud::CrowdMapService service(config, decoder);\n"
                       "auto doc = lookup_service(\"ingest\");\n"
                       "registry.service(name);\n"),
      "api-escape-hatch"));
}

TEST(Lint, ApiEscapeHatchEscapable) {
  EXPECT_FALSE(has_rule(
      cl::lint_content("tests/test_api.cpp",
                       "// crowdmap-lint: allow(api-escape-hatch)\n"
                       "auto& svc = client.service();\n"),
      "api-escape-hatch"));
}

// ------------------------------------------------------ metric-help-required ---

TEST(Lint, MetricHelpFiresOnMissingHelp) {
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/cloud/x.cpp",
                       "auto& c = registry.counter(\"crowdmap_x_total\", {});\n"),
      "metric-help-required"));
  // histogram() takes buckets before help, so three args is still help-less.
  EXPECT_TRUE(has_rule(
      cl::lint_content(
          "src/cloud/x.cpp",
          "auto& h = registry->histogram(\"crowdmap_x_seconds\", {},\n"
          "                              obs::Histogram::default_latency_buckets());\n"),
      "metric-help-required"));
}

TEST(Lint, MetricHelpFiresOnEmptyHelp) {
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/cloud/x.cpp",
                       "registry.gauge(\"crowdmap_depth\", {}, \"\");\n"),
      "metric-help-required"));
}

TEST(Lint, MetricHelpPassesWithHelpAcrossLinesAndNestedBraces) {
  EXPECT_FALSE(has_rule(
      cl::lint_content(
          "src/cloud/x.cpp",
          "auto& c = registry.counter(\n"
          "    \"crowdmap_slo_breaches_total\", {{\"slo\", spec.name}},\n"
          "    \"SLO threshold crossings detected by the watchdog\");\n"),
      "metric-help-required"));
  EXPECT_FALSE(has_rule(
      cl::lint_content(
          "src/cloud/x.cpp",
          "auto& h = registry.histogram(\"crowdmap_x_seconds\", {},\n"
          "                             {0.1, 1.0}, \"latency\");\n"),
      "metric-help-required"));
}

TEST(Lint, MetricHelpIgnoresNonLiteralNames) {
  // Lookup helpers that forward a runtime name are not registrations the
  // rule can judge; only literal-name call sites are flagged.
  EXPECT_FALSE(has_rule(
      cl::lint_content("src/cloud/x.cpp",
                       "auto& c = registry.counter(name, labels);\n"),
      "metric-help-required"));
}

TEST(Lint, MetricHelpEscapable) {
  EXPECT_FALSE(has_rule(
      cl::lint_content(
          "src/cloud/x.cpp",
          "// crowdmap-lint: allow(metric-help-required)\n"
          "registry.counter(\"crowdmap_x_total\", {});\n"),
      "metric-help-required"));
}

// --------------------------------------------- comments and string literals ---

TEST(Lint, CommentMentionsDoNotFire) {
  EXPECT_TRUE(cl::lint_content("src/a.cpp",
                               "// Chosen over std::mt19937 because ...\n"
                               "/* delete new rand() system_clock */\n")
                  .empty());
}

TEST(Lint, StringLiteralMentionsDoNotFire) {
  EXPECT_TRUE(cl::lint_content(
                  "src/a.cpp",
                  "const char* msg = \"never call rand() or new here\";\n")
                  .empty());
}

TEST(Lint, CodeAfterBlockCommentStillFires) {
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/a.cpp", "/* why not */ int x = rand();\n"),
      "raw-rng"));
}

// ----------------------------------------------------------- raw-intrinsics ---

TEST(Lint, RawIntrinsicsFiresOnIntelInclude) {
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/vision/x.cpp", "#include <immintrin.h>\n"),
      "raw-intrinsics"));
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/vision/x.cpp", "#include <emmintrin.h>\n"),
      "raw-intrinsics"));
}

TEST(Lint, RawIntrinsicsFiresOnNeonInclude) {
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/vision/x.cpp", "#include <arm_neon.h>\n"),
      "raw-intrinsics"));
}

TEST(Lint, RawIntrinsicsFiresOnIntrinsicCallsAndTypes) {
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/a.cpp", "auto v = _mm_loadu_ps(p);\n"),
      "raw-intrinsics"));
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/a.cpp", "auto v = _mm256_add_pd(a, b);\n"),
      "raw-intrinsics"));
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/a.cpp", "auto v = vld1q_f32(p);\n"),
      "raw-intrinsics"));
  EXPECT_TRUE(has_rule(cl::lint_content("src/a.cpp", "__m128 acc4;\n"),
                       "raw-intrinsics"));
}

TEST(Lint, RawIntrinsicsExemptInsideSimdWrapper) {
  EXPECT_FALSE(has_rule(
      cl::lint_content("src/common/simd.hpp",
                       "#include <immintrin.h>\nauto v = _mm_loadu_ps(p);\n"),
      "raw-intrinsics"));
  EXPECT_FALSE(has_rule(
      cl::lint_content("src/common/simd.cpp", "auto v = vld1q_f32(p);\n"),
      "raw-intrinsics"));
}

TEST(Lint, RawIntrinsicsEscapeSuppresses) {
  EXPECT_FALSE(has_rule(
      cl::lint_content("src/a.cpp",
                       "// crowdmap-lint: allow(raw-intrinsics)\n"
                       "auto v = _mm_loadu_ps(p);\n"),
      "raw-intrinsics"));
}

TEST(Lint, RawIntrinsicsIgnoresCommentAndStringMentions) {
  EXPECT_FALSE(has_rule(
      cl::lint_content("src/a.cpp",
                       "// faster than _mm_loadu_ps on this target\n"
                       "const char* s = \"#include <immintrin.h>\";\n"),
      "raw-intrinsics"));
}

TEST(Lint, RawIntrinsicsAllowsLookalikeIdentifiers) {
  // User identifiers that merely resemble intrinsics must not fire: no
  // leading _mm_ prefix, no vendor vector type.
  EXPECT_FALSE(has_rule(
      cl::lint_content("src/a.cpp",
                       "int comm_mm_count = 0; auto svld = svld1q_helper();\n"),
      "raw-intrinsics"));
}

// -------------------------------------------------------------- raw-file-io ---

TEST(Lint, RawFileIoFiresOnStreamsAndStdio) {
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/cloud/x.cpp", "std::ofstream out(path);\n"),
      "raw-file-io"));
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/cloud/x.cpp", "std::ifstream in(path);\n"),
      "raw-file-io"));
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/core/x.cpp", "FILE* f = fopen(path, \"wb\");\n"),
      "raw-file-io"));
}

TEST(Lint, RawFileIoFiresOnFilesystemMutation) {
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/cloud/x.cpp",
                       "std::filesystem::rename(tmp, final);\n"),
      "raw-file-io"));
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/cloud/x.cpp",
                       "std::filesystem::remove_all(dir);\n"),
      "raw-file-io"));
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/cloud/x.cpp",
                       "std::filesystem::create_directories(dir);\n"),
      "raw-file-io"));
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/core/x.cpp", "std::rename(a, b);\n"),
      "raw-file-io"));
  EXPECT_TRUE(has_rule(
      cl::lint_content("src/core/x.cpp", "unlink(path.c_str());\n"),
      "raw-file-io"));
}

TEST(Lint, RawFileIoExemptInsideStorageAndIoLayers) {
  // The Env implementations and the image/asset codecs are the two layers
  // allowed to touch the filesystem directly.
  EXPECT_FALSE(has_rule(
      cl::lint_content("src/storage/env.cpp",
                       "std::rename(tmp.c_str(), path.c_str());\n"),
      "raw-file-io"));
  EXPECT_FALSE(has_rule(
      cl::lint_content("src/io/image_io.cpp", "std::ofstream out(path);\n"),
      "raw-file-io"));
}

TEST(Lint, RawFileIoOnlyAppliesUnderSrc) {
  // Tools, tests and benches manage their own files; the rule guards the
  // library's durable state only.
  EXPECT_FALSE(has_rule(
      cl::lint_content("tools/gate/gate.cpp", "std::ofstream out(path);\n"),
      "raw-file-io"));
  EXPECT_FALSE(has_rule(
      cl::lint_content("tests/test_x.cpp", "FILE* f = fopen(p, \"rb\");\n"),
      "raw-file-io"));
}

TEST(Lint, RawFileIoIgnoresTheRemoveAlgorithm) {
  // std::remove the iterator algorithm (and erase/remove_if idioms) must not
  // match — only the filesystem spellings do.
  EXPECT_FALSE(has_rule(
      cl::lint_content(
          "src/cloud/x.cpp",
          "v.erase(std::remove(v.begin(), v.end(), id), v.end());\n"),
      "raw-file-io"));
  EXPECT_FALSE(has_rule(
      cl::lint_content("src/cloud/x.cpp",
                       "auto it = std::remove_if(v.begin(), v.end(), pred);\n"),
      "raw-file-io"));
}

TEST(Lint, RawFileIoEscapeSuppresses) {
  EXPECT_FALSE(has_rule(
      cl::lint_content("src/cloud/x.cpp",
                       "// crowdmap-lint: allow(raw-file-io)\n"
                       "std::ofstream out(path);\n"),
      "raw-file-io"));
}

TEST(Lint, RawFileIoIgnoresCommentAndStringMentions) {
  EXPECT_FALSE(has_rule(
      cl::lint_content("src/cloud/x.cpp",
                       "// previously wrote via std::ofstream + fopen()\n"
                       "const char* s = \"std::filesystem::rename\";\n"),
      "raw-file-io"));
}

// ------------------------------------------------------------------ catalog ---

TEST(Lint, CatalogNamesEveryFiringRule) {
  const auto& catalog = cl::rule_catalog();
  const auto known = [&](const std::string& rule) {
    return std::any_of(catalog.begin(), catalog.end(),
                       [&](const cl::RuleInfo& r) { return r.name == rule; });
  };
  for (const auto& finding : cl::lint_content(
           "src/a.hpp",
           "std::unordered_map<int, int> m;\n"
           "float acc = 0.f;\n"
           "int* p = new int(rand() + int(time(nullptr)));\n")) {
    EXPECT_TRUE(known(finding.rule)) << finding.rule;
  }
}

TEST(Lint, FormatIsCompilerStyle) {
  cl::Finding f{"src/a.cpp", 12, "raw-rng", "msg"};
  EXPECT_EQ(cl::format(f), "src/a.cpp:12: [raw-rng] msg");
}

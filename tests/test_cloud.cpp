// Tests for the cloud substrate: chunked uploads, document store, ingestion.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cloud/chunking.hpp"
#include "cloud/docstore.hpp"
#include "cloud/ingest.hpp"
#include "common/rng.hpp"

namespace cl = crowdmap::cloud;
namespace cc = crowdmap::common;

namespace {

cl::Blob make_blob(std::size_t size, std::uint64_t seed = 1) {
  cl::Blob blob(size);
  cc::Rng rng(seed);
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
  return blob;
}

}  // namespace

// --------------------------------------------------------------- chunking ---

TEST(Checksum, StableAndSensitive) {
  const auto blob = make_blob(1000);
  EXPECT_EQ(cl::checksum(blob), cl::checksum(blob));
  auto tampered = blob;
  tampered[500] ^= 0xFF;
  EXPECT_NE(cl::checksum(blob), cl::checksum(tampered));
  EXPECT_EQ(cl::checksum({}), cl::checksum({}));
}

TEST(Chunking, SplitSizes) {
  const auto blob = make_blob(2500);
  const auto chunks = cl::split_into_chunks(blob, "u1", 1000);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].payload.size(), 1000u);
  EXPECT_EQ(chunks[2].payload.size(), 500u);
  for (const auto& c : chunks) {
    EXPECT_EQ(c.total, 3u);
    EXPECT_EQ(c.upload_id, "u1");
  }
}

TEST(Chunking, EmptyBlobOneChunk) {
  const auto chunks = cl::split_into_chunks({}, "u2", 1000);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_TRUE(chunks[0].payload.empty());
}

TEST(Assembler, InOrderReassembly) {
  const auto blob = make_blob(2500, 3);
  const auto chunks = cl::split_into_chunks(blob, "u3", 1000);
  cl::ChunkAssembler assembler;
  for (const auto& c : chunks) assembler.accept(c);
  EXPECT_EQ(assembler.status(), cl::ChunkAssembler::Status::kComplete);
  EXPECT_EQ(*assembler.assemble(), blob);
}

TEST(Assembler, OutOfOrderReassembly) {
  const auto blob = make_blob(3500, 5);
  auto chunks = cl::split_into_chunks(blob, "u4", 1000);
  std::swap(chunks[0], chunks[3]);
  std::swap(chunks[1], chunks[2]);
  cl::ChunkAssembler assembler;
  for (const auto& c : chunks) assembler.accept(c);
  EXPECT_EQ(*assembler.assemble(), blob);
}

TEST(Assembler, DuplicatesTolerated) {
  const auto blob = make_blob(1500, 7);
  const auto chunks = cl::split_into_chunks(blob, "u5", 1000);
  cl::ChunkAssembler assembler;
  assembler.accept(chunks[0]);
  assembler.accept(chunks[0]);  // duplicate
  assembler.accept(chunks[1]);
  EXPECT_EQ(assembler.status(), cl::ChunkAssembler::Status::kComplete);
  EXPECT_EQ(*assembler.assemble(), blob);
}

TEST(Assembler, CorruptChunkRejectedButRetransmittable) {
  const auto blob = make_blob(1500, 9);
  auto chunks = cl::split_into_chunks(blob, "u6", 1000);
  auto damaged = chunks[0];
  damaged.payload[10] ^= 0xFF;  // corrupt without fixing the checksum
  cl::ChunkAssembler assembler;
  EXPECT_EQ(assembler.accept(damaged), cl::ChunkAssembler::Status::kRejected);
  // The buffer survives the reject: a clean retransmission completes it.
  EXPECT_EQ(assembler.status(), cl::ChunkAssembler::Status::kPending);
  assembler.accept(chunks[1]);
  EXPECT_EQ(assembler.accept(chunks[0]),
            cl::ChunkAssembler::Status::kComplete);
  EXPECT_EQ(*assembler.assemble(), blob);
}

TEST(Assembler, IdenticalDuplicateReportedAsDuplicate) {
  const auto blob = make_blob(1500, 21);
  const auto chunks = cl::split_into_chunks(blob, "u8", 1000);
  cl::ChunkAssembler assembler;
  EXPECT_EQ(assembler.accept(chunks[0]), cl::ChunkAssembler::Status::kPending);
  EXPECT_EQ(assembler.accept(chunks[0]),
            cl::ChunkAssembler::Status::kDuplicate);
  EXPECT_EQ(assembler.received(), 1u);
  EXPECT_EQ(assembler.accept(chunks[1]),
            cl::ChunkAssembler::Status::kComplete);
  EXPECT_EQ(*assembler.assemble(), blob);
}

TEST(Assembler, ConflictingDuplicateRejected) {
  const auto chunks = cl::split_into_chunks(make_blob(1500, 23), "u9", 1000);
  cl::ChunkAssembler assembler;
  assembler.accept(chunks[0]);
  // Same index, different (validly checksummed) payload: refuse to pick.
  auto conflicting = chunks[0];
  conflicting.payload[0] ^= 0xFF;
  conflicting.payload_checksum = cl::checksum(conflicting.payload);
  EXPECT_EQ(assembler.accept(conflicting),
            cl::ChunkAssembler::Status::kRejected);
  EXPECT_EQ(assembler.received(), 1u);
}

TEST(Assembler, OverlappingShortFinalChunk) {
  // A final chunk shorter than the chunk size must land at its own offset
  // and never bleed into a neighbor.
  const auto blob = make_blob(1001, 25);  // final chunk carries one byte
  const auto chunks = cl::split_into_chunks(blob, "u10", 1000);
  ASSERT_EQ(chunks.size(), 2u);
  ASSERT_EQ(chunks[1].payload.size(), 1u);
  cl::ChunkAssembler assembler;
  assembler.accept(chunks[1]);  // short tail first
  assembler.accept(chunks[0]);
  EXPECT_EQ(assembler.status(), cl::ChunkAssembler::Status::kComplete);
  EXPECT_EQ(*assembler.assemble(), blob);
}

TEST(Assembler, ZeroLengthChunkRoundTrips) {
  // An empty upload is legal: one zero-length, checksummed chunk.
  const auto chunks = cl::split_into_chunks({}, "u11", 1000);
  ASSERT_EQ(chunks.size(), 1u);
  cl::ChunkAssembler assembler;
  EXPECT_EQ(assembler.accept(chunks[0]),
            cl::ChunkAssembler::Status::kComplete);
  EXPECT_TRUE(assembler.assemble()->empty());
}

TEST(Assembler, IndexOutOfRangeIsStructuralCorruption) {
  cl::Chunk c;
  c.index = 5;
  c.total = 2;  // index >= total: the framing itself is broken
  c.payload_checksum = cl::checksum(c.payload);
  cl::ChunkAssembler assembler;
  EXPECT_EQ(assembler.accept(c), cl::ChunkAssembler::Status::kCorrupt);
  EXPECT_EQ(assembler.status(), cl::ChunkAssembler::Status::kCorrupt);
}

TEST(Assembler, MissingIndicesTracksHoles) {
  const auto chunks = cl::split_into_chunks(make_blob(3500, 27), "u12", 1000);
  ASSERT_EQ(chunks.size(), 4u);
  cl::ChunkAssembler assembler;
  EXPECT_TRUE(assembler.missing_indices().empty());  // nothing known yet
  assembler.accept(chunks[2]);
  assembler.accept(chunks[0]);
  EXPECT_EQ(assembler.missing_indices(),
            (std::vector<std::uint32_t>{1, 3}));
  assembler.accept(chunks[1]);
  assembler.accept(chunks[3]);
  EXPECT_TRUE(assembler.missing_indices().empty());  // complete
}

TEST(Assembler, FrameMismatchRejected) {
  cl::Chunk c1;
  c1.index = 0;
  c1.total = 2;
  c1.payload_checksum = cl::checksum(c1.payload);
  cl::Chunk c2;
  c2.index = 1;
  c2.total = 3;  // inconsistent total
  c2.payload_checksum = cl::checksum(c2.payload);
  cl::ChunkAssembler assembler;
  assembler.accept(c1);
  EXPECT_EQ(assembler.accept(c2), cl::ChunkAssembler::Status::kCorrupt);
}

TEST(Assembler, IncompleteNotAssemblable) {
  const auto chunks = cl::split_into_chunks(make_blob(3000, 11), "u7", 1000);
  cl::ChunkAssembler assembler;
  assembler.accept(chunks[0]);
  EXPECT_EQ(assembler.status(), cl::ChunkAssembler::Status::kPending);
  EXPECT_FALSE(assembler.assemble().has_value());
}

// --------------------------------------------------------------- docstore ---

TEST(DocStore, PutGetErase) {
  cl::DocumentStore store;
  cl::Document doc;
  doc.id = "d1";
  doc.building = "Lab1";
  doc.floor = 2;
  doc.payload = make_blob(100);
  EXPECT_TRUE(store.put(doc));
  EXPECT_FALSE(store.put(doc));  // replace
  ASSERT_TRUE(store.get("d1").has_value());
  EXPECT_EQ(store.get("d1")->floor, 2);
  EXPECT_FALSE(store.get("missing").has_value());
  EXPECT_TRUE(store.erase("d1"));
  EXPECT_FALSE(store.erase("d1"));
  EXPECT_EQ(store.size(), 0u);
}

TEST(DocStore, FloorIndex) {
  cl::DocumentStore store;
  for (int i = 0; i < 5; ++i) {
    cl::Document doc;
    doc.id = "d" + std::to_string(i);
    doc.building = i < 3 ? "Lab1" : "Lab2";
    doc.floor = 1;
    store.put(doc);
  }
  EXPECT_EQ(store.ids_for_floor("Lab1", 1).size(), 3u);
  EXPECT_EQ(store.ids_for_floor("Lab2", 1).size(), 2u);
  EXPECT_TRUE(store.ids_for_floor("Lab1", 9).empty());
  store.erase("d0");
  EXPECT_EQ(store.ids_for_floor("Lab1", 1).size(), 2u);
}

TEST(DocStore, ReplaceUpdatesIndex) {
  cl::DocumentStore store;
  cl::Document doc;
  doc.id = "d1";
  doc.building = "Lab1";
  doc.floor = 1;
  store.put(doc);
  doc.floor = 2;  // moves floors
  store.put(doc);
  EXPECT_TRUE(store.ids_for_floor("Lab1", 1).empty());
  EXPECT_EQ(store.ids_for_floor("Lab1", 2).size(), 1u);
}

TEST(DocStore, TotalBytes) {
  cl::DocumentStore store;
  cl::Document doc;
  doc.id = "d1";
  doc.payload = make_blob(123);
  store.put(doc);
  EXPECT_EQ(store.total_bytes(), 123u);
}

TEST(DocStore, QuarantineRemovesFromMainCollection) {
  cl::DocumentStore store;
  cl::Document doc;
  doc.id = "bad";
  doc.building = "Lab1";
  doc.floor = 1;
  store.put(doc);
  store.quarantine(doc, "checksum_mismatch");
  // Invisible to normal queries...
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.get("bad").has_value());
  EXPECT_TRUE(store.ids_for_floor("Lab1", 1).empty());
  // ...but auditable with its reason.
  EXPECT_EQ(store.quarantined_count(), 1u);
  EXPECT_EQ(store.quarantined_ids(), std::vector<std::string>{"bad"});
  const auto held = store.get_quarantined("bad");
  ASSERT_TRUE(held.has_value());
  EXPECT_EQ(held->metadata.at("quarantine_reason"), "checksum_mismatch");
}

TEST(DocStore, EraseRemovesIdFromFloorIndex) {
  // Regression: an erased id must vanish from ids_for_floor(), not linger as
  // a dangling index entry pointing at a deleted document.
  cl::DocumentStore store;
  for (int i = 0; i < 3; ++i) {
    cl::Document doc;
    doc.id = "d" + std::to_string(i);
    doc.building = "Lab1";
    doc.floor = 1;
    store.put(doc);
  }
  EXPECT_TRUE(store.erase("d1"));
  const auto ids = store.ids_for_floor("Lab1", 1);
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), "d1"), 0);
  // Every surviving index entry must still resolve.
  for (const auto& id : ids) EXPECT_TRUE(store.get(id).has_value());
}

TEST(DocStore, ReplaceAcrossBuildingsLeavesNoStaleIndexEntry) {
  // Regression: replacing a document whose (building, floor) changed must
  // drop the old index entry — a floor query for the old location finding
  // the id would hand the reconstruction a document from another building.
  cl::DocumentStore store;
  cl::Document doc;
  doc.id = "d1";
  doc.building = "Lab1";
  doc.floor = 3;
  EXPECT_TRUE(store.put(doc));
  doc.building = "Gym";  // moves buildings, not just floors
  doc.floor = 1;
  EXPECT_FALSE(store.put(doc));
  EXPECT_TRUE(store.ids_for_floor("Lab1", 3).empty());
  ASSERT_EQ(store.ids_for_floor("Gym", 1).size(), 1u);
  EXPECT_EQ(store.ids_for_floor("Gym", 1)[0], "d1");
  EXPECT_EQ(store.size(), 1u);
}

TEST(DocStore, PutReturnValueContract) {
  // put() returns true exactly when the id was not in the *main* collection
  // (fresh insert), false when it replaced an existing document.
  cl::DocumentStore store;
  cl::Document doc;
  doc.id = "d1";
  doc.building = "Lab1";
  doc.floor = 1;
  EXPECT_TRUE(store.put(doc));    // fresh
  EXPECT_FALSE(store.put(doc));   // replace, same coordinates
  doc.floor = 2;
  EXPECT_FALSE(store.put(doc));   // replace, moved coordinates
  EXPECT_TRUE(store.erase("d1"));
  EXPECT_TRUE(store.put(doc));    // fresh again after erase
}

TEST(DocStore, PutAfterQuarantineKeepsAuditTrail) {
  // Quarantined-id collision: a re-upload of a quarantined id inserts into
  // the main collection (returns true — the main collection had no such id)
  // and never expunges the quarantine record. Both views then answer.
  cl::DocumentStore store;
  cl::Document bad;
  bad.id = "u1";
  bad.building = "Lab1";
  bad.floor = 1;
  store.quarantine(bad, "checksum_mismatch");
  cl::Document retry;
  retry.id = "u1";
  retry.building = "Lab1";
  retry.floor = 1;
  retry.payload = make_blob(10);
  EXPECT_TRUE(store.put(retry));
  EXPECT_TRUE(store.get("u1").has_value());
  ASSERT_TRUE(store.get_quarantined("u1").has_value());
  EXPECT_EQ(store.get_quarantined("u1")->metadata.at("quarantine_reason"),
            "checksum_mismatch");
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.quarantined_count(), 1u);
}

namespace {

/// Records the journal callback stream for assertions.
struct RecordingJournal final : cl::DocumentStore::Journal {
  std::vector<std::string> ops;
  void on_put(const cl::Document& doc) override {
    ops.push_back("put:" + doc.id);
  }
  void on_erase(const std::string& id) override { ops.push_back("erase:" + id); }
  void on_quarantine(const cl::Document& doc,
                     const std::string& reason) override {
    ops.push_back("quarantine:" + doc.id + ":" + reason);
  }
};

}  // namespace

TEST(DocStore, JournalSeesEveryMutationInOrder) {
  cl::DocumentStore store;
  RecordingJournal journal;
  store.set_journal(&journal);
  cl::Document doc;
  doc.id = "d1";
  doc.building = "Lab1";
  doc.floor = 1;
  store.put(doc);
  store.put(doc);  // replace journals too: replay must reproduce the replace
  store.quarantine(doc, "bad");
  store.erase("missing");  // no-op mutations are not journaled
  doc.id = "d2";
  store.put(doc);
  store.erase("d2");
  store.set_journal(nullptr);
  store.put(doc);  // detached: silent
  const std::vector<std::string> expected{"put:d1", "put:d1",
                                          "quarantine:d1:bad", "put:d2",
                                          "erase:d2"};
  EXPECT_EQ(journal.ops, expected);
}

TEST(DocStore, ExportedStateIsSortedAndConsistent) {
  cl::DocumentStore store;
  for (const char* id : {"zeta", "alpha", "mid"}) {
    cl::Document doc;
    doc.id = id;
    doc.building = "Lab1";
    doc.floor = 1;
    store.put(doc);
  }
  cl::Document bad;
  bad.id = "broken";
  store.quarantine(bad, "r");
  bool ran = false;
  store.with_exported_state([&](const std::vector<cl::Document>& docs,
                                const std::vector<cl::Document>& quarantined) {
    ran = true;
    ASSERT_EQ(docs.size(), 3u);
    EXPECT_EQ(docs[0].id, "alpha");
    EXPECT_EQ(docs[1].id, "mid");
    EXPECT_EQ(docs[2].id, "zeta");
    ASSERT_EQ(quarantined.size(), 1u);
    EXPECT_EQ(quarantined[0].id, "broken");
  });
  EXPECT_TRUE(ran);
  const auto exported = store.export_documents();
  ASSERT_EQ(exported.size(), 3u);
  EXPECT_EQ(exported[0].id, "alpha");
}

// ----------------------------------------------------------------- ingest ---

TEST(Ingest, HappyPathCompletesUpload) {
  cl::DocumentStore store;
  std::atomic<int> completions{0};
  cl::IngestService ingest(store, [&completions](const cl::Document& doc) {
    EXPECT_EQ(doc.building, "Lab1");
    completions.fetch_add(1);
  });
  ingest.open_session("up1", "Lab1", 3);
  const auto blob = make_blob(2500, 13);
  for (const auto& c : cl::split_into_chunks(blob, "up1", 1000)) {
    ingest.deliver(c);
  }
  EXPECT_EQ(completions.load(), 1);
  ASSERT_TRUE(store.get("up1").has_value());
  EXPECT_EQ(store.get("up1")->payload, blob);
  EXPECT_EQ(store.get("up1")->floor, 3);
  const auto stats = ingest.stats();
  EXPECT_EQ(stats.uploads_completed, 1u);
  EXPECT_EQ(stats.chunks_received, 3u);
}

TEST(Ingest, UnknownSessionRejectedAndCountedSeparately) {
  cl::DocumentStore store;
  cl::IngestService ingest(store);
  cl::Chunk c;
  c.upload_id = "ghost";
  c.total = 1;
  c.payload_checksum = cl::checksum(c.payload);
  EXPECT_EQ(ingest.deliver(c), cl::IngestStatus::kRejected);
  const auto stats = ingest.stats();
  EXPECT_EQ(stats.uploads_rejected, 1u);
  EXPECT_EQ(stats.unknown_session, 1u);
  // The dedicated counter is visible through the registry under its own name.
  EXPECT_EQ(ingest.metrics_registry()->snapshot().value(
                "crowdmap_ingest_unknown_session_total"),
            1.0);
}

TEST(Ingest, DamagedChunkSurvivableViaRetransmit) {
  cl::DocumentStore store;
  cl::IngestService ingest(store);
  ingest.open_session("up2", "Lab1", 1);
  const auto blob = make_blob(1500, 15);
  auto chunks = cl::split_into_chunks(blob, "up2", 1000);
  auto damaged = chunks[0];
  damaged.payload[0] ^= 0xFF;
  // The damaged chunk is rejected but the session survives.
  EXPECT_EQ(ingest.deliver(damaged), cl::IngestStatus::kRejected);
  EXPECT_EQ(ingest.deliver(chunks[1]), cl::IngestStatus::kAccepted);
  // Retransmit protocol: ask what is missing, re-send it clean.
  EXPECT_EQ(ingest.missing_chunks("up2"),
            (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(ingest.deliver(chunks[0]), cl::IngestStatus::kUploadComplete);
  ASSERT_TRUE(store.get("up2").has_value());
  EXPECT_EQ(store.get("up2")->payload, blob);
  const auto stats = ingest.stats();
  EXPECT_EQ(stats.chunks_rejected, 1u);
  EXPECT_EQ(stats.retransmit_requests, 1u);
  EXPECT_EQ(stats.uploads_completed, 1u);
}

TEST(Ingest, StructuralCorruptionQuarantinesUpload) {
  cl::DocumentStore store;
  cl::IngestService ingest(store);
  ingest.open_session("up3", "Lab1", 1);
  cl::Chunk broken;
  broken.upload_id = "up3";
  broken.index = 9;
  broken.total = 2;  // index >= total: unsalvageable framing
  broken.payload_checksum = cl::checksum(broken.payload);
  EXPECT_EQ(ingest.deliver(broken), cl::IngestStatus::kRejected);
  // The session is gone and the upload is auditable in quarantine.
  EXPECT_EQ(ingest.pending_sessions(), 0u);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.quarantined_count(), 1u);
  const auto doc = store.get_quarantined("up3");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->metadata.at("quarantine_reason"), "structural_corruption");
}

TEST(Ingest, RetransmitBudgetExhaustionExpiresSession) {
  cl::DocumentStore store;
  cl::IngestConfig config;
  config.max_retransmit_rounds = 2;
  cl::IngestService ingest(store, {}, config);
  ingest.open_session("up4", "Lab1", 1);
  const auto chunks = cl::split_into_chunks(make_blob(2500, 29), "up4", 1000);
  ingest.deliver(chunks[0]);
  EXPECT_EQ(ingest.missing_chunks("up4").size(), 2u);  // round 1
  EXPECT_EQ(ingest.missing_chunks("up4").size(), 2u);  // round 2
  // Budget spent: the session is expired and quarantined.
  EXPECT_TRUE(ingest.missing_chunks("up4").empty());
  EXPECT_EQ(ingest.pending_sessions(), 0u);
  EXPECT_EQ(store.quarantined_count(), 1u);
  EXPECT_EQ(store.get_quarantined("up4")->metadata.at("quarantine_reason"),
            "retransmit_budget_exhausted");
  const auto stats = ingest.stats();
  EXPECT_EQ(stats.sessions_expired, 1u);
  EXPECT_EQ(stats.retransmit_requests, 2u);
}

TEST(Ingest, IdleSessionExpiresOnLogicalTimeout) {
  cl::DocumentStore store;
  cl::IngestConfig config;
  config.session_timeout_ticks = 4;  // expire quickly: 1 tick per chunk
  cl::IngestService ingest(store, {}, config);
  ingest.open_session("stale", "Lab1", 1);
  const auto stale_chunks =
      cl::split_into_chunks(make_blob(2000, 31), "stale", 1000);
  ingest.deliver(stale_chunks[0]);  // 1 of 2 delivered, then silence

  ingest.open_session("busy", "Lab1", 1);
  const auto busy_chunks =
      cl::split_into_chunks(make_blob(9000, 33), "busy", 1000);
  for (const auto& c : busy_chunks) ingest.deliver(c);  // 9 ticks pass

  // The stale session aged out during the busy upload's traffic.
  EXPECT_EQ(ingest.pending_sessions(), 0u);
  EXPECT_EQ(ingest.stats().sessions_expired, 1u);
  EXPECT_EQ(store.quarantined_count(), 1u);
  EXPECT_EQ(store.get_quarantined("stale")->metadata.at("chunks_received"),
            "1");
  // The busy upload itself landed untouched.
  EXPECT_TRUE(store.get("busy").has_value());
}

TEST(Ingest, ConcurrentUploadsInterleaved) {
  cl::DocumentStore store;
  cl::IngestService ingest(store);
  const auto blob_a = make_blob(2000, 17);
  const auto blob_b = make_blob(3000, 19);
  ingest.open_session("a", "Lab1", 1);
  ingest.open_session("b", "Lab1", 1);
  const auto chunks_a = cl::split_into_chunks(blob_a, "a", 1000);
  const auto chunks_b = cl::split_into_chunks(blob_b, "b", 1000);
  // Interleave.
  ingest.deliver(chunks_a[0]);
  ingest.deliver(chunks_b[0]);
  ingest.deliver(chunks_b[1]);
  ingest.deliver(chunks_a[1]);
  ingest.deliver(chunks_b[2]);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.get("a")->payload, blob_a);
  EXPECT_EQ(store.get("b")->payload, blob_b);
}

TEST(Ingest, ParallelDeliveryThreadSafe) {
  cl::DocumentStore store;
  cl::IngestService ingest(store);
  constexpr int kUploads = 8;
  std::vector<cl::Blob> blobs;
  std::vector<std::vector<cl::Chunk>> chunk_sets;
  for (int u = 0; u < kUploads; ++u) {
    const std::string id = "p" + std::to_string(u);
    ingest.open_session(id, "Lab1", 1);
    blobs.push_back(make_blob(5000, 100 + static_cast<std::uint64_t>(u)));
    chunk_sets.push_back(cl::split_into_chunks(blobs.back(), id, 700));
  }
  std::vector<std::thread> threads;
  threads.reserve(kUploads);
  for (int u = 0; u < kUploads; ++u) {
    threads.emplace_back([&ingest, &chunk_sets, u] {
      for (const auto& c : chunk_sets[static_cast<std::size_t>(u)]) {
        ingest.deliver(c);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kUploads));
  for (int u = 0; u < kUploads; ++u) {
    EXPECT_EQ(store.get("p" + std::to_string(u))->payload,
              blobs[static_cast<std::size_t>(u)]);
  }
}

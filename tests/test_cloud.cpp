// Tests for the cloud substrate: chunked uploads, document store, ingestion.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cloud/chunking.hpp"
#include "cloud/docstore.hpp"
#include "cloud/ingest.hpp"
#include "common/rng.hpp"

namespace cl = crowdmap::cloud;
namespace cc = crowdmap::common;

namespace {

cl::Blob make_blob(std::size_t size, std::uint64_t seed = 1) {
  cl::Blob blob(size);
  cc::Rng rng(seed);
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
  return blob;
}

}  // namespace

// --------------------------------------------------------------- chunking ---

TEST(Checksum, StableAndSensitive) {
  const auto blob = make_blob(1000);
  EXPECT_EQ(cl::checksum(blob), cl::checksum(blob));
  auto tampered = blob;
  tampered[500] ^= 0xFF;
  EXPECT_NE(cl::checksum(blob), cl::checksum(tampered));
  EXPECT_EQ(cl::checksum({}), cl::checksum({}));
}

TEST(Chunking, SplitSizes) {
  const auto blob = make_blob(2500);
  const auto chunks = cl::split_into_chunks(blob, "u1", 1000);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].payload.size(), 1000u);
  EXPECT_EQ(chunks[2].payload.size(), 500u);
  for (const auto& c : chunks) {
    EXPECT_EQ(c.total, 3u);
    EXPECT_EQ(c.upload_id, "u1");
  }
}

TEST(Chunking, EmptyBlobOneChunk) {
  const auto chunks = cl::split_into_chunks({}, "u2", 1000);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_TRUE(chunks[0].payload.empty());
}

TEST(Assembler, InOrderReassembly) {
  const auto blob = make_blob(2500, 3);
  const auto chunks = cl::split_into_chunks(blob, "u3", 1000);
  cl::ChunkAssembler assembler;
  for (const auto& c : chunks) assembler.accept(c);
  EXPECT_EQ(assembler.status(), cl::ChunkAssembler::Status::kComplete);
  EXPECT_EQ(*assembler.assemble(), blob);
}

TEST(Assembler, OutOfOrderReassembly) {
  const auto blob = make_blob(3500, 5);
  auto chunks = cl::split_into_chunks(blob, "u4", 1000);
  std::swap(chunks[0], chunks[3]);
  std::swap(chunks[1], chunks[2]);
  cl::ChunkAssembler assembler;
  for (const auto& c : chunks) assembler.accept(c);
  EXPECT_EQ(*assembler.assemble(), blob);
}

TEST(Assembler, DuplicatesTolerated) {
  const auto blob = make_blob(1500, 7);
  const auto chunks = cl::split_into_chunks(blob, "u5", 1000);
  cl::ChunkAssembler assembler;
  assembler.accept(chunks[0]);
  assembler.accept(chunks[0]);  // duplicate
  assembler.accept(chunks[1]);
  EXPECT_EQ(assembler.status(), cl::ChunkAssembler::Status::kComplete);
  EXPECT_EQ(*assembler.assemble(), blob);
}

TEST(Assembler, CorruptChunkRejected) {
  const auto blob = make_blob(1500, 9);
  auto chunks = cl::split_into_chunks(blob, "u6", 1000);
  chunks[0].payload[10] ^= 0xFF;  // corrupt without fixing the checksum
  cl::ChunkAssembler assembler;
  EXPECT_EQ(assembler.accept(chunks[0]), cl::ChunkAssembler::Status::kCorrupt);
  EXPECT_FALSE(assembler.assemble().has_value());
}

TEST(Assembler, FrameMismatchRejected) {
  cl::Chunk c1;
  c1.index = 0;
  c1.total = 2;
  c1.payload_checksum = cl::checksum(c1.payload);
  cl::Chunk c2;
  c2.index = 1;
  c2.total = 3;  // inconsistent total
  c2.payload_checksum = cl::checksum(c2.payload);
  cl::ChunkAssembler assembler;
  assembler.accept(c1);
  EXPECT_EQ(assembler.accept(c2), cl::ChunkAssembler::Status::kCorrupt);
}

TEST(Assembler, IncompleteNotAssemblable) {
  const auto chunks = cl::split_into_chunks(make_blob(3000, 11), "u7", 1000);
  cl::ChunkAssembler assembler;
  assembler.accept(chunks[0]);
  EXPECT_EQ(assembler.status(), cl::ChunkAssembler::Status::kPending);
  EXPECT_FALSE(assembler.assemble().has_value());
}

// --------------------------------------------------------------- docstore ---

TEST(DocStore, PutGetErase) {
  cl::DocumentStore store;
  cl::Document doc;
  doc.id = "d1";
  doc.building = "Lab1";
  doc.floor = 2;
  doc.payload = make_blob(100);
  EXPECT_TRUE(store.put(doc));
  EXPECT_FALSE(store.put(doc));  // replace
  ASSERT_TRUE(store.get("d1").has_value());
  EXPECT_EQ(store.get("d1")->floor, 2);
  EXPECT_FALSE(store.get("missing").has_value());
  EXPECT_TRUE(store.erase("d1"));
  EXPECT_FALSE(store.erase("d1"));
  EXPECT_EQ(store.size(), 0u);
}

TEST(DocStore, FloorIndex) {
  cl::DocumentStore store;
  for (int i = 0; i < 5; ++i) {
    cl::Document doc;
    doc.id = "d" + std::to_string(i);
    doc.building = i < 3 ? "Lab1" : "Lab2";
    doc.floor = 1;
    store.put(doc);
  }
  EXPECT_EQ(store.ids_for_floor("Lab1", 1).size(), 3u);
  EXPECT_EQ(store.ids_for_floor("Lab2", 1).size(), 2u);
  EXPECT_TRUE(store.ids_for_floor("Lab1", 9).empty());
  store.erase("d0");
  EXPECT_EQ(store.ids_for_floor("Lab1", 1).size(), 2u);
}

TEST(DocStore, ReplaceUpdatesIndex) {
  cl::DocumentStore store;
  cl::Document doc;
  doc.id = "d1";
  doc.building = "Lab1";
  doc.floor = 1;
  store.put(doc);
  doc.floor = 2;  // moves floors
  store.put(doc);
  EXPECT_TRUE(store.ids_for_floor("Lab1", 1).empty());
  EXPECT_EQ(store.ids_for_floor("Lab1", 2).size(), 1u);
}

TEST(DocStore, TotalBytes) {
  cl::DocumentStore store;
  cl::Document doc;
  doc.id = "d1";
  doc.payload = make_blob(123);
  store.put(doc);
  EXPECT_EQ(store.total_bytes(), 123u);
}

// ----------------------------------------------------------------- ingest ---

TEST(Ingest, HappyPathCompletesUpload) {
  cl::DocumentStore store;
  std::atomic<int> completions{0};
  cl::IngestService ingest(store, [&completions](const cl::Document& doc) {
    EXPECT_EQ(doc.building, "Lab1");
    completions.fetch_add(1);
  });
  ingest.open_session("up1", "Lab1", 3);
  const auto blob = make_blob(2500, 13);
  for (const auto& c : cl::split_into_chunks(blob, "up1", 1000)) {
    ingest.deliver(c);
  }
  EXPECT_EQ(completions.load(), 1);
  ASSERT_TRUE(store.get("up1").has_value());
  EXPECT_EQ(store.get("up1")->payload, blob);
  EXPECT_EQ(store.get("up1")->floor, 3);
  const auto stats = ingest.stats();
  EXPECT_EQ(stats.uploads_completed, 1u);
  EXPECT_EQ(stats.chunks_received, 3u);
}

TEST(Ingest, UnknownSessionRejected) {
  cl::DocumentStore store;
  cl::IngestService ingest(store);
  cl::Chunk c;
  c.upload_id = "ghost";
  c.total = 1;
  c.payload_checksum = cl::checksum(c.payload);
  EXPECT_EQ(ingest.deliver(c), cl::IngestStatus::kRejected);
  EXPECT_EQ(ingest.stats().uploads_rejected, 1u);
}

TEST(Ingest, CorruptUploadDroppedAndCounted) {
  cl::DocumentStore store;
  cl::IngestService ingest(store);
  ingest.open_session("up2", "Lab1", 1);
  auto chunks = cl::split_into_chunks(make_blob(1500, 15), "up2", 1000);
  chunks[0].payload[0] ^= 0xFF;
  EXPECT_EQ(ingest.deliver(chunks[0]), cl::IngestStatus::kRejected);
  // Session is gone; the remaining chunk is rejected too.
  EXPECT_EQ(ingest.deliver(chunks[1]), cl::IngestStatus::kRejected);
  EXPECT_EQ(store.size(), 0u);
}

TEST(Ingest, ConcurrentUploadsInterleaved) {
  cl::DocumentStore store;
  cl::IngestService ingest(store);
  const auto blob_a = make_blob(2000, 17);
  const auto blob_b = make_blob(3000, 19);
  ingest.open_session("a", "Lab1", 1);
  ingest.open_session("b", "Lab1", 1);
  const auto chunks_a = cl::split_into_chunks(blob_a, "a", 1000);
  const auto chunks_b = cl::split_into_chunks(blob_b, "b", 1000);
  // Interleave.
  ingest.deliver(chunks_a[0]);
  ingest.deliver(chunks_b[0]);
  ingest.deliver(chunks_b[1]);
  ingest.deliver(chunks_a[1]);
  ingest.deliver(chunks_b[2]);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.get("a")->payload, blob_a);
  EXPECT_EQ(store.get("b")->payload, blob_b);
}

TEST(Ingest, ParallelDeliveryThreadSafe) {
  cl::DocumentStore store;
  cl::IngestService ingest(store);
  constexpr int kUploads = 8;
  std::vector<cl::Blob> blobs;
  std::vector<std::vector<cl::Chunk>> chunk_sets;
  for (int u = 0; u < kUploads; ++u) {
    const std::string id = "p" + std::to_string(u);
    ingest.open_session(id, "Lab1", 1);
    blobs.push_back(make_blob(5000, 100 + static_cast<std::uint64_t>(u)));
    chunk_sets.push_back(cl::split_into_chunks(blobs.back(), id, 700));
  }
  std::vector<std::thread> threads;
  threads.reserve(kUploads);
  for (int u = 0; u < kUploads; ++u) {
    threads.emplace_back([&ingest, &chunk_sets, u] {
      for (const auto& c : chunk_sets[static_cast<std::size_t>(u)]) {
        ingest.deliver(c);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kUploads));
  for (int u = 0; u < kUploads; ++u) {
    EXPECT_EQ(store.get("p" + std::to_string(u))->payload,
              blobs[static_cast<std::size_t>(u)]);
  }
}

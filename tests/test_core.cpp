// Tests for the CrowdMapPipeline public API: ingestion gates, configuration
// and a small end-to-end run.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "sim/buildings.hpp"
#include "sim/campaign.hpp"

namespace co = crowdmap::core;
namespace cs = crowdmap::sim;
namespace cc = crowdmap::common;
namespace obs = crowdmap::obs;

namespace {

cs::CampaignOptions small_campaign_options() {
  cs::CampaignOptions options;
  options.users = 3;
  options.room_videos_per_room = 1;
  options.hallway_walks = 8;
  options.junk_fraction = 0.0;
  options.night_fraction = 0.2;
  options.sim.fps = 3.0;
  return options;
}

}  // namespace

TEST(PipelineConfig, FastProfileShrinksWork) {
  const auto fast = co::PipelineConfig::fast_profile();
  const co::PipelineConfig full;
  // The paper's 20,000-model sweep stays the declared default everywhere; the
  // fast profile cuts fidelity through the explicit cap instead.
  EXPECT_EQ(fast.layout.hypotheses, full.layout.hypotheses);
  EXPECT_EQ(full.layout_hypothesis_cap, 0);
  EXPECT_GT(fast.layout_hypothesis_cap, 0);
  EXPECT_LT(fast.layout_hypothesis_cap, full.layout.hypotheses);
}

TEST(Pipeline, JunkUploadDropped) {
  const auto spec = cs::random_building(3, *[] {
    static cc::Rng rng(211);
    return &rng;
  }());
  const auto scene = cs::Scene::from_spec(spec, 211);
  cs::SimOptions options;
  options.fps = 3.0;
  cs::UserSimulator user(scene, spec, options, cc::Rng(211));

  // crowdmap-lint: allow(pipeline-construction)
  co::CrowdMapPipeline pipeline(co::PipelineConfig::fast_profile());
  pipeline.ingest(user.junk_video(cs::Lighting::day()));
  pipeline.ingest(user.hallway_walk(cs::Lighting::day()));
  EXPECT_EQ(pipeline.trajectories().size() + pipeline.dropped_count(), 2u);
  EXPECT_GE(pipeline.trajectories().size(), 1u);
}

TEST(Pipeline, IngestTrajectoryGates) {
  // crowdmap-lint: allow(pipeline-construction)
  co::CrowdMapPipeline pipeline(co::PipelineConfig::fast_profile());
  crowdmap::trajectory::Trajectory empty;
  pipeline.ingest_trajectory(empty);  // no keyframes -> dropped
  EXPECT_EQ(pipeline.dropped_count(), 1u);
  EXPECT_TRUE(pipeline.trajectories().empty());
}

TEST(Pipeline, RunOnEmptyInputProducesEmptyPlan) {
  // crowdmap-lint: allow(pipeline-construction)
  co::CrowdMapPipeline pipeline(co::PipelineConfig::fast_profile());
  const auto result = pipeline.run();
  EXPECT_EQ(result.diagnostics.trajectories_kept, 0u);
  EXPECT_TRUE(result.plan.rooms.empty());
  EXPECT_EQ(result.plan.hallway.count_set(), 0u);
}

TEST(Pipeline, EndToEndSmallCampaign) {
  // A 4-room random building with a small crowd: the pipeline must place
  // most trajectories, reconstruct a skeleton and at least half the rooms.
  cc::Rng rng(223);
  const auto spec = cs::random_building(4, rng);
  const auto options = small_campaign_options();

  // crowdmap-lint: allow(pipeline-construction)
  co::CrowdMapPipeline pipeline(co::PipelineConfig::fast_profile());
  cs::generate_campaign_streaming(
      spec, options, 223,
      [&pipeline](cs::SensorRichVideo&& video) { pipeline.ingest(video); });

  co::WorldFrame frame;
  frame.global_to_world = crowdmap::geometry::Pose2{};
  frame.extent = spec.extent();
  // Run in the pipeline's own frame (no truth alignment): structure checks
  // only.
  const auto result = pipeline.run();

  const auto& d = result.diagnostics;
  EXPECT_EQ(d.videos_ingested, spec.rooms.size() + 8);
  EXPECT_GE(d.trajectories_placed, d.trajectories_kept / 2);
  EXPECT_GT(result.skeleton.raster.count_set(), 20u);
  EXPECT_GE(result.rooms.size(), spec.rooms.size() / 2);
  EXPECT_EQ(result.plan.rooms.size(), result.rooms.size());
  // Diagnostics timing fields populated.
  EXPECT_GT(d.aggregate_seconds + d.skeleton_seconds + d.rooms_seconds, 0.0);
}

TEST(Pipeline, TraceAgreesWithDiagnostics) {
  // The per-stage diagnostics and the trace tree are fed by the same spans,
  // so their timings must agree (the acceptance bound is 1 ms; here the
  // values are byte-identical by construction).
  cc::Rng rng(233);
  const auto spec = cs::random_building(2, rng);
  cs::CampaignOptions options = small_campaign_options();
  options.hallway_walks = 4;
  // crowdmap-lint: allow(pipeline-construction)
  co::CrowdMapPipeline pipeline(co::PipelineConfig::fast_profile());
  cs::generate_campaign_streaming(
      spec, options, 233,
      [&pipeline](cs::SensorRichVideo&& video) { pipeline.ingest(video); });
  const auto result = pipeline.run();

  const auto& d = result.diagnostics;
  const auto& trace = result.trace;
  ASSERT_NE(trace.find("run"), nullptr);
  EXPECT_NEAR(trace.total_seconds("aggregate"), d.aggregate_seconds, 1e-3);
  EXPECT_NEAR(trace.total_seconds("skeleton"), d.skeleton_seconds, 1e-3);
  EXPECT_NEAR(trace.total_seconds("rooms"), d.rooms_seconds, 1e-3);
  EXPECT_NEAR(trace.total_seconds("arrange"), d.arrange_seconds, 1e-3);
  EXPECT_NEAR(trace.total_seconds("extract"), d.extract_seconds, 1e-3);

  // The registry's stage histogram saw one observation per run() stage.
  const auto snap = pipeline.metrics().snapshot();
  const auto* stages = snap.find("crowdmap_stage_seconds");
  ASSERT_NE(stages, nullptr);
  for (const char* stage : {"aggregate", "skeleton", "rooms", "arrange"}) {
    bool found = false;
    for (const auto& series : stages->series) {
      if (series.labels == obs::Labels{{"stage", stage}}) {
        EXPECT_EQ(series.histogram.count, 1u) << stage;
        found = true;
      }
    }
    EXPECT_TRUE(found) << stage;
  }
  // Counters track the run's outcome.
  EXPECT_EQ(static_cast<std::size_t>(
                snap.value("crowdmap_videos_ingested_total")),
            d.videos_ingested);
  EXPECT_EQ(static_cast<std::size_t>(
                snap.value("crowdmap_trajectories_placed_total")),
            d.trajectories_placed);
}

TEST(Pipeline, WorldFrameControlsExtent) {
  cc::Rng rng(227);
  const auto spec = cs::random_building(2, rng);
  cs::CampaignOptions options = small_campaign_options();
  options.hallway_walks = 4;
  // crowdmap-lint: allow(pipeline-construction)
  co::CrowdMapPipeline pipeline(co::PipelineConfig::fast_profile());
  cs::generate_campaign_streaming(
      spec, options, 227,
      [&pipeline](cs::SensorRichVideo&& video) { pipeline.ingest(video); });
  co::WorldFrame frame;
  frame.extent = spec.extent();
  auto result = pipeline.run(frame);
  EXPECT_NEAR(result.plan.hallway.extent().min.x, spec.extent().min.x, 1e-9);
  EXPECT_NEAR(result.plan.hallway.extent().max.y, spec.extent().max.y, 1e-9);
}

TEST(Pipeline, RoomDedupMergesRevisits) {
  // Two visits to the same room must produce one reconstructed room.
  cc::Rng rng(229);
  const auto spec = cs::random_building(2, rng);
  cs::CampaignOptions options = small_campaign_options();
  options.room_videos_per_room = 2;
  options.hallway_walks = 6;
  // crowdmap-lint: allow(pipeline-construction)
  co::CrowdMapPipeline pipeline(co::PipelineConfig::fast_profile());
  cs::generate_campaign_streaming(
      spec, options, 229,
      [&pipeline](cs::SensorRichVideo&& video) { pipeline.ingest(video); });
  const auto result = pipeline.run();
  // No more reconstructed rooms than real rooms (dedup worked), allowing one
  // spurious extra in the worst case.
  EXPECT_LE(result.rooms.size(), spec.rooms.size() + 1);
}

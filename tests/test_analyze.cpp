// Tests for crowdmap_analyze: tokenizer edge cases (raw strings, line-spliced
// comments), the per-file source model, and the three whole-program passes on
// seeded true-positive fixtures — a layering violation and module cycle, an
// AB/BA two-mutex deadlock (same-TU and cross-TU through the call graph), a
// CM_EXCLUDES-while-held call, and a determinism-taint leak with propagation
// to its caller. Plus the baseline round-trip and the SARIF 2.1.0 shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "analyze/model.hpp"
#include "analyze/token.hpp"

namespace an = crowdmap::analyze;

namespace {

using FileSpec = std::pair<std::string, std::string>;  // path, content

std::vector<an::Finding> run(const std::vector<FileSpec>& files) {
  std::vector<an::FileModel> models;
  for (const auto& [path, content] : files) {
    models.push_back(an::build_model(path, content));
  }
  return an::analyze(models);
}

bool has_rule(const std::vector<an::Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const an::Finding& f) { return f.rule == rule; });
}

const an::Finding* find_rule(const std::vector<an::Finding>& findings,
                             const std::string& rule) {
  for (const an::Finding& f : findings) {
    if (f.rule == rule) return &f;
  }
  return nullptr;
}

}  // namespace

// ---------------------------------------------------------------- tokenizer ---

TEST(AnalyzeTokenizer, RawStringBecomesOneToken) {
  const auto tokens =
      an::tokenize("auto s = R\"(hi \"there\" // not a comment)\";\n");
  ASSERT_EQ(tokens.size(), 5u);  // auto s = <string> ;
  EXPECT_EQ(tokens[3].kind, an::TokKind::kString);
  EXPECT_EQ(tokens[3].text, "hi \"there\" // not a comment");
}

TEST(AnalyzeTokenizer, RawStringWithDelimiter) {
  const auto tokens = an::tokenize("auto s = R\"xy(a)\" )xy\";\n");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_EQ(tokens[3].kind, an::TokKind::kString);
  EXPECT_EQ(tokens[3].text, "a)\" ");
}

TEST(AnalyzeTokenizer, LineSplicedCommentSwallowsNextLine) {
  // The backslash-newline splice joins the comment with the next physical
  // line, so `int b = 2;` is part of the comment — exactly what a compiler
  // sees.
  const auto tokens = an::tokenize(
      "int a = 1; // trailing \\\n"
      "int b = 2;\n"
      "int c = 3;\n");
  std::vector<std::string> idents;
  for (const auto& t : tokens) {
    if (t.kind == an::TokKind::kIdentifier) idents.push_back(t.text);
  }
  EXPECT_EQ(idents, (std::vector<std::string>{"int", "a", "int", "c"}));
  // `c` sits on physical line 3 even though splicing removed characters.
  for (const auto& t : tokens) {
    if (t.kind == an::TokKind::kIdentifier && t.text == "c") {
      EXPECT_EQ(t.line, 3);
    }
  }
}

TEST(AnalyzeTokenizer, SplicedIdentifierJoins) {
  const auto tokens = an::tokenize("in\\\nt x;\n");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "int");
  EXPECT_EQ(tokens[1].text, "x");
}

TEST(AnalyzeTokenizer, ScopeAndArrowAreSingleTokens) {
  const auto tokens = an::tokenize("a::b->c;\n");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[1].text, "::");
  EXPECT_EQ(tokens[3].text, "->");
}

TEST(AnalyzeTokenizer, BlockCommentsAndStringsDropped) {
  const auto tokens = an::tokenize(
      "/* MutexLock in a comment */ int x = 0; const char* s = \"rand()\";\n");
  for (const auto& t : tokens) {
    EXPECT_NE(t.text, "MutexLock");
    if (t.kind == an::TokKind::kString) {
      EXPECT_EQ(t.text, "rand()");
    }
  }
}

// -------------------------------------------------------------------- model ---

TEST(AnalyzeModel, IncludesCaptured) {
  const auto m = an::build_model("src/vision/x.cpp",
                                 "#include \"common/log.hpp\"\n"
                                 "#include <vector>\n");
  ASSERT_EQ(m.includes.size(), 2u);
  EXPECT_EQ(m.includes[0].target, "common/log.hpp");
  EXPECT_FALSE(m.includes[0].system);
  EXPECT_TRUE(m.includes[1].system);
}

TEST(AnalyzeModel, QualifiedFunctionAndAcquisition) {
  const auto m = an::build_model(
      "src/cloud/x.cpp",
      "namespace crowdmap::cloud {\n"
      "void Store::tick() {\n"
      "  common::MutexLock lock(mutex_);\n"
      "}\n"
      "}  // namespace\n");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].qualified, "crowdmap::cloud::Store::tick");
  ASSERT_EQ(m.functions[0].acquisitions.size(), 1u);
  EXPECT_EQ(m.functions[0].acquisitions[0].mutex,
            "crowdmap::cloud::Store::mutex_");
}

TEST(AnalyzeModel, FieldAndMutexDeclsCaptured) {
  const auto m = an::build_model(
      "src/cloud/x.hpp",
      "namespace crowdmap::cloud {\n"
      "class Svc {\n"
      " public:\n"
      "  void go();\n"
      " private:\n"
      "  mutable common::Mutex mutex_;\n"
      "  DocumentStore store_;\n"
      "};\n"
      "}  // namespace\n");
  ASSERT_EQ(m.mutexes.size(), 1u);
  EXPECT_EQ(m.mutexes[0].qualified, "crowdmap::cloud::Svc::mutex_");
  bool store_field = false;
  for (const auto& f : m.fields) {
    if (f.name == "store_") {
      store_field = true;
      EXPECT_EQ(f.owner, "crowdmap::cloud::Svc");
      EXPECT_EQ(f.type, "DocumentStore");
    }
  }
  EXPECT_TRUE(store_field);
}

// ----------------------------------------------------------------- layering ---

TEST(AnalyzeLayering, UpwardIncludeFires) {
  const auto findings = run({
      {"src/io/a.hpp", "#pragma once\n#include \"cache/x.hpp\"\n"},
      {"src/cache/x.hpp", "#pragma once\n"},
  });
  const an::Finding* f = find_rule(findings, "layering-upward");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->symbol, "io->cache");
  EXPECT_EQ(f->path, "src/io/a.hpp");
  EXPECT_EQ(f->line, 2);
}

TEST(AnalyzeLayering, DownwardAndAllowlistedEdgesAreClean) {
  const auto findings = run({
      // Downward: core -> common is the normal direction.
      {"src/core/p.hpp", "#pragma once\n#include \"common/log.hpp\"\n"},
      {"src/common/log.hpp", "#pragma once\n"},
      // Upward but allowlisted: the cloud service owns core planners.
      {"src/cloud/s.hpp", "#pragma once\n#include \"core/q.hpp\"\n"},
      {"src/core/q.hpp", "#pragma once\n"},
  });
  EXPECT_FALSE(has_rule(findings, "layering-upward"));
}

TEST(AnalyzeLayering, StorageSitsBelowCloudAndAboveCommon) {
  // The durable store (PR 9) is a rank-4 infrastructure module: the cloud
  // service may include it, it may include common, and it must never reach
  // back up into its consumers.
  const auto clean = run({
      {"src/cloud/s.hpp", "#pragma once\n#include \"storage/log_store.hpp\"\n"},
      {"src/storage/log_store.hpp",
       "#pragma once\n#include \"common/expected.hpp\"\n"},
      {"src/common/expected.hpp", "#pragma once\n"},
  });
  EXPECT_FALSE(has_rule(clean, "layering-upward"));

  const auto upward = run({
      {"src/storage/env.hpp", "#pragma once\n#include \"cloud/docstore.hpp\"\n"},
      {"src/cloud/docstore.hpp", "#pragma once\n"},
  });
  const an::Finding* f = find_rule(upward, "layering-upward");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->symbol, "storage->cloud");
}

TEST(AnalyzeLayering, ClusterSitsBetweenApiAndCloud) {
  // The cluster router (PR 10) shares core's rank: the api facade may
  // include it, it may include the cloud service it shards, and the cloud
  // service must never reach back up into the router.
  const auto clean = run({
      {"src/api/v2.hpp", "#pragma once\n#include \"cluster/cluster.hpp\"\n"},
      {"src/cluster/cluster.hpp",
       "#pragma once\n#include \"cloud/service.hpp\"\n"},
      {"src/cloud/service.hpp", "#pragma once\n"},
  });
  EXPECT_FALSE(has_rule(clean, "layering-upward"));

  const auto upward = run({
      {"src/cloud/service.hpp",
       "#pragma once\n#include \"cluster/replication.hpp\"\n"},
      {"src/cluster/replication.hpp", "#pragma once\n"},
  });
  const an::Finding* f = find_rule(upward, "layering-upward");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->symbol, "cloud->cluster");
  EXPECT_EQ(f->path, "src/cloud/service.hpp");
}

TEST(AnalyzeLayering, ModuleCycleDetected) {
  const auto findings = run({
      {"src/vision/v.hpp", "#pragma once\n#include \"room/r.hpp\"\n"},
      {"src/room/r.hpp", "#pragma once\n#include \"vision/w.hpp\"\n"},
      {"src/vision/w.hpp", "#pragma once\n"},
  });
  const an::Finding* f = find_rule(findings, "module-cycle");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->symbol, "room<->vision");
}

TEST(AnalyzeLayering, FileLevelIncludeCycleDetected) {
  const auto findings = run({
      {"src/vision/a.hpp", "#pragma once\n#include \"vision/b.hpp\"\n"},
      {"src/vision/b.hpp", "#pragma once\n#include \"vision/a.hpp\"\n"},
  });
  EXPECT_TRUE(has_rule(findings, "include-cycle"));
  // Same-module includes never trip the module-level pass.
  EXPECT_FALSE(has_rule(findings, "module-cycle"));
}

// --------------------------------------------------------------- lock order ---

namespace {

const char kAbBaFixture[] =
    "namespace crowdmap::cloud {\n"
    "class Pair {\n"
    " public:\n"
    "  void ab();\n"
    "  void ba();\n"
    " private:\n"
    "  common::Mutex a_;\n"
    "  common::Mutex b_;\n"
    "};\n"
    "void Pair::ab() {\n"
    "  common::MutexLock la(a_);\n"
    "  common::MutexLock lb(b_);\n"
    "}\n"
    "void Pair::ba() {\n"
    "  common::MutexLock lb(b_);\n"
    "  common::MutexLock la(a_);\n"
    "}\n"
    "}  // namespace\n";

}  // namespace

TEST(AnalyzeLockOrder, AbBaDeadlockDetected) {
  const auto findings = run({{"src/cloud/pair.cpp", kAbBaFixture}});
  const an::Finding* f = find_rule(findings, "lock-order");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->symbol, "a_<->b_");
}

TEST(AnalyzeLockOrder, CrossTuDeadlockThroughCallGraph) {
  // TU 1 locks Svc::a_ then calls into Worker (which locks b_); TU 2 locks
  // Worker::b_ then calls back into Svc (which locks a_). Neither TU alone
  // shows a cycle — only the merged call graph does.
  const char* header =
      "#pragma once\n"
      "namespace crowdmap::cloud {\n"
      "class Worker;\n"
      "class Svc {\n"
      " public:\n"
      "  void lock_then_pump();\n"
      "  void relock();\n"
      " private:\n"
      "  common::Mutex a_;\n"
      "  Worker* worker_;\n"
      "};\n"
      "class Worker {\n"
      " public:\n"
      "  void pump();\n"
      "  void reenter();\n"
      " private:\n"
      "  common::Mutex b_;\n"
      "  Svc* svc_;\n"
      "};\n"
      "}  // namespace\n";
  const char* tu1 =
      "#include \"cloud/svc.hpp\"\n"
      "namespace crowdmap::cloud {\n"
      "void Svc::lock_then_pump() {\n"
      "  common::MutexLock lock(a_);\n"
      "  worker_->pump();\n"
      "}\n"
      "void Svc::relock() {\n"
      "  common::MutexLock lock(a_);\n"
      "}\n"
      "}  // namespace\n";
  const char* tu2 =
      "#include \"cloud/svc.hpp\"\n"
      "namespace crowdmap::cloud {\n"
      "void Worker::pump() {\n"
      "  common::MutexLock lock(b_);\n"
      "}\n"
      "void Worker::reenter() {\n"
      "  common::MutexLock lock(b_);\n"
      "  svc_->relock();\n"
      "}\n"
      "}  // namespace\n";
  const auto findings = run({{"src/cloud/svc.hpp", header},
                             {"src/cloud/svc_a.cpp", tu1},
                             {"src/cloud/svc_b.cpp", tu2}});
  const an::Finding* f = find_rule(findings, "lock-order");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->symbol, "a_<->b_");
}

TEST(AnalyzeLockOrder, ExcludesWhileHeldDetected) {
  const auto findings = run({{
      "src/cloud/store.cpp",
      "namespace crowdmap::cloud {\n"
      "class Store {\n"
      " public:\n"
      "  bool erase(int id) CM_EXCLUDES(mutex_);\n"
      "  void compact();\n"
      " private:\n"
      "  mutable common::Mutex mutex_;\n"
      "};\n"
      "bool Store::erase(int id) {\n"
      "  common::MutexLock lock(mutex_);\n"
      "  return id > 0;\n"
      "}\n"
      "void Store::compact() {\n"
      "  common::MutexLock lock(mutex_);\n"
      "  erase(1);\n"
      "}\n"
      "}  // namespace\n",
  }});
  const an::Finding* f = find_rule(findings, "lock-excludes-held");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->symbol, "crowdmap::cloud::Store::compact!mutex_");
}

TEST(AnalyzeLockOrder, ScopedReleaseIsNotHeldAtLaterCall) {
  // The lock dies with its block; the call after the block is lock-free, so
  // the CM_EXCLUDES callee is fine. Regression test for the release-aware
  // held-set (a naive line-ordered model flags this).
  const auto findings = run({{
      "src/cloud/r.cpp",
      "namespace crowdmap::cloud {\n"
      "class R {\n"
      " public:\n"
      "  void go();\n"
      "  void target() CM_EXCLUDES(m_);\n"
      " private:\n"
      "  common::Mutex m_;\n"
      "};\n"
      "void R::go() {\n"
      "  {\n"
      "    common::MutexLock lock(m_);\n"
      "  }\n"
      "  target();\n"
      "}\n"
      "void R::target() {\n"
      "  common::MutexLock lock(m_);\n"
      "}\n"
      "}  // namespace\n",
  }});
  EXPECT_FALSE(has_rule(findings, "lock-excludes-held"));
  EXPECT_FALSE(has_rule(findings, "lock-order"));
}

TEST(AnalyzeLockOrder, UntypedReceiverDoesNotAliasProjectMethods) {
  // `ids.erase(...)` on a vector must not resolve to Store::erase just
  // because the method names collide — the receiver's type is unknown, so
  // the call stays unresolved.
  const auto findings = run({{
      "src/cloud/v.cpp",
      "namespace crowdmap::cloud {\n"
      "class Store {\n"
      " public:\n"
      "  bool erase(int id) CM_EXCLUDES(mutex_);\n"
      "  void trim();\n"
      " private:\n"
      "  mutable common::Mutex mutex_;\n"
      "};\n"
      "bool Store::erase(int id) { return id > 0; }\n"
      "void Store::trim() {\n"
      "  common::MutexLock lock(mutex_);\n"
      "  auto& ids = index_;\n"
      "  ids.erase(3);\n"
      "}\n"
      "}  // namespace\n",
  }});
  EXPECT_FALSE(has_rule(findings, "lock-excludes-held"));
}

// -------------------------------------------------------- determinism taint ---

TEST(AnalyzeTaint, LeakAndPropagationToCaller) {
  const auto findings = run({{
      "src/vision/seed.cpp",
      "namespace crowdmap::vision {\n"
      "int leaky_seed() {\n"
      "  return static_cast<int>(std::time(nullptr));\n"
      "}\n"
      "int uses_leak() { return leaky_seed() + 1; }\n"
      "}  // namespace\n",
  }});
  ASSERT_TRUE(has_rule(findings, "determinism-taint"));
  bool origin = false;
  bool propagated = false;
  for (const auto& f : findings) {
    if (f.rule != "determinism-taint") continue;
    if (f.symbol == "crowdmap::vision::leaky_seed") origin = true;
    if (f.symbol == "crowdmap::vision::uses_leak") propagated = true;
  }
  EXPECT_TRUE(origin);
  EXPECT_TRUE(propagated);
}

TEST(AnalyzeTaint, QualifiedWallClockDetected) {
  const auto findings = run({{
      "src/vision/t.cpp",
      "namespace crowdmap::vision {\n"
      "double stamp() {\n"
      "  return std::chrono::system_clock::now().time_since_epoch().count();\n"
      "}\n"
      "}  // namespace\n",
  }});
  EXPECT_TRUE(has_rule(findings, "determinism-taint"));
}

TEST(AnalyzeTaint, SinksAbsorb) {
  // Wall clock inside logging and obs is the allowlisted exception; a
  // steady_clock latency stamp is never a source at all.
  const auto findings = run({
      {"src/common/log.cpp",
       "namespace crowdmap::common {\n"
       "long stamp() { return std::time(nullptr); }\n"
       "}  // namespace\n"},
      {"src/obs/flight.cpp",
       "namespace crowdmap::obs {\n"
       "long wall() { return std::time(nullptr); }\n"
       "}  // namespace\n"},
      {"src/core/lat.cpp",
       "namespace crowdmap::core {\n"
       "double lat() {\n"
       "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
       "}\n"
       "}  // namespace\n"},
  });
  EXPECT_FALSE(has_rule(findings, "determinism-taint"));
}

TEST(AnalyzeTaint, UnorderedIterationIsASource) {
  const auto findings = run({{
      "src/vision/acc.cpp",
      "#include <unordered_map>\n"
      "namespace crowdmap::vision {\n"
      "class Acc {\n"
      " public:\n"
      "  double sum();\n"
      " private:\n"
      "  std::unordered_map<int, double> weights_;\n"
      "};\n"
      "double Acc::sum() {\n"
      "  double s = 0.0;\n"
      "  for (const auto& [k, v] : weights_) s += v;\n"
      "  return s;\n"
      "}\n"
      "}  // namespace\n",
  }});
  const an::Finding* f = find_rule(findings, "determinism-taint");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->symbol, "crowdmap::vision::Acc::sum");
}

// ------------------------------------------------------------ baseline/sarif ---

TEST(AnalyzeBaseline, RoundTripSuppressesKnownFindings) {
  const std::vector<an::Finding> findings = {
      {"lock-order", "src/cloud/pair.cpp", 15, "a_<->b_", "cycle"},
      {"determinism-taint", "src/vision/seed.cpp", 3,
       "crowdmap::vision::leaky_seed", "leak"},
  };
  const std::string body = an::render_baseline(findings);
  const auto keys = an::parse_baseline(body);
  EXPECT_EQ(keys.size(), 2u);
  EXPECT_TRUE(an::new_findings(findings, keys).empty());

  // A finding not in the baseline survives; line drift does not resurrect
  // baselined ones (keys carry no line numbers).
  std::vector<an::Finding> next = findings;
  next[0].line = 99;
  next.push_back({"layering-upward", "src/io/a.hpp", 2, "io->cache", "up"});
  const auto fresh = an::new_findings(next, keys);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].rule, "layering-upward");
}

TEST(AnalyzeBaseline, ParserSkipsCommentsAndBlanks) {
  const auto keys = an::parse_baseline(
      "# comment\n"
      "\n"
      "  lock-order|src/a.cpp|m1<->m2  \n"
      "# another\n");
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_TRUE(keys.count("lock-order|src/a.cpp|m1<->m2"));
}

TEST(AnalyzeSarif, MinimalShape) {
  const std::vector<an::Finding> findings = {
      {"lock-order", "src/cloud/pair.cpp", 15, "a_<->b_", "cycle \"x\""},
  };
  const std::string sarif = an::to_sarif(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"lock-order\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/cloud/pair.cpp\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 15"), std::string::npos);
  // The quote inside the message is escaped.
  EXPECT_NE(sarif.find("cycle \\\"x\\\""), std::string::npos);
}

TEST(AnalyzeCatalog, RulesAndLayersExposed) {
  EXPECT_EQ(an::rule_catalog().size(), 6u);
  EXPECT_FALSE(an::layer_table().empty());
  EXPECT_EQ(an::layer_table().front().module, "api");
  EXPECT_EQ(an::layer_table().back().module, "common");
  for (const auto& exc : an::layering_allowlist()) {
    EXPECT_FALSE(std::string(exc.why).empty());
  }
}

// Parameterized property sweeps (TEST_P) over the system's core invariants:
// geometry, LCSS, SURF matching, dead reckoning, serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "api/crowdmap.hpp"
#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "geometry/polygon.hpp"
#include "floorplan/serialize.hpp"
#include "sensors/serialize.hpp"
#include "room/layout.hpp"
#include "sensors/dead_reckoning.hpp"
#include "sim/buildings.hpp"
#include "sim/campaign.hpp"
#include "trajectory/lcss.hpp"
#include "vision/matcher.hpp"
#include "vision/surf.hpp"

namespace cg = crowdmap::geometry;
namespace cc = crowdmap::common;
using cg::Vec2;

// ---------------------------------------------- polygon clipping algebra ---

class PolygonClipProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PolygonClipProperty, IntersectionIsCommutativeAndBounded) {
  cc::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = cg::Polygon::oriented_rectangle(
        {rng.uniform(-5, 5), rng.uniform(-5, 5)}, rng.uniform(1, 6),
        rng.uniform(1, 6), rng.uniform(0, 3));
    const auto b = cg::Polygon::oriented_rectangle(
        {rng.uniform(-5, 5), rng.uniform(-5, 5)}, rng.uniform(1, 6),
        rng.uniform(1, 6), rng.uniform(0, 3));
    const double ab = cg::clip_convex(a, b).area();
    const double ba = cg::clip_convex(b, a).area();
    EXPECT_NEAR(ab, ba, 1e-6);
    EXPECT_LE(ab, std::min(a.area(), b.area()) + 1e-6);
    EXPECT_GE(ab, -1e-12);
  }
}

TEST_P(PolygonClipProperty, SelfIntersectionIsIdentity) {
  cc::Rng rng(GetParam() ^ 0xABCD);
  const auto a = cg::Polygon::oriented_rectangle(
      {rng.uniform(-5, 5), rng.uniform(-5, 5)}, rng.uniform(1, 6),
      rng.uniform(1, 6), rng.uniform(0, 3));
  EXPECT_NEAR(cg::clip_convex(a, a).area(), a.area(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolygonClipProperty,
                         ::testing::Values(11u, 22u, 33u, 44u));

// ------------------------------------------------------- LCSS invariants ---

class LcssProperty : public ::testing::TestWithParam<double> {};

TEST_P(LcssProperty, RigidMotionInvariantUnderMatchingTransform) {
  // LCSS(a, T(a)) under candidate transform T recovers the full length for
  // any rigid T — the property S3's translation search relies on.
  const double angle = GetParam();
  cc::Rng rng(99);
  std::vector<Vec2> a;
  for (int i = 0; i < 25; ++i) {
    a.push_back({i * 0.5, rng.normal(0.0, 0.3)});
  }
  const cg::Pose2 t{{rng.uniform(-8, 8), rng.uniform(-8, 8)}, angle};
  std::vector<Vec2> b;
  for (const auto p : a) b.push_back(t.inverse().apply(p));
  const double s3 =
      crowdmap::trajectory::similarity_s3(a, b, {{t, 0}}, {});
  EXPECT_NEAR(s3, 1.0, 1e-9) << "angle " << angle;
}

TEST_P(LcssProperty, MonotoneInEpsilon) {
  const double angle = GetParam();
  cc::Rng rng(101);
  std::vector<Vec2> a;
  std::vector<Vec2> b;
  for (int i = 0; i < 30; ++i) {
    const Vec2 p{i * 0.4, 0.0};
    a.push_back(p);
    b.push_back(p.rotated(angle * 0.02) + Vec2{rng.normal(0, 0.3), rng.normal(0, 0.3)});
  }
  std::size_t prev = 0;
  for (const double eps : {0.2, 0.5, 1.0, 2.0, 4.0}) {
    crowdmap::trajectory::LcssParams params;
    params.epsilon = eps;
    const auto len = crowdmap::trajectory::lcss_length(a, b, params);
    EXPECT_GE(len, prev);
    prev = len;
  }
}

INSTANTIATE_TEST_SUITE_P(Angles, LcssProperty,
                         ::testing::Values(-2.0, -0.5, 0.0, 0.9, 2.7));

// ------------------------------------------ SURF translation equivariance ---

class SurfShiftProperty : public ::testing::TestWithParam<int> {};

TEST_P(SurfShiftProperty, MatchesRecoverShift) {
  const int shift = GetParam();
  cc::Rng rng(7);
  crowdmap::imaging::Image img(160, 120, 0.5f);
  for (int blob = 0; blob < 30; ++blob) {
    const int bx = rng.uniform_int(20, 139);
    const int by = rng.uniform_int(20, 99);
    const float v = rng.chance(0.5) ? 0.9f : 0.1f;
    for (int dy = -3; dy <= 3; ++dy) {
      for (int dx = -3; dx <= 3; ++dx) {
        if (dx * dx + dy * dy <= 9) img.at(bx + dx, by + dy) = v;
      }
    }
  }
  crowdmap::imaging::Image shifted(160, 120, 0.5f);
  for (int y = 0; y < 120; ++y) {
    for (int x = 0; x < 160; ++x) shifted.at(x, y) = img.at_clamped(x + shift, y);
  }
  const auto f1 = crowdmap::vision::detect_and_describe(img);
  const auto f2 = crowdmap::vision::detect_and_describe(shifted);
  const auto matches = crowdmap::vision::mutual_nn_matches(f1, f2, 0.4, 0.8);
  ASSERT_GT(matches.size(), 4u) << "shift " << shift;
  int consistent = 0;
  for (const auto& m : matches) {
    const double dx = f1[m.index1].keypoint.x - f2[m.index2].keypoint.x;
    if (std::abs(dx - shift) < 3.0) ++consistent;
  }
  EXPECT_GT(static_cast<double>(consistent) / matches.size(), 0.6)
      << "shift " << shift;
}

INSTANTIATE_TEST_SUITE_P(Shifts, SurfShiftProperty,
                         ::testing::Values(2, 5, 9, 14));

// -------------------------------------------- dead reckoning equivariance ---

class DeadReckoningProperty : public ::testing::TestWithParam<double> {};

TEST_P(DeadReckoningProperty, HeadingRotatesTrackRigidly) {
  const double heading = GetParam();
  auto make_stream = [](double h) {
    crowdmap::sensors::ImuStream stream;
    for (double t = 0.0; t < 8.0; t += 0.01) {
      crowdmap::sensors::ImuSample s;
      s.t = t;
      s.accel_magnitude = 9.81 + 3.5 * std::sin(2 * cc::kPi * 1.8 * t);
      s.gyro_z = 0.0;
      s.compass = h;
      stream.samples.push_back(s);
    }
    return stream;
  };
  const auto base = crowdmap::sensors::dead_reckon(make_stream(0.0));
  const auto rotated = crowdmap::sensors::dead_reckon(make_stream(heading));
  ASSERT_EQ(base.size(), rotated.size());
  // Endpoints related by the rotation.
  const Vec2 expected = base.back().position.rotated(heading);
  EXPECT_NEAR(rotated.back().position.x, expected.x, 1e-6);
  EXPECT_NEAR(rotated.back().position.y, expected.y, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Headings, DeadReckoningProperty,
                         ::testing::Values(0.5, 1.57, -2.2, 3.1));

// --------------------------------------- rect distance closes the polygon ---

class RectDistanceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RectDistanceProperty, PerimeterIntegralMatchesArea) {
  // Shoelace over the ray-cast boundary recovers the rectangle's area: the
  // distance function describes a closed, correct boundary.
  cc::Rng rng(GetParam());
  crowdmap::room::LayoutHypothesis hyp;
  hyp.width = rng.uniform(2, 10);
  hyp.depth = rng.uniform(2, 10);
  hyp.orientation = rng.uniform(0, cc::kPi / 2);
  hyp.camera_offset = {hyp.width * rng.uniform(-0.3, 0.3),
                       hyp.depth * rng.uniform(-0.3, 0.3)};
  const int n = 2048;
  double area2 = 0.0;
  Vec2 prev;
  Vec2 first;
  for (int i = 0; i <= n; ++i) {
    const double angle = i * cc::kTwoPi / n;
    const double d = crowdmap::room::rect_boundary_distance(hyp, angle);
    // Boundary point relative to the camera, then to the room center.
    const Vec2 p = Vec2::from_angle(angle) * d;
    if (i == 0) {
      first = p;
    } else {
      area2 += prev.cross(p);
    }
    prev = p;
  }
  area2 += prev.cross(first);
  EXPECT_NEAR(std::abs(area2) / 2.0, hyp.width * hyp.depth,
              hyp.width * hyp.depth * 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectDistanceProperty,
                         ::testing::Values(3u, 5u, 8u, 13u, 21u));

// ----------------------------------------------- serialization round trip ---

class SerializationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializationProperty, ImuRoundTripExact) {
  cc::Rng rng(GetParam());
  crowdmap::sensors::ImuStream stream;
  stream.sample_rate_hz = rng.uniform(50, 200);
  const int n = rng.uniform_int(0, 500);
  for (int i = 0; i < n; ++i) {
    stream.samples.push_back({rng.uniform(0, 100), rng.normal(9.81, 3),
                              rng.normal(0, 1), rng.uniform(-3.14, 3.14)});
  }
  const auto decoded = crowdmap::sensors::decode_imu(crowdmap::sensors::encode_imu(stream));
  ASSERT_EQ(decoded.samples.size(), stream.samples.size());
  for (std::size_t i = 0; i < decoded.samples.size(); ++i) {
    EXPECT_EQ(decoded.samples[i].t, stream.samples[i].t);
    EXPECT_EQ(decoded.samples[i].accel_magnitude,
              stream.samples[i].accel_magnitude);
    EXPECT_EQ(decoded.samples[i].gyro_z, stream.samples[i].gyro_z);
    EXPECT_EQ(decoded.samples[i].compass, stream.samples[i].compass);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// ------------------------------------- incremental upload-order invariance ---

TEST(IncrementalProperty, AnyUploadInterleavingMatchesTheBatchBuild) {
  // Property: for any permutation of the campaign, and with build_plan calls
  // interleaved at arbitrary points between submissions, the final plan is
  // byte-identical to the batch build (all uploads, one build). Seeded
  // Fisher-Yates permutations keep the sweep reproducible.
  namespace ap = crowdmap::api::v1;
  namespace cs = crowdmap::sim;
  namespace co = crowdmap::core;

  cc::Rng campaign_rng(0xF1A7);
  const auto spec = cs::random_building(2, campaign_rng);
  cs::CampaignOptions options;
  options.users = 2;
  options.room_videos_per_room = 1;
  options.hallway_walks = 4;
  options.junk_fraction = 0.0;
  options.sim.fps = 3.0;
  std::vector<cs::SensorRichVideo> videos;
  cs::generate_campaign_streaming(spec, options, 0xF1A7,
                                  [&videos](cs::SensorRichVideo&& video) {
                                    videos.push_back(std::move(video));
                                  });
  ASSERT_GE(videos.size(), 3u);
  const std::string building = videos.front().building;
  const int floor = videos.front().floor;

  const auto build_bytes = [&](ap::Client& client) {
    const auto response = client.build_plan({building, floor, std::nullopt});
    const auto bytes = crowdmap::floorplan::encode_floorplan(response.result.plan);
    return std::string(bytes.begin(), bytes.end());
  };
  const auto fresh_client = [] {
    ap::ClientOptions client_options;
    client_options.config = co::PipelineConfig::fast_profile();
    return ap::Client(std::move(client_options));
  };

  auto batch = fresh_client();
  for (const auto& video : videos) {
    ASSERT_TRUE(batch.submit_video(video).accepted);
  }
  const std::string reference = build_bytes(batch);
  ASSERT_FALSE(reference.empty());

  for (const std::uint64_t perm_seed : {11u, 23u}) {
    cc::Rng rng(perm_seed);
    std::vector<std::size_t> order(videos.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (std::size_t i = order.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }

    auto client = fresh_client();
    for (const auto index : order) {
      ASSERT_TRUE(client.submit_video(videos[index]).accepted);
      // Sometimes build mid-stream: partial builds must not perturb the
      // final plan (their artifacts are either reused or invalidated).
      if (rng.uniform_int(0, 2) == 0) (void)build_bytes(client);
    }
    EXPECT_EQ(build_bytes(client), reference) << "permutation " << perm_seed;
  }
}

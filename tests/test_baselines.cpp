// Tests for the comparison baselines: inertial-only room estimation,
// simulated SfM and GPS-anchor (CrowdInside-style) aggregation.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/crowdinside.hpp"
#include "baselines/inertial_room.hpp"
#include "baselines/sfm_sim.hpp"
#include "common/rng.hpp"
#include "sim/buildings.hpp"
#include "sim/user_sim.hpp"
#include "trajectory/trajectory.hpp"

namespace cb = crowdmap::baselines;
namespace cs = crowdmap::sim;
namespace cc = crowdmap::common;
using crowdmap::geometry::Vec2;

// ---------------------------------------------------------- inertial room ---

TEST(InertialRoom, AxisAlignedLoop) {
  std::vector<Vec2> trace;
  // Perimeter loop of a 6x4 walkable region.
  for (double x = 0; x <= 6; x += 0.25) trace.push_back({x, 0});
  for (double y = 0; y <= 4; y += 0.25) trace.push_back({6, y});
  for (double x = 6; x >= 0; x -= 0.25) trace.push_back({x, 4});
  for (double y = 4; y >= 0; y -= 0.25) trace.push_back({0, y});
  const auto est = cb::estimate_room_inertial(trace);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->width, 6.0, 0.3);
  EXPECT_NEAR(est->depth, 4.0, 0.3);
  EXPECT_NEAR(est->center.x, 3.0, 0.3);
  EXPECT_NEAR(est->center.y, 2.0, 0.3);
}

TEST(InertialRoom, RotatedLoopRecoversOrientation) {
  std::vector<Vec2> trace;
  const double theta = 0.6;
  for (double x = 0; x <= 6; x += 0.25) trace.push_back(Vec2{x, 0}.rotated(theta));
  for (double y = 0; y <= 3; y += 0.25) trace.push_back(Vec2{6, y}.rotated(theta));
  for (double x = 6; x >= 0; x -= 0.25) trace.push_back(Vec2{x, 3}.rotated(theta));
  for (double y = 3; y >= 0; y -= 0.25) trace.push_back(Vec2{0, y}.rotated(theta));
  const auto est = cb::estimate_room_inertial(trace);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->width * est->depth, 18.0, 2.0);
  // Orientation mod pi/2.
  const double diff = std::abs(std::remainder(est->orientation - theta, M_PI / 2));
  EXPECT_LT(diff, 0.1);
}

TEST(InertialRoom, TooFewPoints) {
  EXPECT_FALSE(cb::estimate_room_inertial(std::vector<Vec2>{{0, 0}, {1, 1}})
                   .has_value());
}

TEST(InertialRoom, UnderestimatesWhenFurnitureBlocksEdges) {
  // The room is 6x5 but the walkable loop stays 1 m from every wall:
  // bounding box of the trace is 4x3 -> area underestimated.
  std::vector<Vec2> trace;
  for (double x = 1; x <= 5; x += 0.25) trace.push_back({x, 1});
  for (double y = 1; y <= 4; y += 0.25) trace.push_back({5, y});
  for (double x = 5; x >= 1; x -= 0.25) trace.push_back({x, 4});
  for (double y = 4; y >= 1; y -= 0.25) trace.push_back({1, y});
  const auto est = cb::estimate_room_inertial(trace);
  ASSERT_TRUE(est.has_value());
  EXPECT_LT(est->area(), 30.0 * 0.6);  // systematic underestimate
}

// -------------------------------------------------------------- SfM sim ---

namespace {

crowdmap::trajectory::Trajectory extract_walk(const cs::FloorPlanSpec& spec,
                                              std::uint64_t seed) {
  const auto scene = cs::Scene::from_spec(spec, seed);
  cs::SimOptions options;
  options.fps = 3.0;
  cs::UserSimulator user(scene, spec, options, cc::Rng(seed));
  return crowdmap::trajectory::extract_trajectory(
      user.hallway_walk(cs::Lighting::day()));
}

}  // namespace

TEST(SfmSim, FeatureRichSceneTracksWell) {
  const auto traj = extract_walk(cs::lab1(), 191);
  cc::Rng rng(191);
  const auto poses = cb::simulate_sfm_poses(traj, {}, rng);
  ASSERT_EQ(poses.size(), traj.keyframes.size());
}

TEST(SfmSim, FeaturePoorSceneDegrades) {
  const auto lab = extract_walk(cs::lab1(), 193);
  const auto gym = extract_walk(cs::gym(), 193);
  cc::Rng rng1(193);
  cc::Rng rng2(193);
  const auto lab_poses = cb::simulate_sfm_poses(lab, {}, rng1);
  const auto gym_poses = cb::simulate_sfm_poses(gym, {}, rng2);
  const double lab_err = cb::mean_aligned_error(lab_poses);
  const double gym_err = cb::mean_aligned_error(gym_poses);
  EXPECT_LT(lab_err, gym_err);
}

TEST(SfmSim, GrossFailuresBelowFeatureFloor) {
  const auto traj = extract_walk(cs::gym(), 195);
  cb::SfmConfig config;
  config.feature_floor = 100000;  // everything is "weak"
  config.gross_failure_prob = 1.0;
  cc::Rng rng(195);
  const auto poses = cb::simulate_sfm_poses(traj, config, rng);
  for (const auto& p : poses) EXPECT_FALSE(p.registered);
}

TEST(SfmSim, AlignedErrorZeroForPerfectPoses) {
  std::vector<cb::SfmPose> poses;
  for (int i = 0; i < 10; ++i) {
    cb::SfmPose p;
    p.truth = {{static_cast<double>(i), 0.0}, 0.0};
    p.estimated = p.truth;
    poses.push_back(p);
  }
  EXPECT_NEAR(cb::mean_aligned_error(poses), 0.0, 1e-9);
}

TEST(SfmSim, AlignedErrorGaugeInvariant) {
  // A rigidly transformed (but internally perfect) estimate has zero
  // aligned error — SfM's gauge freedom must not count as error.
  const crowdmap::geometry::Pose2 gauge{{5, -3}, 0.9};
  std::vector<cb::SfmPose> poses;
  for (int i = 0; i < 10; ++i) {
    cb::SfmPose p;
    p.truth = {{static_cast<double>(i), i % 3 * 0.7}, 0.0};
    p.estimated = {gauge.apply(p.truth.position), 0.9};
    poses.push_back(p);
  }
  EXPECT_NEAR(cb::mean_aligned_error(poses), 0.0, 1e-6);
}

// ------------------------------------------------------------ CrowdInside ---

TEST(GpsAnchor, PlacesEveryTrajectory) {
  std::vector<crowdmap::trajectory::Trajectory> trajectories;
  trajectories.push_back(extract_walk(cs::lab1(), 197));
  trajectories.push_back(extract_walk(cs::lab1(), 198));
  cc::Rng rng(197);
  const auto result = cb::aggregate_by_gps_anchor(trajectories, {}, rng);
  EXPECT_EQ(result.placed_count, 2u);
}

TEST(GpsAnchor, ErrorScalesWithGpsSigma) {
  std::vector<crowdmap::trajectory::Trajectory> trajectories;
  for (std::uint64_t s = 200; s < 206; ++s) {
    trajectories.push_back(extract_walk(cs::lab1(), s));
  }
  auto placement_error = [&](double sigma) {
    cb::GpsAnchorConfig config;
    config.gps_sigma = sigma;
    config.heading_sigma = 0.0;
    cc::Rng rng(209);
    const auto result = cb::aggregate_by_gps_anchor(trajectories, config, rng);
    double err = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < trajectories.size(); ++i) {
      for (const auto& kf : trajectories[i].keyframes) {
        err += result.global_pose[i]->apply(kf.position).distance_to(kf.true_position);
        ++n;
      }
    }
    return err / n;
  };
  EXPECT_LT(placement_error(0.5), placement_error(8.0));
}

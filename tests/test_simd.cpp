// The SIMD wrapper's determinism contract (docs/PERFORMANCE.md): every
// dispatched kernel produces BIT-IDENTICAL results on the scalar reference
// path and the compiled vector backend, the reduction kernels follow the
// pinned 4-lane order re-implemented independently here, and the blocked SoA
// matcher is output-invariant in its tile size. The final test pins the
// end-to-end consequence: serialized floor plans do not depend on
// simd.force_scalar or the thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "core/pipeline.hpp"
#include "floorplan/serialize.hpp"
#include "sim/buildings.hpp"
#include "sim/campaign.hpp"
#include "vision/matcher.hpp"
#include "vision/surf.hpp"

namespace cc = crowdmap::common;
namespace co = crowdmap::core;
namespace cs = crowdmap::sim;
namespace cv = crowdmap::vision;
namespace simd = crowdmap::common::simd;

namespace {

/// Restores the process-wide dispatch switches on scope exit so a failing
/// assertion cannot leak force-scalar mode into later tests.
struct DispatchGuard {
  bool scalar = simd::force_scalar();
  std::size_t tile = simd::match_tile();
  ~DispatchGuard() {
    simd::set_force_scalar(scalar);
    simd::set_match_tile(tile);
  }
};

std::vector<float> random_floats(cc::Rng& rng, std::size_t n, double lo,
                                 double hi) {
  std::vector<float> out(n);
  for (float& v : out) v = static_cast<float>(rng.uniform(lo, hi));
  return out;
}

/// Sizes that exercise the empty case, sub-lane tails, exact lane multiples,
/// and spans longer than one cache line.
const std::size_t kSizes[] = {0, 1, 3, 4, 7, 8, 13, 31, 64, 257};

// --- Independent pinned-order references (plain loops, no wrapper types). ---

double ref_reduce4(const double lane[4]) {
  return (lane[0] + lane[2]) + (lane[1] + lane[3]);
}

double ref_sum(const float* a, std::size_t n) {
  double lane[4] = {0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (int l = 0; l < 4; ++l) lane[l] += static_cast<double>(a[i + l]);
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += static_cast<double>(a[i]);
  return ref_reduce4(lane) + tail;
}

double ref_dot(const float* a, const float* b, std::size_t n) {
  double lane[4] = {0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (int l = 0; l < 4; ++l) {
      lane[l] += static_cast<double>(a[i + l]) * static_cast<double>(b[i + l]);
    }
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    tail += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return ref_reduce4(lane) + tail;
}

double ref_l2sq(const float* a, const float* b, std::size_t n) {
  double lane[4] = {0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (int l = 0; l < 4; ++l) {
      const double d =
          static_cast<double>(a[i + l]) - static_cast<double>(b[i + l]);
      lane[l] += d * d;
    }
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    tail += d * d;
  }
  return ref_reduce4(lane) + tail;
}

double ref_sum_min(const float* a, const float* b, std::size_t n) {
  double lane[4] = {0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (int l = 0; l < 4; ++l) {
      lane[l] += static_cast<double>(a[i + l] < b[i + l] ? a[i + l] : b[i + l]);
    }
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += static_cast<double>(a[i] < b[i] ? a[i] : b[i]);
  return ref_reduce4(lane) + tail;
}

/// Runs `fn` once with force_scalar off and once on, asserting both results
/// compare equal; returns the dispatched-path result.
template <typename Fn>
auto both_paths(Fn&& fn) {
  DispatchGuard guard;
  simd::set_force_scalar(false);
  const auto vec = fn();
  simd::set_force_scalar(true);
  const auto ref = fn();
  EXPECT_EQ(vec, ref) << "scalar and SIMD paths disagree";
  return vec;
}

}  // namespace

TEST(SimdBackend, CapabilityReportNamesCompiledBackend) {
  const std::string report = simd::capability_report();
  EXPECT_NE(report.find(simd::backend_name(simd::compiled_backend())),
            std::string::npos)
      << report;
  DispatchGuard guard;
  simd::set_force_scalar(true);
  EXPECT_EQ(simd::active_backend(), simd::Backend::kScalar);
  simd::set_force_scalar(false);
  EXPECT_EQ(simd::active_backend(), simd::compiled_backend());
}

TEST(SimdBackend, MatchTileClampsToLaneMultiples) {
  DispatchGuard guard;
  simd::set_match_tile(0);
  EXPECT_EQ(simd::match_tile(), simd::kF32Lanes);
  simd::set_match_tile(3);
  EXPECT_EQ(simd::match_tile(), simd::kF32Lanes);
  simd::set_match_tile(20);
  EXPECT_EQ(simd::match_tile(), 16u);
  simd::set_match_tile(100000);
  EXPECT_EQ(simd::match_tile(), simd::kMaxMatchTile);
}

TEST(SimdReductions, SumDotL2SumMinMatchPinnedReference) {
  cc::Rng rng(0x51D1);
  for (const std::size_t n : kSizes) {
    const auto a = random_floats(rng, n, -3.0, 3.0);
    const auto b = random_floats(rng, n, -3.0, 3.0);
    const double s = both_paths([&] { return simd::sum_f32(a.data(), n); });
    EXPECT_EQ(s, ref_sum(a.data(), n)) << "sum n=" << n;
    const double d =
        both_paths([&] { return simd::dot_f32(a.data(), b.data(), n); });
    EXPECT_EQ(d, ref_dot(a.data(), b.data(), n)) << "dot n=" << n;
    const double l =
        both_paths([&] { return simd::l2sq_f32(a.data(), b.data(), n); });
    EXPECT_EQ(l, ref_l2sq(a.data(), b.data(), n)) << "l2sq n=" << n;
    const double m =
        both_paths([&] { return simd::sum_min_f32(a.data(), b.data(), n); });
    EXPECT_EQ(m, ref_sum_min(a.data(), b.data(), n)) << "sum_min n=" << n;
  }
}

TEST(SimdReductions, Dot3AgreesWithSeparateDots) {
  cc::Rng rng(0x51D2);
  for (const std::size_t n : kSizes) {
    const auto a = random_floats(rng, n, -2.0, 2.0);
    const auto b = random_floats(rng, n, -2.0, 2.0);
    DispatchGuard guard;
    simd::set_force_scalar(false);
    const auto vec = simd::dot3_f32(a.data(), b.data(), n);
    simd::set_force_scalar(true);
    const auto ref = simd::dot3_f32(a.data(), b.data(), n);
    EXPECT_EQ(vec.ab, ref.ab) << "n=" << n;
    EXPECT_EQ(vec.aa, ref.aa) << "n=" << n;
    EXPECT_EQ(vec.bb, ref.bb) << "n=" << n;
    // The fused kernel runs the same per-lane arithmetic as three separate
    // pinned dots, so the components match those exactly too.
    EXPECT_EQ(vec.ab, ref_dot(a.data(), b.data(), n));
    EXPECT_EQ(vec.aa, ref_dot(a.data(), a.data(), n));
    EXPECT_EQ(vec.bb, ref_dot(b.data(), b.data(), n));
  }
}

TEST(SimdReductions, NccAccumBitExactAcrossPaths) {
  cc::Rng rng(0x51D3);
  for (const std::size_t n : kSizes) {
    const auto a = random_floats(rng, n, 0.0, 1.0);
    const auto b = random_floats(rng, n, 0.0, 1.0);
    const double ma = n ? ref_sum(a.data(), n) / static_cast<double>(n) : 0.0;
    const double mb = n ? ref_sum(b.data(), n) / static_cast<double>(n) : 0.0;
    DispatchGuard guard;
    simd::set_force_scalar(false);
    const auto vec = simd::ncc_accum_f32(a.data(), b.data(), ma, mb, n);
    simd::set_force_scalar(true);
    const auto ref = simd::ncc_accum_f32(a.data(), b.data(), ma, mb, n);
    EXPECT_EQ(vec.num, ref.num) << "n=" << n;
    EXPECT_EQ(vec.da, ref.da) << "n=" << n;
    EXPECT_EQ(vec.db, ref.db) << "n=" << n;
  }
}

TEST(SimdArgExtrema, MatchOnePassScanIncludingTies) {
  cc::Rng rng(0x51D4);
  for (const std::size_t n : kSizes) {
    if (n == 0) continue;  // argmin/argmax require n > 0
    auto a = random_floats(rng, n, -5.0, 5.0);
    // Plant duplicated extremes so the FIRST-index tie-break is exercised:
    // copy the element at the front third into the back third.
    if (n >= 3) a[n - 1] = a[n / 3];
    const auto one_pass_min = [&] {
      std::size_t idx = 0;
      for (std::size_t i = 1; i < n; ++i) {
        if (a[i] < a[idx]) idx = i;
      }
      return idx;
    }();
    const auto one_pass_max = [&] {
      std::size_t idx = 0;
      for (std::size_t i = 1; i < n; ++i) {
        if (a[idx] < a[i]) idx = i;
      }
      return idx;
    }();
    DispatchGuard guard;
    for (const bool scalar : {false, true}) {
      simd::set_force_scalar(scalar);
      const auto mn = simd::argmin_f32(a.data(), n);
      const auto mx = simd::argmax_f32(a.data(), n);
      EXPECT_EQ(mn.index, one_pass_min) << "n=" << n << " scalar=" << scalar;
      EXPECT_EQ(mn.value, a[one_pass_min]);
      EXPECT_EQ(mx.index, one_pass_max) << "n=" << n << " scalar=" << scalar;
      EXPECT_EQ(mx.value, a[one_pass_max]);
    }
  }
}

TEST(SimdElementwise, WeightedAccumulateAndNormalize) {
  cc::Rng rng(0x51D5);
  for (const std::size_t n : kSizes) {
    const auto w = random_floats(rng, n, 0.0, 1.0);
    const auto x = random_floats(rng, n, -4.0, 4.0);
    const auto seed = random_floats(rng, n, -1.0, 1.0);
    std::vector<float> expect(seed);
    for (std::size_t i = 0; i < n; ++i) {
      const float wx = w[i] * x[i];  // mul then add — no fused contraction
      expect[i] = expect[i] + wx;
    }
    DispatchGuard guard;
    for (const bool scalar : {false, true}) {
      simd::set_force_scalar(scalar);
      std::vector<float> acc(seed);
      simd::weighted_accumulate_f32(acc.data(), w.data(), x.data(), n);
      EXPECT_EQ(acc, expect) << "n=" << n << " scalar=" << scalar;
    }
    // normalize: zero out part of the weights to hit the masked branch.
    std::vector<float> den(w);
    for (std::size_t i = 0; i < n; i += 3) den[i] = 0.0f;
    std::vector<float> norm_expect(n);
    for (std::size_t i = 0; i < n; ++i) {
      norm_expect[i] = den[i] > 0.0f ? expect[i] / den[i] : 0.0f;
    }
    for (const bool scalar : {false, true}) {
      simd::set_force_scalar(scalar);
      std::vector<float> out(n, -99.0f);
      simd::normalize_by_weight_f32(out.data(), expect.data(), den.data(), n);
      EXPECT_EQ(out, norm_expect) << "n=" << n << " scalar=" << scalar;
    }
  }
}

TEST(SimdElementwise, MagnitudeAndMagAngle) {
  cc::Rng rng(0x51D6);
  for (const std::size_t n : kSizes) {
    auto gx = random_floats(rng, n, -10.0, 10.0);
    auto gy = random_floats(rng, n, -10.0, 10.0);
    // Axis and origin cases for the quadrant reconstruction.
    if (n >= 8) {
      gx[0] = 0.0f;            // +y axis
      gy[1] = 0.0f;            // +x axis
      gx[2] = -gx[2];          // force a negative-x quadrant somewhere
      gx[3] = 0.0f;
      gy[3] = 0.0f;            // origin: angle defined as 0
      gy[4] = -std::abs(gy[4]);  // -y half-plane
    }
    DispatchGuard guard;
    simd::set_force_scalar(false);
    std::vector<float> mag_v(n), ang_v(n), mag2_v(n);
    simd::magnitude_f32(gx.data(), gy.data(), mag2_v.data(), n);
    simd::mag_angle_f32(gx.data(), gy.data(), mag_v.data(), ang_v.data(), n);
    simd::set_force_scalar(true);
    std::vector<float> mag_s(n), ang_s(n), mag2_s(n);
    simd::magnitude_f32(gx.data(), gy.data(), mag2_s.data(), n);
    simd::mag_angle_f32(gx.data(), gy.data(), mag_s.data(), ang_s.data(), n);
    EXPECT_EQ(mag_v, mag_s) << "mag_angle magnitudes, n=" << n;
    EXPECT_EQ(ang_v, ang_s) << "angles, n=" << n;
    EXPECT_EQ(mag2_v, mag2_s) << "magnitude_f32, n=" << n;
    // Accuracy: the polynomial atan2 tracks libm to ~1e-5 rad, and the float
    // magnitude tracks hypot to float rounding.
    for (std::size_t i = 0; i < n; ++i) {
      const double want_mag = std::hypot(static_cast<double>(gx[i]),
                                         static_cast<double>(gy[i]));
      EXPECT_NEAR(mag_v[i], want_mag, 1e-3 * (1.0 + want_mag)) << i;
      if (gx[i] == 0.0f && gy[i] == 0.0f) {
        EXPECT_EQ(ang_v[i], 0.0f) << i;
      } else {
        const double want_ang = std::atan2(static_cast<double>(gy[i]),
                                           static_cast<double>(gx[i]));
        EXPECT_NEAR(ang_v[i], want_ang, 1e-3) << "gx=" << gx[i]
                                              << " gy=" << gy[i];
      }
    }
  }
}

TEST(SimdElementwise, SobelRowMatchesStencilExpression) {
  cc::Rng rng(0x51D7);
  for (const std::size_t n : kSizes) {
    // Rows carry one margin pixel on each side, as the kernel contract asks.
    const auto top = random_floats(rng, n + 2, 0.0, 1.0);
    const auto mid = random_floats(rng, n + 2, 0.0, 1.0);
    const auto bot = random_floats(rng, n + 2, 0.0, 1.0);
    std::vector<float> gx_ref(n), gy_ref(n);
    for (std::size_t i = 0; i < n; ++i) {
      const float tl = top[i], tc = top[i + 1], tr = top[i + 2];
      const float ml = mid[i], mr = mid[i + 2];
      const float bl = bot[i], bc = bot[i + 1], br = bot[i + 2];
      gx_ref[i] = ((tr + 2.0f * mr) + br) - ((tl + 2.0f * ml) + bl);
      gy_ref[i] = ((bl + 2.0f * bc) + br) - ((tl + 2.0f * tc) + tr);
    }
    DispatchGuard guard;
    for (const bool scalar : {false, true}) {
      simd::set_force_scalar(scalar);
      std::vector<float> gx(n), gy(n);
      simd::sobel_row_f32(top.data() + 1, mid.data() + 1, bot.data() + 1,
                          gx.data(), gy.data(), n);
      EXPECT_EQ(gx, gx_ref) << "n=" << n << " scalar=" << scalar;
      EXPECT_EQ(gy, gy_ref) << "n=" << n << " scalar=" << scalar;
    }
  }
}

namespace {

/// Synthetic feature set with pseudo-random unit-ish descriptors and mixed
/// Laplacian signs. Descriptor magnitudes mimic real SURF output (unit L2).
std::vector<cv::SurfFeature> synthetic_features(cc::Rng& rng, std::size_t n) {
  std::vector<cv::SurfFeature> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].keypoint.laplacian_positive = rng.chance(0.5);
    double norm_sq = 0.0;
    for (auto& v : out[i].descriptor) {
      v = static_cast<float>(rng.uniform(-1.0, 1.0));
      norm_sq += static_cast<double>(v) * v;
    }
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq + 1e-12));
    for (auto& v : out[i].descriptor) v *= inv;
  }
  return out;
}

}  // namespace

TEST(SimdSoa, BlockAccumEqualsDescriptorDistanceSq) {
  cc::Rng rng(0x50A1);
  const auto feats = synthetic_features(rng, 37);
  const auto queries = synthetic_features(rng, 5);
  for (const bool sign : {false, true}) {
    const auto block = cv::build_descriptor_block(feats, sign);
    ASSERT_EQ(block.stride % simd::kF32Lanes, 0u);
    for (const auto& q : queries) {
      DispatchGuard guard;
      for (const bool scalar : {false, true}) {
        simd::set_force_scalar(scalar);
        std::vector<float> d2(block.stride, 0.0f);
        simd::l2sq_soa_accum_f32(block.data.data(), block.stride,
                                 q.descriptor.data(), 0, cv::kSurfDescriptorDims,
                                 0, block.stride, d2.data());
        for (std::size_t j = 0; j < block.count; ++j) {
          const auto& original = feats[block.index[j]].descriptor;
          EXPECT_EQ(d2[j], cv::descriptor_distance_sq(q.descriptor, original))
              << "lane " << j << " scalar=" << scalar;
        }
      }
    }
  }
}

TEST(SimdSoa, NearestTwoInvariantAcrossTilesAndPaths) {
  cc::Rng rng(0x50A2);
  const auto feats = synthetic_features(rng, 83);
  const auto queries = synthetic_features(rng, 9);
  const auto block = cv::build_descriptor_block(feats, true);
  ASSERT_GT(block.count, 2u);
  for (const auto& q : queries) {
    // Reference full scan: first-index tie-break, exact float metric.
    std::size_t best = block.count;
    float best_d2 = std::numeric_limits<float>::max();
    float second_d2 = std::numeric_limits<float>::max();
    for (std::size_t j = 0; j < block.count; ++j) {
      const float d2 = cv::descriptor_distance_sq(
          q.descriptor, feats[block.index[j]].descriptor);
      if (d2 < best_d2) {
        second_d2 = best_d2;
        best_d2 = d2;
        best = j;
      } else if (d2 < second_d2) {
        second_d2 = d2;
      }
    }
    DispatchGuard guard;
    for (const std::size_t tile : {std::size_t{8}, std::size_t{24},
                                   std::size_t{64}, simd::kMaxMatchTile}) {
      simd::set_match_tile(tile);
      for (const bool scalar : {false, true}) {
        simd::set_force_scalar(scalar);
        const auto got = simd::nearest2_soa_f32(
            block.data.data(), block.stride, cv::kSurfDescriptorDims,
            block.count, q.descriptor.data());
        EXPECT_EQ(got.best, best) << "tile=" << tile << " scalar=" << scalar;
        EXPECT_EQ(got.best_d2, best_d2) << "tile=" << tile;
        EXPECT_EQ(got.second_d2, second_d2) << "tile=" << tile;
      }
    }
  }
}

TEST(SimdSoa, EmptyBlockReportsNoCandidate) {
  const std::vector<cv::SurfFeature> none;
  const auto block = cv::build_descriptor_block(none, true);
  EXPECT_EQ(block.count, 0u);
  std::array<float, cv::kSurfDescriptorDims> q{};
  const auto got = simd::nearest2_soa_f32(block.data.data(), block.stride,
                                          cv::kSurfDescriptorDims, block.count,
                                          q.data());
  EXPECT_EQ(got.best, 0u);  // == count, the "no candidate" sentinel
}

TEST(SimdMatcher, MutualNnIdenticalAcrossDispatchAndTile) {
  cc::Rng rng(0x50A3);
  const auto f1 = synthetic_features(rng, 60);
  // f2 = noisy copies of a subset of f1 plus distractors, so real mutual
  // matches exist alongside near-ties.
  auto f2 = synthetic_features(rng, 20);
  for (std::size_t i = 0; i < 30; ++i) {
    cv::SurfFeature f = f1[i * 2];
    for (auto& v : f.descriptor) {
      v += static_cast<float>(rng.uniform(-0.02, 0.02));
    }
    f2.push_back(f);
  }
  const auto baseline = cv::mutual_nn_matches(f1, f2, 0.35, 0.9);
  EXPECT_FALSE(baseline.empty());
  DispatchGuard guard;
  for (const std::size_t tile : {std::size_t{8}, simd::kMaxMatchTile}) {
    for (const bool scalar : {false, true}) {
      simd::set_match_tile(tile);
      simd::set_force_scalar(scalar);
      const auto got = cv::mutual_nn_matches(f1, f2, 0.35, 0.9);
      ASSERT_EQ(got.size(), baseline.size())
          << "tile=" << tile << " scalar=" << scalar;
      for (std::size_t k = 0; k < got.size(); ++k) {
        EXPECT_EQ(got[k].index1, baseline[k].index1);
        EXPECT_EQ(got[k].index2, baseline[k].index2);
        EXPECT_EQ(got[k].distance, baseline[k].distance);
      }
    }
  }
}

TEST(SimdMatcher, DirectAndBlockedPathsMatchBruteForceReference) {
  // mutual_nn_matches takes a direct O(N^2) scan when both sides have <= 32
  // features and the SoA-blocked scan otherwise. Both must equal this
  // brute-force restatement of the algorithm (same metric, same strict-<
  // first-index tie-break, same ratio/threshold/mutual gates) — so the size
  // cutoff can never change the output.
  const auto reference = [](const std::vector<cv::SurfFeature>& f1,
                            const std::vector<cv::SurfFeature>& f2,
                            double threshold, double ratio) {
    const auto nearest2 = [](const std::vector<cv::SurfFeature>& cands,
                             const cv::SurfFeature& q) {
      std::size_t best = cands.size();
      float best_d2 = std::numeric_limits<float>::max();
      float second_d2 = std::numeric_limits<float>::max();
      for (std::size_t j = 0; j < cands.size(); ++j) {
        if (cands[j].keypoint.laplacian_positive !=
            q.keypoint.laplacian_positive) {
          continue;
        }
        const float d2 =
            cv::descriptor_distance_sq(q.descriptor, cands[j].descriptor);
        if (d2 < best_d2) {
          second_d2 = best_d2;
          best_d2 = d2;
          best = j;
        } else if (d2 < second_d2) {
          second_d2 = d2;
        }
      }
      return std::tuple{best, best_d2, second_d2};
    };
    std::vector<cv::FeatureMatch> out;
    for (std::size_t i = 0; i < f1.size(); ++i) {
      const auto [j, best_d2, second_d2] = nearest2(f2, f1[i]);
      if (j >= f2.size()) continue;
      const double best_dist = std::sqrt(static_cast<double>(best_d2));
      if (best_dist >= threshold) continue;
      if (ratio < 1.0 && second_d2 < std::numeric_limits<float>::max()) {
        const double second_dist = std::sqrt(static_cast<double>(second_d2));
        if (second_dist > 0 && best_dist / second_dist >= ratio) continue;
      }
      const auto [back, b1, b2] = nearest2(f1, f2[j]);
      if (back != i) continue;
      out.push_back({i, j, best_dist});
    }
    return out;
  };

  cc::Rng rng(0x50A4);
  // (12, 12): both sides under the cutoff — direct scan. (12, 48) and
  // (48, 48): blocked scan. Same generator, so only the path differs.
  for (const auto& [n1, n2] : std::initializer_list<
           std::pair<std::size_t, std::size_t>>{{12, 12}, {12, 48}, {48, 48}}) {
    const auto f1 = synthetic_features(rng, n1);
    auto f2 = synthetic_features(rng, n2 / 2);
    for (std::size_t i = 0; i < n2 - n2 / 2; ++i) {
      cv::SurfFeature f = f1[i % n1];
      for (auto& v : f.descriptor) {
        v += static_cast<float>(rng.uniform(-0.02, 0.02));
      }
      f2.push_back(f);
    }
    const auto want = reference(f1, f2, 0.35, 0.9);
    DispatchGuard guard;
    for (const bool scalar : {false, true}) {
      simd::set_force_scalar(scalar);
      const auto got = cv::mutual_nn_matches(f1, f2, 0.35, 0.9);
      ASSERT_EQ(got.size(), want.size())
          << "n1=" << n1 << " n2=" << n2 << " scalar=" << scalar;
      for (std::size_t k = 0; k < got.size(); ++k) {
        EXPECT_EQ(got[k].index1, want[k].index1);
        EXPECT_EQ(got[k].index2, want[k].index2);
        EXPECT_EQ(got[k].distance, want[k].distance);
      }
    }
  }
}

TEST(SimdPipeline, FloorPlanBytesInvariantToDispatchAndThreads) {
  // End-to-end determinism: serialized plans are byte-identical with SIMD
  // kernels dispatched vs forced scalar, at 1 and at 4 threads. This is the
  // runtime half of the SIMD-off CI leg (which rebuilds with
  // -DCROWDMAP_SIMD=OFF and runs the whole suite).
  const auto run = [](bool force_scalar, std::size_t threads) {
    DispatchGuard guard;
    cc::Rng rng(0x51D8);
    const auto spec = cs::random_building(2, rng);
    cs::CampaignOptions options;
    options.users = 2;
    options.room_videos_per_room = 1;
    options.hallway_walks = 4;
    options.junk_fraction = 0.0;
    options.sim.fps = 3.0;
    co::PipelineConfig config = co::PipelineConfig::fast_profile();
    config.parallel.threads = threads;
    config.simd.force_scalar = force_scalar;
    // The bare stage executor is the unit under test here.
    // crowdmap-lint: allow(pipeline-construction)
    co::CrowdMapPipeline pipeline(config);
    cs::generate_campaign_streaming(
        spec, options, 0x51D8,
        [&pipeline](cs::SensorRichVideo&& video) { pipeline.ingest(video); });
    return crowdmap::floorplan::encode_floorplan(pipeline.run().plan);
  };
  const auto baseline = run(false, 1);
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(run(true, 1), baseline) << "scalar path changed the plan bytes";
  EXPECT_EQ(run(false, 4), baseline) << "thread count changed the plan bytes";
  EXPECT_EQ(run(true, 4), baseline) << "scalar x threads changed the bytes";
}

// Tests for the assembled cloud backend: concurrent chunked uploads through
// ingestion, async extraction on the worker pool, per-floor plan builds.
#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "cloud/service.hpp"
#include "common/rng.hpp"
#include "sim/buildings.hpp"
#include "sim/campaign.hpp"

namespace cl = crowdmap::cloud;
namespace cs = crowdmap::sim;
namespace co = crowdmap::core;
namespace cc = crowdmap::common;

namespace {

/// Harness: videos travel by side table keyed by upload id; the wire payload
/// is the serialized IMU stream (pixels stay in "blob storage").
struct Fixture {
  std::map<std::string, cs::SensorRichVideo> videos;

  cl::VideoDecoder decoder() {
    return [this](const cl::Document& doc) -> std::optional<cs::SensorRichVideo> {
      const auto it = videos.find(doc.id);
      if (it == videos.end()) return std::nullopt;
      return it->second;
    };
  }
};

std::vector<cs::SensorRichVideo> small_campaign(std::uint64_t seed) {
  std::vector<cs::SensorRichVideo> out;
  cc::Rng rng(seed);
  const auto spec = cs::random_building(2, rng);
  cs::CampaignOptions options;
  options.users = 2;
  options.room_videos_per_room = 1;
  options.hallway_walks = 5;
  options.junk_fraction = 0.0;
  options.sim.fps = 3.0;
  cs::generate_campaign_streaming(spec, options, seed,
                                  [&out](cs::SensorRichVideo&& video) {
                                    out.push_back(std::move(video));
                                  });
  return out;
}

}  // namespace

TEST(Service, EndToEndUploadsBuildPlan) {
  Fixture fixture;
  cl::CrowdMapService service(co::PipelineConfig::fast_profile(),
                              fixture.decoder(), 2);
  const auto videos = small_campaign(701);
  for (std::size_t v = 0; v < videos.size(); ++v) {
    const std::string id = "u" + std::to_string(v);
    fixture.videos[id] = videos[v];
    service.open_session(id, videos[v].building, videos[v].floor);
    const cl::Blob payload(256, static_cast<std::uint8_t>(v));
    for (const auto& chunk : cl::split_into_chunks(payload, id, 100)) {
      EXPECT_NE(service.deliver(chunk), cl::IngestStatus::kRejected);
    }
  }
  service.drain();
  const auto stats = service.stats();
  EXPECT_EQ(stats.uploads_completed, videos.size());
  EXPECT_EQ(stats.videos_decoded, videos.size());
  EXPECT_GT(stats.trajectories_extracted, 0u);

  const auto result =
      service.build_floor_plan(videos.front().building, videos.front().floor);
  EXPECT_GT(result.diagnostics.trajectories_kept, 0u);
  EXPECT_GT(result.skeleton.raster.count_set(), 0u);
}

TEST(Service, StatsMatchMetricsRegistry) {
  Fixture fixture;
  cl::CrowdMapService service(co::PipelineConfig::fast_profile(),
                              fixture.decoder(), 2);
  const auto videos = small_campaign(702);
  for (std::size_t v = 0; v < videos.size(); ++v) {
    const std::string id = "m" + std::to_string(v);
    fixture.videos[id] = videos[v];
    service.open_session(id, videos[v].building, videos[v].floor);
    for (const auto& chunk :
         cl::split_into_chunks(cl::Blob(128, static_cast<std::uint8_t>(v)), id,
                               64)) {
      service.deliver(chunk);
    }
  }
  service.drain();

  // stats() is a view over the registry, so the two must agree exactly.
  const auto stats = service.stats();
  const auto snap = service.metrics().snapshot();
  EXPECT_EQ(stats.uploads_completed,
            static_cast<std::size_t>(snap.value("crowdmap_uploads_completed_total")));
  EXPECT_EQ(stats.uploads_rejected,
            static_cast<std::size_t>(snap.value("crowdmap_uploads_rejected_total")));
  EXPECT_EQ(stats.videos_decoded,
            static_cast<std::size_t>(snap.value("crowdmap_videos_decoded_total")));
  EXPECT_EQ(stats.decode_failures,
            static_cast<std::size_t>(snap.value("crowdmap_decode_failures_total")));
  EXPECT_EQ(stats.trajectories_extracted,
            static_cast<std::size_t>(
                snap.value("crowdmap_trajectories_extracted_total")));
  EXPECT_EQ(stats.trajectories_dropped,
            static_cast<std::size_t>(
                snap.value("crowdmap_trajectories_dropped_total")));

  // The extraction histogram saw one observation per decoded video, and the
  // drained pool leaves the queue-depth gauge at zero.
  const auto* extract = snap.find("crowdmap_extract_seconds");
  ASSERT_NE(extract, nullptr);
  ASSERT_EQ(extract->series.size(), 1u);
  EXPECT_EQ(extract->series[0].histogram.count, stats.videos_decoded);
  EXPECT_DOUBLE_EQ(snap.value("crowdmap_worker_queue_depth"), 0.0);
}

TEST(Service, DecodeFailureCounted) {
  Fixture fixture;  // empty side table: every decode fails
  cl::CrowdMapService service(co::PipelineConfig::fast_profile(),
                              fixture.decoder(), 1);
  service.open_session("ghost", "Lab1", 1);
  const cl::Blob payload(64, 7);
  for (const auto& chunk : cl::split_into_chunks(payload, "ghost", 32)) {
    service.deliver(chunk);
  }
  service.drain();
  const auto stats = service.stats();
  EXPECT_EQ(stats.uploads_completed, 1u);
  EXPECT_EQ(stats.decode_failures, 1u);
  EXPECT_EQ(stats.trajectories_extracted, 0u);
}

TEST(Service, UnknownFloorBuildsEmptyPlan) {
  Fixture fixture;
  cl::CrowdMapService service(co::PipelineConfig::fast_profile(),
                              fixture.decoder(), 1);
  const auto result = service.build_floor_plan("Nowhere", 9);
  EXPECT_EQ(result.diagnostics.trajectories_kept, 0u);
}

TEST(Service, ConcurrentDeliveryFromManyClients) {
  Fixture fixture;
  cl::CrowdMapService service(co::PipelineConfig::fast_profile(),
                              fixture.decoder(), 2);
  const auto videos = small_campaign(703);
  // Register sessions and payloads first.
  std::vector<std::vector<cl::Chunk>> chunk_sets;
  for (std::size_t v = 0; v < videos.size(); ++v) {
    const std::string id = "c" + std::to_string(v);
    fixture.videos[id] = videos[v];
    service.open_session(id, videos[v].building, videos[v].floor);
    chunk_sets.push_back(
        cl::split_into_chunks(cl::Blob(512, static_cast<std::uint8_t>(v)), id, 64));
  }
  std::vector<std::thread> clients;
  for (auto& chunks : chunk_sets) {
    clients.emplace_back([&service, &chunks] {
      for (const auto& chunk : chunks) service.deliver(chunk);
    });
  }
  for (auto& t : clients) t.join();
  service.drain();
  EXPECT_EQ(service.stats().uploads_completed, videos.size());
  EXPECT_EQ(service.store().size(), videos.size());
}

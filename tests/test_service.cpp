// Tests for the assembled cloud backend through the versioned api::v1
// facade: chunked uploads through ingestion, async extraction on the worker
// pool, per-floor incremental plan builds.
#include <gtest/gtest.h>

#include <thread>

#include "api/crowdmap.hpp"
#include "common/rng.hpp"
#include "sim/buildings.hpp"
#include "sim/campaign.hpp"

namespace ap = crowdmap::api::v1;
namespace cl = crowdmap::cloud;
namespace cs = crowdmap::sim;
namespace co = crowdmap::core;
namespace cc = crowdmap::common;

namespace {

ap::Client make_client(std::size_t workers = 2) {
  ap::ClientOptions options;
  options.config = co::PipelineConfig::fast_profile();
  options.workers = workers;
  return ap::Client(std::move(options));
}

std::vector<cs::SensorRichVideo> small_campaign(std::uint64_t seed) {
  std::vector<cs::SensorRichVideo> out;
  cc::Rng rng(seed);
  const auto spec = cs::random_building(2, rng);
  cs::CampaignOptions options;
  options.users = 2;
  options.room_videos_per_room = 1;
  options.hallway_walks = 5;
  options.junk_fraction = 0.0;
  options.sim.fps = 3.0;
  cs::generate_campaign_streaming(spec, options, seed,
                                  [&out](cs::SensorRichVideo&& video) {
                                    out.push_back(std::move(video));
                                  });
  return out;
}

}  // namespace

TEST(Service, EndToEndUploadsBuildPlan) {
  auto client = make_client();
  const auto videos = small_campaign(701);
  for (const auto& video : videos) {
    const auto response = client.submit_video(video);
    EXPECT_TRUE(response.accepted);
    EXPECT_EQ(response.chunks_rejected, 0u);
  }
  client.drain();
  const auto stats = client.stats();
  EXPECT_EQ(stats.uploads_completed, videos.size());
  EXPECT_EQ(stats.videos_decoded, videos.size());
  EXPECT_GT(stats.trajectories_extracted, 0u);

  const auto response = client.build_plan(
      {videos.front().building, videos.front().floor, std::nullopt});
  EXPECT_GT(response.result.diagnostics.trajectories_kept, 0u);
  EXPECT_GT(response.result.skeleton.raster.count_set(), 0u);
}

TEST(Service, StatsMatchMetricsRegistry) {
  auto client = make_client();
  const auto videos = small_campaign(702);
  for (const auto& video : videos) (void)client.submit_video(video);
  client.drain();

  // stats() is a view over the registry, so the two must agree exactly.
  const auto stats = client.stats();
  const auto snap = client.metrics();
  EXPECT_EQ(stats.uploads_completed,
            static_cast<std::size_t>(snap.value("crowdmap_uploads_completed_total")));
  EXPECT_EQ(stats.uploads_rejected,
            static_cast<std::size_t>(snap.value("crowdmap_uploads_rejected_total")));
  EXPECT_EQ(stats.videos_decoded,
            static_cast<std::size_t>(snap.value("crowdmap_videos_decoded_total")));
  EXPECT_EQ(stats.decode_failures,
            static_cast<std::size_t>(snap.value("crowdmap_decode_failures_total")));
  EXPECT_EQ(stats.trajectories_extracted,
            static_cast<std::size_t>(
                snap.value("crowdmap_trajectories_extracted_total")));
  EXPECT_EQ(stats.trajectories_dropped,
            static_cast<std::size_t>(
                snap.value("crowdmap_trajectories_dropped_total")));

  // The extraction histogram saw one observation per decoded video, and the
  // drained pool leaves the queue-depth gauge at zero.
  const auto* extract = snap.find("crowdmap_extract_seconds");
  ASSERT_NE(extract, nullptr);
  ASSERT_EQ(extract->series.size(), 1u);
  EXPECT_EQ(extract->series[0].histogram.count, stats.videos_decoded);
  EXPECT_DOUBLE_EQ(snap.value("crowdmap_worker_queue_depth"), 0.0);
}

TEST(Service, ArtifactCacheCountersSurfaceInStatsAndMetrics) {
  auto client = make_client();
  const auto videos = small_campaign(705);
  for (const auto& video : videos) (void)client.submit_video(video);
  const std::string building = videos.front().building;
  const int floor = videos.front().floor;
  (void)client.build_plan({building, floor, std::nullopt});
  const auto warm = client.build_plan({building, floor, std::nullopt});

  // The repeat build replayed artifacts; the service-level view agrees with
  // the per-build reuse report and with the exported counters.
  EXPECT_GT(warm.cache.artifact_hits, 0u);
  const auto stats = client.stats();
  EXPECT_GE(stats.artifact_cache.hits, warm.cache.artifact_hits);
  const auto snap = client.metrics();
  EXPECT_GE(snap.value("crowdmap_artifact_cache_hits_total"),
            static_cast<double>(warm.cache.artifact_hits));
}

TEST(Service, DecodeFailureCounted) {
  auto client = make_client(1);  // nothing registered: every decode fails
  ap::SubmitUploadRequest request;
  request.upload_id = "ghost";
  request.building = "Lab1";
  request.floor = 1;
  request.payload = cl::Blob(64, 7);
  const auto response = client.submit_upload(request);
  EXPECT_TRUE(response.accepted);
  client.drain();
  const auto stats = client.stats();
  EXPECT_EQ(stats.uploads_completed, 1u);
  EXPECT_EQ(stats.decode_failures, 1u);
  EXPECT_EQ(stats.trajectories_extracted, 0u);
}

TEST(Service, UnknownFloorBuildsEmptyPlan) {
  auto client = make_client(1);
  const auto response = client.build_plan({"Nowhere", 9, std::nullopt});
  EXPECT_EQ(response.result.diagnostics.trajectories_kept, 0u);
}

TEST(Service, ConcurrentSubmissionFromManyClients) {
  auto client = make_client();
  const auto videos = small_campaign(703);
  std::vector<std::thread> clients;
  clients.reserve(videos.size());
  for (const auto& video : videos) {
    clients.emplace_back([&client, &video] {
      const auto response = client.submit_video(video);
      EXPECT_TRUE(response.accepted);
    });
  }
  for (auto& t : clients) t.join();
  client.drain();
  EXPECT_EQ(client.stats().uploads_completed, videos.size());
  EXPECT_EQ(client.document_store().size(), videos.size());
}

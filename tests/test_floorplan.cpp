// Tests for floor plan modeling: Kabsch alignment, force-directed room
// arrangement, metrics and rendering.
#include <gtest/gtest.h>

#include <cmath>

#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "floorplan/arrange.hpp"
#include "floorplan/eval.hpp"
#include "floorplan/floorplan.hpp"
#include "sim/buildings.hpp"

namespace cf = crowdmap::floorplan;
namespace cg = crowdmap::geometry;
namespace cc = crowdmap::common;
using cg::Vec2;

// ---------------------------------------------------------------- Kabsch ---

TEST(Kabsch, RecoversKnownTransform) {
  cc::Rng rng(181);
  const cg::Pose2 truth{{3.5, -2.0}, 0.7};
  std::vector<Vec2> from;
  std::vector<Vec2> to;
  for (int i = 0; i < 30; ++i) {
    const Vec2 p{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    from.push_back(p);
    to.push_back(truth.apply(p));
  }
  const auto est = cf::kabsch_align(from, to);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->position.x, truth.position.x, 1e-9);
  EXPECT_NEAR(est->position.y, truth.position.y, 1e-9);
  EXPECT_NEAR(cc::angle_diff(est->theta, truth.theta), 0.0, 1e-9);
}

TEST(Kabsch, RobustToNoise) {
  cc::Rng rng(182);
  const cg::Pose2 truth{{1.0, 2.0}, -0.4};
  std::vector<Vec2> from;
  std::vector<Vec2> to;
  for (int i = 0; i < 200; ++i) {
    const Vec2 p{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    from.push_back(p);
    to.push_back(truth.apply(p) + Vec2{rng.normal(0, 0.3), rng.normal(0, 0.3)});
  }
  const auto est = cf::kabsch_align(from, to);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->position.x, truth.position.x, 0.15);
  EXPECT_NEAR(cc::angle_diff(est->theta, truth.theta), 0.0, 0.02);
}

TEST(Kabsch, DegenerateInputs) {
  EXPECT_FALSE(cf::kabsch_align({}, {}).has_value());
  const std::vector<Vec2> one = {{1, 1}};
  EXPECT_FALSE(cf::kabsch_align(one, one).has_value());
  const std::vector<Vec2> two = {{1, 1}, {2, 2}};
  const std::vector<Vec2> three = {{1, 1}, {2, 2}, {3, 3}};
  EXPECT_FALSE(cf::kabsch_align(two, three).has_value());
}

// ------------------------------------------------------------ aspect error ---

TEST(AspectError, ExactMatch) {
  EXPECT_NEAR(cf::aspect_ratio_error(4, 2, 4, 2), 0.0, 1e-12);
}

TEST(AspectError, SwappedAxesResolved) {
  // Estimated 2x4 against truth 4x2: the labelling is ambiguous; error 0.
  EXPECT_NEAR(cf::aspect_ratio_error(2, 4, 4, 2), 0.0, 1e-12);
}

TEST(AspectError, GenuineMismatch) {
  // Truth aspect 2.0, estimate 3.0 (or 1/3): min(|3-2|/2, |1/3-2|/2) = 0.5.
  EXPECT_NEAR(cf::aspect_ratio_error(6, 2, 4, 2), 0.5, 1e-9);
}

TEST(AspectError, DegenerateInputs) {
  EXPECT_EQ(cf::aspect_ratio_error(0, 2, 4, 2), 1.0);
  EXPECT_EQ(cf::aspect_ratio_error(4, 2, 4, 0), 1.0);
}

// ---------------------------------------------------------------- arrange ---

namespace {

cf::PlacedRoom make_room(Vec2 center, double w = 4, double d = 4) {
  cf::PlacedRoom room;
  room.center = center;
  room.anchor = center;
  room.width = w;
  room.depth = d;
  return room;
}

cg::BoolRaster empty_hallway() {
  return cg::BoolRaster(cg::Aabb{{-20, -20}, {20, 20}}, 0.5);
}

}  // namespace

TEST(Arrange, OverlapArea) {
  const auto a = make_room({0, 0});
  const auto b = make_room({2, 0});
  EXPECT_NEAR(cf::room_overlap_area(a, b), 8.0, 1e-6);
  const auto far = make_room({20, 0});
  EXPECT_EQ(cf::room_overlap_area(a, far), 0.0);
}

TEST(Arrange, SeparatesOverlappingRooms) {
  std::vector<cf::PlacedRoom> rooms = {make_room({0, 0}), make_room({1.0, 0})};
  const auto hallway = empty_hallway();
  const auto stats = cf::arrange_rooms(rooms, hallway);
  EXPECT_LT(cf::room_overlap_area(rooms[0], rooms[1]), 2.0);
  EXPECT_LT(stats.total_room_overlap, 2.0);
  EXPECT_GT(stats.iterations, 0);
}

TEST(Arrange, AnchoredRoomStaysPut) {
  std::vector<cf::PlacedRoom> rooms = {make_room({5, 5})};
  const auto hallway = empty_hallway();
  (void)cf::arrange_rooms(rooms, hallway);
  EXPECT_LT(rooms[0].center.distance_to({5, 5}), 0.1);
}

TEST(Arrange, HallwayPushesIntrudingRoom) {
  auto hallway = empty_hallway();
  // Corridor band along y = 0.
  hallway.fill_polygon(cg::Polygon::rectangle({0, 0}, 30, 2.4));
  // Room whose footprint dips into the corridor.
  std::vector<cf::PlacedRoom> rooms = {make_room({0, 2.0})};
  (void)cf::arrange_rooms(rooms, hallway);
  // Room should have been pushed away from the corridor (up).
  EXPECT_GT(rooms[0].center.y, 2.0);
}

TEST(Arrange, EmptyRoomsNoCrash) {
  std::vector<cf::PlacedRoom> rooms;
  const auto stats = cf::arrange_rooms(rooms, empty_hallway());
  EXPECT_EQ(stats.iterations, 0);
}

TEST(Arrange, CoincidentRoomsSeparate) {
  std::vector<cf::PlacedRoom> rooms = {make_room({0, 0}), make_room({0, 0})};
  (void)cf::arrange_rooms(rooms, empty_hallway());
  EXPECT_GT(rooms[0].center.distance_to(rooms[1].center), 0.5);
}

// ------------------------------------------------------------- evaluation ---

TEST(EvaluateRooms, ComputesAllThreeErrors) {
  const auto spec = crowdmap::sim::lab1();
  cf::FloorPlan plan;
  plan.hallway = cg::BoolRaster(spec.extent(), 0.5);
  // Perfect reconstruction of room 1, shifted reconstruction of room 2.
  const auto& r1 = spec.rooms[0];
  const auto& r2 = spec.rooms[1];
  cf::PlacedRoom p1;
  p1.center = r1.center;
  p1.width = r1.width;
  p1.depth = r1.depth;
  p1.true_room_id = r1.id;
  cf::PlacedRoom p2;
  p2.center = r2.center + Vec2{1.0, 0.0};
  p2.width = r2.width * 1.1;  // 10% width error
  p2.depth = r2.depth;
  p2.true_room_id = r2.id;
  plan.rooms = {p1, p2};
  const auto errors = cf::evaluate_rooms(plan, spec, cg::Pose2{});
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_NEAR(errors[0].area_error, 0.0, 1e-9);
  EXPECT_NEAR(errors[0].location_error_m, 0.0, 1e-9);
  EXPECT_NEAR(errors[1].area_error, 0.1, 1e-6);
  EXPECT_NEAR(errors[1].location_error_m, 1.0, 1e-9);
}

TEST(EvaluateRooms, SkipsUnknownRooms) {
  const auto spec = crowdmap::sim::lab1();
  cf::FloorPlan plan;
  plan.hallway = cg::BoolRaster(spec.extent(), 0.5);
  cf::PlacedRoom unknown;
  unknown.true_room_id = -1;
  plan.rooms = {unknown};
  EXPECT_TRUE(cf::evaluate_rooms(plan, spec, cg::Pose2{}).empty());
}

TEST(EvaluateRooms, AlignmentTransformApplied) {
  const auto spec = crowdmap::sim::lab1();
  const auto& r1 = spec.rooms[0];
  cf::FloorPlan plan;
  plan.hallway = cg::BoolRaster(spec.extent(), 0.5);
  // Plan in a frame shifted by (10, 0): alignment undoes the shift.
  cf::PlacedRoom p;
  p.center = r1.center - Vec2{10, 0};
  p.width = r1.width;
  p.depth = r1.depth;
  p.true_room_id = r1.id;
  plan.rooms = {p};
  const auto errors =
      cf::evaluate_rooms(plan, spec, cg::Pose2{{10, 0}, 0.0});
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NEAR(errors[0].location_error_m, 0.0, 1e-9);
}

// -------------------------------------------------------------- rendering ---

TEST(Render, AsciiShowsHallwayAndRooms) {
  cf::FloorPlan plan;
  plan.hallway = cg::BoolRaster(cg::Aabb{{0, 0}, {20, 20}}, 0.5);
  plan.hallway.fill_polygon(cg::Polygon::rectangle({10, 5}, 16, 2.4));
  plan.rooms = {make_room({10, 12}, 6, 5)};
  const std::string ascii = plan.to_ascii(60);
  EXPECT_NE(ascii.find('#'), std::string::npos);
  EXPECT_NE(ascii.find('R'), std::string::npos);
  EXPECT_NE(ascii.find('+'), std::string::npos);
}

TEST(Render, SvgWellFormed) {
  cf::FloorPlan plan;
  plan.hallway = cg::BoolRaster(cg::Aabb{{0, 0}, {10, 10}}, 0.5);
  plan.hallway.set(5, 5, true);
  plan.rooms = {make_room({5, 5}, 2, 2)};
  const std::string svg = plan.to_svg();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("<polygon"), std::string::npos);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
}

// Tests for the content-addressed artifact cache: key stability, bounding,
// fault-forced eviction, and the persistence round-trip through cache/serialize.
#include <gtest/gtest.h>

#include <vector>

#include "cache/artifact_cache.hpp"
#include "cache/serialize.hpp"
#include "common/fault.hpp"

namespace ca = crowdmap::cache;
namespace cc = crowdmap::common;
namespace io = crowdmap::io;

namespace {

std::vector<std::uint8_t> payload_of(std::size_t n, std::uint8_t fill) {
  return std::vector<std::uint8_t>(n, fill);
}

ca::ArtifactKey key_of(std::uint64_t salt) {
  ca::KeyBuilder k;
  k.u64(salt);
  return k.finish();
}

}  // namespace

TEST(KeyBuilder, DeterministicAndSensitive) {
  ca::KeyBuilder a;
  a.u64(7);
  a.f64(1.5);
  a.str("room");
  ca::KeyBuilder b;
  b.u64(7);
  b.f64(1.5);
  b.str("room");
  EXPECT_EQ(a.finish(), b.finish());

  ca::KeyBuilder c;  // one field differs -> different key
  c.u64(7);
  c.f64(1.5);
  c.str("rooms");
  EXPECT_NE(a.finish(), c.finish());

  ca::KeyBuilder d;  // field order is part of the preimage
  d.f64(1.5);
  d.u64(7);
  d.str("room");
  EXPECT_NE(a.finish(), d.finish());
}

TEST(KeyBuilder, HashesExactFloatBits) {
  ca::KeyBuilder pos;
  pos.f64(0.0);
  ca::KeyBuilder neg;
  neg.f64(-0.0);
  // 0.0 and -0.0 compare equal but are different bit patterns — the cache
  // keys byte-exact reproduction, so they must hash differently.
  EXPECT_NE(pos.finish(), neg.finish());
}

TEST(KeyBuilder, EmptyInputStillMixes) {
  const ca::ArtifactKey k = ca::KeyBuilder{}.finish();
  EXPECT_NE(k.hi, 0u);
  EXPECT_NE(k.lo, 0u);
  EXPECT_NE(k.hi, k.lo);
}

TEST(ArtifactCache, HitMissAndFamilyCounters) {
  ca::ArtifactCache cache(1 << 20);
  const auto key = key_of(1);
  EXPECT_FALSE(cache.lookup(ca::Family::kRoom, key).has_value());
  cache.insert(ca::Family::kRoom, key, payload_of(8, 0xAB));
  const auto hit = cache.lookup(ca::Family::kRoom, key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, payload_of(8, 0xAB));

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 8u);
  const auto room = static_cast<std::size_t>(ca::Family::kRoom);
  EXPECT_EQ(stats.family_hits[room], 1u);
  EXPECT_EQ(stats.family_misses[room], 1u);
}

TEST(ArtifactCache, DuplicateInsertKeepsFirstValue) {
  ca::ArtifactCache cache(1 << 20);
  const auto key = key_of(2);
  cache.insert(ca::Family::kPairMatch, key, payload_of(4, 1));
  cache.insert(ca::Family::kPairMatch, key, payload_of(4, 2));
  EXPECT_EQ(*cache.lookup(ca::Family::kPairMatch, key), payload_of(4, 1));
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ArtifactCache, FifoEvictionHoldsByteBudget) {
  // One shard so the budget math is exact.
  ca::ArtifactCache cache(64, /*shards=*/1);
  for (std::uint64_t i = 0; i < 16; ++i) {
    cache.insert(ca::Family::kSkeleton, key_of(i), payload_of(16, 0x11));
  }
  const auto stats = cache.stats();
  EXPECT_LE(stats.bytes, 64u);
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_EQ(stats.invalidations, 12u);  // each over-budget insert evicted one
}

TEST(ArtifactCache, OversizedPayloadRefused) {
  ca::ArtifactCache cache(64, /*shards=*/1);
  cache.insert(ca::Family::kArrange, key_of(3), payload_of(65, 0x22));
  EXPECT_FALSE(cache.lookup(ca::Family::kArrange, key_of(3)).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.invalidations(), 1u);
}

TEST(ArtifactCache, FaultPointRefusesInsertsDeterministically) {
  auto plan = cc::parse_fault_plan("9:cache.artifact_evict=1.0");
  ASSERT_TRUE(plan.ok());
  cc::FaultInjector injector;
  injector.arm(plan.value());

  ca::ArtifactCache cache(1 << 20);
  cache.set_fault_injector(&injector);
  cache.insert(ca::Family::kRoom, key_of(4), payload_of(8, 0x33));
  EXPECT_FALSE(cache.lookup(ca::Family::kRoom, key_of(4)).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_GE(cache.invalidations(), 1u);

  // restore() bypasses the chaos point: warming a restarted service must
  // not consume fault budget.
  EXPECT_EQ(cache.restore({{ca::Family::kRoom, key_of(4), payload_of(8, 3)}}),
            1u);
  EXPECT_TRUE(cache.lookup(ca::Family::kRoom, key_of(4)).has_value());
}

TEST(ArtifactCache, ExportIsSortedAndRoundTripsThroughSerialize) {
  ca::ArtifactCache cache(1 << 20);
  cache.insert(ca::Family::kArrange, key_of(7), payload_of(3, 7));
  cache.insert(ca::Family::kPairMatch, key_of(9), payload_of(5, 9));
  cache.insert(ca::Family::kPairMatch, key_of(8), payload_of(4, 8));

  const auto entries = cache.export_entries();
  ASSERT_EQ(entries.size(), 3u);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    const bool ordered =
        entries[i - 1].family < entries[i].family ||
        (entries[i - 1].family == entries[i].family &&
         entries[i - 1].key < entries[i].key);
    EXPECT_TRUE(ordered) << "export not sorted at " << i;
  }

  const io::Bytes encoded = ca::encode_artifact_cache(entries);
  const auto decoded = ca::decode_artifact_cache(encoded);
  ASSERT_EQ(decoded.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(decoded[i].family, entries[i].family);
    EXPECT_EQ(decoded[i].key, entries[i].key);
    EXPECT_EQ(decoded[i].payload, entries[i].payload);
  }

  ca::ArtifactCache warmed(1 << 20);
  EXPECT_EQ(warmed.restore(decoded), entries.size());
  EXPECT_EQ(*warmed.lookup(ca::Family::kArrange, key_of(7)), payload_of(3, 7));
}

TEST(ArtifactCacheCodec, RejectsMalformedInput) {
  EXPECT_FALSE(ca::try_decode_artifact_cache(io::Bytes{1, 2, 3}).ok());

  io::Bytes encoded = ca::encode_artifact_cache(
      {{ca::Family::kRoom, key_of(5), payload_of(6, 5)}});
  encoded.push_back(0);  // trailing garbage
  const auto trailing = ca::try_decode_artifact_cache(encoded);
  ASSERT_FALSE(trailing.ok());
  EXPECT_EQ(trailing.error().code, "io.decode");

  io::Bytes truncated = ca::encode_artifact_cache(
      {{ca::Family::kRoom, key_of(5), payload_of(6, 5)}});
  truncated.resize(truncated.size() - 2);
  EXPECT_FALSE(ca::try_decode_artifact_cache(truncated).ok());

  // An unknown family byte is structural corruption, not a new version.
  io::Bytes bad_family = ca::encode_artifact_cache(
      {{ca::Family::kRoom, key_of(5), payload_of(6, 5)}});
  bad_family[4 + 4 + 8] = 200;  // magic + version + count, then family
  EXPECT_FALSE(ca::try_decode_artifact_cache(bad_family).ok());
}

TEST(ArtifactCacheCodec, EmptyCacheRoundTrips) {
  const io::Bytes encoded = ca::encode_artifact_cache({});
  EXPECT_TRUE(ca::decode_artifact_cache(encoded).empty());
}

// Tests for LSD-style line segment detection, Hough transform and the
// vertical (vanishing) line column finder.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "imaging/image.hpp"
#include "vision/lines.hpp"

namespace cv = crowdmap::vision;
namespace ci = crowdmap::imaging;

namespace {

/// Image with one bright vertical stripe at column x0.
ci::Image vertical_stripe(int w, int h, int x0, int thickness = 2) {
  ci::Image img(w, h, 0.2f);
  for (int y = 0; y < h; ++y) {
    for (int x = x0; x < x0 + thickness && x < w; ++x) img.at(x, y) = 0.9f;
  }
  return img;
}

ci::Image horizontal_stripe(int w, int h, int y0, int thickness = 2) {
  ci::Image img(w, h, 0.2f);
  for (int y = y0; y < y0 + thickness && y < h; ++y) {
    for (int x = 0; x < w; ++x) img.at(x, y) = 0.9f;
  }
  return img;
}

}  // namespace

TEST(LineSegment, LengthAndAngle) {
  const cv::LineSegment s{0, 0, 3, 4, 1.0};
  EXPECT_NEAR(s.length(), 5.0, 1e-9);
  const cv::LineSegment vert{5, 0, 5, 10, 1.0};
  EXPECT_NEAR(vert.angle(), std::numbers::pi / 2, 1e-9);
  const cv::LineSegment horiz{0, 5, 10, 5, 1.0};
  EXPECT_NEAR(horiz.angle(), 0.0, 1e-9);
}

TEST(Lsd, DetectsVerticalStripe) {
  const auto img = vertical_stripe(64, 64, 30);
  const auto segments = cv::detect_line_segments(img);
  ASSERT_FALSE(segments.empty());
  bool found = false;
  for (const auto& s : segments) {
    if (std::abs(s.angle() - std::numbers::pi / 2) < 0.15 &&
        std::abs((s.x0 + s.x1) / 2 - 30.5) < 4 && s.length() > 30) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Lsd, DetectsHorizontalStripe) {
  const auto img = horizontal_stripe(64, 64, 40);
  const auto segments = cv::detect_line_segments(img);
  bool found = false;
  for (const auto& s : segments) {
    if (s.angle() < 0.15 && std::abs((s.y0 + s.y1) / 2 - 40.5) < 4 &&
        s.length() > 30) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Lsd, FlatImageNoSegments) {
  EXPECT_TRUE(cv::detect_line_segments(ci::Image(64, 64, 0.5f)).empty());
}

TEST(Lsd, TinyImageNoCrash) {
  EXPECT_TRUE(cv::detect_line_segments(ci::Image(3, 3, 0.5f)).empty());
}

TEST(Lsd, MinLengthRespected) {
  cv::LsdParams params;
  params.min_length = 500.0;  // nothing is this long in a 64 px image
  EXPECT_TRUE(cv::detect_line_segments(vertical_stripe(64, 64, 20), params).empty());
}

TEST(Hough, PeakForDominantDirection) {
  std::vector<cv::LineSegment> segments;
  // Three collinear-ish vertical segments at x = 20.
  segments.push_back({20, 0, 20, 20, 5.0});
  segments.push_back({20, 25, 20, 45, 5.0});
  segments.push_back({20, 50, 20, 63, 5.0});
  const auto peaks = cv::hough_lines(segments);
  ASSERT_FALSE(peaks.empty());
  // Normal of a vertical line is horizontal: theta near 0 (or pi).
  const double t = peaks.front().theta;
  EXPECT_TRUE(t < 0.2 || t > std::numbers::pi - 0.2);
  EXPECT_NEAR(std::abs(peaks.front().rho), 20.0, 3.0);
}

TEST(Hough, EmptyInput) {
  EXPECT_TRUE(cv::hough_lines({}).empty());
}

TEST(Hough, MaxPeaksRespected) {
  std::vector<cv::LineSegment> segments;
  for (int i = 0; i < 10; ++i) {
    segments.push_back({i * 6.0, 0, i * 6.0, 40, 2.0});
  }
  const auto peaks = cv::hough_lines(segments, 180, 2.0, 3);
  EXPECT_LE(peaks.size(), 3u);
}

TEST(VerticalColumns, FindsStripeColumns) {
  std::vector<cv::LineSegment> segments;
  segments.push_back({20, 0, 20, 50, 4.0});   // vertical at 20
  segments.push_back({47, 5, 48, 60, 4.0});   // vertical at ~47
  segments.push_back({0, 30, 60, 30, 4.0});   // horizontal, ignored
  const auto cols = cv::vertical_line_columns(segments, 64);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_NEAR(cols[0], 20.0, 2.0);
  EXPECT_NEAR(cols[1], 47.5, 2.0);
}

TEST(VerticalColumns, SortedAndSuppressed) {
  std::vector<cv::LineSegment> segments;
  // Two near-identical columns: suppression keeps one.
  segments.push_back({30, 0, 30, 50, 4.0});
  segments.push_back({31, 0, 31, 50, 3.0});
  segments.push_back({10, 0, 10, 50, 2.0});
  const auto cols = cv::vertical_line_columns(segments, 64);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_TRUE(std::is_sorted(cols.begin(), cols.end()));
}

// Tests for pairwise trajectory matching and multi-trajectory aggregation —
// the heart of CrowdMap's indoor path modeling.
#include <gtest/gtest.h>

#include <cmath>

#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "sim/buildings.hpp"
#include "sim/user_sim.hpp"
#include "trajectory/aggregate.hpp"
#include "trajectory/matching.hpp"
#include "trajectory/trajectory.hpp"

namespace ct = crowdmap::trajectory;
namespace cs = crowdmap::sim;
namespace cc = crowdmap::common;
using crowdmap::geometry::Pose2;
using crowdmap::geometry::Vec2;

namespace {

/// Shared fixture: a small set of extracted trajectories over Lab1.
class MatchingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    spec_ = new cs::FloorPlanSpec(cs::lab1());
    scene_ = new cs::Scene(cs::Scene::from_spec(*spec_, 0x1AB1));
    cs::SimOptions options;
    options.fps = 3.0;
    cs::UserSimulator user(*scene_, *spec_, options, cc::Rng(131));
    same_a_ = new ct::Trajectory(ct::extract_trajectory(
        user.hallway_walk_between({2, 0}, {26, 0}, cs::Lighting::day())));
    same_b_ = new ct::Trajectory(ct::extract_trajectory(
        user.hallway_walk_between({6, 0}, {32, 0}, cs::Lighting::day())));
    opposite_ = new ct::Trajectory(ct::extract_trajectory(
        user.hallway_walk_between({30, 0}, {4, 0}, cs::Lighting::day())));
    spur_ = new ct::Trajectory(ct::extract_trajectory(
        user.hallway_walk_between({20, 3}, {20, 14}, cs::Lighting::day())));
  }
  static void TearDownTestSuite() {
    delete same_a_;
    delete same_b_;
    delete opposite_;
    delete spur_;
    delete scene_;
    delete spec_;
  }

  static cs::FloorPlanSpec* spec_;
  static cs::Scene* scene_;
  static ct::Trajectory* same_a_;
  static ct::Trajectory* same_b_;
  static ct::Trajectory* opposite_;
  static ct::Trajectory* spur_;
};

cs::FloorPlanSpec* MatchingTest::spec_ = nullptr;
cs::Scene* MatchingTest::scene_ = nullptr;
ct::Trajectory* MatchingTest::same_a_ = nullptr;
ct::Trajectory* MatchingTest::same_b_ = nullptr;
ct::Trajectory* MatchingTest::opposite_ = nullptr;
ct::Trajectory* MatchingTest::spur_ = nullptr;

}  // namespace

TEST_F(MatchingTest, AnchorsForOverlappingSameDirectionWalks) {
  const auto anchors = ct::find_anchors(*same_a_, *same_b_, {});
  EXPECT_GE(anchors.size(), 2u);
  // Anchors correspond to genuinely nearby true poses.
  for (const auto& a : anchors) {
    const auto& ka = same_a_->keyframes[a.kf_a];
    const auto& kb = same_b_->keyframes[a.kf_b];
    EXPECT_LT(ka.true_position.distance_to(kb.true_position), 3.0);
  }
}

TEST_F(MatchingTest, SequenceMatchAcceptsTrueOverlap) {
  const auto match = ct::match_trajectories(*same_a_, *same_b_, {});
  ASSERT_TRUE(match.has_value());
  EXPECT_GE(match->s3, 0.35);
  // The recovered transform must preserve inter-key-frame distances across
  // the pair: |T(b_kf) - a_kf| should approximate the true distance.
  double err = 0.0;
  int n = 0;
  for (const auto& kb : same_b_->keyframes) {
    const Vec2 mapped = match->b_to_a.apply(kb.position);
    for (std::size_t i = 0; i < same_a_->keyframes.size(); i += 7) {
      const auto& ka = same_a_->keyframes[i];
      err += std::abs(mapped.distance_to(ka.position) -
                      kb.true_position.distance_to(ka.true_position));
      ++n;
    }
  }
  EXPECT_LT(err / n, 2.0);
}

TEST_F(MatchingTest, OppositeDirectionWalksDoNotMatch) {
  EXPECT_FALSE(ct::match_trajectories(*same_a_, *opposite_, {}).has_value());
}

TEST_F(MatchingTest, DisjointCorridorsDoNotMatch) {
  // same_a_ runs along the main corridor, spur_ along the perpendicular spur
  // ending 3 m beyond the junction; at most weak anchors near the junction.
  const auto match = ct::match_trajectories(*same_a_, *spur_, {});
  if (match) {
    // If a junction match exists, the transform must place the junction
    // consistently (translation magnitude bounded by corridor geometry).
    EXPECT_LT(match->b_to_a.position.norm(), 45.0);
  }
  SUCCEED();
}

TEST_F(MatchingTest, SingleImageBaselineIsLessStrict) {
  // Single-image accepts anything with one anchor; sequence-based requires
  // consensus + LCSS. Over the same pair both should agree when overlap is
  // genuine.
  const auto seq = ct::match_trajectories(*same_a_, *same_b_, {});
  const auto single = ct::match_single_image(*same_a_, *same_b_, {});
  EXPECT_TRUE(single.has_value());
  EXPECT_TRUE(seq.has_value());
}

TEST(AnchorTransform, RecoversRelativePose) {
  // Construct two synthetic key-frames observing the same spot: trajectory
  // b's local frame is rotated by 0.3 and translated by (2, -1) w.r.t. a's.
  const Pose2 b_to_a_truth{{2, -1}, 0.3};
  ct::KeyFrame ka;
  ka.position = {4, 5};
  ka.heading = 1.0;
  ct::KeyFrame kb;
  kb.position = b_to_a_truth.inverse().apply(ka.position);
  kb.heading = 1.0 - 0.3;
  const Pose2 recovered = ct::anchor_transform(ka, kb);
  EXPECT_NEAR(recovered.position.x, b_to_a_truth.position.x, 1e-9);
  EXPECT_NEAR(recovered.position.y, b_to_a_truth.position.y, 1e-9);
  EXPECT_NEAR(cc::angle_diff(recovered.theta, b_to_a_truth.theta), 0.0, 1e-9);
}

TEST_F(MatchingTest, AggregationPlacesOverlappingSet) {
  std::vector<ct::Trajectory> trajectories = {*same_a_, *same_b_, *opposite_};
  ct::AggregationConfig config;
  const auto result = ct::aggregate_trajectories(trajectories, config);
  // a and b overlap in the same direction; at least those two place.
  EXPECT_GE(result.placed_count, 2u);
  ASSERT_TRUE(result.global_pose[0].has_value());
  ASSERT_TRUE(result.global_pose[1].has_value());
  // Verify the relative placement against ground truth key-frames.
  double err = 0.0;
  int n = 0;
  for (std::size_t idx : {std::size_t{0}, std::size_t{1}}) {
    const auto& traj = trajectories[idx];
    for (const auto& kf : traj.keyframes) {
      const Vec2 placed = result.global_pose[idx]->apply(kf.position);
      // Compare pairwise distances rather than absolute (gauge freedom):
      // use first keyframe of trajectory 0 as the anchor.
      const Vec2 ref_placed =
          result.global_pose[0]->apply(trajectories[0].keyframes[0].position);
      const Vec2 ref_true = trajectories[0].keyframes[0].true_position;
      err += std::abs(placed.distance_to(ref_placed) -
                      kf.true_position.distance_to(ref_true));
      ++n;
    }
  }
  EXPECT_LT(err / n, 2.0);
}

TEST(Aggregation, EmptyInput) {
  const auto result = ct::aggregate_trajectories({}, {});
  EXPECT_EQ(result.placed_count, 0u);
  EXPECT_TRUE(result.edges.empty());
}

TEST(Aggregation, SingleTrajectoryPlacedAtIdentity) {
  std::vector<ct::Trajectory> one(1);
  one[0].points.push_back({{0, 0}, 0.0, 0.0});
  const auto result = ct::aggregate_trajectories(one, {});
  ASSERT_TRUE(result.global_pose[0].has_value());
  EXPECT_EQ(result.placed_count, 1u);
  EXPECT_NEAR(result.global_pose[0]->theta, 0.0, 1e-12);
}

TEST(Aggregation, GlobalPointsCollectsPlaced) {
  std::vector<ct::Trajectory> one(1);
  one[0].points.push_back({{1, 2}, 0.0, 0.0});
  one[0].points.push_back({{3, 4}, 1.0, 0.0});
  const auto result = ct::aggregate_trajectories(one, {});
  const auto points = result.global_points(one);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_NEAR(points[0].x, 1.0, 1e-12);
}

TEST(MatchConfig, ConsensusGateRejectsLoneAnchors) {
  // With min_consistent_anchors raised very high, even genuine overlaps are
  // rejected — verifying the gate is actually consulted.
  const auto spec = cs::lab1();
  const auto scene = cs::Scene::from_spec(spec, 139);
  cs::SimOptions options;
  options.fps = 3.0;
  cs::UserSimulator user(scene, spec, options, cc::Rng(139));
  const auto a = ct::extract_trajectory(
      user.hallway_walk_between({2, 0}, {22, 0}, cs::Lighting::day()));
  const auto b = ct::extract_trajectory(
      user.hallway_walk_between({4, 0}, {26, 0}, cs::Lighting::day()));
  ct::MatchConfig strict;
  strict.min_consistent_anchors = 1000;
  EXPECT_FALSE(ct::match_trajectories(a, b, strict).has_value());
}

// Tests for angular coverage checking and panorama stitching.
#include <gtest/gtest.h>

#include <cmath>

#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "sim/buildings.hpp"
#include "sim/scene.hpp"
#include "vision/panorama.hpp"

namespace cv = crowdmap::vision;
namespace cs = crowdmap::sim;
namespace cc = crowdmap::common;

TEST(CoverageCheck, FullRingCovers) {
  std::vector<double> headings;
  for (int i = 0; i < 12; ++i) headings.push_back(i * cc::kTwoPi / 12);
  const auto check = cv::check_angular_coverage(headings, 0.9495);
  EXPECT_TRUE(check.full_cover);
  EXPECT_TRUE(check.adjacent_overlap);
  EXPECT_NEAR(check.max_gap, cc::kTwoPi / 12, 1e-9);
}

TEST(CoverageCheck, GapBreaksCoverage) {
  std::vector<double> headings;
  for (int i = 0; i < 8; ++i) headings.push_back(i * 0.3);  // covers ~2.1 rad
  const auto check = cv::check_angular_coverage(headings, 0.9495);
  EXPECT_FALSE(check.full_cover);
  EXPECT_GT(check.max_gap, 0.9495);
}

TEST(CoverageCheck, EmptyInput) {
  const auto check = cv::check_angular_coverage({}, 0.9495);
  EXPECT_FALSE(check.full_cover);
}

TEST(CoverageCheck, WrapsNegativeHeadings) {
  std::vector<double> headings;
  for (int i = 0; i < 12; ++i) {
    headings.push_back(i * cc::kTwoPi / 12 - cc::kPi);  // [-pi, pi)
  }
  EXPECT_TRUE(cv::check_angular_coverage(headings, 0.9495).full_cover);
}

namespace {

/// Renders a ring of frames around a room center from a real scene.
std::vector<cv::PanoFrame> render_ring(int n_frames, double heading_noise,
                                       std::uint64_t seed) {
  const auto spec = cs::lab1();
  const auto scene = cs::Scene::from_spec(spec, seed);
  cs::CameraIntrinsics intr;
  cc::Rng rng(seed);
  std::vector<cv::PanoFrame> frames;
  const crowdmap::geometry::Vec2 stand = spec.rooms[0].center;
  for (int i = 0; i < n_frames; ++i) {
    const double heading = i * cc::kTwoPi / n_frames;
    cv::PanoFrame frame;
    frame.image =
        scene.render({stand, heading}, intr, cs::Lighting::day(), rng).to_gray();
    frame.heading = heading + rng.normal(0.0, heading_noise);
    frames.push_back(std::move(frame));
  }
  return frames;
}

}  // namespace

TEST(Stitch, FullCoverageFromRing) {
  const auto pano = cv::stitch_panorama(render_ring(14, 0.0, 51),
                                        {.output_width = 512, .output_height = 128});
  EXPECT_NEAR(pano.coverage, 1.0, 1e-9);
  EXPECT_EQ(pano.image.width(), 512);
  EXPECT_EQ(pano.image.height(), 128);
  EXPECT_GT(pano.image.stddev(), 0.02f);  // real content, not blank
}

TEST(Stitch, EmptyInput) {
  const auto pano = cv::stitch_panorama({}, {});
  EXPECT_EQ(pano.coverage, 0.0);
}

TEST(Stitch, PartialRingPartialCoverage) {
  auto frames = render_ring(14, 0.0, 53);
  frames.resize(5);  // only ~1/3 of the circle
  const auto pano = cv::stitch_panorama(std::move(frames),
                                        {.output_width = 512, .output_height = 128});
  EXPECT_LT(pano.coverage, 0.8);
  EXPECT_GT(pano.coverage, 0.2);
}

TEST(Stitch, RefinementImprovesNoisyHeadings) {
  // With noisy headings, NCC refinement should produce a panorama closer to
  // the clean one than stitching trusts-IMU-only.
  cv::StitchParams params{.output_width = 512, .output_height = 128};
  const auto clean = cv::stitch_panorama(render_ring(14, 0.0, 55), params);

  cv::StitchParams no_refine = params;
  no_refine.refine_alignment = false;
  const auto noisy_raw =
      cv::stitch_panorama(render_ring(14, 0.04, 55), no_refine);
  const auto noisy_refined =
      cv::stitch_panorama(render_ring(14, 0.04, 55), params);

  auto mse = [](const crowdmap::imaging::Image& a,
                const crowdmap::imaging::Image& b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.data().size(); ++i) {
      const double d = a.data()[i] - b.data()[i];
      acc += d * d;
    }
    return acc / static_cast<double>(a.data().size());
  };
  EXPECT_LE(mse(noisy_refined.image, clean.image),
            mse(noisy_raw.image, clean.image) * 1.2);
}

TEST(Stitch, HeadingsReturnedPerFrame) {
  const auto pano = cv::stitch_panorama(render_ring(10, 0.0, 57),
                                        {.output_width = 256, .output_height = 64});
  EXPECT_EQ(pano.headings.size(), 10u);
}

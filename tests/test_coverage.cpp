// Tests for campaign coverage analysis and walk-task suggestions.
#include <gtest/gtest.h>

#include "mapping/coverage.hpp"

namespace cm = crowdmap::mapping;
namespace cg = crowdmap::geometry;
using cg::Vec2;

namespace {

/// Grid + skeleton where the left half of a corridor is well travelled and
/// the right half has a single pass.
struct Scenario {
  cm::OccupancyGrid grid{cg::Aabb{{0, 0}, {30, 10}}, 0.5};
  cg::BoolRaster skeleton{cg::Aabb{{0, 0}, {30, 10}}, 0.5};

  Scenario() {
    for (int k = 0; k < 6; ++k) grid.add_polyline({{1, 5}, {15, 5}}, 1.0);
    grid.add_polyline({{15, 5}, {29, 5}}, 1.0);  // one pass only
    skeleton.fill_polygon(cg::Polygon::rectangle({15, 5}, 28, 2));
  }
};

}  // namespace

TEST(Coverage, SplitsConfidentFromThin) {
  Scenario s;
  const auto report = cm::coverage_report(s.grid, s.skeleton, 3.0);
  EXPECT_GT(report.skeleton_cells, 100u);
  EXPECT_GT(report.confident_fraction, 0.15);
  EXPECT_LT(report.confident_fraction, 0.85);
  // Left-half center is confident, right-half center is thin.
  {
    const auto [c, r] = report.thin.cell_of({8.0, 5.0});
    EXPECT_FALSE(report.thin.at(c, r));
  }
  {
    const auto [c, r] = report.thin.cell_of({25.0, 5.0});
    EXPECT_TRUE(report.thin.at(c, r));
  }
}

TEST(Coverage, FullyConfidentWhenEverythingTravelled) {
  cm::OccupancyGrid grid{cg::Aabb{{0, 0}, {10, 10}}, 0.5};
  cg::BoolRaster skeleton{cg::Aabb{{0, 0}, {10, 10}}, 0.5};
  for (int k = 0; k < 5; ++k) grid.add_polyline({{1, 5}, {9, 5}}, 2.0);
  skeleton.fill_polygon(cg::Polygon::rectangle({5, 5}, 8, 1.6));
  const auto report = cm::coverage_report(grid, skeleton, 3.0);
  EXPECT_GT(report.confident_fraction, 0.95);
  EXPECT_TRUE(cm::suggest_walk_tasks(report).size() <= 1);
}

TEST(Coverage, EmptySkeleton) {
  cm::OccupancyGrid grid{cg::Aabb{{0, 0}, {10, 10}}, 0.5};
  cg::BoolRaster skeleton{cg::Aabb{{0, 0}, {10, 10}}, 0.5};
  const auto report = cm::coverage_report(grid, skeleton);
  EXPECT_EQ(report.skeleton_cells, 0u);
  EXPECT_EQ(report.confident_fraction, 1.0);
  EXPECT_TRUE(cm::suggest_walk_tasks(report).empty());
}

TEST(Coverage, SuggestsWalkThroughThinArea) {
  Scenario s;
  const auto report = cm::coverage_report(s.grid, s.skeleton, 3.0);
  const auto tasks = cm::suggest_walk_tasks(report, 3);
  ASSERT_FALSE(tasks.empty());
  EXPECT_GT(tasks.front().expected_gain, 0.0);
  // The best task touches the thin (right) half.
  const double reach =
      std::max(tasks.front().from.x, tasks.front().to.x);
  EXPECT_GT(reach, 15.0);
}

TEST(Coverage, TasksSortedByGain) {
  Scenario s;
  // Punch two separate thin clusters by marking extra skeleton away from
  // any travel.
  s.skeleton.fill_polygon(cg::Polygon::rectangle({5, 8.5}, 6, 1.0));
  s.skeleton.fill_polygon(cg::Polygon::rectangle({25, 1.5}, 6, 1.0));
  const auto report = cm::coverage_report(s.grid, s.skeleton, 3.0);
  const auto tasks = cm::suggest_walk_tasks(report, 4);
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    EXPECT_GE(tasks[i - 1].expected_gain, tasks[i].expected_gain);
  }
}

// Chaos suite: the deterministic fault-injection harness end to end.
//
// Unit half: FaultInjector decisions are a pure function of (seed, point,
// key) — interrogation order, thread count and injector instance must not
// matter — plus plan parsing, budgets, and the CROWDMAP_FAULT_SEED hook.
//
// Integration half: a CrowdMapService run under a full chaos plan (dropped /
// duplicated / reordered / corrupted chunks on the wire, decode failures,
// sensor dropouts, per-room stage faults) must still produce a floor plan,
// and two runs with the same (fault seed, thread count) — or different
// thread counts — must serialize byte-identically with identical
// degradation reports. The CI chaos matrix re-runs this suite at several
// CROWDMAP_FAULT_SEED values; any failure reproduces locally by exporting
// the same seed (docs/ROBUSTNESS.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "cloud/service.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "floorplan/serialize.hpp"
#include "sim/buildings.hpp"
#include "sim/campaign.hpp"

namespace cc = crowdmap::common;
namespace cl = crowdmap::cloud;
namespace co = crowdmap::core;
namespace cs = crowdmap::sim;

namespace {

/// Seed for the integration runs: the CI matrix overrides it via
/// CROWDMAP_FAULT_SEED so the same binary covers several chaos timelines.
std::uint64_t chaos_seed() {
  std::uint64_t seed = 0;
  if (cc::env_fault_seed(seed)) return seed;
  return 1301;
}

// ---------------------------------------------------------------- catalog ---

TEST(FaultCatalog, NamesRoundTrip) {
  const auto& points = cc::all_fault_points();
  EXPECT_EQ(points.size(), cc::fault_point_count());
  for (const auto point : points) {
    const auto name = cc::fault_point_name(point);
    EXPECT_FALSE(name.empty());
    const auto parsed = cc::fault_point_from_name(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(parsed.value(), point);
  }
}

TEST(FaultCatalog, UnknownNameIsAnError) {
  const auto parsed = cc::fault_point_from_name("bogus.point");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "fault.unknown_point");
}

TEST(FaultCatalog, PlanParsesAndRoundTrips) {
  const auto plan =
      cc::parse_fault_plan("42:decode.fail=0.25,stage.panorama_fail=0.1@3");
  ASSERT_TRUE(plan.ok()) << plan.error().message;
  EXPECT_EQ(plan.value().seed, 42u);
  ASSERT_EQ(plan.value().settings.size(), 2u);
  EXPECT_EQ(plan.value().settings[0].point, cc::faults::kDecodeFail);
  EXPECT_DOUBLE_EQ(plan.value().settings[0].probability, 0.25);
  EXPECT_EQ(plan.value().settings[0].budget, cc::FaultSetting::kNoBudget);
  EXPECT_EQ(plan.value().settings[1].budget, 3u);

  const auto reparsed = cc::parse_fault_plan(cc::format_fault_plan(plan.value()));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(cc::format_fault_plan(reparsed.value()),
            cc::format_fault_plan(plan.value()));
}

TEST(FaultCatalog, MalformedPlansAreErrors) {
  EXPECT_FALSE(cc::parse_fault_plan("no-colon-here").ok());
  EXPECT_FALSE(cc::parse_fault_plan("notanumber:decode.fail=0.5").ok());
  const auto unknown = cc::parse_fault_plan("7:bogus.point=0.5");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error().code, "fault.unknown_point");
}

TEST(FaultCatalog, EnvSeedRespected) {
  ASSERT_EQ(setenv("CROWDMAP_FAULT_SEED", "7777", 1), 0);
  std::uint64_t seed = 0;
  EXPECT_TRUE(cc::env_fault_seed(seed));
  EXPECT_EQ(seed, 7777u);
  ASSERT_EQ(setenv("CROWDMAP_FAULT_SEED", "not-a-seed", 1), 0);
  EXPECT_FALSE(cc::env_fault_seed(seed));
  ASSERT_EQ(unsetenv("CROWDMAP_FAULT_SEED"), 0);
  EXPECT_FALSE(cc::env_fault_seed(seed));
}

// --------------------------------------------------------------- injector ---

cc::FaultPlan one_point_plan(cc::FaultPoint point, double probability,
                             std::uint64_t seed = 99,
                             std::uint64_t budget = cc::FaultSetting::kNoBudget) {
  cc::FaultPlan plan;
  plan.seed = seed;
  plan.settings.push_back(cc::FaultSetting{point, probability, budget});
  return plan;
}

TEST(FaultInjector, DisarmedNeverFires) {
  cc::FaultInjector injector;
  EXPECT_FALSE(injector.armed());
  for (std::uint64_t key = 0; key < 256; ++key) {
    for (const auto point : cc::all_fault_points()) {
      EXPECT_FALSE(injector.should_fire(point, key));
    }
  }
  EXPECT_EQ(injector.total_fires(), 0u);
}

TEST(FaultInjector, ProbabilityEndpoints) {
  cc::FaultInjector always(one_point_plan(cc::faults::kDecodeFail, 1.0));
  cc::FaultInjector never(one_point_plan(cc::faults::kDecodeFail, 0.0));
  for (std::uint64_t key = 0; key < 256; ++key) {
    EXPECT_TRUE(always.should_fire(cc::faults::kDecodeFail, key));
    EXPECT_FALSE(never.should_fire(cc::faults::kDecodeFail, key));
    // An armed plan only fires the points it lists.
    EXPECT_FALSE(always.should_fire(cc::faults::kStageArrangeFail, key));
  }
  EXPECT_EQ(always.fires(cc::faults::kDecodeFail), 256u);
  EXPECT_EQ(never.total_fires(), 0u);
}

TEST(FaultInjector, DecisionsAreKeyedNotOrdered) {
  const auto plan = one_point_plan(cc::faults::kStagePanoramaFail, 0.5, 1234);
  cc::FaultInjector forward(plan);
  cc::FaultInjector backward(plan);

  constexpr std::uint64_t kKeys = 1000;
  std::vector<bool> forward_decisions(kKeys);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    forward_decisions[key] =
        forward.should_fire(cc::faults::kStagePanoramaFail, key);
  }
  // Interrogating the same keys in reverse on a fresh injector must agree
  // per key: no interrogation-order state anywhere.
  for (std::uint64_t key = kKeys; key-- > 0;) {
    EXPECT_EQ(backward.should_fire(cc::faults::kStagePanoramaFail, key),
              forward_decisions[key])
        << "key " << key;
  }

  // Sanity: a 0.5 plan over 1000 keys fires a non-trivial fraction.
  const auto fired = forward.fires(cc::faults::kStagePanoramaFail);
  EXPECT_GT(fired, 300u);
  EXPECT_LT(fired, 700u);
}

TEST(FaultInjector, DifferentSeedsDiffer) {
  cc::FaultInjector a(one_point_plan(cc::faults::kDecodeFail, 0.5, 1));
  cc::FaultInjector b(one_point_plan(cc::faults::kDecodeFail, 0.5, 2));
  bool any_difference = false;
  for (std::uint64_t key = 0; key < 256; ++key) {
    if (a.should_fire(cc::faults::kDecodeFail, key) !=
        b.should_fire(cc::faults::kDecodeFail, key)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultInjector, BudgetCapsFires) {
  cc::FaultInjector injector(
      one_point_plan(cc::faults::kDecodeFail, 1.0, 99, /*budget=*/3));
  std::size_t fired = 0;
  for (std::uint64_t key = 0; key < 10; ++key) {
    if (injector.should_fire(cc::faults::kDecodeFail, key)) ++fired;
  }
  EXPECT_EQ(fired, 3u);
  EXPECT_EQ(injector.fires(cc::faults::kDecodeFail), 3u);
  EXPECT_EQ(injector.total_fires(), 3u);
}

// ------------------------------------------------------------ integration ---

/// Videos travel by side table keyed by upload id (as in test_service).
struct Fixture {
  std::map<std::string, cs::SensorRichVideo> videos;

  cl::VideoDecoder decoder() {
    return [this](const cl::Document& doc) -> std::optional<cs::SensorRichVideo> {
      const auto it = videos.find(doc.id);
      if (it == videos.end()) return std::nullopt;
      return it->second;
    };
  }
};

struct ChaosRun {
  crowdmap::io::Bytes plan_bytes;
  std::string degradation;
  co::PipelineResult result;
  cl::ServiceStats stats;
};

/// One full backend run under `plan`: the campaign's uploads are chunked and
/// pushed through a wire that drops / reorders / duplicates / corrupts
/// chunks per the plan's ingest.* points (keyed by (upload id, chunk index),
/// never by delivery order), followed by clean retransmit rounds; the
/// service and pipeline honor the decode/extract/stage points themselves.
/// `cache_bytes` overrides the artifact-cache budget when not SIZE_MAX (0
/// disables caching); `builds` repeats build_floor_plan so warm-path reuse
/// and eviction pressure are exercised — the returned run is the last build.
ChaosRun run_backend(const cc::FaultPlan& plan, std::size_t threads,
                     std::size_t cache_bytes = SIZE_MAX, int builds = 1) {
  cc::Rng rng(4242);
  const auto spec = cs::random_building(2, rng);
  cs::CampaignOptions options;
  options.users = 2;
  options.room_videos_per_room = 1;
  options.hallway_walks = 5;
  options.junk_fraction = 0.0;
  options.sim.fps = 3.0;
  std::vector<cs::SensorRichVideo> videos;
  cs::generate_campaign_streaming(spec, options, 4242,
                                  [&videos](cs::SensorRichVideo&& video) {
                                    videos.push_back(std::move(video));
                                  });

  co::PipelineConfig config = co::PipelineConfig::fast_profile();
  config.parallel.threads = threads;
  config.faults = plan;
  if (cache_bytes != SIZE_MAX) {
    config.incremental.artifact_cache_bytes = cache_bytes;
  }

  Fixture fixture;
  cl::CrowdMapService service(config, fixture.decoder(), threads);
  cc::FaultInjector wire(plan);  // the lossy network between client and cloud

  for (std::size_t v = 0; v < videos.size(); ++v) {
    const std::string id = "chaos" + std::to_string(v);
    fixture.videos[id] = videos[v];
    service.open_session(id, videos[v].building, videos[v].floor);
    const auto chunks = cl::split_into_chunks(
        cl::Blob(256, static_cast<std::uint8_t>(v)), id, 100);

    std::vector<cl::Chunk> deferred;
    for (const auto& chunk : chunks) {
      const auto key =
          cc::hash_combine(cc::stable_string_hash(id), chunk.index);
      if (wire.should_fire(cc::faults::kIngestChunkDrop, key)) continue;
      if (wire.should_fire(cc::faults::kIngestChunkReorder, key)) {
        deferred.push_back(chunk);
        continue;
      }
      auto on_the_wire = chunk;
      if (wire.should_fire(cc::faults::kIngestChunkCorrupt, key) &&
          !on_the_wire.payload.empty()) {
        on_the_wire.payload[0] ^= 0xFF;  // checksum now fails server-side
      }
      service.deliver(on_the_wire);
      if (wire.should_fire(cc::faults::kIngestChunkDuplicate, key)) {
        service.deliver(on_the_wire);
      }
    }
    for (const auto& chunk : deferred) service.deliver(chunk);

    // Clean retransmit rounds until the upload completes (or the server
    // expires the session — also a deterministic outcome).
    for (int round = 0; round < 4; ++round) {
      const auto missing = service.missing_chunks(id);
      if (missing.empty()) break;
      for (const auto index : missing) {
        service.deliver(chunks[static_cast<std::size_t>(index)]);
      }
    }
  }
  service.drain();

  co::WorldFrame frame;
  frame.global_to_world = crowdmap::geometry::Pose2{};
  frame.extent = spec.extent();
  ChaosRun run;
  for (int b = 0; b < builds; ++b) {
    run.result = service.build_floor_plan(videos.front().building,
                                          videos.front().floor, frame);
  }
  run.plan_bytes = crowdmap::floorplan::encode_floorplan(run.result.plan);
  run.degradation = run.result.degradation.to_string();
  run.stats = service.stats();
  return run;
}

cc::FaultPlan full_chaos_plan(std::uint64_t seed) {
  cc::FaultPlan plan;
  plan.seed = seed;
  plan.settings = {
      cc::FaultSetting{cc::faults::kIngestChunkDrop, 0.15},
      cc::FaultSetting{cc::faults::kIngestChunkDuplicate, 0.10},
      cc::FaultSetting{cc::faults::kIngestChunkReorder, 0.20},
      cc::FaultSetting{cc::faults::kIngestChunkCorrupt, 0.10},
      cc::FaultSetting{cc::faults::kDecodeFail, 0.15},
      cc::FaultSetting{cc::faults::kExtractSensorDropout, 0.20},
      cc::FaultSetting{cc::faults::kStagePanoramaFail, 0.15},
      cc::FaultSetting{cc::faults::kStageLayoutFail, 0.10},
  };
  return plan;
}

TEST(ChaosDeterminism, RepeatedRunsSerializeIdentically) {
  const auto plan = full_chaos_plan(chaos_seed());
  const auto first = run_backend(plan, 1);
  const auto second = run_backend(plan, 1);
  ASSERT_FALSE(first.plan_bytes.empty());
  EXPECT_EQ(first.plan_bytes, second.plan_bytes);  // byte-for-byte
  EXPECT_EQ(first.degradation, second.degradation);
}

TEST(ChaosDeterminism, ThreadCountDoesNotLeakIntoTheBytes) {
  const auto plan = full_chaos_plan(chaos_seed());
  const auto serial = run_backend(plan, 1);
  const auto pooled = run_backend(plan, 4);
  ASSERT_FALSE(serial.plan_bytes.empty());
  EXPECT_EQ(serial.plan_bytes, pooled.plan_bytes);
  EXPECT_EQ(serial.degradation, pooled.degradation);
}

TEST(ChaosDeterminism, ArmedPlanThatNeverFiresMatchesDisarmed) {
  // An armed plan whose budgets are all exhausted takes the full armed code
  // path on every interrogation yet can never fire — the bytes must equal a
  // run with no plan at all: the injected checks are observably free.
  cc::FaultPlan muzzled = full_chaos_plan(chaos_seed());
  for (auto& setting : muzzled.settings) {
    setting.probability = 1.0;
    setting.budget = 0;
  }
  const auto clean = run_backend(cc::FaultPlan{}, 2);
  const auto armed = run_backend(muzzled, 2);
  ASSERT_FALSE(clean.plan_bytes.empty());
  EXPECT_EQ(clean.plan_bytes, armed.plan_bytes);
  EXPECT_FALSE(clean.result.degradation.degraded());
  EXPECT_FALSE(armed.result.degradation.degraded());
}

TEST(ChaosDeterminism, CacheEvictionUnderPressureStaysByteIdentical) {
  // A starved artifact cache (constant FIFO eviction) and a disabled one
  // must both serialize the same bytes as the roomy default: eviction only
  // costs recomputation, never changes results. Two builds per run so the
  // second build actually exercises the reuse-vs-evicted paths.
  const auto plan = full_chaos_plan(chaos_seed());
  const auto roomy = run_backend(plan, 2, SIZE_MAX, 2);
  const auto starved = run_backend(plan, 2, 2048, 2);
  const auto disabled = run_backend(plan, 2, 0, 2);
  ASSERT_FALSE(roomy.plan_bytes.empty());
  EXPECT_EQ(roomy.plan_bytes, starved.plan_bytes);
  EXPECT_EQ(roomy.plan_bytes, disabled.plan_bytes);
  EXPECT_EQ(roomy.degradation, starved.degradation);
  EXPECT_EQ(roomy.degradation, disabled.degradation);
}

TEST(ChaosDeterminism, ArtifactEvictFaultIsInvisibleInTheOutput) {
  // cache.artifact_evict refuses inserts at the injection point; lookups
  // then miss and the stage recomputes. The fault must not surface in the
  // bytes or in the degradation report — the cache is an optimization, and
  // chaos there degrades performance, not correctness.
  cc::FaultPlan evict_plan;
  evict_plan.seed = chaos_seed();
  evict_plan.settings = {
      cc::FaultSetting{cc::faults::kArtifactCacheEvict, 0.5}};
  const auto clean = run_backend(cc::FaultPlan{}, 2, SIZE_MAX, 2);
  const auto evicting = run_backend(evict_plan, 2, SIZE_MAX, 2);
  ASSERT_FALSE(clean.plan_bytes.empty());
  EXPECT_EQ(clean.plan_bytes, evicting.plan_bytes);
  EXPECT_FALSE(evicting.result.degradation.degraded());
}

TEST(Chaos, DegradesInsteadOfCollapsing) {
  // Decode failures plus panorama-stage faults at 20%: the backend must
  // still return a plan whose hallway skeleton substantially overlaps the
  // fault-free one (rooms may be lost; the skeleton survives).
  cc::FaultPlan plan;
  plan.seed = chaos_seed();
  plan.settings = {
      cc::FaultSetting{cc::faults::kDecodeFail, 0.20},
      cc::FaultSetting{cc::faults::kStagePanoramaFail, 0.20},
  };
  const auto baseline = run_backend(cc::FaultPlan{}, 2);
  const auto chaos = run_backend(plan, 2);

  ASSERT_FALSE(chaos.plan_bytes.empty());
  EXPECT_TRUE(chaos.result.degradation.degraded());
  EXPECT_GT(chaos.stats.decode_failures + chaos.result.degradation.rooms_lost +
                chaos.result.degradation.rooms_salvaged,
            0u);

  // Same WorldFrame -> cell-comparable rasters. The chaos skeleton must
  // recall most of the baseline skeleton's cells.
  const auto& base = baseline.result.skeleton.raster;
  const auto& survived = chaos.result.skeleton.raster;
  ASSERT_EQ(base.width(), survived.width());
  ASSERT_EQ(base.height(), survived.height());
  std::size_t base_set = 0;
  std::size_t overlap = 0;
  for (std::size_t i = 0; i < base.data().size(); ++i) {
    if (!base.data()[i]) continue;
    ++base_set;
    if (survived.data()[i]) ++overlap;
  }
  ASSERT_GT(base_set, 0u);
  EXPECT_GT(static_cast<double>(overlap) / static_cast<double>(base_set), 0.5);
}

}  // namespace

// Tests for crowdmap::cluster — the sharded multi-node simulation: hash-ring
// routing, the CMWL-framed shard replication log, and the determinism
// contract the whole design exists for: serialized FloorPlans are
// byte-identical across node counts and failure schedules (crash, partition,
// duplicate delivery), at any per-node worker count (docs/CLUSTER.md).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/hash_ring.hpp"
#include "cluster/replication.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "floorplan/serialize.hpp"
#include "sensors/serialize.hpp"
#include "sim/buildings.hpp"
#include "sim/campaign.hpp"

namespace cl = crowdmap::cluster;
namespace cc = crowdmap::common;
namespace co = crowdmap::core;
namespace cs = crowdmap::sim;
namespace cd = crowdmap::cloud;
namespace fp = crowdmap::floorplan;

namespace {

/// Seed for the chaos schedules: the CI cluster-chaos matrix overrides it
/// via CROWDMAP_FAULT_SEED so the same binary covers several timelines —
/// the byte-identity assertions must hold for every seed.
std::string chaos_seed() {
  std::uint64_t seed = 0;
  if (cc::env_fault_seed(seed)) return std::to_string(seed);
  return "42";
}

std::vector<cs::SensorRichVideo> tiny_campaign(std::uint64_t seed) {
  std::vector<cs::SensorRichVideo> out;
  cc::Rng rng(seed);
  const auto spec = cs::random_building(2, rng);
  cs::CampaignOptions options;
  options.users = 2;
  options.room_videos_per_room = 1;
  options.hallway_walks = 4;
  options.junk_fraction = 0.0;
  options.sim.fps = 3.0;
  cs::generate_campaign_streaming(spec, options, seed,
                                  [&out](cs::SensorRichVideo&& video) {
                                    out.push_back(std::move(video));
                                  });
  return out;
}

using VideoTable = std::map<std::string, cs::SensorRichVideo>;

/// Cluster-wide side-table decoder, the same shape api::v2 uses.
cd::VideoDecoder table_decoder(std::shared_ptr<VideoTable> table) {
  return [table = std::move(table)](const cd::Document& doc)
             -> std::optional<cs::SensorRichVideo> {
    const auto it = table->find(doc.id);
    if (it == table->end()) return std::nullopt;
    return it->second;
  };
}

cl::ClusterOptions make_options(std::shared_ptr<VideoTable> table,
                                std::size_t nodes, std::size_t workers,
                                const cc::FaultPlan& faults = {}) {
  cl::ClusterOptions options;
  options.config = co::PipelineConfig::fast_profile();
  options.config.cluster.nodes = nodes;
  options.config.faults = faults;
  options.decoder = table_decoder(std::move(table));
  options.workers_per_node = workers;
  return options;
}

std::string run_campaign(const std::vector<cs::SensorRichVideo>& videos,
                         cl::Cluster& cluster) {
  const std::string building = videos.front().building;
  const int floor = videos.front().floor;
  for (const auto& video : videos) {
    const auto ticket = cluster.submit_upload(
        "video-" + std::to_string(video.video_id), video.building, video.floor,
        crowdmap::sensors::encode_imu(video.imu));
    EXPECT_EQ(ticket.outcome, cl::SubmitOutcome::kAccepted);
    EXPECT_GT(ticket.seqno, 0u);
  }
  const auto result = cluster.build_floor_plan(building, floor);
  const auto bytes = fp::encode_floorplan(result.plan);
  return std::string(bytes.begin(), bytes.end());
}

std::shared_ptr<VideoTable> make_table(
    const std::vector<cs::SensorRichVideo>& videos) {
  auto table = std::make_shared<VideoTable>();
  for (const auto& video : videos) {
    (*table)["video-" + std::to_string(video.video_id)] = video;
  }
  return table;
}

/// On divergence, keep both serialized plans so CI uploads them as
/// artifacts (the cluster-chaos job's debugging trail).
void dump_divergence(const std::string& label, const std::string& reference,
                     const std::string& actual) {
  const std::filesystem::path dir = "cluster_divergence";
  std::filesystem::create_directories(dir);
  std::ofstream(dir / (label + ".reference.cmplan"), std::ios::binary)
      << reference;
  std::ofstream(dir / (label + ".actual.cmplan"), std::ios::binary) << actual;
}

cd::Document sample_doc(const std::string& id, int floor) {
  cd::Document doc;
  doc.id = id;
  doc.building = "lab";
  doc.floor = floor;
  doc.metadata["kind"] = "upload";
  doc.metadata["codec"] = "imu-v1";
  doc.payload = {0x01, 0x02, 0x03, 0xFF, 0x00, 0x42};
  return doc;
}

}  // namespace

// ---------------------------------------------------------- hash ring ---

TEST(HashRing, PreferenceListsAreDistinctAndClampedToMembership) {
  cl::HashRing ring({0, 1, 2});
  for (std::uint64_t key = 0; key < 64; ++key) {
    const auto pref = ring.preference(cc::hash_u64(key), 3);
    ASSERT_EQ(pref.size(), 3u);
    EXPECT_EQ(std::set<std::size_t>(pref.begin(), pref.end()).size(), 3u);
  }
  EXPECT_EQ(ring.preference(7, 8).size(), 3u) << "clamped to member count";
  EXPECT_TRUE(cl::HashRing(std::vector<std::size_t>{}).preference(7, 2).empty());
}

TEST(HashRing, SurvivingNodesKeepTheirTokensAcrossRebuilds) {
  // Consistent hashing's point: adding a member re-homes only the keys the
  // new member takes over; every other key keeps its primary.
  cl::HashRing before({0, 1, 2});
  cl::HashRing after({0, 1, 2, 3});
  std::size_t moved = 0;
  constexpr std::size_t kKeys = 256;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const auto old_primary = before.preference(cc::hash_u64(key), 1).front();
    const auto new_primary = after.preference(cc::hash_u64(key), 1).front();
    if (new_primary != old_primary) {
      EXPECT_EQ(new_primary, 3u)
          << "a key moved to a node that was present before the join";
      ++moved;
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, kKeys / 2) << "join re-homed a majority of keys";
}

// --------------------------------------------------- replication codec ---

TEST(ReplicationRecord, CodecRoundTripsDocuments) {
  const auto doc = sample_doc("video-42", 3);
  const auto decoded = cl::decode_record(cl::encode_record(doc));
  EXPECT_EQ(decoded.id, doc.id);
  EXPECT_EQ(decoded.building, doc.building);
  EXPECT_EQ(decoded.floor, doc.floor);
  EXPECT_EQ(decoded.metadata, doc.metadata);
  EXPECT_EQ(decoded.payload, doc.payload);
}

TEST(ReplicationRecord, DecodeRejectsForeignBytes) {
  auto bytes = cl::encode_record(sample_doc("video-1", 1));
  bytes[0] ^= 0xFF;  // break the CMRR magic
  EXPECT_THROW((void)cl::decode_record(bytes), crowdmap::io::DecodeError);
}

TEST(ReplicationLog, ShippedSegmentsReplayThroughTheStorageScanner) {
  cl::ReplicationLog log(7);
  std::vector<crowdmap::io::Bytes> appended;
  for (int i = 0; i < 3; ++i) {
    appended.push_back(cl::encode_record(sample_doc("v" + std::to_string(i), i)));
    EXPECT_EQ(log.append(appended.back()), static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_EQ(log.head(), 3u);
  EXPECT_EQ(log.record(2), appended[1]);

  const auto replayed = cl::ReplicationLog::replay(log.segment());
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value(), appended);
}

TEST(ReplicationLog, ReplayRefusesDamagedTransport) {
  cl::ReplicationLog log(7);
  (void)log.append(cl::encode_record(sample_doc("v0", 1)));
  auto segment = log.segment();
  segment.back() ^= 0xFF;  // tear the last frame's payload
  const auto replayed = cl::ReplicationLog::replay(segment);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.error().code, "cluster.replication_damage");
}

// ------------------------------------------------ determinism contract ---

TEST(ClusterDeterminism, PlansAreByteIdenticalAcrossNodesFaultsAndWorkers) {
  const auto videos = tiny_campaign(910);
  ASSERT_GE(videos.size(), 3u);

  // Reference: one node, no faults.
  std::string reference;
  {
    cl::Cluster cluster(make_options(make_table(videos), 1, 2));
    reference = run_campaign(videos, cluster);
  }
  ASSERT_FALSE(reference.empty());

  const std::vector<std::pair<std::string, std::string>> schedules = {
      {"crash", "cluster.node_crash=0.3"},
      {"partition", "cluster.partition=0.4"},
      {"duplicate", "cluster.replication_duplicate=0.6"},
  };
  for (const std::size_t nodes : {std::size_t{1}, std::size_t{3}, std::size_t{5}}) {
    for (const auto& [name, spec] : schedules) {
      for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
        auto plan = cc::parse_fault_plan(chaos_seed() + ":" + spec);
        ASSERT_TRUE(plan.ok());
        cl::Cluster cluster(
            make_options(make_table(videos), nodes, workers, plan.value()));
        const std::string actual = run_campaign(videos, cluster);
        const std::string label = name + "-n" + std::to_string(nodes) + "-w" +
                                  std::to_string(workers);
        if (actual != reference) dump_divergence(label, reference, actual);
        ASSERT_EQ(actual, reference)
            << label << ": plan bytes diverged from the single-node "
            << "no-fault reference (artifacts in cluster_divergence/)";
      }
    }
  }
}

TEST(ClusterDeterminism, InjectedFaultsActuallyFire) {
  // Guard against a vacuous matrix: under the same seeds the schedules use,
  // crashes and duplicate deliveries must actually happen.
  const auto videos = tiny_campaign(910);
  {
    auto plan = cc::parse_fault_plan(chaos_seed() + ":cluster.node_crash=0.3");
    ASSERT_TRUE(plan.ok());
    cl::Cluster cluster(make_options(make_table(videos), 3, 1, plan.value()));
    (void)run_campaign(videos, cluster);
    EXPECT_GT(cluster.metrics().value("crowdmap_cluster_node_crashes_total"),
              0.0);
  }
  {
    auto plan = cc::parse_fault_plan(chaos_seed() + ":cluster.replication_duplicate=0.6");
    ASSERT_TRUE(plan.ok());
    cl::Cluster cluster(make_options(make_table(videos), 3, 1, plan.value()));
    (void)run_campaign(videos, cluster);
    EXPECT_GT(
        cluster.metrics().value("crowdmap_cluster_replication_duplicates_total"),
        0.0);
  }
}

TEST(ClusterDeterminism, DelayedReplicationConvergesOnDrain) {
  const auto videos = tiny_campaign(911);
  auto plan = cc::parse_fault_plan(chaos_seed() + ":cluster.replication_delay=1.0");
  ASSERT_TRUE(plan.ok());
  auto options = make_options(make_table(videos), 3, 1, plan.value());
  options.config.cluster.replication_factor = 3;
  cl::Cluster cluster(std::move(options));

  const std::string reference = [&] {
    cl::Cluster single(make_options(make_table(videos), 1, 2));
    return run_campaign(videos, single);
  }();
  EXPECT_EQ(run_campaign(videos, cluster), reference);
  EXPECT_GT(cluster.metrics().value(
                "crowdmap_cluster_replication_delayed_total"),
            0.0);

  // After drain, every parked delivery has landed: all three replicas hold
  // the full committed upload set.
  cluster.drain();
  const auto view =
      cluster.shard_of(videos.front().building, videos.front().floor);
  ASSERT_EQ(view.replicas.size(), 3u);
  for (const std::size_t node : view.replicas) {
    for (const auto& video : videos) {
      EXPECT_TRUE(cluster.document_store(node)
                      .get("video-" + std::to_string(video.video_id))
                      .has_value())
          << "node " << node << " missing a committed upload after drain";
    }
  }
}

// --------------------------------------------------- routing semantics ---

TEST(Cluster, DirectSubmitToANonPrimaryIsRefusedAsWrongShard) {
  const auto videos = tiny_campaign(912);
  cl::Cluster cluster(make_options(make_table(videos), 3, 1));
  const auto& video = videos.front();
  const auto view = cluster.shard_of(video.building, video.floor);
  std::size_t wrong = 0;
  while (wrong == view.primary) ++wrong;

  const auto payload = crowdmap::sensors::encode_imu(video.imu);
  const std::string id = "video-" + std::to_string(video.video_id);
  const auto refused =
      cluster.submit_upload_to(wrong, id, video.building, video.floor, payload);
  EXPECT_EQ(refused.outcome, cl::SubmitOutcome::kWrongShard);
  EXPECT_EQ(refused.node, view.primary) << "ticket names the right node";
  EXPECT_EQ(cluster.metrics().value("crowdmap_cluster_wrong_shard_total"), 1.0);

  const auto accepted = cluster.submit_upload_to(view.primary, id,
                                                 video.building, video.floor,
                                                 payload);
  EXPECT_EQ(accepted.outcome, cl::SubmitOutcome::kAccepted);
}

TEST(Cluster, OverloadedPrimaryShedsUploads) {
  const auto videos = tiny_campaign(913);
  auto options = make_options(make_table(videos), 2, 1);
  options.config.cluster.max_node_queue = 4;
  cl::Cluster cluster(std::move(options));

  const auto& video = videos.front();
  const auto view = cluster.shard_of(video.building, video.floor);
  // Backpressure reads the service's own queue-depth gauge; registration is
  // idempotent, so the test grabs the same handle and simulates a backlog.
  cluster.node_registry(view.primary)
      ->gauge("crowdmap_worker_queue_depth", {},
              "Extraction tasks waiting in the pool")
      .set(100.0);

  const auto shed = cluster.submit_upload(
      "video-" + std::to_string(video.video_id), video.building, video.floor,
      crowdmap::sensors::encode_imu(video.imu));
  EXPECT_EQ(shed.outcome, cl::SubmitOutcome::kShedding);
  EXPECT_EQ(shed.seqno, 0u) << "a shed upload must not reach the shard log";
  EXPECT_EQ(cluster.metrics().value("crowdmap_cluster_sheds_total"), 1.0);
  EXPECT_EQ(cluster.shard_log_head(video.building, video.floor), 0u);
}

TEST(Cluster, ExpiredDeadlinesAreRejectedAtAdmission) {
  const auto videos = tiny_campaign(914);
  const auto& video = videos.front();
  const auto payload = crowdmap::sensors::encode_imu(video.imu);
  cl::Cluster cluster(make_options(make_table(videos), 1, 1));

  // A generous deadline admits; each routed request advances the clock.
  const auto early = cluster.submit_upload("video-early", video.building,
                                           video.floor, payload,
                                           /*deadline=*/100);
  EXPECT_EQ(early.outcome, cl::SubmitOutcome::kAccepted);
  ASSERT_GE(cluster.now_tick(), 1u);

  const auto late = cluster.submit_upload("video-late", video.building,
                                          video.floor, payload,
                                          /*deadline=*/1);
  EXPECT_EQ(late.outcome, cl::SubmitOutcome::kDeadlineExceeded);
  EXPECT_EQ(late.seqno, 0u);
  EXPECT_EQ(cluster.shard_log_head(video.building, video.floor), 1u)
      << "the late upload must not have been committed";
}

// ------------------------------------------------------- membership ---

TEST(Cluster, MembershipChangesRebalanceAndPreservePlanBytes) {
  const auto videos = tiny_campaign(915);
  ASSERT_GE(videos.size(), 4u);
  const std::string reference = [&] {
    cl::Cluster single(make_options(make_table(videos), 1, 2));
    return run_campaign(videos, single);
  }();

  cl::Cluster cluster(make_options(make_table(videos), 1, 2));
  const std::size_t half = videos.size() / 2;
  auto submit = [&](const cs::SensorRichVideo& video) {
    const auto ticket = cluster.submit_upload(
        "video-" + std::to_string(video.video_id), video.building, video.floor,
        crowdmap::sensors::encode_imu(video.imu));
    ASSERT_EQ(ticket.outcome, cl::SubmitOutcome::kAccepted);
  };
  for (std::size_t i = 0; i < half; ++i) submit(videos[i]);

  // Join: re-homed shards are eagerly resynced (RF=2 over 2 nodes means the
  // new node must receive every committed record).
  const std::size_t joined = cluster.add_node();
  EXPECT_EQ(cluster.node_count(), 2u);
  EXPECT_GT(cluster.metrics().value("crowdmap_cluster_rebalance_moves_total"),
            0.0);
  for (std::size_t i = half; i < videos.size(); ++i) submit(videos[i]);

  // Leave: the survivor resyncs anything it did not own and serves alone.
  ASSERT_TRUE(cluster.remove_node(0));
  EXPECT_FALSE(cluster.remove_node(joined)) << "refuses to empty the ring";
  EXPECT_EQ(cluster.node_count(), 1u);

  const auto result =
      cluster.build_floor_plan(videos.front().building, videos.front().floor);
  const auto bytes = fp::encode_floorplan(result.plan);
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), reference);
}

TEST(Cluster, ShardLogSegmentsShipAndReplayByteForByte) {
  const auto videos = tiny_campaign(916);
  cl::Cluster cluster(make_options(make_table(videos), 2, 1));
  (void)run_campaign(videos, cluster);
  const auto& front = videos.front();
  const auto head = cluster.shard_log_head(front.building, front.floor);
  EXPECT_EQ(head, videos.size());

  const auto segment = cluster.shard_log_segment(front.building, front.floor);
  const auto replayed = cl::ReplicationLog::replay(segment);
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed.value().size(), head);
  // Every shipped record decodes back to a committed upload document.
  std::set<std::string> ids;
  for (const auto& bytes : replayed.value()) {
    ids.insert(cl::decode_record(bytes).id);
  }
  EXPECT_EQ(ids.size(), videos.size());
}

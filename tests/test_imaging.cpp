// Tests for the imaging base layer: Image, integral images, Otsu, NCC.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "imaging/image.hpp"
#include "imaging/integral.hpp"
#include "imaging/ncc.hpp"
#include "imaging/otsu.hpp"

namespace ci = crowdmap::imaging;
namespace cc = crowdmap::common;

namespace {

ci::Image gradient_image(int w, int h) {
  ci::Image img(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      img.at(x, y) = static_cast<float>(x) / w;
    }
  }
  return img;
}

}  // namespace

TEST(Image, ConstructionAndFill) {
  const ci::Image img(4, 3, 0.5f);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.pixel_count(), 12u);
  EXPECT_FLOAT_EQ(img.at(3, 2), 0.5f);
  EXPECT_THROW(ci::Image(-1, 2), std::invalid_argument);
}

TEST(Image, ClampedAccess) {
  auto img = gradient_image(8, 8);
  EXPECT_FLOAT_EQ(img.at_clamped(-5, 0), img.at(0, 0));
  EXPECT_FLOAT_EQ(img.at_clamped(100, 100), img.at(7, 7));
}

TEST(Image, BilinearInterpolatesBetweenPixels) {
  ci::Image img(2, 1);
  img.at(0, 0) = 0.0f;
  img.at(1, 0) = 1.0f;
  EXPECT_NEAR(img.sample_bilinear(0.5, 0.0), 0.5, 1e-6);
  EXPECT_NEAR(img.sample_bilinear(0.25, 0.0), 0.25, 1e-6);
}

TEST(Image, ResizePreservesMean) {
  const auto img = gradient_image(64, 64);
  const auto small = img.resized(16, 16);
  EXPECT_EQ(small.width(), 16);
  EXPECT_NEAR(small.mean(), img.mean(), 0.02);
}

TEST(Image, CropBounds) {
  const auto img = gradient_image(10, 10);
  const auto crop = img.crop(2, 3, 4, 5);
  EXPECT_EQ(crop.width(), 4);
  EXPECT_EQ(crop.height(), 5);
  EXPECT_FLOAT_EQ(crop.at(0, 0), img.at(2, 3));
  // Out-of-range crop clamps.
  const auto edge = img.crop(8, 8, 10, 10);
  EXPECT_EQ(edge.width(), 2);
  EXPECT_EQ(edge.height(), 2);
}

TEST(Image, BoxBlurSmoothsVariance) {
  cc::Rng rng(31);
  ci::Image img(32, 32);
  for (auto& v : img.data()) v = static_cast<float>(rng.uniform());
  const auto blurred = img.box_blurred(2);
  EXPECT_LT(blurred.stddev(), img.stddev());
  EXPECT_NEAR(blurred.mean(), img.mean(), 0.02);
}

TEST(Image, MeanStddev) {
  ci::Image img(2, 1);
  img.at(0, 0) = 0.0f;
  img.at(1, 0) = 1.0f;
  EXPECT_NEAR(img.mean(), 0.5, 1e-6);
  EXPECT_NEAR(img.stddev(), 0.5, 1e-6);
}

TEST(Gradients, SobelOnRamp) {
  const auto img = gradient_image(16, 16);
  const auto g = ci::sobel_gradients(img);
  // Horizontal ramp: gx positive away from borders, gy ~ 0.
  EXPECT_GT(g.gx.at(8, 8), 0.0f);
  EXPECT_NEAR(g.gy.at(8, 8), 0.0f, 1e-5);
}

TEST(Gradients, MagnitudeCombines) {
  ci::Image img(8, 8, 0.0f);
  img.at(4, 4) = 1.0f;
  const auto mag = ci::gradient_magnitude(ci::sobel_gradients(img));
  EXPECT_GT(mag.at(3, 4), 0.0f);
  EXPECT_FLOAT_EQ(mag.at(0, 0), 0.0f);
}

TEST(ColorImage, ToGrayLuminance) {
  ci::ColorImage img(1, 1);
  img.at(0, 0) = {1.0f, 0.0f, 0.0f};
  EXPECT_NEAR(img.to_gray().at(0, 0), 0.299, 1e-5);
  img.at(0, 0) = {1.0f, 1.0f, 1.0f};
  EXPECT_NEAR(img.to_gray().at(0, 0), 1.0, 1e-5);
}

// --------------------------------------------------------- IntegralImage ---

TEST(IntegralImage, BoxSumMatchesNaive) {
  cc::Rng rng(33);
  ci::Image img(23, 17);
  for (auto& v : img.data()) v = static_cast<float>(rng.uniform());
  const ci::IntegralImage ii(img);
  for (int trial = 0; trial < 200; ++trial) {
    int x0 = rng.uniform_int(0, 22);
    int x1 = rng.uniform_int(0, 22);
    int y0 = rng.uniform_int(0, 16);
    int y1 = rng.uniform_int(0, 16);
    if (x1 < x0) std::swap(x0, x1);
    if (y1 < y0) std::swap(y0, y1);
    double naive = 0.0;
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) naive += img.at(x, y);
    }
    EXPECT_NEAR(ii.box_sum(x0, y0, x1, y1), naive, 1e-6);
  }
}

TEST(IntegralImage, ClampsOutOfBounds) {
  ci::Image img(4, 4, 1.0f);
  const ci::IntegralImage ii(img);
  EXPECT_NEAR(ii.box_sum(-5, -5, 100, 100), 16.0, 1e-9);
  EXPECT_NEAR(ii.box_mean(0, 0, 3, 3), 1.0, 1e-9);
}

// ------------------------------------------------------------------ Otsu ---

TEST(Otsu, SeparatesBimodal) {
  std::vector<double> samples;
  for (int i = 0; i < 100; ++i) samples.push_back(0.1);
  for (int i = 0; i < 100; ++i) samples.push_back(0.9);
  const double t = ci::otsu_threshold(std::span<const double>(samples));
  EXPECT_GT(t, 0.1);
  EXPECT_LT(t, 0.9);
}

TEST(Otsu, DegenerateInputs) {
  EXPECT_EQ(ci::otsu_threshold(std::span<const double>()), 0.0);
  const std::vector<double> zeros(10, 0.0);
  EXPECT_EQ(ci::otsu_threshold(std::span<const double>(zeros)), 0.0);
}

TEST(Otsu, ImageOverload) {
  ci::Image img(10, 10, 0.2f);
  for (int x = 0; x < 10; ++x) img.at(x, 9) = 0.9f;
  const float t = ci::otsu_threshold(img);
  // The optimal boundary may sit at the lower mode's bin edge.
  EXPECT_GT(t, 0.15f);
  EXPECT_LT(t, 0.9f);
}

// ------------------------------------------------------------------- NCC ---

TEST(Ncc, IdenticalImagesScoreOne) {
  const auto img = gradient_image(16, 16);
  EXPECT_NEAR(ci::normalized_cross_correlation(img, img), 1.0, 1e-9);
}

TEST(Ncc, InvariantToGainAndOffset) {
  const auto img = gradient_image(16, 16);
  ci::Image scaled(16, 16);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) scaled.at(x, y) = 0.3f + 0.4f * img.at(x, y);
  }
  EXPECT_NEAR(ci::normalized_cross_correlation(img, scaled), 1.0, 1e-5);
}

TEST(Ncc, InvertedScoresMinusOne) {
  const auto img = gradient_image(16, 16);
  ci::Image inv(16, 16);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) inv.at(x, y) = 1.0f - img.at(x, y);
  }
  EXPECT_NEAR(ci::normalized_cross_correlation(img, inv), -1.0, 1e-5);
}

TEST(Ncc, UncorrelatedNoiseNearZero) {
  cc::Rng rng(35);
  ci::Image a(32, 32);
  ci::Image b(32, 32);
  for (auto& v : a.data()) v = static_cast<float>(rng.uniform());
  for (auto& v : b.data()) v = static_cast<float>(rng.uniform());
  EXPECT_LT(std::abs(ci::normalized_cross_correlation(a, b)), 0.15);
}

TEST(Ncc, SizeMismatchThrows) {
  EXPECT_THROW((void)ci::normalized_cross_correlation(ci::Image(2, 2),
                                                      ci::Image(3, 3)),
               std::invalid_argument);
}

TEST(ShiftedNcc, PeaksAtTrueShift) {
  cc::Rng rng(36);
  ci::Image base(48, 24);
  for (auto& v : base.data()) v = static_cast<float>(rng.uniform());
  // b is base shifted right by 5 pixels.
  ci::Image b(48, 24);
  for (int y = 0; y < 24; ++y) {
    for (int x = 0; x < 48; ++x) b.at(x, y) = base.at_clamped(x + 5, y);
  }
  double best = -2;
  int best_dx = 0;
  for (int dx = -8; dx <= 8; ++dx) {
    const double score = ci::shifted_ncc(base, b, dx, 0);
    if (score > best) {
      best = score;
      best_dx = dx;
    }
  }
  EXPECT_EQ(best_dx, 5);
  EXPECT_GT(best, 0.9);
}

// Tests for trajectory extraction, LCSS and resampling.
#include <gtest/gtest.h>

#include <cmath>

#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "sim/buildings.hpp"
#include "sim/user_sim.hpp"
#include "trajectory/lcss.hpp"
#include "trajectory/trajectory.hpp"

namespace ct = crowdmap::trajectory;
namespace cs = crowdmap::sim;
namespace cc = crowdmap::common;
using crowdmap::geometry::Vec2;

// ------------------------------------------------------------------ LCSS ---

namespace {

std::vector<Vec2> straight_line(int n, double spacing, Vec2 origin = {},
                                double heading = 0.0) {
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back(origin + Vec2::from_angle(heading) * (i * spacing));
  }
  return pts;
}

}  // namespace

TEST(Lcss, IdenticalSequencesFullLength) {
  const auto a = straight_line(20, 0.5);
  EXPECT_EQ(ct::lcss_length(a, a, {}), 20u);
}

TEST(Lcss, EmptySequences) {
  const auto a = straight_line(5, 0.5);
  EXPECT_EQ(ct::lcss_length(a, {}, {}), 0u);
  EXPECT_EQ(ct::lcss_length({}, a, {}), 0u);
}

TEST(Lcss, DistantSequencesZero) {
  const auto a = straight_line(20, 0.5);
  const auto b = straight_line(20, 0.5, {100, 100});
  EXPECT_EQ(ct::lcss_length(a, b, {}), 0u);
}

TEST(Lcss, EpsilonControlsTolerance) {
  const auto a = straight_line(20, 0.5);
  auto b = a;
  for (auto& p : b) p.y += 1.0;  // offset by 1 m
  ct::LcssParams tight;
  tight.epsilon = 0.5;
  ct::LcssParams loose;
  loose.epsilon = 1.5;
  EXPECT_EQ(ct::lcss_length(a, b, tight), 0u);
  EXPECT_EQ(ct::lcss_length(a, b, loose), 20u);
}

TEST(Lcss, DeltaWindowLimitsIndexSkew) {
  const auto a = straight_line(30, 0.5);
  // b equals a but its indices are shifted by 12 (prefix removed).
  std::vector<Vec2> b(a.begin() + 12, a.end());
  ct::LcssParams params;
  params.delta = 4;
  // Without index alignment, matching points sit 12 indices apart -> the
  // delta window blocks most of them.
  const auto raw = ct::lcss_length(a, b, params, 0);
  // With the offset correcting the skew, everything matches.
  const auto aligned = ct::lcss_length(a, b, params, 12);
  EXPECT_EQ(aligned, 18u);
  EXPECT_LT(raw, aligned);
}

TEST(Lcss, SubsetRelation) {
  // LCSS(a, b) <= min(|a|, |b|).
  cc::Rng rng(111);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Vec2> a;
    std::vector<Vec2> b;
    for (int i = 0; i < 15; ++i) {
      a.push_back({rng.uniform(0, 10), rng.uniform(0, 10)});
      b.push_back({rng.uniform(0, 10), rng.uniform(0, 10)});
    }
    const auto len = ct::lcss_length(a, b, {});
    EXPECT_LE(len, 15u);
  }
}

TEST(SimilarityS3, TransformCandidatesMaximize) {
  const auto a = straight_line(20, 0.5);
  // b is a rotated/translated copy of a.
  const crowdmap::geometry::Pose2 t{{3, -2}, 0.8};
  std::vector<Vec2> b;
  for (const auto p : a) b.push_back(t.inverse().apply(p));
  // Candidate 1 is wrong, candidate 2 is the truth.
  std::vector<ct::TransformCandidate> candidates;
  candidates.push_back({crowdmap::geometry::Pose2{{50, 50}, 0.0}, 0});
  candidates.push_back({t, 0});
  const double s3 = ct::similarity_s3(a, b, candidates, {});
  EXPECT_NEAR(s3, 1.0, 1e-9);
  EXPECT_EQ(ct::similarity_s3(a, b, {}, {}), 0.0);
}

TEST(Resample, UniformSpacing) {
  const auto line = straight_line(3, 5.0);  // 0, 5, 10
  const auto resampled = ct::resample_polyline(line, 1.0);
  ASSERT_GE(resampled.size(), 10u);
  for (std::size_t i = 1; i < resampled.size() - 1; ++i) {
    EXPECT_NEAR(resampled[i].distance_to(resampled[i - 1]), 1.0, 1e-6);
  }
}

TEST(Resample, KeepsEndpoint) {
  const auto line = straight_line(2, 3.3);
  const auto resampled = ct::resample_polyline(line, 1.0);
  EXPECT_LT(resampled.back().distance_to(line.back()), 0.5);
}

TEST(Resample, DegenerateInputs) {
  EXPECT_TRUE(ct::resample_polyline({}, 1.0).empty());
  EXPECT_TRUE(ct::resample_polyline(straight_line(5, 1.0), 0.0).empty());
}

// ------------------------------------------------------------ extraction ---

namespace {

cs::SensorRichVideo make_walk_video(std::uint64_t seed = 121) {
  const auto spec = cs::lab1();
  static const auto scene = cs::Scene::from_spec(spec, 120);
  cs::SimOptions options;
  options.fps = 3.0;
  cs::UserSimulator user(scene, spec, options, cc::Rng(seed));
  return user.hallway_walk_between({2, 0}, {20, 0}, cs::Lighting::day());
}

}  // namespace

TEST(Extraction, ProducesKeyframesWithDescriptors) {
  const auto video = make_walk_video();
  const auto traj = ct::extract_trajectory(video);
  EXPECT_GT(traj.keyframes.size(), 5u);
  EXPECT_FALSE(traj.points.empty());
  for (const auto& kf : traj.keyframes) {
    EXPECT_FALSE(kf.cheap.color_hist.empty());
    EXPECT_FALSE(kf.gray.empty());
  }
}

TEST(Extraction, RespectsKeyframeBudget) {
  const auto video = make_walk_video(122);
  ct::ExtractionConfig config;
  config.max_keyframes = 6;
  const auto traj = ct::extract_trajectory(video, config);
  EXPECT_LE(traj.keyframes.size(), 6u);
}

TEST(Extraction, KeyframeTimesMonotone) {
  const auto traj = ct::extract_trajectory(make_walk_video(123));
  for (std::size_t i = 1; i < traj.keyframes.size(); ++i) {
    EXPECT_GT(traj.keyframes[i].t, traj.keyframes[i - 1].t);
  }
}

TEST(Extraction, DeadReckonedEndpointNearTruthDirection) {
  const auto video = make_walk_video(124);
  const auto traj = ct::extract_trajectory(video);
  // The walk is 18 m along +x; dead reckoning should recover the bulk of it
  // in roughly the right direction (local frame starts at compass heading).
  const Vec2 end = traj.points.back().position;
  EXPECT_GT(end.norm(), 10.0);
  EXPECT_LT(end.norm(), 26.0);
}

TEST(Extraction, MetadataCarriedThrough) {
  auto video = make_walk_video(125);
  video.user_id = 9;
  video.true_room_id = 42;
  const auto traj = ct::extract_trajectory(video);
  EXPECT_EQ(traj.user_id, 9);
  EXPECT_EQ(traj.true_room_id, 42);
  EXPECT_EQ(traj.building, "Lab1");
}

TEST(Extraction, KeyframeRatioHelper) {
  const auto video = make_walk_video(126);
  const auto traj = ct::extract_trajectory(video);
  const double ratio = ct::keyframe_ratio(traj, video.frames.size());
  EXPECT_GT(ratio, 0.0);
  EXPECT_LE(ratio, 1.0);
  EXPECT_EQ(ct::keyframe_ratio(traj, 0), 0.0);
}

TEST(TrackAt, InterpolatesBetweenPoints) {
  std::vector<crowdmap::sensors::TrackPoint> track;
  track.push_back({{0, 0}, 0.0, 0.0});
  track.push_back({{10, 0}, 10.0, 0.0});
  const auto mid = ct::track_at(track, 5.0);
  EXPECT_NEAR(mid.position.x, 5.0, 1e-9);
  // Clamps outside the range.
  EXPECT_NEAR(ct::track_at(track, -5.0).position.x, 0.0, 1e-9);
  EXPECT_NEAR(ct::track_at(track, 50.0).position.x, 10.0, 1e-9);
}

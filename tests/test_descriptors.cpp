// Tests for HOG and the cheap retrieval descriptors (color histograms,
// shape, Haar wavelet signatures) that drive the S1 key-frame gate.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "imaging/descriptors.hpp"
#include "imaging/hog.hpp"

namespace ci = crowdmap::imaging;
namespace cc = crowdmap::common;

namespace {

ci::Image vertical_edge(int w, int h) {
  ci::Image img(w, h, 0.0f);
  for (int y = 0; y < h; ++y) {
    for (int x = w / 2; x < w; ++x) img.at(x, y) = 1.0f;
  }
  return img;
}

ci::Image horizontal_edge(int w, int h) {
  ci::Image img(w, h, 0.0f);
  for (int y = h / 2; y < h; ++y) {
    for (int x = 0; x < w; ++x) img.at(x, y) = 1.0f;
  }
  return img;
}

ci::ColorImage solid_color(int w, int h, float r, float g, float b) {
  return ci::ColorImage(w, h, {r, g, b});
}

}  // namespace

// ------------------------------------------------------------------- HOG ---

TEST(Hog, DescriptorSizeMatchesGeometry) {
  const auto img = vertical_edge(64, 64);
  ci::HogParams params;
  const auto desc = ci::hog_descriptor(img, params);
  // 8 cells/side, 7x7 blocks of 2x2 cells x 9 bins.
  EXPECT_EQ(desc.size(), 7u * 7u * 2u * 2u * 9u);
}

TEST(Hog, EmptyForTinyImage) {
  EXPECT_TRUE(ci::hog_descriptor(ci::Image(4, 4)).empty());
}

TEST(Hog, OrientationSelectivity) {
  const auto v = ci::hog_descriptor(vertical_edge(64, 64));
  const auto h = ci::hog_descriptor(horizontal_edge(64, 64));
  const auto v2 = ci::hog_descriptor(vertical_edge(64, 64));
  EXPECT_GT(ci::descriptor_cosine_similarity(v, v2), 0.999);
  EXPECT_LT(ci::descriptor_cosine_similarity(v, h),
            ci::descriptor_cosine_similarity(v, v2) - 0.1);
}

TEST(Hog, InvariantToGlobalBrightness) {
  auto a = vertical_edge(64, 64);
  ci::Image b(64, 64);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) b.at(x, y) = 0.2f + 0.5f * a.at(x, y);
  }
  const auto da = ci::hog_descriptor(a);
  const auto db = ci::hog_descriptor(b);
  EXPECT_GT(ci::descriptor_cosine_similarity(da, db), 0.99);
}

TEST(Hog, DistanceMismatchedSizesThrows) {
  EXPECT_THROW((void)ci::descriptor_distance({1.0f}, {1.0f, 2.0f}),
               std::invalid_argument);
}

TEST(Hog, BadParamsThrow) {
  ci::HogParams params;
  params.cell_size = 0;
  EXPECT_THROW((void)ci::hog_descriptor(vertical_edge(32, 32), params),
               std::invalid_argument);
}

// --------------------------------------------------------- color indexing ---

TEST(ColorHistogram, SumsToOne) {
  cc::Rng rng(41);
  ci::ColorImage img(16, 16);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      img.at(x, y) = {static_cast<float>(rng.uniform()),
                      static_cast<float>(rng.uniform()),
                      static_cast<float>(rng.uniform())};
    }
  }
  const auto hist = ci::color_histogram(img);
  EXPECT_NEAR(std::accumulate(hist.begin(), hist.end(), 0.0), 1.0, 1e-5);
}

TEST(ColorHistogram, IntersectionIdentityIsOne) {
  const auto img = solid_color(8, 8, 0.9f, 0.1f, 0.1f);
  const auto hist = ci::color_histogram(img);
  EXPECT_NEAR(ci::histogram_intersection(hist, hist), 1.0, 1e-6);
}

TEST(ColorHistogram, DistinctColorsDoNotIntersect) {
  const auto red = ci::color_histogram(solid_color(8, 8, 0.9f, 0.1f, 0.1f));
  const auto blue = ci::color_histogram(solid_color(8, 8, 0.1f, 0.1f, 0.9f));
  EXPECT_NEAR(ci::histogram_intersection(red, blue), 0.0, 1e-6);
}

TEST(ColorHistogram, SizeMismatchThrows) {
  const auto a = ci::color_histogram(solid_color(4, 4, 1, 0, 0), 4);
  const auto b = ci::color_histogram(solid_color(4, 4, 1, 0, 0), 8);
  EXPECT_THROW((void)ci::histogram_intersection(a, b), std::invalid_argument);
}

// ------------------------------------------------------------------ shape ---

TEST(ShapeDescriptor, UnitNorm) {
  const auto desc = ci::shape_descriptor(vertical_edge(32, 32));
  double norm = 0.0;
  for (const float v : desc) norm += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-3);
}

TEST(ShapeDescriptor, SimilarityBoundsAndSelectivity) {
  const auto v = ci::shape_descriptor(vertical_edge(32, 32));
  const auto h = ci::shape_descriptor(horizontal_edge(32, 32));
  const double self = ci::shape_similarity(v, v);
  const double cross = ci::shape_similarity(v, h);
  EXPECT_NEAR(self, 1.0, 1e-9);
  EXPECT_LT(cross, self);
  EXPECT_GE(cross, 0.0);
}

// ---------------------------------------------------------------- wavelet ---

TEST(Haar, PreservesEnergy) {
  cc::Rng rng(43);
  ci::Image img(16, 16);
  for (auto& v : img.data()) v = static_cast<float>(rng.uniform());
  double before = 0.0;
  for (const float v : img.data()) before += static_cast<double>(v) * v;
  ci::haar_decompose(img);
  double after = 0.0;
  for (const float v : img.data()) after += static_cast<double>(v) * v;
  EXPECT_NEAR(before, after, 1e-3);  // orthonormal transform
}

TEST(Haar, RequiresPowerOfTwoSquare) {
  ci::Image bad(12, 12);
  EXPECT_THROW(ci::haar_decompose(bad), std::invalid_argument);
  ci::Image rect(16, 8);
  EXPECT_THROW(ci::haar_decompose(rect), std::invalid_argument);
}

TEST(WaveletSignature, SelfSimilarityIsHighest) {
  cc::Rng rng(44);
  ci::Image a(32, 32);
  ci::Image b(32, 32);
  for (auto& v : a.data()) v = static_cast<float>(rng.uniform());
  for (auto& v : b.data()) v = static_cast<float>(rng.uniform());
  const auto sa = ci::wavelet_signature(a);
  const auto sb = ci::wavelet_signature(b);
  EXPECT_GT(ci::wavelet_similarity(sa, sa), ci::wavelet_similarity(sa, sb));
  EXPECT_NEAR(ci::wavelet_similarity(sa, sa), 1.0, 1e-9);
}

TEST(WaveletSignature, KeepsRequestedCoefficients) {
  cc::Rng rng(45);
  ci::Image img(32, 32);
  for (auto& v : img.data()) v = static_cast<float>(rng.uniform());
  const auto sig = ci::wavelet_signature(img, 64, 40);
  EXPECT_EQ(sig.positions.size(), 40u);
  EXPECT_EQ(sig.signs.size(), 40u);
  // Positions sorted for the merge-style comparison.
  EXPECT_TRUE(std::is_sorted(sig.positions.begin(), sig.positions.end()));
}

TEST(WaveletSignature, SizeMismatchThrows) {
  const auto a = ci::wavelet_signature(ci::Image(16, 16, 0.5f), 32);
  const auto b = ci::wavelet_signature(ci::Image(16, 16, 0.5f), 64);
  EXPECT_THROW((void)ci::wavelet_similarity(a, b), std::invalid_argument);
}

TEST(WaveletSignature, BrightnessShiftPenalized) {
  cc::Rng rng(46);
  ci::Image a(32, 32);
  for (auto& v : a.data()) v = static_cast<float>(rng.uniform() * 0.3);
  ci::Image bright = a;
  for (auto& v : bright.data()) v += 0.5f;
  const auto sa = ci::wavelet_signature(a);
  const auto sb = ci::wavelet_signature(bright);
  // Same structure, different DC: similarity below self.
  EXPECT_LT(ci::wavelet_similarity(sa, sb), 1.0);
  EXPECT_GT(ci::wavelet_similarity(sa, sb), 0.3);  // structure still matches
}

// Tests for the multi-floor decomposition (paper §VI): uploads route to
// per-floor pipelines by their Task-1 annotation.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/multifloor.hpp"
#include "sim/buildings.hpp"
#include "sim/campaign.hpp"

namespace co = crowdmap::core;
namespace cs = crowdmap::sim;
namespace cc = crowdmap::common;

namespace {

/// Small two-floor campaign: floor 1 uses one random building, floor 2
/// another (different wall seeds, like a real building's distinct floors).
std::vector<cs::SensorRichVideo> two_floor_campaign() {
  std::vector<cs::SensorRichVideo> videos;
  cc::Rng rng(401);
  for (int floor = 1; floor <= 2; ++floor) {
    const auto spec = cs::random_building(2, rng);
    cs::CampaignOptions options;
    options.users = 2;
    options.room_videos_per_room = 1;
    options.hallway_walks = 4;
    options.junk_fraction = 0.0;
    options.sim.fps = 3.0;
    cs::generate_campaign_streaming(
        spec, options, 500 + static_cast<std::uint64_t>(floor),
        [&videos, floor](cs::SensorRichVideo&& video) {
          video.floor = floor;
          videos.push_back(std::move(video));
        });
  }
  return videos;
}

}  // namespace

TEST(MultiFloor, RoutesUploadsByFloor) {
  co::MultiFloorPipeline pipeline(co::PipelineConfig::fast_profile());
  const auto videos = two_floor_campaign();
  for (const auto& video : videos) pipeline.ingest(video);
  EXPECT_EQ(pipeline.floor_count(), 2u);
  const auto floors = pipeline.floors();
  ASSERT_EQ(floors.size(), 2u);
  EXPECT_EQ(floors[0], 1);
  EXPECT_EQ(floors[1], 2);
}

TEST(MultiFloor, RunsEveryFloorIndependently) {
  co::MultiFloorPipeline pipeline(co::PipelineConfig::fast_profile());
  for (const auto& video : two_floor_campaign()) pipeline.ingest(video);
  const auto results = pipeline.run();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& fr : results) {
    EXPECT_GT(fr.result.diagnostics.trajectories_kept, 0u);
    EXPECT_GT(fr.result.skeleton.raster.count_set(), 0u);
  }
}

TEST(MultiFloor, EmptyPipelineRunsToNothing) {
  co::MultiFloorPipeline pipeline(co::PipelineConfig::fast_profile());
  EXPECT_TRUE(pipeline.run().empty());
  EXPECT_EQ(pipeline.floor_count(), 0u);
}

TEST(MultiFloor, PerFloorWorldFrames) {
  co::MultiFloorPipeline pipeline(co::PipelineConfig::fast_profile());
  for (const auto& video : two_floor_campaign()) pipeline.ingest(video);
  std::map<int, co::WorldFrame> frames;
  co::WorldFrame f1;
  f1.extent = {{-5, -5}, {45, 25}};
  frames[1] = f1;
  const auto results = pipeline.run(frames);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NEAR(results[0].result.plan.hallway.extent().min.x, -5.0, 1e-9);
  // Floor 2 had no frame: its extent is data-derived, not the given one.
  EXPECT_NE(results[1].result.plan.hallway.extent().min.x, -5.0);
}

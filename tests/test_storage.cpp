// Unit tests for the log-structured storage layer: CRC32C, the Env
// implementations (PosixEnv round trip, FaultEnv crash model), CMWL segment
// framing/scanning, and LogStructuredStore recovery semantics
// (docs/DURABILITY.md). The end-to-end chaos sweeps live in
// tests/test_durability.cpp; this file pins the building blocks.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cloud/docstore.hpp"
#include "cloud/durable_store.hpp"
#include "common/fault.hpp"
#include "io/serialize.hpp"
#include "storage/crc32c.hpp"
#include "storage/env.hpp"
#include "storage/log_store.hpp"
#include "storage/wal.hpp"

namespace st = crowdmap::storage;
namespace cm = crowdmap::common;
namespace cl = crowdmap::cloud;
namespace io = crowdmap::io;

namespace {

io::Bytes bytes_of(const std::string& text) {
  return io::Bytes(text.begin(), text.end());
}

std::string text_of(const io::Bytes& bytes) {
  return std::string(bytes.begin(), bytes.end());
}

/// Captured replay target for LogStructuredStore::open.
struct Replay {
  std::string snapshot;
  std::vector<std::string> records;
};

crowdmap::common::Expected<st::RecoveryReport> open_store(
    st::LogStructuredStore& store, Replay& out) {
  return store.open(
      [&out](const io::Bytes& state) -> st::Status {
        out.snapshot = text_of(state);
        return st::ok_status();
      },
      [&out](const io::Bytes& record) { out.records.push_back(text_of(record)); });
}

st::LogStoreOptions small_options(const std::string& dir) {
  st::LogStoreOptions options;
  options.dir = dir;
  options.segment_bytes = 1 << 20;
  options.fsync = true;
  return options;
}

}  // namespace

// ----------------------------------------------------------------- crc32c ---

TEST(Crc32c, KnownVectors) {
  // The canonical CRC32C check value (RFC 3720 appendix / every
  // implementation's self-test).
  const std::string check = "123456789";
  EXPECT_EQ(st::crc32c(bytes_of(check)), 0xE3069283u);
  EXPECT_EQ(st::crc32c(nullptr, 0), 0u);
}

TEST(Crc32c, SeedChainsIncrementalComputation) {
  const io::Bytes whole = bytes_of("the quick brown fox");
  const io::Bytes head = bytes_of("the quick ");
  const io::Bytes tail = bytes_of("brown fox");
  EXPECT_EQ(st::crc32c(tail, st::crc32c(head)), st::crc32c(whole));
}

TEST(Crc32c, DetectsSingleBitFlip) {
  io::Bytes data = bytes_of("payload bytes under test");
  const std::uint32_t clean = st::crc32c(data);
  data[7] ^= 0x01;
  EXPECT_NE(st::crc32c(data), clean);
}

// --------------------------------------------------------------- PosixEnv ---

TEST(PosixEnv, RoundTripAppendReadRenameRemove) {
  st::Env& env = st::posix_env();
  const std::string dir =
      ::testing::TempDir() + "crowdmap_posix_env_test/nested";
  ASSERT_TRUE(env.make_dirs(dir).ok());
  // Clean leftovers from a previous run so list_dir expectations hold.
  if (auto names = env.list_dir(dir)) {
    for (const std::string& name : names.value()) {
      env.remove_file(dir + "/" + name);
    }
  }

  const std::string path = dir + "/a.bin";
  {
    auto file = env.open_writable(path, /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->append(bytes_of("hello ")).ok());
    ASSERT_TRUE(file.value()->append(bytes_of("world")).ok());
    ASSERT_TRUE(file.value()->sync().ok());
    ASSERT_TRUE(file.value()->close().ok());
  }
  EXPECT_TRUE(env.file_exists(path));
  auto read = env.read_file(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(text_of(read.value()), "hello world");

  // Append mode extends the existing bytes.
  {
    auto file = env.open_writable(path, /*truncate=*/false);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->append(bytes_of("!")).ok());
    ASSERT_TRUE(file.value()->close().ok());
  }
  EXPECT_EQ(text_of(env.read_file(path).value()), "hello world!");

  // Atomic replace: rename installs over an existing destination.
  const std::string other = dir + "/b.bin";
  {
    auto file = env.open_writable(other, /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->append(bytes_of("new")).ok());
    ASSERT_TRUE(file.value()->close().ok());
  }
  ASSERT_TRUE(env.rename_file(other, path).ok());
  EXPECT_FALSE(env.file_exists(other));
  EXPECT_EQ(text_of(env.read_file(path).value()), "new");

  auto names = env.list_dir(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(), std::vector<std::string>{"a.bin"});

  ASSERT_TRUE(env.remove_file(path).ok());
  EXPECT_FALSE(env.file_exists(path));
  auto missing = env.read_file(path);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, "storage.not_found");
}

// --------------------------------------------------------------- FaultEnv ---

TEST(FaultEnv, BehavesLikeAFilesystemWhenUnarmed) {
  st::FaultEnv env;
  ASSERT_TRUE(env.make_dirs("d").ok());
  auto file = env.open_writable("d/x", /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->append(bytes_of("abc")).ok());
  ASSERT_TRUE(file.value()->sync().ok());
  ASSERT_TRUE(file.value()->close().ok());
  EXPECT_TRUE(env.file_exists("d/x"));
  EXPECT_EQ(text_of(env.read_file("d/x").value()), "abc");
  ASSERT_TRUE(env.rename_file("d/x", "d/y").ok());
  EXPECT_FALSE(env.file_exists("d/x"));
  EXPECT_EQ(text_of(env.read_file("d/y").value()), "abc");
  EXPECT_EQ(env.bytes_appended(), 3u);
  EXPECT_FALSE(env.crashed());
}

TEST(FaultEnv, CrashAtBytesAppliesExactPrefix) {
  st::FaultEnv env;
  auto file = env.open_writable("f", /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->append(bytes_of("0123")).ok());
  env.set_crash_at_bytes(6);  // two bytes into the next append
  ASSERT_FALSE(file.value()->append(bytes_of("4567")).ok());
  EXPECT_TRUE(env.crashed());

  // Every operation on the crashed env is rejected.
  auto read = env.read_file("f");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.error().code, "storage.crashed");
  EXPECT_FALSE(env.open_writable("g", true).ok());
  EXPECT_FALSE(env.rename_file("f", "g").ok());

  // The survivor sees exactly the bytes appended before the crash instant.
  auto survivor = env.fork_survivor();
  EXPECT_FALSE(survivor->crashed());
  EXPECT_EQ(text_of(survivor->read_file("f").value()), "012345");
  // And is a working filesystem again.
  auto again = survivor->open_writable("f", /*truncate=*/false);
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(again.value()->append(bytes_of("z")).ok());
  EXPECT_EQ(text_of(survivor->read_file("f").value()), "012345z");
}

TEST(FaultEnv, ForkSurvivorWithoutCrashCopiesEverything) {
  st::FaultEnv env;
  auto file = env.open_writable("f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->append(bytes_of("abc")).ok());
  auto survivor = env.fork_survivor();
  EXPECT_EQ(text_of(survivor->read_file("f").value()), "abc");
}

TEST(FaultEnv, FsyncFailureLeavesAppendedBytesPending) {
  cm::FaultPlan plan;
  plan.seed = 7;
  plan.settings.push_back(cm::FaultSetting{cm::faults::kFsFsyncFail, 1.0,
                                           cm::FaultSetting::kNoBudget});
  cm::FaultInjector injector(plan);
  st::FaultEnv env(&injector);
  auto file = env.open_writable("f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->append(bytes_of("abc")).ok());
  EXPECT_FALSE(file.value()->sync().ok());
  EXPECT_GE(injector.fires(cm::faults::kFsFsyncFail), 1u);
}

TEST(FaultEnv, TornWriteAppliesPrefixAndCrashes) {
  cm::FaultPlan plan;
  plan.seed = 11;
  plan.settings.push_back(cm::FaultSetting{cm::faults::kFsWriteTorn, 1.0,
                                           cm::FaultSetting::kNoBudget});
  cm::FaultInjector injector(plan);
  st::FaultEnv env(&injector);
  auto file = env.open_writable("f", true);
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE(file.value()->append(bytes_of("0123456789")).ok());
  EXPECT_TRUE(env.crashed());
  auto survivor = env.fork_survivor();
  const std::string kept = text_of(survivor->read_file("f").value());
  // A torn write applies a strict prefix (possibly empty, never the whole).
  EXPECT_LT(kept.size(), 10u);
  EXPECT_EQ(kept, std::string("0123456789").substr(0, kept.size()));
}

TEST(FaultEnv, ReadCorruptFlipsOneDeterministicByte) {
  cm::FaultPlan plan;
  plan.seed = 13;
  plan.settings.push_back(cm::FaultSetting{cm::faults::kFsReadCorrupt, 1.0,
                                           cm::FaultSetting::kNoBudget});
  cm::FaultInjector injector(plan);
  st::FaultEnv env(&injector);
  auto file = env.open_writable("f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->append(bytes_of("abcdef")).ok());
  auto first = env.read_file("f");
  ASSERT_TRUE(first.ok());
  std::size_t diffs = 0;
  const std::string clean = "abcdef";
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (first.value()[i] != static_cast<std::uint8_t>(clean[i])) ++diffs;
  }
  EXPECT_EQ(diffs, 1u);
  // Deterministic: the same read corrupts the same byte.
  auto second = env.read_file("f");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value());
}

// ---------------------------------------------------------------- segments ---

namespace {

/// Writes a clean segment with the given records; returns its bytes.
io::Bytes build_segment(const std::vector<std::string>& records,
                        std::uint64_t seqno = 9) {
  st::FaultEnv env;
  st::SegmentWriter writer(env, "seg", seqno, /*fsync=*/false);
  EXPECT_TRUE(writer.create().ok());
  for (const std::string& record : records) {
    EXPECT_TRUE(writer.append(bytes_of(record)).ok());
  }
  EXPECT_TRUE(writer.close().ok());
  return env.read_file("seg").value();
}

}  // namespace

TEST(WalSegment, CleanScanRoundTrips) {
  const io::Bytes seg = build_segment({"one", "two", "three"});
  auto scan = st::scan_segment(seg);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan.value().clean);
  EXPECT_EQ(scan.value().seqno, 9u);
  ASSERT_EQ(scan.value().records.size(), 3u);
  EXPECT_EQ(text_of(scan.value().records[0]), "one");
  EXPECT_EQ(text_of(scan.value().records[2]), "three");
  EXPECT_TRUE(scan.value().damaged.empty());
}

TEST(WalSegment, WrongMagicIsAHeaderError) {
  io::Bytes seg = build_segment({"one"});
  seg[0] ^= 0xFF;
  auto scan = st::scan_segment(seg);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.error().code, "storage.segment_header");
}

TEST(WalSegment, TornFrameHeaderTruncatesScan) {
  io::Bytes seg = build_segment({"one", "two"});
  // Keep record one plus 3 bytes of record two's 8-byte frame header.
  const std::size_t keep =
      st::kWalHeaderBytes + st::kWalFrameOverhead + 3 + 3;
  seg.resize(keep);
  auto scan = st::scan_segment(seg);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan.value().clean);
  ASSERT_EQ(scan.value().records.size(), 1u);
  EXPECT_EQ(text_of(scan.value().records[0]), "one");
  ASSERT_EQ(scan.value().damaged.size(), 1u);
  EXPECT_EQ(scan.value().damaged[0].reason, "torn_frame_header");
  EXPECT_EQ(scan.value().damaged[0].index, 1u);
  EXPECT_EQ(scan.value().damaged[0].bytes.size(), 3u);
}

TEST(WalSegment, TornPayloadTruncatesScan) {
  io::Bytes seg = build_segment({"one", "twotwotwo"});
  seg.resize(seg.size() - 4);  // cut into record two's payload
  auto scan = st::scan_segment(seg);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan.value().clean);
  ASSERT_EQ(scan.value().records.size(), 1u);
  ASSERT_EQ(scan.value().damaged.size(), 1u);
  EXPECT_EQ(scan.value().damaged[0].reason, "torn_frame");
}

TEST(WalSegment, AbsurdLengthIsBadLengthDamage) {
  io::Bytes seg = build_segment({"one"});
  // Overwrite record one's length field with a value past the record cap.
  const std::uint32_t absurd = st::kWalMaxRecordBytes + 1;
  for (int i = 0; i < 4; ++i) {
    seg[st::kWalHeaderBytes + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(absurd >> (8 * i));
  }
  auto scan = st::scan_segment(seg);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan.value().clean);
  EXPECT_TRUE(scan.value().records.empty());
  ASSERT_EQ(scan.value().damaged.size(), 1u);
  EXPECT_EQ(scan.value().damaged[0].reason, "bad_length");
}

TEST(WalSegment, CrcMismatchTruncatesAtTheCorruptFrame) {
  io::Bytes seg = build_segment({"one", "two", "three"});
  // Flip a byte inside record two's payload.
  const std::size_t record_two_payload =
      st::kWalHeaderBytes + (st::kWalFrameOverhead + 3) +
      st::kWalFrameOverhead;
  seg[record_two_payload] ^= 0x40;
  auto scan = st::scan_segment(seg);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan.value().clean);
  // Record one survives; records two AND three are the quarantined tail
  // (frame boundaries after a corrupt frame cannot be trusted).
  ASSERT_EQ(scan.value().records.size(), 1u);
  EXPECT_EQ(text_of(scan.value().records[0]), "one");
  ASSERT_EQ(scan.value().damaged.size(), 1u);
  EXPECT_EQ(scan.value().damaged[0].reason, "crc_mismatch");
  EXPECT_EQ(scan.value().damaged[0].index, 1u);
}

// ---------------------------------------------------------------- LogStore ---

TEST(LogStore, FreshOpenThenAppendThenRecover) {
  st::FaultEnv env;
  {
    st::LogStructuredStore store(env, small_options("db"));
    Replay replay;
    auto report = open_store(store, replay);
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report.value().snapshot_loaded);
    EXPECT_EQ(report.value().records_replayed, 0u);
    EXPECT_TRUE(replay.records.empty());
    ASSERT_TRUE(store.append(bytes_of("r1")).ok());
    ASSERT_TRUE(store.append(bytes_of("r2")).ok());
    ASSERT_TRUE(store.append(bytes_of("r3")).ok());
    EXPECT_TRUE(store.healthy());
    EXPECT_EQ(store.stats().appends, 3u);
  }
  st::LogStructuredStore reopened(env, small_options("db"));
  Replay replay;
  auto report = open_store(reopened, replay);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().quarantined.empty());
  EXPECT_EQ(report.value().records_replayed, 3u);
  EXPECT_EQ(replay.records,
            (std::vector<std::string>{"r1", "r2", "r3"}));
  EXPECT_TRUE(replay.snapshot.empty());
}

TEST(LogStore, DoubleOpenIsRejected) {
  st::FaultEnv env;
  st::LogStructuredStore store(env, small_options("db"));
  Replay replay;
  ASSERT_TRUE(open_store(store, replay).ok());
  auto again = open_store(store, replay);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, "storage.reopened");
}

TEST(LogStore, AppendBeforeOpenIsUnhealthy) {
  st::FaultEnv env;
  st::LogStructuredStore store(env, small_options("db"));
  auto status = store.append(bytes_of("r"));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "storage.unhealthy");
}

TEST(LogStore, CheckpointRetiresSegmentsAndRestoresFromSnapshot) {
  st::FaultEnv env;
  {
    st::LogStructuredStore store(env, small_options("db"));
    Replay replay;
    ASSERT_TRUE(open_store(store, replay).ok());
    ASSERT_TRUE(store.append(bytes_of("r1")).ok());
    ASSERT_TRUE(store.append(bytes_of("r2")).ok());
    ASSERT_TRUE(store.checkpoint(bytes_of("STATE")).ok());
    ASSERT_TRUE(store.append(bytes_of("r3")).ok());
    EXPECT_EQ(store.stats().checkpoints, 1u);
  }
  // Only the post-checkpoint record replays; earlier state comes from the
  // snapshot. Retired segments are gone from the directory.
  st::LogStructuredStore reopened(env, small_options("db"));
  Replay replay;
  auto report = open_store(reopened, replay);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().snapshot_loaded);
  EXPECT_EQ(replay.snapshot, "STATE");
  EXPECT_EQ(replay.records, std::vector<std::string>{"r3"});
  auto names = env.list_dir("db");
  ASSERT_TRUE(names.ok());
  for (const std::string& name : names.value()) {
    EXPECT_EQ(std::count(name.begin(), name.end(), '\0'), 0);
    EXPECT_TRUE(name == "MANIFEST" || name.rfind("state-", 0) == 0 ||
                name.rfind("wal-", 0) == 0)
        << name;
  }
}

TEST(LogStore, SeqnosStayMonotonicAcrossRestarts) {
  st::FaultEnv env;
  auto highest_file = [&]() {
    auto names = env.list_dir("db").value();
    std::sort(names.begin(), names.end());
    return names.back();
  };
  std::string previous;
  for (int round = 0; round < 3; ++round) {
    st::LogStructuredStore store(env, small_options("db"));
    Replay replay;
    ASSERT_TRUE(open_store(store, replay).ok());
    ASSERT_TRUE(store.append(bytes_of("r")).ok());
    // Segment names embed the seqno, so lexicographic growth across rounds
    // proves the manifest carries next_seqno forward.
    const std::string current = highest_file();
    EXPECT_GT(current, previous);
    previous = current;
  }
}

TEST(LogStore, SegmentRotationSplitsRecordsAcrossFiles) {
  st::FaultEnv env;
  st::LogStoreOptions options = small_options("db");
  options.segment_bytes = 32;  // rotate after every record
  {
    st::LogStructuredStore store(env, options);
    Replay replay;
    ASSERT_TRUE(open_store(store, replay).ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(store.append(bytes_of("record-" + std::to_string(i))).ok());
    }
    EXPECT_GE(store.stats().segments_created, 4u);
    EXPECT_GE(store.stats().live_segments, 4u);
  }
  st::LogStructuredStore reopened(env, options);
  Replay replay;
  auto report = open_store(reopened, replay);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report.value().segments_scanned, 4u);
  EXPECT_EQ(replay.records,
            (std::vector<std::string>{"record-0", "record-1", "record-2",
                                      "record-3"}));
}

TEST(LogStore, ListedButMissingSegmentIsANeverCreatedTail) {
  st::FaultEnv env;
  st::LogStoreOptions options = small_options("db");
  options.segment_bytes = 20;  // rotate after every record (header is 16)
  {
    st::LogStructuredStore store(env, options);
    Replay replay;
    ASSERT_TRUE(open_store(store, replay).ok());
    ASSERT_TRUE(store.append(bytes_of("r1")).ok());
    ASSERT_TRUE(store.append(bytes_of("r2")).ok());
  }
  // Delete the segment holding r2 (the second-newest; the newest is the
  // empty post-rotation tail). The manifest still lists it, which recovery
  // must treat as the never-created tail, not as corruption — and nothing
  // listed after it may be replayed.
  const std::vector<std::string> names = env.list_dir("db").value();
  std::vector<std::string> wals;
  for (const std::string& name : names) {
    if (name.rfind("wal-", 0) == 0) wals.push_back(name);
  }
  ASSERT_GE(wals.size(), 3u);
  std::sort(wals.begin(), wals.end());
  ASSERT_TRUE(env.remove_file("db/" + wals[wals.size() - 2]).ok());
  st::LogStructuredStore reopened(env, options);
  Replay replay;
  auto report = open_store(reopened, replay);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().quarantined.empty());
  EXPECT_EQ(replay.records, std::vector<std::string>{"r1"});
}

TEST(LogStore, CorruptManifestIsACleanError) {
  st::FaultEnv env;
  {
    st::LogStructuredStore store(env, small_options("db"));
    Replay replay;
    ASSERT_TRUE(open_store(store, replay).ok());
    ASSERT_TRUE(store.append(bytes_of("r1")).ok());
  }
  io::Bytes manifest = env.read_file("db/MANIFEST").value();
  manifest[manifest.size() / 2] ^= 0x01;
  ASSERT_TRUE(env.remove_file("db/MANIFEST").ok());
  auto file = env.open_writable("db/MANIFEST", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->append(manifest).ok());
  ASSERT_TRUE(file.value()->close().ok());

  st::LogStructuredStore reopened(env, small_options("db"));
  Replay replay;
  auto report = open_store(reopened, replay);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, "storage.manifest_corrupt");
}

TEST(LogStore, CorruptSnapshotIsACleanError) {
  st::FaultEnv env;
  {
    st::LogStructuredStore store(env, small_options("db"));
    Replay replay;
    ASSERT_TRUE(open_store(store, replay).ok());
    ASSERT_TRUE(store.append(bytes_of("r1")).ok());
    ASSERT_TRUE(store.checkpoint(bytes_of("STATE")).ok());
  }
  auto names = env.list_dir("db").value();
  std::string snap;
  for (const std::string& name : names) {
    if (name.rfind("state-", 0) == 0) snap = name;
  }
  ASSERT_FALSE(snap.empty());
  io::Bytes bytes = env.read_file("db/" + snap).value();
  bytes.back() ^= 0x01;  // corrupt the snapshot payload
  ASSERT_TRUE(env.remove_file("db/" + snap).ok());
  auto file = env.open_writable("db/" + snap, true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->append(bytes).ok());
  ASSERT_TRUE(file.value()->close().ok());

  st::LogStructuredStore reopened(env, small_options("db"));
  Replay replay;
  auto report = open_store(reopened, replay);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, "storage.snapshot_corrupt");
}

TEST(LogStore, OrphanSweepRemovesUnreferencedFiles) {
  st::FaultEnv env;
  {
    st::LogStructuredStore store(env, small_options("db"));
    Replay replay;
    ASSERT_TRUE(open_store(store, replay).ok());
    ASSERT_TRUE(store.append(bytes_of("r1")).ok());
  }
  // A stray file a crashed checkpoint might have left behind.
  auto file = env.open_writable("db/state-999999.snap.tmp", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->append(bytes_of("junk")).ok());
  ASSERT_TRUE(file.value()->close().ok());

  st::LogStructuredStore reopened(env, small_options("db"));
  Replay replay;
  ASSERT_TRUE(open_store(reopened, replay).ok());
  EXPECT_FALSE(env.file_exists("db/state-999999.snap.tmp"));
}

TEST(LogStore, CrashMidAppendTruncatesAndQuarantinesTheTail) {
  // Pass 1 (no faults) maps byte offsets; pass 2 crashes mid-record.
  std::uint64_t before_r2 = 0;
  std::uint64_t after_r2 = 0;
  {
    st::FaultEnv env;
    st::LogStructuredStore store(env, small_options("db"));
    Replay replay;
    ASSERT_TRUE(open_store(store, replay).ok());
    ASSERT_TRUE(store.append(bytes_of("record-one")).ok());
    before_r2 = env.bytes_appended();
    ASSERT_TRUE(store.append(bytes_of("record-two")).ok());
    after_r2 = env.bytes_appended();
  }
  ASSERT_GT(after_r2, before_r2 + 2);

  st::FaultEnv env;
  env.set_crash_at_bytes(before_r2 + (after_r2 - before_r2) / 2);
  {
    st::LogStructuredStore store(env, small_options("db"));
    Replay replay;
    ASSERT_TRUE(open_store(store, replay).ok());
    ASSERT_TRUE(store.append(bytes_of("record-one")).ok());
    auto status = store.append(bytes_of("record-two"));
    EXPECT_FALSE(status.ok());
    EXPECT_FALSE(store.healthy());
    EXPECT_EQ(store.stats().append_failures, 1u);
    // After the failure every append is rejected without touching the env.
    EXPECT_EQ(store.append(bytes_of("r3")).error().code, "storage.unhealthy");
  }

  auto survivor = env.fork_survivor();
  st::LogStructuredStore recovered(*survivor, small_options("db"));
  Replay replay;
  auto report = open_store(recovered, replay);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(replay.records, std::vector<std::string>{"record-one"});
  ASSERT_EQ(report.value().truncated_records(), 1u);
  const st::QuarantinedRecord& damage = report.value().quarantined[0];
  EXPECT_TRUE(damage.reason == "torn_frame" ||
              damage.reason == "torn_frame_header")
      << damage.reason;
  EXPECT_FALSE(damage.bytes.empty());
}

TEST(LogStore, MetricsCountAppendsAndCheckpoints) {
  auto registry = std::make_shared<crowdmap::obs::MetricsRegistry>();
  st::FaultEnv env;
  st::LogStructuredStore store(env, small_options("db"), registry);
  Replay replay;
  ASSERT_TRUE(open_store(store, replay).ok());
  ASSERT_TRUE(store.append(bytes_of("r1")).ok());
  ASSERT_TRUE(store.append(bytes_of("r2")).ok());
  ASSERT_TRUE(store.checkpoint(bytes_of("S")).ok());
  const auto snap = registry->snapshot();
  EXPECT_EQ(snap.value("crowdmap_wal_appends_total"), 2.0);
  EXPECT_EQ(snap.value("crowdmap_wal_checkpoints_total"), 1.0);
  EXPECT_GT(snap.value("crowdmap_wal_bytes_written_total"), 0.0);
  EXPECT_TRUE(snap.has("crowdmap_recovery_records_replayed_total"));
}

// ------------------------------------------------------ DurableDocumentStore ---

namespace {

cl::Document make_doc(const std::string& id, const std::string& building,
                      int floor, const std::string& payload) {
  cl::Document doc;
  doc.id = id;
  doc.building = building;
  doc.floor = floor;
  doc.metadata["k"] = "v:" + id;
  doc.payload.assign(payload.begin(), payload.end());
  return doc;
}

bool same_doc(const cl::Document& a, const cl::Document& b) {
  return a.id == b.id && a.building == b.building && a.floor == b.floor &&
         a.metadata == b.metadata && a.payload == b.payload;
}

}  // namespace

TEST(DurableDocumentStore, JournalReplayRebuildsIdenticalState) {
  st::FaultEnv env;
  cl::DurableStoreOptions options;
  options.dir = "db";
  {
    cl::DocumentStore store;
    cl::DurableDocumentStore durable(store, env, options);
    auto report = durable.open_and_recover();
    ASSERT_TRUE(report.ok());
    store.put(make_doc("a", "Lab1", 1, "payload-a"));
    store.put(make_doc("b", "Lab1", 2, "payload-b"));
    store.put(make_doc("a", "Gym", 1, "payload-a2"));  // replace + move
    store.put(make_doc("c", "Lab1", 1, "payload-c"));
    store.erase("c");
    store.quarantine(make_doc("q", "Lab1", 1, "mangled"), "checksum");
    EXPECT_TRUE(durable.stats().healthy);
    EXPECT_EQ(durable.stats().wal_appends, 6u);
  }
  cl::DocumentStore recovered;
  cl::DurableDocumentStore durable(recovered, env, options);
  auto report = durable.open_and_recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().records_replayed, 6u);
  EXPECT_EQ(recovered.size(), 2u);
  ASSERT_TRUE(recovered.get("a").has_value());
  EXPECT_TRUE(same_doc(*recovered.get("a"), make_doc("a", "Gym", 1,
                                                     "payload-a2")));
  EXPECT_TRUE(same_doc(*recovered.get("b"), make_doc("b", "Lab1", 2,
                                                     "payload-b")));
  EXPECT_FALSE(recovered.get("c").has_value());
  ASSERT_TRUE(recovered.get_quarantined("q").has_value());
  EXPECT_EQ(recovered.get_quarantined("q")->metadata.at("quarantine_reason"),
            "checksum");
  // The secondary index was rebuilt, including the replace-move.
  EXPECT_TRUE(recovered.ids_for_floor("Lab1", 1).empty());
  EXPECT_EQ(recovered.ids_for_floor("Gym", 1).size(), 1u);
  EXPECT_TRUE(durable.stats().recovered);
}

TEST(DurableDocumentStore, CheckpointSnapshotRoundTripsAllCollections) {
  st::FaultEnv env;
  cl::DurableStoreOptions options;
  options.dir = "db";
  {
    cl::DocumentStore store;
    cl::DurableDocumentStore durable(store, env, options);
    ASSERT_TRUE(durable.open_and_recover().ok());
    store.put(make_doc("a", "Lab1", 1, "payload-a"));
    store.quarantine(make_doc("q", "Lab1", 1, "m"), "why");
    ASSERT_TRUE(durable.checkpoint().ok());
    store.put(make_doc("b", "Lab1", 1, "payload-b"));  // post-snapshot op
  }
  cl::DocumentStore recovered;
  cl::DurableDocumentStore durable(recovered, env, options);
  auto report = durable.open_and_recover();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().snapshot_loaded);
  EXPECT_EQ(report.value().records_replayed, 1u);  // just the "b" put
  EXPECT_EQ(recovered.size(), 2u);
  EXPECT_TRUE(recovered.get("a").has_value());
  EXPECT_TRUE(recovered.get("b").has_value());
  EXPECT_TRUE(recovered.get_quarantined("q").has_value());
}

TEST(DurableDocumentStore, DirtyRecoveryQuarantinesDamageAndCheckpoints) {
  cl::DurableStoreOptions options;
  options.dir = "db";
  std::uint64_t before_last = 0;
  std::uint64_t after_last = 0;
  {
    st::FaultEnv env;
    cl::DocumentStore store;
    cl::DurableDocumentStore durable(store, env, options);
    ASSERT_TRUE(durable.open_and_recover().ok());
    store.put(make_doc("a", "Lab1", 1, "payload-a"));
    before_last = env.bytes_appended();
    store.put(make_doc("b", "Lab1", 1, "payload-b"));
    after_last = env.bytes_appended();
  }

  st::FaultEnv env;
  env.set_crash_at_bytes(before_last + (after_last - before_last) / 2);
  {
    cl::DocumentStore store;
    cl::DurableDocumentStore durable(store, env, options);
    ASSERT_TRUE(durable.open_and_recover().ok());
    store.put(make_doc("a", "Lab1", 1, "payload-a"));
    store.put(make_doc("b", "Lab1", 1, "payload-b"));  // torn mid-frame
    EXPECT_TRUE(env.crashed());
  }

  auto survivor = env.fork_survivor();
  cl::DocumentStore recovered;
  cl::DurableDocumentStore durable(recovered, *survivor, options);
  auto report = durable.open_and_recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().truncated_records(), 1u);
  EXPECT_TRUE(recovered.get("a").has_value());
  EXPECT_FALSE(recovered.get("b").has_value());
  // The torn tail survives as an audit document in the system building.
  bool found_damage = false;
  for (const std::string& id : recovered.quarantined_ids()) {
    if (id.rfind("sys/wal-damage/", 0) == 0) {
      found_damage = true;
      auto doc = recovered.get_quarantined(id);
      ASSERT_TRUE(doc.has_value());
      EXPECT_EQ(doc->building, cl::kWalDamageBuilding);
      EXPECT_FALSE(doc->metadata.at("quarantine_reason").empty());
    }
  }
  EXPECT_TRUE(found_damage);
  EXPECT_EQ(durable.stats().recovery_truncated_records, 1u);

  // The dirty recovery checkpointed: a THIRD open replays from the snapshot
  // and never re-reads the damage.
  auto survivor2 = survivor->fork_survivor();
  cl::DocumentStore third;
  cl::DurableDocumentStore durable3(third, *survivor2, options);
  auto report3 = durable3.open_and_recover();
  ASSERT_TRUE(report3.ok());
  EXPECT_EQ(report3.value().truncated_records(), 0u);
  EXPECT_TRUE(report3.value().snapshot_loaded);
  EXPECT_TRUE(third.get("a").has_value());
  // The audit document is durable state now — it rode the checkpoint.
  EXPECT_FALSE(third.quarantined_ids().empty());
}

TEST(DurableDocumentStore, MaybeCheckpointHonorsSnapshotEvery) {
  st::FaultEnv env;
  cl::DurableStoreOptions options;
  options.dir = "db";
  options.snapshot_every = 3;
  cl::DocumentStore store;
  cl::DurableDocumentStore durable(store, env, options);
  ASSERT_TRUE(durable.open_and_recover().ok());
  for (int i = 0; i < 7; ++i) {
    store.put(make_doc("d" + std::to_string(i), "Lab1", 1, "p"));
    durable.maybe_checkpoint();
  }
  EXPECT_EQ(durable.stats().checkpoints, 2u);
}

TEST(DurableDocumentStore, EncodeStoreStateIsByteDeterministic) {
  cl::DocumentStore a;
  a.put(make_doc("z", "Lab1", 1, "pz"));
  a.put(make_doc("a", "Lab1", 1, "pa"));
  cl::DocumentStore b;
  b.put(make_doc("a", "Lab1", 1, "pa"));
  b.put(make_doc("z", "Lab1", 1, "pz"));
  EXPECT_EQ(cl::encode_store_state(a), cl::encode_store_state(b));
  EXPECT_EQ(cl::encode_store_state(a.export_documents(),
                                   a.export_quarantined()),
            cl::encode_store_state(a));
}

// Durability chaos suite (docs/DURABILITY.md): proves the crash-recovery
// contract of the log-structured DocumentStore backend two ways.
//
// Exact-prefix sweep: a fixed mutation sequence is journaled against a
// FaultEnv killed at EVERY byte offset of the write history; recovery from
// each survivor must rebuild exactly the mutations whose WAL frames landed
// entirely below the crash line — no committed record lost, no torn record
// resurrected — and must never throw.
//
// Campaign convergence: a 20+ upload crowd campaign is killed mid-write
// (torn writes, failed fsyncs, crash-at-byte-N at several fractions of the
// write history, across >=3 seeds); a restarted service recovers the
// survivor, the campaign is re-submitted (planner admission is idempotent by
// video_id), and the rebuilt FloorPlan must serialize byte-identical to an
// uncrashed reference run — at 1 and at 4 worker threads. The CI
// durability-chaos matrix re-runs this suite at several CROWDMAP_FAULT_SEED
// values; on divergence the mismatched plan bytes are written under
// durability_divergence/ for artifact upload.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cloud/durable_store.hpp"
#include "cloud/service.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "floorplan/serialize.hpp"
#include "sim/buildings.hpp"
#include "sim/campaign.hpp"
#include "storage/env.hpp"

namespace cc = crowdmap::common;
namespace cl = crowdmap::cloud;
namespace co = crowdmap::core;
namespace cs = crowdmap::sim;
namespace st = crowdmap::storage;
namespace io = crowdmap::io;

namespace {

/// Seeds for the crash matrix. The CI durability-chaos matrix overrides the
/// first one via CROWDMAP_FAULT_SEED so each leg walks a different timeline.
std::vector<std::uint64_t> matrix_seeds() {
  std::vector<std::uint64_t> seeds{1301, 2477, 9043};
  std::uint64_t env_seed = 0;
  if (cc::env_fault_seed(env_seed)) seeds[0] = env_seed;
  return seeds;
}

/// True for the synthetic audit documents recovery mints for damaged WAL
/// tails — they are evidence about the crash, not campaign state, so every
/// state comparison filters them out first.
bool is_damage_evidence(const cl::Document& doc) {
  return doc.building == cl::kWalDamageBuilding ||
         doc.id.rfind("sys/wal-damage/", 0) == 0;
}

/// Writes reference/actual bytes for CI artifact upload when a byte
/// comparison fails (the durability-chaos job uploads this directory).
void write_divergence(const std::string& name, const io::Bytes& reference,
                      const io::Bytes& actual) {
  std::error_code ec;
  std::filesystem::create_directories("durability_divergence", ec);
  const auto dump = [](const std::string& path, const io::Bytes& bytes) {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  };
  dump("durability_divergence/" + name + ".reference.bin", reference);
  dump("durability_divergence/" + name + ".recovered.bin", actual);
}

// ------------------------------------------------------- exact-prefix sweep ---

/// One scripted mutation against the journaled store.
struct Op {
  enum Kind { kPut, kErase, kQuarantine } kind = kPut;
  cl::Document doc;
  std::string reason;
};

cl::Document sweep_doc(const std::string& id, int floor,
                       const std::string& payload) {
  cl::Document doc;
  doc.id = id;
  doc.building = "Lab1";
  doc.floor = floor;
  doc.metadata["origin"] = "sweep:" + id;
  doc.payload.assign(payload.begin(), payload.end());
  return doc;
}

std::vector<Op> sweep_script() {
  std::vector<Op> ops;
  ops.push_back({Op::kPut, sweep_doc("d0", 1, "alpha"), ""});
  ops.push_back({Op::kPut, sweep_doc("d1", 1, "bravo-bravo"), ""});
  ops.push_back({Op::kPut, sweep_doc("d2", 2, "charlie"), ""});
  ops.push_back({Op::kPut, sweep_doc("d1", 3, "delta-replaced"), ""});  // move
  ops.push_back({Op::kErase, sweep_doc("d0", 1, ""), ""});
  ops.push_back({Op::kQuarantine, sweep_doc("q0", 1, "mangled-bytes"),
                 "checksum_mismatch"});
  ops.push_back({Op::kPut, sweep_doc("d3", 1, "echo"), ""});
  return ops;
}

void apply_op(cl::DocumentStore& store, const Op& op) {
  switch (op.kind) {
    case Op::kPut:
      store.put(op.doc);
      break;
    case Op::kErase:
      store.erase(op.doc.id);
      break;
    case Op::kQuarantine:
      store.quarantine(op.doc, op.reason);
      break;
  }
}

/// Canonical state fingerprint: every non-evidence document of both
/// collections, fully serialized, in sorted order.
std::string fingerprint(const cl::DocumentStore& store) {
  std::string out;
  const auto add = [&out](const char* prefix, const cl::Document& doc) {
    out += prefix;
    out += doc.id + "|" + doc.building + "|" + std::to_string(doc.floor) + "|";
    for (const auto& [key, value] : doc.metadata) {
      out += key + "=" + value + ";";
    }
    out.append(doc.payload.begin(), doc.payload.end());
    out += "\n";
  };
  for (const auto& doc : store.export_documents()) {
    if (!is_damage_evidence(doc)) add("doc:", doc);
  }
  for (const auto& doc : store.export_quarantined()) {
    if (!is_damage_evidence(doc)) add("quar:", doc);
  }
  return out;
}

TEST(DurabilitySweep, ExactPrefixRecoveryAtEveryByteOffset) {
  const std::vector<Op> script = sweep_script();
  cl::DurableStoreOptions options;
  options.dir = "db";

  // Pass 1 (no faults): map each op to the byte offset at which its WAL
  // frame is fully durable, and capture the expected post-op fingerprints.
  std::vector<std::uint64_t> durable_at(script.size(), 0);
  std::vector<std::string> state_after(script.size() + 1);
  std::uint64_t total_bytes = 0;
  {
    st::FaultEnv env;
    cl::DocumentStore store;
    cl::DurableDocumentStore durable(store, env, options);
    ASSERT_TRUE(durable.open_and_recover().ok());
    state_after[0] = fingerprint(store);
    for (std::size_t i = 0; i < script.size(); ++i) {
      apply_op(store, script[i]);
      durable_at[i] = env.bytes_appended();
      state_after[i + 1] = fingerprint(store);
    }
    total_bytes = env.bytes_appended();
  }
  ASSERT_GT(total_bytes, 0u);

  // Pass 2: crash at every byte offset of that history, recover the
  // survivor, and demand the exact durable prefix — nothing more, nothing
  // less. Recovery must never throw.
  std::size_t damaged_offsets = 0;
  for (std::uint64_t crash_at = 0; crash_at <= total_bytes; ++crash_at) {
    st::FaultEnv env;
    if (crash_at < total_bytes) env.set_crash_at_bytes(crash_at);
    {
      cl::DocumentStore store;
      cl::DurableDocumentStore durable(store, env, options);
      auto opened = durable.open_and_recover();
      if (opened.ok()) {
        for (const Op& op : script) {
          apply_op(store, op);  // journal appends fail past the crash line
        }
      }
    }

    // The expected state is defined by the last op whose frame is fully
    // below the crash line.
    std::size_t durable_ops = 0;
    while (durable_ops < script.size() &&
           durable_at[durable_ops] <= crash_at) {
      ++durable_ops;
    }

    auto survivor = env.fork_survivor();
    cl::DocumentStore recovered;
    cl::DurableDocumentStore durable(recovered, *survivor, options);
    crowdmap::common::Expected<st::RecoveryReport> report =
        crowdmap::common::make_error("unset", "");
    ASSERT_NO_THROW(report = durable.open_and_recover()) << "crash_at "
                                                         << crash_at;
    ASSERT_TRUE(report.ok()) << "crash_at " << crash_at << ": "
                             << report.error().message;
    EXPECT_EQ(fingerprint(recovered), state_after[durable_ops])
        << "crash_at " << crash_at << " expected " << durable_ops
        << " durable ops";
    if (report.value().truncated_records() > 0) ++damaged_offsets;
  }
  // Sanity on the sweep itself: plenty of offsets land mid-frame, so the
  // truncate-and-quarantine path really ran.
  EXPECT_GT(damaged_offsets, script.size());
}

// ------------------------------------------------------ campaign convergence ---

/// Videos travel by side table keyed by upload id (as in test_service /
/// test_chaos). The table is owned by the TEST, not the service, so it
/// survives the simulated process restart — recovered documents decode.
struct Fixture {
  std::map<std::string, cs::SensorRichVideo> videos;

  cl::VideoDecoder decoder() {
    return
        [this](const cl::Document& doc) -> std::optional<cs::SensorRichVideo> {
          const auto it = videos.find(doc.id);
          if (it == videos.end()) return std::nullopt;
          return it->second;
        };
  }
};

struct Campaign {
  cs::FloorPlanSpec spec;
  std::vector<cs::SensorRichVideo> videos;
};

/// 20+ uploads over a two-room corridor building (the acceptance floor for
/// the chaos campaign).
const Campaign& campaign() {
  static const Campaign instance = [] {
    cc::Rng rng(4242);
    Campaign c{cs::random_building(2, rng), {}};
    cs::CampaignOptions options;
    options.users = 4;
    options.room_videos_per_room = 2;
    options.hallway_walks = 16;
    options.junk_fraction = 0.0;
    options.sim.fps = 3.0;
    cs::generate_campaign_streaming(c.spec, options, 4242,
                                    [&c](cs::SensorRichVideo&& video) {
                                      c.videos.push_back(std::move(video));
                                    });
    return c;
  }();
  return instance;
}

co::PipelineConfig storage_config(std::size_t threads) {
  co::PipelineConfig config = co::PipelineConfig::fast_profile();
  config.parallel.threads = threads;
  config.storage.dir = "db";
  config.storage.snapshot_every = 8;  // checkpoints interleave with crashes
  return config;
}

void prefill(Fixture& fixture) {
  for (std::size_t v = 0; v < campaign().videos.size(); ++v) {
    fixture.videos["up" + std::to_string(v)] = campaign().videos[v];
  }
}

/// Submits the whole campaign over a clean wire. Deliveries after the env
/// crashed still succeed in memory — durability degrades, serving does not.
void submit_all(cl::CrowdMapService& service) {
  const auto& videos = campaign().videos;
  for (std::size_t v = 0; v < videos.size(); ++v) {
    const std::string id = "up" + std::to_string(v);
    service.open_session(id, videos[v].building, videos[v].floor);
    const auto chunks = cl::split_into_chunks(
        cl::Blob(256, static_cast<std::uint8_t>(v)), id, 100);
    for (const auto& chunk : chunks) service.deliver(chunk);
  }
  service.drain();
}

io::Bytes build_plan_bytes(cl::CrowdMapService& service) {
  co::WorldFrame frame;
  frame.global_to_world = crowdmap::geometry::Pose2{};
  frame.extent = campaign().spec.extent();
  const auto& front = campaign().videos.front();
  const auto result =
      service.build_floor_plan(front.building, front.floor, frame);
  return crowdmap::floorplan::encode_floorplan(result.plan);
}

/// Runs the campaign against a storage-backed service on `env` until the env
/// (maybe) dies; returns after drain. The service is built with 4 workers so
/// journal appends race the way production would.
void run_campaign_to_crash(st::FaultEnv& env) {
  Fixture fixture;
  prefill(fixture);
  cl::CrowdMapService service(storage_config(4), fixture.decoder(), 4, nullptr,
                              &env);
  (void)service.recover_from_storage();  // fresh dir; attaches the journal
  submit_all(service);
}

/// Restarts on the survivor filesystem: recover (must not throw), re-submit
/// the full campaign, build. Returns the serialized plan.
io::Bytes recover_resubmit_build(st::FaultEnv& env, std::size_t threads,
                                 st::RecoveryReport* report_out = nullptr) {
  Fixture fixture;
  prefill(fixture);
  cl::CrowdMapService service(storage_config(threads), fixture.decoder(),
                              threads, nullptr, &env);
  crowdmap::common::Expected<st::RecoveryReport> report =
      crowdmap::common::make_error("unset", "");
  EXPECT_NO_THROW(report = service.recover_from_storage());
  EXPECT_TRUE(report.ok()) << report.error().message;
  if (report.ok()) {
    // The stats surface must agree with the recovery report.
    const cl::DurabilityStats stats = service.stats().durability;
    EXPECT_TRUE(stats.enabled);
    EXPECT_TRUE(stats.recovered);
    EXPECT_EQ(stats.recovery_truncated_records,
              report.value().truncated_records());
    if (report_out != nullptr) *report_out = report.value();
  }
  submit_all(service);
  return build_plan_bytes(service);
}

TEST(DurabilityCampaign, MeetsTheTwentyUploadFloor) {
  EXPECT_GE(campaign().videos.size(), 20u);
}

TEST(DurabilityCampaign, CrashedRunsRecoverToTheReferencePlanBytes) {
  // Uncrashed reference: same campaign, storage on, never killed. Also
  // yields the total write-history length the crash_at mode slices into.
  st::FaultEnv reference_env;
  std::uint64_t total_bytes = 0;
  io::Bytes reference;
  {
    Fixture fixture;
    prefill(fixture);
    cl::CrowdMapService service(storage_config(1), fixture.decoder(), 1,
                                nullptr, &reference_env);
    ASSERT_TRUE(service.recover_from_storage().ok());
    submit_all(service);
    total_bytes = reference_env.bytes_appended();
    reference = build_plan_bytes(service);
  }
  ASSERT_FALSE(reference.empty());
  ASSERT_GT(total_bytes, 0u);

  const double fractions[] = {0.3, 0.6, 0.9};
  std::size_t case_index = 0;
  std::size_t crashes_observed = 0;
  std::uint64_t truncations_observed = 0;
  for (const std::uint64_t seed : matrix_seeds()) {
    for (int mode = 0; mode < 3; ++mode) {
      cc::FaultPlan plan;
      plan.seed = seed;
      std::uint64_t crash_at = st::FaultEnv::kNoCrash;
      std::string label;
      switch (mode) {
        case 0:  // torn write somewhere mid-campaign
          plan.settings.push_back(cc::FaultSetting{
              cc::faults::kFsWriteTorn, 0.05, cc::FaultSetting::kNoBudget});
          label = "torn";
          break;
        case 1:  // fsync failure: the short-write cousin (bytes appended,
                 // durability barrier refused; the log turns unhealthy)
          plan.settings.push_back(cc::FaultSetting{
              cc::faults::kFsFsyncFail, 0.05, cc::FaultSetting::kNoBudget});
          label = "fsync";
          break;
        default:  // exact kill at a fraction of the reference history
          crash_at = static_cast<std::uint64_t>(
              static_cast<double>(total_bytes) *
              fractions[case_index % 3]);
          label = "crash_at_" +
                  std::to_string(fractions[case_index % 3]);
          break;
      }
      cc::FaultInjector injector(plan);
      st::FaultEnv env(plan.settings.empty() ? nullptr : &injector);
      if (crash_at != st::FaultEnv::kNoCrash) env.set_crash_at_bytes(crash_at);

      run_campaign_to_crash(env);
      if (env.crashed()) ++crashes_observed;

      auto survivor = env.fork_survivor();
      // Alternate worker counts across the matrix so both 1 and 4 threads
      // recover every fault mode over the full run of seeds.
      const std::size_t threads = (case_index % 2 == 0) ? 1 : 4;
      st::RecoveryReport report;
      const io::Bytes recovered =
          recover_resubmit_build(*survivor, threads, &report);
      truncations_observed += report.truncated_records();
      const std::string name = "seed" + std::to_string(seed) + "_" + label +
                               "_t" + std::to_string(threads);
      if (recovered != reference) write_divergence(name, reference, recovered);
      ASSERT_EQ(recovered, reference) << name;
      ++case_index;
    }
  }
  // The matrix must actually have killed processes; a sweep where nothing
  // crashed proves nothing.
  EXPECT_GE(crashes_observed, matrix_seeds().size());
  // At least one crash should have landed mid-frame across the matrix.
  EXPECT_GT(truncations_observed + crashes_observed, 0u);
}

TEST(DurabilityCampaign, SameSurvivorRecoversIdenticallyAtOneAndFourThreads) {
  // One survivor, recovered twice at different worker counts: the rebuilt
  // plans must match each other byte for byte (and hence the reference —
  // the matrix test pins that).
  st::FaultEnv env;
  {
    // Kill roughly mid-campaign.
    st::FaultEnv probe;
    run_campaign_to_crash(probe);
    env.set_crash_at_bytes(probe.bytes_appended() / 2);
  }
  run_campaign_to_crash(env);
  ASSERT_TRUE(env.crashed());

  auto survivor_serial = env.fork_survivor();
  auto survivor_pooled = env.fork_survivor();
  const io::Bytes serial = recover_resubmit_build(*survivor_serial, 1);
  const io::Bytes pooled = recover_resubmit_build(*survivor_pooled, 4);
  ASSERT_FALSE(serial.empty());
  if (serial != pooled) write_divergence("threads_1_vs_4", serial, pooled);
  EXPECT_EQ(serial, pooled);
}

}  // namespace

// Tests for the occupancy grid and floor path skeleton reconstruction.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "imaging/morphology.hpp"
#include "mapping/occupancy.hpp"
#include "mapping/skeleton.hpp"
#include "sim/buildings.hpp"

namespace cm = crowdmap::mapping;
namespace cg = crowdmap::geometry;
namespace cc = crowdmap::common;
using cg::Vec2;

namespace {

cm::OccupancyGrid make_grid() {
  return cm::OccupancyGrid(cg::Aabb{{0, 0}, {20, 20}}, 0.5);
}

}  // namespace

TEST(OccupancyGrid, Construction) {
  const auto grid = make_grid();
  EXPECT_EQ(grid.width(), 40);
  EXPECT_EQ(grid.height(), 40);
  EXPECT_EQ(grid.max_count(), 0.0);
  EXPECT_THROW(cm::OccupancyGrid(cg::Aabb{{0, 0}, {1, 1}}, -1.0),
               std::invalid_argument);
}

TEST(OccupancyGrid, AddPointIncrementsNeighborhood) {
  auto grid = make_grid();
  grid.add_point({10, 10}, 1.0);
  EXPECT_GT(grid.max_count(), 0.0);
  EXPECT_THROW((void)grid.count_at(-1, 0), std::out_of_range);
}

TEST(OccupancyGrid, PolylineCountsOncePerTrajectory) {
  auto grid = make_grid();
  // A polyline that lingers: doubles back over the same cells.
  const std::vector<Vec2> path = {{2, 10}, {18, 10}, {2, 10}};
  grid.add_polyline(path, 0.5);
  // Each cell on the line is hit at most once by this single trajectory.
  EXPECT_NEAR(grid.max_count(), 1.0, 1e-9);
}

TEST(OccupancyGrid, MultipleTrajectoriesAccumulate) {
  auto grid = make_grid();
  for (int k = 0; k < 3; ++k) {
    grid.add_polyline({{2, 10}, {18, 10}}, 0.5);
  }
  EXPECT_NEAR(grid.max_count(), 3.0, 1e-9);
}

TEST(OccupancyGrid, ProbabilitiesNormalized) {
  auto grid = make_grid();
  grid.add_polyline({{2, 10}, {18, 10}}, 0.5);
  grid.add_polyline({{2, 10}, {10, 10}}, 0.5);
  const auto probs = grid.probabilities();
  double max_p = 0.0;
  for (const double p : probs) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    max_p = std::max(max_p, p);
  }
  EXPECT_NEAR(max_p, 1.0, 1e-9);
}

TEST(OccupancyGrid, BinarizeAtThreshold) {
  auto grid = make_grid();
  grid.add_polyline({{2, 10}, {18, 10}}, 0.5);   // visited once
  grid.add_polyline({{2, 10}, {10, 10}}, 0.5);   // left half visited twice
  const auto strict = grid.binarize_at(0.9);     // only the double-visited half
  const auto lenient = grid.binarize_at(0.1);
  EXPECT_LT(strict.count_set(), lenient.count_set());
}

TEST(OccupancyGrid, BinarizeCapKeepsTwiceVisited) {
  auto grid = make_grid();
  // A busy junction visited 10x and a side corridor visited 2x.
  for (int k = 0; k < 10; ++k) grid.add_polyline({{2, 10}, {6, 10}}, 0.5);
  for (int k = 0; k < 2; ++k) grid.add_polyline({{14, 10}, {18, 10}}, 0.5);
  const auto binary = grid.binarize(2.0);
  // The side corridor must survive despite the popularity skew.
  const auto [c, r] = binary.cell_of({16.0, 10.0});
  EXPECT_TRUE(binary.at(c, r));
}

TEST(Skeleton, ReconstructsCorridorShape) {
  // Synthetic corridor: many straight passes with lateral spread.
  auto grid = make_grid();
  cc::Rng rng(141);
  for (int k = 0; k < 20; ++k) {
    const double y = 10.0 + rng.uniform(-0.8, 0.8);
    grid.add_polyline({{2, y}, {18, y}}, 1.0);
  }
  const auto skeleton = cm::reconstruct_skeleton(grid, {});
  EXPECT_GT(skeleton.raster.count_set(), 50u);
  EXPECT_FALSE(skeleton.boundary.empty());

  // Compare against the true corridor band.
  cg::BoolRaster truth(grid.extent(), grid.cell_size());
  truth.fill_polygon(cg::Polygon::rectangle({10, 10}, 16, 2.4));
  const auto metrics = cm::hallway_shape_metrics(skeleton, truth, {});
  EXPECT_GT(metrics.recall, 0.7);
  EXPECT_GT(metrics.precision, 0.5);
}

TEST(Skeleton, OutlierBlobsRemoved) {
  auto grid = make_grid();
  for (int k = 0; k < 6; ++k) grid.add_polyline({{2, 10}, {18, 10}}, 1.0);
  // One stray point far away (drifted junk trajectory).
  grid.add_point({2, 2}, 0.5);
  cm::SkeletonConfig config;
  config.bridge_max_gap_cells = 3;  // do not bridge 8 m
  const auto skeleton = cm::reconstruct_skeleton(grid, config);
  const auto [c, r] = skeleton.raster.cell_of({2.0, 2.0});
  EXPECT_FALSE(skeleton.raster.at(c, r));
}

TEST(Skeleton, EmptyGridYieldsEmptySkeleton) {
  const auto skeleton = cm::reconstruct_skeleton(make_grid(), {});
  EXPECT_EQ(skeleton.raster.count_set(), 0u);
}

TEST(Skeleton, GapRepairBridgesBrokenCorridor) {
  auto grid = make_grid();
  for (int k = 0; k < 4; ++k) {
    grid.add_polyline({{2, 10}, {8, 10}}, 1.0);
    grid.add_polyline({{11, 10}, {18, 10}}, 1.0);  // 3 m gap
  }
  cm::SkeletonConfig config;
  config.bridge_max_gap_cells = 10;
  const auto skeleton = cm::reconstruct_skeleton(grid, config);
  const auto comps = crowdmap::imaging::connected_components(skeleton.raster);
  EXPECT_EQ(comps.count, 1);
}

TEST(HallwayMetrics, RoomCutRemovesRoomCells) {
  auto grid = make_grid();
  for (int k = 0; k < 4; ++k) {
    grid.add_polyline({{2, 10}, {18, 10}}, 1.0);   // corridor
    grid.add_polyline({{10, 10}, {10, 15}}, 1.0);  // into a "room"
  }
  const auto skeleton = cm::reconstruct_skeleton(grid, {});
  cg::BoolRaster truth(grid.extent(), grid.cell_size());
  truth.fill_polygon(cg::Polygon::rectangle({10, 10}, 16, 2.4));
  const auto room = cg::Polygon::rectangle({10, 14}, 6, 5);
  const auto with_cut = cm::hallway_shape_metrics(skeleton, truth, {room});
  const auto without_cut = cm::hallway_shape_metrics(skeleton, truth, {});
  // Cutting the room path removes false-positive area -> precision rises.
  EXPECT_GE(with_cut.precision, without_cut.precision);
}

TEST(HallwayMetrics, GridMismatchThrows) {
  const auto skeleton = cm::reconstruct_skeleton(make_grid(), {});
  cg::BoolRaster other(cg::Aabb{{0, 0}, {5, 5}}, 0.5);
  EXPECT_THROW((void)cm::hallway_shape_metrics(skeleton, other, {}),
               std::invalid_argument);
}

TEST(Skeleton, MapsRealBuildingTruthfully) {
  // End-to-end sanity on ground-truth trajectories (no sensor noise): walk
  // the exact centerlines of Lab1 many times; the skeleton should score
  // high against the hallway raster.
  const auto spec = crowdmap::sim::lab1();
  cm::OccupancyGrid grid(spec.extent(), 0.5);
  cc::Rng rng(151);
  for (int k = 0; k < 30; ++k) {
    const double off = rng.uniform(-0.8, 0.8);
    grid.add_polyline({{0, off}, {40, off}}, 1.0);
    grid.add_polyline({{20 + off, 0}, {20 + off, 16}}, 1.0);
  }
  const auto skeleton = cm::reconstruct_skeleton(grid, {});
  const auto truth = spec.hallway_raster(0.5);
  const auto metrics = cm::hallway_shape_metrics(skeleton, truth, {});
  EXPECT_GT(metrics.f_measure, 0.7);
}

// Tests for the simulation substrate: buildings, scene rendering, routing,
// user simulation and campaign generation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "imaging/ncc.hpp"
#include "sensors/heading.hpp"
#include "sim/buildings.hpp"
#include "sim/campaign.hpp"
#include "sim/scene.hpp"
#include "sim/spec.hpp"
#include "sim/user_sim.hpp"

namespace cs = crowdmap::sim;
namespace cc = crowdmap::common;
using crowdmap::geometry::Vec2;

// ------------------------------------------------------------- buildings ---

TEST(Buildings, AllThreeAreWellFormed) {
  for (const auto& spec : {cs::lab1(), cs::lab2(), cs::gym()}) {
    EXPECT_FALSE(spec.hallways.empty());
    EXPECT_FALSE(spec.rooms.empty());
    EXPECT_GT(spec.hallway_area(), 10.0);
    for (const auto& room : spec.rooms) {
      EXPECT_GT(room.area(), 4.0);
      // The door sits on the room boundary.
      double min_edge_dist = 1e18;
      for (const auto& edge : room.footprint().edges()) {
        min_edge_dist = std::min(
            min_edge_dist, crowdmap::geometry::distance_point_segment(room.door, edge));
      }
      EXPECT_LT(min_edge_dist, 0.1) << spec.name << " room " << room.id;
      // The door opens onto a hallway: its outward neighborhood touches one.
      EXPECT_TRUE(spec.in_hallway(room.door + (room.door - room.center).normalized() * 0.5))
          << spec.name << " room " << room.id;
    }
  }
}

TEST(Buildings, RoomsDoNotOverlapEachOther) {
  for (const auto& spec : {cs::lab1(), cs::lab2(), cs::gym()}) {
    for (std::size_t i = 0; i < spec.rooms.size(); ++i) {
      for (std::size_t j = i + 1; j < spec.rooms.size(); ++j) {
        const auto inter = crowdmap::geometry::clip_convex(
            spec.rooms[i].footprint(), spec.rooms[j].footprint());
        EXPECT_LT(inter.area(), 0.01)
            << spec.name << " rooms " << spec.rooms[i].id << "," << spec.rooms[j].id;
      }
    }
  }
}

TEST(Buildings, RoomsDoNotIntrudeHallways) {
  for (const auto& spec : {cs::lab1(), cs::lab2(), cs::gym()}) {
    for (const auto& room : spec.rooms) {
      // Room center must be outside every hallway.
      EXPECT_FALSE(spec.in_hallway(room.center)) << spec.name << room.id;
    }
  }
}

TEST(Buildings, RandomBuildingRespectsRoomCount) {
  cc::Rng rng(71);
  const auto spec = cs::random_building(6, rng);
  EXPECT_EQ(spec.rooms.size(), 6u);
  EXPECT_THROW((void)cs::random_building(0, rng), std::invalid_argument);
}

TEST(Buildings, CorridorAxisAlignedOnly) {
  EXPECT_THROW((void)cs::corridor({0, 0}, {3, 4}, 2.0), std::invalid_argument);
  const auto h = cs::corridor({0, 0}, {10, 0}, 2.0);
  EXPECT_NEAR(h.area(), 20.0, 1e-9);
}

TEST(FloorPlanSpec, ExtentCoversEverything) {
  const auto spec = cs::lab1();
  const auto box = spec.extent(2.0);
  for (const auto& room : spec.rooms) {
    EXPECT_TRUE(box.contains(room.center));
  }
  EXPECT_THROW((void)cs::FloorPlanSpec{}.extent(), std::logic_error);
}

TEST(FloorPlanSpec, HallwayRasterMatchesArea) {
  const auto spec = cs::lab2();
  const auto raster = spec.hallway_raster(0.25);
  EXPECT_NEAR(raster.set_area(), spec.hallway_area(0.25), 1.0);
}

TEST(FloorPlanSpec, RoomLookup) {
  const auto spec = cs::lab1();
  EXPECT_EQ(spec.room_by_id(spec.rooms[2].id).id, spec.rooms[2].id);
  EXPECT_THROW((void)spec.room_by_id(99999), std::out_of_range);
}

// ---------------------------------------------------------------- scene ---

TEST(ValueNoise, RangeAndDeterminism) {
  for (double x = -3; x < 3; x += 0.37) {
    for (double y = -3; y < 3; y += 0.41) {
      const double v = cs::value_noise(x, y, 77);
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
      EXPECT_EQ(v, cs::value_noise(x, y, 77));
    }
  }
  EXPECT_NE(cs::value_noise(0.5, 0.5, 1), cs::value_noise(0.5, 0.5, 2));
}

TEST(ValueNoise, Continuity) {
  const double eps = 1e-4;
  for (double x = 0.1; x < 2.0; x += 0.3) {
    EXPECT_NEAR(cs::value_noise(x, 0.7, 5), cs::value_noise(x + eps, 0.7, 5), 0.01);
  }
}

TEST(Scene, RaycastHitsRoomWall) {
  const auto spec = cs::lab1();
  const auto scene = cs::Scene::from_spec(spec, 81);
  const auto& room = spec.rooms[0];
  // Ray from the room center along +x must hit within the room's half-width
  // (allowing for wall clutter).
  const auto hit = scene.raycast(room.center, {1, 0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_LE(hit->distance, room.width / 2 + 0.1);
}

TEST(Scene, RaycastEscapesOutside) {
  const auto spec = cs::lab1();
  const auto scene = cs::Scene::from_spec(spec, 82);
  const auto hit = scene.raycast({-100, -100}, {-1, 0});
  EXPECT_FALSE(hit.has_value());
}

TEST(Scene, WallsIncludeRoomsAndHallways) {
  const auto spec = cs::lab1();
  const auto scene = cs::Scene::from_spec(spec, 83);
  // At least 4 per room + 4 per hallway.
  EXPECT_GE(scene.walls().size(), spec.rooms.size() * 4 + spec.hallways.size() * 4);
}

TEST(Scene, TextureDeterministicAndBounded) {
  const auto scene = cs::Scene::from_spec(cs::lab1(), 84);
  const auto& wall = scene.walls().front();
  for (double s = 0.1; s < wall.seg.length(); s += 0.3) {
    for (double v = 0.05; v < 1.0; v += 0.13) {
      const double t = scene.wall_texture(wall, s, v);
      EXPECT_GE(t, 0.0);
      EXPECT_LE(t, 1.0);
      EXPECT_EQ(t, scene.wall_texture(wall, s, v));
    }
  }
}

TEST(Scene, RenderProducesStructuredImage) {
  const auto spec = cs::lab1();
  const auto scene = cs::Scene::from_spec(spec, 85);
  cs::CameraIntrinsics intr;
  cc::Rng rng(1);
  const auto img = scene.render({spec.rooms[0].center, 0.0}, intr,
                                cs::Lighting::day(), rng);
  EXPECT_EQ(img.width(), intr.width);
  EXPECT_EQ(img.height(), intr.height);
  const auto gray = img.to_gray();
  EXPECT_GT(gray.stddev(), 0.05f);  // walls/floor/ceiling structure
  EXPECT_GT(gray.mean(), 0.2f);     // auto-exposure keeps it visible
}

TEST(Scene, NightFramesAreNoisierNotDarker) {
  const auto spec = cs::lab1();
  const auto scene = cs::Scene::from_spec(spec, 86);
  cs::CameraIntrinsics intr;
  cc::Rng rng1(2);
  cc::Rng rng2(2);
  const auto day = scene.render({spec.rooms[0].center, 0.5}, intr,
                                cs::Lighting::day(), rng1).to_gray();
  const auto night = scene.render({spec.rooms[0].center, 0.5}, intr,
                                  cs::Lighting::night(), rng2).to_gray();
  // Auto-exposure: means comparable.
  EXPECT_NEAR(day.mean(), night.mean(), 0.15);
}

TEST(Scene, NearbyPosesLookSimilarFarPosesDiffer) {
  const auto spec = cs::lab1();
  const auto scene = cs::Scene::from_spec(spec, 87);
  cs::CameraIntrinsics intr;
  cc::Rng rng(3);
  const Vec2 hall_point{10, 0};
  const auto base = scene.render({hall_point, 0.0}, intr, cs::Lighting::day(), rng)
                        .to_gray();
  const auto near_img =
      scene.render({hall_point + Vec2{0.1, 0.0}, 0.02}, intr, cs::Lighting::day(), rng)
          .to_gray();
  const auto far_img =
      scene.render({hall_point + Vec2{12.0, 0.0}, 0.0}, intr, cs::Lighting::day(), rng)
          .to_gray();
  const double near_sim = crowdmap::imaging::normalized_cross_correlation(base, near_img);
  const double far_sim = crowdmap::imaging::normalized_cross_correlation(base, far_img);
  EXPECT_GT(near_sim, far_sim);
  EXPECT_GT(near_sim, 0.7);
}

// --------------------------------------------------------------- router ---

TEST(Router, SnapOntoCenterline) {
  const auto spec = cs::lab1();
  const cs::HallwayRouter router(spec);
  const Vec2 snapped = router.snap({10.0, 0.9});
  EXPECT_NEAR(snapped.y, 0.0, 1e-9);
  EXPECT_NEAR(snapped.x, 10.0, 1e-9);
}

TEST(Router, RouteAlongSingleCorridor) {
  const auto spec = cs::lab1();
  const cs::HallwayRouter router(spec);
  const auto route = router.route({2, 0}, {30, 0});
  ASSERT_GE(route.size(), 2u);
  EXPECT_NEAR(route.front().x, 2.0, 0.1);
  EXPECT_NEAR(route.back().x, 30.0, 0.1);
  double len = 0;
  for (std::size_t i = 1; i < route.size(); ++i) {
    len += route[i].distance_to(route[i - 1]);
  }
  EXPECT_NEAR(len, 28.0, 0.5);  // no detours
}

TEST(Router, RouteAroundCorner) {
  const auto spec = cs::lab2();  // L-shape
  const cs::HallwayRouter router(spec);
  const auto route = router.route({2, 0}, {30, 15});
  ASSERT_GE(route.size(), 3u);  // must pass the corner at (30, 0)
  double len = 0;
  for (std::size_t i = 1; i < route.size(); ++i) {
    len += route[i].distance_to(route[i - 1]);
  }
  EXPECT_NEAR(len, 28.0 + 15.0, 1.0);
}

TEST(Router, RandomPointOnNetwork) {
  const auto spec = cs::gym();
  const cs::HallwayRouter router(spec);
  cc::Rng rng(91);
  for (int i = 0; i < 50; ++i) {
    const Vec2 p = router.random_point(rng);
    EXPECT_LT(p.distance_to(router.snap(p)), 1e-6);
  }
}

// ------------------------------------------------------------- user sim ---

namespace {

cs::UserSimulator make_user(const cs::Scene& scene, const cs::FloorPlanSpec& spec,
                            std::uint64_t seed = 95) {
  cs::SimOptions options;
  options.fps = 3.0;
  return cs::UserSimulator(scene, spec, options, cc::Rng(seed));
}

}  // namespace

TEST(UserSim, RoomVisitProducesFramesAndImu) {
  const auto spec = cs::lab1();
  const auto scene = cs::Scene::from_spec(spec, 95);
  auto user = make_user(scene, spec);
  const auto video = user.room_visit(spec.rooms[0], 8.0, cs::Lighting::day());
  EXPECT_GT(video.frames.size(), 20u);
  EXPECT_GT(video.imu.samples.size(), 1000u);
  EXPECT_EQ(video.true_room_id, spec.rooms[0].id);
  EXPECT_FALSE(video.junk);
  // Frame times strictly increasing and within IMU span.
  for (std::size_t i = 1; i < video.frames.size(); ++i) {
    EXPECT_GT(video.frames[i].t, video.frames[i - 1].t);
  }
}

TEST(UserSim, SrsSpinsApproximatelyFullCircle) {
  const auto spec = cs::lab1();
  const auto scene = cs::Scene::from_spec(spec, 96);
  auto user = make_user(scene, spec);
  const auto video = user.room_visit(spec.rooms[1], 6.0, cs::Lighting::day());
  // Gyro integration over the SRS segment recovers >= 2*pi total rotation.
  const double rotation = crowdmap::sensors::integrated_rotation(video.imu);
  EXPECT_GT(std::abs(rotation), 1.8 * cc::kPi);
}

TEST(UserSim, HallwayWalkStaysInHallwayNeighborhood) {
  const auto spec = cs::lab1();
  const auto scene = cs::Scene::from_spec(spec, 97);
  auto user = make_user(scene, spec);
  const auto video = user.hallway_walk_between({2, 0}, {30, 0}, cs::Lighting::day());
  EXPECT_EQ(video.true_room_id, -1);
  for (const auto& frame : video.frames) {
    // Lateral spread keeps users within ~1 m of the corridor.
    EXPECT_LT(std::abs(frame.true_pose.position.y), 1.3);
  }
}

TEST(UserSim, JunkVideoIsMarked) {
  const auto spec = cs::lab1();
  const auto scene = cs::Scene::from_spec(spec, 98);
  auto user = make_user(scene, spec);
  const auto junk = user.junk_video(cs::Lighting::day());
  EXPECT_TRUE(junk.junk);
}

TEST(UserSim, RoomWanderStaysInsideRoom) {
  const auto spec = cs::lab1();
  const auto scene = cs::Scene::from_spec(spec, 99);
  auto user = make_user(scene, spec);
  const auto video = user.room_wander(spec.rooms[0], cs::Lighting::day());
  EXPECT_EQ(video.true_room_id, spec.rooms[0].id);
  const auto footprint = spec.rooms[0].footprint();
  for (const auto& frame : video.frames) {
    EXPECT_TRUE(footprint.contains(frame.true_pose.position));
  }
}

// --------------------------------------------------------------- campaign ---

TEST(Campaign, GeneratesExpectedVideoCount) {
  cs::CampaignOptions options;
  options.room_videos_per_room = 1;
  options.hallway_walks = 5;
  options.sim.fps = 2.0;
  options.sim.camera.width = 60;
  options.sim.camera.height = 80;
  const auto spec = cs::lab1();
  const auto campaign = cs::generate_campaign(spec, options, 101);
  EXPECT_EQ(campaign.videos.size(), spec.rooms.size() + 5);
  EXPECT_GT(campaign.frame_count(), 100u);
}

TEST(Campaign, StreamingMatchesBatch) {
  cs::CampaignOptions options;
  options.room_videos_per_room = 0;
  options.hallway_walks = 3;
  options.sim.fps = 2.0;
  options.sim.camera.width = 60;
  options.sim.camera.height = 80;
  const auto spec = cs::lab2();
  const auto batch = cs::generate_campaign(spec, options, 103);
  std::vector<std::size_t> streamed_sizes;
  cs::generate_campaign_streaming(spec, options, 103,
                                  [&](cs::SensorRichVideo&& v) {
                                    streamed_sizes.push_back(v.frames.size());
                                  });
  ASSERT_EQ(streamed_sizes.size(), batch.videos.size());
  for (std::size_t i = 0; i < streamed_sizes.size(); ++i) {
    EXPECT_EQ(streamed_sizes[i], batch.videos[i].frames.size());
  }
}

TEST(Campaign, AdversarialDamageIsScopedAndDeterministic) {
  cs::CampaignOptions options;
  options.room_videos_per_room = 0;
  options.hallway_walks = 6;
  options.junk_fraction = 0.0;
  options.sim.fps = 2.0;
  options.sim.camera.width = 60;
  options.sim.camera.height = 80;
  const auto spec = cs::lab1();
  const auto clean = cs::generate_campaign(spec, options, 109);

  cs::CampaignOptions damaged_options = options;
  damaged_options.adversarial.truncate_fraction = 1.0;  // every video cut
  const auto damaged = cs::generate_campaign(spec, damaged_options, 109);
  ASSERT_EQ(damaged.videos.size(), clean.videos.size());
  for (std::size_t i = 0; i < damaged.videos.size(); ++i) {
    const auto& before = clean.videos[i];
    const auto& after = damaged.videos[i];
    // Truncation only removes the tail — the surviving head is untouched
    // (the adversarial draws come from a non-advancing per-video stream).
    EXPECT_LT(after.frames.size(), before.frames.size());
    EXPECT_GE(after.frames.size(),
              damaged_options.adversarial.min_keep_frames);
    EXPECT_EQ(after.frames.front().t, before.frames.front().t);
    // The IMU tail is trimmed to the surviving capture.
    ASSERT_FALSE(after.imu.samples.empty());
    EXPECT_LE(after.imu.samples.back().t, after.frames.back().t);
  }

  // Same seed + same adversarial plan -> identical damage.
  const auto again = cs::generate_campaign(spec, damaged_options, 109);
  for (std::size_t i = 0; i < damaged.videos.size(); ++i) {
    EXPECT_EQ(again.videos[i].frames.size(), damaged.videos[i].frames.size());
    EXPECT_EQ(again.videos[i].imu.samples.size(),
              damaged.videos[i].imu.samples.size());
  }
}

TEST(Campaign, DeterministicInSeed) {
  cs::CampaignOptions options;
  options.room_videos_per_room = 0;
  options.hallway_walks = 2;
  options.sim.fps = 2.0;
  options.sim.camera.width = 60;
  options.sim.camera.height = 80;
  const auto spec = cs::lab1();
  const auto a = cs::generate_campaign(spec, options, 107);
  const auto b = cs::generate_campaign(spec, options, 107);
  ASSERT_EQ(a.videos.size(), b.videos.size());
  for (std::size_t i = 0; i < a.videos.size(); ++i) {
    ASSERT_EQ(a.videos[i].imu.samples.size(), b.videos[i].imu.samples.size());
    EXPECT_EQ(a.videos[i].imu.samples.back().compass,
              b.videos[i].imu.samples.back().compass);
  }
}

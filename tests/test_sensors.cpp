// Tests for the inertial stack: step detection, heading filtering, dead
// reckoning, noise models.
#include <gtest/gtest.h>

#include <cmath>

#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "sensors/dead_reckoning.hpp"
#include "sensors/heading.hpp"
#include "sensors/imu.hpp"
#include "sensors/noise.hpp"
#include "sensors/step_detector.hpp"

namespace cs = crowdmap::sensors;
namespace cc = crowdmap::common;

namespace {

/// Synthesizes a clean walking IMU stream: constant heading, sinusoidal gait.
cs::ImuStream walking_stream(double duration, double step_freq, double heading,
                             double amplitude = 3.0, double rate = 100.0) {
  cs::ImuStream stream;
  stream.sample_rate_hz = rate;
  for (double t = 0.0; t < duration; t += 1.0 / rate) {
    cs::ImuSample s;
    s.t = t;
    s.accel_magnitude = 9.81 + amplitude * std::sin(2.0 * cc::kPi * step_freq * t);
    s.gyro_z = 0.0;
    s.compass = heading;
    stream.samples.push_back(s);
  }
  return stream;
}

}  // namespace

TEST(StepDetector, CountsGaitCycles) {
  // 10 seconds at 2 steps/s -> ~20 peaks.
  const auto stream = walking_stream(10.0, 2.0, 0.0);
  const auto steps = cs::detect_steps(stream);
  EXPECT_NEAR(static_cast<double>(steps.count()), 20.0, 2.0);
}

TEST(StepDetector, SilentWhenStationary) {
  cs::ImuStream stream;
  for (double t = 0.0; t < 5.0; t += 0.01) {
    stream.samples.push_back({t, 9.81, 0.0, 0.0});
  }
  EXPECT_EQ(cs::detect_steps(stream).count(), 0u);
}

TEST(StepDetector, RespectsMinInterval) {
  // Very fast oscillation cannot produce steps faster than min interval.
  const auto stream = walking_stream(5.0, 8.0, 0.0);
  const auto steps = cs::detect_steps(stream);
  for (std::size_t i = 1; i < steps.times.size(); ++i) {
    EXPECT_GE(steps.times[i] - steps.times[i - 1], 0.3 - 1e-9);
  }
}

TEST(StepDetector, EmptyStream) {
  EXPECT_EQ(cs::detect_steps(cs::ImuStream{}).count(), 0u);
}

TEST(StrideLength, MonotoneInAmplitude) {
  const double small = cs::stride_length_from_amplitude(2.0);
  const double large = cs::stride_length_from_amplitude(8.0);
  EXPECT_GT(large, small);
  EXPECT_GT(small, 0.0);
  EXPECT_EQ(cs::stride_length_from_amplitude(-1.0), 0.0);
}

TEST(HeadingFilter, IntegratesGyro) {
  cs::ImuStream stream;
  // Constant yaw rate of 0.5 rad/s for 2 s -> 1 rad.
  for (double t = 0.0; t <= 2.0; t += 0.01) {
    stream.samples.push_back({t, 9.81, 0.5, 0.5 * t});
  }
  cs::HeadingFilterParams params;
  params.compass_gain = 0.0;  // pure gyro
  params.use_compass_initial = false;
  const auto headings = cs::estimate_headings(stream, params);
  EXPECT_NEAR(headings.back(), 1.0, 0.02);
}

TEST(HeadingFilter, CompassBoundsDrift) {
  // Biased gyro (0.05 rad/s error) with truthful compass: the filter should
  // stay near the compass while pure integration drifts.
  cs::ImuStream stream;
  for (double t = 0.0; t <= 60.0; t += 0.01) {
    stream.samples.push_back({t, 9.81, 0.05, 0.0});  // true heading 0
  }
  cs::HeadingFilterParams fused;
  fused.compass_gain = 0.05;
  const auto fused_headings = cs::estimate_headings(stream, fused);
  cs::HeadingFilterParams gyro_only;
  gyro_only.compass_gain = 0.0;
  const auto gyro_headings = cs::estimate_headings(stream, gyro_only);
  EXPECT_LT(std::abs(fused_headings.back()), 1.1);
  EXPECT_GT(std::abs(gyro_headings.back()), 2.0);
}

TEST(HeadingFilter, SeedsFromCompass) {
  cs::ImuStream stream;
  stream.samples.push_back({0.0, 9.81, 0.0, 1.2});
  const auto headings = cs::estimate_headings(stream);
  ASSERT_EQ(headings.size(), 1u);
  EXPECT_NEAR(headings[0], 1.2, 1e-9);
}

TEST(IntegratedRotation, FullSpin) {
  cs::ImuStream stream;
  // 2*pi over 10 s.
  const double rate = 2.0 * cc::kPi / 10.0;
  for (double t = 0.0; t <= 10.0; t += 0.01) {
    stream.samples.push_back({t, 9.81, rate, 0.0});
  }
  EXPECT_NEAR(cs::integrated_rotation(stream), 2.0 * cc::kPi, 0.05);
}

TEST(DeadReckoning, StraightWalkRecoversDistanceAndDirection) {
  const double heading = 0.7;
  auto stream = walking_stream(10.0, 1.8, heading, 3.5);
  const auto track = cs::dead_reckon(stream);
  ASSERT_GT(track.size(), 10u);
  const auto end = track.back().position;
  // ~18 steps at the Weinberg stride for amplitude 7 => roughly 10-14 m.
  const double dist = end.norm();
  EXPECT_GT(dist, 6.0);
  EXPECT_LT(dist, 18.0);
  EXPECT_NEAR(end.angle(), heading, 0.1);
}

TEST(DeadReckoning, EmptyStream) {
  EXPECT_TRUE(cs::dead_reckon(cs::ImuStream{}).empty());
}

TEST(DeadReckoning, StationaryStaysAtOrigin) {
  cs::ImuStream stream;
  for (double t = 0.0; t < 3.0; t += 0.01) {
    stream.samples.push_back({t, 9.81, 0.0, 0.0});
  }
  const auto track = cs::dead_reckon(stream);
  ASSERT_GE(track.size(), 2u);
  EXPECT_LT(track.back().position.norm(), 1e-9);
  EXPECT_LT(cs::track_length(track), 1e-9);
}

TEST(DeadReckoning, TrackTimesMonotone) {
  const auto track = cs::dead_reckon(walking_stream(8.0, 1.8, 0.0, 3.5));
  for (std::size_t i = 1; i < track.size(); ++i) {
    EXPECT_GE(track[i].t, track[i - 1].t);
  }
}

TEST(NoiseModel, WhiteNoiseStatistics) {
  cs::NoiseModel model(0.1, 0.0, cc::Rng(61));
  std::vector<double> errors;
  for (int i = 0; i < 5000; ++i) {
    errors.push_back(model.corrupt(5.0, 0.01) - 5.0);
  }
  EXPECT_NEAR(cc::mean(errors), 0.0, 0.01);
  EXPECT_NEAR(cc::stddev(errors), 0.1, 0.01);
}

TEST(NoiseModel, BiasRandomWalkGrows) {
  cs::NoiseModel model(0.0, 0.05, cc::Rng(62));
  for (int i = 0; i < 10000; ++i) (void)model.corrupt(0.0, 0.01);
  // After 100 s of random walk at 0.05/sqrt(s), |bias| is very likely > 0.
  EXPECT_NE(model.bias(), 0.0);
}

TEST(ImuStream, Duration) {
  cs::ImuStream stream;
  EXPECT_EQ(stream.duration(), 0.0);
  stream.samples.push_back({1.0, 9.81, 0, 0});
  stream.samples.push_back({4.5, 9.81, 0, 0});
  EXPECT_NEAR(stream.duration(), 3.5, 1e-12);
}

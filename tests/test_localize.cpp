// Tests for the particle-filter localizer on reconstructed floor plans.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "localize/particle_filter.hpp"

namespace cl = crowdmap::localize;
namespace cg = crowdmap::geometry;
namespace cc = crowdmap::common;
using cg::Vec2;

namespace {

/// L-shaped corridor map: along +x then up +y.
cg::BoolRaster l_corridor() {
  cg::BoolRaster map(cg::Aabb{{0, 0}, {30, 20}}, 0.5);
  map.fill_polygon(cg::Polygon::rectangle({10, 1.2}, 20, 2.4));
  map.fill_polygon(cg::Polygon::rectangle({18.8, 8}, 2.4, 16));
  return map;
}

}  // namespace

TEST(WalkableSpace, UnionOfHallwayAndRooms) {
  crowdmap::floorplan::FloorPlan plan;
  plan.hallway = cg::BoolRaster(cg::Aabb{{0, 0}, {20, 20}}, 0.5);
  plan.hallway.fill_polygon(cg::Polygon::rectangle({10, 5}, 16, 2.4));
  crowdmap::floorplan::PlacedRoom room;
  room.center = {10, 10};
  room.width = 4;
  room.depth = 4;
  plan.rooms.push_back(room);
  const auto walkable = cl::walkable_space(plan);
  EXPECT_GT(walkable.count_set(), plan.hallway.count_set());
  const auto [c, r] = walkable.cell_of({10.0, 10.0});
  EXPECT_TRUE(walkable.at(c, r));
}

TEST(MapLocalizer, ThrowsOnEmptyMap) {
  cg::BoolRaster empty(cg::Aabb{{0, 0}, {5, 5}}, 0.5);
  EXPECT_THROW(cl::MapLocalizer(empty, {}, cc::Rng(1)), std::invalid_argument);
}

TEST(MapLocalizer, KnownStartTracksWalk) {
  cl::MapLocalizer localizer(l_corridor(), {}, cc::Rng(3));
  localizer.initialize_at({2, 1.2}, 0.5);
  // Walk 10 m east in 0.7 m steps.
  Vec2 truth{2, 1.2};
  for (int i = 0; i < 14; ++i) {
    localizer.on_step(0.7, 0.0);
    truth += {0.7, 0.0};
  }
  const auto belief = localizer.estimate();
  EXPECT_LT(belief.position.distance_to(truth), 1.0);
  EXPECT_LT(belief.spread, 1.5);
}

TEST(MapLocalizer, UniformBeliefConvergesAfterTurn) {
  // An unknown start on an L corridor is ambiguous along the straight leg;
  // turning the corner collapses the belief.
  cl::LocalizerConfig config;
  config.particle_count = 3000;
  cl::MapLocalizer localizer(l_corridor(), config, cc::Rng(5));
  localizer.initialize_uniform();

  Vec2 truth{4, 1.2};
  // East along the corridor.
  for (int i = 0; i < 18; ++i) {
    localizer.on_step(0.7, 0.0);
    truth += {0.7, 0.0};
  }
  const double spread_before = localizer.estimate().spread;
  // Turn north and climb the vertical leg.
  for (int i = 0; i < 16; ++i) {
    localizer.on_step(0.7, 1.5707963);
    truth += {0.0, 0.7};
  }
  const auto belief = localizer.estimate();
  EXPECT_LT(belief.spread, spread_before);
  EXPECT_LT(belief.position.distance_to(truth), 2.5);
}

TEST(MapLocalizer, WallsKillImpossibleParticles) {
  cl::MapLocalizer localizer(l_corridor(), {}, cc::Rng(7));
  localizer.initialize_at({10, 1.2}, 0.2);
  // March due north: corridor is only 2.4 m wide, so after a few steps every
  // original particle has hit the wall and the filter must recover.
  for (int i = 0; i < 12; ++i) localizer.on_step(0.7, 1.5707963);
  const auto belief = localizer.estimate();
  // Belief survives (auto-recovery), and it lives in walkable space.
  EXPECT_GT(belief.in_map_fraction, 0.0);
}

TEST(MapLocalizer, StepBeforeInitializationSelfInitializes) {
  cl::MapLocalizer localizer(l_corridor(), {}, cc::Rng(9));
  localizer.on_step(0.7, 0.0);  // must not crash
  EXPECT_GT(localizer.particle_count(), 0u);
}

TEST(MapLocalizer, EstimateOnEmptyBelief) {
  cl::MapLocalizer localizer(l_corridor(), {}, cc::Rng(11));
  const auto belief = localizer.estimate();
  EXPECT_EQ(belief.spread, 0.0);
}

// Locks in the invariant the lint rules and thread-safety annotations exist
// to protect: a seeded pipeline is a pure function of (spec, seed, config).
// Two independent in-process runs — fresh pipeline, fresh pool, fresh caches
// — must produce byte-identical serialized FloorPlans, and the thread count
// must not leak into the bytes either.
#include <gtest/gtest.h>

#include <vector>

#include "api/crowdmap.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "floorplan/serialize.hpp"
#include "sim/buildings.hpp"
#include "sim/campaign.hpp"

namespace ap = crowdmap::api::v1;
namespace cc = crowdmap::common;
namespace co = crowdmap::core;
namespace cs = crowdmap::sim;

namespace {

/// One complete seeded run: build the campaign, ingest, reconstruct, and
/// return the serialized floor plan. Everything (building layout, user
/// behaviour, sensor noise, hypothesis sampling) derives from `seed`.
crowdmap::io::Bytes serialized_run(std::uint64_t seed, std::size_t threads) {
  cc::Rng rng(seed);
  const auto spec = cs::random_building(3, rng);
  cs::CampaignOptions options;
  options.users = 3;
  options.room_videos_per_room = 1;
  options.hallway_walks = 6;
  options.junk_fraction = 0.0;
  options.night_fraction = 0.2;
  options.sim.fps = 3.0;

  co::PipelineConfig config = co::PipelineConfig::fast_profile();
  config.parallel.threads = threads;
  // The bare stage executor is the unit under test here.
  // crowdmap-lint: allow(pipeline-construction)
  co::CrowdMapPipeline pipeline(config);
  cs::generate_campaign_streaming(
      spec, options, seed,
      [&pipeline](cs::SensorRichVideo&& video) { pipeline.ingest(video); });
  return crowdmap::floorplan::encode_floorplan(pipeline.run().plan);
}

std::vector<cs::SensorRichVideo> campaign_videos(std::uint64_t seed) {
  cc::Rng rng(seed);
  const auto spec = cs::random_building(2, rng);
  cs::CampaignOptions options;
  options.users = 2;
  options.room_videos_per_room = 1;
  options.hallway_walks = 4;
  options.junk_fraction = 0.0;
  options.sim.fps = 3.0;
  std::vector<cs::SensorRichVideo> out;
  cs::generate_campaign_streaming(spec, options, seed,
                                  [&out](cs::SensorRichVideo&& video) {
                                    out.push_back(std::move(video));
                                  });
  return out;
}

ap::Client client_with_threads(std::size_t threads) {
  ap::ClientOptions options;
  options.config = co::PipelineConfig::fast_profile();
  options.config.parallel.threads = threads;
  return ap::Client(std::move(options));
}

/// Cold rebuild: every upload submitted, one build, no cache history.
std::string cold_plan(const std::vector<cs::SensorRichVideo>& videos,
                      std::size_t threads) {
  auto client = client_with_threads(threads);
  for (const auto& video : videos) {
    if (!client.submit_video(video).accepted) return {};
  }
  const auto response = client.build_plan(
      {videos.front().building, videos.front().floor, std::nullopt});
  const auto bytes = crowdmap::floorplan::encode_floorplan(response.result.plan);
  return std::string(bytes.begin(), bytes.end());
}

/// Warm refresh: N-1 uploads built first, then the last upload lands and the
/// planner recomputes only invalidated artifacts.
std::string incremental_plan(const std::vector<cs::SensorRichVideo>& videos,
                             std::size_t threads) {
  auto client = client_with_threads(threads);
  for (std::size_t v = 0; v + 1 < videos.size(); ++v) {
    if (!client.submit_video(videos[v]).accepted) return {};
  }
  const std::string building = videos.front().building;
  const int floor = videos.front().floor;
  (void)client.build_plan({building, floor, std::nullopt});
  if (!client.submit_video(videos.back()).accepted) return {};
  const auto response = client.build_plan({building, floor, std::nullopt});
  const auto bytes = crowdmap::floorplan::encode_floorplan(response.result.plan);
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace

TEST(Determinism, RepeatedRunsSerializeIdentically) {
  const auto first = serialized_run(271, 2);
  const auto second = serialized_run(271, 2);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);  // byte-for-byte, not approximately
}

TEST(Determinism, ThreadCountDoesNotLeakIntoTheBytes) {
  const auto serial = serialized_run(277, 1);
  const auto pooled = serialized_run(277, 3);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, pooled);
}

TEST(Determinism, DifferentSeedsProduceDifferentPlans) {
  // Guards against the degenerate pass where serialization ignores its input.
  EXPECT_NE(serialized_run(271, 2), serialized_run(911, 2));
}

TEST(Determinism, IncrementalRefreshMatchesColdAtAnyThreadCount) {
  // The artifact cache must be invisible in the output: a warm refresh after
  // one more upload returns the same bytes as a cold rebuild of the full
  // corpus, at every thread count, for multiple seeds.
  for (const std::uint64_t seed : {631u, 912u}) {
    const auto videos = campaign_videos(seed);
    ASSERT_GE(videos.size(), 2u) << "seed " << seed;

    const std::string reference = cold_plan(videos, 1);
    ASSERT_FALSE(reference.empty()) << "seed " << seed;
    EXPECT_EQ(cold_plan(videos, 3), reference) << "seed " << seed;
    EXPECT_EQ(incremental_plan(videos, 1), reference) << "seed " << seed;
    EXPECT_EQ(incremental_plan(videos, 3), reference) << "seed " << seed;
  }
}

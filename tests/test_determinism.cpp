// Locks in the invariant the lint rules and thread-safety annotations exist
// to protect: a seeded pipeline is a pure function of (spec, seed, config).
// Two independent in-process runs — fresh pipeline, fresh pool, fresh caches
// — must produce byte-identical serialized FloorPlans, and the thread count
// must not leak into the bytes either.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "io/serialize.hpp"
#include "sim/buildings.hpp"
#include "sim/campaign.hpp"

namespace cc = crowdmap::common;
namespace co = crowdmap::core;
namespace cs = crowdmap::sim;

namespace {

/// One complete seeded run: build the campaign, ingest, reconstruct, and
/// return the serialized floor plan. Everything (building layout, user
/// behaviour, sensor noise, hypothesis sampling) derives from `seed`.
crowdmap::io::Bytes serialized_run(std::uint64_t seed, std::size_t threads) {
  cc::Rng rng(seed);
  const auto spec = cs::random_building(3, rng);
  cs::CampaignOptions options;
  options.users = 3;
  options.room_videos_per_room = 1;
  options.hallway_walks = 6;
  options.junk_fraction = 0.0;
  options.night_fraction = 0.2;
  options.sim.fps = 3.0;

  co::PipelineConfig config = co::PipelineConfig::fast_profile();
  config.parallel.threads = threads;
  co::CrowdMapPipeline pipeline(config);
  cs::generate_campaign_streaming(
      spec, options, seed,
      [&pipeline](cs::SensorRichVideo&& video) { pipeline.ingest(video); });
  return crowdmap::io::encode_floorplan(pipeline.run().plan);
}

}  // namespace

TEST(Determinism, RepeatedRunsSerializeIdentically) {
  const auto first = serialized_run(271, 2);
  const auto second = serialized_run(271, 2);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);  // byte-for-byte, not approximately
}

TEST(Determinism, ThreadCountDoesNotLeakIntoTheBytes) {
  const auto serial = serialized_run(277, 1);
  const auto pooled = serialized_run(277, 3);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, pooled);
}

TEST(Determinism, DifferentSeedsProduceDifferentPlans) {
  // Guards against the degenerate pass where serialization ignores its input.
  EXPECT_NE(serialized_run(271, 2), serialized_run(911, 2));
}

// Gate-library suite (tools/gate): BENCH line and tolerance-manifest
// parsing, the --check baseline self-validation, and the fresh-run gate
// (regressions, vanished series, new series notes) — all on in-memory
// lines, mirroring how tests/test_lint.cpp drives the lint engine.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gate/gate.hpp"

namespace gate = crowdmap::gate;

namespace {

constexpr const char* kLine =
    R"(BENCH_obs.json {"name":"record_enabled_ns","samples":5,"mean":38.2,)"
    R"("stddev":0.5,"min":37.7,"max":39.0,"median":38.1,"p90":38.7,"p99":39.0})";

TEST(GateParse, ParsesABenchLine) {
  gate::GateReport report;
  const auto series = gate::parse_bench_lines("mem", kLine, report);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].bench, "obs");
  EXPECT_EQ(series[0].name, "record_enabled_ns");
  EXPECT_EQ(series[0].samples, 5u);
  EXPECT_DOUBLE_EQ(series[0].mean, 38.2);
  EXPECT_DOUBLE_EQ(series[0].p99, 39.0);
}

TEST(GateParse, FindsBenchLinesInsideCiLogs) {
  gate::GateReport report;
  const std::string log = std::string("[12:30:01] some runner banner\n") +
                          "[12:30:02] " + kLine + "\nunrelated trailer\n";
  const auto series = gate::parse_bench_lines("ci.log", log, report);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].bench, "obs");
}

TEST(GateParse, MalformedBenchLineIsAnError) {
  gate::GateReport report;
  const auto series = gate::parse_bench_lines(
      "mem", "BENCH_obs.json {\"no_name_field\":1}", report);
  EXPECT_TRUE(series.empty());
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.errors.empty());
}

TEST(GateParse, ParsesToleranceManifest) {
  gate::GateReport report;
  const auto tolerances = gate::parse_tolerances(
      "TOLERANCES.conf",
      "# comment\n\n"
      "obs:record_enabled_ns max 50\n"
      "incremental:incremental_speedup_ratio min 5.0\n",
      report);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(tolerances.size(), 2u);
  EXPECT_EQ(tolerances[0].bench, "obs");
  EXPECT_EQ(tolerances[0].series, "record_enabled_ns");
  EXPECT_EQ(tolerances[0].bound, gate::Bound::kMax);
  EXPECT_DOUBLE_EQ(tolerances[0].value, 50.0);
  EXPECT_EQ(tolerances[1].bound, gate::Bound::kMin);
}

TEST(GateParse, MalformedToleranceRowsAreErrors) {
  gate::GateReport report;
  (void)gate::parse_tolerances("t", "obs:x sideways 5\n", report);
  EXPECT_FALSE(report.ok());
  gate::GateReport no_colon;
  (void)gate::parse_tolerances("t", "obsx min 5\n", no_colon);
  EXPECT_FALSE(no_colon.ok());
}

// ----------------------------------------------------------- baselines ---

std::vector<gate::BenchSeries> baseline_set() {
  gate::GateReport report;
  auto series = gate::parse_bench_lines(
      "baselines",
      std::string(kLine) + "\n" +
          R"(BENCH_obs.json {"name":"deterministic_dump_ms","samples":5,)"
          R"("mean":11.1,"stddev":0.6,"min":10.5,"max":12.1,"median":11.0,)"
          R"("p90":11.7,"p99":12.1})",
      report);
  EXPECT_TRUE(report.ok());
  return series;
}

std::vector<gate::Tolerance> bounds(const std::string& text) {
  gate::GateReport report;
  auto tolerances = gate::parse_tolerances("t", text, report);
  EXPECT_TRUE(report.ok());
  return tolerances;
}

TEST(GateCheck, PassesWhenBaselinesSatisfyBounds) {
  gate::GateReport report;
  gate::check_baselines(baseline_set(),
                        bounds("obs:record_enabled_ns max 50\n"), report);
  EXPECT_TRUE(report.ok()) << (report.failures.empty()
                                   ? ""
                                   : report.failures.front());
}

TEST(GateCheck, FailsWhenABoundHasNoBaseline) {
  gate::GateReport report;
  gate::check_baselines(baseline_set(), bounds("obs:missing_series max 1\n"),
                        report);
  EXPECT_FALSE(report.ok());
}

TEST(GateCheck, FailsWhenACommittedBaselineViolatesItsOwnBound) {
  gate::GateReport report;
  gate::check_baselines(baseline_set(),
                        bounds("obs:record_enabled_ns max 10\n"), report);
  EXPECT_FALSE(report.ok());
}

// ----------------------------------------------------------------- gate ---

TEST(GateRun, PassesWhenFreshMeansStayWithinBounds) {
  gate::GateReport report;
  gate::gate_run(baseline_set(), baseline_set(),
                 bounds("obs:record_enabled_ns max 50\n"), report);
  EXPECT_TRUE(report.ok());
}

TEST(GateRun, FailsOnARegressedSeries) {
  gate::GateReport report;
  auto current = baseline_set();
  for (auto& series : current) {
    if (series.name == "record_enabled_ns") series.mean = 97.5;
  }
  gate::gate_run(baseline_set(), current,
                 bounds("obs:record_enabled_ns max 50\n"), report);
  EXPECT_FALSE(report.ok());
  bool regression_reported = false;
  for (const auto& failure : report.failures) {
    if (failure.find("record_enabled_ns") != std::string::npos) {
      regression_reported = true;
    }
  }
  EXPECT_TRUE(regression_reported);
}

TEST(GateRun, FailsWhenACoveredSeriesDisappears) {
  gate::GateReport report;
  auto current = baseline_set();
  current.erase(current.begin() + 1);  // drop deterministic_dump_ms
  gate::gate_run(baseline_set(), current,
                 bounds("obs:record_enabled_ns max 50\n"), report);
  EXPECT_FALSE(report.ok());
}

TEST(GateRun, IgnoresBenchesTheFreshRunDoesNotCover) {
  // A fresh run of only micro_obs must not fail because the incremental
  // baselines were not re-run.
  gate::GateReport report;
  auto baselines = baseline_set();
  gate::GateReport parse;
  auto other = gate::parse_bench_lines(
      "baselines",
      R"(BENCH_incremental.json {"name":"incremental_speedup_ratio",)"
      R"("samples":1,"mean":59.4,"stddev":0,"min":59.4,"max":59.4,)"
      R"("median":59.4,"p90":59.4,"p99":59.4})",
      parse);
  ASSERT_TRUE(parse.ok());
  baselines.insert(baselines.end(), other.begin(), other.end());
  gate::gate_run(baselines, baseline_set(),
                 bounds("obs:record_enabled_ns max 50\n"
                        "incremental:incremental_speedup_ratio min 5.0\n"),
                 report);
  EXPECT_TRUE(report.ok()) << (report.failures.empty()
                                   ? ""
                                   : report.failures.front());
}

TEST(GateRun, NotesNewSeries) {
  gate::GateReport report;
  gate::GateReport parse;
  auto current = baseline_set();
  auto fresh = gate::parse_bench_lines(
      "run",
      R"(BENCH_obs.json {"name":"brand_new_ns","samples":1,"mean":1,)"
      R"("stddev":0,"min":1,"max":1,"median":1,"p90":1,"p99":1})",
      parse);
  ASSERT_TRUE(parse.ok());
  current.insert(current.end(), fresh.begin(), fresh.end());
  gate::gate_run(baseline_set(), current,
                 bounds("obs:record_enabled_ns max 50\n"), report);
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.notes.empty());
}

}  // namespace

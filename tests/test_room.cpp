// Tests for room layout modeling: covering-frame selection, the rectangle
// distance model, boundary detection and the full layout estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "room/layout.hpp"
#include "room/panorama_select.hpp"
#include "sim/buildings.hpp"
#include "sim/user_sim.hpp"
#include "trajectory/trajectory.hpp"
#include "vision/panorama.hpp"

namespace cr = crowdmap::room;
namespace cs = crowdmap::sim;
namespace cc = crowdmap::common;
using crowdmap::geometry::Vec2;

// --------------------------------------------------------- frame selection ---

TEST(CoveringFrames, DenseRingThinnedButCovering) {
  std::vector<double> headings;
  for (int i = 0; i < 72; ++i) headings.push_back(i * cc::kTwoPi / 72);
  const auto kept = cr::select_covering_frames(headings);
  EXPECT_LT(kept.size(), 72u);       // redundant frames dropped
  EXPECT_GE(kept.size(), 9u);        // but enough to cover 360/54.4
  // Kept set still covers the circle.
  std::vector<double> kept_headings;
  for (const auto i : kept) kept_headings.push_back(headings[i]);
  const auto check = crowdmap::vision::check_angular_coverage(kept_headings, 0.9495);
  EXPECT_TRUE(check.full_cover);
}

TEST(CoveringFrames, GapFailsSelection) {
  std::vector<double> headings;
  for (int i = 0; i < 20; ++i) headings.push_back(i * 0.15);  // only ~3 rad
  EXPECT_TRUE(cr::select_covering_frames(headings).empty());
}

TEST(CoveringFrames, EmptyInput) {
  EXPECT_TRUE(cr::select_covering_frames({}).empty());
}

TEST(PanoramaCandidates, SrsSegmentDetected) {
  const auto spec = cs::lab1();
  const auto scene = cs::Scene::from_spec(spec, 161);
  cs::SimOptions options;
  options.fps = 3.0;
  cs::UserSimulator user(scene, spec, options, cc::Rng(161));
  const auto video = user.room_visit(spec.rooms[0], 8.0, cs::Lighting::day());
  const auto traj = crowdmap::trajectory::extract_trajectory(video);
  const auto candidates = cr::find_panorama_candidates(traj);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_GE(candidates[0].keyframe_indices.size(), 6u);
  // The cell center in the local frame sits near the local origin (the
  // recording starts at the stand point).
  EXPECT_LT(candidates[0].cell_center.norm(), 2.0);
}

TEST(PanoramaCandidates, WalkOnlyTrajectoryHasNone) {
  const auto spec = cs::lab1();
  const auto scene = cs::Scene::from_spec(spec, 162);
  cs::SimOptions options;
  options.fps = 3.0;
  cs::UserSimulator user(scene, spec, options, cc::Rng(162));
  const auto video = user.hallway_walk_between({2, 0}, {30, 0}, cs::Lighting::day());
  const auto traj = crowdmap::trajectory::extract_trajectory(video);
  EXPECT_TRUE(cr::find_panorama_candidates(traj).empty());
}

// ------------------------------------------------------ rectangle geometry ---

TEST(RectDistance, SquareFromCenter) {
  cr::LayoutHypothesis hyp;
  hyp.width = 4.0;
  hyp.depth = 4.0;
  // Axis directions hit the walls at 2 m; diagonal at 2*sqrt(2).
  EXPECT_NEAR(cr::rect_boundary_distance(hyp, 0.0), 2.0, 1e-9);
  EXPECT_NEAR(cr::rect_boundary_distance(hyp, cc::kPi / 2), 2.0, 1e-9);
  EXPECT_NEAR(cr::rect_boundary_distance(hyp, cc::kPi), 2.0, 1e-9);
  EXPECT_NEAR(cr::rect_boundary_distance(hyp, cc::kPi / 4), 2.0 * std::sqrt(2.0),
              1e-9);
}

TEST(RectDistance, OffsetCamera) {
  cr::LayoutHypothesis hyp;
  hyp.width = 6.0;
  hyp.depth = 4.0;
  hyp.camera_offset = {2.0, 0.0};
  EXPECT_NEAR(cr::rect_boundary_distance(hyp, 0.0), 1.0, 1e-9);   // near wall
  EXPECT_NEAR(cr::rect_boundary_distance(hyp, cc::kPi), 5.0, 1e-9);  // far wall
}

TEST(RectDistance, OrientationRotates) {
  cr::LayoutHypothesis hyp;
  hyp.width = 8.0;
  hyp.depth = 2.0;
  hyp.orientation = cc::kPi / 2;
  // Looking along +x now crosses the short (depth) direction.
  EXPECT_NEAR(cr::rect_boundary_distance(hyp, 0.0), 1.0, 1e-9);
}

TEST(RectDistance, ConsistentWithPolygonRaycast) {
  cc::Rng rng(163);
  for (int trial = 0; trial < 50; ++trial) {
    cr::LayoutHypothesis hyp;
    hyp.width = rng.uniform(2, 10);
    hyp.depth = rng.uniform(2, 10);
    hyp.orientation = rng.uniform(0, cc::kPi / 2);
    hyp.camera_offset = {hyp.width * rng.uniform(-0.3, 0.3),
                         hyp.depth * rng.uniform(-0.3, 0.3)};
    const double angle = rng.uniform(0, cc::kTwoPi);
    const double dist = cr::rect_boundary_distance(hyp, angle);
    // Oracle: ray against the room polygon's edges, camera at the offset
    // point inside the room.
    const auto poly = crowdmap::geometry::Polygon::oriented_rectangle(
        {0, 0}, hyp.width, hyp.depth, hyp.orientation);
    const Vec2 cam = hyp.camera_offset.rotated(hyp.orientation);
    double oracle = 1e9;
    for (const auto& edge : poly.edges()) {
      if (const auto hit = crowdmap::geometry::ray_segment(
              cam, Vec2::from_angle(angle), edge)) {
        oracle = std::min(oracle, hit->distance);
      }
    }
    EXPECT_NEAR(dist, oracle, 1e-6) << "trial " << trial;
  }
}

TEST(PredictBoundaryRow, FartherWallHigherInImage) {
  cr::LayoutHypothesis near_room;
  near_room.width = 3.0;
  near_room.depth = 3.0;
  cr::LayoutHypothesis far_room;
  far_room.width = 12.0;
  far_room.depth = 12.0;
  const double near_row = cr::predict_boundary_row(near_room, 0.0, 64, 90, 1.5, 0.2);
  const double far_row = cr::predict_boundary_row(far_room, 0.0, 64, 90, 1.5, 0.2);
  EXPECT_GT(near_row, far_row);  // closer wall -> boundary lower in frame
}

// ------------------------------------------------------------ estimator ---

namespace {

/// Renders and stitches a clean panorama inside a given room of a
/// single-room world, then estimates the layout.
std::optional<cr::RoomLayout> estimate_for_room(double width, double depth,
                                                Vec2 cam_offset,
                                                std::uint64_t seed,
                                                int hypotheses = 3000) {
  cs::FloorPlanSpec spec;
  spec.name = "single";
  spec.feature_density = 0.8;
  cs::RoomSpec room;
  room.id = 1;
  room.center = {0, 0};
  room.width = width;
  room.depth = depth;
  room.door = {0, -depth / 2};
  spec.rooms.push_back(room);
  spec.hallways.push_back(cs::corridor({-8, -depth / 2 - 1.2}, {8, -depth / 2 - 1.2}, 2.4));
  const auto scene = cs::Scene::from_spec(spec, seed);

  cs::CameraIntrinsics intr;
  cc::Rng rng(seed);
  std::vector<crowdmap::vision::PanoFrame> frames;
  const Vec2 cam = room.center + cam_offset;
  for (int i = 0; i < 16; ++i) {
    const double heading = i * cc::kTwoPi / 16;
    crowdmap::vision::PanoFrame frame;
    frame.image = scene.render({cam, heading}, intr, cs::Lighting::day(), rng).to_gray();
    frame.heading = heading;
    frames.push_back(std::move(frame));
  }
  crowdmap::vision::StitchParams sp;
  sp.output_width = 512;
  sp.output_height = 128;
  const auto pano = crowdmap::vision::stitch_panorama(std::move(frames), sp);

  cr::LayoutConfig config;
  config.hypotheses = hypotheses;
  const double frame_focal = intr.width / (2.0 * std::tan(sp.fov / 2.0));
  config.focal_px = frame_focal * sp.output_height / intr.height;
  return cr::estimate_layout(pano.image, config);
}

}  // namespace

TEST(LayoutEstimator, RecoversSquareRoom) {
  const auto layout = estimate_for_room(5.0, 5.0, {0, 0}, 171);
  ASSERT_TRUE(layout.has_value());
  EXPECT_NEAR(layout->area(), 25.0, 6.0);
  EXPECT_NEAR(layout->aspect_ratio() > 1 ? layout->aspect_ratio()
                                         : 1.0 / layout->aspect_ratio(),
              1.0, 0.25);
}

TEST(LayoutEstimator, RecoversElongatedRoom) {
  const auto layout = estimate_for_room(8.0, 4.0, {0, 0}, 173);
  ASSERT_TRUE(layout.has_value());
  EXPECT_NEAR(layout->area(), 32.0, 8.0);
  const double aspect = std::max(layout->aspect_ratio(), 1.0 / layout->aspect_ratio());
  EXPECT_NEAR(aspect, 2.0, 0.5);
}

TEST(LayoutEstimator, HandlesOffCenterCamera) {
  const auto layout = estimate_for_room(6.0, 5.0, {1.2, -0.8}, 175);
  ASSERT_TRUE(layout.has_value());
  EXPECT_NEAR(layout->area(), 30.0, 8.0);
  // The camera offset should be recovered roughly (room frame ambiguity
  // resolved by magnitude only).
  EXPECT_NEAR(layout->camera_offset.norm(), std::hypot(1.2, 0.8), 1.0);
}

TEST(LayoutEstimator, RejectsBlankPanorama) {
  EXPECT_FALSE(cr::estimate_layout(crowdmap::imaging::Image(512, 128, 0.5f), {})
                   .has_value());
  EXPECT_FALSE(cr::estimate_layout(crowdmap::imaging::Image(), {}).has_value());
}

TEST(LayoutEstimator, BoundaryDetectionCoversColumns) {
  cs::FloorPlanSpec spec = cs::lab1();
  const auto scene = cs::Scene::from_spec(spec, 177);
  cs::CameraIntrinsics intr;
  cc::Rng rng(177);
  std::vector<crowdmap::vision::PanoFrame> frames;
  for (int i = 0; i < 16; ++i) {
    const double heading = i * cc::kTwoPi / 16;
    frames.push_back({scene.render({spec.rooms[0].center, heading}, intr,
                                   cs::Lighting::day(), rng)
                          .to_gray(),
                      heading});
  }
  crowdmap::vision::StitchParams sp;
  sp.output_width = 512;
  sp.output_height = 128;
  const auto pano = crowdmap::vision::stitch_panorama(std::move(frames), sp);
  const double frame_focal = intr.width / (2.0 * std::tan(sp.fov / 2.0));
  const double focal = frame_focal * sp.output_height / intr.height;
  const double horizon = sp.output_height / 2.0 - focal * std::tan(0.15);
  const auto boundary = cr::detect_floor_boundary(pano.image, horizon);
  int valid = 0;
  for (const double b : boundary) valid += !std::isnan(b);
  EXPECT_GT(static_cast<double>(valid) / boundary.size(), 0.8);
}

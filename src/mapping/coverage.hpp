// Campaign coverage analysis: which parts of the (partially) mapped floor
// still need data. CrowdMap is proactive crowdsourcing (§II) — the operator
// hands out SRS/SWS tasks — so the backend should say *where* to send the
// next contributors: corridor cells with thin evidence, and rooms without a
// usable panorama.
#pragma once

#include <vector>

#include "geometry/raster.hpp"
#include "geometry/vec2.hpp"
#include "mapping/occupancy.hpp"

namespace crowdmap::mapping {

/// Coverage classification per mapped cell.
struct CoverageReport {
  /// Cells on the reconstructed skeleton whose access count is below the
  /// confidence threshold (one stray pass could have painted them).
  geometry::BoolRaster thin;
  /// Fraction of skeleton cells with confident (>= threshold) evidence.
  double confident_fraction = 0.0;
  /// Total skeleton cells.
  std::size_t skeleton_cells = 0;
};

/// Classifies skeleton cells by evidence strength.
[[nodiscard]] CoverageReport coverage_report(const OccupancyGrid& grid,
                                             const geometry::BoolRaster& skeleton,
                                             double confident_count = 3.0);

/// A suggested SWS task: walk between two thin-coverage waypoints.
struct TaskSuggestion {
  geometry::Vec2 from;
  geometry::Vec2 to;
  double expected_gain = 0.0;  // thin cells near the straight path
};

/// Greedy task suggestions: repeatedly picks the pair of thin-coverage
/// cluster centers whose connecting segment passes the most remaining thin
/// cells. Returns at most `max_tasks` suggestions, highest gain first.
[[nodiscard]] std::vector<TaskSuggestion> suggest_walk_tasks(
    const CoverageReport& report, std::size_t max_tasks = 4);

}  // namespace crowdmap::mapping

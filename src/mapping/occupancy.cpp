#include "mapping/occupancy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "imaging/otsu.hpp"

namespace crowdmap::mapping {

OccupancyGrid::OccupancyGrid(Aabb extent, double cell_size)
    : extent_(extent), cell_size_(cell_size) {
  if (cell_size <= 0) throw std::invalid_argument("cell_size must be positive");
  width_ = std::max(1, static_cast<int>(std::ceil(extent.width() / cell_size)));
  height_ = std::max(1, static_cast<int>(std::ceil(extent.height() / cell_size)));
  counts_.assign(static_cast<std::size_t>(width_) * height_, 0.0);
}

Vec2 OccupancyGrid::cell_center(int col, int row) const noexcept {
  return {extent_.min.x + (col + 0.5) * cell_size_,
          extent_.min.y + (row + 0.5) * cell_size_};
}

void OccupancyGrid::add_point(Vec2 p, double brush_width) {
  const int c0 = static_cast<int>(std::floor((p.x - extent_.min.x) / cell_size_));
  const int r0 = static_cast<int>(std::floor((p.y - extent_.min.y) / cell_size_));
  const int radius =
      std::max(0, static_cast<int>(std::ceil(brush_width / 2.0 / cell_size_)));
  for (int dr = -radius; dr <= radius; ++dr) {
    for (int dc = -radius; dc <= radius; ++dc) {
      const int c = c0 + dc;
      const int r = r0 + dr;
      if (c < 0 || r < 0 || c >= width_ || r >= height_) continue;
      if (cell_center(c, r).distance_to(p) <= brush_width / 2.0 + 1e-9) {
        counts_[static_cast<std::size_t>(r) * width_ + c] += 1.0;
      }
    }
  }
  if (radius == 0 && c0 >= 0 && r0 >= 0 && c0 < width_ && r0 < height_) {
    counts_[static_cast<std::size_t>(r0) * width_ + c0] += 1.0;
  }
}

void OccupancyGrid::add_polyline(const std::vector<Vec2>& points,
                                 double brush_width) {
  if (points.empty()) return;
  // One hit per cell per trajectory: accumulate into a visited mask first so
  // a trajectory lingering in a cell does not over-weight it.
  std::vector<std::uint8_t> visited(counts_.size(), 0);
  auto mark = [&](Vec2 p) {
    const int c0 = static_cast<int>(std::floor((p.x - extent_.min.x) / cell_size_));
    const int r0 = static_cast<int>(std::floor((p.y - extent_.min.y) / cell_size_));
    const int radius =
        std::max(0, static_cast<int>(std::ceil(brush_width / 2.0 / cell_size_)));
    for (int dr = -radius; dr <= radius; ++dr) {
      for (int dc = -radius; dc <= radius; ++dc) {
        const int c = c0 + dc;
        const int r = r0 + dr;
        if (c < 0 || r < 0 || c >= width_ || r >= height_) continue;
        if (cell_center(c, r).distance_to(p) <= brush_width / 2.0 + 1e-9) {
          visited[static_cast<std::size_t>(r) * width_ + c] = 1;
        }
      }
    }
    if (radius == 0 && c0 >= 0 && r0 >= 0 && c0 < width_ && r0 < height_) {
      visited[static_cast<std::size_t>(r0) * width_ + c0] = 1;
    }
  };
  mark(points.front());
  for (std::size_t i = 1; i < points.size(); ++i) {
    const Vec2 from = points[i - 1];
    const Vec2 to = points[i];
    const double len = from.distance_to(to);
    const int steps = std::max(1, static_cast<int>(std::ceil(len / (cell_size_ / 2))));
    for (int s = 1; s <= steps; ++s) {
      mark(from + (to - from) * (static_cast<double>(s) / steps));
    }
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += visited[i];
}

double OccupancyGrid::count_at(int col, int row) const {
  if (col < 0 || row < 0 || col >= width_ || row >= height_) {
    throw std::out_of_range("OccupancyGrid::count_at");
  }
  return counts_[static_cast<std::size_t>(row) * width_ + col];
}

double OccupancyGrid::max_count() const noexcept {
  double m = 0.0;
  for (const double c : counts_) m = std::max(m, c);
  return m;
}

std::vector<double> OccupancyGrid::probabilities() const {
  std::vector<double> probs(counts_.size(), 0.0);
  const double m = max_count();
  if (m <= 0) return probs;
  for (std::size_t i = 0; i < counts_.size(); ++i) probs[i] = counts_[i] / m;
  return probs;
}

BoolRaster OccupancyGrid::binarize(double max_count_threshold) const {
  const auto probs = probabilities();
  // Otsu over the nonzero cells only: zeros (unvisited space) dominate the
  // grid and would otherwise pull the threshold to nothing.
  std::vector<double> nonzero;
  nonzero.reserve(probs.size());
  for (const double p : probs) {
    if (p > 0) nonzero.push_back(p);
  }
  double threshold = imaging::otsu_threshold(std::span<const double>(nonzero));
  // Otsu separates "weak" evidence (single stray pass) from "strong"
  // (repeatedly travelled). Popularity skew caps the threshold: a cell
  // independently crossed `max_count_threshold` times is accessible no
  // matter how busy the busiest junction is.
  const double max = max_count();
  if (max > 0) threshold = std::min(threshold, max_count_threshold / max);
  return binarize_at(std::min(threshold, 0.999));
}

BoolRaster OccupancyGrid::binarize_at(double threshold) const {
  BoolRaster out(extent_, cell_size_);
  const auto probs = probabilities();
  for (int r = 0; r < height_; ++r) {
    for (int c = 0; c < width_; ++c) {
      if (probs[static_cast<std::size_t>(r) * width_ + c] >= threshold &&
          probs[static_cast<std::size_t>(r) * width_ + c] > 0) {
        out.set(c, r, true);
      }
    }
  }
  return out;
}

}  // namespace crowdmap::mapping

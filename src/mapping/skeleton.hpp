// Floor path skeleton reconstruction (§III.B.II, Fig. 3a–3d):
// occupancy grid → Otsu binarization → α-shape over accessible cells →
// α-threshold regularized boundary → repair of unconnected paths.
#pragma once

#include <vector>

#include "geometry/alpha_shape.hpp"
#include "geometry/polygon.hpp"
#include "geometry/raster.hpp"
#include "mapping/occupancy.hpp"

namespace crowdmap::mapping {

struct SkeletonConfig {
  double min_access_count = 2.0;       // binarization cap (passes per cell)
  double alpha = 1.6;                  // h_α, meters (α-shape circumradius)
  int close_radius = 1;                // morphological closing radius, cells
  int bridge_max_gap_cells = 10;       // repair: max gap to bridge
  std::size_t min_component_cells = 6; // outlier blob suppression
  /// Final dilation: the paper's grid approximation makes the skeleton
  /// slightly larger than the true hallway (its recall exceeds precision).
  int final_dilate_cells = 1;
};

/// Reconstructed floor path skeleton.
struct PathSkeleton {
  geometry::BoolRaster raster;          // final repaired skeleton
  geometry::BoolRaster binarized;       // post-Otsu intermediate (Fig. 3a)
  std::vector<geometry::Segment> boundary;  // α-shape boundary (Fig. 3c)

  [[nodiscard]] double area() const noexcept { return raster.set_area(); }
};

/// Full skeleton reconstruction from an occupancy grid.
[[nodiscard]] PathSkeleton reconstruct_skeleton(const OccupancyGrid& grid,
                                                const SkeletonConfig& config = {});

/// Hallway-shape evaluation (Table I): parts of the generated skeleton lying
/// inside ground-truth room footprints are cut off (the paper does this
/// manually), the remainder is alignment-searched against the ground-truth
/// hallway raster, and precision/recall/F are reported.
[[nodiscard]] geometry::OverlapMetrics hallway_shape_metrics(
    const PathSkeleton& skeleton, const geometry::BoolRaster& truth_hallway,
    const std::vector<geometry::Polygon>& rooms_to_cut, int max_shift_cells = 8);

}  // namespace crowdmap::mapping

#include "mapping/skeleton.hpp"

#include <algorithm>
#include <stdexcept>

#include "imaging/morphology.hpp"

namespace crowdmap::mapping {

namespace {

/// Fills raster cells covered by a triangle.
void fill_triangle(geometry::BoolRaster& raster, Vec2 a, Vec2 b, Vec2 c) {
  const double min_x = std::min({a.x, b.x, c.x});
  const double max_x = std::max({a.x, b.x, c.x});
  const double min_y = std::min({a.y, b.y, c.y});
  const double max_y = std::max({a.y, b.y, c.y});
  auto [c0, r0] = raster.cell_of({min_x, min_y});
  auto [c1, r1] = raster.cell_of({max_x, max_y});
  c0 = std::max(c0, 0);
  r0 = std::max(r0, 0);
  c1 = std::min(c1, raster.width() - 1);
  r1 = std::min(r1, raster.height() - 1);
  for (int r = r0; r <= r1; ++r) {
    for (int col = c0; col <= c1; ++col) {
      const Vec2 p = raster.cell_center(col, r);
      const double d1 = (b - a).cross(p - a);
      const double d2 = (c - b).cross(p - b);
      const double d3 = (a - c).cross(p - c);
      const bool has_neg = (d1 < -1e-12) || (d2 < -1e-12) || (d3 < -1e-12);
      const bool has_pos = (d1 > 1e-12) || (d2 > 1e-12) || (d3 > 1e-12);
      if (!(has_neg && has_pos)) raster.set(col, r, true);
    }
  }
}

}  // namespace

PathSkeleton reconstruct_skeleton(const OccupancyGrid& grid,
                                  const SkeletonConfig& config) {
  // Steps 1–3: accumulate (done by caller), binarize with Otsu.
  geometry::BoolRaster binary = grid.binarize(config.min_access_count);

  // Step 4: α-shape over accessible cell centers (Delaunay-based).
  std::vector<Vec2> points;
  for (int r = 0; r < binary.height(); ++r) {
    for (int c = 0; c < binary.width(); ++c) {
      if (binary.at(c, r)) points.push_back(binary.cell_center(c, r));
    }
  }
  PathSkeleton skeleton{geometry::BoolRaster(grid.extent(), grid.cell_size()),
                        binary,
                        {}};
  if (points.size() < 3) {
    skeleton.raster = binary;
    return skeleton;
  }
  const auto shape = geometry::alpha_shape(points, config.alpha);
  skeleton.boundary = shape.boundary;

  // Step 5: regularized interior = union of retained triangles.
  for (const auto& tri : shape.triangles) {
    fill_triangle(skeleton.raster, points[tri.v[0]], points[tri.v[1]],
                  points[tri.v[2]]);
  }
  // Keep isolated accessible cells the triangulation could not cover.
  for (const Vec2 p : points) {
    auto [c, r] = skeleton.raster.cell_of(p);
    skeleton.raster.set(c, r, true);
  }

  // Step 6: normalize — close pinholes, drop stray blobs, repair gaps.
  skeleton.raster = imaging::close(skeleton.raster, config.close_radius);
  skeleton.raster =
      imaging::remove_small_components(skeleton.raster, config.min_component_cells);
  skeleton.raster =
      imaging::bridge_gaps(skeleton.raster, config.bridge_max_gap_cells);
  skeleton.raster = imaging::dilate(skeleton.raster, config.final_dilate_cells);
  return skeleton;
}

geometry::OverlapMetrics hallway_shape_metrics(
    const PathSkeleton& skeleton, const geometry::BoolRaster& truth_hallway,
    const std::vector<geometry::Polygon>& rooms_to_cut, int max_shift_cells) {
  if (skeleton.raster.width() != truth_hallway.width() ||
      skeleton.raster.height() != truth_hallway.height()) {
    throw std::invalid_argument("hallway_shape_metrics: raster grids differ");
  }
  geometry::BoolRaster cut = skeleton.raster;
  for (int r = 0; r < cut.height(); ++r) {
    for (int c = 0; c < cut.width(); ++c) {
      if (!cut.at(c, r)) continue;
      const Vec2 p = cut.cell_center(c, r);
      for (const auto& room : rooms_to_cut) {
        if (room.contains(p)) {
          cut.set(c, r, false);
          break;
        }
      }
    }
  }
  return geometry::best_aligned_overlap(cut, truth_hallway, max_shift_cells);
}

}  // namespace crowdmap::mapping

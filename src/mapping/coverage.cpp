#include "mapping/coverage.hpp"

#include <algorithm>
#include <cmath>

#include "imaging/morphology.hpp"

namespace crowdmap::mapping {

CoverageReport coverage_report(const OccupancyGrid& grid,
                               const geometry::BoolRaster& skeleton,
                               double confident_count) {
  CoverageReport report{geometry::BoolRaster(skeleton.extent(),
                                             skeleton.cell_size()),
                        0.0, 0};
  std::size_t confident = 0;
  for (int row = 0; row < skeleton.height(); ++row) {
    for (int col = 0; col < skeleton.width(); ++col) {
      if (!skeleton.at(col, row)) continue;
      ++report.skeleton_cells;
      // Map the skeleton cell into grid coordinates (they share the metric
      // frame but may differ in resolution).
      const auto center = skeleton.cell_center(col, row);
      const auto [gc, gr] = geometry::BoolRaster(grid.extent(), grid.cell_size())
                                .cell_of(center);
      double count = 0.0;
      if (gc >= 0 && gr >= 0 && gc < grid.width() && gr < grid.height()) {
        count = grid.count_at(gc, gr);
      }
      if (count >= confident_count) {
        ++confident;
      } else {
        report.thin.set(col, row, true);
      }
    }
  }
  report.confident_fraction =
      report.skeleton_cells == 0
          ? 1.0
          : static_cast<double>(confident) /
                static_cast<double>(report.skeleton_cells);
  return report;
}

namespace {

/// Centers of the thin-coverage connected components, largest first.
[[nodiscard]] std::vector<geometry::Vec2> thin_cluster_centers(
    const geometry::BoolRaster& thin) {
  const auto comps = imaging::connected_components(thin);
  std::vector<geometry::Vec2> sums(static_cast<std::size_t>(comps.count) + 1);
  std::vector<std::size_t> counts(static_cast<std::size_t>(comps.count) + 1, 0);
  for (int row = 0; row < thin.height(); ++row) {
    for (int col = 0; col < thin.width(); ++col) {
      const int label =
          comps.labels[static_cast<std::size_t>(row) * thin.width() + col];
      if (label <= 0) continue;
      sums[static_cast<std::size_t>(label)] += thin.cell_center(col, row);
      counts[static_cast<std::size_t>(label)]++;
    }
  }
  std::vector<std::pair<std::size_t, geometry::Vec2>> clusters;
  for (std::size_t label = 1; label < sums.size(); ++label) {
    if (counts[label] == 0) continue;
    clusters.emplace_back(counts[label],
                          sums[label] / static_cast<double>(counts[label]));
  }
  std::sort(clusters.begin(), clusters.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<geometry::Vec2> centers;
  centers.reserve(clusters.size());
  for (const auto& [size, center] : clusters) centers.push_back(center);
  return centers;
}

/// Thin cells within one cell-size of the segment from..to.
[[nodiscard]] double path_gain(const geometry::BoolRaster& thin,
                               geometry::Vec2 from, geometry::Vec2 to) {
  double gain = 0.0;
  const geometry::Segment seg{from, to};
  for (int row = 0; row < thin.height(); ++row) {
    for (int col = 0; col < thin.width(); ++col) {
      if (!thin.at(col, row)) continue;
      if (geometry::distance_point_segment(thin.cell_center(col, row), seg) <=
          1.5 * thin.cell_size()) {
        gain += 1.0;
      }
    }
  }
  return gain;
}

}  // namespace

std::vector<TaskSuggestion> suggest_walk_tasks(const CoverageReport& report,
                                               std::size_t max_tasks) {
  std::vector<TaskSuggestion> tasks;
  const auto centers = thin_cluster_centers(report.thin);
  if (centers.empty()) return tasks;
  if (centers.size() == 1) {
    // A single thin cluster: suggest a pass through it.
    TaskSuggestion t;
    t.from = centers[0] + geometry::Vec2{-2.0, 0.0};
    t.to = centers[0] + geometry::Vec2{2.0, 0.0};
    t.expected_gain = path_gain(report.thin, t.from, t.to);
    tasks.push_back(t);
    return tasks;
  }
  // Greedy: best pairs by straight-path gain.
  std::vector<std::pair<double, std::pair<std::size_t, std::size_t>>> scored;
  const std::size_t limit = std::min<std::size_t>(centers.size(), 8);
  for (std::size_t i = 0; i < limit; ++i) {
    for (std::size_t j = i + 1; j < limit; ++j) {
      scored.push_back(
          {path_gain(report.thin, centers[i], centers[j]), {i, j}});
    }
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [gain, pair] : scored) {
    if (tasks.size() >= max_tasks) break;
    if (gain <= 0) continue;
    tasks.push_back({centers[pair.first], centers[pair.second], gain});
  }
  return tasks;
}

}  // namespace crowdmap::mapping

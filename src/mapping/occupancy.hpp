// Occupancy grid (Thrun-style) over the floor extent: aggregated trajectories
// are rasterized into per-cell access counts that approximate "how accessible
// the location is" (§III.B.II steps 1–2).
#pragma once

#include <vector>

#include "geometry/polygon.hpp"
#include "geometry/raster.hpp"
#include "geometry/vec2.hpp"

namespace crowdmap::mapping {

using geometry::Aabb;
using geometry::BoolRaster;
using geometry::Vec2;

class OccupancyGrid {
 public:
  OccupancyGrid(Aabb extent, double cell_size);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] double cell_size() const noexcept { return cell_size_; }
  [[nodiscard]] const Aabb& extent() const noexcept { return extent_; }

  /// Adds one trajectory: every cell touched by the polyline (with a metric
  /// brush width approximating body width) gets its count increased. Cells
  /// hit by multiple trajectories accumulate higher access probability.
  void add_polyline(const std::vector<Vec2>& points, double brush_width = 0.6);

  /// Adds a single visited point.
  void add_point(Vec2 p, double brush_width = 0.6);

  [[nodiscard]] double count_at(int col, int row) const;
  [[nodiscard]] double max_count() const noexcept;

  /// Access probabilities: counts normalized by the maximum (0 when empty).
  [[nodiscard]] std::vector<double> probabilities() const;

  /// Otsu-binarized occupancy (paper step 3): cells whose access probability
  /// clears the automatically selected threshold. The threshold is capped at
  /// `max_count_threshold` trajectory passes so that legitimately visited
  /// but unpopular corridor cells survive when a few cells (junctions) are
  /// traversed far more often than the rest.
  [[nodiscard]] BoolRaster binarize(double max_count_threshold = 2.0) const;

  /// Binarization with an explicit probability threshold in [0,1].
  [[nodiscard]] BoolRaster binarize_at(double threshold) const;

  [[nodiscard]] Vec2 cell_center(int col, int row) const noexcept;

 private:
  Aabb extent_;
  double cell_size_;
  int width_;
  int height_;
  std::vector<double> counts_;
};

}  // namespace crowdmap::mapping

#include "sim/spec.hpp"

#include <limits>
#include <stdexcept>

namespace crowdmap::sim {

Aabb FloorPlanSpec::extent(double margin) const {
  Aabb box{{std::numeric_limits<double>::max(), std::numeric_limits<double>::max()},
           {std::numeric_limits<double>::lowest(), std::numeric_limits<double>::lowest()}};
  auto grow = [&box](const Polygon& poly) {
    const Aabb b = poly.bounding_box();
    box.min.x = std::min(box.min.x, b.min.x);
    box.min.y = std::min(box.min.y, b.min.y);
    box.max.x = std::max(box.max.x, b.max.x);
    box.max.y = std::max(box.max.y, b.max.y);
  };
  for (const auto& h : hallways) grow(h);
  for (const auto& r : rooms) grow(r.footprint());
  if (hallways.empty() && rooms.empty()) {
    throw std::logic_error("extent of empty FloorPlanSpec");
  }
  return box.expanded(margin);
}

bool FloorPlanSpec::in_hallway(Vec2 p) const {
  for (const auto& h : hallways) {
    if (h.contains(p)) return true;
  }
  return false;
}

BoolRaster FloorPlanSpec::hallway_raster(double cell_size) const {
  BoolRaster raster(extent(), cell_size);
  for (const auto& h : hallways) raster.fill_polygon(h);
  return raster;
}

double FloorPlanSpec::hallway_area(double cell_size) const {
  return hallway_raster(cell_size).set_area();
}

const RoomSpec& FloorPlanSpec::room_by_id(int id) const {
  for (const auto& r : rooms) {
    if (r.id == id) return r;
  }
  throw std::out_of_range("unknown room id");
}

}  // namespace crowdmap::sim

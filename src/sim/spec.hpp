// Ground-truth building model. The paper evaluates against surveyed floor
// plans of three college buildings (Lab1, Lab2, Gym); our stand-ins are
// parametric specs from which both the synthetic world (scene geometry,
// textures) and the evaluation ground truth (hallway raster, room layouts)
// are derived.
#pragma once

#include <string>
#include <vector>

#include "geometry/polygon.hpp"
#include "geometry/raster.hpp"
#include "geometry/vec2.hpp"

namespace crowdmap::sim {

using geometry::Aabb;
using geometry::BoolRaster;
using geometry::Polygon;
using geometry::Vec2;

/// Ground-truth description of one room.
struct RoomSpec {
  int id = 0;
  std::string name;
  Vec2 center;
  double width = 4.0;    // along x before rotation
  double depth = 5.0;    // along y before rotation
  double theta = 0.0;    // rotation (rare; most campus rooms are axis-aligned)
  Vec2 door;             // door center, on the room boundary
  double door_width = 1.0;

  [[nodiscard]] double area() const noexcept { return width * depth; }
  [[nodiscard]] double aspect_ratio() const noexcept { return width / depth; }
  [[nodiscard]] Polygon footprint() const {
    return Polygon::oriented_rectangle(center, width, depth, theta);
  }
};

/// Ground-truth description of one floor.
struct FloorPlanSpec {
  std::string name;
  std::vector<Polygon> hallways;  // union of axis-aligned corridor rectangles
  std::vector<RoomSpec> rooms;
  double feature_density = 0.8;   // wall texture richness in [0,1]
  double wall_height = 3.0;       // meters

  /// Bounding box over hallways and rooms with a margin.
  [[nodiscard]] Aabb extent(double margin = 2.0) const;

  /// True if a point lies in any hallway rectangle.
  [[nodiscard]] bool in_hallway(Vec2 p) const;

  /// Ground-truth hallway raster at the given resolution (for Table I).
  [[nodiscard]] BoolRaster hallway_raster(double cell_size = 0.25) const;

  /// Total hallway area (with overlap between rectangles counted once, via
  /// rasterization).
  [[nodiscard]] double hallway_area(double cell_size = 0.1) const;

  /// Room lookup; throws std::out_of_range for unknown ids.
  [[nodiscard]] const RoomSpec& room_by_id(int id) const;
};

}  // namespace crowdmap::sim

// Crowd campaign generation: a population of simulated users performing
// room-visit and hallway-walk tasks across a building at different times of
// day — the stand-in for the paper's 25 users / 301 videos dataset (§V).
#pragma once

#include <functional>
#include <vector>

#include "sim/scene.hpp"
#include "sim/spec.hpp"
#include "sim/user_sim.hpp"

namespace crowdmap::sim {

/// Post-generation damage applied to a deterministic subset of uploads —
/// the crowd-sourcing failure modes the cloud backend must survive (videos
/// cut short mid-walk, IMU streams that die before the camera does).
/// Decisions come from a non-advancing `Rng::stream` keyed by video id, so
/// enabling these never perturbs the base campaign's draw sequence: the
/// undamaged videos are bit-identical to an adversarial-free run.
struct AdversarialOptions {
  double truncate_fraction = 0.0;  // chance a video keeps only a head prefix
  double dropout_fraction = 0.0;   // chance a video loses its IMU tail
  std::size_t min_keep_frames = 4; // frames never truncated away

  [[nodiscard]] bool enabled() const noexcept {
    return truncate_fraction > 0.0 || dropout_fraction > 0.0;
  }
};

struct CampaignOptions {
  int users = 8;                    // distinct simulated contributors
  int room_videos_per_room = 1;     // SRS+walk-out visits per room
  int hallway_walks = 24;           // hallway-only SWS videos
  double night_fraction = 0.3;      // recordings under night lighting
  double junk_fraction = 0.05;      // unqualified (shaky) uploads
  double hallway_distance = 12.0;   // meters walked after leaving a room
  AdversarialOptions adversarial;   // deliberate capture damage (off by default)
  SimOptions sim;
};

/// A generated dataset: ground truth + all uploads.
struct Campaign {
  FloorPlanSpec spec;
  Scene scene;
  std::vector<SensorRichVideo> videos;

  [[nodiscard]] std::size_t frame_count() const noexcept {
    std::size_t n = 0;
    for (const auto& v : videos) n += v.frames.size();
    return n;
  }
};

/// Generates a deterministic campaign for a building.
[[nodiscard]] Campaign generate_campaign(const FloorPlanSpec& spec,
                                         const CampaignOptions& options,
                                         std::uint64_t seed);

/// Streaming variant: invokes `sink` once per generated video instead of
/// accumulating them. Raw frames dominate memory (a full campaign holds
/// hundreds of MB of pixels), so pipelines should consume videos one at a
/// time and keep only extracted features.
void generate_campaign_streaming(
    const FloorPlanSpec& spec, const CampaignOptions& options, std::uint64_t seed,
    const std::function<void(SensorRichVideo&&)>& sink);

}  // namespace crowdmap::sim

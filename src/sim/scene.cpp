#include "sim/scene.hpp"

#include <algorithm>
#include <cmath>

#include "common/mathutil.hpp"

namespace crowdmap::sim {

namespace {

using common::hash_combine;
using common::hash_to_unit;
using common::hash_u64;

[[nodiscard]] std::uint64_t lattice_hash(long ix, long iy, std::uint64_t seed) {
  return hash_combine(seed, hash_combine(static_cast<std::uint64_t>(ix) * 0x9e37u,
                                         static_cast<std::uint64_t>(iy)));
}

}  // namespace

double value_noise(double x, double y, std::uint64_t seed) {
  const long x0 = static_cast<long>(std::floor(x));
  const long y0 = static_cast<long>(std::floor(y));
  const double fx = x - x0;
  const double fy = y - y0;
  // Smoothstep fade for C1 continuity.
  const double ux = fx * fx * (3 - 2 * fx);
  const double uy = fy * fy * (3 - 2 * fy);
  const double v00 = hash_to_unit(lattice_hash(x0, y0, seed));
  const double v10 = hash_to_unit(lattice_hash(x0 + 1, y0, seed));
  const double v01 = hash_to_unit(lattice_hash(x0, y0 + 1, seed));
  const double v11 = hash_to_unit(lattice_hash(x0 + 1, y0 + 1, seed));
  const double top = v00 + (v10 - v00) * ux;
  const double bot = v01 + (v11 - v01) * ux;
  return top + (bot - top) * uy;
}

Scene Scene::from_spec(const FloorPlanSpec& spec, std::uint64_t seed) {
  Scene scene;
  scene.feature_density_ = spec.feature_density;
  scene.wall_height_ = spec.wall_height;
  scene.seed_ = seed;

  // Room walls: 4 edges; the edge nearest the door carries the door panel.
  for (const auto& room : spec.rooms) {
    const auto edges = room.footprint().edges();
    // Find the edge closest to the declared door position.
    std::size_t door_edge = 0;
    double best = 1e18;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const double d = geometry::distance_point_segment(room.door, edges[i]);
      if (d < best) {
        best = d;
        door_edge = i;
      }
    }
    for (std::size_t i = 0; i < edges.size(); ++i) {
      Wall w;
      w.seg = edges[i];
      w.texture_seed = hash_combine(seed, hash_combine(0xA001,
          hash_combine(static_cast<std::uint64_t>(room.id), i)));
      if (i == door_edge) {
        const double t = geometry::project_onto(room.door, edges[i]);
        const double s = t * edges[i].length();
        w.door_s0 = std::max(0.0, s - room.door_width / 2.0);
        w.door_s1 = std::min(edges[i].length(), s + room.door_width / 2.0);
      }
      scene.walls_.push_back(w);
    }
  }

  // Hallway outline walls, plus protruding clutter (bins, benches, drinking
  // fountains) along long corridor walls. The clutter occludes the far view
  // differently from different positions, which is what makes real corridor
  // frames position-distinctive; without it every view down a straight
  // corridor aliases onto every other.
  std::size_t hall_idx = 0;
  for (const auto& hall : spec.hallways) {
    const Polygon ccw_hall = hall.ccw();
    const auto edges = ccw_hall.edges();
    for (std::size_t i = 0; i < edges.size(); ++i) {
      Wall w;
      w.seg = edges[i];
      w.texture_seed = hash_combine(seed, hash_combine(0xB002,
          hash_combine(hall_idx, i)));
      scene.walls_.push_back(w);

      const double len = edges[i].length();
      if (len < 6.0) continue;
      const Vec2 dir = edges[i].direction();
      const Vec2 inward = dir.perp();  // CCW polygon: interior to the left
      const int n_stubs = static_cast<int>(
          len / 5.0 * std::max(spec.feature_density, 0.3));
      for (int j = 0; j < n_stubs; ++j) {
        const std::uint64_t sj =
            hash_combine(w.texture_seed, 0x57B0u + static_cast<std::uint64_t>(j));
        const double s = (0.06 + 0.88 * hash_to_unit(sj)) * len;
        const double depth = 0.25 + 0.25 * hash_to_unit(hash_u64(sj));
        const Vec2 base = edges[i].at(s / len);
        Wall stub;
        stub.seg = {base, base + inward * depth};
        stub.texture_seed = hash_combine(sj, 0xC1A7u);
        scene.walls_.push_back(stub);
      }
    }
    ++hall_idx;
  }
  return scene;
}

std::optional<Scene::Hit> Scene::raycast(Vec2 origin, Vec2 dir) const {
  std::optional<Hit> best;
  for (std::size_t i = 0; i < walls_.size(); ++i) {
    const auto hit = geometry::ray_segment(origin, dir, walls_[i].seg);
    if (!hit) continue;
    if (!best || hit->distance < best->distance) {
      best = Hit{hit->distance, i, hit->t * walls_[i].seg.length()};
    }
  }
  return best;
}

std::array<double, 3> Scene::wall_texture_rgb(const Wall& wall, double s,
                                              double v) const {
  const double density = feature_density_;
  // Per-wall base tint: institutional paint varies wall to wall.
  const std::uint64_t tint_seed = hash_combine(wall.texture_seed, 0x717F7u);
  const double tr = 0.78 + 0.22 * hash_to_unit(tint_seed);
  const double tg = 0.78 + 0.22 * hash_to_unit(hash_u64(tint_seed));
  const double tb = 0.78 + 0.22 * hash_to_unit(hash_combine(tint_seed, 3));

  // Baseboard and crown bands.
  if (v < 0.07) return {0.22, 0.20, 0.18};
  double value = v > 0.92 ? 0.48 : 0.55;

  // Door panel: dark colored panel with a frame and a handle blob.
  if (wall.door_s0 >= 0 && s >= wall.door_s0 && s <= wall.door_s1 && v < 0.72) {
    const double ds = (s - wall.door_s0) / std::max(wall.door_s1 - wall.door_s0, 1e-9);
    const std::uint64_t door_seed = hash_combine(wall.texture_seed, 0xD00Du);
    // Door paint: a saturated hue unique to the room.
    const double hr = 0.25 + 0.7 * hash_to_unit(door_seed);
    const double hg = 0.25 + 0.7 * hash_to_unit(hash_u64(door_seed));
    const double hb = 0.25 + 0.7 * hash_to_unit(hash_combine(door_seed, 5));
    double door = 0.55;
    if (ds < 0.07 || ds > 0.93) door = 0.25;               // frame
    if (v > 0.66) door = 0.25;                             // top frame
    const double handle = std::hypot(ds - 0.85, (v - 0.35) * 3.0);
    if (handle < 0.08) return {0.85, 0.82, 0.4};           // brass handle
    // Name plate: high-contrast stripes, a per-door "number".
    if (ds > 0.3 && ds < 0.7 && v > 0.52 && v < 0.62) {
      const double glyph =
          std::sin(ds * (40.0 + 50.0 * hash_to_unit(hash_combine(door_seed, 7)))) >
                  0.2
              ? 0.95
              : 0.1;
      return {glyph, glyph, glyph};
    }
    return {door * hr, door * hg, door * hb};
  }

  // Posters / signage: hash-positioned rectangles with saturated colors and
  // a per-poster pattern — the visual landmarks frame matching latches onto.
  const double wall_len = wall.seg.length();
  const int n_posters = static_cast<int>(wall_len / 1.8 * density);
  for (int j = 0; j < n_posters; ++j) {
    const std::uint64_t pj = hash_combine(wall.texture_seed, 0xC000u + j);
    const double pc = hash_to_unit(pj) * wall_len;
    const double pw = 0.5 + hash_to_unit(hash_u64(pj)) * 1.1;
    const double v0 = 0.3 + hash_to_unit(hash_combine(pj, 1)) * 0.25;
    const double v1 = v0 + 0.18 + hash_to_unit(hash_combine(pj, 2)) * 0.25;
    if (s > pc - pw / 2 && s < pc + pw / 2 && v > v0 && v < v1) {
      const double freq = 5.0 + hash_to_unit(hash_combine(pj, 4)) * 25.0;
      const double phase = hash_to_unit(hash_combine(pj, 6)) * 6.28;
      const double pat =
          0.5 + 0.45 * std::sin(s * freq + phase) * std::sin(v * freq * 1.7);
      // Saturated per-poster color.
      const double pr = 0.15 + 0.85 * hash_to_unit(hash_combine(pj, 8));
      const double pg = 0.15 + 0.85 * hash_to_unit(hash_combine(pj, 9));
      const double pb = 0.15 + 0.85 * hash_to_unit(hash_combine(pj, 10));
      return {std::clamp(pat * pr, 0.03, 0.97), std::clamp(pat * pg, 0.03, 0.97),
              std::clamp(pat * pb, 0.03, 0.97)};
    }
  }

  // Fine texture grain (scaled by density so Gym walls are nearly flat).
  value += (value_noise(s * 2.7, v * 2.7, wall.texture_seed) - 0.5) * 0.3 * density;
  value += (value_noise(s * 11.0, v * 11.0, hash_u64(wall.texture_seed)) - 0.5) *
           0.08 * density;
  value = std::clamp(value, 0.02, 0.98);
  return {value * tr, value * tg, value * tb};
}

double Scene::wall_texture(const Wall& wall, double s, double v) const {
  const auto rgb = wall_texture_rgb(wall, s, v);
  return 0.299 * rgb[0] + 0.587 * rgb[1] + 0.114 * rgb[2];
}

imaging::ColorImage Scene::render(const Pose2& camera, const CameraIntrinsics& intr,
                                  const Lighting& light, common::Rng& rng) const {
  imaging::ColorImage img(intr.width, intr.height);
  const double focal = intr.width / (2.0 * std::tan(intr.h_fov / 2.0));
  // Downward pitch as a vertical shear: rows shift up by focal * tan(pitch).
  const double shift = focal * std::tan(intr.pitch);
  const double brightness = std::clamp(light.lux / 300.0, 0.25, 1.2);
  const double noise_sigma =
      intr.pixel_noise * (light.incandescent ? 1.8 : 1.0) / std::sqrt(brightness);
  // Warm tint for incandescent night lighting.
  const double tint_r = light.incandescent ? 1.05 : 1.0;
  const double tint_g = light.incandescent ? 0.92 : 1.0;
  const double tint_b = light.incandescent ? 0.78 : 1.0;

  for (int c = 0; c < intr.width; ++c) {
    // Column angle: leftmost column looks to the left of the heading.
    const double angle =
        camera.theta + intr.h_fov / 2.0 - (c + 0.5) / intr.width * intr.h_fov;
    const Vec2 dir = Vec2::from_angle(angle);
    const auto hit = raycast(camera.position, dir);

    double wall_dist = 1e9;
    double y_floor = intr.height;   // row of the wall-floor boundary
    double y_ceil = -1;
    const Wall* wall = nullptr;
    double hit_s = 0.0;
    if (hit) {
      // Perpendicular ("cylindrical") distance keeps vertical lines vertical.
      wall_dist = std::max(hit->distance, 0.15);
      wall = &walls_[hit->wall_index];
      hit_s = hit->s;
      y_floor = intr.height / 2.0 + focal * intr.cam_height / wall_dist - shift;
      y_ceil = intr.height / 2.0 -
               focal * (wall_height_ - intr.cam_height) / wall_dist - shift;
    }

    for (int r = 0; r < intr.height; ++r) {
      std::array<double, 3> rgb;
      double dist;
      if (r >= y_floor) {  // floor
        const double drow = std::max(r - intr.height / 2.0 + shift, 1.0);
        dist = focal * intr.cam_height / drow;
        const Vec2 p = camera.position + dir * dist;
        const double value =
            0.42 + (value_noise(p.x * 1.3, p.y * 1.3, seed_ ^ 0xF100) - 0.5) * 0.1;
        rgb = {value * 0.95, value * 0.9, value * 0.85};
      } else if (r <= y_ceil) {  // ceiling with panel stripes
        const double drow = std::max(intr.height / 2.0 - r - shift, 1.0);
        dist = focal * (wall_height_ - intr.cam_height) / drow;
        const Vec2 p = camera.position + dir * dist;
        const double panel = std::abs(std::fmod(p.x + p.y, 1.2)) < 0.08 ? 0.6 : 0.82;
        rgb = {panel, panel, panel};
      } else if (wall != nullptr) {  // wall
        dist = wall_dist;
        const double v = (y_floor - r) / std::max(y_floor - y_ceil, 1e-9);
        rgb = wall_texture_rgb(*wall, hit_s, v);
      } else {  // escaped the building: dark haze
        rgb = {0.08, 0.08, 0.08};
        dist = 30.0;
      }
      // Distance attenuation and global brightness.
      const double atten = 1.0 / (1.0 + 0.06 * dist);
      const double gain = atten * brightness;
      auto& px = img.at(c, r);
      px[0] = static_cast<float>(rgb[0] * gain * tint_r);
      px[1] = static_cast<float>(rgb[1] * gain * tint_g);
      px[2] = static_cast<float>(rgb[2] * gain * tint_b);
    }
  }

  // Auto-exposure: smartphone cameras normalize scene luminance, so a night
  // frame is not uniformly darker — it is noisier (higher ISO) and warmer.
  double mean_lum = 0.0;
  for (int r = 0; r < intr.height; ++r) {
    for (int c = 0; c < intr.width; ++c) {
      const auto& px = img.at(c, r);
      mean_lum += 0.299 * px[0] + 0.587 * px[1] + 0.114 * px[2];
    }
  }
  mean_lum /= static_cast<double>(intr.width) * intr.height;
  const double exposure =
      std::clamp(0.45 / std::max(mean_lum, 1e-3), 0.6, 4.0);
  const double iso_noise = noise_sigma * std::sqrt(exposure);
  for (int r = 0; r < intr.height; ++r) {
    for (int c = 0; c < intr.width; ++c) {
      auto& px = img.at(c, r);
      for (int ch = 0; ch < 3; ++ch) {
        px[ch] = static_cast<float>(std::clamp(
            px[ch] * exposure + rng.normal(0.0, iso_noise), 0.0, 1.0));
      }
    }
  }
  return img;
}

}  // namespace crowdmap::sim

#include "sim/campaign.hpp"

#include <algorithm>

namespace crowdmap::sim {

namespace {

// Trims IMU samples recorded after `cutoff` (synchronized streams share the
// video clock, so a timestamp comparison is the whole truncation).
void trim_imu_after(SensorRichVideo& video, double cutoff) {
  auto& samples = video.imu.samples;
  while (!samples.empty() && samples.back().t > cutoff) samples.pop_back();
}

// Damages one upload per the adversarial plan. `adv_rng` is a dedicated
// per-video stream: the base campaign never observes these draws.
void apply_adversarial(SensorRichVideo& video, const AdversarialOptions& adv,
                       common::Rng adv_rng) {
  if (adv_rng.chance(adv.truncate_fraction) &&
      video.frames.size() > adv.min_keep_frames) {
    const double frac = adv_rng.uniform(0.4, 0.8);
    const std::size_t keep = std::max(
        adv.min_keep_frames,
        static_cast<std::size_t>(frac *
                                 static_cast<double>(video.frames.size())));
    if (keep < video.frames.size()) {
      video.frames.resize(keep);
      trim_imu_after(video, video.frames.back().t);
    }
  }
  if (adv_rng.chance(adv.dropout_fraction) && !video.frames.empty()) {
    // The camera keeps rolling but the IMU dies partway through.
    const double span = video.frames.back().t - video.frames.front().t;
    const double cutoff =
        video.frames.front().t + adv_rng.uniform(0.5, 0.9) * span;
    trim_imu_after(video, cutoff);
  }
}

}  // namespace

void generate_campaign_streaming(
    const FloorPlanSpec& spec, const CampaignOptions& options, std::uint64_t seed,
    const std::function<void(SensorRichVideo&&)>& sink) {
  const Scene scene = Scene::from_spec(spec, seed);

  common::Rng rng(seed);
  // One persistent simulator per user so per-user sensor biases persist
  // across that user's uploads.
  std::vector<UserSimulator> users;
  users.reserve(static_cast<std::size_t>(std::max(options.users, 1)));
  for (int u = 0; u < std::max(options.users, 1); ++u) {
    SimOptions sim = options.sim;
    // Per-user gait variation.
    common::Rng user_rng = rng.stream(0x5EED0000u + static_cast<std::uint64_t>(u));
    sim.walk_speed *= user_rng.uniform(0.85, 1.15);
    sim.step_frequency *= user_rng.uniform(0.92, 1.08);
    users.emplace_back(scene, spec, sim, user_rng.fork());
  }

  auto lighting = [&rng, &options] {
    return rng.chance(options.night_fraction) ? Lighting::night()
                                              : Lighting::day();
  };
  // Campaign-wide upload ids: each simulator numbers its own videos from 0,
  // which would collide across users; the cloud side (and the S2 memo cache)
  // relies on upload identity being unique.
  int next_video_id = 0;
  int user_cursor = 0;
  auto next_user = [&]() -> std::pair<UserSimulator&, int> {
    const int id = user_cursor;
    UserSimulator& u = users[static_cast<std::size_t>(user_cursor)];
    user_cursor = (user_cursor + 1) % static_cast<int>(users.size());
    return {u, id};
  };

  // Room visits.
  for (const auto& room : spec.rooms) {
    for (int k = 0; k < options.room_videos_per_room; ++k) {
      auto [user, id] = next_user();
      auto video = user.room_visit(room, options.hallway_distance, lighting());
      video.user_id = id;
      video.video_id = next_video_id++;
      if (options.adversarial.enabled()) {
        apply_adversarial(
            video, options.adversarial,
            rng.stream(0xADB10000u +
                       static_cast<std::uint64_t>(video.video_id)));
      }
      sink(std::move(video));
    }
  }
  // Hallway walks.
  for (int k = 0; k < options.hallway_walks; ++k) {
    auto [user, id] = next_user();
    SensorRichVideo video = rng.chance(options.junk_fraction)
                                ? user.junk_video(lighting())
                                : user.hallway_walk(lighting());
    video.user_id = id;
    video.video_id = next_video_id++;
    if (options.adversarial.enabled()) {
      apply_adversarial(
          video, options.adversarial,
          rng.stream(0xADB10000u + static_cast<std::uint64_t>(video.video_id)));
    }
    sink(std::move(video));
  }
}

Campaign generate_campaign(const FloorPlanSpec& spec,
                           const CampaignOptions& options, std::uint64_t seed) {
  Campaign campaign;
  campaign.spec = spec;
  campaign.scene = Scene::from_spec(spec, seed);
  generate_campaign_streaming(spec, options, seed,
                              [&campaign](SensorRichVideo&& video) {
                                campaign.videos.push_back(std::move(video));
                              });
  return campaign;
}

}  // namespace crowdmap::sim

// Simulated crowdsourcing users executing the paper's data-collection tasks:
// SRS (Stay-Rotate-Stay) and SWS (Stay-Walk-Stay), producing sensor-rich
// videos: rendered frames plus a noisy inertial stream (§II, §III.A).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "geometry/pose2.hpp"
#include "sensors/imu.hpp"
#include "sensors/noise.hpp"
#include "sim/scene.hpp"
#include "sim/spec.hpp"

namespace crowdmap::sim {

/// One captured video frame with its hidden ground-truth pose (evaluation
/// only; the pipeline never reads true_pose).
struct VideoFrame {
  imaging::ColorImage image;
  double t = 0.0;
  Pose2 true_pose;
};

/// A complete sensor-rich video upload: frames + synchronized IMU + the
/// geo-spatial annotation of Task 1 (building/floor).
struct SensorRichVideo {
  int user_id = 0;
  int video_id = 0;
  std::string building;
  int floor = 1;
  std::vector<VideoFrame> frames;
  sensors::ImuStream imu;
  Lighting lighting = Lighting::day();
  /// Ground truth for evaluation: room this video surveys (-1 = hallway-only).
  int true_room_id = -1;
  /// Deliberately unqualified upload (shaky camera / wrong floor).
  bool junk = false;
};

/// Motion/recording parameters of one simulated user.
struct SimOptions {
  double walk_speed = 1.2;       // m/s
  double step_frequency = 1.8;   // Hz
  double imu_rate_hz = 100.0;
  double fps = 4.0;              // video key-framing happens downstream
  double spin_duration = 10.0;   // seconds for a 360° SRS rotation
  double stay_duration = 0.8;    // stationary bookends of each task
  double heading_sway = 0.06;    // radians of gait sway
  /// Real users spread across the corridor width instead of tracing the
  /// centerline; each walk picks a lateral offset within this bound (m).
  double lateral_spread = 0.55;
  CameraIntrinsics camera;
  sensors::ImuNoiseConfig noise;
};

/// Routing over the hallway network (shortest paths along corridor
/// centerlines). Built once per building.
class HallwayRouter {
 public:
  explicit HallwayRouter(const FloorPlanSpec& spec);

  /// Way-points from `from` to `to`, both snapped onto the centerline
  /// network; empty if either snaps nowhere.
  [[nodiscard]] std::vector<Vec2> route(Vec2 from, Vec2 to) const;

  /// Nearest point on any centerline.
  [[nodiscard]] Vec2 snap(Vec2 p) const;

  /// A random point on the centerline network.
  [[nodiscard]] Vec2 random_point(common::Rng& rng) const;

  [[nodiscard]] const std::vector<geometry::Segment>& centerlines() const noexcept {
    return centerlines_;
  }

 private:
  std::vector<geometry::Segment> centerlines_;
  // Node graph: nodes are segment endpoints + pairwise intersections.
  std::vector<Vec2> nodes_;
  std::vector<std::vector<std::size_t>> adjacency_;

  [[nodiscard]] std::size_t nearest_node(Vec2 p) const;
};

/// Simulates one user's recordings in a building.
class UserSimulator {
 public:
  UserSimulator(const Scene& scene, const FloorPlanSpec& spec,
                SimOptions options, common::Rng rng);

  /// Full room-visit task: SRS spin at the room center, then walk out the
  /// door and `hallway_distance` meters along the hallway (the paper's
  /// example user story in §II).
  [[nodiscard]] SensorRichVideo room_visit(const RoomSpec& room,
                                           double hallway_distance,
                                           const Lighting& light);

  /// Hallway-only SWS walk between two random hallway points.
  [[nodiscard]] SensorRichVideo hallway_walk(const Lighting& light);

  /// Hallway SWS walk along an explicit route.
  [[nodiscard]] SensorRichVideo hallway_walk_between(Vec2 from, Vec2 to,
                                                     const Lighting& light);

  /// Unqualified upload: violently shaky camera (frames blurred and heading
  /// jittered) — exercises the pipeline's data filtering.
  [[nodiscard]] SensorRichVideo junk_video(const Lighting& light);

  /// Inertial-baseline task: the user wanders a loop inside the room, kept
  /// away from walls by furniture (random accessibility margin per side) —
  /// the motion-trace-only data CrowdInside/Jigsaw-style room estimation
  /// consumes. Fig. 8(a)(b)'s "Inertial Data" curves come from this.
  [[nodiscard]] SensorRichVideo room_wander(const RoomSpec& room,
                                            const Lighting& light);

  [[nodiscard]] const HallwayRouter& router() const noexcept { return router_; }

 private:
  /// Timed pose script: piecewise segments of (duration, motion).
  struct ScriptStep {
    enum class Kind { kStay, kWalk, kSpin } kind = Kind::kStay;
    double duration = 0.0;
    Vec2 from;
    Vec2 to;            // kWalk
    double spin_angle = 0.0;  // kSpin, radians (signed)
    double heading0 = 0.0;
  };

  [[nodiscard]] SensorRichVideo execute(const std::vector<ScriptStep>& script,
                                        const Lighting& light, bool shaky);
  [[nodiscard]] std::vector<ScriptStep> walk_script(
      const std::vector<Vec2>& waypoints, double initial_heading) const;

  const Scene& scene_;
  const FloorPlanSpec& spec_;
  SimOptions options_;
  common::Rng rng_;
  HallwayRouter router_;
  int next_video_id_ = 0;
};

}  // namespace crowdmap::sim

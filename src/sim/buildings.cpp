#include "sim/buildings.hpp"

#include <cmath>
#include <stdexcept>

namespace crowdmap::sim {

Polygon corridor(Vec2 from, Vec2 to, double width) {
  const double hw = width / 2.0;
  if (std::abs(from.y - to.y) < 1e-9) {  // horizontal
    const double x0 = std::min(from.x, to.x);
    const double x1 = std::max(from.x, to.x);
    return Polygon({{x0, from.y - hw}, {x1, from.y - hw},
                    {x1, from.y + hw}, {x0, from.y + hw}});
  }
  if (std::abs(from.x - to.x) < 1e-9) {  // vertical
    const double y0 = std::min(from.y, to.y);
    const double y1 = std::max(from.y, to.y);
    return Polygon({{from.x - hw, y0}, {from.x + hw, y0},
                    {from.x + hw, y1}, {from.x - hw, y1}});
  }
  throw std::invalid_argument("corridor centerline must be axis-aligned");
}

namespace {

/// Office above (+1) or below (-1) a horizontal corridor at height cy with
/// half-width hw; door on the corridor-facing edge.
[[nodiscard]] RoomSpec office_on_x_corridor(int id, double x, double cy, double hw,
                                            int side, double width, double depth) {
  RoomSpec r;
  r.id = id;
  r.name = "R" + std::to_string(id);
  r.width = width;
  r.depth = depth;
  r.center = {x, cy + side * (hw + depth / 2.0)};
  r.door = {x, cy + side * hw};
  return r;
}

/// Office left (-1) or right (+1) of a vertical corridor at x = cx.
[[nodiscard]] RoomSpec office_on_y_corridor(int id, double y, double cx, double hw,
                                            int side, double width, double depth) {
  RoomSpec r;
  r.id = id;
  r.name = "R" + std::to_string(id);
  r.width = depth;   // depth extends along x here
  r.depth = width;
  r.center = {cx + side * (hw + depth / 2.0), y};
  r.door = {cx + side * hw, y};
  return r;
}

}  // namespace

FloorPlanSpec lab1() {
  FloorPlanSpec spec;
  spec.name = "Lab1";
  spec.feature_density = 0.85;
  const double kw = 2.4;  // corridor width
  const double hw = kw / 2.0;
  // Main corridor along x; spur going up at x = 20.
  spec.hallways.push_back(corridor({0, 0}, {40, 0}, kw));
  spec.hallways.push_back(corridor({20, 0}, {20, 16}, kw));

  int id = 0;
  // Offices above the main corridor (skip the spur junction around x=20).
  for (const double x : {4.0, 10.0, 16.0, 25.0, 31.0, 37.0}) {
    spec.rooms.push_back(office_on_x_corridor(++id, x, 0, hw, +1, 5.0, 4.2));
  }
  // Offices below the main corridor.
  for (const double x : {5.0, 12.0, 20.0, 28.0, 35.0}) {
    spec.rooms.push_back(office_on_x_corridor(++id, x, 0, hw, -1, 5.6, 4.8));
  }
  // One large room flanking the spur (a lab space).
  spec.rooms.push_back(office_on_y_corridor(++id, 9.0, 20.0, hw, +1, 7.0, 6.0));
  return spec;
}

FloorPlanSpec lab2() {
  FloorPlanSpec spec;
  spec.name = "Lab2";
  spec.feature_density = 0.8;
  const double kw = 2.4;
  const double hw = kw / 2.0;
  // L-shaped corridor.
  spec.hallways.push_back(corridor({0, 0}, {30, 0}, kw));
  spec.hallways.push_back(corridor({30, 0}, {30, 20}, kw));

  int id = 100;
  for (const double x : {3.5, 9.5, 15.5, 21.5}) {
    spec.rooms.push_back(office_on_x_corridor(++id, x, 0, hw, +1, 4.6, 4.0));
  }
  for (const double x : {6.0, 14.0, 22.0}) {
    spec.rooms.push_back(office_on_x_corridor(++id, x, 0, hw, -1, 6.2, 5.0));
  }
  for (const double y : {5.0, 11.0, 17.0}) {
    spec.rooms.push_back(office_on_y_corridor(++id, y, 30.0, hw, -1, 4.4, 4.4));
  }
  return spec;
}

FloorPlanSpec gym() {
  FloorPlanSpec spec;
  spec.name = "Gym";
  spec.feature_density = 0.42;  // featureless walls (labs are ~0.8)
  const double kw = 4.0;        // wide circulation
  const double hw = kw / 2.0;
  // U-shaped circulation around a central hall.
  spec.hallways.push_back(corridor({0, 0}, {36, 0}, kw));
  spec.hallways.push_back(corridor({0, 0}, {0, 24}, kw));
  spec.hallways.push_back(corridor({36, 0}, {36, 24}, kw));

  int id = 200;
  // Sporadic large rooms.
  spec.rooms.push_back(office_on_x_corridor(++id, 8.0, 0, hw, -1, 12.0, 9.0));
  spec.rooms.push_back(office_on_x_corridor(++id, 26.0, 0, hw, -1, 10.0, 8.0));
  spec.rooms.push_back(office_on_y_corridor(++id, 10.0, 0.0, hw, -1, 8.0, 6.5));
  spec.rooms.push_back(office_on_y_corridor(++id, 20.0, 36.0, hw, +1, 9.0, 7.0));
  spec.rooms.push_back(office_on_y_corridor(++id, 8.0, 36.0, hw, +1, 6.0, 5.0));
  return spec;
}

FloorPlanSpec random_building(int n_rooms, common::Rng& rng) {
  if (n_rooms < 1) throw std::invalid_argument("n_rooms must be >= 1");
  FloorPlanSpec spec;
  spec.name = "Random";
  spec.feature_density = rng.uniform(0.4, 0.9);
  const double kw = 2.4;
  const double hw = kw / 2.0;
  const double spacing = 6.5;
  const double length = spacing * ((n_rooms + 1) / 2 + 1);
  spec.hallways.push_back(corridor({0, 0}, {length, 0}, kw));
  for (int i = 0; i < n_rooms; ++i) {
    const int side = (i % 2 == 0) ? +1 : -1;
    const double x = spacing * (i / 2 + 1) + rng.uniform(-1.0, 1.0);
    const double width = rng.uniform(3.6, 6.5);
    const double depth = rng.uniform(3.4, 6.0);
    spec.rooms.push_back(
        office_on_x_corridor(i + 1, x, 0, hw, side, width, depth));
  }
  return spec;
}

}  // namespace crowdmap::sim

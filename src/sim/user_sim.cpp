#include "sim/user_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/mathutil.hpp"

namespace crowdmap::sim {

namespace {

/// Centerline of an axis-aligned corridor rectangle: midline of the long axis.
[[nodiscard]] geometry::Segment centerline_of(const Polygon& rect) {
  const auto box = rect.bounding_box();
  const Vec2 c = box.center();
  if (box.width() >= box.height()) {
    return {{box.min.x, c.y}, {box.max.x, c.y}};
  }
  return {{c.x, box.min.y}, {c.x, box.max.y}};
}

}  // namespace

HallwayRouter::HallwayRouter(const FloorPlanSpec& spec) {
  for (const auto& hall : spec.hallways) {
    centerlines_.push_back(centerline_of(hall));
  }
  // Nodes: centerline endpoints and pairwise intersections.
  auto add_node = [this](Vec2 p) -> std::size_t {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].distance_to(p) < 1e-6) return i;
    }
    nodes_.push_back(p);
    return nodes_.size() - 1;
  };
  for (const auto& cl : centerlines_) {
    add_node(cl.a);
    add_node(cl.b);
  }
  for (std::size_t i = 0; i < centerlines_.size(); ++i) {
    for (std::size_t j = i + 1; j < centerlines_.size(); ++j) {
      if (const auto p = geometry::intersect(centerlines_[i], centerlines_[j])) {
        add_node(*p);
      }
    }
  }
  // Adjacency: nodes on the same centerline, consecutive by parameter.
  adjacency_.assign(nodes_.size(), {});
  for (const auto& cl : centerlines_) {
    std::vector<std::pair<double, std::size_t>> on_line;
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      if (geometry::distance_point_segment(nodes_[n], cl) < 1e-6) {
        on_line.emplace_back(geometry::project_onto(nodes_[n], cl), n);
      }
    }
    std::sort(on_line.begin(), on_line.end());
    for (std::size_t k = 1; k < on_line.size(); ++k) {
      const std::size_t a = on_line[k - 1].second;
      const std::size_t b = on_line[k].second;
      adjacency_[a].push_back(b);
      adjacency_[b].push_back(a);
    }
  }
}

Vec2 HallwayRouter::snap(Vec2 p) const {
  Vec2 best = p;
  double best_dist = std::numeric_limits<double>::max();
  for (const auto& cl : centerlines_) {
    const double t = geometry::project_onto(p, cl);
    const Vec2 q = cl.at(t);
    const double d = p.distance_to(q);
    if (d < best_dist) {
      best_dist = d;
      best = q;
    }
  }
  return best;
}

Vec2 HallwayRouter::random_point(common::Rng& rng) const {
  if (centerlines_.empty()) return {};
  // Length-weighted segment choice.
  double total = 0.0;
  for (const auto& cl : centerlines_) total += cl.length();
  double pick = rng.uniform(0.0, total);
  for (const auto& cl : centerlines_) {
    if (pick <= cl.length()) return cl.at(pick / std::max(cl.length(), 1e-9));
    pick -= cl.length();
  }
  return centerlines_.back().b;
}

std::size_t HallwayRouter::nearest_node(Vec2 p) const {
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const double d = nodes_[i].distance_to(p);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

std::vector<Vec2> HallwayRouter::route(Vec2 from, Vec2 to) const {
  if (nodes_.empty()) return {};
  const Vec2 start = snap(from);
  const Vec2 goal = snap(to);

  // Dijkstra between the nearest graph nodes.
  const std::size_t s = nearest_node(start);
  const std::size_t g = nearest_node(goal);
  std::vector<double> dist(nodes_.size(), std::numeric_limits<double>::max());
  std::vector<std::size_t> prev(nodes_.size(), nodes_.size());
  using QE = std::pair<double, std::size_t>;
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
  dist[s] = 0.0;
  pq.push({0.0, s});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == g) break;
    for (const std::size_t v : adjacency_[u]) {
      const double nd = d + nodes_[u].distance_to(nodes_[v]);
      if (nd < dist[v]) {
        dist[v] = nd;
        prev[v] = u;
        pq.push({nd, v});
      }
    }
  }
  if (dist[g] == std::numeric_limits<double>::max() && s != g) return {};

  std::vector<Vec2> path;
  for (std::size_t cur = g; cur != nodes_.size(); cur = prev[cur]) {
    path.push_back(nodes_[cur]);
    if (cur == s) break;
  }
  std::reverse(path.begin(), path.end());

  // Splice the exact snapped endpoints, dropping a first/last graph node the
  // snap point already lies beyond (avoids walking backwards).
  auto collinear_between = [](Vec2 p, Vec2 a, Vec2 b) {
    return geometry::distance_point_segment(p, {a, b}) < 1e-6;
  };
  if (path.size() >= 2 && collinear_between(start, path[0], path[1])) {
    path.erase(path.begin());
  }
  if (path.size() >= 2 &&
      collinear_between(goal, path[path.size() - 2], path.back())) {
    path.pop_back();
  }
  path.insert(path.begin(), start);
  path.push_back(goal);
  // Deduplicate consecutive identical way-points.
  std::vector<Vec2> clean;
  for (const Vec2 p : path) {
    if (clean.empty() || clean.back().distance_to(p) > 1e-6) clean.push_back(p);
  }
  return clean;
}

UserSimulator::UserSimulator(const Scene& scene, const FloorPlanSpec& spec,
                             SimOptions options, common::Rng rng)
    : scene_(scene), spec_(spec), options_(options), rng_(rng), router_(spec) {}

namespace {

/// Offsets each waypoint perpendicular to its outgoing segment; people drift
/// within the corridor and cut corners rather than walking the centerline.
[[nodiscard]] std::vector<Vec2> laterally_offset(const std::vector<Vec2>& waypoints,
                                                 double offset) {
  if (std::abs(offset) < 1e-9 || waypoints.size() < 2) return waypoints;
  std::vector<Vec2> out;
  out.reserve(waypoints.size());
  for (std::size_t i = 0; i < waypoints.size(); ++i) {
    const Vec2 dir = i + 1 < waypoints.size()
                         ? (waypoints[i + 1] - waypoints[i]).normalized()
                         : (waypoints[i] - waypoints[i - 1]).normalized();
    out.push_back(waypoints[i] + dir.perp() * offset);
  }
  return out;
}

}  // namespace

std::vector<UserSimulator::ScriptStep> UserSimulator::walk_script(
    const std::vector<Vec2>& waypoints, double initial_heading) const {
  std::vector<ScriptStep> script;
  double heading = initial_heading;
  for (std::size_t i = 1; i < waypoints.size(); ++i) {
    const Vec2 from = waypoints[i - 1];
    const Vec2 to = waypoints[i];
    const double d = from.distance_to(to);
    if (d < 0.05) continue;
    ScriptStep step;
    step.kind = ScriptStep::Kind::kWalk;
    step.duration = d / options_.walk_speed;
    step.from = from;
    step.to = to;
    step.heading0 = heading;
    heading = (to - from).angle();
    script.push_back(step);
  }
  return script;
}

SensorRichVideo UserSimulator::execute(const std::vector<ScriptStep>& script,
                                       const Lighting& light, bool shaky) {
  SensorRichVideo video;
  video.building = spec_.name;
  video.video_id = next_video_id_++;
  video.lighting = light;
  video.junk = shaky;
  video.imu.sample_rate_hz = options_.imu_rate_hz;

  sensors::NoiseModel gyro_noise(options_.noise.gyro_white_sigma,
                                 options_.noise.gyro_bias_walk, rng_.fork());
  sensors::NoiseModel compass_noise(options_.noise.compass_white_sigma, 0.0,
                                    rng_.fork());
  // Slow magnetic disturbance field (steel structure), varies with position.
  const std::uint64_t mag_seed = rng_.next_u64();

  const double dt = 1.0 / options_.imu_rate_hz;
  const double frame_interval = 1.0 / options_.fps;
  double t = 0.0;
  double next_frame_t = 0.0;
  double prev_heading = std::numeric_limits<double>::quiet_NaN();

  // Gait amplitude tuned so the Weinberg stride matches speed/step_frequency.
  const double target_stride = options_.walk_speed / options_.step_frequency;
  const double amplitude =
      0.5 * std::pow(target_stride / 0.41, 4.0);  // (a_max - a_min) / 2

  common::Rng frame_rng = rng_.fork();

  for (const auto& step : script) {
    const double step_start = t;
    while (t - step_start < step.duration) {
      // True pose at time t within this step.
      const double frac = std::min((t - step_start) / step.duration, 1.0);
      Vec2 pos;
      double heading = step.heading0;
      double accel = 9.81;
      switch (step.kind) {
        case ScriptStep::Kind::kStay:
          pos = step.from;
          heading = step.heading0;
          accel += rng_.normal(0.0, 0.05);
          break;
        case ScriptStep::Kind::kSpin:
          pos = step.from;
          heading = step.heading0 + step.spin_angle * frac;
          accel += 0.15 * std::sin(2.0 * common::kPi * 1.1 * t) +
                   rng_.normal(0.0, 0.05);
          break;
        case ScriptStep::Kind::kWalk: {
          pos = step.from + (step.to - step.from) * frac;
          const double walk_dir = (step.to - step.from).angle();
          heading = walk_dir + options_.heading_sway *
                                   std::sin(2.0 * common::kPi *
                                            options_.step_frequency / 2.0 * t);
          accel += amplitude *
                       std::sin(2.0 * common::kPi * options_.step_frequency * t) +
                   rng_.normal(0.0, options_.noise.accel_white_sigma);
          break;
        }
      }

      // IMU sample.
      sensors::ImuSample sample;
      sample.t = t;
      sample.accel_magnitude = accel;
      const double true_rate = std::isnan(prev_heading)
                                   ? 0.0
                                   : common::angle_diff(heading, prev_heading) / dt;
      sample.gyro_z = gyro_noise.corrupt(true_rate, dt);
      const double mag_disturb =
          (value_noise(pos.x * 0.15, pos.y * 0.15, mag_seed) - 0.5) * 0.5;
      sample.compass = common::wrap_angle(
          compass_noise.corrupt(heading + mag_disturb, dt));
      video.imu.samples.push_back(sample);
      prev_heading = heading;

      // Frame capture.
      if (t >= next_frame_t) {
        Pose2 cam{pos, heading};
        if (shaky) {
          cam.theta += frame_rng.normal(0.0, 0.35);
          cam.position += {frame_rng.normal(0.0, 0.2), frame_rng.normal(0.0, 0.2)};
        }
        VideoFrame frame;
        frame.t = t;
        frame.true_pose = {pos, heading};
        frame.image = scene_.render(cam, options_.camera, light, frame_rng);
        if (shaky) {
          // Motion blur from camera shake.
          imaging::Image gray = frame.image.to_gray().box_blurred(3);
          for (int y = 0; y < gray.height(); ++y) {
            for (int x = 0; x < gray.width(); ++x) {
              auto& px = frame.image.at(x, y);
              px[0] = px[1] = px[2] = gray.at(x, y);
            }
          }
        }
        video.frames.push_back(std::move(frame));
        next_frame_t += frame_interval;
      }
      t += dt;
    }
  }
  return video;
}

SensorRichVideo UserSimulator::room_visit(const RoomSpec& room,
                                          double hallway_distance,
                                          const Lighting& light) {
  // Camera stands near the room center with a little jitter.
  const Vec2 stand = room.center + Vec2{rng_.normal(0.0, 0.25),
                                        rng_.normal(0.0, 0.25)};
  const double heading0 = rng_.uniform(-common::kPi, common::kPi);

  std::vector<ScriptStep> script;
  script.push_back({ScriptStep::Kind::kStay, options_.stay_duration, stand,
                    stand, 0.0, heading0});
  // SRS: full spin plus a small overlap margin so the panorama closes.
  ScriptStep spin;
  spin.kind = ScriptStep::Kind::kSpin;
  spin.duration = options_.spin_duration;
  spin.from = stand;
  spin.spin_angle = 2.0 * common::kPi * 1.05;
  spin.heading0 = heading0;
  script.push_back(spin);

  // Walk out the door and along the hallway.
  const Vec2 door_out = router_.snap(room.door);
  std::vector<Vec2> waypoints = {stand, room.door, door_out};
  // Extend along the hallway toward a random target, trimmed to distance.
  const Vec2 target = router_.random_point(rng_);
  auto hall_route = laterally_offset(
      router_.route(door_out, target),
      rng_.uniform(-options_.lateral_spread, options_.lateral_spread));
  double acc = 0.0;
  for (std::size_t i = 1; i < hall_route.size() && acc < hallway_distance; ++i) {
    const double d = hall_route[i].distance_to(hall_route[i - 1]);
    if (acc + d > hallway_distance) {
      const double keep = (hallway_distance - acc) / d;
      waypoints.push_back(hall_route[i - 1] +
                          (hall_route[i] - hall_route[i - 1]) * keep);
      break;
    }
    waypoints.push_back(hall_route[i]);
    acc += d;
  }
  auto walk = walk_script(waypoints, heading0 + spin.spin_angle);
  script.insert(script.end(), walk.begin(), walk.end());
  script.push_back({ScriptStep::Kind::kStay, options_.stay_duration,
                    waypoints.back(), waypoints.back(), 0.0,
                    walk.empty() ? heading0 : (waypoints.back() -
                                               waypoints[waypoints.size() - 2])
                                                  .angle()});

  SensorRichVideo video = execute(script, light, /*shaky=*/false);
  video.true_room_id = room.id;
  return video;
}

SensorRichVideo UserSimulator::hallway_walk(const Lighting& light) {
  const Vec2 from = router_.random_point(rng_);
  Vec2 to = router_.random_point(rng_);
  // Ensure a non-trivial walk.
  for (int attempt = 0; attempt < 8 && from.distance_to(to) < 6.0; ++attempt) {
    to = router_.random_point(rng_);
  }
  return hallway_walk_between(from, to, light);
}

SensorRichVideo UserSimulator::hallway_walk_between(Vec2 from, Vec2 to,
                                                    const Lighting& light) {
  const auto waypoints = laterally_offset(
      router_.route(from, to),
      rng_.uniform(-options_.lateral_spread, options_.lateral_spread));
  std::vector<ScriptStep> script;
  if (waypoints.size() >= 2) {
    const double h0 = (waypoints[1] - waypoints[0]).angle();
    script.push_back({ScriptStep::Kind::kStay, options_.stay_duration,
                      waypoints.front(), waypoints.front(), 0.0, h0});
    auto walk = walk_script(waypoints, h0);
    script.insert(script.end(), walk.begin(), walk.end());
    script.push_back({ScriptStep::Kind::kStay, options_.stay_duration,
                      waypoints.back(), waypoints.back(), 0.0,
                      (waypoints.back() - waypoints[waypoints.size() - 2]).angle()});
  }
  return execute(script, light, /*shaky=*/false);
}

SensorRichVideo UserSimulator::room_wander(const RoomSpec& room,
                                           const Lighting& light) {
  // Furniture keeps the walkable loop away from the walls: per-side margins
  // (desks, shelves — the paper's argument for visual room modeling).
  const double m_left = rng_.uniform(0.25, 0.85);
  const double m_right = rng_.uniform(0.25, 0.85);
  const double m_bottom = rng_.uniform(0.25, 0.85);
  const double m_top = rng_.uniform(0.25, 0.85);
  const double hw = std::max(room.width / 2.0 - 0.3, 0.3);
  const double hd = std::max(room.depth / 2.0 - 0.3, 0.3);
  const Vec2 bl = room.center + Vec2{-hw + m_left, -hd + m_bottom}.rotated(room.theta);
  const Vec2 br = room.center + Vec2{hw - m_right, -hd + m_bottom}.rotated(room.theta);
  const Vec2 tr = room.center + Vec2{hw - m_right, hd - m_top}.rotated(room.theta);
  const Vec2 tl = room.center + Vec2{-hw + m_left, hd - m_top}.rotated(room.theta);
  const std::vector<Vec2> waypoints = {bl, br, tr, tl, bl};

  std::vector<ScriptStep> script;
  const double h0 = (br - bl).angle();
  script.push_back({ScriptStep::Kind::kStay, options_.stay_duration, bl, bl,
                    0.0, h0});
  auto walk = walk_script(waypoints, h0);
  script.insert(script.end(), walk.begin(), walk.end());
  script.push_back({ScriptStep::Kind::kStay, options_.stay_duration, bl, bl,
                    0.0, h0});
  SensorRichVideo video = execute(script, light, /*shaky=*/false);
  video.true_room_id = room.id;
  return video;
}

SensorRichVideo UserSimulator::junk_video(const Lighting& light) {
  const Vec2 from = router_.random_point(rng_);
  const Vec2 to = router_.random_point(rng_);
  const auto waypoints = router_.route(from, to);
  std::vector<ScriptStep> script;
  if (waypoints.size() >= 2) {
    const double h0 = (waypoints[1] - waypoints[0]).angle();
    auto walk = walk_script(waypoints, h0);
    script.insert(script.end(), walk.begin(), walk.end());
  }
  return execute(script, light, /*shaky=*/true);
}

}  // namespace crowdmap::sim

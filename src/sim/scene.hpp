// Synthetic indoor scene: wall geometry with a procedural texture field, and
// a cylindrical-projection renderer producing the "video frames" the vision
// stack consumes.
//
// This module replaces the paper's real crowdsourced video. Appearance is a
// deterministic function of camera pose, wall identity and lighting, so
// frame matching, panorama stitching and layout scoring all behave the way
// they would on real footage: nearby poses look similar, distinct rooms look
// different, feature-poor buildings (Gym) yield weak descriptors.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "geometry/pose2.hpp"
#include "geometry/segment.hpp"
#include "imaging/image.hpp"
#include "sim/spec.hpp"

namespace crowdmap::sim {

using geometry::Pose2;
using geometry::Segment;

/// One opaque wall with its texture identity. Doors render as in-wall panels
/// (visually distinctive landmarks), matching how closed office doors look.
struct Wall {
  Segment seg;
  std::uint64_t texture_seed = 0;
  double door_s0 = -1.0;  // door panel interval along the wall, meters
  double door_s1 = -1.0;  // (negative = no door on this wall)
};

/// Lighting condition of a recording (paper §V.A: daylight 100–500 lux,
/// night incandescent 75–200 lux).
struct Lighting {
  double lux = 300.0;
  bool incandescent = false;  // warm tint + higher sensor noise at night

  [[nodiscard]] static Lighting day() { return {300.0, false}; }
  [[nodiscard]] static Lighting night() { return {120.0, true}; }
};

/// Camera model: the paper's 35 mm-equivalent smartphone lens with 54.4°
/// horizontal FoV. Users naturally record indoor video in portrait with the
/// phone pitched slightly down, which keeps the wall-floor boundary in frame
/// even near walls — the room-layout stage depends on seeing it.
struct CameraIntrinsics {
  int width = 120;            // portrait orientation
  int height = 160;
  double h_fov = 0.9495;      // 54.4 degrees in radians
  double cam_height = 1.5;    // meters above the floor
  double pitch = 0.15;        // radians pitched down (~8.6 degrees)
  double pixel_noise = 0.01;  // base sensor noise sigma (scaled up at night)
};

/// Smooth 2D value noise in [0,1] keyed by an integer lattice hash.
[[nodiscard]] double value_noise(double x, double y, std::uint64_t seed);

/// Renderable world built from a ground-truth spec.
class Scene {
 public:
  /// Builds walls from the spec: 4 walls per room (door panel on the door
  /// edge) and the hallway rectangle outlines. `seed` keys all textures.
  [[nodiscard]] static Scene from_spec(const FloorPlanSpec& spec,
                                       std::uint64_t seed);

  struct Hit {
    double distance = 0.0;
    std::size_t wall_index = 0;
    double s = 0.0;  // metric position along the wall
  };

  /// Nearest wall along a ray; nullopt if the ray escapes the building.
  [[nodiscard]] std::optional<Hit> raycast(Vec2 origin, Vec2 dir) const;

  /// Renders a frame from a camera pose. `rng` supplies sensor noise only;
  /// all structural appearance is deterministic in the pose.
  [[nodiscard]] imaging::ColorImage render(const Pose2& camera,
                                           const CameraIntrinsics& intr,
                                           const Lighting& light,
                                           common::Rng& rng) const;

  /// Texture value in [0,1] on a wall at (s meters along, v fraction up).
  [[nodiscard]] double wall_texture(const Wall& wall, double s, double v) const;

  /// Full RGB texture: grayscale structure from wall_texture plus per-wall
  /// tint and saturated poster colors. Location-distinctive color content is
  /// what makes the color-indexing stage (S1) informative, as in real
  /// buildings.
  [[nodiscard]] std::array<double, 3> wall_texture_rgb(const Wall& wall, double s,
                                                       double v) const;

  [[nodiscard]] const std::vector<Wall>& walls() const noexcept { return walls_; }
  [[nodiscard]] double feature_density() const noexcept { return feature_density_; }
  [[nodiscard]] double wall_height() const noexcept { return wall_height_; }

 private:
  std::vector<Wall> walls_;
  double feature_density_ = 0.8;
  double wall_height_ = 3.0;
  std::uint64_t seed_ = 0;
};

}  // namespace crowdmap::sim

// The three evaluation buildings (paper §V: Lab1, Lab2, Gym datasets) plus a
// randomized generator for property tests and ablations.
#pragma once

#include "common/rng.hpp"
#include "sim/spec.hpp"

namespace crowdmap::sim {

/// Lab building 1: comb layout — one long double-loaded corridor with a
/// perpendicular spur, 12 offices. High wall feature density.
[[nodiscard]] FloorPlanSpec lab1();

/// Lab building 2: L-shaped corridor with 10 offices. High feature density.
[[nodiscard]] FloorPlanSpec lab2();

/// Gym building: wide U-shaped circulation, 5 large sporadic rooms, and
/// feature-poor walls (the environment where the paper reports SfM failing
/// and its own room-location error peaking at 5 m).
[[nodiscard]] FloorPlanSpec gym();

/// Randomized comb-style building (for property tests / ablations):
/// `n_rooms` offices on a straight corridor, sizes jittered by `rng`.
[[nodiscard]] FloorPlanSpec random_building(int n_rooms, common::Rng& rng);

/// Corridor rectangle from a centerline (axis-aligned) and width.
[[nodiscard]] Polygon corridor(Vec2 from, Vec2 to, double width);

}  // namespace crowdmap::sim

#include "baselines/crowdinside.hpp"

#include "common/mathutil.hpp"

namespace crowdmap::baselines {

trajectory::AggregationResult aggregate_by_gps_anchor(
    std::span<const trajectory::Trajectory> trajectories,
    const GpsAnchorConfig& config, common::Rng& rng) {
  trajectory::AggregationResult result;
  result.global_pose.assign(trajectories.size(), std::nullopt);
  for (std::size_t i = 0; i < trajectories.size(); ++i) {
    const auto& traj = trajectories[i];
    if (traj.keyframes.empty()) continue;
    // Anchor: the true start position corrupted by indoor-GPS error, plus an
    // absolute heading error from the compass.
    const auto& first = traj.keyframes.front();
    const geometry::Vec2 anchor =
        first.true_position + geometry::Vec2{rng.normal(0.0, config.gps_sigma),
                                             rng.normal(0.0, config.gps_sigma)};
    const double dtheta = common::wrap_angle(
        (first.true_heading + rng.normal(0.0, config.heading_sigma)) -
        first.heading);
    // Global pose maps the trajectory's local frame so that its first
    // key-frame lands on the anchor with the (noisy) absolute heading.
    const geometry::Vec2 t = anchor - first.position.rotated(dtheta);
    result.global_pose[i] = geometry::Pose2{t, dtheta};
    ++result.placed_count;
  }
  return result;
}

}  // namespace crowdmap::baselines

#include "baselines/inertial_room.hpp"

#include "geometry/obb.hpp"

namespace crowdmap::baselines {

std::optional<InertialRoomEstimate> estimate_room_inertial(
    std::span<const geometry::Vec2> trace) {
  const auto box = geometry::oriented_bounding_box(trace);
  if (!box) return std::nullopt;
  InertialRoomEstimate est;
  est.width = box->width;
  est.depth = box->depth;
  est.orientation = box->orientation;
  est.center = box->center;
  return est;
}

}  // namespace crowdmap::baselines

// Simulated Structure-from-Motion front-end (the Jigsaw comparison of Fig. 9
// and §V.D). Real SfM degrades sharply in cluttered, featureless indoor
// scenes [28]; we model per-frame camera-pose recovery whose error grows as
// detected feature counts fall, with gross failures below a feature floor.
// Feature counts come from the *actual* SURF detector on the frames, so the
// Lab (textured) vs Gym (featureless) contrast emerges from the data.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "geometry/pose2.hpp"
#include "trajectory/trajectory.hpp"

namespace crowdmap::baselines {

struct SfmConfig {
  double error_scale = 12.0;       // meters of sigma per 1/feature
  int feature_floor = 10;          // below this, registration may fail
  double gross_failure_prob = 0.6; // chance a weak frame gets a wild pose
  double gross_error_radius = 8.0; // meters for failed registrations
};

/// One simulated SfM camera estimate.
struct SfmPose {
  geometry::Pose2 estimated;
  geometry::Pose2 truth;
  std::size_t feature_count = 0;
  bool registered = true;  // false = SfM dropped/mis-registered the view
};

/// Simulates SfM camera recovery for a trajectory's key-frames.
[[nodiscard]] std::vector<SfmPose> simulate_sfm_poses(
    const trajectory::Trajectory& traj, const SfmConfig& config,
    common::Rng& rng);

/// Mean position error of the registered poses after rigidly aligning them
/// onto the truth (SfM's gauge freedom removed, as a real evaluation would).
[[nodiscard]] double mean_aligned_error(const std::vector<SfmPose>& poses);

}  // namespace crowdmap::baselines

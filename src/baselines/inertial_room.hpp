// Inertial-only room layout baseline (the Jigsaw/CrowdInside approach the
// paper compares against in Fig. 8a–8b): room shape = oriented bounding box
// of the user's in-room motion trace. Underestimates systematically because
// furniture keeps users away from walls — the paper's core argument for
// visual room modeling.
#pragma once

#include <optional>
#include <span>

#include "geometry/vec2.hpp"

namespace crowdmap::baselines {

struct InertialRoomEstimate {
  double width = 0.0;
  double depth = 0.0;
  double orientation = 0.0;  // radians of the principal axis
  geometry::Vec2 center;

  [[nodiscard]] double area() const noexcept { return width * depth; }
  [[nodiscard]] double aspect_ratio() const noexcept {
    return depth > 0 ? width / depth : 0.0;
  }
};

/// PCA-oriented bounding box of the trace points; nullopt for < 3 points.
[[nodiscard]] std::optional<InertialRoomEstimate> estimate_room_inertial(
    std::span<const geometry::Vec2> trace);

}  // namespace crowdmap::baselines

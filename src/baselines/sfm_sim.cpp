#include "baselines/sfm_sim.hpp"

#include <algorithm>
#include <cmath>

#include "common/mathutil.hpp"

namespace crowdmap::baselines {

std::vector<SfmPose> simulate_sfm_poses(const trajectory::Trajectory& traj,
                                        const SfmConfig& config,
                                        common::Rng& rng) {
  std::vector<SfmPose> poses;
  poses.reserve(traj.keyframes.size());
  for (const auto& kf : traj.keyframes) {
    SfmPose pose;
    pose.truth = {kf.true_position, kf.true_heading};
    pose.feature_count = kf.surf.size();
    const double n = static_cast<double>(std::max<std::size_t>(pose.feature_count, 1));
    if (pose.feature_count < static_cast<std::size_t>(config.feature_floor) &&
        rng.chance(config.gross_failure_prob)) {
      // Mis-registration: the view latched onto the wrong (but similar-
      // looking) part of the scene.
      pose.registered = false;
      pose.estimated = {
          kf.true_position + geometry::Vec2{rng.normal(0.0, config.gross_error_radius),
                                            rng.normal(0.0, config.gross_error_radius)},
          common::wrap_angle(kf.true_heading + rng.uniform(-common::kPi, common::kPi))};
    } else {
      const double sigma = config.error_scale / n;
      pose.estimated = {
          kf.true_position +
              geometry::Vec2{rng.normal(0.0, sigma), rng.normal(0.0, sigma)},
          common::wrap_angle(kf.true_heading + rng.normal(0.0, sigma * 0.3))};
    }
    poses.push_back(pose);
  }
  return poses;
}

double mean_aligned_error(const std::vector<SfmPose>& poses) {
  // Rigid (Kabsch) alignment of estimated onto truth, then residual mean.
  std::vector<geometry::Vec2> from;
  std::vector<geometry::Vec2> to;
  for (const auto& p : poses) {
    from.push_back(p.estimated.position);
    to.push_back(p.truth.position);
  }
  if (from.size() < 2) return 0.0;
  geometry::Vec2 cf;
  geometry::Vec2 ct;
  for (std::size_t i = 0; i < from.size(); ++i) {
    cf += from[i];
    ct += to[i];
  }
  cf = cf / static_cast<double>(from.size());
  ct = ct / static_cast<double>(to.size());
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < from.size(); ++i) {
    const geometry::Vec2 p = from[i] - cf;
    const geometry::Vec2 q = to[i] - ct;
    sxx += p.dot(q);
    sxy += p.cross(q);
  }
  const double theta = std::atan2(sxy, sxx);
  double acc = 0.0;
  for (std::size_t i = 0; i < from.size(); ++i) {
    const geometry::Vec2 aligned = (from[i] - cf).rotated(theta) + ct;
    acc += aligned.distance_to(to[i]);
  }
  return acc / static_cast<double>(from.size());
}

}  // namespace crowdmap::baselines

// CrowdInside-style trace-only aggregation baseline: trajectories are placed
// by coarse absolute anchors (last-known GPS fix + compass) instead of
// visual key-frame matching. Indoor GPS is meters-noisy, so the resulting
// occupancy map is blurred — the contrast motivating CrowdMap's key-frame
// anchoring (§VII).
#pragma once

#include <span>

#include "common/rng.hpp"
#include "trajectory/aggregate.hpp"
#include "trajectory/trajectory.hpp"

namespace crowdmap::baselines {

struct GpsAnchorConfig {
  double gps_sigma = 4.0;       // meters of anchor error (indoor GPS)
  double heading_sigma = 0.15;  // radians of absolute-orientation error
};

/// Places every trajectory independently by a noisy absolute anchor at its
/// start (truth + GPS noise). All trajectories are "placed"; no matching is
/// performed.
[[nodiscard]] trajectory::AggregationResult aggregate_by_gps_anchor(
    std::span<const trajectory::Trajectory> trajectories,
    const GpsAnchorConfig& config, common::Rng& rng);

}  // namespace crowdmap::baselines

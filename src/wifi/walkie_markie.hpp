// Walkie-Markie-style baseline (Shen et al., NSDI'13; the paper's §VII):
// trajectories are aggregated on *Wi-Fi-Marks* — the points where an AP's
// RSSI trend reverses, i.e. the walker's closest approach to the AP —
// instead of CrowdMap's visual key-frame anchors. Marks are coarse (meters
// of RSSI noise) but free of cameras; the comparison bench quantifies what
// the visual anchors buy.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "trajectory/incremental.hpp"
#include "trajectory/trajectory.hpp"
#include "wifi/model.hpp"

namespace crowdmap::wifi {

/// One detected Wi-Fi-Mark on a trajectory.
struct WifiMark {
  int ap_id = 0;
  std::size_t keyframe_index = 0;  // where the RSSI peaked
  double peak_rssi = 0.0;
  double prominence_db = 0.0;      // peak above the trace's edges
};

struct MarkDetectionParams {
  double min_prominence_db = 6.0;  // trend reversal must be this pronounced
  double min_peak_dbm = -80.0;     // too-faint peaks are unreliable
};

/// Samples the AP at the trajectory's key-frame times (Wi-Fi scan rate is
/// ~1 Hz, like our key-frames) and returns the marks. RSSI is measured at
/// the walker's true position — the radio doesn't care about dead-reckoning
/// error — with per-scan noise from `rng`.
[[nodiscard]] std::vector<WifiMark> detect_marks(
    const trajectory::Trajectory& traj, const WifiModel& model,
    common::Rng& rng, const MarkDetectionParams& params = {});

struct WifiAggregationConfig {
  MarkDetectionParams marks;
  /// Two trajectories merge when >= this many shared APs' marks imply a
  /// consistent translation.
  int min_common_marks = 2;
  double consensus_dist = 4.0;  // meters between implied translations
  trajectory::AggregationConfig placement;  // spanning tree + relaxation
};

/// Aggregates trajectories on Wi-Fi-Marks alone (no vision): shared-AP mark
/// pairs imply candidate translations (compass keeps frames rotation-
/// aligned, as Walkie-Markie assumes); consistent candidates become edges in
/// the same pose graph CrowdMap uses.
[[nodiscard]] trajectory::AggregationResult aggregate_by_wifi_marks(
    std::span<const trajectory::Trajectory> trajectories, const WifiModel& model,
    const WifiAggregationConfig& config, common::Rng& rng);

}  // namespace crowdmap::wifi

// Wi-Fi propagation substrate: access points and a log-distance path-loss
// model with wall attenuation and position-stable shadow fading. The paper's
// related work (§VII) contrasts CrowdMap's visual anchors with Wi-Fi-based
// systems (Walkie-Markie [6], room fingerprints [7]); this module provides
// the radio environment those baselines need.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "geometry/segment.hpp"
#include "geometry/vec2.hpp"
#include "sim/spec.hpp"

namespace crowdmap::wifi {

using geometry::Vec2;

/// One deployed access point.
struct AccessPoint {
  int id = 0;
  Vec2 position;
  double tx_dbm = -40.0;  // received power at 1 m
};

struct PropagationParams {
  double path_loss_exponent = 2.6;  // indoor with obstacles
  double wall_attenuation_db = 4.0; // per wall crossed
  double shadow_sigma_db = 3.0;     // position-stable (log-normal shadowing)
  double noise_sigma_db = 2.0;      // per-measurement
  double sensitivity_dbm = -92.0;   // below this the AP is not heard
};

/// The radio environment of a floor.
class WifiModel {
 public:
  WifiModel(std::vector<AccessPoint> aps, std::vector<geometry::Segment> walls,
            PropagationParams params, std::uint64_t seed);

  /// RSSI of one AP at a position (dBm), with measurement noise from `rng`.
  /// Returns sensitivity_dbm when out of range.
  [[nodiscard]] double rssi(const AccessPoint& ap, Vec2 p,
                            common::Rng& rng) const;

  /// Full scan: one RSSI per AP, ordered by AP index.
  [[nodiscard]] std::vector<double> scan(Vec2 p, common::Rng& rng) const;

  [[nodiscard]] const std::vector<AccessPoint>& access_points() const noexcept {
    return aps_;
  }
  [[nodiscard]] const PropagationParams& params() const noexcept {
    return params_;
  }

 private:
  [[nodiscard]] int walls_crossed(Vec2 a, Vec2 b) const;
  [[nodiscard]] double shadowing(int ap_id, Vec2 p) const;

  std::vector<AccessPoint> aps_;
  std::vector<geometry::Segment> walls_;
  PropagationParams params_;
  std::uint64_t seed_;
};

/// Deploys `count` access points spread along the building's hallway
/// centerlines (where campus APs live).
[[nodiscard]] std::vector<AccessPoint> place_access_points(
    const sim::FloorPlanSpec& spec, int count, std::uint64_t seed);

}  // namespace crowdmap::wifi

#include "wifi/walkie_markie.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace crowdmap::wifi {

std::vector<WifiMark> detect_marks(const trajectory::Trajectory& traj,
                                   const WifiModel& model, common::Rng& rng,
                                   const MarkDetectionParams& params) {
  std::vector<WifiMark> marks;
  const auto& kfs = traj.keyframes;
  if (kfs.size() < 3) return marks;
  for (const auto& ap : model.access_points()) {
    // RSSI trace along the walk, measured at true positions.
    std::vector<double> trace;
    trace.reserve(kfs.size());
    for (const auto& kf : kfs) {
      trace.push_back(model.rssi(ap, kf.true_position, rng));
    }
    // Peak and its prominence over the trace edges.
    std::size_t peak = 0;
    for (std::size_t i = 1; i < trace.size(); ++i) {
      if (trace[i] > trace[peak]) peak = i;
    }
    if (peak == 0 || peak + 1 == trace.size()) continue;  // monotone: no mark
    const double edge = std::max(trace.front(), trace.back());
    const double prominence = trace[peak] - edge;
    if (prominence < params.min_prominence_db ||
        trace[peak] < params.min_peak_dbm) {
      continue;
    }
    marks.push_back({ap.id, peak, trace[peak], prominence});
  }
  return marks;
}

trajectory::AggregationResult aggregate_by_wifi_marks(
    std::span<const trajectory::Trajectory> trajectories, const WifiModel& model,
    const WifiAggregationConfig& config, common::Rng& rng) {
  const std::size_t n = trajectories.size();
  // Per-trajectory marks.
  std::vector<std::vector<WifiMark>> marks;
  marks.reserve(n);
  for (const auto& traj : trajectories) {
    marks.push_back(detect_marks(traj, model, rng, config.marks));
  }

  // Pairwise: shared APs imply candidate translations (dead-reckoned frames
  // are compass-aligned, so rotation is ~0 — the Walkie-Markie assumption).
  std::vector<trajectory::MatchEdge> edges;
  for (std::size_t i = 0; i < n; ++i) {
    std::map<int, const WifiMark*> by_ap;
    for (const auto& m : marks[i]) by_ap[m.ap_id] = &m;
    for (std::size_t j = i + 1; j < n; ++j) {
      std::vector<geometry::Vec2> translations;
      for (const auto& mj : marks[j]) {
        const auto it = by_ap.find(mj.ap_id);
        if (it == by_ap.end()) continue;
        const auto& mi = *it->second;
        translations.push_back(
            trajectories[i].keyframes[mi.keyframe_index].position -
            trajectories[j].keyframes[mj.keyframe_index].position);
      }
      if (static_cast<int>(translations.size()) < config.min_common_marks) {
        continue;
      }
      // Consensus: the largest cluster of mutually close translations.
      std::size_t best_support = 0;
      geometry::Vec2 best_mean;
      for (const auto& candidate : translations) {
        geometry::Vec2 sum;
        std::size_t support = 0;
        for (const auto& other : translations) {
          if (candidate.distance_to(other) <= config.consensus_dist) {
            sum += other;
            ++support;
          }
        }
        if (support > best_support) {
          best_support = support;
          best_mean = sum / static_cast<double>(support);
        }
      }
      if (static_cast<int>(best_support) < config.min_common_marks) continue;
      trajectory::MatchEdge edge;
      edge.a = i;
      edge.b = j;
      edge.b_to_a = geometry::Pose2{best_mean, 0.0};
      edge.s3 = static_cast<double>(best_support) /
                static_cast<double>(translations.size());
      edge.anchor_count = best_support;
      edges.push_back(edge);
    }
  }
  return trajectory::place_edges(n, std::move(edges), config.placement);
}

}  // namespace crowdmap::wifi

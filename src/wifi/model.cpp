#include "wifi/model.hpp"

#include <algorithm>
#include <cmath>

#include "sim/scene.hpp"

namespace crowdmap::wifi {

WifiModel::WifiModel(std::vector<AccessPoint> aps,
                     std::vector<geometry::Segment> walls,
                     PropagationParams params, std::uint64_t seed)
    : aps_(std::move(aps)), walls_(std::move(walls)), params_(params),
      seed_(seed) {}

int WifiModel::walls_crossed(Vec2 a, Vec2 b) const {
  int crossings = 0;
  const geometry::Segment link{a, b};
  for (const auto& wall : walls_) {
    if (geometry::intersect(link, wall)) ++crossings;
  }
  return crossings;
}

double WifiModel::shadowing(int ap_id, Vec2 p) const {
  // Position-stable log-normal shadowing via smooth value noise keyed by the
  // AP: the same spot always measures the same bias, as in reality.
  const double u = sim::value_noise(
      p.x * 0.35, p.y * 0.35,
      common::hash_combine(seed_, static_cast<std::uint64_t>(ap_id)));
  return (u - 0.5) * 2.0 * params_.shadow_sigma_db * 1.73;  // ~sigma std
}

double WifiModel::rssi(const AccessPoint& ap, Vec2 p, common::Rng& rng) const {
  const double d = std::max(ap.position.distance_to(p), 0.5);
  double level = ap.tx_dbm - 10.0 * params_.path_loss_exponent * std::log10(d);
  level -= params_.wall_attenuation_db * walls_crossed(ap.position, p);
  level += shadowing(ap.id, p);
  level += rng.normal(0.0, params_.noise_sigma_db);
  return std::max(level, params_.sensitivity_dbm);
}

std::vector<double> WifiModel::scan(Vec2 p, common::Rng& rng) const {
  std::vector<double> out;
  out.reserve(aps_.size());
  for (const auto& ap : aps_) out.push_back(rssi(ap, p, rng));
  return out;
}

std::vector<AccessPoint> place_access_points(const sim::FloorPlanSpec& spec,
                                             int count, std::uint64_t seed) {
  std::vector<AccessPoint> aps;
  if (count <= 0) return aps;
  // Collect hallway centerline length and place APs at even arc-length
  // intervals with a small jitter.
  std::vector<geometry::Segment> centerlines;
  double total = 0.0;
  for (const auto& hall : spec.hallways) {
    const auto box = hall.bounding_box();
    const Vec2 c = box.center();
    const geometry::Segment line =
        box.width() >= box.height()
            ? geometry::Segment{{box.min.x, c.y}, {box.max.x, c.y}}
            : geometry::Segment{{c.x, box.min.y}, {c.x, box.max.y}};
    centerlines.push_back(line);
    total += line.length();
  }
  common::Rng rng(seed);
  for (int k = 0; k < count; ++k) {
    double target = (k + 0.5) * total / count + rng.uniform(-1.0, 1.0);
    target = std::clamp(target, 0.0, total - 1e-6);
    for (const auto& line : centerlines) {
      if (target <= line.length()) {
        AccessPoint ap;
        ap.id = k;
        ap.position = line.at(target / std::max(line.length(), 1e-9));
        aps.push_back(ap);
        break;
      }
      target -= line.length();
    }
  }
  return aps;
}

}  // namespace crowdmap::wifi

#include "cache/serialize.hpp"

namespace crowdmap::cache {

namespace {

constexpr std::uint32_t kCacheMagic = 0x434D4331;  // "CMC1"
constexpr std::uint32_t kCacheVersion = 1;

/// Sanity bounds: malformed length fields must not trigger giant
/// allocations.
constexpr std::uint64_t kMaxEntries = 1u << 22;
constexpr std::uint64_t kMaxPayload = 256u * 1024u * 1024u;

}  // namespace

io::Bytes encode_artifact_cache(const std::vector<ArtifactEntry>& entries) {
  io::Writer w;
  w.u32(kCacheMagic);
  w.u32(kCacheVersion);
  w.u64(entries.size());
  for (const auto& entry : entries) {
    w.u8(static_cast<std::uint8_t>(entry.family));
    w.u64(entry.key.hi);
    w.u64(entry.key.lo);
    w.u64(entry.payload.size());
    w.bytes_raw(entry.payload);
  }
  return std::move(w).take();
}

std::vector<ArtifactEntry> decode_artifact_cache(const io::Bytes& data) {
  io::Reader r(data);
  if (r.u32() != kCacheMagic) throw io::DecodeError("not an artifact cache");
  if (r.u32() != kCacheVersion) {
    throw io::DecodeError("unsupported artifact cache version");
  }
  const std::uint64_t n = r.u64();
  if (n > kMaxEntries) {
    throw io::DecodeError("implausible artifact cache entry count");
  }
  std::vector<ArtifactEntry> entries;
  entries.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ArtifactEntry entry;
    const std::uint8_t family = r.u8();
    if (family >= kFamilyCount) {
      throw io::DecodeError("unknown artifact family");
    }
    entry.family = static_cast<Family>(family);
    entry.key.hi = r.u64();
    entry.key.lo = r.u64();
    const std::uint64_t size = r.u64();
    if (size > kMaxPayload) {
      throw io::DecodeError("implausible artifact payload");
    }
    entry.payload.reserve(size);
    for (std::uint64_t b = 0; b < size; ++b) entry.payload.push_back(r.u8());
    entries.push_back(std::move(entry));
  }
  if (!r.exhausted()) {
    throw io::DecodeError("trailing bytes after artifact cache");
  }
  return entries;
}

common::Expected<std::vector<ArtifactEntry>> try_decode_artifact_cache(
    const io::Bytes& data) {
  return io::expected_decode([&] { return decode_artifact_cache(data); });
}

}  // namespace crowdmap::cache

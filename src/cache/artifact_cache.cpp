#include "cache/artifact_cache.hpp"

#include <algorithm>
#include <bit>

#include "obs/flight.hpp"

namespace crowdmap::cache {

void KeyBuilder::f64(double v) noexcept {
  u64(std::bit_cast<std::uint64_t>(v));
}

std::string_view family_name(Family family) noexcept {
  switch (family) {
    case Family::kPairMatch:
      return "pair";
    case Family::kRoom:
      return "room";
    case Family::kSkeleton:
      return "skeleton";
    case Family::kArrange:
      return "arrange";
  }
  return "unknown";
}

ArtifactCache::ArtifactCache(std::size_t capacity_bytes, std::size_t shards)
    : capacity_bytes_(capacity_bytes),
      shards_(std::max<std::size_t>(1, shards)) {
  per_shard_bytes_ = std::max<std::size_t>(1, capacity_bytes_ / shards_.size());
}

std::optional<std::vector<std::uint8_t>> ArtifactCache::lookup(
    Family family, const ArtifactKey& key) {
  Shard& shard = shard_for(key);
  const std::size_t f = static_cast<std::size_t>(family);
  {
    common::MutexLock lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      family_hits_[f].fetch_add(1, std::memory_order_relaxed);
      if (flight_ != nullptr) {
        flight_->record(obs::FlightEventKind::kCacheHit,
                        static_cast<std::uint32_t>(f), key.hi, key.lo);
      }
      return it->second.payload;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  family_misses_[f].fetch_add(1, std::memory_order_relaxed);
  if (flight_ != nullptr) {
    flight_->record(obs::FlightEventKind::kCacheMiss,
                    static_cast<std::uint32_t>(f), key.hi, key.lo);
  }
  return std::nullopt;
}

void ArtifactCache::insert(Family family, const ArtifactKey& key,
                           std::vector<std::uint8_t> payload) {
  (void)insert_impl(family, key, std::move(payload), /*allow_fault=*/true);
}

bool ArtifactCache::insert_impl(Family family, const ArtifactKey& key,
                                std::vector<std::uint8_t> payload,
                                bool allow_fault) {
  if (allow_fault && injector_ != nullptr &&
      injector_->should_fire(common::faults::kArtifactCacheEvict, key.lo)) {
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    if (flight_ != nullptr) {
      flight_->record(obs::FlightEventKind::kCacheEvict,
                      static_cast<std::uint32_t>(family), key.hi, key.lo);
    }
    return false;
  }
  if (payload.size() > per_shard_bytes_) {
    // Oversized artifact can never fit its shard: refuse rather than flush
    // the whole shard for an entry that would be evicted immediately anyway.
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Shard& shard = shard_for(key);
  std::uint64_t evicted = 0;
  {
    common::MutexLock lock(shard.mutex);
    if (shard.map.find(key) != shard.map.end()) return true;  // first wins
    while (!shard.order.empty() &&
           shard.bytes + payload.size() > per_shard_bytes_) {
      const ArtifactKey victim = shard.order.front();
      shard.order.pop_front();
      const auto it = shard.map.find(victim);
      if (it != shard.map.end()) {
        if (flight_ != nullptr) {
          flight_->record(obs::FlightEventKind::kCacheEvict,
                          static_cast<std::uint32_t>(it->second.family),
                          victim.hi, victim.lo);
        }
        shard.bytes -= it->second.payload.size();
        shard.map.erase(it);
        ++evicted;
      }
    }
    shard.bytes += payload.size();
    shard.order.push_back(key);
    shard.map.emplace(key, Entry{family, std::move(payload)});
  }
  if (evicted != 0) {
    invalidations_.fetch_add(evicted, std::memory_order_relaxed);
  }
  return true;
}

void ArtifactCache::clear() {
  std::uint64_t dropped = 0;
  for (Shard& shard : shards_) {
    common::MutexLock lock(shard.mutex);
    dropped += shard.map.size();
    shard.map.clear();
    shard.order.clear();
    shard.bytes = 0;
  }
  if (dropped != 0) {
    invalidations_.fetch_add(dropped, std::memory_order_relaxed);
  }
}

std::vector<ArtifactEntry> ArtifactCache::export_entries() const {
  std::vector<ArtifactEntry> out;
  for (const Shard& shard : shards_) {
    common::MutexLock lock(shard.mutex);
    for (const auto& [key, entry] : shard.map) {
      out.push_back(ArtifactEntry{entry.family, key, entry.payload});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ArtifactEntry& a, const ArtifactEntry& b) {
              if (a.family != b.family) return a.family < b.family;
              return a.key < b.key;
            });
  return out;
}

std::size_t ArtifactCache::restore(const std::vector<ArtifactEntry>& entries) {
  std::size_t retained = 0;
  for (const ArtifactEntry& entry : entries) {
    if (insert_impl(entry.family, entry.key, entry.payload,
                    /*allow_fault=*/false)) {
      ++retained;
    }
  }
  return retained;
}

ArtifactCacheStats ArtifactCache::stats() const {
  ArtifactCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.invalidations = invalidations_.load(std::memory_order_relaxed);
  for (std::size_t f = 0; f < kFamilyCount; ++f) {
    out.family_hits[f] = family_hits_[f].load(std::memory_order_relaxed);
    out.family_misses[f] = family_misses_[f].load(std::memory_order_relaxed);
  }
  for (const Shard& shard : shards_) {
    common::MutexLock lock(shard.mutex);
    out.entries += shard.map.size();
    out.bytes += shard.bytes;
  }
  return out;
}

}  // namespace crowdmap::cache

// Versioned binary codec for artifact-cache snapshots ("CMC1"): the
// persistence half of incremental recomputation (docs/INCREMENTAL.md). A
// restarted CrowdMapService decodes a previously exported snapshot out of
// its DocumentStore and warms the cache, so the first refresh after a
// restart reuses artifacts instead of recomputing the corpus. Entries
// round-trip exactly (keys and payload bytes verbatim). Lives with the
// cache types (not in io/) so serialization never pulls domain modules
// into the io layer — see docs/STATIC_ANALYSIS.md for the layering
// contract.
#pragma once

#include <vector>

#include "cache/artifact_cache.hpp"
#include "io/serialize.hpp"

namespace crowdmap::cache {

/// Artifact-cache contents <-> bytes.
[[nodiscard]] io::Bytes encode_artifact_cache(
    const std::vector<ArtifactEntry>& entries);
[[nodiscard]] std::vector<ArtifactEntry> decode_artifact_cache(
    const io::Bytes& data);

/// Non-throwing variant for callers that degrade on malformed input: a
/// DecodeError becomes an Error with code "io.decode".
[[nodiscard]] common::Expected<std::vector<ArtifactEntry>>
try_decode_artifact_cache(const io::Bytes& data);

}  // namespace crowdmap::cache

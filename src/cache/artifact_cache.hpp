// Content-addressed artifact cache for incremental floor-plan recomputation
// (docs/INCREMENTAL.md). Stage outputs are stored under 128-bit keys hashed
// from the *serialized stage inputs plus the relevant PipelineConfig slice*,
// so invalidation is implicit: a changed input (new upload, different
// threshold) produces a different key and the stale entry simply stops being
// addressed — it ages out through bounded FIFO eviction.
//
// Correctness contract: a cached artifact must be the byte-exact value the
// computation would produce from the key's preimage. Every cached stage in
// this tree is a pure function of its key inputs (doubles round-trip through
// exact f64 bit patterns), so a hit can only ever trade recomputation for
// memory — never change a result. The determinism suite locks this in
// (tests/test_determinism.cpp: incremental == cold rebuild, any threads).
//
// Concurrency model mirrors common::BoundedMemoCache: the key space is split
// over independently locked shards (CM_GUARDED_BY-annotated), each bounded
// by a byte budget with FIFO eviction. An optional FaultInjector drives the
// faults::kArtifactCacheEvict chaos point: insertions keyed by the artifact
// key are deterministically refused, simulating eviction under memory
// pressure at any thread count.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/fault.hpp"

namespace crowdmap::obs {
class FlightRecorder;
}  // namespace crowdmap::obs

namespace crowdmap::cache {

/// 128-bit content hash. Two independent 64-bit streams make accidental
/// collisions negligible for any realistic corpus — a collision would break
/// the byte-identity guarantee, so 64 bits of FNV alone is not enough.
struct ArtifactKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const ArtifactKey& a, const ArtifactKey& b) noexcept {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const ArtifactKey& a, const ArtifactKey& b) noexcept {
    return !(a == b);
  }
  friend bool operator<(const ArtifactKey& a, const ArtifactKey& b) noexcept {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};

/// Streaming 128-bit hasher: feed the serialized stage inputs and config
/// fields in a fixed order, then finish(). Pure integer arithmetic over
/// explicitly little-endian framing, so keys are stable across platforms,
/// processes and thread counts.
class KeyBuilder {
 public:
  KeyBuilder() noexcept = default;

  void byte(std::uint8_t v) noexcept {
    // Stream 1: FNV-1a/64. Stream 2: same shape, independent constants.
    s1_ = (s1_ ^ v) * 0x100000001B3ull;
    s2_ = (s2_ ^ v) * 0xC2B2AE3D27D4EB4Full;
  }
  void bytes(const std::uint8_t* data, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) byte(data[i]);
  }
  void bytes(const std::vector<std::uint8_t>& data) noexcept {
    bytes(data.data(), data.size());
  }
  void u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) noexcept { u64(static_cast<std::uint64_t>(v)); }
  /// Exact bit pattern of the double — the same discipline io::Writer::f64
  /// uses, so a config double always hashes to the same key it serializes as.
  void f64(double v) noexcept;
  void str(std::string_view s) noexcept {
    u64(s.size());
    for (const char c : s) byte(static_cast<std::uint8_t>(c));
  }

  [[nodiscard]] ArtifactKey finish() const noexcept {
    // Final avalanche so short inputs still spread over both words.
    return {mix(s1_ ^ 0x9E3779B97F4A7C15ull), mix(s2_)};
  }

 private:
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) noexcept {
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    x ^= x >> 33;
    return x;
  }

  std::uint64_t s1_ = 0xCBF29CE484222325ull;  // FNV offset basis
  std::uint64_t s2_ = 0x9AE16A3B2F90404Full;
};

/// Stage family of an artifact. Baked into the key preimage by the stage key
/// builders AND tracked per entry, so hit/miss counters can be reported per
/// stage ({stage=...} metric labels, per-stage reuse gauges).
enum class Family : std::uint8_t {
  kPairMatch = 0,  // pairwise trajectory match decisions
  kRoom = 1,       // per-candidate panorama stitch + layout estimation
  kSkeleton = 2,   // reconstructed path skeleton per occupancy-grid content
  kArrange = 3,    // force-directed room placement
};
inline constexpr std::size_t kFamilyCount = 4;

/// Metric-label name of a family ("pair", "room", "skeleton", "arrange").
[[nodiscard]] std::string_view family_name(Family family) noexcept;

/// One exported cache entry (persistence round-trip; io/serialize frames it).
struct ArtifactEntry {
  Family family = Family::kPairMatch;
  ArtifactKey key;
  std::vector<std::uint8_t> payload;
};

/// Aggregate traffic counters, total and per stage family.
struct ArtifactCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;  // FIFO + fault-forced evictions + clears
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
  std::uint64_t family_hits[kFamilyCount] = {};
  std::uint64_t family_misses[kFamilyCount] = {};
};

/// Bounded, sharded, thread-safe artifact store: ArtifactKey -> bytes.
class ArtifactCache {
 public:
  /// `capacity_bytes` bounds the summed payload bytes across all shards
  /// (each shard gets an equal slice); 0 is clamped to one byte per shard so
  /// the cache degenerates gracefully instead of dividing by zero.
  explicit ArtifactCache(std::size_t capacity_bytes, std::size_t shards = 16);

  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// Cached payload for `key`, or nullopt. Counts a hit or a miss under the
  /// entry's family.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> lookup(
      Family family, const ArtifactKey& key);

  /// Stores `payload`, evicting the shard's oldest entries until the byte
  /// budget holds. A concurrent insert of the same key keeps the first value
  /// (artifacts are pure, so both writers carry the same bytes). When a
  /// FaultInjector is attached and faults::kArtifactCacheEvict fires for
  /// this key, the insert is refused (counted as an invalidation) — the
  /// deterministic stand-in for eviction under memory pressure.
  void insert(Family family, const ArtifactKey& key,
              std::vector<std::uint8_t> payload);

  /// Arms the chaos point. Not owned; pass nullptr to detach. The injector
  /// only influences *eviction*, never a served value, so chaos plans keep
  /// the byte-identity guarantee intact.
  void set_fault_injector(common::FaultInjector* injector) noexcept {
    injector_ = injector;
  }

  /// Mirrors cache traffic into the flight recorder (cache_hit/cache_miss/
  /// cache_evict events keyed by artifact key and family). Not owned; pass
  /// nullptr to detach. The recorder must outlive the attachment.
  void set_flight_recorder(obs::FlightRecorder* flight) noexcept {
    flight_ = flight;
  }

  /// Drops every entry (counted as invalidations).
  void clear();

  /// Every live entry, ordered by (family, key) so the export is
  /// deterministic regardless of insertion interleaving.
  [[nodiscard]] std::vector<ArtifactEntry> export_entries() const;

  /// Restores exported entries (normal insert path minus the fault point;
  /// warming a restarted service must not consume chaos budget). Returns the
  /// number of entries actually retained (oversized payloads are refused).
  std::size_t restore(const std::vector<ArtifactEntry>& entries);

  [[nodiscard]] ArtifactCacheStats stats() const;
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t invalidations() const noexcept {
    return invalidations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return capacity_bytes_;
  }

 private:
  struct Entry {
    Family family = Family::kPairMatch;
    std::vector<std::uint8_t> payload;
  };
  struct Shard {
    mutable common::Mutex mutex;
    // Ordered map (not unordered): iteration order feeds export_entries(),
    // which must be deterministic for the persistence round-trip.
    std::map<ArtifactKey, Entry> map CM_GUARDED_BY(mutex);
    std::deque<ArtifactKey> order CM_GUARDED_BY(mutex);  // FIFO eviction
    std::size_t bytes CM_GUARDED_BY(mutex) = 0;
  };

  [[nodiscard]] Shard& shard_for(const ArtifactKey& key) noexcept {
    return shards_[key.lo % shards_.size()];
  }
  [[nodiscard]] const Shard& shard_for(const ArtifactKey& key) const noexcept {
    return shards_[key.lo % shards_.size()];
  }
  /// Returns true when the entry is (or already was) stored.
  bool insert_impl(Family family, const ArtifactKey& key,
                   std::vector<std::uint8_t> payload, bool allow_fault);

  std::size_t capacity_bytes_;
  std::size_t per_shard_bytes_;
  std::vector<Shard> shards_;
  common::FaultInjector* injector_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> family_hits_[kFamilyCount] = {};
  std::atomic<std::uint64_t> family_misses_[kFamilyCount] = {};
};

}  // namespace crowdmap::cache

// Byte-level serialization primitives shared by every persisted format:
// a little-endian append-only Writer, a bounds-checked Reader, the
// DecodeError hierarchy and the Expected adapter the degradation paths use.
//
// The per-domain codecs (IMU streams, trajectories, floor plans, artifact
// caches) live with the types they encode — sensors/serialize.hpp,
// trajectory/serialize.hpp, floorplan/serialize.hpp, cache/serialize.hpp —
// so the io layer never depends upward on domain modules (the module
// layering contract enforced by crowdmap_analyze; docs/STATIC_ANALYSIS.md).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/expected.hpp"

namespace crowdmap::io {

using Bytes = std::vector<std::uint8_t>;

/// Thrown on malformed/truncated/incompatible input.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only byte writer.
class Writer {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v);
  void f32(float v);
  void f64(double v);
  void str(const std::string& s);       // u32 length + bytes
  void bytes_raw(const Bytes& b);       // no length prefix

  [[nodiscard]] Bytes take() && { return std::move(buffer_); }
  [[nodiscard]] const Bytes& buffer() const noexcept { return buffer_; }

 private:
  Bytes buffer_;
};

/// Bounds-checked byte reader.
class Reader {
 public:
  explicit Reader(const Bytes& data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int32_t i32();
  [[nodiscard]] float f32();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  void need(std::size_t n);
  const Bytes& data_;
  std::size_t pos_ = 0;
};

/// Sanity bound on decoded element counts: malformed length fields must not
/// trigger giant allocations. Shared by every codec so the bound stays one
/// number.
inline constexpr std::uint32_t kMaxDecodeCount = 64u * 1024u * 1024u;

/// Throws DecodeError when a decoded count exceeds kMaxDecodeCount.
void check_count(std::uint64_t n, const char* what);

/// Shared adapter: a DecodeError becomes Error{"io.decode"} so degradation
/// paths can branch on the code instead of catching exceptions everywhere.
template <typename Fn>
auto expected_decode(Fn&& decode) -> common::Expected<decltype(decode())> {
  try {
    return decode();
  } catch (const DecodeError& e) {
    return common::make_error("io.decode", e.what());
  }
}

}  // namespace crowdmap::io

// Versioned binary serialization for the data the cloud backend persists:
// inertial streams, extracted trajectories (including key-frame images and
// descriptors) and reconstructed floor plans. Little-endian, magic-tagged,
// explicitly versioned; decoding validates structure and throws
// io::DecodeError on malformed input rather than reading garbage.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "cache/artifact_cache.hpp"
#include "common/expected.hpp"
#include "floorplan/floorplan.hpp"
#include "sensors/imu.hpp"
#include "trajectory/trajectory.hpp"

namespace crowdmap::io {

using Bytes = std::vector<std::uint8_t>;

/// Thrown on malformed/truncated/incompatible input.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only byte writer.
class Writer {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v);
  void f32(float v);
  void f64(double v);
  void str(const std::string& s);       // u32 length + bytes
  void bytes_raw(const Bytes& b);       // no length prefix

  [[nodiscard]] Bytes take() && { return std::move(buffer_); }
  [[nodiscard]] const Bytes& buffer() const noexcept { return buffer_; }

 private:
  Bytes buffer_;
};

/// Bounds-checked byte reader.
class Reader {
 public:
  explicit Reader(const Bytes& data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int32_t i32();
  [[nodiscard]] float f32();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  void need(std::size_t n);
  const Bytes& data_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------------ top level ---

/// Inertial stream <-> bytes.
[[nodiscard]] Bytes encode_imu(const sensors::ImuStream& stream);
[[nodiscard]] sensors::ImuStream decode_imu(const Bytes& data);

/// Extracted trajectory <-> bytes. Key-frame gray images are quantized to
/// 8 bits (their only consumer, panorama stitching, is insensitive to the
/// quantization); descriptors are stored exactly.
[[nodiscard]] Bytes encode_trajectory(const trajectory::Trajectory& traj);
[[nodiscard]] trajectory::Trajectory decode_trajectory(const Bytes& data);

/// Floor plan <-> bytes.
[[nodiscard]] Bytes encode_floorplan(const floorplan::FloorPlan& plan);
[[nodiscard]] floorplan::FloorPlan decode_floorplan(const Bytes& data);

/// Artifact-cache contents <-> bytes: the persistence half of incremental
/// recomputation (docs/INCREMENTAL.md). A restarted CrowdMapService decodes
/// a previously exported snapshot out of its DocumentStore and warms the
/// cache, so the first refresh after a restart reuses artifacts instead of
/// recomputing the corpus. Entries round-trip exactly (keys and payload
/// bytes verbatim).
[[nodiscard]] Bytes encode_artifact_cache(
    const std::vector<cache::ArtifactEntry>& entries);
[[nodiscard]] std::vector<cache::ArtifactEntry> decode_artifact_cache(
    const Bytes& data);

// Non-throwing variants for callers that degrade on malformed input (the
// cloud backend quarantines rather than crashes): a DecodeError becomes an
// Error with code "io.decode".
[[nodiscard]] common::Expected<sensors::ImuStream> try_decode_imu(
    const Bytes& data);
[[nodiscard]] common::Expected<trajectory::Trajectory> try_decode_trajectory(
    const Bytes& data);
[[nodiscard]] common::Expected<floorplan::FloorPlan> try_decode_floorplan(
    const Bytes& data);
[[nodiscard]] common::Expected<std::vector<cache::ArtifactEntry>>
try_decode_artifact_cache(const Bytes& data);

}  // namespace crowdmap::io

#include "io/serialize.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace crowdmap::io {

namespace {

constexpr std::uint32_t kImuMagic = 0x434D4931;   // "CMI1"
constexpr std::uint32_t kTrajMagic = 0x434D5431;  // "CMT1"
constexpr std::uint32_t kPlanMagic = 0x434D5031;  // "CMP1"
constexpr std::uint32_t kVersion = 1;

/// Sanity bound on decoded element counts: malformed length fields must not
/// trigger giant allocations.
constexpr std::uint32_t kMaxCount = 64u * 1024u * 1024u;

void check_count(std::uint32_t n, const char* what) {
  if (n > kMaxCount) {
    throw DecodeError(std::string("implausible element count for ") + what);
  }
}

}  // namespace

// ----------------------------------------------------------------- Writer ---

void Writer::u8(std::uint8_t v) { buffer_.push_back(v); }

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buffer_.push_back((v >> (8 * i)) & 0xFF);
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buffer_.push_back((v >> (8 * i)) & 0xFF);
}

void Writer::i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }

void Writer::f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u32(bits);
}

void Writer::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void Writer::bytes_raw(const Bytes& b) {
  buffer_.insert(buffer_.end(), b.begin(), b.end());
}

// ----------------------------------------------------------------- Reader ---

void Reader::need(std::size_t n) {
  if (pos_ + n > data_.size()) throw DecodeError("truncated input");
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::int32_t Reader::i32() { return static_cast<std::int32_t>(u32()); }

float Reader::f32() {
  const std::uint32_t bits = u32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::str() {
  const std::uint32_t n = u32();
  check_count(n, "string");
  need(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

// -------------------------------------------------------------------- IMU ---

Bytes encode_imu(const sensors::ImuStream& stream) {
  Writer w;
  w.u32(kImuMagic);
  w.u32(kVersion);
  w.f64(stream.sample_rate_hz);
  w.u32(static_cast<std::uint32_t>(stream.samples.size()));
  for (const auto& s : stream.samples) {
    w.f64(s.t);
    w.f64(s.accel_magnitude);
    w.f64(s.gyro_z);
    w.f64(s.compass);
  }
  return std::move(w).take();
}

sensors::ImuStream decode_imu(const Bytes& data) {
  Reader r(data);
  if (r.u32() != kImuMagic) throw DecodeError("not an IMU stream");
  if (r.u32() != kVersion) throw DecodeError("unsupported IMU version");
  sensors::ImuStream stream;
  stream.sample_rate_hz = r.f64();
  const std::uint32_t n = r.u32();
  check_count(n, "imu samples");
  stream.samples.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    sensors::ImuSample s;
    s.t = r.f64();
    s.accel_magnitude = r.f64();
    s.gyro_z = r.f64();
    s.compass = r.f64();
    stream.samples.push_back(s);
  }
  return stream;
}

// ------------------------------------------------------------------ image ---

namespace {

void encode_gray_u8(Writer& w, const imaging::Image& img) {
  w.u32(static_cast<std::uint32_t>(img.width()));
  w.u32(static_cast<std::uint32_t>(img.height()));
  for (const float v : img.data()) {
    w.u8(static_cast<std::uint8_t>(std::clamp(v, 0.0f, 1.0f) * 255.0f + 0.5f));
  }
}

imaging::Image decode_gray_u8(Reader& r) {
  const std::uint32_t width = r.u32();
  const std::uint32_t height = r.u32();
  check_count(width, "image width");
  check_count(height, "image height");
  if (width * static_cast<std::uint64_t>(height) > kMaxCount) {
    throw DecodeError("implausible image size");
  }
  imaging::Image img(static_cast<int>(width), static_cast<int>(height));
  for (auto& v : img.data()) v = static_cast<float>(r.u8()) / 255.0f;
  return img;
}

}  // namespace

// ------------------------------------------------------------- trajectory ---

Bytes encode_trajectory(const trajectory::Trajectory& traj) {
  Writer w;
  w.u32(kTrajMagic);
  w.u32(kVersion);
  w.i32(traj.video_id);
  w.i32(traj.user_id);
  w.str(traj.building);
  w.i32(traj.true_room_id);
  w.u8(traj.true_junk ? 1 : 0);
  w.f64(traj.lighting.lux);
  w.u8(traj.lighting.incandescent ? 1 : 0);

  w.u32(static_cast<std::uint32_t>(traj.points.size()));
  for (const auto& p : traj.points) {
    w.f64(p.position.x);
    w.f64(p.position.y);
    w.f64(p.t);
    w.f64(p.heading);
  }

  w.u32(static_cast<std::uint32_t>(traj.keyframes.size()));
  for (const auto& kf : traj.keyframes) {
    w.u64(kf.frame_index);
    w.f64(kf.t);
    w.f64(kf.position.x);
    w.f64(kf.position.y);
    w.f64(kf.heading);
    w.f64(kf.true_position.x);
    w.f64(kf.true_position.y);
    w.f64(kf.true_heading);
    encode_gray_u8(w, kf.gray);
    // Cheap descriptors.
    w.u32(static_cast<std::uint32_t>(kf.cheap.color_hist.size()));
    for (const float v : kf.cheap.color_hist) w.f32(v);
    w.u32(static_cast<std::uint32_t>(kf.cheap.shape.size()));
    for (const float v : kf.cheap.shape) w.f32(v);
    w.f32(kf.cheap.wavelet.dc);
    w.i32(kf.cheap.wavelet.size);
    w.u32(static_cast<std::uint32_t>(kf.cheap.wavelet.positions.size()));
    for (std::size_t i = 0; i < kf.cheap.wavelet.positions.size(); ++i) {
      w.i32(kf.cheap.wavelet.positions[i]);
      w.u8(kf.cheap.wavelet.signs[i] >= 0 ? 1 : 0);
    }
    // SURF features.
    w.u32(static_cast<std::uint32_t>(kf.surf.size()));
    for (const auto& f : kf.surf) {
      w.f64(f.keypoint.x);
      w.f64(f.keypoint.y);
      w.f64(f.keypoint.scale);
      w.f64(f.keypoint.orientation);
      w.f64(f.keypoint.response);
      w.u8(f.keypoint.laplacian_positive ? 1 : 0);
      for (const float v : f.descriptor) w.f32(v);
    }
  }
  return std::move(w).take();
}

trajectory::Trajectory decode_trajectory(const Bytes& data) {
  Reader r(data);
  if (r.u32() != kTrajMagic) throw DecodeError("not a trajectory");
  if (r.u32() != kVersion) throw DecodeError("unsupported trajectory version");
  trajectory::Trajectory traj;
  traj.video_id = r.i32();
  traj.user_id = r.i32();
  traj.building = r.str();
  traj.true_room_id = r.i32();
  traj.true_junk = r.u8() != 0;
  traj.lighting.lux = r.f64();
  traj.lighting.incandescent = r.u8() != 0;

  const std::uint32_t n_points = r.u32();
  check_count(n_points, "track points");
  traj.points.reserve(n_points);
  for (std::uint32_t i = 0; i < n_points; ++i) {
    sensors::TrackPoint p;
    p.position.x = r.f64();
    p.position.y = r.f64();
    p.t = r.f64();
    p.heading = r.f64();
    traj.points.push_back(p);
  }

  const std::uint32_t n_kf = r.u32();
  check_count(n_kf, "keyframes");
  traj.keyframes.reserve(n_kf);
  for (std::uint32_t i = 0; i < n_kf; ++i) {
    trajectory::KeyFrame kf;
    kf.frame_index = static_cast<std::size_t>(r.u64());
    kf.t = r.f64();
    kf.position.x = r.f64();
    kf.position.y = r.f64();
    kf.heading = r.f64();
    kf.true_position.x = r.f64();
    kf.true_position.y = r.f64();
    kf.true_heading = r.f64();
    kf.gray = decode_gray_u8(r);
    const std::uint32_t n_color = r.u32();
    check_count(n_color, "color hist");
    kf.cheap.color_hist.reserve(n_color);
    for (std::uint32_t k = 0; k < n_color; ++k) {
      kf.cheap.color_hist.push_back(r.f32());
    }
    const std::uint32_t n_shape = r.u32();
    check_count(n_shape, "shape descriptor");
    kf.cheap.shape.reserve(n_shape);
    for (std::uint32_t k = 0; k < n_shape; ++k) kf.cheap.shape.push_back(r.f32());
    kf.cheap.wavelet.dc = r.f32();
    kf.cheap.wavelet.size = r.i32();
    const std::uint32_t n_coeff = r.u32();
    check_count(n_coeff, "wavelet coefficients");
    kf.cheap.wavelet.positions.reserve(n_coeff);
    kf.cheap.wavelet.signs.reserve(n_coeff);
    for (std::uint32_t k = 0; k < n_coeff; ++k) {
      kf.cheap.wavelet.positions.push_back(r.i32());
      kf.cheap.wavelet.signs.push_back(r.u8() ? 1 : -1);
    }
    const std::uint32_t n_surf = r.u32();
    check_count(n_surf, "surf features");
    kf.surf.reserve(n_surf);
    for (std::uint32_t k = 0; k < n_surf; ++k) {
      vision::SurfFeature f;
      f.keypoint.x = r.f64();
      f.keypoint.y = r.f64();
      f.keypoint.scale = r.f64();
      f.keypoint.orientation = r.f64();
      f.keypoint.response = r.f64();
      f.keypoint.laplacian_positive = r.u8() != 0;
      for (auto& v : f.descriptor) v = r.f32();
      kf.surf.push_back(f);
    }
    traj.keyframes.push_back(std::move(kf));
  }
  return traj;
}

// -------------------------------------------------------------- floor plan ---

Bytes encode_floorplan(const floorplan::FloorPlan& plan) {
  Writer w;
  w.u32(kPlanMagic);
  w.u32(kVersion);
  w.f64(plan.hallway.extent().min.x);
  w.f64(plan.hallway.extent().min.y);
  w.f64(plan.hallway.extent().max.x);
  w.f64(plan.hallway.extent().max.y);
  w.f64(plan.hallway.cell_size());
  // Raster cells as a bit-packed row-major stream.
  const auto& cells = plan.hallway.data();
  w.u32(static_cast<std::uint32_t>(cells.size()));
  std::uint8_t acc = 0;
  int bit = 0;
  for (const auto c : cells) {
    acc |= static_cast<std::uint8_t>((c ? 1 : 0) << bit);
    if (++bit == 8) {
      w.u8(acc);
      acc = 0;
      bit = 0;
    }
  }
  if (bit != 0) w.u8(acc);

  w.u32(static_cast<std::uint32_t>(plan.rooms.size()));
  for (const auto& room : plan.rooms) {
    w.f64(room.center.x);
    w.f64(room.center.y);
    w.f64(room.width);
    w.f64(room.depth);
    w.f64(room.orientation);
    w.f64(room.anchor.x);
    w.f64(room.anchor.y);
    w.i32(room.true_room_id);
    w.f64(room.layout_score);
  }
  return std::move(w).take();
}

floorplan::FloorPlan decode_floorplan(const Bytes& data) {
  Reader r(data);
  if (r.u32() != kPlanMagic) throw DecodeError("not a floor plan");
  if (r.u32() != kVersion) throw DecodeError("unsupported floor plan version");
  floorplan::FloorPlan plan;
  geometry::Aabb extent;
  extent.min.x = r.f64();
  extent.min.y = r.f64();
  extent.max.x = r.f64();
  extent.max.y = r.f64();
  const double cell_size = r.f64();
  if (!(cell_size > 0) || !(extent.max.x > extent.min.x) ||
      !(extent.max.y > extent.min.y)) {
    throw DecodeError("invalid floor plan geometry");
  }
  plan.hallway = geometry::BoolRaster(extent, cell_size);
  const std::uint32_t n_cells = r.u32();
  check_count(n_cells, "raster cells");
  if (n_cells != plan.hallway.data().size()) {
    throw DecodeError("raster size does not match extent");
  }
  std::uint8_t acc = 0;
  int bit = 8;
  for (std::uint32_t i = 0; i < n_cells; ++i) {
    if (bit == 8) {
      acc = r.u8();
      bit = 0;
    }
    plan.hallway.data()[i] = (acc >> bit) & 1;
    ++bit;
  }

  const std::uint32_t n_rooms = r.u32();
  check_count(n_rooms, "rooms");
  plan.rooms.reserve(n_rooms);
  for (std::uint32_t i = 0; i < n_rooms; ++i) {
    floorplan::PlacedRoom room;
    room.center.x = r.f64();
    room.center.y = r.f64();
    room.width = r.f64();
    room.depth = r.f64();
    room.orientation = r.f64();
    room.anchor.x = r.f64();
    room.anchor.y = r.f64();
    room.true_room_id = r.i32();
    room.layout_score = r.f64();
    plan.rooms.push_back(room);
  }
  return plan;
}

namespace {

/// Shared adapter: a DecodeError becomes Error{"io.decode"} so degradation
/// paths can branch on the code instead of catching exceptions everywhere.
template <typename Fn>
auto expected_decode(Fn&& decode)
    -> common::Expected<decltype(decode())> {
  try {
    return decode();
  } catch (const DecodeError& e) {
    return common::make_error("io.decode", e.what());
  }
}

}  // namespace

common::Expected<sensors::ImuStream> try_decode_imu(const Bytes& data) {
  return expected_decode([&] { return decode_imu(data); });
}

common::Expected<trajectory::Trajectory> try_decode_trajectory(
    const Bytes& data) {
  return expected_decode([&] { return decode_trajectory(data); });
}

common::Expected<floorplan::FloorPlan> try_decode_floorplan(
    const Bytes& data) {
  return expected_decode([&] { return decode_floorplan(data); });
}

}  // namespace crowdmap::io

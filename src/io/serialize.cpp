#include "io/serialize.hpp"

#include <cstring>

namespace crowdmap::io {

void check_count(std::uint64_t n, const char* what) {
  if (n > kMaxDecodeCount) {
    throw DecodeError(std::string("implausible element count for ") + what);
  }
}

// ----------------------------------------------------------------- Writer ---

void Writer::u8(std::uint8_t v) { buffer_.push_back(v); }

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buffer_.push_back((v >> (8 * i)) & 0xFF);
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buffer_.push_back((v >> (8 * i)) & 0xFF);
}

void Writer::i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }

void Writer::f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u32(bits);
}

void Writer::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void Writer::bytes_raw(const Bytes& b) {
  buffer_.insert(buffer_.end(), b.begin(), b.end());
}

// ----------------------------------------------------------------- Reader ---

void Reader::need(std::size_t n) {
  if (pos_ + n > data_.size()) throw DecodeError("truncated input");
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::int32_t Reader::i32() { return static_cast<std::int32_t>(u32()); }

float Reader::f32() {
  const std::uint32_t bits = u32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::str() {
  const std::uint32_t n = u32();
  check_count(n, "string");
  need(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

}  // namespace crowdmap::io

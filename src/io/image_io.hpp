// Plain PGM/PPM image export (and PGM import) for inspecting rendered
// frames, panoramas and occupancy rasters without any image library.
#pragma once

#include <string>

#include "geometry/raster.hpp"
#include "imaging/image.hpp"

namespace crowdmap::io {

/// Writes a grayscale image as binary PGM (P5). Returns false on IO failure.
bool write_pgm(const std::string& path, const imaging::Image& img);

/// Writes a color image as binary PPM (P6).
bool write_ppm(const std::string& path, const imaging::ColorImage& img);

/// Writes a boolean raster as a black/white PGM (top row = max y).
bool write_pgm(const std::string& path, const geometry::BoolRaster& raster);

/// Reads a binary PGM (P5, maxval 255). Throws std::runtime_error on
/// malformed input or IO failure.
[[nodiscard]] imaging::Image read_pgm(const std::string& path);

}  // namespace crowdmap::io

#include "io/image_io.hpp"

#include <algorithm>
#include <fstream>

namespace crowdmap::io {

namespace {

[[nodiscard]] std::uint8_t to_byte(float v) {
  return static_cast<std::uint8_t>(std::clamp(v, 0.0f, 1.0f) * 255.0f + 0.5f);
}

}  // namespace

bool write_pgm(const std::string& path, const imaging::Image& img) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "P5\n" << img.width() << ' ' << img.height() << "\n255\n";
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      out.put(static_cast<char>(to_byte(img.at(x, y))));
    }
  }
  return static_cast<bool>(out);
}

bool write_ppm(const std::string& path, const imaging::ColorImage& img) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "P6\n" << img.width() << ' ' << img.height() << "\n255\n";
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const auto& px = img.at(x, y);
      out.put(static_cast<char>(to_byte(px[0])));
      out.put(static_cast<char>(to_byte(px[1])));
      out.put(static_cast<char>(to_byte(px[2])));
    }
  }
  return static_cast<bool>(out);
}

bool write_pgm(const std::string& path, const geometry::BoolRaster& raster) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "P5\n" << raster.width() << ' ' << raster.height() << "\n255\n";
  for (int row = raster.height() - 1; row >= 0; --row) {  // +y up -> top row
    for (int col = 0; col < raster.width(); ++col) {
      out.put(raster.at(col, row) ? '\xFF' : '\0');
    }
  }
  return static_cast<bool>(out);
}

imaging::Image read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::string magic;
  in >> magic;
  if (magic != "P5") throw std::runtime_error("not a binary PGM: " + path);
  int width = 0;
  int height = 0;
  int maxval = 0;
  in >> width >> height >> maxval;
  if (width <= 0 || height <= 0 || maxval != 255) {
    throw std::runtime_error("unsupported PGM header: " + path);
  }
  in.get();  // single whitespace after the header
  imaging::Image img(width, height);
  for (auto& v : img.data()) {
    const int byte = in.get();
    if (byte < 0) throw std::runtime_error("truncated PGM: " + path);
    v = static_cast<float>(byte) / 255.0f;
  }
  return img;
}

}  // namespace crowdmap::io

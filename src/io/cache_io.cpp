#include "io/serialize.hpp"

namespace crowdmap::io {

namespace {

constexpr std::uint32_t kCacheMagic = 0x434D4331;  // "CMC1"
constexpr std::uint32_t kCacheVersion = 1;

/// Sanity bounds mirroring serialize.cpp: malformed length fields must not
/// trigger giant allocations.
constexpr std::uint64_t kMaxEntries = 1u << 22;
constexpr std::uint64_t kMaxPayload = 256u * 1024u * 1024u;

}  // namespace

Bytes encode_artifact_cache(const std::vector<cache::ArtifactEntry>& entries) {
  Writer w;
  w.u32(kCacheMagic);
  w.u32(kCacheVersion);
  w.u64(entries.size());
  for (const auto& entry : entries) {
    w.u8(static_cast<std::uint8_t>(entry.family));
    w.u64(entry.key.hi);
    w.u64(entry.key.lo);
    w.u64(entry.payload.size());
    w.bytes_raw(entry.payload);
  }
  return std::move(w).take();
}

std::vector<cache::ArtifactEntry> decode_artifact_cache(const Bytes& data) {
  Reader r(data);
  if (r.u32() != kCacheMagic) throw DecodeError("not an artifact cache");
  if (r.u32() != kCacheVersion) {
    throw DecodeError("unsupported artifact cache version");
  }
  const std::uint64_t n = r.u64();
  if (n > kMaxEntries) {
    throw DecodeError("implausible artifact cache entry count");
  }
  std::vector<cache::ArtifactEntry> entries;
  entries.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    cache::ArtifactEntry entry;
    const std::uint8_t family = r.u8();
    if (family >= cache::kFamilyCount) {
      throw DecodeError("unknown artifact family");
    }
    entry.family = static_cast<cache::Family>(family);
    entry.key.hi = r.u64();
    entry.key.lo = r.u64();
    const std::uint64_t size = r.u64();
    if (size > kMaxPayload) throw DecodeError("implausible artifact payload");
    entry.payload.reserve(size);
    for (std::uint64_t b = 0; b < size; ++b) entry.payload.push_back(r.u8());
    entries.push_back(std::move(entry));
  }
  if (!r.exhausted()) throw DecodeError("trailing bytes after artifact cache");
  return entries;
}

common::Expected<std::vector<cache::ArtifactEntry>> try_decode_artifact_cache(
    const Bytes& data) {
  try {
    return decode_artifact_cache(data);
  } catch (const DecodeError& e) {
    return common::make_error("io.decode", e.what());
  }
}

}  // namespace crowdmap::io

// Percentile derivation and SLO watchdog over the metrics registry.
//
// histogram_quantile() turns a fixed-bucket HistogramSnapshot into the
// Prometheus-style quantile estimate (linear interpolation within the
// containing bucket), Percentiles bundles the p50/p95/p99 trio every latency
// report wants, and SloWatchdog evaluates declarative SloSpecs against a
// registry snapshot: each breach increments
// crowdmap_slo_breaches_total{slo=...} and records a kSloBreach flight
// event, which triggers an automatic flight-recorder dump when
// dump-on-anomaly is armed (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"

namespace crowdmap::obs {

/// Prometheus-style quantile estimate (q in [0, 1]) from a fixed-bucket
/// histogram: linear interpolation inside the bucket containing the target
/// rank. An empty histogram yields 0; a rank landing in the +Inf bucket
/// clamps to the highest finite bound (there is no upper edge to lerp to).
[[nodiscard]] double histogram_quantile(const HistogramSnapshot& histogram,
                                        double q);

/// The latency trio derived from one histogram.
struct Percentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};
[[nodiscard]] Percentiles percentiles(const HistogramSnapshot& histogram);

/// What one SLO watches: a histogram quantile or a gauge level.
enum class SloKind { kHistogramQuantile, kGaugeMax };

/// Declarative SLO: breach when `scale * observed > threshold`. `scale`
/// converts metric units into threshold units (latency histograms record
/// seconds, thresholds read in milliseconds => scale 1000).
struct SloSpec {
  std::string name;    // breach-counter label, e.g. "plan_refresh_p99_ms"
  std::string metric;  // metric family to read
  Labels labels;       // series selector within the family
  SloKind kind = SloKind::kHistogramQuantile;
  double quantile = 0.99;  // kHistogramQuantile only
  double threshold = 0.0;
  double scale = 1.0;
};

/// One evaluate() verdict that crossed its threshold.
struct SloBreach {
  std::string slo;
  double observed = 0.0;  // already scaled into threshold units
  double threshold = 0.0;
};

/// Evaluates SLO specs against registry snapshots. Not a sampler thread —
/// the owner decides the cadence (CrowdMapService evaluates after builds
/// and refreshes; tests call evaluate() directly).
class SloWatchdog {
 public:
  explicit SloWatchdog(std::shared_ptr<MetricsRegistry> registry,
                       FlightRecorder* flight = nullptr);

  void add(SloSpec spec);
  void set_flight_recorder(FlightRecorder* flight) noexcept {
    flight_ = flight;
  }
  [[nodiscard]] const std::vector<SloSpec>& specs() const noexcept {
    return specs_;
  }

  /// Evaluates every spec against a fresh registry snapshot. A series that
  /// does not exist yet is not a breach (nothing has been observed). Each
  /// breach increments crowdmap_slo_breaches_total{slo=name} and records a
  /// kSloBreach flight event (b = scaled observed value, rounded).
  std::vector<SloBreach> evaluate();

  /// Total breaches across all specs since construction.
  [[nodiscard]] std::uint64_t breaches_total() const noexcept {
    return breaches_total_;
  }

 private:
  std::shared_ptr<MetricsRegistry> registry_;
  FlightRecorder* flight_ = nullptr;
  std::vector<SloSpec> specs_;
  std::vector<Counter*> breach_counters_;  // parallel to specs_
  std::uint64_t breaches_total_ = 0;
};

}  // namespace crowdmap::obs

// Metrics registry for the cloud backend: named counter / gauge / histogram
// families with Prometheus-style labels. Registration takes a mutex once;
// after that every update is a lock-free atomic on the returned handle, so
// hot paths (per-chunk ingest, per-keyframe matching) can record freely.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.hpp"

namespace crowdmap::obs {

/// Label set of one time series, e.g. {{"stage", "aggregate"}}. Canonical
/// form is sorted by key; the registry sorts on registration.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

/// Monotonically increasing event count.
class Counter {
 public:
  void increment(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous value (queue depth, last-run placement count).
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(double delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket latency histogram. `upper_bounds` are the inclusive bucket
/// ceilings in ascending order; an implicit +Inf bucket catches the rest.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value) noexcept;

  [[nodiscard]] const std::vector<double>& upper_bounds() const noexcept {
    return bounds_;
  }
  /// Count in bucket i (non-cumulative); i == bounds().size() is +Inf.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Default ceilings for stage/extraction latencies: 1 ms .. 60 s.
  [[nodiscard]] static std::vector<double> default_latency_buckets();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// ------------------------------------------------------------ snapshots ---

/// Point-in-time copy of one histogram.
struct HistogramSnapshot {
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> bucket_counts;  // non-cumulative, +Inf last
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// One (labels -> value) series within a family.
struct SeriesSnapshot {
  Labels labels;
  double value = 0.0;           // counter / gauge
  HistogramSnapshot histogram;  // histogram families only
};

/// One named metric family.
struct FamilySnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<SeriesSnapshot> series;  // sorted by labels
};

/// Full registry dump; families sorted by name so exports are deterministic.
struct MetricsSnapshot {
  std::vector<FamilySnapshot> families;

  [[nodiscard]] const FamilySnapshot* find(std::string_view name) const;
  /// Series of family `name` whose labels match exactly (any key order);
  /// nullptr when the family or series is absent. The only way to tell a
  /// missing series from a series that truly reads 0.
  [[nodiscard]] const SeriesSnapshot* find_series(
      std::string_view name, const Labels& labels = {}) const;
  /// Whether the series exists in this snapshot.
  [[nodiscard]] bool has(std::string_view name, const Labels& labels = {}) const {
    return find_series(name, labels) != nullptr;
  }
  /// Counter/gauge value of one series; 0 if absent. Callers that must
  /// distinguish "absent" from "zero" use find_series()/has().
  [[nodiscard]] double value(std::string_view name, const Labels& labels = {}) const;
};

// ------------------------------------------------------------- registry ---

/// Thread-safe registry of metric families. Handles returned by counter() /
/// gauge() / histogram() stay valid for the registry's lifetime; repeated
/// registration with the same name+labels returns the same instance.
/// Re-registering a name as a different type throws std::invalid_argument.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name, Labels labels = {},
                                 std::string_view help = "")
      CM_EXCLUDES(mutex_);
  [[nodiscard]] Gauge& gauge(std::string_view name, Labels labels = {},
                             std::string_view help = "") CM_EXCLUDES(mutex_);
  [[nodiscard]] Histogram& histogram(std::string_view name, Labels labels = {},
                                     std::vector<double> upper_bounds = {},
                                     std::string_view help = "")
      CM_EXCLUDES(mutex_);

  [[nodiscard]] MetricsSnapshot snapshot() const CM_EXCLUDES(mutex_);

  /// Process-wide default registry (long-lived daemons; tests and pipelines
  /// normally use their own instance so numbers don't bleed across runs).
  [[nodiscard]] static MetricsRegistry& global();

 private:
  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
    std::map<Labels, std::unique_ptr<Counter>> counters;
    std::map<Labels, std::unique_ptr<Gauge>> gauges;
    std::map<Labels, std::unique_ptr<Histogram>> histograms;
  };

  Family& family_for(std::string_view name, MetricType type,
                     std::string_view help) CM_REQUIRES(mutex_);

  mutable common::Mutex mutex_;
  std::map<std::string, Family, std::less<>> families_ CM_GUARDED_BY(mutex_);
};

}  // namespace crowdmap::obs

// Hierarchical trace spans for one pipeline run: begin/end pairs build a
// tree of timed stages ("run" > "aggregate" > ...), snapshotted into plain
// SpanRecord data for reports and for computing PipelineDiagnostics.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/annotations.hpp"

namespace crowdmap::obs {

/// Plain, copyable snapshot of one span (and its subtree).
struct SpanRecord {
  std::string name;
  double start_seconds = 0.0;     // offset from the trace epoch
  double duration_seconds = 0.0;  // inclusive wall-clock time
  /// Key/value annotations in insertion order (e.g. cache=hit). Kept as a
  /// vector, not a map, so the rendered order is the annotation order.
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<SpanRecord> children;

  /// Value of the attribute named `key`, or nullptr when absent.
  [[nodiscard]] const std::string* attribute(std::string_view key) const;

  /// Inclusive time minus the children's inclusive times (self time).
  [[nodiscard]] double exclusive_seconds() const;

  /// First span named `name` in pre-order (this node included); null if none.
  [[nodiscard]] const SpanRecord* find(std::string_view name) const;

  /// Sum of inclusive times over every span named `name` in the subtree —
  /// e.g. total "extract" time across many ingest spans.
  [[nodiscard]] double total_seconds(std::string_view name) const;

  /// Indented tree report with inclusive/exclusive milliseconds per span.
  [[nodiscard]] std::string to_string() const;
};

class Trace;
class FlightRecorder;

/// RAII span: closes on destruction; end() closes early and returns the
/// inclusive duration (useful for feeding a latency histogram).
class ScopedSpan {
 public:
  ScopedSpan(Trace& trace, std::string name);
  ~ScopedSpan();
  ScopedSpan(ScopedSpan&& other) noexcept : trace_(other.trace_) {
    other.trace_ = nullptr;
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan& operator=(ScopedSpan&&) = delete;

  double end();

 private:
  Trace* trace_;
};

/// Records a tree of timed spans. Thread-safe, but spans form one stack:
/// interleaved begin/end from concurrent threads would nest arbitrarily, so
/// keep one Trace per logical run (the pipeline does). Non-copyable.
class Trace {
 public:
  explicit Trace(std::string name = "run");

  /// Opens a child span of the innermost open span.
  void begin_span(std::string name) CM_EXCLUDES(mutex_);
  /// Closes the innermost open span; returns its inclusive seconds.
  double end_span() CM_EXCLUDES(mutex_);
  /// Attaches a key/value attribute to the innermost open span (the cache
  /// seams tag their stage spans with cache=hit/miss reuse summaries). A
  /// repeated key overwrites the earlier value in place.
  void annotate(std::string_view key, std::string value) CM_EXCLUDES(mutex_);
  /// RAII convenience for begin/end pairs.
  [[nodiscard]] ScopedSpan scoped(std::string name) {
    return ScopedSpan(*this, std::move(name));
  }

  /// Mirrors every span begin/end into the flight recorder as
  /// span_begin/span_end events (null detaches). The recorder must outlive
  /// this trace or be detached first.
  void set_flight_recorder(FlightRecorder* flight) CM_EXCLUDES(mutex_);

  /// Copies the tree; still-open spans (root included) are reported as
  /// running up to "now".
  [[nodiscard]] SpanRecord snapshot() const CM_EXCLUDES(mutex_);
  [[nodiscard]] std::string to_string() const { return snapshot().to_string(); }

 private:
  using Clock = std::chrono::steady_clock;

  struct Node {
    std::string name;
    Clock::time_point start;
    Clock::time_point end;
    std::vector<std::pair<std::string, std::string>> attributes;
    bool closed = false;
    Node* parent = nullptr;
    std::vector<std::unique_ptr<Node>> children;
  };

  SpanRecord snapshot_node(const Node& node, Clock::time_point now) const
      CM_REQUIRES(mutex_);

  mutable common::Mutex mutex_;
  Node root_ CM_GUARDED_BY(mutex_);
  Node* open_ CM_GUARDED_BY(mutex_) = nullptr;  // innermost open span
  FlightRecorder* flight_ CM_GUARDED_BY(mutex_) = nullptr;
};

}  // namespace crowdmap::obs

#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace crowdmap::obs {

namespace {

const char* type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

/// Integers render without a decimal point; everything else as shortest %g.
std::string format_number(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// The exposition format escapes only backslash and newline in HELP text —
/// double quotes stay literal there, unlike in label values.
std::string escape_help(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// {key="value",...} — empty string for an empty label set.
std::string prometheus_labels(const Labels& labels, std::string_view extra_key = {},
                              std::string_view extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + escape(value) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += std::string(extra_key) + "=\"" + std::string(extra_value) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& family : snapshot.families) {
    if (!family.help.empty()) {
      out << "# HELP " << family.name << ' ' << escape_help(family.help)
          << '\n';
    }
    out << "# TYPE " << family.name << ' ' << type_name(family.type) << '\n';
    for (const auto& series : family.series) {
      if (family.type == MetricType::kHistogram) {
        const auto& h = series.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
          cumulative += h.bucket_counts[i];
          out << family.name << "_bucket"
              << prometheus_labels(series.labels, "le",
                                   format_number(h.upper_bounds[i]))
              << ' ' << cumulative << '\n';
        }
        out << family.name << "_bucket"
            << prometheus_labels(series.labels, "le", "+Inf") << ' ' << h.count
            << '\n';
        out << family.name << "_sum" << prometheus_labels(series.labels) << ' '
            << format_number(h.sum) << '\n';
        out << family.name << "_count" << prometheus_labels(series.labels)
            << ' ' << h.count << '\n';
      } else {
        out << family.name << prometheus_labels(series.labels) << ' '
            << format_number(series.value) << '\n';
      }
    }
  }
  return out.str();
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"metrics\":[";
  bool first_family = true;
  for (const auto& family : snapshot.families) {
    if (!first_family) out << ',';
    first_family = false;
    out << "\n{\"name\":\"" << escape(family.name) << "\",\"type\":\""
        << type_name(family.type) << "\",\"help\":\"" << escape(family.help)
        << "\",\"series\":[";
    bool first_series = true;
    for (const auto& series : family.series) {
      if (!first_series) out << ',';
      first_series = false;
      out << "{\"labels\":{";
      bool first_label = true;
      for (const auto& [key, value] : series.labels) {
        if (!first_label) out << ',';
        first_label = false;
        out << '"' << escape(key) << "\":\"" << escape(value) << '"';
      }
      out << '}';
      if (family.type == MetricType::kHistogram) {
        const auto& h = series.histogram;
        out << ",\"count\":" << h.count << ",\"sum\":" << format_number(h.sum)
            << ",\"buckets\":[";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
          cumulative += h.bucket_counts[i];
          if (i > 0) out << ',';
          out << "{\"le\":" << format_number(h.upper_bounds[i])
              << ",\"count\":" << cumulative << '}';
        }
        if (!h.upper_bounds.empty()) out << ',';
        out << "{\"le\":\"+Inf\",\"count\":" << h.count << "}]";
      } else {
        out << ",\"value\":" << format_number(series.value);
      }
      out << '}';
    }
    out << "]}";
  }
  out << "\n]}\n";
  return out.str();
}

}  // namespace crowdmap::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace crowdmap::obs {

namespace {

Labels sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

// ------------------------------------------------------------ histogram ---

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) bounds_ = default_latency_buckets();
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<double> Histogram::default_latency_buckets() {
  return {0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
          0.5,   1.0,   2.5,  5.0,   10.0, 30.0, 60.0};
}

// ------------------------------------------------------------- registry ---

MetricsRegistry::Family& MetricsRegistry::family_for(std::string_view name,
                                                     MetricType type,
                                                     std::string_view help) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    it = families_.emplace(std::string(name), Family{}).first;
    it->second.type = type;
    it->second.help = std::string(help);
  } else if (it->second.type != type) {
    throw std::invalid_argument("metric '" + std::string(name) +
                                "' already registered with a different type");
  }
  if (it->second.help.empty() && !help.empty()) it->second.help = help;
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels,
                                  std::string_view help) {
  common::MutexLock lock(mutex_);
  Family& family = family_for(name, MetricType::kCounter, help);
  auto& slot = family.counters[sorted(std::move(labels))];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels,
                              std::string_view help) {
  common::MutexLock lock(mutex_);
  Family& family = family_for(name, MetricType::kGauge, help);
  auto& slot = family.gauges[sorted(std::move(labels))];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view name, Labels labels,
                                      std::vector<double> upper_bounds,
                                      std::string_view help) {
  common::MutexLock lock(mutex_);
  Family& family = family_for(name, MetricType::kHistogram, help);
  auto& slot = family.histograms[sorted(std::move(labels))];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  common::MutexLock lock(mutex_);
  MetricsSnapshot out;
  out.families.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    FamilySnapshot fam;
    fam.name = name;
    fam.help = family.help;
    fam.type = family.type;
    for (const auto& [labels, c] : family.counters) {
      SeriesSnapshot s;
      s.labels = labels;
      s.value = static_cast<double>(c->value());
      fam.series.push_back(std::move(s));
    }
    for (const auto& [labels, g] : family.gauges) {
      SeriesSnapshot s;
      s.labels = labels;
      s.value = g->value();
      fam.series.push_back(std::move(s));
    }
    for (const auto& [labels, h] : family.histograms) {
      SeriesSnapshot s;
      s.labels = labels;
      s.histogram.upper_bounds = h->upper_bounds();
      s.histogram.bucket_counts.reserve(h->upper_bounds().size() + 1);
      for (std::size_t i = 0; i <= h->upper_bounds().size(); ++i) {
        s.histogram.bucket_counts.push_back(h->bucket_count(i));
      }
      s.histogram.count = h->count();
      s.histogram.sum = h->sum();
      fam.series.push_back(std::move(s));
    }
    out.families.push_back(std::move(fam));
  }
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

// ------------------------------------------------------------- snapshot ---

const FamilySnapshot* MetricsSnapshot::find(std::string_view name) const {
  for (const auto& family : families) {
    if (family.name == name) return &family;
  }
  return nullptr;
}

const SeriesSnapshot* MetricsSnapshot::find_series(std::string_view name,
                                                   const Labels& labels) const {
  const FamilySnapshot* family = find(name);
  if (!family) return nullptr;
  Labels key = labels;
  std::sort(key.begin(), key.end());
  for (const auto& series : family->series) {
    if (series.labels == key) return &series;
  }
  return nullptr;
}

double MetricsSnapshot::value(std::string_view name, const Labels& labels) const {
  if (const SeriesSnapshot* series = find_series(name, labels)) {
    return series->value;
  }
  return 0.0;
}

}  // namespace crowdmap::obs

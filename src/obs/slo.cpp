#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>

namespace crowdmap::obs {

double histogram_quantile(const HistogramSnapshot& histogram, double q) {
  if (histogram.count == 0 || histogram.bucket_counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(histogram.count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < histogram.bucket_counts.size(); ++i) {
    const std::uint64_t in_bucket = histogram.bucket_counts[i];
    if (static_cast<double>(cumulative + in_bucket) < rank) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= histogram.upper_bounds.size()) {
      // +Inf bucket: no upper edge to interpolate toward; clamp to the
      // highest finite bound (Prometheus does the same).
      return histogram.upper_bounds.empty() ? 0.0
                                            : histogram.upper_bounds.back();
    }
    const double upper = histogram.upper_bounds[i];
    const double lower = i == 0 ? 0.0 : histogram.upper_bounds[i - 1];
    if (in_bucket == 0) return upper;
    const double within =
        (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
    return lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
  }
  return histogram.upper_bounds.empty() ? 0.0 : histogram.upper_bounds.back();
}

Percentiles percentiles(const HistogramSnapshot& histogram) {
  Percentiles out;
  out.p50 = histogram_quantile(histogram, 0.50);
  out.p95 = histogram_quantile(histogram, 0.95);
  out.p99 = histogram_quantile(histogram, 0.99);
  return out;
}

SloWatchdog::SloWatchdog(std::shared_ptr<MetricsRegistry> registry,
                         FlightRecorder* flight)
    : registry_(std::move(registry)), flight_(flight) {}

void SloWatchdog::add(SloSpec spec) {
  breach_counters_.push_back(&registry_->counter(
      "crowdmap_slo_breaches_total", {{"slo", spec.name}},
      "SLO threshold crossings detected by the watchdog"));
  specs_.push_back(std::move(spec));
}

std::vector<SloBreach> SloWatchdog::evaluate() {
  std::vector<SloBreach> breaches;
  if (specs_.empty()) return breaches;
  const MetricsSnapshot snapshot = registry_->snapshot();
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const SloSpec& spec = specs_[i];
    const SeriesSnapshot* series =
        snapshot.find_series(spec.metric, spec.labels);
    // Absent series means nothing has been observed yet — not a breach
    // (and not a silent zero: find_series() keeps the two distinct).
    if (series == nullptr) continue;
    double observed = 0.0;
    switch (spec.kind) {
      case SloKind::kHistogramQuantile:
        if (series->histogram.count == 0) continue;
        observed = histogram_quantile(series->histogram, spec.quantile);
        break;
      case SloKind::kGaugeMax:
        observed = series->value;
        break;
    }
    observed *= spec.scale;
    if (observed <= spec.threshold) continue;
    breach_counters_[i]->increment();
    ++breaches_total_;
    if (flight_ != nullptr) {
      flight_->record_named(
          FlightEventKind::kSloBreach, static_cast<std::uint32_t>(i),
          spec.name,
          static_cast<std::uint64_t>(std::llround(std::max(observed, 0.0))));
    }
    breaches.push_back({spec.name, observed, spec.threshold});
  }
  return breaches;
}

}  // namespace crowdmap::obs

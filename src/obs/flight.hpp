// Flight recorder: always-on, lock-free per-thread ring buffers of fixed-
// size structured events (span begin/end, cache traffic, fault fires, ingest
// retransmits/quarantines, degradation entries, queue-depth samples). The
// black box the SLO watchdog and the chaos harness dump when something goes
// wrong: "what exactly happened in the 200 ms before this breach".
//
// Every event is dual-stamped: a steady-clock offset from the recorder's
// epoch (wall ordering for Perfetto rendering) and a LogicalClock tick
// advanced only at deterministic points (pipeline stage boundaries, ingest
// chunk deliveries). deterministic_dump() drops the wall/thread stamps and
// the inherently racy kinds, then sorts by content — so dumps in
// deterministic mode are byte-identical at any thread count, the same
// contract the serialized FloorPlans obey (docs/OBSERVABILITY.md).
//
// Hot path: record() on a disarmed recorder is one relaxed load + branch;
// armed it is a steady_clock read plus five relaxed atomic stores into the
// caller's thread-local ring (~tens of ns, measured in bench/micro_obs.cpp).
// Rings are single-writer; dumps read them concurrently without locks, so
// the event words are atomics rather than plain structs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.hpp"
#include "common/expected.hpp"
#include "common/fault.hpp"

namespace crowdmap::obs {

/// Catalog of recorded event kinds. Values are part of the binary dump
/// format — append only, never renumber.
enum class FlightEventKind : std::uint16_t {
  kSpanBegin = 1,         // a = name hash
  kSpanEnd = 2,           // a = name hash, b = duration nanos
  kCacheHit = 3,          // detail = family, a/b = artifact key hi/lo
  kCacheMiss = 4,         // detail = family, a/b = artifact key hi/lo
  kCacheEvict = 5,        // detail = family, a/b = artifact key hi/lo
  kFaultFired = 6,        // detail = fault point index, a = point name hash
  kIngestRetransmit = 7,  // a = upload id hash, b = missing chunk count
  kIngestQuarantine = 8,  // a = upload id hash, b = reason hash
  kDegradation = 9,       // a = stage name hash, b = detail hash
  kQueueDepth = 10,       // a = queue depth sample
  kSloBreach = 11,        // a = SLO name hash, b = observed value millis/units
  kWalAppend = 12,        // a = segment seqno, b = record bytes
  kWalCheckpoint = 13,    // a = snapshot seqno, b = retired segment count
  kRecoveryTruncate = 14, // a = segment seqno, b = damaged tail bytes
  kClusterReplicate = 15, // detail = node index, a = floor key hash, b = seqno
  kClusterFailover = 16,  // detail = acting node index, a = floor key hash
  kClusterShed = 17,      // detail = node index, a = queue depth
};

/// Catalog name of an event kind ("cache_hit"); "unknown" for junk input.
[[nodiscard]] std::string_view flight_event_kind_name(
    FlightEventKind kind) noexcept;

/// One decoded event. `thread` is the recorder-assigned ring slot of the
/// writing thread (not an OS tid); `steady_nanos` is the offset from the
/// recorder epoch. Both are zeroed in deterministic dumps.
struct FlightEventRecord {
  FlightEventKind kind = FlightEventKind::kSpanBegin;
  std::uint32_t thread = 0;
  std::uint32_t detail = 0;
  std::uint64_t tick = 0;
  std::uint64_t steady_nanos = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  friend bool operator==(const FlightEventRecord&,
                         const FlightEventRecord&) = default;
};

/// A dump: the recorder's surviving events plus the hash -> string intern
/// table that makes name hashes readable again. `deterministic` marks a
/// normalized dump (wall/thread stamps zeroed, racy kinds filtered, events
/// sorted by content).
struct FlightDump {
  bool deterministic = false;
  std::uint64_t dropped = 0;  // events overwritten by ring wraparound
  std::vector<FlightEventRecord> events;
  std::map<std::uint64_t, std::string> strings;  // hash -> interned name
};

/// Versioned binary codec ("CMFD" magic; docs/OBSERVABILITY.md has the
/// layout). encode/decode round-trip exactly; decode rejects junk with error
/// codes "flight.magic" / "flight.version" / "flight.truncated".
[[nodiscard]] std::vector<std::uint8_t> encode_flight_dump(
    const FlightDump& dump);
[[nodiscard]] common::Expected<FlightDump> decode_flight_dump(
    const std::uint8_t* data, std::size_t size);
[[nodiscard]] common::Expected<FlightDump> decode_flight_dump(
    const std::vector<std::uint8_t>& bytes);

/// Human-readable JSON rendering of a dump (stable field order; byte-
/// deterministic for deterministic dumps).
[[nodiscard]] std::string flight_dump_to_json(const FlightDump& dump);

/// Recorder tunables; core::FlightConfig mirrors these through the config
/// table (flight.* keys).
struct FlightOptions {
  /// Events retained per writing thread before wraparound.
  std::size_t ring_capacity = 4096;
  /// Auto-dump to the sink when an anomalous event (fault fired, stage
  /// degraded, SLO breached) is recorded.
  bool dump_on_anomaly = false;
  /// Ceiling on automatic anomaly dumps, so a fault storm cannot flood the
  /// sink (dump-on-demand is never limited).
  std::uint64_t max_anomaly_dumps = 4;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightOptions options = {});
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Arm/disarm recording. Disarmed record() is one relaxed load + branch
  /// and writes nothing. Recorders start armed ("always-on").
  void arm() noexcept { armed_.store(true, std::memory_order_relaxed); }
  void disarm() noexcept { armed_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Records one event into the calling thread's ring. Lock-free after the
  /// thread's first event (which registers its ring under the mutex).
  void record(FlightEventKind kind, std::uint32_t detail, std::uint64_t a,
              std::uint64_t b = 0) noexcept {
    if (!armed_.load(std::memory_order_relaxed)) return;
    record_armed(kind, detail, a, b);
  }

  /// record() with a name payload: interns `name` (mutex-guarded map; cheap
  /// at span/degradation frequency, not for per-artifact traffic) so dumps
  /// can render the hash back to text, then records with a = hash(name).
  void record_named(FlightEventKind kind, std::uint32_t detail,
                    std::string_view name, std::uint64_t b = 0);

  /// Interns a name into the dump string table; returns its stable hash.
  std::uint64_t intern(std::string_view name) CM_EXCLUDES(strings_mutex_);

  /// Logical tick stamped onto subsequent events. Advanced only at
  /// deterministic points: the pipeline ticks per stage boundary, ingest
  /// per delivered chunk — never from racy worker-side code.
  std::uint64_t advance_tick(std::uint64_t ticks = 1) noexcept {
    return clock_.advance(ticks);
  }
  [[nodiscard]] std::uint64_t tick() const noexcept { return clock_.now(); }

  /// Wall dump: every surviving event in (thread, write order), wall and
  /// thread stamps intact. The debugging view.
  [[nodiscard]] FlightDump dump() const
      CM_EXCLUDES(rings_mutex_, strings_mutex_);

  /// Deterministic dump: drops kinds that legitimately race across thread
  /// counts (queue-depth samples, FIFO evictions), zeroes wall/thread
  /// stamps, sorts events by content. Byte-identical at any thread count
  /// when every remaining event is tick-stamped deterministically.
  [[nodiscard]] FlightDump deterministic_dump() const
      CM_EXCLUDES(rings_mutex_, strings_mutex_);

  /// Sink for automatic anomaly dumps (and dump_now). Invoked inline on the
  /// recording thread, so keep it cheap and thread-safe.
  using DumpSink =
      std::function<void(const FlightDump& dump, std::string_view reason)>;
  void set_dump_sink(DumpSink sink);
  void set_dump_on_anomaly(bool enabled) noexcept {
    dump_on_anomaly_.store(enabled, std::memory_order_relaxed);
  }

  /// Dump-on-demand through the sink (no-op without one). Not counted
  /// against the anomaly-dump budget.
  void dump_now(std::string_view reason);

  /// Automatic anomaly dumps fired so far.
  [[nodiscard]] std::uint64_t anomaly_dumps() const noexcept {
    return anomaly_dump_count_.load(std::memory_order_relaxed);
  }
  /// Events overwritten by ring wraparound so far.
  [[nodiscard]] std::uint64_t dropped() const noexcept
      CM_EXCLUDES(rings_mutex_);

  [[nodiscard]] const FlightOptions& options() const noexcept {
    return options_;
  }

 private:
  // One event = 5 consecutive atomic words in its ring:
  //   [0] kind<<48 | thread_slot<<32 | detail
  //   [1] tick   [2] steady_nanos   [3] a   [4] b
  static constexpr std::size_t kWordsPerEvent = 5;

  struct Ring {
    explicit Ring(std::size_t capacity_events, std::uint32_t slot);
    std::uint32_t slot;
    std::size_t capacity;  // events, power of two
    std::atomic<std::uint64_t> head{0};  // monotonic next-write index
    std::unique_ptr<std::atomic<std::uint64_t>[]> words;
  };

  void record_armed(FlightEventKind kind, std::uint32_t detail,
                    std::uint64_t a, std::uint64_t b) noexcept;
  Ring* ring_for_this_thread() CM_EXCLUDES(rings_mutex_);
  void maybe_anomaly_dump(FlightEventKind kind);
  [[nodiscard]] FlightDump dump_impl(bool deterministic) const
      CM_EXCLUDES(rings_mutex_, strings_mutex_);

  const FlightOptions options_;
  const std::uint64_t id_;  // process-unique; keys the thread-local cache
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> armed_{true};
  std::atomic<bool> dump_on_anomaly_{false};
  std::atomic<std::uint64_t> anomaly_dump_count_{0};
  common::LogicalClock clock_;

  mutable common::Mutex rings_mutex_;
  std::vector<std::unique_ptr<Ring>> rings_ CM_GUARDED_BY(rings_mutex_);

  mutable common::Mutex strings_mutex_;
  std::map<std::uint64_t, std::string> strings_ CM_GUARDED_BY(strings_mutex_);

  mutable common::Mutex sink_mutex_;
  DumpSink sink_ CM_GUARDED_BY(sink_mutex_);
};

}  // namespace crowdmap::obs

#include "obs/trace_export.hpp"

#include <cstdio>

namespace crowdmap::obs {

namespace {

void escape_into(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Microseconds with fixed precision so output is byte-stable.
void append_micros(std::string& out, double micros) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", micros);
  out += buf;
}

void append_span(std::string& out, const SpanRecord& span, bool& first) {
  out += first ? "\n" : ",\n";
  first = false;
  out += R"(    {"name": ")";
  escape_into(out, span.name);
  out += R"(", "ph": "X", "ts": )";
  append_micros(out, span.start_seconds * 1e6);
  out += ", \"dur\": ";
  append_micros(out, span.duration_seconds * 1e6);
  out += R"(, "pid": 1, "tid": 1)";
  if (!span.attributes.empty()) {
    out += ", \"args\": {";
    bool first_attr = true;
    for (const auto& [key, value] : span.attributes) {
      if (!first_attr) out += ", ";
      first_attr = false;
      out += '"';
      escape_into(out, key);
      out += "\": \"";
      escape_into(out, value);
      out += '"';
    }
    out += '}';
  }
  out += '}';
  for (const auto& child : span.children) {
    append_span(out, child, first);
  }
}

void append_flight_event(std::string& out, const FlightEventRecord& event,
                         const FlightDump& dump, bool& first) {
  out += first ? "\n" : ",\n";
  first = false;
  out += R"(    {"name": ")";
  const auto named = dump.strings.find(event.a);
  if (named != dump.strings.end()) {
    escape_into(out, named->second);
  } else {
    escape_into(out, flight_event_kind_name(event.kind));
  }
  out += R"(", "ph": "i", "ts": )";
  append_micros(out, static_cast<double>(event.steady_nanos) / 1e3);
  // Flight tracks sit above the span track: tid 1 is the span stack.
  out += R"(, "pid": 1, "tid": )";
  out += std::to_string(2 + event.thread);
  out += R"(, "s": "t", "args": {"kind": ")";
  out += flight_event_kind_name(event.kind);
  out += "\", \"tick\": ";
  out += std::to_string(event.tick);
  out += ", \"detail\": ";
  out += std::to_string(event.detail);
  out += ", \"a\": ";
  out += std::to_string(event.a);
  out += ", \"b\": ";
  out += std::to_string(event.b);
  out += "}}";
}

}  // namespace

std::string to_trace_event_json(const SpanRecord& root,
                                const FlightDump* flight) {
  std::string out;
  out += "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  bool first = true;
  append_span(out, root, first);
  if (flight != nullptr) {
    for (const auto& event : flight->events) {
      append_flight_event(out, event, *flight, first);
    }
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace crowdmap::obs

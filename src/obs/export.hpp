// Exporters: render a MetricsSnapshot as Prometheus text exposition format
// or as JSON. Output is deterministic (families sorted by name, series by
// labels) so goldens and diffs are stable.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace crowdmap::obs {

/// Prometheus text format v0.0.4: # HELP / # TYPE headers, one sample per
/// line, histograms as cumulative `_bucket{le=...}` plus `_sum` / `_count`.
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

/// JSON document {"metrics": [{name, type, help, series: [...]}]}.
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);

}  // namespace crowdmap::obs
